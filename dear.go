package dear

import (
	"repro/internal/ara"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/monitor"
	"repro/internal/reactor"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/someip"
	"repro/internal/trace"
)

// --- Logical time ---

// Time is a point in logical (or simulated physical) time in nanoseconds.
type Time = logical.Time

// Duration is a span of logical time in nanoseconds.
type Duration = logical.Duration

// Tag is a superdense-time tag (time point, microstep).
type Tag = logical.Tag

// Microstep orders logically-simultaneous events at one time point.
type Microstep = logical.Microstep

// Duration units.
const (
	Nanosecond  = logical.Nanosecond
	Microsecond = logical.Microsecond
	Millisecond = logical.Millisecond
	Second      = logical.Second
	Minute      = logical.Minute
	Hour        = logical.Hour
)

// Forever is the largest representable time point.
const Forever = logical.Forever

// --- Reactor runtime ---

// Environment owns a reactor program and its scheduler.
type Environment = reactor.Environment

// Options configures an Environment.
type Options = reactor.Options

// Reactor is a named collection of reactions, ports, actions and timers.
type Reactor = reactor.Reactor

// Reaction is a unit of computation triggered by tagged events.
type Reaction = reactor.Reaction

// ReactionCtx is passed to reaction bodies and deadline handlers.
type ReactionCtx = reactor.Ctx

// Trigger is anything that can trigger a reaction.
type Trigger = reactor.Trigger

// Effect is anything a reaction may write or schedule.
type Effect = reactor.Effect

// Port is a typed reactor port.
type Port[T any] = reactor.Port[T]

// Action is a typed schedulable event source (logical or physical).
type Action[T any] = reactor.Action[T]

// Timer triggers reactions periodically.
type Timer = reactor.Timer

// Clock supplies physical time to an environment.
type Clock = reactor.Clock

// RealClock drives an environment from the wall clock.
type RealClock = reactor.RealClock

// SimClock drives an environment deterministically from a DES kernel.
type SimClock = reactor.SimClock

// TraceEvent describes one reaction execution for trace hooks.
type TraceEvent = reactor.TraceEvent

// NewEnvironment creates an empty reactor environment.
func NewEnvironment(opts Options) *Environment { return reactor.NewEnvironment(opts) }

// NewRealClock returns a wall-clock Clock with time zero at creation.
func NewRealClock() *RealClock { return reactor.NewRealClock() }

// NewSimClock creates a deterministic clock for a scheduler running as
// DES process p; local may be nil to use global simulated time.
func NewSimClock(p *Process, local *LocalClock) *SimClock {
	return reactor.NewSimClock(p, local)
}

// NewInputPort creates an input port on reactor r.
func NewInputPort[T any](r *Reactor, name string) *Port[T] {
	return reactor.NewInputPort[T](r, name)
}

// NewOutputPort creates an output port on reactor r.
func NewOutputPort[T any](r *Reactor, name string) *Port[T] {
	return reactor.NewOutputPort[T](r, name)
}

// NewLogicalAction creates a logical action with a minimum delay.
func NewLogicalAction[T any](r *Reactor, name string, minDelay Duration) *Action[T] {
	return reactor.NewLogicalAction[T](r, name, minDelay)
}

// NewPhysicalAction creates a physical action — the sanctioned interface
// for sporadic sensors, interrupts and network receptions.
func NewPhysicalAction[T any](r *Reactor, name string, minDelay Duration) *Action[T] {
	return reactor.NewPhysicalAction[T](r, name, minDelay)
}

// NewTimer creates a timer on reactor r (period 0 = one-shot).
func NewTimer(r *Reactor, name string, offset, period Duration) *Timer {
	return reactor.NewTimer(r, name, offset, period)
}

// Connect wires an upstream port to a downstream port with zero logical
// delay.
func Connect[T any](up, down *Port[T]) { reactor.Connect(up, down) }

// ConnectDelayed wires ports with a logical delay ("after" semantics).
func ConnectDelayed[T any](up, down *Port[T], delay Duration) {
	reactor.ConnectDelayed(up, down, delay)
}

// --- DEAR framework ---

// SWC is a DEAR-enabled software component: a tagged ara::com runtime
// plus a reactor environment running as a platform process.
type SWC = core.SWC

// StartOptions tune the reactor environment of an SWC.
type StartOptions = core.StartOptions

// TransactorConfig carries per-transactor timing parameters (deadline D,
// latency bound L, clock error bound E, untagged-message policy).
type TransactorConfig = core.TransactorConfig

// LinkConfig carries the timing assumptions of a DEAR deployment.
type LinkConfig = core.LinkConfig

// TransactorStats counts observable error conditions at a transactor.
type TransactorStats = core.TransactorStats

// UntaggedPolicy selects the treatment of untagged (legacy) messages.
type UntaggedPolicy = core.UntaggedPolicy

// Untagged policies.
const (
	UntaggedFail         = core.UntaggedFail
	UntaggedPhysicalTime = core.UntaggedPhysicalTime
)

// Transactors translate between reactor ports and AP service interfaces
// (Figure 3 of the paper).
type (
	// ClientMethodTransactor invokes a remote method per request event.
	ClientMethodTransactor = core.ClientMethodTransactor
	// ServerMethodTransactor turns invocations into tagged port events.
	ServerMethodTransactor = core.ServerMethodTransactor
	// ClientEventTransactor emits received notifications as port events.
	ClientEventTransactor = core.ClientEventTransactor
	// ServerEventTransactor publishes port events as notifications.
	ServerEventTransactor = core.ServerEventTransactor
	// ClientFieldTransactor bundles get/set/notifier for a field.
	ClientFieldTransactor = core.ClientFieldTransactor
	// ServerFieldTransactor exposes reactor state as an AP field.
	ServerFieldTransactor = core.ServerFieldTransactor
)

// Binding is the modified (tag-carrying) SOME/IP binding hook.
type Binding = core.Binding

// TimestampBypass pairs outgoing tags with standard-API sends.
type TimestampBypass = core.TimestampBypass

// NewSWC creates a DEAR software component on a simulated platform.
func NewSWC(host *Host, cfg RuntimeConfig) (*SWC, error) { return core.NewSWC(host, cfg) }

// NewClientMethodTransactor creates a client-role method transactor.
func NewClientMethodTransactor(env *Environment, swc *SWC, iface *ServiceInterface, instance InstanceID, method string, cfg TransactorConfig) (*ClientMethodTransactor, error) {
	return core.NewClientMethodTransactor(env, swc, iface, instance, method, cfg)
}

// NewServerMethodTransactor creates a server-role method transactor.
func NewServerMethodTransactor(env *Environment, swc *SWC, sk *Skeleton, method string, cfg TransactorConfig) (*ServerMethodTransactor, error) {
	return core.NewServerMethodTransactor(env, swc, sk, method, cfg)
}

// NewClientEventTransactor creates a client-role event transactor.
func NewClientEventTransactor(env *Environment, swc *SWC, iface *ServiceInterface, instance InstanceID, event string, cfg TransactorConfig) (*ClientEventTransactor, error) {
	return core.NewClientEventTransactor(env, swc, iface, instance, event, cfg)
}

// NewServerEventTransactor creates a server-role event transactor.
func NewServerEventTransactor(env *Environment, swc *SWC, sk *Skeleton, event string, cfg TransactorConfig) (*ServerEventTransactor, error) {
	return core.NewServerEventTransactor(env, swc, sk, event, cfg)
}

// NewClientFieldTransactor creates the composite field transactor
// (two method transactors plus the notifier event transactor).
func NewClientFieldTransactor(env *Environment, swc *SWC, iface *ServiceInterface, instance InstanceID, field string, cfg TransactorConfig) (*ClientFieldTransactor, error) {
	return core.NewClientFieldTransactor(env, swc, iface, instance, field, cfg)
}

// NewServerFieldTransactor creates the composite server-side field
// transactor.
func NewServerFieldTransactor(env *Environment, swc *SWC, sk *Skeleton, field string, cfg TransactorConfig) (*ServerFieldTransactor, error) {
	return core.NewServerFieldTransactor(env, swc, sk, field, cfg)
}

// --- ara::com substrate ---

// ServiceInterface describes a service (methods, events, fields).
type ServiceInterface = ara.ServiceInterface

// MethodSpec describes one method.
type MethodSpec = ara.MethodSpec

// EventSpec describes one event.
type EventSpec = ara.EventSpec

// FieldSpec describes one field.
type FieldSpec = ara.FieldSpec

// Runtime is the per-process ara::com runtime.
type Runtime = ara.Runtime

// RuntimeConfig configures a Runtime.
type RuntimeConfig = ara.Config

// ExecConfig configures the worker-thread executor of a runtime.
type ExecConfig = ara.ExecConfig

// Proxy is the client-side service access object.
type Proxy = ara.Proxy

// Skeleton is the server-side service access object.
type Skeleton = ara.Skeleton

// Future is the asynchronous result of a method call.
type Future = ara.Future

// Result is the outcome of a method call.
type Result = ara.Result

// HandlerCtx is passed to ara method/event handlers.
type HandlerCtx = ara.Ctx

// RemoteError is an application-level error from a server.
type RemoteError = ara.RemoteError

// NewRuntime creates an ara::com runtime on a host.
func NewRuntime(host *Host, cfg RuntimeConfig) (*Runtime, error) {
	return ara.NewRuntime(host, cfg)
}

// --- SOME/IP ---

// ServiceID identifies a service interface on the wire.
type ServiceID = someip.ServiceID

// MethodID identifies a method or event on the wire.
type MethodID = someip.MethodID

// InstanceID distinguishes instances of a service.
type InstanceID = someip.InstanceID

// Message is a SOME/IP message (with optional DEAR tag).
type Message = someip.Message

// Endpoint is the pluggable SOME/IP transport seam: both the simulated
// binding and the real-socket UDP binding implement it, so everything
// above the codec is substrate-independent.
type Endpoint = someip.Endpoint

// EndpointAddr is a substrate-independent endpoint address (simnet.Addr
// or *net.UDPAddr).
type EndpointAddr = someip.Addr

// EventID builds the wire identifier for event number n.
func EventID(n uint16) MethodID { return someip.EventID(n) }

// --- Simulation substrate ---

// Kernel is the deterministic discrete-event simulation engine.
type Kernel = des.Kernel

// Process is a simulated thread of control.
type Process = des.Process

// LocalClock models a platform's drifting, resynchronized oscillator.
type LocalClock = des.LocalClock

// ClockConfig configures a LocalClock.
type ClockConfig = des.ClockConfig

// Rand is a deterministic random stream.
type Rand = des.Rand

// Network is a simulated switched network.
type Network = simnet.Network

// NetworkConfig configures a Network.
type NetworkConfig = simnet.Config

// Host is a simulated platform attached to a network.
type Host = simnet.Host

// Addr identifies a network endpoint.
type Addr = simnet.Addr

// LatencyModel computes one-way packet latencies.
type LatencyModel = simnet.LatencyModel

// FixedLatency is a constant-latency model.
type FixedLatency = simnet.FixedLatency

// JitterLatency models base + per-byte + truncated-Gaussian latency.
type JitterLatency = simnet.JitterLatency

// FaultPlan is a seeded, deterministic fault schedule: background loss,
// per-link loss windows, network partitions and jitter bursts, all
// drawn from counter-based per-link streams so packet fates are
// independent of execution interleaving (and therefore identical on a
// single kernel and on a federated Cluster — drops included).
type FaultPlan = simnet.FaultPlan

// LossWindow elevates loss probability on selected links for a window
// of simulated time.
type LossWindow = simnet.LossWindow

// PartitionWindow blacks out all traffic between two host groups for a
// window of simulated time.
type PartitionWindow = simnet.PartitionWindow

// JitterBurst adds bounded extra one-way delay on selected links for a
// window of simulated time (reordering traffic without losing it).
type JitterBurst = simnet.JitterBurst

// NewKernel creates a simulation kernel seeded with seed.
func NewKernel(seed uint64) *Kernel { return des.NewKernel(seed) }

// NewNetwork creates a simulated network on the kernel.
func NewNetwork(k *Kernel, cfg NetworkConfig) *Network { return simnet.NewNetwork(k, cfg) }

// --- Sharded (federated) simulation ---

// Federation shards a deterministic simulation across several kernels
// running in parallel under conservative (LBTS / null-message style)
// time synchronization. Same seed, same bytes — for every partition
// count and GOMAXPROCS value.
type Federation = des.Federation

// FederationChannel is a timestamped inter-federate link with a
// conservative lookahead.
type FederationChannel = des.Channel

// Cluster partitions a simulated network across the kernels of a
// Federation: intra-partition traffic schedules locally, cross-partition
// traffic rides federation channels whose lookahead is the link's
// minimum latency.
type Cluster = simnet.Cluster

// MinLatencyModel is a latency model with a known lower bound — required
// on cross-partition links, where the bound supplies the lookahead.
type MinLatencyModel = simnet.MinLatencyModel

// NewFederation creates a federation of partition kernels, all derived
// from the same seed.
func NewFederation(seed uint64, partitions int) *Federation {
	return des.NewFederation(seed, partitions)
}

// NewCluster creates a partitioned network over the federation.
func NewCluster(fed *Federation, cfg NetworkConfig) (*Cluster, error) {
	return simnet.NewCluster(fed, cfg)
}

// --- Scenario engine ---

// Scenario is the declarative description of a simulated deployment:
// platform count, topology shape, partition assignment, link model,
// fault plan, workload mix and seed. It serializes to/from JSON
// (durations are nanosecond integers), so deployments can be described
// in files and run without recompiling.
type Scenario = scenario.Spec

// ScenarioShape names a topology generator (star, ring, tree,
// random-regular, full) — all pure functions of the scenario seed.
type ScenarioShape = scenario.Shape

// ScenarioWorld is a compiled scenario: substrate, hosts, runtimes,
// workload and canonical per-platform stats.
type ScenarioWorld = scenario.World

// ScenarioCrashPlan schedules a platform crash and restart inside a
// compiled scenario.
type ScenarioCrashPlan = scenario.CrashPlan

// The topology shapes a Scenario can request.
const (
	ScenarioFull          = scenario.Full
	ScenarioRing          = scenario.Ring
	ScenarioStar          = scenario.Star
	ScenarioTree          = scenario.Tree
	ScenarioRandomRegular = scenario.RandomRegular
)

// BuildScenario compiles a scenario spec into a runnable world
// (single kernel or federation, chosen by Spec.Partitions). For a
// fixed spec the world's behaviour is byte-identical for every
// partition count and GOMAXPROCS value.
func BuildScenario(spec Scenario) (*ScenarioWorld, error) { return scenario.Build(spec) }

// DescribeScenario renders the canonical, mode-independent description
// of the world a spec compiles to (shape, link and workload
// parameters, the full call graph) without building it.
func DescribeScenario(spec Scenario) (string, error) { return scenario.Describe(spec) }

// ParseScenario decodes a JSON scenario description; unknown fields
// are rejected.
func ParseScenario(data []byte) (Scenario, error) { return scenario.ParseSpec(data) }

// MeshScenario returns the E10 preset: a ring mesh of n platforms with
// the standard workload mix.
func MeshScenario(n int) Scenario { return scenario.MeshPreset(n) }

// TopologyScenario returns the E12 preset: the standard workload on
// the given topology shape.
func TopologyScenario(shape ScenarioShape, n int) Scenario {
	return scenario.TopologyPreset(shape, n)
}

// --- Deterministic traces & replay ---

// Trace is a canonical logical event trace: records ordered by
// (time, component, sequence) — a total order every execution mode
// agrees on, so behaviourally identical runs produce byte-identical
// encoded traces for every partition count and GOMAXPROCS value.
type Trace = trace.Trace

// TraceRecord is one logical event of a Trace.
type TraceRecord = trace.Record

// TraceRecorder captures logical events into a pooled, zero-alloc
// ring buffer; it implements the kernel's Tracer hook.
type TraceRecorder = trace.Recorder

// TraceDivergence names the first event at which two traces disagree
// (time, component, kind, both sides' records).
type TraceDivergence = trace.Divergence

// KernelTracer is the kernel-side trace hook interface (see
// Kernel.SetTracer); TraceRecorder is the canonical implementation.
type KernelTracer = des.Tracer

// RecordingEndpoint wraps a transport endpoint and records traffic:
// inputs in full (replayable), outputs as digests.
type RecordingEndpoint = trace.RecordingEndpoint

// Replayer is a transport endpoint that re-injects a recorded
// trace's stored inputs into a fresh simulated kernel and captures
// the outputs for comparison.
type Replayer = trace.Replayer

// NewTraceRecorder creates a trace recorder holding up to capacity
// records.
func NewTraceRecorder(capacity int) *TraceRecorder { return trace.NewRecorder(capacity) }

// MergeTraces combines per-partition recorders into one canonical
// trace.
func MergeTraces(recorders ...*TraceRecorder) *Trace { return trace.Merge(recorders...) }

// FirstDivergence returns the first disagreement between two
// canonical traces, or nil when they are identical.
func FirstDivergence(a, b *Trace) *TraceDivergence { return trace.FirstDivergence(a, b) }

// NewRecordingEndpoint wraps ep so traffic is recorded into rec under
// the given component label; now supplies record timestamps.
func NewRecordingEndpoint(ep Endpoint, rec *TraceRecorder, component string, now func() Time) *RecordingEndpoint {
	return trace.NewRecordingEndpoint(ep, rec, component, now)
}

// NewReplayer creates a replayer that injects recorded's stored
// inputs into k and captures outputs into out.
func NewReplayer(k *Kernel, recorded *Trace, out *TraceRecorder) *Replayer {
	return trace.NewReplayer(k, recorded, out)
}

// NewEndpointRuntime creates an ara::com runtime over an arbitrary
// pre-built transport endpoint (e.g. a Replayer) driven by the given
// kernel.
func NewEndpointRuntime(k *Kernel, ep Endpoint, cfg RuntimeConfig) (*Runtime, error) {
	return ara.NewEndpointRuntime(k, ep, cfg)
}

// WriteTraceFile persists a trace in the deterministic binary format.
func WriteTraceFile(path string, t *Trace) error { return trace.WriteFile(path, t) }

// ReadTraceFile loads a binary trace file.
func ReadTraceFile(path string) (*Trace, error) { return trace.ReadFile(path) }

// --- Runtime monitors ---

// Monitor is one online temporal property evaluated over a trace
// stream. Monitors are stateful and single-use: build a fresh instance
// per engine.
type Monitor = monitor.Monitor

// MonitorEngine evaluates monitors over a live trace stream at zero
// allocations per event; it implements KernelTracer (attach next to a
// recorder via KernelTeeTracer) and the recorder's tap.
type MonitorEngine = monitor.Engine

// MonitorVerdict is one monitor's outcome: obligations checked,
// violations counted, a commutative violation hash, and the
// canonically smallest violation samples — all mode-independent.
type MonitorVerdict = monitor.Verdict

// MonitorViolation names one violated obligation, anchored at the
// trace record (time, component, sequence) that opened it.
type MonitorViolation = monitor.Violation

// ScenarioMonitors is a Scenario's declarative monitors block: which
// standard safety properties to verify online, with their deadlines.
type ScenarioMonitors = scenario.MonitorSpec

// NewMonitorEngine returns an engine evaluating freshly built
// monitors; call Finish at end of run, then Verdicts.
func NewMonitorEngine(monitors ...Monitor) *MonitorEngine { return monitor.NewEngine(monitors...) }

// KernelTeeTracer fans one kernel's trace stream out to several
// tracer hooks (e.g. a TraceRecorder and a MonitorEngine); nil sinks
// are dropped.
func KernelTeeTracer(sinks ...KernelTracer) KernelTracer { return des.TeeTracer(sinks...) }

// MonitorAlways requires every record to satisfy the predicate.
func MonitorAlways(name string, p monitor.Pred) Monitor { return monitor.Always(name, p) }

// MonitorNever forbids any record satisfying the predicate.
func MonitorNever(name string, p monitor.Pred) Monitor { return monitor.Never(name, p) }

// MonitorMatchedWithin requires every openKind record to be followed,
// on the same component, by one of closeKinds within d.
func MonitorMatchedWithin(name, openKind string, closeKinds []string, d Duration) Monitor {
	return monitor.MatchedWithin(name, openKind, closeKinds, d)
}

// MonitorNoSilentCorruption is the standard "no silent corruption
// ever" safety monitor.
func MonitorNoSilentCorruption() Monitor { return monitor.NoSilentCorruption() }

// MonitorRespondedWithin is the standard "every request answered or
// observably timed out within d" safety monitor.
func MonitorRespondedWithin(d Duration) Monitor { return monitor.RespondedWithin(d) }

// MonitorReboundWithin is the standard "every restart re-bound within
// d" safety monitor.
func MonitorReboundWithin(d Duration) Monitor { return monitor.ReboundWithin(d) }

// MonitorEvaluate runs freshly built monitors over a recorded trace
// offline — the replay half of the violation dump/replay round trip.
func MonitorEvaluate(t *Trace, monitors ...Monitor) []MonitorVerdict {
	return monitor.Evaluate(t, monitors...)
}

// MergeMonitorVerdicts folds per-engine verdict groups (one per
// partition kernel) into the mode-independent whole.
func MergeMonitorVerdicts(groups ...[]MonitorVerdict) []MonitorVerdict {
	return monitor.MergeVerdicts(groups...)
}

// DefaultScenarioMonitors enables the full standard safety library
// with deadlines derived from the spec's own timing model.
func DefaultScenarioMonitors(spec Scenario) *ScenarioMonitors { return scenario.DefaultMonitors(spec) }

// --- Physical substrate ---

// RealTime drives a kernel at the pace of the physical clock: queued
// events fire when the wall clock reaches their timestamps, and socket
// receptions enter the event queue through injection. It is the
// execution mode behind UDP runtimes.
type RealTime = des.RealTime

// NewRealTime creates a physical-clock driver for the kernel.
func NewRealTime(k *Kernel) *RealTime { return des.NewRealTime(k) }

// NewUDPRuntime creates an ara::com runtime over a real UDP socket
// (addr uses net.ListenUDP semantics, e.g. "127.0.0.1:0"), driven by
// the real-time driver. UDP runtimes have no service discovery; peers
// are configured statically with Runtime.StaticProxy.
func NewUDPRuntime(drv *RealTime, addr string, cfg RuntimeConfig) (*Runtime, error) {
	return ara.NewUDPRuntime(drv, addr, cfg)
}
