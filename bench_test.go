package dear_test

// The benchmark harness regenerates every experiment of the paper's
// evaluation (see DESIGN.md for the experiment index). Absolute numbers
// differ from the paper — the substrate is a deterministic simulator, not
// two MinnowBoard Turbot boards — but the reported custom metrics carry
// the figures' shapes: the Figure 1 outcome probabilities, the Figure 5
// error prevalence spread, the deterministic pipeline's zero errors and
// bounded latency, and the deadline/latency trade-off.
//
// Run with:
//
//	go test -bench=. -benchmem .

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/apd"
	"repro/internal/des"
	"repro/internal/exp"
	"repro/internal/logical"
	"repro/internal/reactor"
	"repro/internal/simnet"
	"repro/internal/someip"
)

// BenchmarkFigure1 regenerates the Figure 1 distribution. One benchmark
// iteration = one client/server trial (3 method calls end to end).
func BenchmarkFigure1(b *testing.B) {
	cfg := exp.DefaultFigure1Config(b.N)
	res, err := exp.RunFigure1(1, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Probability(0), "P0")
	b.ReportMetric(res.Probability(1), "P1")
	b.ReportMetric(res.Probability(2), "P2")
	b.ReportMetric(res.Probability(3), "P3")
}

// BenchmarkFigure1Blocking shows the serialized fix: P(3) = 1.
func BenchmarkFigure1Blocking(b *testing.B) {
	cfg := exp.DefaultFigure1Config(b.N)
	cfg.Blocking = true
	res, err := exp.RunFigure1(1, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Probability(3), "P3")
}

// BenchmarkFigure5 regenerates the Figure 5 experiment. One iteration =
// one experiment instance of 2000 frames (the paper's instances are 100k
// frames; run cmd/figure5 for paper scale).
func BenchmarkFigure5(b *testing.B) {
	res, err := exp.RunFigure5(2024, b.N, 2000)
	if err != nil {
		b.Fatal(err)
	}
	min, mean, max := res.Stats()
	b.ReportMetric(min, "min%")
	b.ReportMetric(mean, "mean%")
	b.ReportMetric(max, "max%")
}

// BenchmarkDeterministicBrakeAssistant regenerates the Section IV-B
// result. One iteration = one pipeline frame.
func BenchmarkDeterministicBrakeAssistant(b *testing.B) {
	frames := b.N
	if frames < 10 {
		frames = 10
	}
	res, err := exp.RunDeterministic(1, frames)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Counters.TotalErrors()), "errors")
	b.ReportMetric(float64(res.LatencyMean)/1e6, "latency-ms")
	b.ReportMetric(float64(res.LatencyMax)/1e6, "latency-max-ms")
}

// BenchmarkBaselineBrakeAssistant is the baseline counterpart, for
// direct comparison of error counts under identical workloads.
func BenchmarkBaselineBrakeAssistant(b *testing.B) {
	frames := b.N
	if frames < 10 {
		frames = 10
	}
	bl, err := apd.NewBaseline(1, apd.DefaultBaselineConfig(frames))
	if err != nil {
		b.Fatal(err)
	}
	c := bl.Run()
	b.ReportMetric(float64(c.TotalErrors()), "errors")
	b.ReportMetric(c.Prevalence(), "prevalence%")
}

// BenchmarkTradeoff sweeps one deadline-scale point per iteration batch
// (the E5 extension study).
func BenchmarkTradeoff(b *testing.B) {
	for _, scale := range []float64{0.8, 0.9, 1.0} {
		b.Run(formatScale(scale), func(b *testing.B) {
			frames := b.N
			if frames < 10 {
				frames = 10
			}
			res, err := exp.RunTradeoff(1, frames, []float64{scale})
			if err != nil {
				b.Fatal(err)
			}
			p := res.Points[0]
			b.ReportMetric(100*p.ViolationRate, "violation%")
			b.ReportMetric(float64(p.LatencyMax)/1e6, "latency-max-ms")
		})
	}
}

func formatScale(s float64) string {
	switch s {
	case 0.8:
		return "scale-0.8"
	case 0.9:
		return "scale-0.9"
	default:
		return "scale-1.0"
	}
}

// BenchmarkFigure3RoundTrip measures one tagged method call through the
// full transactor chain of Figure 3 (client reactor → CMT → proxy →
// tagged binding → wire → skeleton → SMT → server reactor and back).
func BenchmarkFigure3RoundTrip(b *testing.B) {
	n := b.N
	if n < 1 {
		n = 1
	}
	completed, err := exp.RunMethodRoundTrips(1, n)
	if err != nil {
		b.Fatal(err)
	}
	if completed != n {
		b.Fatalf("completed %d/%d round trips", completed, n)
	}
}

// BenchmarkLoopbackRoundTrip is the E9 substrate check: one tagged
// method call through ara.Runtime over real loopback UDP sockets,
// kernels driven by the physical clock. Unlike the simulated
// experiments the numbers here are machine-dependent wall-clock times.
func BenchmarkLoopbackRoundTrip(b *testing.B) {
	n := b.N
	if n < 1 {
		n = 1
	}
	res, err := exp.RunLoopback(n, 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	if res.Completed != n {
		b.Fatalf("completed %d/%d round trips", res.Completed, n)
	}
	b.ReportMetric(float64(res.RTTMean.Nanoseconds()), "rtt-ns/op")
}

// BenchmarkTagTrailerOverhead is the E6 ablation: codec cost with and
// without the DEAR tag trailer.
func BenchmarkTagTrailerOverhead(b *testing.B) {
	payload := make([]byte, 1548) // one video frame
	plain := &someip.Message{Service: 1, Method: someip.EventID(1), Type: someip.TypeNotification, Payload: payload}
	tag := logical.Tag{Time: 123456789, Microstep: 2}
	tagged := &someip.Message{Service: 1, Method: someip.EventID(1), Type: someip.TypeNotification, Payload: payload, Tag: &tag}

	b.Run("marshal-plain", func(b *testing.B) {
		buf := make([]byte, plain.WireSize())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			plain.MarshalTo(buf)
		}
	})
	b.Run("marshal-tagged", func(b *testing.B) {
		buf := make([]byte, tagged.WireSize())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tagged.MarshalTo(buf)
		}
	})
	wirePlain := plain.Marshal()
	wireTagged := tagged.Marshal()
	b.Run("unmarshal-plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := someip.UnmarshalTagged(wirePlain); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unmarshal-tagged", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := someip.UnmarshalTagged(wireTagged); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWorkerScaling is the E7 ablation: the reactor scheduler's
// in-level parallelism. The logical trace is identical for every worker
// count (asserted in the reactor tests); here we measure throughput of a
// wide fan-out program under real parallel execution.
func BenchmarkWorkerScaling(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			env := reactor.NewEnvironment(reactor.Options{Fast: true, Workers: workers})
			src := env.NewReactor("src")
			out := reactor.NewOutputPort[int](src, "out")
			timer := reactor.NewTimer(src, "t", 0, logical.Microsecond)
			n := 0
			limit := b.N
			src.AddReaction("emit").Triggers(timer).Effects(out).Do(func(c *reactor.Ctx) {
				n++
				if n > limit {
					c.RequestStop()
					return
				}
				out.Set(c, n)
			})
			// 16 parallel workers each doing real computation.
			sink := make([]int, 16)
			for w := 0; w < 16; w++ {
				w := w
				r := env.NewReactor(benchName("w", w))
				in := reactor.NewInputPort[int](r, "in")
				reactor.Connect(out, in)
				r.AddReaction("work").Triggers(in).Do(func(c *reactor.Ctx) {
					v, _ := in.Get(c)
					acc := v
					// Enough per-reaction computation (~30µs) for in-level
					// parallelism to outweigh goroutine hand-off costs.
					for i := 0; i < 60000; i++ {
						acc = acc*1103515245 + 12345
					}
					sink[w] = acc
				})
			}
			b.ResetTimer()
			if err := env.Run(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func addrOf(host, port uint16) simnet.Addr { return simnet.Addr{Host: host, Port: port} }

func benchName(prefix string, n int) string {
	return fmt.Sprintf("%s-%d", prefix, n)
}

// BenchmarkReactorEventThroughput measures raw scheduler throughput:
// events per second through a two-reactor ping chain.
func BenchmarkReactorEventThroughput(b *testing.B) {
	env := reactor.NewEnvironment(reactor.Options{Fast: true})
	r := env.NewReactor("chain")
	act := reactor.NewLogicalAction[int](r, "a", logical.Nanosecond)
	limit := b.N
	r.AddReaction("kick").Triggers(r.Startup()).Effects(act).Do(func(c *reactor.Ctx) {
		act.Schedule(c, 0, 0)
	})
	r.AddReaction("loop").Triggers(act).Effects(act).Do(func(c *reactor.Ctx) {
		v, _ := act.Get(c)
		if v < limit {
			act.Schedule(c, v+1, 0)
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFederationScaling is the E10 scaling study: one iteration =
// one full N-platform mesh run (identical workload and — asserted —
// identical report in every variant), executed single-kernel and sharded
// over 2/4/8 federated kernels. On a multi-core host the federated
// variants run the same simulation in less wall-clock time; on a single
// core they expose the coordination overhead instead. The cross-link
// latency doubles as the conservative lookahead, so wider links mean
// wider grant windows and fewer coordination rounds. Note the workload
// emits cross-partition traffic far denser than the lookahead, so the
// round count sits at the conservative floor (span/lookahead) in any
// sound coordinator; the async coordinator's win is that rounds no
// longer serialize the partitions on a multi-core host.
func BenchmarkFederationScaling(b *testing.B) {
	cfg := exp.DefaultMeshConfig(16)
	cfg.Rounds = 10
	cfg.NoiseEvents = 3000
	cfg.NoiseInterval = 20 * logical.Microsecond
	cfg.LinkLatency = 2 * logical.Millisecond

	ref, err := exp.RunMesh(1, cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	refReport := ref.Report()

	for _, parts := range []int{1, 2, 4, 8} {
		b.Run(benchName("partitions", parts), func(b *testing.B) {
			var events, rounds, grants uint64
			var parked int64
			for i := 0; i < b.N; i++ {
				res, err := exp.RunMesh(1, cfg, parts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Report() != refReport {
					b.Fatal("determinism gate failed: federated report diverged from single-kernel report")
				}
				events = res.EventsFired
				rounds = res.CoordRounds
				grants = res.CoordGrants
				parked += res.CoordParkedNs
			}
			b.ReportMetric(float64(events), "events/op")
			b.ReportMetric(float64(rounds), "sync-rounds/op")
			b.ReportMetric(float64(grants), "grants/op")
			b.ReportMetric(float64(parked)/float64(b.N), "parked-ns/op")
		})
	}
}

// BenchmarkCityScale is the E14 throughput study: one iteration = one
// 5000-platform city scenario run federated over 4 partitions, with
// the byte-equality gate against the single-kernel reference riding
// along on every iteration. The headline metric is messages/sec/core:
// delivered datagrams per wall-clock second, normalized by the cores
// the federation could use — the figure the city-scale acceptance
// criterion tracks. cmd/experiments -bench-json mirrors this benchmark
// to emit BENCH_city.json.
func BenchmarkCityScale(b *testing.B) {
	cfg := exp.CityConfig{Platforms: exp.DefaultCityPlatforms, Rounds: 2, Partitions: 4, Seed: 1}
	single := cfg
	single.Partitions = 1
	ref, err := exp.RunScenario(exp.CitySpec(single))
	if err != nil {
		b.Fatal(err)
	}
	refReport := ref.Report()
	var last *exp.CityScaleResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunCityScale(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Result.Report() != refReport {
			b.Fatal("E14 determinism gate failed: federated city report diverged from single-kernel report")
		}
		last = res
	}
	b.ReportMetric(last.MsgPerSecPerCore, "msg/sec/core")
	b.ReportMetric(float64(last.Messages), "messages/op")
	b.ReportMetric(float64(last.Result.CtrlFanout), "ctrl-fanout/op")
}

// BenchmarkFaults measures E11: the federated mesh under the full fault
// schedule — counter-based drops, a loss window, a partition window,
// jitter bursts and a crash/restart — including the per-packet fault
// verdict on every inter-host unicast. The determinism gate rides
// along: the faulted federated report must match the single-kernel one.
func BenchmarkFaults(b *testing.B) {
	cfg := exp.DefaultFaultMeshConfig(8)
	ref, err := exp.RunFaultMesh(1, cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	refReport := ref.Report()
	var errs int
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFaultMesh(1, cfg, 4)
		if err != nil {
			b.Fatal(err)
		}
		if res.Report() != refReport {
			b.Fatal("E11 determinism gate failed: faulted federated report diverged")
		}
		errs = 0
		for _, row := range res.Rows {
			errs += row.Errors
		}
	}
	b.ReportMetric(float64(errs), "observable-errors/op")
}

// BenchmarkTopologySweep measures E12: one iteration = the full
// topology sweep — every shape (star, ring, tree, random-regular)
// compiled by the scenario engine and executed single-kernel and
// federated — with the per-shape byte-equality determinism gate riding
// along inside RunTopologySweep.
func BenchmarkTopologySweep(b *testing.B) {
	cfg := exp.TopologySweepConfig{
		Platforms:       8,
		Rounds:          8,
		NoiseEvents:     200,
		PartitionCounts: []int{1, 2, 4},
	}
	var cells int
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTopologySweep(1, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cells = len(res.Entries)
	}
	b.ReportMetric(float64(cells), "cells/op")
}

// BenchmarkTraceReplay regenerates E13: one iteration records a live
// loopback run over real UDP sockets, replays it inside a fresh
// simulated kernel and verifies the replayed outputs match the
// recorded ones record-for-record.
func BenchmarkTraceReplay(b *testing.B) {
	var events int
	for i := 0; i < b.N; i++ {
		res, err := exp.RunReplay(20, 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Match() {
			b.Fatalf("E13 replay gate failed: %s", res.Divergence)
		}
		events = res.Recorded.Len()
	}
	b.ReportMetric(float64(events), "events/op")
}

// BenchmarkDESKernel measures raw simulation-kernel event throughput.
func BenchmarkDESKernel(b *testing.B) {
	k := des.NewKernel(1)
	var next func()
	count := 0
	next = func() {
		count++
		if count < b.N {
			k.After(1, next)
		}
	}
	b.ResetTimer()
	k.At(0, next)
	k.RunAll()
}

// BenchmarkSomeIPSDCodec measures service-discovery encode/decode.
func BenchmarkSomeIPSDCodec(b *testing.B) {
	entries := []someip.Entry{{
		Type: someip.OfferService, Service: 0x1234, Instance: 1,
		Major: 1, Minor: 0, TTL: 3,
		Options: []someip.Option{{Type: someip.IPv4EndpointOption, Addr: addrOf(2, 40000), Proto: someip.UDPProto}},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		payload := someip.MarshalSD(entries)
		if _, err := someip.UnmarshalSD(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSyntheticVision measures the shared computational logic
// (frame synthesis + lane detection + vehicle detection).
func BenchmarkSyntheticVision(b *testing.B) {
	s := &apd.Scene{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := s.Generate(0)
		lane := apd.Preprocess(f)
		apd.DetectVehicles(f, lane)
	}
}
