// Clientserver reproduces the motivating example of the paper (Figure 1)
// through the public API: a client manipulates a server's state variable
// with three non-blocking AUTOSAR AP method calls
//
//	s.set_value(1); s.add(2); result = s.get_value()
//
// and prints the result. The server enforces mutual exclusion between
// invocations but the runtime maps each invocation to a worker thread, so
// the processing ORDER is up to the (simulated, seeded) scheduler: the
// printed value is any of 0, 1, 2 or 3.
//
// Run with:
//
//	go run ./examples/clientserver
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	dear "repro"
)

var counterIface = &dear.ServiceInterface{
	Name:  "Counter",
	ID:    0x1100,
	Major: 1,
	Methods: []dear.MethodSpec{
		{ID: 1, Name: "set_value"},
		{ID: 2, Name: "add"},
		{ID: 3, Name: "get_value"},
	},
}

func u32(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}

// runOnce builds a fresh two-platform deployment and performs the three
// calls, returning the printed value.
func runOnce(seed uint64, blocking bool) uint32 {
	k := dear.NewKernel(seed)
	net := dear.NewNetwork(k, dear.NetworkConfig{})
	p1 := net.AddHost("server-ecu", k.NewLocalClock(dear.ClockConfig{}, nil))
	p2 := net.AddHost("client-ecu", k.NewLocalClock(dear.ClockConfig{}, nil))

	server, err := dear.NewRuntime(p1, dear.RuntimeConfig{
		Name: "server",
		Exec: dear.ExecConfig{Workers: 4, Serialized: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	client, err := dear.NewRuntime(p2, dear.RuntimeConfig{Name: "client"})
	if err != nil {
		log.Fatal(err)
	}

	var value uint32
	sk, err := server.NewSkeleton(counterIface, 1)
	if err != nil {
		log.Fatal(err)
	}
	check(sk.Handle("set_value", func(c *dear.HandlerCtx, args []byte) ([]byte, error) {
		value = binary.BigEndian.Uint32(args)
		return nil, nil
	}))
	check(sk.Handle("add", func(c *dear.HandlerCtx, args []byte) ([]byte, error) {
		value += binary.BigEndian.Uint32(args)
		return nil, nil
	}))
	check(sk.Handle("get_value", func(c *dear.HandlerCtx, args []byte) ([]byte, error) {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], value)
		return b[:], nil
	}))
	k.At(0, func() { sk.Offer() })

	var printed uint32
	client.Spawn("main", func(c *dear.HandlerCtx) {
		px, err := client.FindServiceSync(c.Process(), counterIface, 1, dear.Duration(dear.Second))
		if err != nil {
			log.Fatal(err)
		}
		if blocking {
			// The fix: wait for each future before the next call.
			mustGet(c, px.Call("set_value", u32(1)))
			mustGet(c, px.Call("add", u32(2)))
		} else {
			// The Figure 1 client: fire and continue.
			px.Call("set_value", u32(1))
			c.Exec(dear.Duration(20 * dear.Microsecond))
			px.Call("add", u32(2))
			c.Exec(dear.Duration(20 * dear.Microsecond))
		}
		res, err := px.Call("get_value", nil).Get(c.Process())
		if err != nil {
			log.Fatal(err)
		}
		printed = binary.BigEndian.Uint32(res)
	})
	k.Run(dear.Time(10 * dear.Second))
	return printed
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustGet(c *dear.HandlerCtx, f *dear.Future) {
	if _, err := f.Get(c.Process()); err != nil {
		log.Fatal(err)
	}
}

func main() {
	fmt.Println("non-blocking client (Figure 1) over 24 scheduler seeds:")
	counts := map[uint32]int{}
	for seed := uint64(0); seed < 24; seed++ {
		v := runOnce(seed, false)
		counts[v]++
		fmt.Printf("%d ", v)
	}
	fmt.Printf("\noutcome counts: %v — nondeterministic\n\n", counts)

	fmt.Println("blocking client (waiting on futures) over 24 seeds:")
	for seed := uint64(0); seed < 24; seed++ {
		fmt.Printf("%d ", runOnce(seed, true))
	}
	fmt.Println("\nalways 3 — serialized, but at the cost of blocking the client")
}
