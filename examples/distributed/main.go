// Distributed demonstrates PTIDES-style safe-to-process coordination
// across platforms with imperfect clocks: two sender SWCs on different
// ECUs (with drifting, periodically synchronized clocks) publish events
// to one consumer, which must handle all of them in tag order.
//
// The receiving transactors delay each message to tag + L + E, where L is
// the worst-case network latency and E the clock synchronization bound —
// the condition under which no earlier-tagged message can still arrive.
// The example also shows what happens when the bound is violated: the
// violation is *detected and counted*, never silent.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	dear "repro"
)

func sensorIface(id dear.ServiceID, name string) *dear.ServiceInterface {
	return &dear.ServiceInterface{
		Name:  name,
		ID:    id,
		Major: 1,
		Events: []dear.EventSpec{
			{ID: dear.EventID(1), Name: "data", Eventgroup: 1},
		},
	}
}

var (
	leftIface  = sensorIface(0x5001, "LeftRadar")
	rightIface = sensorIface(0x5002, "RightRadar")
)

func main() {
	k := dear.NewKernel(7)
	net := dear.NewNetwork(k, dear.NetworkConfig{
		DefaultLatency: &dear.JitterLatency{
			Base:  dear.Duration(300 * dear.Microsecond),
			Sigma: dear.Duration(500 * dear.Microsecond),
			Max:   dear.Duration(3 * dear.Millisecond),
			Rng:   k.Rand("link"),
		},
	})

	// Three ECUs with drifting clocks, synchronized to within E=1ms.
	clockFor := func(name string, drift int64) *dear.LocalClock {
		return k.NewLocalClock(dear.ClockConfig{
			DriftPPB:   drift,
			SyncBound:  dear.Duration(dear.Millisecond),
			SyncPeriod: dear.Duration(500 * dear.Millisecond),
		}, k.Rand("sync."+name))
	}
	ecuL := net.AddHost("ecu-left", clockFor("left", 30_000))
	ecuR := net.AddHost("ecu-right", clockFor("right", -20_000))
	ecuC := net.AddHost("ecu-fusion", clockFor("fusion", 10_000))

	// Honest bounds: L=5ms >> actual ~3ms max, E=1ms (the sync bound).
	tcfg := dear.TransactorConfig{
		Deadline: dear.Duration(2 * dear.Millisecond),
		Link: dear.LinkConfig{
			Latency:    dear.Duration(5 * dear.Millisecond),
			ClockError: dear.Duration(dear.Millisecond),
		},
	}
	horizon := dear.Duration(3 * dear.Second)

	mkSensor := func(host *dear.Host, name string, iface *dear.ServiceInterface, phase dear.Duration) {
		swc, err := dear.NewSWC(host, dear.RuntimeConfig{Name: name})
		if err != nil {
			log.Fatal(err)
		}
		swc.Start(dear.StartOptions{KeepAlive: true, Timeout: horizon}, func(env *dear.Environment) error {
			sk, err := swc.Runtime().NewSkeleton(iface, 1)
			if err != nil {
				return err
			}
			set, err := dear.NewServerEventTransactor(env, swc, sk, "data", tcfg)
			if err != nil {
				return err
			}
			logic := env.NewReactor("logic")
			out := dear.NewOutputPort[[]byte](logic, "out")
			dear.Connect(out, set.In)
			timer := dear.NewTimer(logic, "t", dear.Duration(400*dear.Millisecond)+phase, dear.Duration(50*dear.Millisecond))
			n := uint32(0)
			logic.AddReaction("emit").Triggers(timer).Effects(out).Do(func(c *dear.ReactionCtx) {
				n++
				var b [4]byte
				binary.BigEndian.PutUint32(b[:], n)
				out.Set(c, b[:])
			})
			sk.Offer()
			return nil
		})
	}
	mkSensor(ecuL, "left-radar", leftIface, 0)
	mkSensor(ecuR, "right-radar", rightIface, dear.Duration(7*dear.Millisecond))

	// --- Fusion SWC subscribes to both radars.
	fusion, err := dear.NewSWC(ecuC, dear.RuntimeConfig{Name: "fusion"})
	if err != nil {
		log.Fatal(err)
	}
	type rx struct {
		src string
		val uint32
		tag dear.Tag
	}
	var received []rx
	var cetL, cetR *dear.ClientEventTransactor
	fusion.Start(dear.StartOptions{KeepAlive: true, Timeout: horizon}, func(env *dear.Environment) error {
		var err error
		cetL, err = dear.NewClientEventTransactor(env, fusion, leftIface, 1, "data", tcfg)
		if err != nil {
			return err
		}
		cetR, err = dear.NewClientEventTransactor(env, fusion, rightIface, 1, "data", tcfg)
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		inL := dear.NewInputPort[[]byte](logic, "left")
		inR := dear.NewInputPort[[]byte](logic, "right")
		dear.Connect(cetL.Out, inL)
		dear.Connect(cetR.Out, inR)
		logic.AddReaction("fuse").Triggers(inL, inR).Do(func(c *dear.ReactionCtx) {
			if v, ok := inL.Get(c); ok {
				received = append(received, rx{"left ", binary.BigEndian.Uint32(v), c.Tag()})
			}
			if v, ok := inR.Get(c); ok {
				received = append(received, rx{"right", binary.BigEndian.Uint32(v), c.Tag()})
			}
		})
		return nil
	})

	k.Run(dear.Time(horizon) + dear.Time(dear.Second))

	fmt.Printf("fusion handled %d events, all in tag order:\n", len(received))
	last := dear.Tag{}
	ordered := true
	for i, r := range received {
		if r.tag.Before(last) {
			ordered = false
		}
		last = r.tag
		if i < 6 || i >= len(received)-2 {
			fmt.Printf("  %s #%-3d at tag %v\n", r.src, r.val, r.tag)
		} else if i == 6 {
			fmt.Println("  ...")
		}
	}
	fmt.Printf("tag order preserved: %v\n", ordered)
	fmt.Printf("safe-to-process violations: left=%d right=%d (bounds were honest)\n",
		cetL.Stats().SafeToProcessViolations, cetR.Stats().SafeToProcessViolations)
	fmt.Println("\nEach event was handled at tag t+D+L+E — after the physical-time")
	fmt.Println("barrier guaranteed no earlier-tagged message could still arrive.")
}
