// Pipeline builds a miniature deterministic sensing pipeline with the
// DEAR framework — the same pattern as the paper's brake assistant, in
// ~150 lines: a sensor SWC publishes tagged measurements through a server
// event transactor; a controller SWC consumes them through a client event
// transactor, processes each exactly once in tag order, and reports.
//
// The physical world (sensor timing, network latency) is jittery, yet the
// controller's view is reproducible: run with different -seed values and
// observe identical processed sequences.
//
// Run with:
//
//	go run ./examples/pipeline [-seed N]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"

	dear "repro"
)

var sensorIface = &dear.ServiceInterface{
	Name:  "Sensor",
	ID:    0x4001,
	Major: 1,
	Events: []dear.EventSpec{
		{ID: dear.EventID(1), Name: "measurement", Eventgroup: 1},
	},
}

func main() {
	seed := flag.Uint64("seed", 1, "physical-world seed")
	flag.Parse()

	k := dear.NewKernel(*seed)
	net := dear.NewNetwork(k, dear.NetworkConfig{
		// A jittery link — physical nondeterminism the pipeline must hide.
		DefaultLatency: &dear.JitterLatency{
			Base:  dear.Duration(200 * dear.Microsecond),
			Sigma: dear.Duration(300 * dear.Microsecond),
			Max:   dear.Duration(2 * dear.Millisecond),
			Rng:   k.Rand("link"),
		},
	})
	ecu1 := net.AddHost("sensor-ecu", k.NewLocalClock(dear.ClockConfig{}, nil))
	ecu2 := net.AddHost("control-ecu", k.NewLocalClock(dear.ClockConfig{}, nil))

	// Timing contract: sensor deadline 2ms, worst-case latency 5ms.
	tcfg := dear.TransactorConfig{
		Deadline: dear.Duration(2 * dear.Millisecond),
		Link:     dear.LinkConfig{Latency: dear.Duration(5 * dear.Millisecond)},
	}
	horizon := dear.Duration(3 * dear.Second)

	// --- Sensor SWC on ECU 1.
	sensor, err := dear.NewSWC(ecu1, dear.RuntimeConfig{Name: "sensor"})
	if err != nil {
		log.Fatal(err)
	}
	sensor.Start(dear.StartOptions{KeepAlive: true, Timeout: horizon}, func(env *dear.Environment) error {
		sk, err := sensor.Runtime().NewSkeleton(sensorIface, 1)
		if err != nil {
			return err
		}
		set, err := dear.NewServerEventTransactor(env, sensor, sk, "measurement", tcfg)
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		out := dear.NewOutputPort[[]byte](logic, "out")
		dear.Connect(out, set.In)
		// Sample every 100ms of logical time, starting after discovery.
		timer := dear.NewTimer(logic, "sample", dear.Duration(300*dear.Millisecond), dear.Duration(100*dear.Millisecond))
		n := uint32(0)
		logic.AddReaction("sample").Triggers(timer).Effects(out).Do(func(c *dear.ReactionCtx) {
			n++
			var b [4]byte
			binary.BigEndian.PutUint32(b[:], n*n) // the "measurement"
			out.Set(c, b[:])
		})
		sk.Offer()
		return nil
	})

	// --- Controller SWC on ECU 2.
	controller, err := dear.NewSWC(ecu2, dear.RuntimeConfig{Name: "controller"})
	if err != nil {
		log.Fatal(err)
	}
	var processed []uint32
	var tags []dear.Tag
	controller.Start(dear.StartOptions{KeepAlive: true, Timeout: horizon}, func(env *dear.Environment) error {
		cet, err := dear.NewClientEventTransactor(env, controller, sensorIface, 1, "measurement", tcfg)
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		in := dear.NewInputPort[[]byte](logic, "in")
		dear.Connect(cet.Out, in)
		logic.AddReaction("consume").Triggers(in).Do(func(c *dear.ReactionCtx) {
			payload, _ := in.Get(c)
			v := binary.BigEndian.Uint32(payload)
			processed = append(processed, v)
			tags = append(tags, c.Tag())
		})
		return nil
	})

	k.Run(dear.Time(horizon) + dear.Time(dear.Second))

	fmt.Printf("seed %d: controller processed %d measurements, in tag order:\n", *seed, len(processed))
	for i, v := range processed {
		if i < 5 || i >= len(processed)-2 {
			fmt.Printf("  tag %-16v value %d\n", tags[i], v)
		} else if i == 5 {
			fmt.Println("  ...")
		}
	}
	fmt.Println("\nRe-run with a different -seed: the physical timing changes,")
	fmt.Println("the processed values and their ORDER do not — that is DEAR.")
}
