// Fieldmirror demonstrates AP fields under DEAR: a field is a state
// variable exposed by a server with a get method, a set method and a
// change notifier — which is why the paper's field transactor composes
// one event and two method transactors.
//
// A "vehicle config" server keeps a speed limit in its reactor state; a
// dashboard client mirrors it: it subscribes to changes, adjusts the
// limit, and reads it back — all deterministic, all in tag order.
//
// Run with:
//
//	go run ./examples/fieldmirror
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	dear "repro"
)

var configIface = &dear.ServiceInterface{
	Name:  "VehicleConfig",
	ID:    0x6201,
	Major: 1,
	Fields: []dear.FieldSpec{
		{Name: "speed_limit", Get: 0x0001, Set: 0x0002, Notifier: dear.EventID(1), Eventgroup: 1},
	},
}

func u32(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}

func main() {
	k := dear.NewKernel(2)
	net := dear.NewNetwork(k, dear.NetworkConfig{})
	serverECU := net.AddHost("config-ecu", k.NewLocalClock(dear.ClockConfig{}, nil))
	clientECU := net.AddHost("dashboard-ecu", k.NewLocalClock(dear.ClockConfig{}, nil))

	tcfg := dear.TransactorConfig{
		Deadline: dear.Duration(5 * dear.Millisecond),
		Link:     dear.LinkConfig{Latency: dear.Duration(5 * dear.Millisecond)},
	}
	horizon := dear.Duration(3 * dear.Second)

	// --- Server: the field state lives in the reactor.
	server, err := dear.NewSWC(serverECU, dear.RuntimeConfig{Name: "config"})
	if err != nil {
		log.Fatal(err)
	}
	server.Start(dear.StartOptions{KeepAlive: true, Timeout: horizon}, func(env *dear.Environment) error {
		sk, err := server.Runtime().NewSkeleton(configIface, 1)
		if err != nil {
			return err
		}
		sft, err := dear.NewServerFieldTransactor(env, server, sk, "speed_limit", tcfg)
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		state := u32(120) // km/h
		getIn := dear.NewInputPort[[]byte](logic, "get")
		setIn := dear.NewInputPort[[]byte](logic, "set")
		getOut := dear.NewOutputPort[[]byte](logic, "getOut")
		setOut := dear.NewOutputPort[[]byte](logic, "setOut")
		update := dear.NewOutputPort[[]byte](logic, "update")
		dear.Connect(sft.GetRequest, getIn)
		dear.Connect(sft.SetRequest, setIn)
		dear.Connect(getOut, sft.GetResponse)
		dear.Connect(setOut, sft.SetResponse)
		dear.Connect(update, sft.UpdateIn)
		logic.AddReaction("get").Triggers(getIn).Effects(getOut).Do(func(c *dear.ReactionCtx) {
			getOut.Set(c, state)
		})
		logic.AddReaction("set").Triggers(setIn).Effects(setOut, update).Do(func(c *dear.ReactionCtx) {
			v, _ := setIn.Get(c)
			// Validate: clamp to 30..130 km/h.
			limit := binary.BigEndian.Uint32(v)
			if limit > 130 {
				limit = 130
			}
			if limit < 30 {
				limit = 30
			}
			state = u32(limit)
			setOut.Set(c, state)
			update.Set(c, state)
		})
		sk.Offer()
		return nil
	})

	// --- Dashboard client.
	client, err := dear.NewSWC(clientECU, dear.RuntimeConfig{Name: "dashboard"})
	if err != nil {
		log.Fatal(err)
	}
	client.Start(dear.StartOptions{KeepAlive: true, Timeout: horizon}, func(env *dear.Environment) error {
		cft, err := dear.NewClientFieldTransactor(env, client, configIface, 1, "speed_limit", tcfg)
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		getReq := dear.NewOutputPort[[]byte](logic, "getReq")
		setReq := dear.NewOutputPort[[]byte](logic, "setReq")
		value := dear.NewInputPort[[]byte](logic, "value")
		setAck := dear.NewInputPort[[]byte](logic, "setAck")
		changed := dear.NewInputPort[[]byte](logic, "changed")
		dear.Connect(getReq, cft.GetRequest)
		dear.Connect(setReq, cft.SetRequest)
		dear.Connect(cft.Value, value)
		dear.Connect(cft.SetResult, setAck)
		dear.Connect(cft.Changed, changed)

		// Scenario: read, then try to set 150 (clamped to 130), then 80.
		step := 0
		kick := dear.NewTimer(logic, "kick", dear.Duration(400*dear.Millisecond), dear.Duration(200*dear.Millisecond))
		logic.AddReaction("drive").Triggers(kick).Effects(getReq, setReq).Do(func(c *dear.ReactionCtx) {
			step++
			switch step {
			case 1:
				fmt.Printf("[%v] dashboard: get()\n", c.Elapsed())
				getReq.Set(c, nil)
			case 2:
				fmt.Printf("[%v] dashboard: set(150) — over the cap\n", c.Elapsed())
				setReq.Set(c, u32(150))
			case 3:
				fmt.Printf("[%v] dashboard: set(80)\n", c.Elapsed())
				setReq.Set(c, u32(80))
			}
		})
		logic.AddReaction("value").Triggers(value).Do(func(c *dear.ReactionCtx) {
			v, _ := value.Get(c)
			fmt.Printf("[%v] dashboard: value = %d km/h\n", c.Elapsed(), binary.BigEndian.Uint32(v))
		})
		logic.AddReaction("ack").Triggers(setAck).Do(func(c *dear.ReactionCtx) {
			v, _ := setAck.Get(c)
			fmt.Printf("[%v] dashboard: server accepted %d km/h\n", c.Elapsed(), binary.BigEndian.Uint32(v))
		})
		logic.AddReaction("changed").Triggers(changed).Do(func(c *dear.ReactionCtx) {
			v, _ := changed.Get(c)
			fmt.Printf("[%v] dashboard: notified, limit now %d km/h\n", c.Elapsed(), binary.BigEndian.Uint32(v))
		})
		return nil
	})

	k.Run(dear.Time(horizon) + dear.Time(dear.Second))
	fmt.Println("\nEvery interaction rode a tagged message; get/set/notify of the")
	fmt.Println("field triple each went through their own transactor (Sec. III-B).")
}
