// Quickstart: a minimal deterministic reactor program.
//
// Two reactors are connected by a typed port: a source emits a counter
// value every 100ms of logical time and a sink prints it. Reactions are
// logically instantaneous; the program's behaviour is a pure function of
// its inputs, independent of physical timing.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	dear "repro"
)

func main() {
	// Fast mode: logical time advances as fast as events allow; remove
	// Fast to align logical with wall-clock time.
	env := dear.NewEnvironment(dear.Options{
		Fast:    true,
		Timeout: dear.Duration(1 * dear.Second),
	})

	src := env.NewReactor("source")
	sink := env.NewReactor("sink")

	out := dear.NewOutputPort[int](src, "out")
	in := dear.NewInputPort[int](sink, "in")
	dear.Connect(out, in)

	tick := dear.NewTimer(src, "tick", 0, dear.Duration(100*dear.Millisecond))
	count := 0
	src.AddReaction("emit").Triggers(tick).Effects(out).Do(func(c *dear.ReactionCtx) {
		count++
		out.Set(c, count)
	})

	sink.AddReaction("print").Triggers(in).Do(func(c *dear.ReactionCtx) {
		v, _ := in.Get(c)
		fmt.Printf("t=%-8v  received %d\n", c.Elapsed(), v)
	})

	sink.AddReaction("bye").Triggers(sink.Shutdown()).Do(func(c *dear.ReactionCtx) {
		fmt.Printf("shutdown at %v after %d messages\n", c.Elapsed(), count)
	})

	if err := env.Run(); err != nil {
		log.Fatal(err)
	}
}
