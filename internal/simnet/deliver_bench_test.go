package simnet

import (
	"testing"

	"repro/internal/des"
)

// BenchmarkSimnetDeliver measures one datagram's schedule+fire round
// trip through the network: route, fault verdict, pooled carrier in a
// pooled kernel event, delivery to a receive callback. The payload is
// empty so the benchmark isolates the delivery machinery from the
// caller's payload copy; cmd/experiments mirrors this body for the
// -bench-json kernel suite. 0 allocs/op in steady state.
func BenchmarkSimnetDeliver(b *testing.B) {
	k := des.NewKernel(1)
	n := NewNetwork(k, Config{})
	src := n.AddHost("src", nil)
	dst := n.AddHost("dst", nil)
	from, err := src.Bind(1000)
	if err != nil {
		b.Fatal(err)
	}
	to, err := dst.Bind(2000)
	if err != nil {
		b.Fatal(err)
	}
	received := 0
	to.OnReceive(func(Datagram) { received++ })
	// Warm the event and carrier pools.
	from.Send(to.Addr(), nil)
	k.RunAll()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from.Send(to.Addr(), nil)
		k.RunAll()
	}
	b.StopTimer()
	if received != b.N+1 {
		b.Fatalf("delivered %d of %d", received, b.N+1)
	}
}
