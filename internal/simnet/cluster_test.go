package simnet

import (
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/des"
	"repro/internal/logical"
)

// buildStarTraffic wires n hosts where every host periodically sends a
// counter datagram to every other host; receivers record (time, src,
// value). The recorded trace is the full observable behaviour and must be
// identical between a single Network and any Cluster partitioning.
type starRecorder struct {
	trace []string
}

func runStar(t *testing.T, partitions, hosts, msgs int) []string {
	t.Helper()
	return runStarCfg(t, Config{
		DefaultLatency: FixedLatency(120 * logical.Microsecond),
		SwitchDelay:    20 * logical.Microsecond,
	}, partitions, hosts, msgs)
}

func runStarCfg(t *testing.T, cfg Config, partitions, hosts, msgs int) []string {
	t.Helper()
	var nets []*Network
	var hs []*Host
	var fed *des.Federation
	if partitions == 1 {
		k := des.NewKernel(42)
		n := NewNetwork(k, cfg)
		nets = []*Network{n}
		for i := 0; i < hosts; i++ {
			hs = append(hs, n.AddHost(fmt.Sprintf("h%d", i), nil))
		}
	} else {
		fed = des.NewFederation(42, partitions)
		c, err := NewCluster(fed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < hosts; i++ {
			hs = append(hs, c.AddHost(i%partitions, fmt.Sprintf("h%d", i), nil))
		}
		for i := 0; i < partitions; i++ {
			nets = append(nets, c.Partition(i))
		}
	}

	rec := make([]*starRecorder, hosts)
	eps := make([]*Endpoint, hosts)
	for i, h := range hs {
		rec[i] = &starRecorder{}
		ep := h.MustBind(1000)
		r := rec[i]
		k := h.Net().Kernel()
		i := i
		ep.OnReceive(func(dg Datagram) {
			v := binary.BigEndian.Uint32(dg.Payload)
			r.trace = append(r.trace, fmt.Sprintf("%d<-%d @%d sent@%d v=%d",
				i, dg.Src.Host, k.Now(), dg.SentAt, v))
		})
		eps[i] = ep
	}
	for i, h := range hs {
		k := h.Net().Kernel()
		ep := eps[i]
		i := i
		k.SpawnAt(logical.Time(i)*1013, fmt.Sprintf("send%d", i), func(p *des.Process) {
			var buf [4]byte
			for m := 0; m < msgs; m++ {
				binary.BigEndian.PutUint32(buf[:], uint32(m))
				for j := range hs {
					if j == i {
						continue
					}
					ep.Send(Addr{Host: hs[j].ID(), Port: 1000}, buf[:])
				}
				p.Sleep(logical.Duration(900+i*37) * logical.Microsecond)
			}
		})
	}

	if fed != nil {
		fed.RunAll()
		fed.Shutdown()
	} else {
		nets[0].Kernel().RunAll()
		nets[0].Kernel().Shutdown()
	}
	var all []string
	for _, r := range rec {
		all = append(all, r.trace...)
	}
	return all
}

func TestClusterMatchesSingleNetwork(t *testing.T) {
	want := runStar(t, 1, 5, 8)
	if len(want) == 0 {
		t.Fatal("single-kernel reference produced no traffic")
	}
	for _, parts := range []int{2, 3, 5} {
		got := runStar(t, parts, 5, 8)
		if len(got) != len(want) {
			t.Fatalf("parts=%d: %d deliveries, want %d", parts, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parts=%d: delivery %d = %q, want %q", parts, i, got[i], want[i])
			}
		}
	}
}

// Regression for the lifted DropRate restriction: a federated run with
// nonzero drop rate must match the single-kernel run byte-for-byte —
// both the delivery trace and the loss accounting. This is exactly what
// the old shared-stream drop implementation could not provide (drops
// consumed one sequential stream in delivery order, which differs
// across partitionings) and what the counter-based per-link streams do.
func TestClusterDropRateMatchesSingleNetwork(t *testing.T) {
	cfg := Config{
		DefaultLatency: FixedLatency(120 * logical.Microsecond),
		SwitchDelay:    20 * logical.Microsecond,
		DropRate:       0.3,
	}
	want := runStarCfg(t, cfg, 1, 5, 12)
	if len(want) == 0 {
		t.Fatal("single-kernel reference produced no traffic")
	}
	full := runStar(t, 1, 5, 12)
	if len(want) >= len(full) {
		t.Fatalf("drop rate lost nothing: %d deliveries with drops, %d without", len(want), len(full))
	}
	for _, parts := range []int{2, 3, 5} {
		got := runStarCfg(t, cfg, parts, 5, 12)
		if len(got) != len(want) {
			t.Fatalf("parts=%d: %d deliveries, want %d", parts, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parts=%d: delivery %d = %q, want %q", parts, i, got[i], want[i])
			}
		}
	}
}

// A full fault plan — background loss, a loss window, a partition
// blackout and a jitter burst — must also survive sharding unchanged.
func TestClusterFaultPlanMatchesSingleNetwork(t *testing.T) {
	cfg := Config{
		DefaultLatency: FixedLatency(120 * logical.Microsecond),
		SwitchDelay:    20 * logical.Microsecond,
		Faults: &FaultPlan{
			Seed:     7,
			DropRate: 0.05,
			Loss: []LossWindow{{
				From: 2 * logical.Time(logical.Millisecond), To: 4 * logical.Time(logical.Millisecond),
				A: 1, B: 0, Rate: 0.6,
			}},
			Partitions: []PartitionWindow{{
				From: 5 * logical.Time(logical.Millisecond), To: 6 * logical.Time(logical.Millisecond),
				GroupA: []uint16{1, 2}, GroupB: []uint16{3, 4, 5},
			}},
			Jitter: []JitterBurst{{
				From: 0, To: 3 * logical.Time(logical.Millisecond),
				A: 2, B: 3, Extra: 400 * logical.Microsecond,
			}},
		},
	}
	want := runStarCfg(t, cfg, 1, 5, 12)
	if len(want) == 0 {
		t.Fatal("single-kernel reference produced no traffic")
	}
	for _, parts := range []int{2, 4, 5} {
		got := runStarCfg(t, cfg, parts, 5, 12)
		if len(got) != len(want) {
			t.Fatalf("parts=%d: %d deliveries, want %d", parts, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parts=%d: delivery %d = %q, want %q", parts, i, got[i], want[i])
			}
		}
	}
}

func TestClusterCountsUnknownHostDrops(t *testing.T) {
	fed := des.NewFederation(1, 2)
	c, err := NewCluster(fed, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h0 := c.AddHost(0, "a", nil)
	ep := h0.MustBind(1)
	fed.Kernel(0).At(0, func() {
		ep.Send(Addr{Host: 999, Port: 1}, []byte{1})
	})
	fed.RunAll()
	if c.Dropped() != 1 {
		t.Fatalf("dropped = %d", c.Dropped())
	}
	if c.Delivered() != 0 {
		t.Fatalf("delivered = %d", c.Delivered())
	}
}

func TestClusterCrossPartitionDeliveredCount(t *testing.T) {
	fed := des.NewFederation(1, 2)
	c, err := NewCluster(fed, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h0 := c.AddHost(0, "a", nil)
	h1 := c.AddHost(1, "b", nil)
	got := 0
	sink := h1.MustBind(7)
	sink.OnReceive(func(dg Datagram) { got++ })
	src := h0.MustBind(7)
	fed.Kernel(0).At(0, func() {
		src.Send(Addr{Host: h1.ID(), Port: 7}, []byte("x"))
	})
	fed.RunAll()
	if got != 1 || c.Delivered() != 1 {
		t.Fatalf("got=%d delivered=%d", got, c.Delivered())
	}
	if p, ok := c.PartitionOf(h1.ID()); !ok || p != 1 {
		t.Fatalf("PartitionOf = %d,%v", p, ok)
	}
}

func TestClusterSetLinkLowersLookahead(t *testing.T) {
	fed := des.NewFederation(1, 2)
	c, err := NewCluster(fed, Config{DefaultLatency: FixedLatency(logical.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	h0 := c.AddHost(0, "a", nil)
	h1 := c.AddHost(1, "b", nil)
	c.SetLink(h0.ID(), h1.ID(), FixedLatency(100*logical.Microsecond))
	// The faster link must be honored end to end: delivery at 100µs.
	sink := h1.MustBind(1)
	var at logical.Time
	sink.OnReceive(func(dg Datagram) { at = fed.Kernel(1).Now() })
	src := h0.MustBind(1)
	fed.Kernel(0).At(0, func() { src.Send(Addr{Host: h1.ID(), Port: 1}, []byte("y")) })
	fed.RunAll()
	if at != logical.Time(100*logical.Microsecond) {
		t.Fatalf("delivery at %v", at)
	}
}

func TestClusterRejectsBadConfigs(t *testing.T) {
	// DropRate is supported since drops moved to counter-based per-link
	// streams (it used to be rejected as a shared-stream determinism
	// hazard).
	if _, err := NewCluster(des.NewFederation(1, 2), Config{DropRate: 0.1}); err != nil {
		t.Errorf("DropRate must be accepted now: %v", err)
	}
	if _, err := NewCluster(des.NewFederation(1, 2), Config{DefaultLatency: jitterNoMin{}}); err == nil {
		t.Error("latency model without MinLatency must be rejected")
	}
	// Invalid fault configurations surface as errors, not panics.
	if _, err := NewCluster(des.NewFederation(1, 2), Config{DropRate: 1.5}); err == nil {
		t.Error("out-of-range DropRate must be rejected")
	}
	if _, err := NewCluster(des.NewFederation(1, 2), Config{
		Faults: &FaultPlan{Loss: []LossWindow{{From: 5, To: 1, Rate: 0.5}}},
	}); err == nil {
		t.Error("ill-formed fault plan must be rejected")
	}
	if _, err := NewCluster(des.NewFederation(1, 2), Config{DefaultLatency: FixedLatency(0)}); err == nil {
		t.Error("zero lookahead must be rejected")
	}
	// A jittered model with an RNG would be consulted from parallel kernel
	// goroutines (data race) and draw in partition-dependent order
	// (nondeterminism): reject it even though it has a MinLatency.
	fed2 := des.NewFederation(1, 2)
	jl := &JitterLatency{Base: 100 * logical.Microsecond, Sigma: 10 * logical.Microsecond,
		Rng: fed2.Kernel(0).Rand("jitter")}
	if _, err := NewCluster(fed2, Config{DefaultLatency: jl}); err == nil {
		t.Error("RNG-backed latency model must be rejected")
	}
}

type jitterNoMin struct{}

func (jitterNoMin) Latency(int) logical.Duration { return logical.Millisecond }
