package simnet

import (
	"testing"
)

var testGroup = Addr{Host: MulticastBase + 7, Port: 9}

// collect installs an OnReceive callback that appends payload copies as
// strings (so later buffer mutation cannot retroactively corrupt the
// observation) along with the receiving endpoint's index.
func collect(eps []*Endpoint, order *[]int, payloads *[][]byte) {
	for i, ep := range eps {
		i, ep := i, ep
		ep.OnReceive(func(dg Datagram) {
			*order = append(*order, i)
			*payloads = append(*payloads, dg.Payload)
		})
	}
}

func TestTopicFanoutJoinOrderExcludesSender(t *testing.T) {
	k, n := newNet(1)
	eps := make([]*Endpoint, 4)
	for i := range eps {
		eps[i] = n.AddHost("h", nil).MustBind(100)
	}
	// eps[3] joins the group but NOT the topic: it must not receive.
	n.JoinGroup(testGroup, eps[3])
	n.JoinTopic(testGroup, 42, eps[2])
	n.JoinTopic(testGroup, 42, eps[0])
	n.JoinTopic(testGroup, 42, eps[1])
	n.JoinTopic(testGroup, 42, eps[1]) // idempotent

	var order []int
	var payloads [][]byte
	collect(eps, &order, &payloads)
	k.At(0, func() { eps[0].SendTopic(testGroup, 42, []byte("sd")) })
	k.RunAll()

	// Join order was 2, 0, 1; the sender (0) is excluded. All members
	// share the default link model, so delivery preserves fan-out order.
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Errorf("delivery order = %v, want [2 1]", order)
	}
	if n.TopicMembers(testGroup, 42) != 3 {
		t.Errorf("members = %d, want 3", n.TopicMembers(testGroup, 42))
	}
}

func TestTopicIsolation(t *testing.T) {
	k, n := newNet(1)
	a := n.AddHost("a", nil).MustBind(1)
	b := n.AddHost("b", nil).MustBind(1)
	c := n.AddHost("c", nil).MustBind(1)
	n.JoinTopic(testGroup, 1, b)
	n.JoinTopic(testGroup, 2, c)

	var order []int
	var payloads [][]byte
	collect([]*Endpoint{a, b, c}, &order, &payloads)
	k.At(0, func() { a.SendTopic(testGroup, 1, []byte("one")) })
	k.RunAll()
	if len(order) != 1 || order[0] != 1 {
		t.Errorf("topic 1 delivered to %v, want [1]", order)
	}
}

func TestLeaveTopicStopsDelivery(t *testing.T) {
	k, n := newNet(1)
	a := n.AddHost("a", nil).MustBind(1)
	b := n.AddHost("b", nil).MustBind(1)
	n.JoinTopic(testGroup, 5, b)
	n.LeaveTopic(testGroup, 5, b)

	var order []int
	var payloads [][]byte
	collect([]*Endpoint{a, b}, &order, &payloads)
	k.At(0, func() { a.SendTopic(testGroup, 5, []byte("x")) })
	k.RunAll()
	if len(order) != 0 {
		t.Errorf("delivered after leave: %v", order)
	}
	if n.TopicMembers(testGroup, 5) != 0 {
		t.Errorf("members = %d after leave", n.TopicMembers(testGroup, 5))
	}
}

func TestCrashPurgesTopicMembership(t *testing.T) {
	k, n := newNet(1)
	a := n.AddHost("a", nil).MustBind(1)
	hb := n.AddHost("b", nil)
	b := hb.MustBind(1)
	n.JoinTopic(testGroup, 9, b)

	hb.Crash(0)
	var order []int
	var payloads [][]byte
	collect([]*Endpoint{a, b}, &order, &payloads)
	k.At(1, func() { a.SendTopic(testGroup, 9, []byte("x")) })
	k.RunAll()
	if len(order) != 0 {
		t.Errorf("crashed host received topic traffic: %v", order)
	}
	if n.TopicMembers(testGroup, 9) != 0 {
		t.Errorf("members = %d after crash", n.TopicMembers(testGroup, 9))
	}
}

// Regression test for the multicast fan-out copy path: every receiver
// must own an independent buffer — mutating one receiver's payload (or
// the sender's buffer, after Send returns) must not alias any other.
func TestMulticastReceiversNeverAliasBuffers(t *testing.T) {
	k, n := newNet(1)
	src := n.AddHost("src", nil).MustBind(1)
	r1 := n.AddHost("r1", nil).MustBind(1)
	r2 := n.AddHost("r2", nil).MustBind(1)
	group := Addr{Host: MulticastBase + 2, Port: 1}
	n.JoinGroup(group, r1)
	n.JoinGroup(group, r2)

	var bufs [][]byte
	for _, ep := range []*Endpoint{r1, r2} {
		ep.OnReceive(func(dg Datagram) { bufs = append(bufs, dg.Payload) })
	}
	sent := []byte("payload")
	k.At(0, func() {
		src.Send(group, sent)
		copy(sent, "XXXXXXX") // sender reuses its buffer immediately
	})
	k.RunAll()

	if len(bufs) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(bufs))
	}
	if string(bufs[0]) != "payload" || string(bufs[1]) != "payload" {
		t.Fatalf("sender mutation leaked into receivers: %q %q", bufs[0], bufs[1])
	}
	copy(bufs[0], "zzzzzzz")
	if string(bufs[1]) != "payload" {
		t.Errorf("receiver buffers alias: %q", bufs[1])
	}
	if &bufs[0][0] == &bufs[1][0] || &bufs[0][0] == &sent[0] {
		t.Error("payload buffers share backing storage")
	}
}

// Same ownership guarantee on the topic path.
func TestTopicReceiversNeverAliasBuffers(t *testing.T) {
	k, n := newNet(1)
	src := n.AddHost("src", nil).MustBind(1)
	r1 := n.AddHost("r1", nil).MustBind(1)
	r2 := n.AddHost("r2", nil).MustBind(1)
	n.JoinTopic(testGroup, 3, r1)
	n.JoinTopic(testGroup, 3, r2)

	var bufs [][]byte
	for _, ep := range []*Endpoint{r1, r2} {
		ep.OnReceive(func(dg Datagram) { bufs = append(bufs, dg.Payload) })
	}
	sent := []byte("topicmsg")
	k.At(0, func() {
		src.SendTopic(testGroup, 3, sent)
		copy(sent, "YYYYYYYY")
	})
	k.RunAll()

	if len(bufs) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(bufs))
	}
	if string(bufs[0]) != "topicmsg" || string(bufs[1]) != "topicmsg" {
		t.Fatalf("sender mutation leaked: %q %q", bufs[0], bufs[1])
	}
	copy(bufs[1], "wwwwwwww")
	if string(bufs[0]) != "topicmsg" {
		t.Errorf("receiver buffers alias: %q", bufs[0])
	}
}

func TestControlPlaneCounters(t *testing.T) {
	k, n := newNet(1)
	a := n.AddHost("a", nil).MustBind(1)
	b := n.AddHost("b", nil).MustBind(1)
	c := n.AddHost("c", nil).MustBind(1)
	n.JoinTopic(testGroup, 1, b)
	n.JoinTopic(testGroup, 1, c)
	group := Addr{Host: MulticastBase + 3, Port: 1}
	n.JoinGroup(group, b)

	k.At(0, func() {
		a.SendTopic(testGroup, 1, []byte("x")) // fan-out 2
		a.Send(group, []byte("y"))             // fan-out 1
		a.Send(b.Addr(), []byte("z"))          // unicast: not control plane
	})
	k.RunAll()
	sends, fanout := n.ControlPlane()
	if sends != 2 || fanout != 3 {
		t.Errorf("control plane = (%d, %d), want (2, 3)", sends, fanout)
	}
}

func TestSendTopicPanicsOnUnicastGroup(t *testing.T) {
	k, n := newNet(1)
	a := n.AddHost("a", nil).MustBind(1)
	_ = k
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	a.SendTopic(Addr{Host: 1, Port: 2}, 1, nil)
}

func TestJoinTopicPanicsOnUnicastGroup(t *testing.T) {
	_, n := newNet(1)
	a := n.AddHost("a", nil).MustBind(1)
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	n.JoinTopic(Addr{Host: 1, Port: 2}, 1, a)
}
