// Package simnet models the evaluation network of the paper: platforms
// (the two MinnowBoard Turbot boards) connected through a store-and-forward
// Ethernet switch, with configurable per-link latency and jitter.
//
// The model is intentionally at datagram granularity (SOME/IP runs over
// UDP in the APD demonstrator). Each endpoint owns a mailbox of inbound
// datagrams; delivery times are computed deterministically from seeded
// randomness, so a given topology and seed always produces the same packet
// schedule.
package simnet

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/logical"
)

// Addr identifies an endpoint: a (host, port) pair. Hosts are small
// integers assigned by the network; ports are chosen by the application
// (mirroring UDP ports). Host values at or above MulticastBase denote
// multicast groups.
type Addr struct {
	// Host is the network-assigned platform ID (or multicast group at or
	// above MulticastBase).
	Host uint16
	// Port is the application-chosen endpoint number.
	Port uint16
}

// MulticastBase is the first host number reserved for multicast groups.
const MulticastBase uint16 = 0xFF00

// IsMulticast reports whether the address denotes a multicast group.
func (a Addr) IsMulticast() bool { return a.Host >= MulticastBase }

// Network names the substrate, satisfying the transport-independent
// address interface of the someip package (net.Addr shape).
func (a Addr) Network() string { return "sim" }

// String renders the address as "host:port".
func (a Addr) String() string { return fmt.Sprintf("%d:%d", a.Host, a.Port) }

// Datagram is a routed message.
type Datagram struct {
	// Src and Dst are the source and destination endpoint addresses.
	Src, Dst Addr
	// Payload is the carried bytes (owned by the receiver; senders'
	// buffers are copied on Send).
	Payload []byte
	// SentAt is the global simulated time the datagram entered the network.
	SentAt logical.Time
}

// LatencyModel computes the one-way latency for a packet of the given size.
type LatencyModel interface {
	Latency(size int) logical.Duration
}

// MinLatencyModel is a LatencyModel with a known lower bound. Latency
// models used on cross-partition links of a federated Cluster must
// implement it: the bound supplies the conservative lookahead that lets
// partition kernels advance in parallel.
type MinLatencyModel interface {
	LatencyModel
	// MinLatency returns a lower bound on Latency(size) for every size.
	MinLatency() logical.Duration
}

// FixedLatency is a constant-latency model.
type FixedLatency logical.Duration

// Latency implements LatencyModel.
func (f FixedLatency) Latency(int) logical.Duration { return logical.Duration(f) }

// MinLatency implements MinLatencyModel.
func (f FixedLatency) MinLatency() logical.Duration { return logical.Duration(f) }

// JitterLatency models base propagation delay plus per-byte serialization
// cost plus truncated-Gaussian jitter. This is the model used for the
// Figure 5 experiments: Ethernet-scale base latency with submillisecond
// jitter.
type JitterLatency struct {
	// Base is the fixed propagation delay.
	Base logical.Duration
	// PerByte is the serialization cost per payload byte (e.g. 8ns/byte
	// for 1 Gbit/s).
	PerByte logical.Duration
	// Sigma is the standard deviation of the Gaussian jitter.
	Sigma logical.Duration
	// Max caps the total jitter (truncation); zero means 4*Sigma.
	Max logical.Duration
	// Rng draws the jitter. It must be a stream owned by the kernel the
	// model is consulted on (determinism), which is why RNG-backed
	// models are rejected on cross-partition Cluster links.
	Rng *des.Rand
}

// Latency implements LatencyModel.
func (j *JitterLatency) Latency(size int) logical.Duration {
	d := j.Base + logical.Duration(size)*j.PerByte
	if j.Sigma > 0 && j.Rng != nil {
		max := j.Max
		if max == 0 {
			max = 4 * j.Sigma
		}
		jit := logical.Duration(j.Rng.Norm(0, float64(j.Sigma)))
		if jit < 0 {
			jit = -jit
		}
		if jit > max {
			jit = max
		}
		d += jit
	}
	if d < 0 {
		d = 0
	}
	return d
}

// MinLatency implements MinLatencyModel: jitter and serialization cost are
// both non-negative, so the base propagation delay is the lower bound.
func (j *JitterLatency) MinLatency() logical.Duration {
	if j.Base < 0 {
		return 0
	}
	return j.Base
}

// Network is a collection of hosts joined by a switch fabric.
type Network struct {
	k       *des.Kernel
	hosts   map[uint16]*Host
	nextKey uint16
	// defaultModel is used for host pairs without an explicit link model.
	defaultModel LatencyModel
	links        map[[2]uint16]LatencyModel
	// switchDelay models store-and-forward queuing through the switch for
	// packets crossing hosts; zero for loopback traffic.
	switchDelay logical.Duration
	// faults is the installed fault schedule (nil = fault-free network).
	// Packet fates are counter-based — see FaultPlan — which is what
	// keeps them identical between a single kernel and a federation.
	faults *FaultPlan
	// faultSeed is derived from the kernel's labeled stream space, so it
	// is identical on every partition kernel of a federation.
	faultSeed uint64
	// linkSeq counts packets per *directed* (src host, dst host) link;
	// the count is the packet index fed to FaultPlan.verdict. A directed
	// link's counter only advances on sends from its source host, which
	// fire in the same order under any partitioning.
	linkSeq   map[[2]uint16]uint64
	delivered uint64
	dropped   uint64
	groups    map[Addr][]*Endpoint
	// topics holds interest-based subscription lists: endpoints that
	// registered interest in a (group, topic) pair, in join order.
	// SendTopic fans out only to these members, replacing all-pairs
	// multicast for the SD control plane (O(platforms²) at startup)
	// with fan-out proportional to actual interest.
	topics map[topicKey][]*Endpoint
	// ctrlSends counts multicast/topic send calls; ctrlFanout counts
	// the datagrams those sends fanned out to members. Together they
	// measure the control-plane load (the quantity the city-scale
	// acceptance gate requires to be sub-quadratic in platforms).
	ctrlSends  uint64
	ctrlFanout uint64
	// router, when set, takes over datagrams addressed to hosts this
	// Network does not own. A federated Cluster installs one per partition
	// to forward cross-partition traffic through timestamped channels.
	router func(src *Endpoint, dg Datagram) bool
	// argFree recycles delivery carriers (see deliverArg): a scheduled
	// delivery rides a pooled kernel event closure-free, and the carrier
	// returns here — on this network's kernel goroutine — when it fires,
	// so the per-datagram hot path allocates only the payload copy.
	argFree []*deliverArg
}

// deliverArg carries one in-flight datagram: the delivering network and
// the datagram, stored in the scheduled event's arg slot instead of a
// capture closure. Carriers are pooled per network (argFree); under a
// federated Cluster a cross-partition carrier is borrowed from the
// sender's pool and released into the target's (each pool is touched
// only by its own kernel's goroutine, which keeps the hand-off
// race-free), so carriers migrate between partitions but are reused on
// both sides in steady state.
type deliverArg struct {
	n  *Network
	dg Datagram
}

// deliverFn is the package-level delivery body of every scheduled
// datagram. It releases the carrier into the delivering network's pool
// before delivering, so a send triggered by the receiver can reuse it
// immediately.
func deliverFn(a any) {
	da := a.(*deliverArg)
	n, dg := da.n, da.dg
	da.n = nil
	da.dg = Datagram{}
	n.argFree = append(n.argFree, da)
	n.deliver(dg)
}

// borrowDeliver takes a pooled carrier (or allocates one) and fills it
// with a delivery bound for network n. Must be called on the sending
// kernel's goroutine; sender is the pool owner.
func (sender *Network) borrowDeliver(n *Network, dg Datagram) *deliverArg {
	var da *deliverArg
	if ln := len(sender.argFree); ln > 0 {
		da = sender.argFree[ln-1]
		sender.argFree[ln-1] = nil
		sender.argFree = sender.argFree[:ln-1]
	} else {
		da = &deliverArg{}
	}
	da.n = n
	da.dg = dg
	return da
}

// Config configures a Network.
type Config struct {
	// DefaultLatency applies to host pairs without a specific link model.
	// If nil, FixedLatency(50µs) is used.
	DefaultLatency LatencyModel
	// SwitchDelay is added to every inter-host packet (store-and-forward).
	SwitchDelay logical.Duration
	// DropRate is the probability of silently losing an inter-host packet
	// (the paper's AP stack gives no delivery guarantee; default 0).
	// Drops are drawn from counter-based per-link streams, so they are
	// independent of execution interleaving and safe on a federated
	// Cluster. A nonzero DropRate is shorthand for a FaultPlan with only
	// the background rate set.
	DropRate float64
	// Faults installs a full fault schedule (loss windows, partitions,
	// jitter bursts); see FaultPlan. A nonzero DropRate combines with it
	// as the background loss floor. The plan must not be mutated after
	// the network is created.
	Faults *FaultPlan
}

// NewNetwork creates a network on the kernel. It panics on an invalid
// fault configuration (rates outside [0,1], ill-formed windows).
func NewNetwork(k *des.Kernel, cfg Config) *Network {
	model := cfg.DefaultLatency
	if model == nil {
		model = FixedLatency(50 * logical.Microsecond)
	}
	n := &Network{
		k:            k,
		hosts:        map[uint16]*Host{},
		defaultModel: model,
		links:        map[[2]uint16]LatencyModel{},
		switchDelay:  cfg.SwitchDelay,
		faultSeed:    k.Rand("simnet.fault").Uint64(),
		linkSeq:      map[[2]uint16]uint64{},
		groups:       map[Addr][]*Endpoint{},
		topics:       map[topicKey][]*Endpoint{},
	}
	plan := cfg.Faults
	if cfg.DropRate != 0 {
		// Fold the shorthand into a plan without mutating the caller's.
		merged := FaultPlan{DropRate: cfg.DropRate}
		if plan != nil {
			merged = *plan
			if cfg.DropRate > merged.DropRate {
				merged.DropRate = cfg.DropRate
			}
		}
		plan = &merged
	}
	if plan != nil {
		if err := plan.Validate(); err != nil {
			panic(err)
		}
		n.faults = plan
	}
	return n
}

// Faults returns the installed fault plan (nil on a fault-free network).
func (n *Network) Faults() *FaultPlan { return n.faults }

// faultVerdict consumes the directed-link packet counter src→dst and
// computes the packet's fate under the installed plan. Must be called
// exactly once per inter-host packet (unicast and Cluster.route share
// it), at send time, on the kernel owning the source host.
func (n *Network) faultVerdict(src, dst uint16) (drop bool, extra logical.Duration) {
	if n.faults == nil {
		return false, 0
	}
	dl := [2]uint16{src, dst}
	idx := n.linkSeq[dl]
	n.linkSeq[dl] = idx + 1
	return n.faults.verdict(n.faultSeed, src, dst, idx, n.k.Now())
}

// JoinGroup subscribes the endpoint to a multicast group address. Packets
// sent to the group are delivered to every member except the sender, in
// join order.
func (n *Network) JoinGroup(group Addr, e *Endpoint) {
	if !group.IsMulticast() {
		panic("simnet: JoinGroup on non-multicast address " + group.String())
	}
	for _, m := range n.groups[group] {
		if m == e {
			return
		}
	}
	n.groups[group] = append(n.groups[group], e)
}

// LeaveGroup removes the endpoint from the group.
func (n *Network) LeaveGroup(group Addr, e *Endpoint) {
	members := n.groups[group]
	for i, m := range members {
		if m == e {
			n.groups[group] = append(members[:i:i], members[i+1:]...)
			return
		}
	}
}

// topicKey identifies one interest-based subscription list: a topic
// number scoped under a multicast group address.
type topicKey struct {
	group Addr
	topic uint64
}

// JoinTopic registers the endpoint's interest in topic under the
// multicast group address. SendTopic to that (group, topic) then
// delivers to the endpoint. Joining is idempotent; members receive in
// join order, which is the deterministic fan-out order the byte-
// equality gate relies on (join order is fixed by program structure,
// identical in single-kernel and federated execution). Panics on a
// non-multicast group address.
func (n *Network) JoinTopic(group Addr, topic uint64, e *Endpoint) {
	if !group.IsMulticast() {
		panic("simnet: JoinTopic on non-multicast address " + group.String())
	}
	k := topicKey{group, topic}
	for _, m := range n.topics[k] {
		if m == e {
			return
		}
	}
	n.topics[k] = append(n.topics[k], e)
}

// LeaveTopic withdraws the endpoint's interest in topic under group.
func (n *Network) LeaveTopic(group Addr, topic uint64, e *Endpoint) {
	k := topicKey{group, topic}
	members := n.topics[k]
	for i, m := range members {
		if m == e {
			n.topics[k] = append(members[:i:i], members[i+1:]...)
			if len(n.topics[k]) == 0 {
				delete(n.topics, k)
			}
			return
		}
	}
}

// TopicMembers returns the number of endpoints currently subscribed to
// the topic under group.
func (n *Network) TopicMembers(group Addr, topic uint64) int {
	return len(n.topics[topicKey{group, topic}])
}

// ControlPlane returns the control-plane load so far: sends is the
// number of multicast/topic send calls, fanout the total datagrams
// those sends fanned out to members. With interest-based routing the
// fanout grows with actual interest, not with the square of the
// platform count.
func (n *Network) ControlPlane() (sends, fanout uint64) {
	return n.ctrlSends, n.ctrlFanout
}

// Kernel returns the simulation kernel.
func (n *Network) Kernel() *des.Kernel { return n.k }

// Delivered returns the number of datagrams delivered so far.
func (n *Network) Delivered() uint64 { return n.delivered }

// Dropped returns the number of datagrams dropped so far.
func (n *Network) Dropped() uint64 { return n.dropped }

// SetLink installs a latency model for traffic between hosts a and b
// (both directions), overriding the network's default model for that
// pair. Determinism preconditions: install links before traffic flows,
// and give any stateful model (e.g. *JitterLatency with an Rng) a
// stream owned by this network's kernel — a model shared across kernels
// would be consumed in partition-dependent order. On a federated
// Cluster use Cluster.SetLink instead, which additionally enforces the
// MinLatencyModel/RNG-free contract for cross-partition pairs.
func (n *Network) SetLink(a, b uint16, m LatencyModel) {
	n.links[linkKey(a, b)] = m
}

func linkKey(a, b uint16) [2]uint16 {
	if a > b {
		a, b = b, a
	}
	return [2]uint16{a, b}
}

// Host is a simulated platform attached to the network.
type Host struct {
	net   *Network
	id    uint16
	name  string
	ports map[uint16]*Endpoint
	// loopback is the intra-host delivery latency.
	loopback LatencyModel
	clock    *des.LocalClock
	// down marks a crashed host: no endpoint is bound, sends from stale
	// endpoints are suppressed, deliveries drop.
	down bool
}

// AddHost attaches a new platform. The clock may be nil for hosts that
// never read local time.
func (n *Network) AddHost(name string, clock *des.LocalClock) *Host {
	n.nextKey++
	return n.addHostID(n.nextKey, name, clock)
}

// addHostID attaches a platform under an externally assigned host ID.
// A federated Cluster allocates IDs globally so that addresses stay
// unique across partitions.
func (n *Network) addHostID(id uint16, name string, clock *des.LocalClock) *Host {
	if _, dup := n.hosts[id]; dup {
		panic(fmt.Sprintf("simnet: duplicate host id %d (%s)", id, name))
	}
	h := &Host{
		net:      n,
		id:       id,
		name:     name,
		ports:    map[uint16]*Endpoint{},
		loopback: FixedLatency(5 * logical.Microsecond),
		clock:    clock,
	}
	n.hosts[h.id] = h
	return h
}

// ID returns the host's network identifier.
func (h *Host) ID() uint16 { return h.id }

// Net returns the network the host is attached to.
func (h *Host) Net() *Network { return h.net }

// Name returns the host's name.
func (h *Host) Name() string { return h.name }

// Clock returns the host's local clock (may be nil).
func (h *Host) Clock() *des.LocalClock { return h.clock }

// SetLoopback overrides the intra-host delivery latency model (default:
// FixedLatency(5µs)). Like every latency model consulted on this host's
// kernel, m must draw randomness only from streams owned by that kernel
// (or none at all) to preserve determinism; on a Cluster the loopback
// model is consulted exclusively by the host's own partition, so any
// deterministic model is safe — the MinLatencyModel/RNG-free
// restrictions apply only to inter-host links.
func (h *Host) SetLoopback(m LatencyModel) { h.loopback = m }

// Down reports whether the host is currently crashed.
func (h *Host) Down() bool { return h.down }

// Crash schedules the host to fail at simulated time at: every bound
// endpoint closes and leaves its multicast groups, packets still in
// flight toward the host are dropped at delivery time, and sends
// through stale endpoint handles are silently suppressed (a dead host
// transmits nothing — in particular it sends no SD stop-offer, so
// remote agents only learn of the loss through TTL expiry). Processes
// and callbacks of runtimes on the host are not terminated; application
// code models process death by observing Down. Crash is deterministic:
// the teardown runs as an ordinary kernel event, so it is ordered
// against all other events by the usual (time, sequence) rule, which is
// identical in single-kernel and federated execution.
func (h *Host) Crash(at logical.Time) {
	h.net.k.AtTransientFn(at, crashFn, h)
}

// crashFn is the package-level body of the scheduled crash event.
func crashFn(a any) { a.(*Host).crashNow() }

// Restart schedules the host to come back at simulated time at, with an
// empty port space; rebuild (may be nil) then runs in the same kernel
// event to reconstruct the application stack — typically by creating a
// fresh ara runtime and re-running its offer phase, which re-announces
// services through SOME/IP SD so that remote proxies re-bind.
func (h *Host) Restart(at logical.Time, rebuild func()) {
	h.net.k.AtTransient(at, func() {
		h.down = false
		if rebuild != nil {
			rebuild()
		}
	})
}

// crashNow performs the teardown at the scheduled instant.
func (h *Host) crashNow() {
	if h.down {
		return
	}
	h.down = true
	for _, ep := range h.ports {
		// Map iteration order is irrelevant: closing endpoints and
		// removing group/topic memberships commute.
		ep.closed = true
		for group := range h.net.groups {
			h.net.LeaveGroup(group, ep)
		}
		for tk := range h.net.topics {
			h.net.LeaveTopic(tk.group, tk.topic, ep)
		}
	}
	h.ports = map[uint16]*Endpoint{}
}

// Endpoints returns the endpoints bound on this host in port order.
func (h *Host) Endpoints() []*Endpoint {
	eps := make([]*Endpoint, 0, len(h.ports))
	for _, ep := range h.ports {
		eps = append(eps, ep)
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i].addr.Port < eps[j].addr.Port })
	return eps
}

// Endpoint is a bound (host, port) able to send and receive datagrams.
// Inbound datagrams are queued in a mailbox; a receiver callback may be
// installed instead to consume them as kernel events.
type Endpoint struct {
	host *Host
	addr Addr
	mb   *des.Mailbox[Datagram]
	// onRecv, when set, consumes datagrams instead of the mailbox.
	onRecv func(Datagram)
	closed bool
}

// Bind allocates an endpoint on the given port. Port 0 picks a free
// ephemeral port (≥ 49152). Binding an in-use port, or any port on a
// crashed host, is an error. Port selection is deterministic: it
// depends only on the host's current port map, never on randomness.
func (h *Host) Bind(port uint16) (*Endpoint, error) {
	if h.down {
		return nil, fmt.Errorf("simnet: host %s is down", h.name)
	}
	if port == 0 {
		port = 49152
		for {
			if _, used := h.ports[port]; !used {
				break
			}
			if port == 65535 {
				return nil, fmt.Errorf("simnet: host %s out of ephemeral ports", h.name)
			}
			port++
		}
	}
	if _, used := h.ports[port]; used {
		return nil, fmt.Errorf("simnet: port %d already bound on host %s", port, h.name)
	}
	ep := &Endpoint{
		host: h,
		addr: Addr{Host: h.id, Port: port},
		mb:   des.NewMailbox[Datagram](h.net.k, fmt.Sprintf("%s:%d", h.name, port)),
	}
	h.ports[port] = ep
	return ep, nil
}

// MustBind is Bind that panics on error, for wiring code in tests and
// examples where the port plan is static.
func (h *Host) MustBind(port uint16) *Endpoint {
	ep, err := h.Bind(port)
	if err != nil {
		panic(err)
	}
	return ep
}

// Addr returns the endpoint's bound address.
func (e *Endpoint) Addr() Addr { return e.addr }

// Host returns the owning host.
func (e *Endpoint) Host() *Host { return e.host }

// Close unbinds the endpoint; subsequent sends to it are dropped. A
// stale Close — after the host crashed and a restarted stack re-bound
// the same port — never unbinds the successor endpoint.
func (e *Endpoint) Close() {
	e.closed = true
	if e.host.ports[e.addr.Port] == e {
		delete(e.host.ports, e.addr.Port)
	}
}

// OnReceive installs a callback that consumes inbound datagrams as kernel
// events (at delivery time). Once installed, the mailbox is bypassed.
// Must be installed before traffic arrives.
func (e *Endpoint) OnReceive(fn func(Datagram)) { e.onRecv = fn }

// Recv blocks the process until a datagram arrives (mailbox mode).
func (e *Endpoint) Recv(p *des.Process) Datagram { return e.mb.Recv(p) }

// RecvTimeout blocks until a datagram arrives or the timeout elapses.
func (e *Endpoint) RecvTimeout(p *des.Process, d logical.Duration) (Datagram, bool) {
	return e.mb.RecvTimeout(p, d)
}

// Pending returns the number of queued inbound datagrams (mailbox mode).
func (e *Endpoint) Pending() int { return e.mb.Len() }

// Send routes a datagram to dst. The payload is copied, so callers may
// reuse their buffer. Sending to an unbound destination silently drops
// (UDP semantics), and sending through a closed endpoint — including
// every endpoint of a crashed host — is silently suppressed. Delivery
// happens after the link latency (plus switch delay for inter-host
// traffic and any fault-plan jitter).
func (e *Endpoint) Send(dst Addr, payload []byte) {
	if e.closed || e.host.down {
		return
	}
	n := e.host.net
	if dst.IsMulticast() {
		// Fan out straight from the caller's buffer: one copy per
		// member (no up-front staging copy — the caller's slice is
		// only read within this call).
		n.fanout(e, n.groups[dst], payload)
		return
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	n.route(e, Datagram{Src: e.addr, Dst: dst, Payload: buf, SentAt: n.k.Now()}, true)
}

// SendTopic delivers the payload to every endpoint subscribed to the
// (group, topic) pair except the sender, in join order, with one
// payload copy per member. Like plain multicast, topic fan-out is
// exempt from the fault plan (see Send) and a federated Cluster fans
// it out per partition. Sends through closed endpoints or from crashed
// hosts are suppressed.
func (e *Endpoint) SendTopic(group Addr, topic uint64, payload []byte) {
	if e.closed || e.host.down {
		return
	}
	if !group.IsMulticast() {
		panic("simnet: SendTopic on non-multicast address " + group.String())
	}
	n := e.host.net
	n.fanout(e, n.topics[topicKey{group, topic}], payload)
}

// fanout routes one copy of payload to every member except the sender.
// Each member gets its own payload copy so receivers never alias one
// another's buffers (or the sender's). Multicast/topic fan-out is
// exempt from the fault plan: it stands in for true Ethernet multicast
// (the SD control plane), which the per-link fault model does not
// cover — and a federated Cluster fans multicast out per partition, so
// faulting it would consume link counters mode-dependently and break
// cross-mode byte-equality. SD is disturbed through host lifecycle
// (Crash silences a provider; TTL expiry follows), not through
// packet-level faults.
func (n *Network) fanout(e *Endpoint, members []*Endpoint, payload []byte) {
	n.ctrlSends++
	at := n.k.Now()
	for _, member := range members {
		if member == e {
			continue
		}
		mbuf := make([]byte, len(payload))
		copy(mbuf, payload)
		n.ctrlFanout++
		n.route(e, Datagram{
			Src: e.addr, Dst: member.addr, Payload: mbuf, SentAt: at,
		}, false)
	}
}

// route schedules one datagram for delivery; faulted selects whether
// the fault plan applies (unicast traffic) or not (multicast fan-out).
func (n *Network) route(e *Endpoint, dg Datagram, faulted bool) {
	dst := dg.Dst
	payload := dg.Payload
	var lat logical.Duration
	if dst.Host == e.addr.Host {
		lat = e.host.loopback.Latency(len(payload))
	} else {
		if _, local := n.hosts[dst.Host]; !local && n.router != nil {
			if n.router(e, dg) {
				return
			}
		}
		model := n.defaultModel
		if m, ok := n.links[linkKey(e.addr.Host, dst.Host)]; ok {
			model = m
		}
		var extra logical.Duration
		if faulted {
			var drop bool
			drop, extra = n.faultVerdict(e.addr.Host, dst.Host)
			if drop {
				n.dropped++
				return
			}
		}
		lat = model.Latency(len(payload)) + n.switchDelay + extra
	}
	n.k.AfterTransientFn(lat, deliverFn, n.borrowDeliver(n, dg))
}

func (n *Network) deliver(dg Datagram) {
	h, ok := n.hosts[dg.Dst.Host]
	if !ok {
		n.dropped++
		return
	}
	ep, ok := h.ports[dg.Dst.Port]
	if !ok || ep.closed {
		n.dropped++
		return
	}
	n.delivered++
	if ep.onRecv != nil {
		ep.onRecv(dg)
		return
	}
	ep.mb.Put(dg)
}
