package simnet

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/logical"
)

// Cluster partitions a simulated network across the kernels of a
// des.Federation: each partition owns a Network on its own kernel, hosts
// are pinned to partitions, intra-partition traffic schedules locally
// exactly as on a plain Network, and inter-partition traffic crosses
// timestamped federation channels whose lookahead is the minimum latency
// of the corresponding link model.
//
// Determinism contract (what makes a federated run byte-identical to a
// single-kernel run of the same topology and seed):
//
//   - Cross-partition latency models must be RNG-free (they must
//     implement MinLatencyModel, and their draws must not consume shared
//     random streams — FixedLatency is the canonical choice). A shared
//     jitter stream would be consumed in global event order on one kernel
//     but in per-partition order on a federation.
//   - DropRate and FaultPlans are fully supported: packet fates are
//     counter-based (see FaultPlan) — keyed on (seed, directed link,
//     packet index) rather than drawn from a shared sequential stream —
//     so a drop, blackout or jitter decision is a pure function that
//     both execution modes evaluate identically.
//   - Multicast groups are per-partition: a group member receives
//     cross-partition traffic only if the sender's partition also has the
//     group (service discovery therefore spans one partition; federated
//     scenarios use static peer configuration, ara.Runtime.StaticProxy).
type Cluster struct {
	fed         *des.Federation
	parts       []*Network
	owner       map[uint16]int // host id -> partition
	chans       [][]*des.Channel
	model       MinLatencyModel
	links       map[[2]uint16]MinLatencyModel
	switchDelay logical.Duration
	nextID      uint16
}

// NewCluster creates a partitioned network over the federation. The
// configuration applies uniformly: every partition's Network uses it for
// intra-partition traffic, and cross-partition links use the same default
// latency model, switch delay and fault plan, so a host pair observes
// identical timing (and identical packet fates) whether or not it is
// co-partitioned. DefaultLatency must implement MinLatencyModel and have
// a positive minimum (plus switch delay). DropRate and Faults may be
// nonzero: counter-based fault streams are interleaving-independent, so
// they do not break cross-mode byte-equality — and because fault-plan
// jitter only ever adds delay, the lookahead derived from the link
// model's minimum remains conservative under any plan.
func NewCluster(fed *des.Federation, cfg Config) (*Cluster, error) {
	return NewClusterRoutes(fed, cfg, nil)
}

// NewClusterRoutes creates a partitioned network whose federation
// channels exist only for the directed partition pairs the route
// predicate admits (nil admits every pair, matching NewCluster). A
// sparser channel graph directly widens the federation's conservative
// grants: the coordinator's lookahead matrix routes the synchronization
// constraint between undeclared pairs through multi-hop paths (or not at
// all), so partitions that never exchange traffic stop throttling each
// other. Sending a datagram across an undeclared partition pair panics —
// the route set is a topology contract, not a filter. The predicate is
// consulted once per ordered pair at construction time, in (from, to)
// creation order, so it also fixes the channels' deterministic creation
// order.
func NewClusterRoutes(fed *des.Federation, cfg Config, route func(from, to int) bool) (*Cluster, error) {
	// Surface fault-configuration mistakes as errors here; the same
	// checks panic later in NewNetwork, whose signature predates them.
	if cfg.DropRate < 0 || cfg.DropRate > 1 {
		return nil, fmt.Errorf("simnet: cluster DropRate %v outside [0,1]", cfg.DropRate)
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
	}
	model := cfg.DefaultLatency
	if model == nil {
		model = FixedLatency(50 * logical.Microsecond)
		cfg.DefaultLatency = model
	}
	mm, ok := model.(MinLatencyModel)
	if !ok {
		return nil, fmt.Errorf("simnet: cluster default latency model %T does not implement MinLatencyModel", model)
	}
	if err := crossPartitionSafe(mm); err != nil {
		return nil, err
	}
	lookahead := mm.MinLatency() + cfg.SwitchDelay
	if lookahead <= 0 {
		return nil, fmt.Errorf("simnet: cluster needs positive cross-partition lookahead (min latency + switch delay)")
	}
	p := fed.Partitions()
	c := &Cluster{
		fed:         fed,
		parts:       make([]*Network, p),
		owner:       map[uint16]int{},
		chans:       make([][]*des.Channel, p),
		model:       mm,
		links:       map[[2]uint16]MinLatencyModel{},
		switchDelay: cfg.SwitchDelay,
	}
	for i := 0; i < p; i++ {
		c.parts[i] = NewNetwork(fed.Kernel(i), cfg)
		c.chans[i] = make([]*des.Channel, p)
	}
	for from := 0; from < p; from++ {
		from := from
		for to := 0; to < p; to++ {
			if from == to || (route != nil && !route(from, to)) {
				continue
			}
			c.chans[from][to] = fed.Channel(from, to, lookahead)
		}
		c.parts[from].router = func(src *Endpoint, dg Datagram) bool {
			return c.route(from, src, dg)
		}
	}
	return c, nil
}

// Federation returns the underlying federation.
func (c *Cluster) Federation() *des.Federation { return c.fed }

// Partition returns partition i's Network (for latency overrides,
// multicast groups, or direct kernel access).
func (c *Cluster) Partition(i int) *Network { return c.parts[i] }

// AddHost attaches a platform to the given partition. Host IDs are
// allocated by the cluster so that addresses are unique network-wide.
// The clock (may be nil) must belong to the partition's kernel.
func (c *Cluster) AddHost(part int, name string, clock *des.LocalClock) *Host {
	c.nextID++
	c.owner[c.nextID] = part
	return c.parts[part].addHostID(c.nextID, name, clock)
}

// PartitionOf returns the partition owning the host ID.
func (c *Cluster) PartitionOf(host uint16) (int, bool) {
	p, ok := c.owner[host]
	return p, ok
}

// SetLink installs a latency model for traffic between hosts a and b
// (both directions), co-partitioned or not. The model must implement
// MinLatencyModel; if the pair crosses partitions, the connecting
// channels' lookahead is lowered to the model's minimum when necessary.
// Must be called before the federation runs.
func (c *Cluster) SetLink(a, b uint16, m MinLatencyModel) {
	pa, oka := c.owner[a]
	pb, okb := c.owner[b]
	if !oka || !okb {
		panic(fmt.Sprintf("simnet: SetLink on unknown hosts %d,%d", a, b))
	}
	if pa == pb {
		c.parts[pa].SetLink(a, b, m)
		return
	}
	if err := crossPartitionSafe(m); err != nil {
		panic(err)
	}
	c.links[linkKey(a, b)] = m
	la := m.MinLatency() + c.switchDelay
	if la <= 0 {
		panic("simnet: cluster link needs positive lookahead (min latency + switch delay)")
	}
	for _, ch := range []*des.Channel{c.chans[pa][pb], c.chans[pb][pa]} {
		if ch == nil {
			panic(fmt.Sprintf(
				"simnet: SetLink between hosts %d,%d crosses partitions %d<->%d with no declared route (see NewClusterRoutes)",
				a, b, pa, pb))
		}
		if la < ch.Lookahead() {
			ch.SetLookahead(la)
		}
	}
}

// Delivered sums delivered datagrams across all partitions. Each
// datagram is counted exactly once, by the partition that owns its
// destination host.
func (c *Cluster) Delivered() uint64 {
	var n uint64
	for _, p := range c.parts {
		n += p.Delivered()
	}
	return n
}

// ControlPlane sums the partitions' control-plane counters (see
// Network.ControlPlane): multicast/topic send calls and the datagrams
// they fanned out. Fan-out is per-partition, so each fanned-out
// datagram is counted once, by the sender's partition.
func (c *Cluster) ControlPlane() (sends, fanout uint64) {
	for _, p := range c.parts {
		s, f := p.ControlPlane()
		sends += s
		fanout += f
	}
	return sends, fanout
}

// Dropped sums dropped datagrams across all partitions.
func (c *Cluster) Dropped() uint64 {
	var n uint64
	for _, p := range c.parts {
		n += p.Dropped()
	}
	return n
}

// crossPartitionSafe rejects latency models whose Latency draws
// randomness: the model instance is shared by every partition and
// consulted from parallel kernel goroutines, so a stateful model is both
// a data race and a determinism leak (draw order would depend on the
// partitioning). Only JitterLatency carries an RNG today; custom models
// must be stateless by the same contract.
func crossPartitionSafe(m MinLatencyModel) error {
	if j, ok := m.(*JitterLatency); ok && j.Rng != nil {
		return fmt.Errorf("simnet: cluster links must use RNG-free latency models (JitterLatency with Rng draws in partition-dependent order)")
	}
	return nil
}

// route forwards a cross-partition datagram through the federation
// channel. Runs on the sending partition's kernel goroutine. Returns
// false when the destination host is unknown cluster-wide, in which case
// the sending Network applies its usual unknown-host policy (the packet
// is scheduled locally and dropped at delivery time, mirroring the
// single-kernel count).
func (c *Cluster) route(from int, src *Endpoint, dg Datagram) bool {
	to, ok := c.owner[dg.Dst.Host]
	if !ok {
		return false
	}
	// The sending partition owns the directed-link packet counter, so the
	// fault verdict here consumes exactly the index a single-kernel run
	// would for this packet.
	drop, extra := c.parts[from].faultVerdict(dg.Src.Host, dg.Dst.Host)
	if drop {
		c.parts[from].dropped++
		return true
	}
	model := MinLatencyModel(c.model)
	if m, ok := c.links[linkKey(dg.Src.Host, dg.Dst.Host)]; ok {
		model = m
	}
	lat := model.Latency(len(dg.Payload)) + c.switchDelay + extra
	target := c.parts[to]
	ch := c.chans[from][to]
	if ch == nil {
		panic(fmt.Sprintf(
			"simnet: datagram %d->%d crosses partitions %d->%d with no declared route (see NewClusterRoutes)",
			dg.Src.Host, dg.Dst.Host, from, to))
	}
	at := c.parts[from].k.Now().Add(lat)
	// Closure-free send: the carrier is borrowed from the sending
	// partition's pool (this goroutine) and released into the target's
	// when the delivery fires (the target kernel's goroutine) — see
	// deliverArg for why the hand-off is race-free.
	ch.SendFn(at, deliverFn, c.parts[from].borrowDeliver(target, dg))
	return true
}
