package simnet

import (
	"bytes"
	"testing"

	"repro/internal/des"
	"repro/internal/logical"
)

func newNet(seed uint64) (*des.Kernel, *Network) {
	k := des.NewKernel(seed)
	n := NewNetwork(k, Config{})
	return k, n
}

func TestSendReceiveAcrossHosts(t *testing.T) {
	k, n := newNet(1)
	h1 := n.AddHost("p1", nil)
	h2 := n.AddHost("p2", nil)
	a := h1.MustBind(1000)
	b := h2.MustBind(2000)

	var got Datagram
	k.Spawn("rx", func(p *des.Process) { got = b.Recv(p) })
	k.At(0, func() { a.Send(b.Addr(), []byte("hello")) })
	k.RunAll()

	if !bytes.Equal(got.Payload, []byte("hello")) {
		t.Errorf("payload = %q", got.Payload)
	}
	if got.Src != a.Addr() || got.Dst != b.Addr() {
		t.Errorf("addrs: src %v dst %v", got.Src, got.Dst)
	}
	if k.Now() != logical.Time(50*logical.Microsecond) {
		t.Errorf("delivery at %v, want default 50µs", k.Now())
	}
}

func TestLoopbackFasterThanNetwork(t *testing.T) {
	k, n := newNet(1)
	h := n.AddHost("p1", nil)
	a := h.MustBind(1)
	b := h.MustBind(2)
	var at logical.Time
	k.Spawn("rx", func(p *des.Process) {
		b.Recv(p)
		at = p.Now()
	})
	k.At(0, func() { a.Send(b.Addr(), []byte("x")) })
	k.RunAll()
	if at != logical.Time(5*logical.Microsecond) {
		t.Errorf("loopback delivery at %v, want 5µs", at)
	}
}

func TestPayloadIsCopied(t *testing.T) {
	k, n := newNet(1)
	h := n.AddHost("p", nil)
	a := h.MustBind(1)
	b := h.MustBind(2)
	buf := []byte("aaaa")
	var got Datagram
	k.Spawn("rx", func(p *des.Process) { got = b.Recv(p) })
	k.At(0, func() {
		a.Send(b.Addr(), buf)
		copy(buf, "bbbb") // mutate after send
	})
	k.RunAll()
	if string(got.Payload) != "aaaa" {
		t.Errorf("payload mutated in flight: %q", got.Payload)
	}
}

func TestSendToUnboundPortDrops(t *testing.T) {
	k, n := newNet(1)
	h1 := n.AddHost("p1", nil)
	h2 := n.AddHost("p2", nil)
	a := h1.MustBind(1)
	k.At(0, func() { a.Send(Addr{Host: h2.ID(), Port: 9}, []byte("x")) })
	k.RunAll()
	if n.Dropped() != 1 || n.Delivered() != 0 {
		t.Errorf("dropped=%d delivered=%d", n.Dropped(), n.Delivered())
	}
}

func TestSendToUnknownHostDrops(t *testing.T) {
	k, n := newNet(1)
	h1 := n.AddHost("p1", nil)
	a := h1.MustBind(1)
	k.At(0, func() { a.Send(Addr{Host: 99, Port: 9}, []byte("x")) })
	k.RunAll()
	if n.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", n.Dropped())
	}
}

func TestClosedEndpointDrops(t *testing.T) {
	k, n := newNet(1)
	h := n.AddHost("p", nil)
	a := h.MustBind(1)
	b := h.MustBind(2)
	b.Close()
	k.At(0, func() { a.Send(Addr{Host: h.ID(), Port: 2}, []byte("x")) })
	k.RunAll()
	if n.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", n.Dropped())
	}
}

func TestBindDuplicatePortFails(t *testing.T) {
	_, n := newNet(1)
	h := n.AddHost("p", nil)
	h.MustBind(5)
	if _, err := h.Bind(5); err == nil {
		t.Error("duplicate bind should fail")
	}
}

func TestBindEphemeral(t *testing.T) {
	_, n := newNet(1)
	h := n.AddHost("p", nil)
	e1, err := h.Bind(0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := h.Bind(0)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Addr().Port < 49152 || e2.Addr().Port < 49152 {
		t.Error("ephemeral ports below 49152")
	}
	if e1.Addr().Port == e2.Addr().Port {
		t.Error("ephemeral ports collide")
	}
}

func TestOnReceiveCallback(t *testing.T) {
	k, n := newNet(1)
	h := n.AddHost("p", nil)
	a := h.MustBind(1)
	b := h.MustBind(2)
	var got []byte
	b.OnReceive(func(dg Datagram) { got = dg.Payload })
	k.At(0, func() { a.Send(b.Addr(), []byte("cb")) })
	k.RunAll()
	if string(got) != "cb" {
		t.Errorf("callback got %q", got)
	}
	if b.Pending() != 0 {
		t.Error("mailbox should be bypassed")
	}
}

func TestInOrderDeliverySameLatency(t *testing.T) {
	k, n := newNet(1)
	h1 := n.AddHost("p1", nil)
	h2 := n.AddHost("p2", nil)
	a := h1.MustBind(1)
	b := h2.MustBind(2)
	var got []byte
	b.OnReceive(func(dg Datagram) { got = append(got, dg.Payload[0]) })
	k.At(0, func() {
		for _, c := range []byte("abcde") {
			a.Send(b.Addr(), []byte{c})
		}
	})
	k.RunAll()
	if string(got) != "abcde" {
		t.Errorf("order = %q, want abcde", got)
	}
}

func TestJitterLatencyReordersPackets(t *testing.T) {
	k := des.NewKernel(7)
	n := NewNetwork(k, Config{
		DefaultLatency: &JitterLatency{
			Base:  logical.Duration(100 * logical.Microsecond),
			Sigma: logical.Duration(80 * logical.Microsecond),
			Rng:   k.Rand("lat"),
		},
	})
	h1 := n.AddHost("p1", nil)
	h2 := n.AddHost("p2", nil)
	a := h1.MustBind(1)
	b := h2.MustBind(2)
	var got []byte
	b.OnReceive(func(dg Datagram) { got = append(got, dg.Payload[0]) })
	k.At(0, func() {
		for i := byte(0); i < 50; i++ {
			a.Send(b.Addr(), []byte{i})
		}
	})
	k.RunAll()
	if len(got) != 50 {
		t.Fatalf("delivered %d/50", len(got))
	}
	reordered := false
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Error("high jitter should reorder some packets (nondeterminism source #3)")
	}
}

func TestJitterLatencyDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []logical.Time {
		k := des.NewKernel(seed)
		n := NewNetwork(k, Config{
			DefaultLatency: &JitterLatency{
				Base:  logical.Duration(time100()),
				Sigma: logical.Duration(30 * logical.Microsecond),
				Rng:   k.Rand("lat"),
			},
		})
		h1 := n.AddHost("p1", nil)
		h2 := n.AddHost("p2", nil)
		a := h1.MustBind(1)
		b := h2.MustBind(2)
		var times []logical.Time
		b.OnReceive(func(dg Datagram) { times = append(times, k.Now()) })
		for i := 0; i < 20; i++ {
			k.At(logical.Time(i)*logical.Time(logical.Millisecond), func() {
				a.Send(b.Addr(), []byte("x"))
			})
		}
		k.RunAll()
		return times
	}
	a, b := run(11), run(11)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed delivery schedules differ")
		}
	}
}

func time100() logical.Duration { return 100 * logical.Microsecond }

func TestPerByteSerializationCost(t *testing.T) {
	m := &JitterLatency{Base: 0, PerByte: 8} // 8ns/byte ≈ 1 Gbit/s
	if got := m.Latency(1000); got != 8000 {
		t.Errorf("latency = %v, want 8000ns", got)
	}
}

func TestSetLinkOverridesDefault(t *testing.T) {
	k, n := newNet(1)
	h1 := n.AddHost("p1", nil)
	h2 := n.AddHost("p2", nil)
	n.SetLink(h1.ID(), h2.ID(), FixedLatency(logical.Duration(3*logical.Millisecond)))
	a := h1.MustBind(1)
	b := h2.MustBind(2)
	var at logical.Time
	b.OnReceive(func(Datagram) { at = k.Now() })
	k.At(0, func() { a.Send(b.Addr(), []byte("x")) })
	k.RunAll()
	if at != logical.Time(3*logical.Millisecond) {
		t.Errorf("delivery at %v, want 3ms", at)
	}
}

func TestSwitchDelayAddsOnlyAcrossHosts(t *testing.T) {
	k := des.NewKernel(1)
	n := NewNetwork(k, Config{
		DefaultLatency: FixedLatency(10),
		SwitchDelay:    100,
	})
	h1 := n.AddHost("p1", nil)
	h2 := n.AddHost("p2", nil)
	a := h1.MustBind(1)
	b := h2.MustBind(2)
	c := h1.MustBind(3)
	var across, local logical.Time
	b.OnReceive(func(Datagram) { across = k.Now() })
	c.OnReceive(func(Datagram) { local = k.Now() })
	k.At(0, func() {
		a.Send(b.Addr(), []byte("x"))
		a.Send(c.Addr(), []byte("x"))
	})
	k.RunAll()
	if across != 110 {
		t.Errorf("across = %v, want 110", across)
	}
	if local != logical.Time(5*logical.Microsecond) {
		t.Errorf("local = %v, want loopback 5µs", local)
	}
}

func TestDropRate(t *testing.T) {
	k := des.NewKernel(3)
	n := NewNetwork(k, Config{DropRate: 0.5})
	h1 := n.AddHost("p1", nil)
	h2 := n.AddHost("p2", nil)
	a := h1.MustBind(1)
	b := h2.MustBind(2)
	received := 0
	b.OnReceive(func(Datagram) { received++ })
	k.At(0, func() {
		for i := 0; i < 1000; i++ {
			a.Send(b.Addr(), []byte("x"))
		}
	})
	k.RunAll()
	if received < 400 || received > 600 {
		t.Errorf("received %d/1000 at 50%% drop", received)
	}
	if n.Dropped()+uint64(received) != 1000 {
		t.Errorf("dropped %d + received %d != 1000", n.Dropped(), received)
	}
}

func TestEndpointsSorted(t *testing.T) {
	_, n := newNet(1)
	h := n.AddHost("p", nil)
	h.MustBind(30)
	h.MustBind(10)
	h.MustBind(20)
	eps := h.Endpoints()
	if len(eps) != 3 || eps[0].Addr().Port != 10 || eps[1].Addr().Port != 20 || eps[2].Addr().Port != 30 {
		t.Errorf("endpoints out of order: %v %v %v", eps[0].Addr(), eps[1].Addr(), eps[2].Addr())
	}
}

func TestHostClockAttachment(t *testing.T) {
	k, _ := newNet(1)
	clk := k.NewLocalClock(des.ClockConfig{Offset: 7}, nil)
	n := NewNetwork(k, Config{})
	h := n.AddHost("p", clk)
	if h.Clock().Now() != 7 {
		t.Errorf("clock = %v", h.Clock().Now())
	}
}
