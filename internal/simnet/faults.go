package simnet

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/logical"
)

// FaultPlan is a seeded, deterministic fault schedule for a Network or
// Cluster: background packet loss, per-link loss windows, network
// partitions (bidirectional link blackouts) and jitter bursts.
//
// Every per-packet decision is a pure function of (fault seed, directed
// link, packet index, send time): the plan draws from counter-based
// streams (des.Mix3) rather than sequential RNG streams, so a packet's
// fate does not depend on how sends interleave with unrelated traffic.
// That is the property that lets a federated Cluster run with nonzero
// drop rates and still produce byte-identical results to a single
// kernel — the packet index on a directed link src→dst only advances on
// sends from src's host, which fire in identical order in both modes,
// whereas a shared sequential drop stream would be consumed in global
// delivery order on one kernel but in per-partition order on a
// federation.
//
// A FaultPlan must be treated as immutable once installed, and the same
// plan value must be installed on every execution mode being compared.
// Faults apply to inter-host *unicast* traffic only: loopback delivery
// models the host's own stack, and multicast fan-out models Ethernet
// multicast (the SD control plane), whose per-partition semantics on a
// federated Cluster would otherwise consume link counters
// mode-dependently. Service discovery is disturbed through the host
// lifecycle (Host.Crash silences a provider until its offers' TTLs
// expire), not through packet-level faults.
type FaultPlan struct {
	// Seed salts every counter-based draw. Two plans that differ only in
	// Seed produce independent fault patterns.
	Seed uint64 `json:"seed,omitempty"`
	// DropRate is the background probability of losing any inter-host
	// packet, matching Config.DropRate semantics.
	DropRate float64 `json:"dropRate,omitempty"`
	// Loss elevates the loss probability on selected links during
	// windows of simulated time.
	Loss []LossWindow `json:"loss,omitempty"`
	// Partitions black out all traffic between two host groups during
	// windows of simulated time (both directions, no randomness).
	Partitions []PartitionWindow `json:"partitions,omitempty"`
	// Jitter adds bounded extra one-way delay on selected links during
	// windows of simulated time. Extra delay is always non-negative, so
	// a link model's MinLatency lower bound — and with it the federation
	// lookahead — remains valid under any jitter burst.
	Jitter []JitterBurst `json:"jitter,omitempty"`
}

// LossWindow raises the drop probability for packets between hosts A
// and B (either direction) sent during [From, To). A or B equal to zero
// acts as a wildcard matching any host. When several windows match one
// packet, the highest rate (including the background DropRate) applies.
type LossWindow struct {
	// From bounds the window start: a packet is affected iff its send
	// time lies in [From, To).
	From logical.Time `json:"fromNs"`
	// To bounds the window end (exclusive).
	To logical.Time `json:"toNs"`
	// A selects one endpoint of the host pair (either direction);
	// zero = any host.
	A uint16 `json:"a,omitempty"`
	// B selects the other endpoint; zero = any host.
	B uint16 `json:"b,omitempty"`
	// Rate is the drop probability inside the window.
	Rate float64 `json:"rate"`
}

// PartitionWindow models a network partition: every packet crossing
// from one side to the other (either direction) sent during [From, To)
// is dropped, while each island stays internally connected — the
// defining property of a partition. An empty group denotes the
// complement of the populated one, so one populated group against an
// empty one isolates that group from the rest of the network; both
// groups empty is a global blackout (no packet crosses anywhere).
type PartitionWindow struct {
	// From bounds the blackout start: a packet is severed iff its send
	// time lies in [From, To).
	From logical.Time `json:"fromNs"`
	// To bounds the blackout end (exclusive).
	To logical.Time `json:"toNs"`
	// GroupA is one side of the partition; empty means "every host not
	// in GroupB".
	GroupA []uint16 `json:"groupA,omitempty"`
	// GroupB is the other side; empty means "every host not in GroupA".
	GroupB []uint16 `json:"groupB,omitempty"`
}

// JitterBurst adds uniform extra delay in [0, Extra] to packets between
// hosts A and B (either direction) sent during [From, To). A or B equal
// to zero acts as a wildcard. Overlapping bursts accumulate. Because
// the extra delay is per-packet random, a burst reorders traffic — the
// failure mode that corrupts one-slot buffers in the stock APD pipeline
// (experiment E11).
type JitterBurst struct {
	// From bounds the burst start: a packet is affected iff its send
	// time lies in [From, To).
	From logical.Time `json:"fromNs"`
	// To bounds the burst end (exclusive).
	To logical.Time `json:"toNs"`
	// A selects one endpoint of the host pair (either direction);
	// zero = any host.
	A uint16 `json:"a,omitempty"`
	// B selects the other endpoint; zero = any host.
	B uint16 `json:"b,omitempty"`
	// Extra is the maximum added one-way delay; each affected packet
	// draws uniformly from [0, Extra].
	Extra logical.Duration `json:"extraNs"`
}

// Validate checks the plan's static constraints: probabilities within
// [0, 1], windows well-formed, jitter non-negative.
func (p *FaultPlan) Validate() error {
	if p.DropRate < 0 || p.DropRate > 1 {
		return fmt.Errorf("simnet: fault plan DropRate %v outside [0,1]", p.DropRate)
	}
	for i, w := range p.Loss {
		if w.Rate < 0 || w.Rate > 1 {
			return fmt.Errorf("simnet: loss window %d rate %v outside [0,1]", i, w.Rate)
		}
		if w.To < w.From {
			return fmt.Errorf("simnet: loss window %d ends before it starts", i)
		}
	}
	for i, w := range p.Partitions {
		if w.To < w.From {
			return fmt.Errorf("simnet: partition window %d ends before it starts", i)
		}
	}
	for i, w := range p.Jitter {
		if w.Extra < 0 {
			return fmt.Errorf("simnet: jitter burst %d has negative extra delay", i)
		}
		if w.To < w.From {
			return fmt.Errorf("simnet: jitter burst %d ends before it starts", i)
		}
	}
	return nil
}

// hostMatch reports whether selector sel matches host h (0 = wildcard).
func hostMatch(sel, h uint16) bool { return sel == 0 || sel == h }

// pairMatch reports whether the (a, b) selector matches the directed
// pair (src, dst) in either orientation.
func pairMatch(a, b, src, dst uint16) bool {
	return (hostMatch(a, src) && hostMatch(b, dst)) ||
		(hostMatch(a, dst) && hostMatch(b, src))
}

// groupHas reports plain group membership.
func groupHas(group []uint16, h uint16) bool {
	for _, g := range group {
		if g == h {
			return true
		}
	}
	return false
}

// severs reports whether the window separates src from dst: true iff
// the two hosts sit on opposite sides of the partition. Traffic within
// one island is never severed (except under the both-empty global
// blackout).
func (w *PartitionWindow) severs(src, dst uint16) bool {
	aEmpty, bEmpty := len(w.GroupA) == 0, len(w.GroupB) == 0
	switch {
	case aEmpty && bEmpty:
		return true // global blackout
	case aEmpty:
		return groupHas(w.GroupB, src) != groupHas(w.GroupB, dst)
	case bEmpty:
		return groupHas(w.GroupA, src) != groupHas(w.GroupA, dst)
	default:
		return (groupHas(w.GroupA, src) && groupHas(w.GroupB, dst)) ||
			(groupHas(w.GroupA, dst) && groupHas(w.GroupB, src))
	}
}

// Counter-stream purposes: distinct salts keep the drop draw and the
// jitter draw of the same packet independent.
const (
	faultPurposeDrop   = 0x01
	faultPurposeJitter = 0x02
)

// linkStream builds the Mix3 stream key for a directed link and purpose.
func linkStream(src, dst uint16, purpose uint64) uint64 {
	return uint64(src)<<32 | uint64(dst)<<16 | purpose
}

// verdict computes the fate of the idx-th packet on the directed link
// src→dst sent at simulated time now: whether the packet is dropped and
// how much extra one-way delay it accrues. It is a pure function of its
// arguments, so the caller only has to supply a deterministic packet
// index to obtain an interleaving-independent fault pattern. netSeed is
// the network's label-derived fault seed (identical on every partition
// kernel of a federation, because all partitions share the root seed).
func (p *FaultPlan) verdict(netSeed uint64, src, dst uint16, idx uint64, now logical.Time) (drop bool, extra logical.Duration) {
	for i := range p.Partitions {
		w := &p.Partitions[i]
		if now >= w.From && now < w.To && w.severs(src, dst) {
			return true, 0
		}
	}
	rate := p.DropRate
	for _, w := range p.Loss {
		if now >= w.From && now < w.To && pairMatch(w.A, w.B, src, dst) && w.Rate > rate {
			rate = w.Rate
		}
	}
	if rate > 0 {
		h := des.Mix3(netSeed^p.Seed, linkStream(src, dst, faultPurposeDrop), idx)
		if des.UnitFloat64(h) < rate {
			return true, 0
		}
	}
	for i, w := range p.Jitter {
		if w.Extra > 0 && now >= w.From && now < w.To && pairMatch(w.A, w.B, src, dst) {
			h := des.Mix3(netSeed^p.Seed, linkStream(src, dst, faultPurposeJitter+uint64(i)<<8), idx)
			extra += logical.Duration(h % uint64(w.Extra+1))
		}
	}
	return false, extra
}
