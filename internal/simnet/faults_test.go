package simnet

import (
	"testing"

	"repro/internal/des"
	"repro/internal/logical"
)

// pumpPackets sends n packets from h1 to h2 at a fixed cadence and
// returns the delivery times.
func pumpPackets(k *des.Kernel, src, dst *Endpoint, n int, gap logical.Duration) *[]logical.Time {
	times := &[]logical.Time{}
	dst.OnReceive(func(dg Datagram) { *times = append(*times, k.Now()) })
	k.Spawn("tx", func(p *des.Process) {
		for i := 0; i < n; i++ {
			src.Send(dst.Addr(), []byte{byte(i)})
			p.Sleep(gap)
		}
	})
	return times
}

func TestFaultPlanBackgroundDrops(t *testing.T) {
	k := des.NewKernel(1)
	n := NewNetwork(k, Config{DropRate: 0.5})
	h1, h2 := n.AddHost("a", nil), n.AddHost("b", nil)
	times := pumpPackets(k, h1.MustBind(1), h2.MustBind(2), 200, logical.Millisecond)
	k.RunAll()
	k.Shutdown()
	got := len(*times)
	if got == 0 || got == 200 {
		t.Fatalf("deliveries = %d, want a strict subset of 200", got)
	}
	if n.Dropped() != uint64(200-got) {
		t.Fatalf("dropped = %d, delivered %d of 200", n.Dropped(), got)
	}
	// Loose binomial sanity bound: p=0.5 over 200 trials.
	if got < 60 || got > 140 {
		t.Fatalf("deliveries = %d, implausible for p=0.5", got)
	}
}

// The same (plan, link, packet index) must meet the same fate regardless
// of what other traffic the network carries — the counter-based
// construction's defining property.
func TestFaultDropsIndependentOfUnrelatedTraffic(t *testing.T) {
	run := func(noise bool) []logical.Time {
		k := des.NewKernel(1)
		n := NewNetwork(k, Config{DropRate: 0.4})
		h1, h2, h3 := n.AddHost("a", nil), n.AddHost("b", nil), n.AddHost("c", nil)
		times := pumpPackets(k, h1.MustBind(1), h2.MustBind(2), 100, logical.Millisecond)
		if noise {
			// Interleaved unrelated traffic on other links.
			src := h3.MustBind(3)
			sink := h2.MustBind(4)
			sink.OnReceive(func(Datagram) {})
			k.Spawn("noise", func(p *des.Process) {
				for i := 0; i < 300; i++ {
					src.Send(sink.Addr(), []byte{0})
					p.Sleep(337 * logical.Microsecond)
				}
			})
		}
		k.RunAll()
		k.Shutdown()
		return *times
	}
	quiet, noisy := run(false), run(true)
	if len(quiet) != len(noisy) {
		t.Fatalf("deliveries diverged with unrelated traffic: %d vs %d", len(quiet), len(noisy))
	}
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("delivery %d at %v vs %v", i, quiet[i], noisy[i])
		}
	}
}

func TestPartitionWindowBlacksOutBothDirections(t *testing.T) {
	win := PartitionWindow{
		From: logical.Time(10 * logical.Millisecond), To: logical.Time(20 * logical.Millisecond),
		GroupA: []uint16{1}, GroupB: []uint16{2},
	}
	k := des.NewKernel(1)
	n := NewNetwork(k, Config{Faults: &FaultPlan{Partitions: []PartitionWindow{win}}})
	h1, h2 := n.AddHost("a", nil), n.AddHost("b", nil)
	e1, e2 := h1.MustBind(1), h2.MustBind(1)
	fwd := pumpPackets(k, e1, h2.MustBind(2), 30, logical.Millisecond)
	rev := pumpPackets(k, e2, h1.MustBind(2), 30, logical.Millisecond)
	k.RunAll()
	k.Shutdown()
	// 30 packets at 1ms cadence starting at t=0: sends in [10ms, 20ms)
	// are severed in both directions.
	if len(*fwd) != 20 || len(*rev) != 20 {
		t.Fatalf("deliveries fwd=%d rev=%d, want 20 each", len(*fwd), len(*rev))
	}
	for _, at := range append(append([]logical.Time{}, *fwd...), *rev...) {
		sent := at - logical.Time(50*logical.Microsecond) // default latency
		if sent >= win.From && sent < win.To {
			t.Fatalf("delivery of packet sent at %v inside blackout", sent)
		}
	}
}

// A partition must keep each island internally connected: only traffic
// crossing the cut is severed, including under the empty-group
// (complement) shorthand.
func TestPartitionWindowKeepsIslandsConnected(t *testing.T) {
	for _, tc := range []struct {
		name   string
		groupA []uint16
		groupB []uint16
	}{
		{"explicit groups", []uint16{1, 2}, []uint16{3}},
		{"complement shorthand", []uint16{1, 2}, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			win := PartitionWindow{From: 0, To: logical.Forever, GroupA: tc.groupA, GroupB: tc.groupB}
			k := des.NewKernel(1)
			n := NewNetwork(k, Config{Faults: &FaultPlan{Partitions: []PartitionWindow{win}}})
			h1, h2, h3 := n.AddHost("a", nil), n.AddHost("b", nil), n.AddHost("c", nil)
			_ = h3
			intra := pumpPackets(k, h1.MustBind(1), h2.MustBind(1), 10, logical.Millisecond)
			cross := pumpPackets(k, h1.MustBind(2), h3.MustBind(1), 10, logical.Millisecond)
			k.RunAll()
			k.Shutdown()
			if len(*intra) != 10 {
				t.Fatalf("intra-island deliveries = %d of 10: partition severed its own island", len(*intra))
			}
			if len(*cross) != 0 {
				t.Fatalf("cross-island deliveries = %d, want 0", len(*cross))
			}
		})
	}
}

func TestLossWindowElevatesLossOnSelectedLink(t *testing.T) {
	plan := &FaultPlan{Loss: []LossWindow{{
		From: 0, To: logical.Forever, A: 1, B: 2, Rate: 0.9,
	}}}
	k := des.NewKernel(1)
	n := NewNetwork(k, Config{Faults: plan})
	h1, h2, h3 := n.AddHost("a", nil), n.AddHost("b", nil), n.AddHost("c", nil)
	lossy := pumpPackets(k, h1.MustBind(1), h2.MustBind(1), 100, logical.Millisecond)
	clean := pumpPackets(k, h1.MustBind(2), h3.MustBind(1), 100, logical.Millisecond)
	k.RunAll()
	k.Shutdown()
	if len(*clean) != 100 {
		t.Fatalf("unselected link lost packets: %d of 100", len(*clean))
	}
	if len(*lossy) > 40 {
		t.Fatalf("selected link delivered %d of 100 at rate 0.9", len(*lossy))
	}
}

func TestJitterBurstDelaysWithoutLoss(t *testing.T) {
	const extra = 2 * logical.Millisecond
	plan := &FaultPlan{Jitter: []JitterBurst{{From: 0, To: logical.Forever, Extra: extra}}}
	k := des.NewKernel(1)
	n := NewNetwork(k, Config{Faults: plan})
	h1, h2 := n.AddHost("a", nil), n.AddHost("b", nil)
	times := pumpPackets(k, h1.MustBind(1), h2.MustBind(1), 50, 5*logical.Millisecond)
	k.RunAll()
	k.Shutdown()
	if len(*times) != 50 {
		t.Fatalf("jitter must not lose packets: %d of 50", len(*times))
	}
	base := logical.Duration(50 * logical.Microsecond)
	varies := false
	for i, at := range *times {
		sent := logical.Time(i) * logical.Time(5*logical.Millisecond)
		d := logical.Duration(at - sent)
		if d < base || d > base+extra {
			t.Fatalf("packet %d delay %v outside [%v, %v]", i, d, base, base+extra)
		}
		if d != base {
			varies = true
		}
	}
	if !varies {
		t.Fatal("jitter burst added no delay to any packet")
	}
}

func TestFaultPlanValidate(t *testing.T) {
	bad := []Config{
		{DropRate: 1.5},
		{Faults: &FaultPlan{Loss: []LossWindow{{Rate: -0.1}}}},
		{Faults: &FaultPlan{Loss: []LossWindow{{From: 5, To: 1, Rate: 0.5}}}},
		{Faults: &FaultPlan{Partitions: []PartitionWindow{{From: 9, To: 2}}}},
		{Faults: &FaultPlan{Jitter: []JitterBurst{{Extra: -logical.Millisecond}}}},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d: want panic", i)
				}
			}()
			NewNetwork(des.NewKernel(1), cfg)
		}()
	}
}

func TestHostCrashSilencesAndDropsInFlight(t *testing.T) {
	k := des.NewKernel(1)
	n := NewNetwork(k, Config{DefaultLatency: FixedLatency(logical.Millisecond)})
	h1, h2 := n.AddHost("a", nil), n.AddHost("b", nil)
	src := h1.MustBind(1)
	sink := h2.MustBind(1)
	got := 0
	sink.OnReceive(func(Datagram) { got++ })
	back := h1.MustBind(2)
	backGot := 0
	back.OnReceive(func(Datagram) { backGot++ })

	// One packet lands before the crash, one is in flight at crash time,
	// one is sent by the crashed host afterwards.
	k.At(0, func() { src.Send(sink.Addr(), []byte("pre")) })
	k.At(logical.Time(2500*logical.Microsecond), func() { src.Send(sink.Addr(), []byte("inflight")) })
	h2.Crash(logical.Time(3 * logical.Millisecond))
	k.At(logical.Time(4*logical.Millisecond), func() {
		if !h2.Down() {
			t.Error("host must report Down after crash")
		}
		// The crashed host transmits nothing, even through stale handles.
		sink.Send(back.Addr(), []byte("ghost"))
	})
	k.RunAll()
	k.Shutdown()
	if got != 1 {
		t.Fatalf("deliveries to crashed host = %d, want only the pre-crash packet", got)
	}
	if backGot != 0 {
		t.Fatalf("crashed host transmitted %d packets", backGot)
	}
	if n.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1 (the in-flight packet)", n.Dropped())
	}
}

func TestHostRestartRebindsAndStaleCloseIsHarmless(t *testing.T) {
	k := des.NewKernel(1)
	n := NewNetwork(k, Config{})
	h1, h2 := n.AddHost("a", nil), n.AddHost("b", nil)
	old := h2.MustBind(100)
	old.OnReceive(func(Datagram) { t.Error("old endpoint must never receive after crash") })
	src := h1.MustBind(1)

	h2.Crash(logical.Time(logical.Millisecond))
	// Bind while down must fail; checked from inside the crashed window.
	var bindErr error
	k.At(logical.Time(1500*logical.Microsecond), func() {
		_, bindErr = h2.Bind(200)
	})
	k.Run(logical.Time(1600 * logical.Microsecond))
	if bindErr == nil {
		t.Fatal("Bind on a down host must fail")
	}

	got := 0
	h2.Restart(logical.Time(2*logical.Millisecond), func() {
		fresh := h2.MustBind(100) // same port as before the crash
		fresh.OnReceive(func(Datagram) { got++ })
		// A stale Close from the pre-crash stack must not unbind the
		// successor endpoint.
		old.Close()
	})
	k.At(logical.Time(3*logical.Millisecond), func() {
		src.Send(Addr{Host: h2.ID(), Port: 100}, []byte("hello"))
	})
	k.RunAll()
	k.Shutdown()
	if got != 1 {
		t.Fatalf("deliveries after restart = %d, want 1", got)
	}
}

func TestCrashLeavesMulticastGroups(t *testing.T) {
	k := des.NewKernel(1)
	n := NewNetwork(k, Config{})
	h1, h2 := n.AddHost("a", nil), n.AddHost("b", nil)
	group := Addr{Host: MulticastBase + 9, Port: 5}
	member := h2.MustBind(5)
	got := 0
	member.OnReceive(func(Datagram) { got++ })
	n.JoinGroup(group, member)
	src := h1.MustBind(5)
	n.JoinGroup(group, src)

	k.At(0, func() { src.Send(group, []byte("one")) })
	h2.Crash(logical.Time(logical.Millisecond))
	k.At(logical.Time(2*logical.Millisecond), func() { src.Send(group, []byte("two")) })
	k.RunAll()
	k.Shutdown()
	if got != 1 {
		t.Fatalf("group deliveries = %d, want 1 (pre-crash only)", got)
	}
}
