package someip

import (
	"fmt"

	"repro/internal/simnet"
)

// Conn is a SOME/IP binding over a simulated network endpoint. It
// marshals outbound messages and decodes inbound datagrams, dispatching
// them to the registered handler. A Conn in tagged mode is the paper's
// "modified SOME/IP binding": it appends the DEAR tag trailer to outgoing
// messages that carry a tag and strips/exposes trailers on reception.
// An untagged Conn is a standards-conformant binding that treats trailers
// as opaque payload bytes.
//
// Conn implements Endpoint; handlers run as kernel events at simulated
// delivery time, so a program using only Conns stays deterministic.
type Conn struct {
	ep     *simnet.Endpoint
	tagged bool
	mtu    int
	reasm  *Reassembler
	closed bool
	onMsg  func(src Addr, m *Message)
	onErr  func(src Addr, err error)

	sent      uint64
	received  uint64
	decodeErr uint64

	// scratch is the reusable marshal buffer of the send path: the wire
	// form only needs to live for the duration of Endpoint.Send (which
	// copies its payload before returning), so one per-Conn buffer
	// replaces a fresh allocation per outbound message.
	scratch []byte
}

// NewConn creates a binding over the endpoint. When tagged is true the
// binding understands the DEAR tag trailer.
func NewConn(ep *simnet.Endpoint, tagged bool) *Conn {
	return NewConnMTU(ep, tagged, 0)
}

// NewConnMTU creates a binding with SOME/IP-TP segmentation: messages
// whose wire size exceeds mtu are split into TP segments and reassembled
// at the receiver. mtu 0 disables segmentation.
func NewConnMTU(ep *simnet.Endpoint, tagged bool, mtu int) *Conn {
	c := &Conn{ep: ep, tagged: tagged, mtu: mtu, reasm: NewReassembler(0)}
	ep.OnReceive(c.receive)
	return c
}

// Addr returns the bound address in its substrate-specific form.
func (c *Conn) Addr() simnet.Addr { return c.ep.Addr() }

// LocalAddr returns the bound address.
func (c *Conn) LocalAddr() Addr { return c.ep.Addr() }

// Endpoint returns the underlying network endpoint.
func (c *Conn) Endpoint() *simnet.Endpoint { return c.ep }

// Tagged reports whether the binding understands tag trailers.
func (c *Conn) Tagged() bool { return c.tagged }

// Stats returns (messages sent, messages received, decode errors).
func (c *Conn) Stats() (sent, received, decodeErrors uint64) {
	return c.sent, c.received, c.decodeErr
}

// OnMessage installs the inbound message handler. It runs as a kernel
// event at delivery time; src is always a simnet.Addr.
func (c *Conn) OnMessage(fn func(src Addr, m *Message)) { c.onMsg = fn }

// OnError installs a handler for inbound decode errors (default: drop).
func (c *Conn) OnError(fn func(src Addr, err error)) { c.onErr = fn }

// Close unbinds the underlying endpoint; subsequent sends fail and
// datagrams sent to it are dropped (UDP semantics).
func (c *Conn) Close() error {
	c.closed = true
	c.ep.Close()
	return nil
}

// Send marshals and transmits the message, segmenting via SOME/IP-TP
// when an MTU is configured. In an untagged binding any Tag on the
// message is ignored (a standard binding has no way to transmit it) —
// this models composing DEAR components with unmodified middleware.
// dst must be a simnet.Addr.
func (c *Conn) Send(dst Addr, m *Message) error {
	if c.closed {
		return fmt.Errorf("someip: send on closed Conn")
	}
	simDst, ok := dst.(simnet.Addr)
	if !ok {
		return fmt.Errorf("someip: Conn.Send to non-simulated address %v (%s)", dst, dst.Network())
	}
	if !c.tagged && m.Tag != nil {
		clone := *m
		clone.Tag = nil
		m = &clone
	}
	if c.mtu > 0 {
		msgs, err := Segment(m, c.mtu)
		if err != nil {
			c.decodeErr++
			if c.onErr != nil {
				c.onErr(dst, err)
			}
			return err
		}
		for _, seg := range msgs {
			c.sendMarshaled(simDst, seg)
		}
		return nil
	}
	c.sendMarshaled(simDst, m)
	return nil
}

// sendMarshaled marshals one wire message into the Conn's scratch buffer
// and hands it to the endpoint, which copies it into the in-flight
// datagram before returning — so the scratch is free for the next send.
func (c *Conn) sendMarshaled(dst simnet.Addr, m *Message) {
	c.sent++
	size := m.WireSize()
	if cap(c.scratch) < size {
		c.scratch = make([]byte, size)
	}
	buf := c.scratch[:size]
	m.MarshalTo(buf)
	c.ep.Send(dst, buf)
}

func (c *Conn) receive(dg simnet.Datagram) {
	var m *Message
	var err error
	if c.tagged {
		m, err = UnmarshalTagged(dg.Payload)
	} else {
		m, err = Unmarshal(dg.Payload)
	}
	if err == nil && m.Type&TPFlag != 0 {
		m, err = c.reasm.Feed(m, c.ep.Host().Net().Kernel().Now())
		if m == nil && err == nil {
			return // segment buffered, reassembly incomplete
		}
	}
	if err != nil {
		c.decodeErr++
		if c.onErr != nil {
			c.onErr(dg.Src, err)
		}
		return
	}
	c.received++
	if c.onMsg != nil {
		c.onMsg(dg.Src, m)
	}
}
