package someip

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/logical"
)

// newUDPPair creates two connected loopback endpoints.
func newUDPPair(t *testing.T, tagged bool, mtu int) (*UDPConn, *UDPConn) {
	t.Helper()
	a, err := ListenUDP("127.0.0.1:0", tagged, mtu)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenUDP("127.0.0.1:0", tagged, mtu)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func waitFor[T any](t *testing.T, ch <-chan T, what string) T {
	t.Helper()
	select {
	case v := <-ch:
		return v
	case <-time.After(5 * time.Second):
		t.Fatalf("timeout waiting for %s", what)
		panic("unreachable")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	a, b := newUDPPair(t, false, 0)
	got := make(chan *Message, 1)
	b.OnMessage(func(src Addr, m *Message) { got <- m })

	m := &Message{Service: 0x1234, Method: 1, Client: 2, Session: 3,
		InterfaceVersion: 1, Type: TypeRequest, Payload: []byte("hello")}
	if err := a.Send(b.Addr(), m); err != nil {
		t.Fatal(err)
	}
	rx := waitFor(t, got, "message")
	if rx.Service != m.Service || !bytes.Equal(rx.Payload, m.Payload) {
		t.Errorf("received %+v", rx)
	}
}

func TestUDPTaggedRoundTrip(t *testing.T) {
	a, b := newUDPPair(t, true, 0)
	got := make(chan *Message, 1)
	b.OnMessage(func(src Addr, m *Message) { got <- m })

	tag := logical.Tag{Time: 777, Microstep: 2}
	m := &Message{Service: 1, Method: 2, Type: TypeNotification, Payload: []byte("x"), Tag: &tag}
	if err := a.Send(b.Addr(), m); err != nil {
		t.Fatal(err)
	}
	rx := waitFor(t, got, "tagged message")
	if rx.Tag == nil || *rx.Tag != tag {
		t.Errorf("tag = %v", rx.Tag)
	}
}

func TestUDPUntaggedBindingStripsTag(t *testing.T) {
	a, b := newUDPPair(t, false, 0)
	got := make(chan *Message, 1)
	b.OnMessage(func(src Addr, m *Message) { got <- m })

	tag := logical.Tag{Time: 5}
	m := &Message{Service: 1, Method: 2, Type: TypeNotification, Payload: []byte("y"), Tag: &tag}
	if err := a.Send(b.Addr(), m); err != nil {
		t.Fatal(err)
	}
	rx := waitFor(t, got, "message")
	if rx.Tag != nil {
		t.Error("untagged binding transmitted a tag")
	}
	if !bytes.Equal(rx.Payload, []byte("y")) {
		t.Errorf("payload = %q", rx.Payload)
	}
}

func TestUDPSegmentationOverLoopback(t *testing.T) {
	a, b := newUDPPair(t, true, 1400)
	got := make(chan *Message, 1)
	b.OnMessage(func(src Addr, m *Message) { got <- m })

	payload := make([]byte, 6000)
	for i := range payload {
		payload[i] = byte(i)
	}
	tag := logical.Tag{Time: 99, Microstep: 1}
	m := &Message{Service: 1, Method: EventID(1), Type: TypeNotification, Payload: payload, Tag: &tag}
	if err := a.Send(b.Addr(), m); err != nil {
		t.Fatal(err)
	}
	rx := waitFor(t, got, "reassembled message")
	if !bytes.Equal(rx.Payload, payload) {
		t.Error("payload corrupted across TP segmentation")
	}
	if rx.Tag == nil || *rx.Tag != tag {
		t.Errorf("tag = %v", rx.Tag)
	}
	sent, _, _ := a.Stats()
	if sent < 4 {
		t.Errorf("sent = %d datagrams, expected several segments", sent)
	}
}

func TestUDPRequestResponse(t *testing.T) {
	server, client := newUDPPair(t, true, 0)
	server.OnMessage(func(src Addr, m *Message) {
		resp := &Message{
			Service: m.Service, Method: m.Method, Client: m.Client, Session: m.Session,
			InterfaceVersion: m.InterfaceVersion, Type: TypeResponse, Code: EOK,
			Payload: append([]byte("re:"), m.Payload...),
		}
		if m.Tag != nil {
			t2 := m.Tag.Delay(1000)
			resp.Tag = &t2
		}
		if err := server.Send(src, resp); err != nil {
			t.Error(err)
		}
	})
	got := make(chan *Message, 1)
	client.OnMessage(func(src Addr, m *Message) { got <- m })

	tag := logical.Tag{Time: 10}
	req := &Message{Service: 9, Method: 1, Client: 1, Session: 42,
		InterfaceVersion: 1, Type: TypeRequest, Payload: []byte("ping"), Tag: &tag}
	if err := client.Send(server.Addr(), req); err != nil {
		t.Fatal(err)
	}
	rx := waitFor(t, got, "response")
	if string(rx.Payload) != "re:ping" || rx.Session != 42 {
		t.Errorf("response %+v", rx)
	}
	if rx.Tag == nil || rx.Tag.Time != 1010 {
		t.Errorf("response tag = %v", rx.Tag)
	}
}

func TestUDPSendAfterClose(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	dst := a.Addr()
	a.Close()
	if err := a.Send(dst, &Message{Service: 1, Method: 1, Type: TypeRequest}); err == nil {
		t.Error("want error sending on closed conn")
	}
	// Double close is safe.
	if err := a.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestUDPDecodeErrorCounted(t *testing.T) {
	a, b := newUDPPair(t, false, 0)
	errs := make(chan error, 1)
	b.OnError(func(src Addr, err error) { errs <- err })
	b.OnMessage(func(src Addr, m *Message) {})

	// Raw garbage straight through the socket.
	raw, err := net.DialUDP("udp", nil, b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, errs, "decode error")
	_, _, decodeErrs := b.Stats()
	if decodeErrs != 1 {
		t.Errorf("decode errors = %d", decodeErrs)
	}
	_ = a
}
