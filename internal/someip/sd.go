package someip

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/simnet"
)

// Service discovery wire format (SOME/IP-SD): SD messages are ordinary
// SOME/IP messages addressed to service 0xFFFF, method 0x8100, carrying
// an entries array (find/offer/subscribe/ack) and an options array
// (endpoint addresses) in the payload.

// SD protocol constants.
const (
	SDService ServiceID = 0xFFFF
	SDMethod  MethodID  = 0x8100
	// SDPort is the well-known SD port (30490 in real deployments).
	SDPort uint16 = 30490
	// UDPProto is the L4 protocol identifier for UDP in endpoint options.
	UDPProto uint8 = 0x11
)

// EntryType discriminates SD entries.
type EntryType uint8

// SD entry types.
const (
	FindService            EntryType = 0x00
	OfferService           EntryType = 0x01
	SubscribeEventgroup    EntryType = 0x06
	SubscribeEventgroupAck EntryType = 0x07
)

func (t EntryType) String() string {
	switch t {
	case FindService:
		return "FIND"
	case OfferService:
		return "OFFER"
	case SubscribeEventgroup:
		return "SUBSCRIBE"
	case SubscribeEventgroupAck:
		return "SUBSCRIBE_ACK"
	default:
		return fmt.Sprintf("EntryType(0x%02x)", uint8(t))
	}
}

func (t EntryType) isEventgroup() bool {
	return t == SubscribeEventgroup || t == SubscribeEventgroupAck
}

// OptionType discriminates SD options.
type OptionType uint8

// IPv4EndpointOption is the only option type this stack uses.
const IPv4EndpointOption OptionType = 0x04

// Option is an SD option. Only IPv4 endpoint options are supported; the
// simulated network address is mapped into 10.0.x.y (see AddrToIPv4).
type Option struct {
	Type  OptionType
	Addr  simnet.Addr
	Proto uint8
}

// Entry is an SD entry with its resolved options.
type Entry struct {
	Type     EntryType
	Service  ServiceID
	Instance InstanceID
	Major    uint8
	TTL      uint32 // 24-bit; 0 means stop-offer / unsubscribe / nack
	// Minor is used by service entries (find/offer).
	Minor uint32
	// Counter and Eventgroup are used by eventgroup entries.
	Counter    uint8
	Eventgroup uint16
	Options    []Option
}

const entrySize = 16

// AddrToIPv4 maps a simulated network address to an IPv4 address
// (10.0.hostHi.hostLo) for carriage in endpoint options.
func AddrToIPv4(a simnet.Addr) [4]byte {
	return [4]byte{10, 0, byte(a.Host >> 8), byte(a.Host)}
}

// IPv4ToAddr inverts AddrToIPv4.
func IPv4ToAddr(ip [4]byte, port uint16) (simnet.Addr, error) {
	if ip[0] != 10 || ip[1] != 0 {
		return simnet.Addr{}, fmt.Errorf("someip: IPv4 %d.%d.%d.%d outside simulated 10.0.0.0/16", ip[0], ip[1], ip[2], ip[3])
	}
	return simnet.Addr{Host: uint16(ip[2])<<8 | uint16(ip[3]), Port: port}, nil
}

// Errors returned by UnmarshalSD.
var (
	ErrSDMalformed = errors.New("someip: malformed SD payload")
	ErrSDOptionRef = errors.New("someip: SD entry references invalid option")
)

// MarshalSD encodes SD entries into an SD message payload. Identical
// options are deduplicated; each entry's options become its first option
// run.
func MarshalSD(entries []Entry) []byte {
	var opts []Option
	optIndex := func(o Option) int {
		for i, e := range opts {
			if e == o {
				return i
			}
		}
		opts = append(opts, o)
		return len(opts) - 1
	}
	type entryRef struct {
		first, count int
	}
	refs := make([]entryRef, len(entries))
	for i, e := range entries {
		if len(e.Options) == 0 {
			refs[i] = entryRef{0, 0}
			continue
		}
		// Options of one entry must form a contiguous run; dedup works
		// only when the run already exists in order. For the small option
		// counts used by SD (1 per entry in practice), appending fresh
		// runs when not contiguous is fine.
		first := optIndex(e.Options[0])
		contiguous := true
		for j := 1; j < len(e.Options); j++ {
			idx := optIndex(e.Options[j])
			if idx != first+j {
				contiguous = false
				break
			}
		}
		if !contiguous {
			first = len(opts)
			opts = append(opts, e.Options...)
		}
		refs[i] = entryRef{first, len(e.Options)}
	}

	entriesLen := len(entries) * entrySize
	optBytes := make([]byte, 0, len(opts)*12)
	for _, o := range opts {
		buf := make([]byte, 12)
		binary.BigEndian.PutUint16(buf[0:2], 9) // length after type field
		buf[2] = byte(o.Type)
		buf[3] = 0 // reserved / discardable flag
		ip := AddrToIPv4(o.Addr)
		copy(buf[4:8], ip[:])
		buf[8] = 0 // reserved
		buf[9] = o.Proto
		binary.BigEndian.PutUint16(buf[10:12], o.Addr.Port)
		optBytes = append(optBytes, buf...)
	}

	out := make([]byte, 0, 12+entriesLen+len(optBytes))
	// flags: reboot(0x80)|unicast(0x40) — we always set unicast support.
	out = append(out, 0x40, 0, 0, 0)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(entriesLen))
	out = append(out, lenBuf[:]...)
	for i, e := range entries {
		buf := make([]byte, entrySize)
		buf[0] = byte(e.Type)
		buf[1] = byte(refs[i].first)
		buf[2] = 0 // second option run unused
		buf[3] = byte(refs[i].count) << 4
		binary.BigEndian.PutUint16(buf[4:6], uint16(e.Service))
		binary.BigEndian.PutUint16(buf[6:8], uint16(e.Instance))
		buf[8] = e.Major
		buf[9] = byte(e.TTL >> 16)
		buf[10] = byte(e.TTL >> 8)
		buf[11] = byte(e.TTL)
		if e.Type.isEventgroup() {
			buf[12] = 0
			buf[13] = e.Counter & 0x0f
			binary.BigEndian.PutUint16(buf[14:16], e.Eventgroup)
		} else {
			binary.BigEndian.PutUint32(buf[12:16], e.Minor)
		}
		out = append(out, buf...)
	}
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(optBytes)))
	out = append(out, lenBuf[:]...)
	out = append(out, optBytes...)
	return out
}

// UnmarshalSD decodes an SD message payload.
func UnmarshalSD(payload []byte) ([]Entry, error) {
	if len(payload) < 8 {
		return nil, fmt.Errorf("%w: too short for flags+entries length", ErrSDMalformed)
	}
	entriesLen := int(binary.BigEndian.Uint32(payload[4:8]))
	if entriesLen%entrySize != 0 {
		return nil, fmt.Errorf("%w: entries length %d", ErrSDMalformed, entriesLen)
	}
	rest := payload[8:]
	if len(rest) < entriesLen+4 {
		return nil, fmt.Errorf("%w: truncated entries", ErrSDMalformed)
	}
	entryBytes := rest[:entriesLen]
	rest = rest[entriesLen:]
	optsLen := int(binary.BigEndian.Uint32(rest[:4]))
	rest = rest[4:]
	if len(rest) < optsLen {
		return nil, fmt.Errorf("%w: truncated options", ErrSDMalformed)
	}
	optBytes := rest[:optsLen]

	// Decode options.
	var opts []Option
	for off := 0; off < len(optBytes); {
		if off+3 > len(optBytes) {
			return nil, fmt.Errorf("%w: truncated option header", ErrSDMalformed)
		}
		optLen := int(binary.BigEndian.Uint16(optBytes[off : off+2]))
		typ := OptionType(optBytes[off+2])
		total := 3 + optLen
		if off+total > len(optBytes) {
			return nil, fmt.Errorf("%w: option overruns buffer", ErrSDMalformed)
		}
		body := optBytes[off+3 : off+total]
		switch typ {
		case IPv4EndpointOption:
			if len(body) != 9 {
				return nil, fmt.Errorf("%w: IPv4 option length %d", ErrSDMalformed, len(body))
			}
			var ip [4]byte
			copy(ip[:], body[1:5])
			port := binary.BigEndian.Uint16(body[7:9])
			addr, err := IPv4ToAddr(ip, port)
			if err != nil {
				return nil, err
			}
			opts = append(opts, Option{Type: typ, Addr: addr, Proto: body[6]})
		default:
			// Unknown options are skipped but keep their index slot so
			// entry references stay aligned.
			opts = append(opts, Option{Type: typ})
		}
		off += total
	}

	// Decode entries.
	n := entriesLen / entrySize
	entries := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		buf := entryBytes[i*entrySize : (i+1)*entrySize]
		e := Entry{
			Type:     EntryType(buf[0]),
			Service:  ServiceID(binary.BigEndian.Uint16(buf[4:6])),
			Instance: InstanceID(binary.BigEndian.Uint16(buf[6:8])),
			Major:    buf[8],
			TTL:      uint32(buf[9])<<16 | uint32(buf[10])<<8 | uint32(buf[11]),
		}
		if e.Type.isEventgroup() {
			e.Counter = buf[13] & 0x0f
			e.Eventgroup = binary.BigEndian.Uint16(buf[14:16])
		} else {
			e.Minor = binary.BigEndian.Uint32(buf[12:16])
		}
		first := int(buf[1])
		count := int(buf[3] >> 4)
		if count > 0 {
			if first+count > len(opts) {
				return nil, fmt.Errorf("%w: run [%d,%d) of %d", ErrSDOptionRef, first, first+count, len(opts))
			}
			e.Options = append(e.Options, opts[first:first+count]...)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// NewSDMessage wraps SD entries in a SOME/IP message ready to send.
func NewSDMessage(session SessionID, entries []Entry) *Message {
	return &Message{
		Service:          SDService,
		Method:           SDMethod,
		Client:           0,
		Session:          session,
		InterfaceVersion: 1,
		Type:             TypeNotification,
		Code:             EOK,
		Payload:          MarshalSD(entries),
	}
}

// IsSD reports whether the message is a service-discovery message.
func (m *Message) IsSD() bool { return m.Service == SDService && m.Method == SDMethod }
