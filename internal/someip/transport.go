package someip

// Addr is a substrate-independent endpoint address. Both the simulated
// network's simnet.Addr and the real-socket *net.UDPAddr satisfy it, so
// everything above the binding (the ara::com runtime, the DEAR binding
// hook, the transactors) can name peers without knowing which substrate
// carries the bytes.
//
// Addr values of the same substrate are comparable with == in the
// simulated case (simnet.Addr is a value type); UDP addresses compare by
// pointer and should be compared via String() when identity matters.
type Addr interface {
	// Network names the substrate ("sim" for the simulated switched
	// Ethernet, "udp" for real sockets).
	Network() string
	// String renders the address for logs and diagnostics.
	String() string
}

// Endpoint is the pluggable SOME/IP transport: a bound binding instance
// that marshals outgoing messages onto some substrate and decodes
// inbound datagrams, dispatching them to the registered handler. It is
// the seam the paper's "substrate independence" claim rests on — the
// modified (tagged) binding behaves identically whether the bytes cross
// the deterministic simulated network (Conn) or a real UDP socket
// (UDPConn).
//
// Handler execution context differs by substrate and is part of each
// implementation's contract: Conn runs handlers as kernel events at
// simulated delivery time; UDPConn runs them on its reader goroutine.
type Endpoint interface {
	// Send marshals and transmits the message, segmenting via SOME/IP-TP
	// when an MTU is configured. In an untagged binding any Tag on the
	// message is dropped (a standard binding has no way to transmit it).
	// dst must be an address of the endpoint's own substrate.
	Send(dst Addr, m *Message) error
	// OnMessage installs the inbound message handler.
	OnMessage(fn func(src Addr, m *Message))
	// OnError installs a handler for inbound decode errors (default: drop).
	OnError(fn func(src Addr, err error))
	// LocalAddr returns the bound address.
	LocalAddr() Addr
	// Tagged reports whether the binding understands DEAR tag trailers.
	Tagged() bool
	// Stats returns (messages sent, messages received, decode errors).
	Stats() (sent, received, decodeErrors uint64)
	// Close releases the underlying substrate resource. Further sends
	// fail; inbound traffic is dropped.
	Close() error
}

// Both bindings implement the transport seam.
var (
	_ Endpoint = (*Conn)(nil)
	_ Endpoint = (*UDPConn)(nil)
)
