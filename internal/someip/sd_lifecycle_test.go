package someip

import (
	"testing"

	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/simnet"
)

// newLifecycleFixture builds a two-host network with a short offer TTL
// and a cyclic period *longer* than the TTL, so a silent provider's
// offer expires between announcements — the window the TTL machinery
// exists for. sd_test.go covers the codec; these tests cover the cache
// lifecycle: expiry, stop-offer and re-offer after a crash/restart.
func newLifecycleFixture(t *testing.T) *sdFixture {
	t.Helper()
	k := des.NewKernel(1)
	n := simnet.NewNetwork(k, simnet.Config{})
	h1 := n.AddHost("p1", nil)
	h2 := n.AddHost("p2", nil)
	cfg := AgentConfig{CyclicOfferPeriod: 10 * logical.Second, TTL: logical.Second}
	a1, err := NewAgent(h1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewAgent(h2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &sdFixture{k: k, net: n, h1: h1, h2: h2, a1: a1, a2: a2}
}

// An offer must expire from the consumer's cache once its TTL elapses
// without a refresh.
func TestOfferTTLExpiry(t *testing.T) {
	f := newLifecycleFixture(t)
	appEp := f.h1.MustBind(40000)
	// Interest-based SD: passive caching needs a declared interest.
	f.a2.Interest(testKey)
	f.k.At(0, func() { f.a1.Offer(testKey, 1, 0, appEp.Addr()) })

	var cachedAt500ms, cachedAt1500ms bool
	f.k.At(logical.Time(500*logical.Millisecond), func() {
		_, cachedAt500ms = f.a2.Lookup(testKey)
	})
	f.k.At(logical.Time(1500*logical.Millisecond), func() {
		_, cachedAt1500ms = f.a2.Lookup(testKey)
	})
	f.k.Run(logical.Time(2 * logical.Second))
	if !cachedAt500ms {
		t.Fatal("offer not cached inside its TTL")
	}
	if cachedAt1500ms {
		t.Fatal("offer still cached after TTL expiry without refresh")
	}
}

// A cyclic refresh inside the TTL must keep the entry alive: expiry is
// armed per offer, not per first discovery.
func TestOfferTTLRefreshedByCyclicOffer(t *testing.T) {
	f := newLifecycleFixture(t)
	// Period (600ms) < TTL (1s): the cache must never expire.
	a1, err := NewAgent(f.h1, AgentConfig{CyclicOfferPeriod: 600 * logical.Millisecond, TTL: logical.Second})
	if err != nil {
		t.Fatal(err)
	}
	appEp := f.h1.MustBind(40000)
	f.a2.Interest(testKey)
	f.k.At(0, func() { a1.Offer(testKey, 1, 0, appEp.Addr()) })
	stillCached := true
	for ms := 500; ms <= 3500; ms += 500 {
		at := logical.Time(ms) * logical.Time(logical.Millisecond)
		f.k.At(at, func() {
			if _, ok := f.a2.Lookup(testKey); !ok {
				stillCached = false
			}
		})
	}
	f.k.Run(logical.Time(4 * logical.Second))
	if !stillCached {
		t.Fatal("cache expired despite cyclic refreshes inside the TTL")
	}
}

// Monitor must report the full lifecycle under a provider crash: up on
// discovery, down on TTL expiry (a crashed host sends no stop-offer),
// up again when the restarted provider re-offers from a fresh endpoint.
func TestMonitorObservesCrashAndReoffer(t *testing.T) {
	f := newLifecycleFixture(t)
	appEp := f.h1.MustBind(40000)
	f.k.At(0, func() { f.a1.Offer(testKey, 1, 0, appEp.Addr()) })

	var ups []simnet.Addr
	downs := 0
	f.k.At(logical.Time(10*logical.Millisecond), func() {
		f.a2.Monitor(testKey,
			func(svc RemoteService) { ups = append(ups, svc.Endpoint.(simnet.Addr)) },
			func() { downs++ })
	})

	// The provider platform dies silently at 500ms...
	f.h1.Crash(logical.Time(500 * logical.Millisecond))
	// ...and comes back at 3s with a rebuilt SD stack and a new offer.
	f.h1.Restart(logical.Time(3*logical.Second), func() {
		a1b, err := NewAgent(f.h1, AgentConfig{CyclicOfferPeriod: 10 * logical.Second, TTL: logical.Second})
		if err != nil {
			t.Error(err)
			return
		}
		appEp2 := f.h1.MustBind(40001)
		a1b.Offer(testKey, 1, 0, appEp2.Addr())
	})

	f.k.Run(logical.Time(4 * logical.Second))
	if len(ups) != 2 {
		t.Fatalf("ups = %v, want discovery + post-restart re-discovery", ups)
	}
	if downs != 1 {
		t.Fatalf("downs = %d, want exactly the TTL expiry", downs)
	}
	if ups[0] == ups[1] {
		t.Fatalf("re-discovery must carry the restarted endpoint, got %v twice", ups[0])
	}
	if svc, ok := f.a2.Lookup(testKey); !ok || svc.Endpoint.(simnet.Addr).Port != 40001 {
		t.Fatalf("cache after restart = %+v, %v", svc, ok)
	}
}

// A graceful StopOffer must notify monitors immediately (TTL-0 offer),
// not after the TTL.
func TestMonitorObservesStopOffer(t *testing.T) {
	f := newLifecycleFixture(t)
	appEp := f.h1.MustBind(40000)
	f.k.At(0, func() { f.a1.Offer(testKey, 1, 0, appEp.Addr()) })
	downs := 0
	var downAt logical.Time
	f.k.At(logical.Time(10*logical.Millisecond), func() {
		f.a2.Monitor(testKey, nil, func() { downs++; downAt = f.k.Now() })
	})
	f.k.At(logical.Time(100*logical.Millisecond), func() { f.a1.StopOffer(testKey) })
	f.k.Run(logical.Time(2 * logical.Second))
	if downs != 1 {
		t.Fatalf("downs = %d, want 1", downs)
	}
	if downAt > logical.Time(200*logical.Millisecond) {
		t.Fatalf("down at %v: stop-offer must act immediately, not via TTL", downAt)
	}
}

// Monitor on an already-cached service fires up immediately; cyclic
// refreshes from the unchanged endpoint stay silent.
func TestMonitorImmediateUpAndSilentRefresh(t *testing.T) {
	f := newLifecycleFixture(t)
	a1, err := NewAgent(f.h1, AgentConfig{CyclicOfferPeriod: 300 * logical.Millisecond, TTL: logical.Second})
	if err != nil {
		t.Fatal(err)
	}
	appEp := f.h1.MustBind(40000)
	f.k.At(0, func() { a1.Offer(testKey, 1, 0, appEp.Addr()) })
	ups := 0
	f.k.At(logical.Time(50*logical.Millisecond), func() {
		f.a2.Monitor(testKey, func(RemoteService) { ups++ }, nil)
	})
	f.k.Run(logical.Time(2 * logical.Second))
	if ups != 1 {
		t.Fatalf("ups = %d: want one immediate up, no re-fires on cyclic refresh", ups)
	}
}
