package someip

import (
	"encoding/binary"

	"repro/internal/logical"
)

// The DEAR tag trailer carries a reactor tag at the end of a SOME/IP
// message. Because the SOME/IP header has no extension mechanism, the
// trailer is counted as payload by the Length field; unmodified receivers
// see a slightly longer payload, which keeps the extension
// standards-compatible exactly as argued in the paper ("a new third-party
// middleware that extends over SOME/IP by allowing the transmission of
// tagged messages").
//
// Layout (big endian), 20 bytes:
//
//	[0:4]   magic "DEAR" (0x44 0x45 0x41 0x52)
//	[4]     version (1)
//	[5]     flags (bit 0: tag valid)
//	[6:8]   reserved, must be zero
//	[8:16]  tag time (int64 nanoseconds)
//	[16:20] tag microstep (uint32)

// TagTrailerSize is the size of the DEAR tag trailer in bytes.
const TagTrailerSize = 20

// tagMagic identifies the trailer.
var tagMagic = [4]byte{'D', 'E', 'A', 'R'}

const (
	tagVersion   = 1
	tagFlagValid = 0x01
)

func putTagTrailer(buf []byte, tag logical.Tag) {
	copy(buf[0:4], tagMagic[:])
	buf[4] = tagVersion
	buf[5] = tagFlagValid
	buf[6] = 0
	buf[7] = 0
	binary.BigEndian.PutUint64(buf[8:16], uint64(tag.Time))
	binary.BigEndian.PutUint32(buf[16:20], uint32(tag.Microstep))
}

// splitTagTrailer checks whether payload ends in a valid tag trailer.
// On success it returns the tag and the payload with the trailer removed.
func splitTagTrailer(payload []byte) (tag logical.Tag, rest []byte, ok bool) {
	if len(payload) < TagTrailerSize {
		return tag, payload, false
	}
	tr := payload[len(payload)-TagTrailerSize:]
	if tr[0] != tagMagic[0] || tr[1] != tagMagic[1] || tr[2] != tagMagic[2] || tr[3] != tagMagic[3] {
		return tag, payload, false
	}
	if tr[4] != tagVersion || tr[5]&tagFlagValid == 0 || tr[6] != 0 || tr[7] != 0 {
		return tag, payload, false
	}
	tag = logical.Tag{
		Time:      logical.Time(binary.BigEndian.Uint64(tr[8:16])),
		Microstep: logical.Microstep(binary.BigEndian.Uint32(tr[16:20])),
	}
	return tag, payload[:len(payload)-TagTrailerSize], true
}
