package someip

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/simnet"
)

// ServiceKey identifies a service instance.
type ServiceKey struct {
	Service  ServiceID
	Instance InstanceID
}

func (k ServiceKey) String() string {
	return fmt.Sprintf("%04x.%04x", uint16(k.Service), uint16(k.Instance))
}

// RemoteService describes a remote service instance, either discovered
// through SD (simulated substrate) or statically configured (any
// substrate; see ara.Runtime.StaticProxy).
type RemoteService struct {
	Key      ServiceKey
	Major    uint8
	Minor    uint32
	Endpoint Addr // the service's application endpoint
	SDAddr   Addr // the offering agent's SD endpoint (nil when static)
}

// SDGroup is the simulated stand-in for the SOME/IP-SD multicast address
// (224.244.224.245:30490 in real deployments). Agents do not join it as
// a flat group: SD traffic is routed by interest — offers travel on the
// consumer topic of their service key and finds on the provider topic —
// so control-plane fan-out grows with actual interest, not with the
// square of the platform count.
var SDGroup = simnet.Addr{Host: simnet.MulticastBase + 1, Port: SDPort}

// consumerTopic is the simnet topic carrying offers/stop-offers for a
// service key; consumers (Find/Monitor/Interest) subscribe to it.
func consumerTopic(k ServiceKey) uint64 {
	return uint64(uint16(k.Service))<<16 | uint64(uint16(k.Instance))
}

// providerTopic is the simnet topic carrying finds for a service key;
// providers (Offer) subscribe to it.
func providerTopic(k ServiceKey) uint64 {
	return 1<<32 | consumerTopic(k)
}

// AgentConfig tunes SD timing.
type AgentConfig struct {
	// CyclicOfferPeriod between repeated offers (default 1s).
	CyclicOfferPeriod logical.Duration
	// TTL announced in offers and subscriptions (default 3s; SD wire
	// granularity is seconds, rounded up).
	TTL logical.Duration
}

// Agent implements the SOME/IP service-discovery state machine for one
// application process: offering local services, discovering remote ones,
// and managing eventgroup subscriptions in both roles.
type Agent struct {
	k       *des.Kernel
	conn    *Conn
	group   simnet.Addr
	session SessionID
	cfg     AgentConfig

	offers map[ServiceKey]*localOffer
	remote map[ServiceKey]*remoteEntry
	watch  map[ServiceKey][]func(RemoteService)
	// interests tracks the service keys whose consumer topic this agent
	// has joined (Interest); offers for other keys never reach it.
	interests map[ServiceKey]bool
	// monitors are persistent availability watchers (Monitor): unlike
	// watch entries they survive firing and also observe service loss.
	monitors map[ServiceKey][]monitor
	pending  map[subKey][]func(ok bool)
	active   map[subKey]bool // client-side subscriptions to keep renewed

	// onSubscribe notifies the skeleton layer of a new/renewed remote
	// subscriber for (service, eventgroup).
	onSubscribe func(key ServiceKey, eventgroup uint16, subscriber simnet.Addr)
}

type localOffer struct {
	key      ServiceKey
	major    uint8
	minor    uint32
	endpoint simnet.Addr
	stopped  bool
	subs     map[uint16][]*subscriber // eventgroup -> subscribers
}

type subscriber struct {
	addr   simnet.Addr
	expiry *des.Event
}

type remoteEntry struct {
	svc    RemoteService
	expiry *des.Event
}

// monitor is one persistent availability watcher.
type monitor struct {
	up   func(RemoteService)
	down func()
}

type subKey struct {
	key        ServiceKey
	eventgroup uint16
}

// NewAgent creates an SD agent for an application on the given host. It
// binds an SD endpoint; SD topic subscriptions are registered lazily as
// the agent offers services (provider topics) or declares interest in
// them (consumer topics, implicit in Find/Monitor).
func NewAgent(host *simnet.Host, cfg AgentConfig) (*Agent, error) {
	if cfg.CyclicOfferPeriod <= 0 {
		cfg.CyclicOfferPeriod = logical.Second
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 3 * logical.Second
	}
	ep, err := host.Bind(0)
	if err != nil {
		return nil, err
	}
	a := &Agent{
		k:         host.Net().Kernel(),
		conn:      NewConn(ep, false),
		group:     SDGroup,
		cfg:       cfg,
		offers:    map[ServiceKey]*localOffer{},
		remote:    map[ServiceKey]*remoteEntry{},
		watch:     map[ServiceKey][]func(RemoteService){},
		interests: map[ServiceKey]bool{},
		monitors:  map[ServiceKey][]monitor{},
		pending:   map[subKey][]func(ok bool){},
		active:    map[subKey]bool{},
	}
	a.conn.OnMessage(a.handle)
	return a, nil
}

// Interest declares this agent's interest in a service key: offers and
// stop-offers for it are delivered to the agent from now on (joining
// the key's consumer topic, idempotently). Find and Monitor declare
// interest implicitly; call Interest directly to passively cache offers
// for later Lookup without issuing a find. Join order — fixed by
// program structure — is the deterministic fan-out order, identical in
// single-kernel and federated execution.
func (a *Agent) Interest(key ServiceKey) {
	if a.interests[key] {
		return
	}
	a.interests[key] = true
	net := a.conn.Endpoint().Host().Net()
	net.JoinTopic(a.group, consumerTopic(key), a.conn.Endpoint())
}

// ttlSeconds converts the configured TTL to SD wire seconds (min 1).
func (a *Agent) ttlSeconds() uint32 {
	s := uint32(a.cfg.TTL / logical.Second)
	if logical.Duration(s)*logical.Second < a.cfg.TTL || s == 0 {
		s++
	}
	return s
}

// Addr returns the agent's SD endpoint address.
func (a *Agent) Addr() simnet.Addr { return a.conn.Addr() }

// OnSubscribe installs the server-side subscription callback.
func (a *Agent) OnSubscribe(fn func(key ServiceKey, eventgroup uint16, subscriber simnet.Addr)) {
	a.onSubscribe = fn
}

func (a *Agent) nextSession() SessionID {
	a.session++
	if a.session == 0 {
		a.session = 1
	}
	return a.session
}

func (a *Agent) send(dst Addr, entries []Entry) {
	a.conn.Send(dst, NewSDMessage(a.nextSession(), entries))
}

// sendTopic multicasts SD entries on an interest topic, reaching only
// the endpoints subscribed to it.
func (a *Agent) sendTopic(topic uint64, entries []Entry) {
	m := NewSDMessage(a.nextSession(), entries)
	a.conn.Endpoint().SendTopic(a.group, topic, m.Marshal())
}

// Offer announces a local service instance and keeps re-announcing it
// cyclically until StopOffer. The agent joins the key's provider topic
// (so finds reach it) and announces on the consumer topic (so only
// interested agents receive the offer).
func (a *Agent) Offer(key ServiceKey, major uint8, minor uint32, endpoint simnet.Addr) {
	off := &localOffer{
		key: key, major: major, minor: minor, endpoint: endpoint,
		subs: map[uint16][]*subscriber{},
	}
	a.offers[key] = off
	net := a.conn.Endpoint().Host().Net()
	net.JoinTopic(a.group, providerTopic(key), a.conn.Endpoint())
	a.announceTopic(off)
	a.scheduleCyclic(off)
}

func (a *Agent) offerEntry(off *localOffer, ttl uint32) Entry {
	return Entry{
		Type: OfferService, Service: off.key.Service, Instance: off.key.Instance,
		Major: off.major, Minor: off.minor, TTL: ttl,
		Options: []Option{{Type: IPv4EndpointOption, Addr: off.endpoint, Proto: UDPProto}},
	}
}

// announce unicasts the current offer to one requester (find replies).
func (a *Agent) announce(off *localOffer, dst Addr) {
	a.send(dst, []Entry{a.offerEntry(off, a.ttlSeconds())})
}

// announceTopic multicasts the current offer on the key's consumer
// topic, reaching exactly the agents that declared interest.
func (a *Agent) announceTopic(off *localOffer) {
	a.sendTopic(consumerTopic(off.key), []Entry{a.offerEntry(off, a.ttlSeconds())})
}

func (a *Agent) scheduleCyclic(off *localOffer) {
	a.k.AfterDaemon(a.cfg.CyclicOfferPeriod, func() {
		if off.stopped {
			return
		}
		a.announceTopic(off)
		a.scheduleCyclic(off)
	})
}

// StopOffer withdraws a local service: it leaves the provider topic and
// multicasts a TTL-0 offer on the consumer topic.
func (a *Agent) StopOffer(key ServiceKey) {
	off, ok := a.offers[key]
	if !ok {
		return
	}
	off.stopped = true
	delete(a.offers, key)
	net := a.conn.Endpoint().Host().Net()
	net.LeaveTopic(a.group, providerTopic(key), a.conn.Endpoint())
	a.sendTopic(consumerTopic(key), []Entry{a.offerEntry(off, 0)})
}

// Find starts discovery for a service instance, declaring interest in
// it (see Interest). The callback fires (as a kernel event) when the
// service is known — immediately if already cached. It fires again on
// re-discovery after expiry. The find itself travels on the key's
// provider topic, reaching only agents that offer the service.
func (a *Agent) Find(key ServiceKey, cb func(RemoteService)) {
	a.Interest(key)
	if r, ok := a.remote[key]; ok {
		svc := r.svc
		a.k.After(0, func() { cb(svc) })
		return
	}
	a.watch[key] = append(a.watch[key], cb)
	a.sendTopic(providerTopic(key), []Entry{{
		Type: FindService, Service: key.Service, Instance: key.Instance,
		Major: 0xff, Minor: 0xffffffff, TTL: a.ttlSeconds(),
	}})
}

// Monitor registers a persistent availability watcher for a service
// instance: up fires (as a kernel event) on every discovery and
// re-discovery whose endpoint differs from the previously known one —
// including the initial one if the service is already cached — and down
// fires when the cached offer expires (TTL) or is withdrawn
// (stop-offer). A crashed provider sends no stop-offer, so its loss is
// observed through TTL expiry; when it restarts and re-offers, up fires
// again and the client can re-bind deterministically. Monitor declares
// interest in the key (see Interest) and sends a find on its provider
// topic so an already-running provider answers immediately.
func (a *Agent) Monitor(key ServiceKey, up func(RemoteService), down func()) {
	a.Interest(key)
	a.monitors[key] = append(a.monitors[key], monitor{up: up, down: down})
	if r, ok := a.remote[key]; ok {
		svc := r.svc
		if up != nil {
			a.k.After(0, func() { up(svc) })
		}
		return
	}
	a.sendTopic(providerTopic(key), []Entry{{
		Type: FindService, Service: key.Service, Instance: key.Instance,
		Major: 0xff, Minor: 0xffffffff, TTL: a.ttlSeconds(),
	}})
}

// lost drops the cached remote entry and notifies monitors. reason is
// either an expiry or an explicit stop-offer.
func (a *Agent) lost(key ServiceKey) {
	if _, ok := a.remote[key]; !ok {
		return
	}
	delete(a.remote, key)
	for _, m := range a.monitors[key] {
		if m.down != nil {
			m.down()
		}
	}
}

// Lookup returns the cached remote service, if discovered.
func (a *Agent) Lookup(key ServiceKey) (RemoteService, bool) {
	r, ok := a.remote[key]
	if !ok {
		return RemoteService{}, false
	}
	return r.svc, true
}

// Subscribe requests an eventgroup subscription from the (already
// discovered) remote service, delivering notifications to notifyEndpoint.
// ack fires with the subscription result. The subscription is renewed
// cyclically until Unsubscribe.
func (a *Agent) Subscribe(key ServiceKey, eventgroup uint16, notifyEndpoint simnet.Addr, ack func(ok bool)) {
	r, ok := a.remote[key]
	if !ok {
		if ack != nil {
			a.k.After(0, func() { ack(false) })
		}
		return
	}
	sk := subKey{key, eventgroup}
	if ack != nil {
		a.pending[sk] = append(a.pending[sk], ack)
	}
	a.active[sk] = true
	a.send(r.svc.SDAddr, []Entry{{
		Type: SubscribeEventgroup, Service: key.Service, Instance: key.Instance,
		Major: r.svc.Major, TTL: a.ttlSeconds(), Eventgroup: eventgroup,
		Options: []Option{{Type: IPv4EndpointOption, Addr: notifyEndpoint, Proto: UDPProto}},
	}})
	// Renew at 2/3 of the TTL while the subscription stays active.
	a.k.AfterDaemon(a.cfg.TTL*2/3, func() {
		if _, still := a.remote[key]; still && a.active[sk] {
			a.Subscribe(key, eventgroup, notifyEndpoint, nil)
		}
	})
}

// Unsubscribe withdraws an eventgroup subscription.
func (a *Agent) Unsubscribe(key ServiceKey, eventgroup uint16, notifyEndpoint simnet.Addr) {
	delete(a.active, subKey{key, eventgroup})
	r, ok := a.remote[key]
	if !ok {
		return
	}
	a.send(r.svc.SDAddr, []Entry{{
		Type: SubscribeEventgroup, Service: key.Service, Instance: key.Instance,
		Major: r.svc.Major, TTL: 0, Eventgroup: eventgroup,
		Options: []Option{{Type: IPv4EndpointOption, Addr: notifyEndpoint, Proto: UDPProto}},
	}})
}

// Subscribers returns the current subscriber endpoints for a local
// service's eventgroup, in subscription order.
func (a *Agent) Subscribers(key ServiceKey, eventgroup uint16) []simnet.Addr {
	off, ok := a.offers[key]
	if !ok {
		return nil
	}
	subs := off.subs[eventgroup]
	addrs := make([]simnet.Addr, len(subs))
	for i, s := range subs {
		addrs[i] = s.addr
	}
	return addrs
}

func (a *Agent) handle(src Addr, m *Message) {
	if !m.IsSD() {
		return
	}
	entries, err := UnmarshalSD(m.Payload)
	if err != nil {
		return
	}
	for _, e := range entries {
		switch e.Type {
		case FindService:
			a.handleFind(src, e)
		case OfferService:
			a.handleOffer(src, e)
		case SubscribeEventgroup:
			a.handleSubscribe(src, e)
		case SubscribeEventgroupAck:
			a.handleSubscribeAck(e)
		}
	}
}

func (a *Agent) handleFind(src Addr, e Entry) {
	key := ServiceKey{e.Service, e.Instance}
	if off, ok := a.offers[key]; ok {
		// Unicast offer straight back to the requester.
		a.announce(off, src)
	}
}

func (a *Agent) handleOffer(src Addr, e Entry) {
	key := ServiceKey{e.Service, e.Instance}
	if e.TTL == 0 {
		if r, ok := a.remote[key]; ok {
			if r.expiry != nil {
				r.expiry.Cancel()
			}
			a.lost(key)
		}
		return
	}
	if len(e.Options) == 0 || e.Options[0].Type != IPv4EndpointOption {
		return
	}
	svc := RemoteService{
		Key: key, Major: e.Major, Minor: e.Minor,
		Endpoint: e.Options[0].Addr, SDAddr: src,
	}
	r, existed := a.remote[key]
	if existed && r.expiry != nil {
		r.expiry.Cancel()
	}
	entry := &remoteEntry{svc: svc}
	ttl := logical.Duration(e.TTL) * logical.Second
	entry.expiry = a.k.AfterDaemon(ttl, func() { a.lost(key) })
	a.remote[key] = entry
	if ws := a.watch[key]; len(ws) > 0 {
		delete(a.watch, key)
		for _, w := range ws {
			w(svc)
		}
	}
	// Monitors see transitions only: a fresh discovery, or a re-offer
	// from a different endpoint (restart); cyclic refreshes are silent.
	if !existed || r.svc.Endpoint != svc.Endpoint || r.svc.SDAddr != svc.SDAddr {
		for _, m := range a.monitors[key] {
			if m.up != nil {
				m.up(svc)
			}
		}
	}
}

func (a *Agent) handleSubscribe(src Addr, e Entry) {
	key := ServiceKey{e.Service, e.Instance}
	off, ok := a.offers[key]
	if len(e.Options) == 0 || e.Options[0].Type != IPv4EndpointOption {
		return
	}
	subAddr := e.Options[0].Addr
	if !ok {
		// NACK: ack entry with TTL 0.
		a.send(src, []Entry{{
			Type: SubscribeEventgroupAck, Service: e.Service, Instance: e.Instance,
			Major: e.Major, TTL: 0, Eventgroup: e.Eventgroup,
		}})
		return
	}
	if e.TTL == 0 { // unsubscribe
		subs := off.subs[e.Eventgroup]
		for i, s := range subs {
			if s.addr == subAddr {
				if s.expiry != nil {
					s.expiry.Cancel()
				}
				off.subs[e.Eventgroup] = append(subs[:i:i], subs[i+1:]...)
				break
			}
		}
		return
	}
	ttl := logical.Duration(e.TTL) * logical.Second
	found := false
	for _, s := range off.subs[e.Eventgroup] {
		if s.addr == subAddr {
			if s.expiry != nil {
				s.expiry.Cancel()
			}
			s.expiry = a.expireSub(off, e.Eventgroup, subAddr, ttl)
			found = true
			break
		}
	}
	if !found {
		s := &subscriber{addr: subAddr}
		s.expiry = a.expireSub(off, e.Eventgroup, subAddr, ttl)
		off.subs[e.Eventgroup] = append(off.subs[e.Eventgroup], s)
	}
	a.send(src, []Entry{{
		Type: SubscribeEventgroupAck, Service: e.Service, Instance: e.Instance,
		Major: e.Major, TTL: e.TTL, Eventgroup: e.Eventgroup,
	}})
	if a.onSubscribe != nil {
		a.onSubscribe(key, e.Eventgroup, subAddr)
	}
}

func (a *Agent) expireSub(off *localOffer, eventgroup uint16, addr simnet.Addr, ttl logical.Duration) *des.Event {
	return a.k.AfterDaemon(ttl, func() {
		subs := off.subs[eventgroup]
		for i, s := range subs {
			if s.addr == addr {
				off.subs[eventgroup] = append(subs[:i:i], subs[i+1:]...)
				return
			}
		}
	})
}

func (a *Agent) handleSubscribeAck(e Entry) {
	sk := subKey{ServiceKey{e.Service, e.Instance}, e.Eventgroup}
	cbs := a.pending[sk]
	if len(cbs) == 0 {
		return
	}
	delete(a.pending, sk)
	ok := e.TTL > 0
	for _, cb := range cbs {
		cb(ok)
	}
}
