package someip

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestWriterReaderAllTypes(t *testing.T) {
	w := NewWriter()
	w.U8(0xAB).U16(0xCDEF).U32(0x01020304).U64(0x1122334455667788)
	w.I8(-5).I16(-500).I32(-50000).I64(-5000000000)
	w.Bool(true).Bool(false)
	w.F32(3.14).F64(-2.718281828)
	w.String("hello, wörld").Blob([]byte{1, 2, 3}).Raw([]byte{9, 9})

	r := NewReader(w.Bytes())
	if v := r.U8(); v != 0xAB {
		t.Errorf("U8 = %#x", v)
	}
	if v := r.U16(); v != 0xCDEF {
		t.Errorf("U16 = %#x", v)
	}
	if v := r.U32(); v != 0x01020304 {
		t.Errorf("U32 = %#x", v)
	}
	if v := r.U64(); v != 0x1122334455667788 {
		t.Errorf("U64 = %#x", v)
	}
	if v := r.I8(); v != -5 {
		t.Errorf("I8 = %d", v)
	}
	if v := r.I16(); v != -500 {
		t.Errorf("I16 = %d", v)
	}
	if v := r.I32(); v != -50000 {
		t.Errorf("I32 = %d", v)
	}
	if v := r.I64(); v != -5000000000 {
		t.Errorf("I64 = %d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if v := r.F32(); v != 3.14 {
		t.Errorf("F32 = %v", v)
	}
	if v := r.F64(); v != -2.718281828 {
		t.Errorf("F64 = %v", v)
	}
	if v := r.String(); v != "hello, wörld" {
		t.Errorf("String = %q", v)
	}
	if v := r.Blob(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("Blob = %v", v)
	}
	if v := r.Raw(2); !bytes.Equal(v, []byte{9, 9}) {
		t.Errorf("Raw = %v", v)
	}
	if err := r.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
}

func TestReaderBigEndianLayout(t *testing.T) {
	w := NewWriter().U16(0x0102)
	if !bytes.Equal(w.Bytes(), []byte{0x01, 0x02}) {
		t.Errorf("not big endian: % x", w.Bytes())
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U32() // truncated
	if r.Err() == nil {
		t.Fatal("want truncation error")
	}
	// Subsequent reads return zero values without panicking.
	if v := r.U64(); v != 0 {
		t.Errorf("post-error read = %d", v)
	}
	if s := r.String(); s != "" {
		t.Errorf("post-error string = %q", s)
	}
	if err := r.Finish(); err == nil {
		t.Error("Finish should report the sticky error")
	}
}

func TestReaderTrailingBytes(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	r.U8()
	if err := r.Finish(); err == nil {
		t.Error("Finish should report trailing bytes")
	}
}

func TestStringLengthOverrun(t *testing.T) {
	w := NewWriter().U32(100) // claims 100 bytes
	r := NewReader(append(w.Bytes(), 'x'))
	if s := r.String(); s != "" || r.Err() == nil {
		t.Errorf("overrun string accepted: %q, err=%v", s, r.Err())
	}
}

func TestBlobLengthOverrun(t *testing.T) {
	w := NewWriter().U32(7)
	r := NewReader(w.Bytes())
	if b := r.Blob(); b != nil || r.Err() == nil {
		t.Errorf("overrun blob accepted: %v", b)
	}
}

// Blob and Raw are zero-copy: the returned slices alias the payload.
// Callers needing ownership use BlobAppend/RawAppend into their own
// (pooled) storage.
func TestBlobAliasesAndAppendCopies(t *testing.T) {
	payload := NewWriter().Blob([]byte{5, 6, 7}).Raw([]byte{8}).Bytes()
	r := NewReader(payload)
	b := r.Blob()
	b[0] = 99
	if payload[4] != 99 {
		t.Error("Blob should alias the payload buffer (zero copy)")
	}
	if raw := r.Raw(1); &raw[0] != &payload[len(payload)-1] {
		t.Error("Raw should alias the payload buffer (zero copy)")
	}

	r.Reset(payload)
	dst := make([]byte, 0, 8)
	out := r.BlobAppend(dst)
	if !bytes.Equal(out, []byte{99, 6, 7}) {
		t.Fatalf("BlobAppend = %v", out)
	}
	out[0] = 5
	if payload[4] != 99 {
		t.Error("BlobAppend must copy into dst, not alias the payload")
	}
	out = r.RawAppend(out[:0], 1)
	if !bytes.Equal(out, []byte{8}) {
		t.Fatalf("RawAppend = %v", out)
	}
}

// The decode path must be allocation-free: reading blobs and raw spans
// out of a payload — with ownership taken via Append into a
// caller-supplied buffer — performs zero allocations per message, and
// a capacity-reusing writer serializes without allocating.
func TestSerializeZeroAllocs(t *testing.T) {
	payload := NewWriter().U32(7).Blob(make([]byte, 256)).Raw(make([]byte, 32)).Bytes()
	r := NewReader(nil)
	dst := make([]byte, 0, 512)
	if allocs := testing.AllocsPerRun(200, func() {
		r.Reset(payload)
		_ = r.U32()
		dst = r.BlobAppend(dst[:0])
		dst = r.RawAppend(dst, 32)
		if r.Err() != nil {
			t.Fatal(r.Err())
		}
	}); allocs != 0 {
		t.Errorf("decode path allocates %v times per message, want 0", allocs)
	}

	w := NewWriterBuffer(make([]byte, 0, 512))
	blob := make([]byte, 200)
	if allocs := testing.AllocsPerRun(200, func() {
		w.Reset()
		w.U32(7).Blob(blob).Bool(true)
	}); allocs != 0 {
		t.Errorf("pooled-buffer encode path allocates %v times per message, want 0", allocs)
	}
}

// BenchmarkSerializeBlob pins the satellite win: zero-copy Blob/Raw
// reads and pooled-buffer writes at 0 allocs/op (run with -benchmem).
func BenchmarkSerializeBlob(b *testing.B) {
	payload := NewWriter().Blob(make([]byte, 1024)).Bytes()
	b.Run("decode-zero-copy", func(b *testing.B) {
		r := NewReader(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Reset(payload)
			if len(r.Blob()) != 1024 {
				b.Fatal("short blob")
			}
		}
	})
	b.Run("decode-append-owned", func(b *testing.B) {
		r := NewReader(nil)
		dst := make([]byte, 0, 1024)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Reset(payload)
			dst = r.BlobAppend(dst[:0])
			if len(dst) != 1024 {
				b.Fatal("short blob")
			}
		}
	})
	b.Run("encode-pooled", func(b *testing.B) {
		w := NewWriterBuffer(make([]byte, 0, 2048))
		blob := make([]byte, 1024)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w.Reset()
			w.Blob(blob)
			if w.Len() != 1028 {
				b.Fatal("short payload")
			}
		}
	})
}

func TestEmptyStringAndBlob(t *testing.T) {
	w := NewWriter().String("").Blob(nil)
	r := NewReader(w.Bytes())
	if s := r.String(); s != "" {
		t.Errorf("empty string = %q", s)
	}
	if b := r.Blob(); len(b) != 0 {
		t.Errorf("empty blob = %v", b)
	}
	if err := r.Finish(); err != nil {
		t.Error(err)
	}
}

// Property: arbitrary sequences of (u32, string, f64, bool) round-trip.
func TestSerializeRoundTripProperty(t *testing.T) {
	f := func(u uint32, s string, fv float64, b bool, raw []byte) bool {
		if math.IsNaN(fv) {
			fv = 0
		}
		if len(raw) > 1000 {
			raw = raw[:1000]
		}
		w := NewWriter().U32(u).String(s).F64(fv).Bool(b).Blob(raw)
		r := NewReader(w.Bytes())
		if r.U32() != u || r.String() != s || r.F64() != fv || r.Bool() != b {
			return false
		}
		if !bytes.Equal(r.Blob(), raw) && len(raw) > 0 {
			return false
		}
		return r.Finish() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Writer length always equals sum of written sizes.
func TestWriterLenProperty(t *testing.T) {
	f := func(ss []string) bool {
		w := NewWriter()
		want := 0
		for _, s := range ss {
			if len(s) > 200 {
				s = s[:200]
			}
			w.String(s)
			want += 4 + len(s)
		}
		return w.Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
