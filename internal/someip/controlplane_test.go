package someip

import (
	"testing"

	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/simnet"
)

// sdRing builds n platforms, each offering its own service instance and
// finding its ring successor's, runs the SD startup phase, and returns
// the control-plane fan-out (datagrams routed through multicast/topic
// membership lists).
func sdRing(t *testing.T, n int) uint64 {
	t.Helper()
	k := des.NewKernel(7)
	net := simnet.NewNetwork(k, simnet.Config{})
	agents := make([]*Agent, n)
	for i := 0; i < n; i++ {
		h := net.AddHost("plat", nil)
		a, err := NewAgent(h, AgentConfig{})
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
		ep := h.MustBind(40000)
		key := ServiceKey{Service: ServiceID(0x1000 + i), Instance: 1}
		k.At(0, func() { a.Offer(key, 1, 0, ep.Addr()) })
	}
	found := 0
	for i := 0; i < n; i++ {
		i := i
		key := ServiceKey{Service: ServiceID(0x1000 + (i+1)%n), Instance: 1}
		k.At(logical.Time(logical.Millisecond), func() {
			agents[i].Find(key, func(RemoteService) { found++ })
		})
	}
	// Cover startup plus one cyclic offer round (period 1s).
	k.Run(logical.Time(1500 * logical.Millisecond))
	if found != n {
		t.Fatalf("n=%d: %d services discovered", n, found)
	}
	_, fanout := net.ControlPlane()
	return fanout
}

// The city-scale gate requires the SD control plane to be sub-quadratic
// in the platform count. With interest-based routing each offer reaches
// only its (single) interested consumer and each find only its (single)
// provider, so doubling the platforms should roughly double the
// fan-out — under all-pairs multicast it would quadruple.
func TestSDControlPlaneSubQuadratic(t *testing.T) {
	n1, n2 := 40, 80
	f1 := sdRing(t, n1)
	f2 := sdRing(t, n2)
	if f1 == 0 || f2 == 0 {
		t.Fatalf("no control-plane traffic measured (%d, %d)", f1, f2)
	}
	// Allow slack over perfectly linear growth, but reject anything
	// approaching the 4x of quadratic fan-out.
	if float64(f2) > 2.5*float64(f1) {
		t.Errorf("fan-out grew %d -> %d (%.2fx for 2x platforms): super-linear", f1, f2, float64(f2)/float64(f1))
	}
	// And the absolute count stays far below the all-pairs floor: every
	// startup offer alone used to cost (n-1) datagrams, i.e. >= n*(n-1)
	// for the offer wave.
	if f2 >= uint64(n2*(n2-1)) {
		t.Errorf("fan-out %d at n=%d is still all-pairs scale", f2, n2)
	}
}
