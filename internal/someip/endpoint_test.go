package someip

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/simnet"
)

// This file is the interface-conformance suite for the Endpoint seam:
// every behavioural guarantee the ara runtime relies on is exercised
// identically against the simulated binding (Conn) and the real-socket
// binding (UDPConn).

// endpointFixture builds a pair of bound endpoints on one substrate.
// pump drives pending deliveries (sim: run the kernel; udp: real time
// passes on its own) and returns once the substrate is quiescent enough
// for another wait poll.
type endpointFixture struct {
	a, b Endpoint
	pump func()
}

type endpointBuilder struct {
	name  string
	short bool // runnable under -short (no real sockets)
	build func(t *testing.T, tagged bool, mtu int) endpointFixture
}

func buildSimPair(t *testing.T, tagged bool, mtu int) endpointFixture {
	t.Helper()
	k := des.NewKernel(1)
	n := simnet.NewNetwork(k, simnet.Config{})
	a := NewConnMTU(n.AddHost("a", nil).MustBind(1000), tagged, mtu)
	b := NewConnMTU(n.AddHost("b", nil).MustBind(2000), tagged, mtu)
	return endpointFixture{a: a, b: b, pump: func() { k.RunAll() }}
}

func buildUDPPair(t *testing.T, tagged bool, mtu int) endpointFixture {
	t.Helper()
	a, err := ListenUDP("127.0.0.1:0", tagged, mtu)
	if err != nil {
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	b, err := ListenUDP("127.0.0.1:0", tagged, mtu)
	if err != nil {
		a.Close()
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return endpointFixture{a: a, b: b, pump: func() { time.Sleep(2 * time.Millisecond) }}
}

var endpointBuilders = []endpointBuilder{
	{name: "sim", short: true, build: buildSimPair},
	{name: "udp", short: false, build: buildUDPPair},
}

// collector gathers delivered messages thread-safely (UDP handlers run
// on the reader goroutine).
type collector struct {
	mu   sync.Mutex
	srcs []Addr
	msgs []*Message
}

func (c *collector) install(e Endpoint) {
	e.OnMessage(func(src Addr, m *Message) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.srcs = append(c.srcs, src)
		c.msgs = append(c.msgs, m)
	})
}

func (c *collector) wait(t *testing.T, pump func(), n int) ([]Addr, []*Message) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		pump()
		c.mu.Lock()
		if len(c.msgs) >= n {
			srcs := append([]Addr(nil), c.srcs...)
			msgs := append([]*Message(nil), c.msgs...)
			c.mu.Unlock()
			return srcs, msgs
		}
		c.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatalf("timeout: got %d of %d messages", len(c.msgs), n)
		}
	}
}

func forEachEndpoint(t *testing.T, tagged bool, mtu int, body func(t *testing.T, f endpointFixture)) {
	for _, eb := range endpointBuilders {
		t.Run(eb.name, func(t *testing.T) {
			if !eb.short && testing.Short() {
				t.Skip("real sockets skipped with -short")
			}
			body(t, eb.build(t, tagged, mtu))
		})
	}
}

func TestEndpointRoundTrip(t *testing.T) {
	forEachEndpoint(t, false, 0, func(t *testing.T, f endpointFixture) {
		var c collector
		c.install(f.b)
		m := &Message{Service: 0x1234, Method: 1, Client: 2, Session: 3,
			InterfaceVersion: 1, Type: TypeRequest, Payload: []byte("hello")}
		if err := f.a.Send(f.b.LocalAddr(), m); err != nil {
			t.Fatal(err)
		}
		srcs, msgs := c.wait(t, f.pump, 1)
		if msgs[0].Service != m.Service || !bytes.Equal(msgs[0].Payload, m.Payload) {
			t.Errorf("received %+v", msgs[0])
		}
		// The source address identifies the sender on its own substrate.
		if srcs[0].Network() != f.a.LocalAddr().Network() {
			t.Errorf("src network %q != sender network %q", srcs[0].Network(), f.a.LocalAddr().Network())
		}
		if srcs[0].String() != f.a.LocalAddr().String() {
			t.Errorf("src %v != sender %v", srcs[0], f.a.LocalAddr())
		}
		sent, _, _ := f.a.Stats()
		_, received, _ := f.b.Stats()
		if sent != 1 || received != 1 {
			t.Errorf("stats: sent=%d received=%d", sent, received)
		}
	})
}

func TestEndpointTaggedCarriesTag(t *testing.T) {
	forEachEndpoint(t, true, 0, func(t *testing.T, f endpointFixture) {
		if !f.a.Tagged() || !f.b.Tagged() {
			t.Fatal("endpoints should report Tagged")
		}
		var c collector
		c.install(f.b)
		tag := logical.Tag{Time: 777, Microstep: 2}
		m := &Message{Service: 1, Method: 2, Type: TypeNotification, Payload: []byte("x"), Tag: &tag}
		if err := f.a.Send(f.b.LocalAddr(), m); err != nil {
			t.Fatal(err)
		}
		_, msgs := c.wait(t, f.pump, 1)
		if msgs[0].Tag == nil || *msgs[0].Tag != tag {
			t.Errorf("tag = %v", msgs[0].Tag)
		}
	})
}

func TestEndpointUntaggedStripsTag(t *testing.T) {
	forEachEndpoint(t, false, 0, func(t *testing.T, f endpointFixture) {
		if f.a.Tagged() {
			t.Fatal("endpoint should report untagged")
		}
		var c collector
		c.install(f.b)
		tag := logical.Tag{Time: 5}
		m := &Message{Service: 1, Method: 2, Type: TypeNotification, Payload: []byte("y"), Tag: &tag}
		if err := f.a.Send(f.b.LocalAddr(), m); err != nil {
			t.Fatal(err)
		}
		_, msgs := c.wait(t, f.pump, 1)
		if msgs[0].Tag != nil {
			t.Error("untagged binding transmitted a tag")
		}
		if !bytes.Equal(msgs[0].Payload, []byte("y")) {
			t.Errorf("payload = %q", msgs[0].Payload)
		}
	})
}

func TestEndpointSegmentsOverMTU(t *testing.T) {
	forEachEndpoint(t, true, 1400, func(t *testing.T, f endpointFixture) {
		var c collector
		c.install(f.b)
		payload := make([]byte, 6000)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		tag := logical.Tag{Time: 99, Microstep: 1}
		m := &Message{Service: 1, Method: EventID(1), Type: TypeNotification, Payload: payload, Tag: &tag}
		if err := f.a.Send(f.b.LocalAddr(), m); err != nil {
			t.Fatal(err)
		}
		_, msgs := c.wait(t, f.pump, 1)
		if !bytes.Equal(msgs[0].Payload, payload) {
			t.Error("payload corrupted across TP segmentation")
		}
		if msgs[0].Tag == nil || *msgs[0].Tag != tag {
			t.Errorf("tag = %v", msgs[0].Tag)
		}
		if msgs[0].Type&TPFlag != 0 {
			t.Error("TP flag leaked to consumer")
		}
		sent, _, _ := f.a.Stats()
		if sent < 4 {
			t.Errorf("sent = %d datagrams, expected several segments", sent)
		}
	})
}

func TestEndpointSendAfterCloseFails(t *testing.T) {
	forEachEndpoint(t, false, 0, func(t *testing.T, f endpointFixture) {
		dst := f.b.LocalAddr()
		if err := f.a.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := f.a.Send(dst, &Message{Service: 1, Method: 1, Type: TypeRequest}); err == nil {
			t.Error("want error sending on closed endpoint")
		}
		// Double close is safe.
		if err := f.a.Close(); err != nil {
			t.Errorf("second close: %v", err)
		}
	})
}
