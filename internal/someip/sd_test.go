package someip

import (
	"testing"
	"testing/quick"

	"repro/internal/simnet"
)

func TestSDRoundTripOffer(t *testing.T) {
	in := []Entry{{
		Type: OfferService, Service: 0x1111, Instance: 0x0001,
		Major: 1, Minor: 3, TTL: 3,
		Options: []Option{{Type: IPv4EndpointOption, Addr: simnet.Addr{Host: 2, Port: 40000}, Proto: UDPProto}},
	}}
	out, err := UnmarshalSD(MarshalSD(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("entries = %d", len(out))
	}
	e := out[0]
	if e.Type != OfferService || e.Service != 0x1111 || e.Instance != 1 ||
		e.Major != 1 || e.Minor != 3 || e.TTL != 3 {
		t.Errorf("entry = %+v", e)
	}
	if len(e.Options) != 1 || e.Options[0].Addr != (simnet.Addr{Host: 2, Port: 40000}) || e.Options[0].Proto != UDPProto {
		t.Errorf("options = %+v", e.Options)
	}
}

func TestSDRoundTripFind(t *testing.T) {
	in := []Entry{{
		Type: FindService, Service: 7, Instance: 0xFFFF,
		Major: 0xFF, Minor: 0xFFFFFFFF, TTL: 5,
	}}
	out, err := UnmarshalSD(MarshalSD(in))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Type != FindService || out[0].Minor != 0xFFFFFFFF || len(out[0].Options) != 0 {
		t.Errorf("entry = %+v", out[0])
	}
}

func TestSDRoundTripSubscribe(t *testing.T) {
	in := []Entry{{
		Type: SubscribeEventgroup, Service: 9, Instance: 1,
		Major: 2, TTL: 3, Eventgroup: 0x10, Counter: 5,
		Options: []Option{{Type: IPv4EndpointOption, Addr: simnet.Addr{Host: 3, Port: 4444}, Proto: UDPProto}},
	}}
	out, err := UnmarshalSD(MarshalSD(in))
	if err != nil {
		t.Fatal(err)
	}
	e := out[0]
	if e.Eventgroup != 0x10 || e.Counter != 5 || e.TTL != 3 {
		t.Errorf("entry = %+v", e)
	}
}

func TestSDMultipleEntriesSharedOption(t *testing.T) {
	addr := simnet.Addr{Host: 4, Port: 1000}
	opt := Option{Type: IPv4EndpointOption, Addr: addr, Proto: UDPProto}
	in := []Entry{
		{Type: OfferService, Service: 1, Instance: 1, TTL: 3, Options: []Option{opt}},
		{Type: OfferService, Service: 2, Instance: 1, TTL: 3, Options: []Option{opt}},
	}
	payload := MarshalSD(in)
	out, err := UnmarshalSD(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("entries = %d", len(out))
	}
	for _, e := range out {
		if len(e.Options) != 1 || e.Options[0].Addr != addr {
			t.Errorf("entry options = %+v", e.Options)
		}
	}
	// Deduplication: one option (12 bytes), not two.
	// payload = 4 flags + 4 + 2*16 entries + 4 + 12 options.
	if len(payload) != 4+4+32+4+12 {
		t.Errorf("payload size = %d (option dedup failed?)", len(payload))
	}
}

func TestSDTTL24Bit(t *testing.T) {
	in := []Entry{{Type: OfferService, Service: 1, Instance: 1, TTL: 0xABCDEF}}
	out, err := UnmarshalSD(MarshalSD(in))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].TTL != 0xABCDEF {
		t.Errorf("TTL = %#x", out[0].TTL)
	}
}

func TestSDMalformed(t *testing.T) {
	cases := [][]byte{
		{},
		{0, 0, 0},
		{0x40, 0, 0, 0, 0, 0, 0, 17}, // entries length not multiple of 16
		{0x40, 0, 0, 0, 0, 0, 0, 16}, // truncated entries
	}
	for i, buf := range cases {
		if _, err := UnmarshalSD(buf); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestSDBadOptionReference(t *testing.T) {
	in := []Entry{{Type: OfferService, Service: 1, Instance: 1, TTL: 1}}
	payload := MarshalSD(in)
	// Forge an option count of 2 with no options present.
	payload[8+3] = 2 << 4
	if _, err := UnmarshalSD(payload); err == nil {
		t.Error("want option reference error")
	}
}

func TestAddrIPv4Mapping(t *testing.T) {
	a := simnet.Addr{Host: 0x0102, Port: 999}
	ip := AddrToIPv4(a)
	if ip != [4]byte{10, 0, 1, 2} {
		t.Errorf("ip = %v", ip)
	}
	back, err := IPv4ToAddr(ip, 999)
	if err != nil {
		t.Fatal(err)
	}
	if back != a {
		t.Errorf("round trip = %v", back)
	}
	if _, err := IPv4ToAddr([4]byte{192, 168, 0, 1}, 1); err == nil {
		t.Error("want error outside simulated range")
	}
}

func TestNewSDMessageShape(t *testing.T) {
	m := NewSDMessage(7, []Entry{{Type: FindService, Service: 1, Instance: 1, TTL: 1}})
	if !m.IsSD() {
		t.Error("not recognized as SD")
	}
	if m.Type != TypeNotification || m.Session != 7 {
		t.Errorf("msg = %+v", m)
	}
	// Must survive the generic codec.
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	entries, err := UnmarshalSD(got.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Type != FindService {
		t.Errorf("entry = %+v", entries[0])
	}
}

// Property: SD codec round-trips arbitrary well-formed service entries.
func TestSDRoundTripProperty(t *testing.T) {
	f := func(svc, inst uint16, major uint8, ttl uint32, minor uint32, host, port uint16) bool {
		ttl &= 0xFFFFFF
		if host >= simnet.MulticastBase {
			host = simnet.MulticastBase - 1
		}
		in := []Entry{{
			Type: OfferService, Service: ServiceID(svc), Instance: InstanceID(inst),
			Major: major, Minor: minor, TTL: ttl,
			Options: []Option{{Type: IPv4EndpointOption, Addr: simnet.Addr{Host: host, Port: port}, Proto: UDPProto}},
		}}
		out, err := UnmarshalSD(MarshalSD(in))
		if err != nil || len(out) != 1 {
			return false
		}
		e := out[0]
		return e.Service == ServiceID(svc) && e.Instance == InstanceID(inst) &&
			e.Major == major && e.Minor == minor && e.TTL == ttl &&
			len(e.Options) == 1 && e.Options[0].Addr == (simnet.Addr{Host: host, Port: port})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
