package someip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// SOME/IP payload serialization per the AUTOSAR basic datatype rules:
// big-endian ("network byte order") encoding of fixed-width integers and
// IEEE-754 floats, booleans as one byte, strings and dynamic arrays with
// a leading 32-bit length field. Writer and Reader implement streaming
// encode/decode with explicit error tracking, the building blocks that
// generated proxies/skeletons use for method arguments and event data.

// Writer serializes values into a growing payload buffer.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty payload writer.
func NewWriter() *Writer { return &Writer{} }

// NewWriterBuffer returns a writer that serializes into buf's storage
// (truncated to length zero, capacity kept). Hot paths hand the writer
// a pooled or stack buffer and serialize without per-message
// allocations as long as the payload fits the capacity.
func NewWriterBuffer(buf []byte) *Writer { return &Writer{buf: buf[:0]} }

// Reset truncates the writer for reuse, keeping the accumulated
// capacity — the pooling companion to NewWriterBuffer. Bytes returned
// by earlier Bytes calls alias the storage and are invalidated.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the current payload length.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends an unsigned 8-bit value.
func (w *Writer) U8(v uint8) *Writer {
	w.buf = append(w.buf, v)
	return w
}

// U16 appends an unsigned 16-bit value.
func (w *Writer) U16(v uint16) *Writer {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
	return w
}

// U32 appends an unsigned 32-bit value.
func (w *Writer) U32(v uint32) *Writer {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
	return w
}

// U64 appends an unsigned 64-bit value.
func (w *Writer) U64(v uint64) *Writer {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
	return w
}

// I8 appends a signed 8-bit value.
func (w *Writer) I8(v int8) *Writer { return w.U8(uint8(v)) }

// I16 appends a signed 16-bit value.
func (w *Writer) I16(v int16) *Writer { return w.U16(uint16(v)) }

// I32 appends a signed 32-bit value.
func (w *Writer) I32(v int32) *Writer { return w.U32(uint32(v)) }

// I64 appends a signed 64-bit value.
func (w *Writer) I64(v int64) *Writer { return w.U64(uint64(v)) }

// Bool appends a boolean (one byte, 0 or 1).
func (w *Writer) Bool(v bool) *Writer {
	if v {
		return w.U8(1)
	}
	return w.U8(0)
}

// F32 appends an IEEE-754 single-precision float.
func (w *Writer) F32(v float32) *Writer { return w.U32(math.Float32bits(v)) }

// F64 appends an IEEE-754 double-precision float.
func (w *Writer) F64(v float64) *Writer { return w.U64(math.Float64bits(v)) }

// String appends a UTF-8 string with a 32-bit length field.
func (w *Writer) String(s string) *Writer {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
	return w
}

// Blob appends a dynamic byte array with a 32-bit length field.
func (w *Writer) Blob(b []byte) *Writer {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
	return w
}

// Raw appends bytes without a length field (fixed-size arrays/structs).
func (w *Writer) Raw(b []byte) *Writer {
	w.buf = append(w.buf, b...)
	return w
}

// ErrPayloadTruncated reports reads past the end of a payload.
var ErrPayloadTruncated = errors.New("someip: payload truncated")

// Reader deserializes values from a payload. The first error sticks: all
// subsequent reads return zero values, and Err reports the failure, so
// call sites can decode a full struct and check once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a payload for reading.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Reset re-aims the reader at a new payload, clearing any sticky
// error — the pooling companion to NewReader.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.off = 0
	r.err = nil
}

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Finish verifies the payload was consumed exactly and returns any error.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("someip: %d trailing payload bytes", len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrPayloadTruncated, n, r.off, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads an unsigned 8-bit value.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads an unsigned 16-bit value.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads an unsigned 32-bit value.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads an unsigned 64-bit value.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I8 reads a signed 8-bit value.
func (r *Reader) I8() int8 { return int8(r.U8()) }

// I16 reads a signed 16-bit value.
func (r *Reader) I16() int16 { return int16(r.U16()) }

// I32 reads a signed 32-bit value.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 reads a signed 64-bit value.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Bool reads a boolean; any nonzero byte is true.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// F32 reads an IEEE-754 single-precision float.
func (r *Reader) F32() float32 { return math.Float32frombits(r.U32()) }

// F64 reads an IEEE-754 double-precision float.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// String reads a length-prefixed UTF-8 string.
func (r *Reader) String() string {
	n := int(r.U32())
	if r.err != nil {
		return ""
	}
	if n < 0 || n > r.Remaining() {
		r.err = fmt.Errorf("%w: string length %d exceeds remaining %d", ErrPayloadTruncated, n, r.Remaining())
		return ""
	}
	b := r.take(n)
	return string(b)
}

// Blob reads a length-prefixed byte array. The returned slice aliases
// the payload buffer — no defensive copy, no allocation. Callers that
// outlive the payload (or mutate the result) serialize into their own
// storage with BlobAppend instead.
func (r *Reader) Blob() []byte {
	n := int(r.U32())
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.Remaining() {
		r.err = fmt.Errorf("%w: blob length %d exceeds remaining %d", ErrPayloadTruncated, n, r.Remaining())
		return nil
	}
	return r.take(n)
}

// BlobAppend reads a length-prefixed byte array and appends it to dst,
// returning the extended slice: ownership without a fresh allocation
// when dst comes from a pool (or has capacity left). On a decoding
// error dst is returned unchanged.
func (r *Reader) BlobAppend(dst []byte) []byte {
	b := r.Blob()
	if b == nil {
		return dst
	}
	return append(dst, b...)
}

// Raw reads n bytes without a length field. Like Blob, the returned
// slice aliases the payload buffer; use RawAppend for an owned copy.
func (r *Reader) Raw(n int) []byte {
	return r.take(n)
}

// RawAppend reads n bytes without a length field and appends them to
// dst, returning the extended slice. On a decoding error dst is
// returned unchanged.
func (r *Reader) RawAppend(dst []byte, n int) []byte {
	b := r.take(n)
	if b == nil {
		return dst
	}
	return append(dst, b...)
}
