package someip

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/logical"
)

func sampleMessage() *Message {
	return &Message{
		Service:          0x1234,
		Method:           0x0042,
		Client:           0x0007,
		Session:          0x0100,
		InterfaceVersion: 2,
		Type:             TypeRequest,
		Code:             EOK,
		Payload:          []byte{1, 2, 3, 4, 5},
	}
}

func TestMarshalHeaderLayout(t *testing.T) {
	m := sampleMessage()
	buf := m.Marshal()
	if len(buf) != HeaderSize+5 {
		t.Fatalf("wire size = %d", len(buf))
	}
	// Message ID: 0x1234_0042.
	if !bytes.Equal(buf[0:4], []byte{0x12, 0x34, 0x00, 0x42}) {
		t.Errorf("message id = % x", buf[0:4])
	}
	// Length covers request id .. payload = 8 + 5.
	if !bytes.Equal(buf[4:8], []byte{0, 0, 0, 13}) {
		t.Errorf("length = % x", buf[4:8])
	}
	// Request ID: 0x0007_0100.
	if !bytes.Equal(buf[8:12], []byte{0x00, 0x07, 0x01, 0x00}) {
		t.Errorf("request id = % x", buf[8:12])
	}
	if buf[12] != 0x01 || buf[13] != 2 || buf[14] != 0x00 || buf[15] != 0x00 {
		t.Errorf("versions/type/code = % x", buf[12:16])
	}
	if !bytes.Equal(buf[16:], []byte{1, 2, 3, 4, 5}) {
		t.Errorf("payload = % x", buf[16:])
	}
}

func TestRoundTrip(t *testing.T) {
	m := sampleMessage()
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Service != m.Service || got.Method != m.Method ||
		got.Client != m.Client || got.Session != m.Session ||
		got.InterfaceVersion != m.InterfaceVersion ||
		got.Type != m.Type || got.Code != m.Code ||
		!bytes.Equal(got.Payload, m.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, m)
	}
}

func TestRoundTripEmptyPayload(t *testing.T) {
	m := &Message{Service: 1, Method: 2, Type: TypeResponse, Code: EOK}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 {
		t.Errorf("payload = % x", got.Payload)
	}
}

func TestUnmarshalShort(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10)); err == nil {
		t.Error("want error for short buffer")
	}
}

func TestUnmarshalLengthMismatch(t *testing.T) {
	buf := sampleMessage().Marshal()
	buf[7] = 99 // corrupt length
	if _, err := Unmarshal(buf); err == nil {
		t.Error("want length mismatch error")
	}
}

func TestUnmarshalBadProtocolVersion(t *testing.T) {
	buf := sampleMessage().Marshal()
	buf[12] = 0x02
	if _, err := Unmarshal(buf); err == nil {
		t.Error("want protocol version error")
	}
}

func TestTaggedRoundTrip(t *testing.T) {
	m := sampleMessage()
	m.Tag = &logical.Tag{Time: 123456789, Microstep: 7}
	buf := m.Marshal()
	if len(buf) != HeaderSize+5+TagTrailerSize {
		t.Fatalf("wire size = %d", len(buf))
	}
	got, err := UnmarshalTagged(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag == nil {
		t.Fatal("tag lost")
	}
	if *got.Tag != *m.Tag {
		t.Errorf("tag = %v, want %v", got.Tag, m.Tag)
	}
	if !bytes.Equal(got.Payload, m.Payload) {
		t.Errorf("payload = % x", got.Payload)
	}
}

func TestUntaggedReceiverSeesTrailerAsPayload(t *testing.T) {
	// A standards-conformant binding must still parse tagged messages;
	// the trailer is just extra payload to it.
	m := sampleMessage()
	m.Tag = &logical.Tag{Time: 42, Microstep: 1}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != nil {
		t.Error("plain Unmarshal must not interpret trailers")
	}
	if len(got.Payload) != 5+TagTrailerSize {
		t.Errorf("payload length = %d, want %d", len(got.Payload), 5+TagTrailerSize)
	}
}

func TestUnmarshalTaggedWithoutTrailer(t *testing.T) {
	got, err := UnmarshalTagged(sampleMessage().Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != nil {
		t.Error("untagged message decoded with tag")
	}
}

func TestTrailerNotConfusedByShortPayload(t *testing.T) {
	m := &Message{Service: 1, Method: 2, Type: TypeRequest, Payload: []byte("DEAR")}
	got, err := UnmarshalTagged(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != nil || string(got.Payload) != "DEAR" {
		t.Error("short payload misidentified as trailer")
	}
}

func TestTrailerMagicInPayloadNotStripped(t *testing.T) {
	// 20+ bytes ending with text that is not a valid trailer.
	payload := append(bytes.Repeat([]byte{0}, 16), 'D', 'E', 'A', 'R')
	m := &Message{Service: 1, Method: 2, Type: TypeRequest, Payload: payload}
	got, err := UnmarshalTagged(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != nil {
		t.Error("payload bytes misidentified as trailer")
	}
	// The magic must be at the trailer *start*, 20 bytes from the end.
	if !bytes.Equal(got.Payload, payload) {
		t.Errorf("payload altered: % x", got.Payload)
	}
}

func TestEventID(t *testing.T) {
	id := EventID(5)
	if !id.IsEvent() {
		t.Error("EventID must set the event flag")
	}
	if id != 0x8005 {
		t.Errorf("EventID(5) = %#x", uint16(id))
	}
	if MethodID(5).IsEvent() {
		t.Error("plain method must not be an event")
	}
}

func TestMessageIDAndRequestID(t *testing.T) {
	m := sampleMessage()
	if m.MessageID() != 0x12340042 {
		t.Errorf("MessageID = %#x", m.MessageID())
	}
	if m.RequestID() != 0x00070100 {
		t.Errorf("RequestID = %#x", m.RequestID())
	}
}

func TestStringers(t *testing.T) {
	if TypeRequest.String() != "REQUEST" || TypeError.String() != "ERROR" {
		t.Error("MessageType strings wrong")
	}
	if EOK.String() != "E_OK" || EMissingTag.String() != "E_MISSING_TAG" {
		t.Error("ReturnCode strings wrong")
	}
	m := sampleMessage()
	if m.String() == "" {
		t.Error("empty String()")
	}
}

func TestMarshalToPanicsOnSmallBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	sampleMessage().MarshalTo(make([]byte, 4))
}

// Property: marshal/unmarshal round-trips arbitrary messages.
func TestRoundTripProperty(t *testing.T) {
	f := func(svc, mth, cli, ses uint16, iv uint8, payload []byte) bool {
		m := &Message{
			Service: ServiceID(svc), Method: MethodID(mth),
			Client: ClientID(cli), Session: SessionID(ses),
			InterfaceVersion: iv, Type: TypeRequest, Code: EOK,
			Payload: payload,
		}
		got, err := Unmarshal(m.Marshal())
		if err != nil {
			return false
		}
		return got.Service == m.Service && got.Method == m.Method &&
			got.Client == m.Client && got.Session == m.Session &&
			got.InterfaceVersion == iv && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: tagged round trip preserves arbitrary tags and payloads.
func TestTaggedRoundTripProperty(t *testing.T) {
	f := func(tm int64, ms uint32, payload []byte) bool {
		if tm < 0 {
			tm = -tm
		}
		tag := logical.Tag{Time: logical.Time(tm), Microstep: logical.Microstep(ms)}
		m := &Message{Service: 1, Method: 2, Type: TypeRequest, Payload: payload, Tag: &tag}
		got, err := UnmarshalTagged(m.Marshal())
		if err != nil || got.Tag == nil {
			return false
		}
		return *got.Tag == tag && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
