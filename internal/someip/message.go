// Package someip implements the SOME/IP wire protocol (Scalable
// service-Oriented MiddlewarE over IP) as specified by the AUTOSAR
// Foundation: the 16-byte message header with request/response/
// notification semantics, service-discovery entries and options, and the
// DEAR tag-trailer extension that carries reactor tags across the network
// ("modified SOME/IP binding" in the paper).
package someip

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/logical"
)

// ServiceID identifies a service interface.
type ServiceID uint16

// MethodID identifies a method or, with the EventFlag bit set, an event.
type MethodID uint16

// EventFlag is the high bit of a MethodID; set for events/notifications
// per the SOME/IP specification.
const EventFlag MethodID = 0x8000

// EventID builds the MethodID for event number n.
func EventID(n uint16) MethodID { return MethodID(n) | EventFlag }

// IsEvent reports whether the method identifier denotes an event.
func (m MethodID) IsEvent() bool { return m&EventFlag != 0 }

// ClientID identifies a client within the vehicle network.
type ClientID uint16

// SessionID correlates a response with its request. Session 0 means
// "session handling inactive".
type SessionID uint16

// InstanceID distinguishes instances of the same service. It is not part
// of the SOME/IP header (it lives in SD and endpoint configuration).
type InstanceID uint16

// MessageType is the SOME/IP message type field.
type MessageType uint8

// Message types per the SOME/IP protocol specification.
const (
	TypeRequest         MessageType = 0x00 // expects a response
	TypeRequestNoReturn MessageType = 0x01 // fire & forget
	TypeNotification    MessageType = 0x02 // event
	TypeResponse        MessageType = 0x80
	TypeError           MessageType = 0x81
	// TPFlag marks segmented (SOME/IP-TP) messages.
	TPFlag MessageType = 0x20
)

func (t MessageType) String() string {
	switch t {
	case TypeRequest:
		return "REQUEST"
	case TypeRequestNoReturn:
		return "REQUEST_NO_RETURN"
	case TypeNotification:
		return "NOTIFICATION"
	case TypeResponse:
		return "RESPONSE"
	case TypeError:
		return "ERROR"
	default:
		return fmt.Sprintf("MessageType(0x%02x)", uint8(t))
	}
}

// ReturnCode is the SOME/IP return code field.
type ReturnCode uint8

// Return codes per the SOME/IP protocol specification.
const (
	EOK                    ReturnCode = 0x00
	ENotOK                 ReturnCode = 0x01
	EUnknownService        ReturnCode = 0x02
	EUnknownMethod         ReturnCode = 0x03
	ENotReady              ReturnCode = 0x04
	ENotReachable          ReturnCode = 0x05
	ETimeout               ReturnCode = 0x06
	EWrongProtocolVersion  ReturnCode = 0x07
	EWrongInterfaceVersion ReturnCode = 0x08
	EMalformedMessage      ReturnCode = 0x09
	EWrongMessageType      ReturnCode = 0x0a
	// EMissingTag is a DEAR-specific application error: a transactor
	// received an untagged message while configured to require tags.
	EMissingTag ReturnCode = 0x20
)

func (c ReturnCode) String() string {
	switch c {
	case EOK:
		return "E_OK"
	case ENotOK:
		return "E_NOT_OK"
	case EUnknownService:
		return "E_UNKNOWN_SERVICE"
	case EUnknownMethod:
		return "E_UNKNOWN_METHOD"
	case ENotReady:
		return "E_NOT_READY"
	case ENotReachable:
		return "E_NOT_REACHABLE"
	case ETimeout:
		return "E_TIMEOUT"
	case EWrongProtocolVersion:
		return "E_WRONG_PROTOCOL_VERSION"
	case EWrongInterfaceVersion:
		return "E_WRONG_INTERFACE_VERSION"
	case EMalformedMessage:
		return "E_MALFORMED_MESSAGE"
	case EWrongMessageType:
		return "E_WRONG_MESSAGE_TYPE"
	case EMissingTag:
		return "E_MISSING_TAG"
	default:
		return fmt.Sprintf("ReturnCode(0x%02x)", uint8(c))
	}
}

// ProtocolVersion is the only SOME/IP protocol version in existence.
const ProtocolVersion uint8 = 0x01

// HeaderSize is the size of the SOME/IP header in bytes.
const HeaderSize = 16

// lengthFieldCovers is the part of the header counted by the Length field
// (everything after the Length field itself).
const lengthFieldCovers = 8

// Message is a SOME/IP message. The optional Tag is the DEAR extension:
// when present, Marshal appends the tag trailer and the Length field
// covers it, so standards-conformant receivers treat it as extra payload.
type Message struct {
	Service          ServiceID
	Method           MethodID
	Client           ClientID
	Session          SessionID
	InterfaceVersion uint8
	Type             MessageType
	Code             ReturnCode
	Payload          []byte

	// Tag is the DEAR tagged-message extension (nil = untagged).
	Tag *logical.Tag
}

// Errors returned by Unmarshal.
var (
	ErrShortMessage    = errors.New("someip: message shorter than header")
	ErrLengthMismatch  = errors.New("someip: length field inconsistent with buffer")
	ErrProtocolVersion = errors.New("someip: unsupported protocol version")
)

// MessageID returns the 32-bit message identifier (service ⟨⟨16 | method).
func (m *Message) MessageID() uint32 {
	return uint32(m.Service)<<16 | uint32(m.Method)
}

// RequestID returns the 32-bit request identifier (client ⟨⟨16 | session).
func (m *Message) RequestID() uint32 {
	return uint32(m.Client)<<16 | uint32(m.Session)
}

// WireSize returns the marshaled size in bytes.
func (m *Message) WireSize() int {
	n := HeaderSize + len(m.Payload)
	if m.Tag != nil {
		n += TagTrailerSize
	}
	return n
}

// Marshal encodes the message. The trailer is appended when Tag is set.
func (m *Message) Marshal() []byte {
	buf := make([]byte, m.WireSize())
	m.MarshalTo(buf)
	return buf
}

// MarshalTo encodes into buf, which must be at least WireSize() long.
// It returns the number of bytes written.
func (m *Message) MarshalTo(buf []byte) int {
	size := m.WireSize()
	if len(buf) < size {
		panic("someip: MarshalTo buffer too small")
	}
	be := binary.BigEndian
	be.PutUint32(buf[0:4], m.MessageID())
	be.PutUint32(buf[4:8], uint32(size-lengthFieldCovers))
	be.PutUint32(buf[8:12], m.RequestID())
	buf[12] = ProtocolVersion
	buf[13] = m.InterfaceVersion
	buf[14] = uint8(m.Type)
	buf[15] = uint8(m.Code)
	copy(buf[HeaderSize:], m.Payload)
	if m.Tag != nil {
		putTagTrailer(buf[HeaderSize+len(m.Payload):], *m.Tag)
	}
	return size
}

// Unmarshal decodes a message. It does not interpret the tag trailer:
// a trailer, if any, remains part of Payload (this is the behaviour of an
// unmodified, standards-conformant binding). Use UnmarshalTagged for the
// DEAR modified binding.
func Unmarshal(buf []byte) (*Message, error) {
	if len(buf) < HeaderSize {
		return nil, ErrShortMessage
	}
	be := binary.BigEndian
	length := be.Uint32(buf[4:8])
	if int(length)+lengthFieldCovers != len(buf) {
		return nil, fmt.Errorf("%w: field %d, buffer %d", ErrLengthMismatch, length, len(buf))
	}
	if buf[12] != ProtocolVersion {
		return nil, fmt.Errorf("%w: 0x%02x", ErrProtocolVersion, buf[12])
	}
	msgID := be.Uint32(buf[0:4])
	reqID := be.Uint32(buf[8:12])
	payload := make([]byte, len(buf)-HeaderSize)
	copy(payload, buf[HeaderSize:])
	return &Message{
		Service:          ServiceID(msgID >> 16),
		Method:           MethodID(msgID & 0xffff),
		Client:           ClientID(reqID >> 16),
		Session:          SessionID(reqID & 0xffff),
		InterfaceVersion: buf[13],
		Type:             MessageType(buf[14]),
		Code:             ReturnCode(buf[15]),
		Payload:          payload,
	}, nil
}

// UnmarshalTagged decodes a message and, if a DEAR tag trailer is present,
// strips it from the payload and exposes it as Tag. This is the receive
// path of the paper's modified SOME/IP binding.
func UnmarshalTagged(buf []byte) (*Message, error) {
	m, err := Unmarshal(buf)
	if err != nil {
		return nil, err
	}
	if tag, rest, ok := splitTagTrailer(m.Payload); ok {
		m.Tag = &tag
		m.Payload = rest
	}
	return m, nil
}

func (m *Message) String() string {
	tag := ""
	if m.Tag != nil {
		tag = " tag=" + m.Tag.String()
	}
	return fmt.Sprintf("someip[%04x.%04x %s %s req=%08x len=%d%s]",
		uint16(m.Service), uint16(m.Method), m.Type, m.Code, m.RequestID(), len(m.Payload), tag)
}
