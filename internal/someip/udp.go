package someip

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// UDPConn is a SOME/IP binding over a real UDP socket. It serves the
// same role as Conn does over the simulated network: marshal on send,
// decode on receive, with optional DEAR tag-trailer support. It
// implements Endpoint, which is what makes the protocol layer
// substrate-independent: an ara runtime constructed over a UDPConn runs
// the tagged binding against real networks (see ara.NewUDPRuntime),
// while deterministic experiments use the simulated transport.
//
// Handlers run on the connection's reader goroutine.
type UDPConn struct {
	pc     *net.UDPConn
	tagged bool
	mtu    int

	mu      sync.Mutex
	onMsg   func(src Addr, m *Message)
	onErr   func(src Addr, err error)
	reasm   *Reassembler
	started bool
	closed  atomic.Bool
	done    chan struct{}

	sent     atomic.Uint64
	received atomic.Uint64
	decodeEr atomic.Uint64
}

// ListenUDP binds a SOME/IP UDP endpoint. addr uses net.ListenUDP
// semantics (e.g. "127.0.0.1:0" for an ephemeral loopback port).
// mtu > 0 enables SOME/IP-TP segmentation for oversized messages.
func ListenUDP(addr string, tagged bool, mtu int) (*UDPConn, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("someip: resolve %q: %w", addr, err)
	}
	pc, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("someip: listen %q: %w", addr, err)
	}
	return &UDPConn{
		pc:     pc,
		tagged: tagged,
		mtu:    mtu,
		reasm:  NewReassembler(0),
		done:   make(chan struct{}),
	}, nil
}

// Addr returns the bound address in its substrate-specific form.
func (c *UDPConn) Addr() *net.UDPAddr { return c.pc.LocalAddr().(*net.UDPAddr) }

// LocalAddr returns the bound address.
func (c *UDPConn) LocalAddr() Addr { return c.Addr() }

// Tagged reports whether the binding understands tag trailers.
func (c *UDPConn) Tagged() bool { return c.tagged }

// Stats returns (sent, received, decode errors).
func (c *UDPConn) Stats() (sent, received, decodeErrors uint64) {
	return c.sent.Load(), c.received.Load(), c.decodeEr.Load()
}

// OnMessage installs the receive handler and starts the read loop.
// Handlers run on the connection's reader goroutine; src is always a
// *net.UDPAddr.
func (c *UDPConn) OnMessage(fn func(src Addr, m *Message)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onMsg = fn
	if !c.started {
		c.started = true
		go c.readLoop()
	}
}

// OnError installs the decode-error handler.
func (c *UDPConn) OnError(fn func(src Addr, err error)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onErr = fn
}

// resolveUDP coerces a transport address to a *net.UDPAddr, resolving
// foreign-substrate addresses via their string form so that statically
// configured peers ("127.0.0.1:40001") can be passed through.
func resolveUDP(dst Addr) (*net.UDPAddr, error) {
	if ua, ok := dst.(*net.UDPAddr); ok {
		return ua, nil
	}
	if dst.Network() == "udp" {
		return net.ResolveUDPAddr("udp", dst.String())
	}
	return nil, fmt.Errorf("someip: UDPConn.Send to non-UDP address %v (%s)", dst, dst.Network())
}

// Send marshals and transmits the message, segmenting via SOME/IP-TP
// when an MTU is configured and the message exceeds it. dst must be a
// UDP address.
func (c *UDPConn) Send(dst Addr, m *Message) error {
	if c.closed.Load() {
		return errors.New("someip: send on closed UDPConn")
	}
	udpDst, err := resolveUDP(dst)
	if err != nil {
		return err
	}
	if !c.tagged && m.Tag != nil {
		clone := *m
		clone.Tag = nil
		m = &clone
	}
	msgs := []*Message{m}
	if c.mtu > 0 {
		msgs, err = Segment(m, c.mtu)
		if err != nil {
			return err
		}
	}
	for _, seg := range msgs {
		if _, err := c.pc.WriteToUDP(seg.Marshal(), udpDst); err != nil {
			return fmt.Errorf("someip: send: %w", err)
		}
		c.sent.Add(1)
	}
	return nil
}

// Close shuts the socket down and stops the read loop.
func (c *UDPConn) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	err := c.pc.Close()
	c.mu.Lock()
	started := c.started
	c.mu.Unlock()
	if started {
		<-c.done
	}
	return err
}

func (c *UDPConn) readLoop() {
	defer close(c.done)
	buf := make([]byte, 65536)
	for {
		n, src, err := c.pc.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		var m *Message
		if c.tagged {
			m, err = UnmarshalTagged(buf[:n])
		} else {
			m, err = Unmarshal(buf[:n])
		}
		if err == nil && m.Type&TPFlag != 0 {
			c.mu.Lock()
			m, err = c.reasm.Feed(m, 0)
			c.mu.Unlock()
			if m == nil && err == nil {
				continue // segment buffered
			}
		}
		if err != nil {
			c.decodeEr.Add(1)
			c.mu.Lock()
			onErr := c.onErr
			c.mu.Unlock()
			if onErr != nil {
				onErr(src, err)
			}
			continue
		}
		c.received.Add(1)
		c.mu.Lock()
		onMsg := c.onMsg
		c.mu.Unlock()
		if onMsg != nil {
			onMsg(src, m)
		}
	}
}
