package someip

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/logical"
)

// SOME/IP-TP: transport-protocol segmentation for messages that exceed
// the datagram MTU, per the AUTOSAR transformer specification. A
// segmented message carries the TP flag in its message type and a 4-byte
// TP header after the SOME/IP header:
//
//	[0:4] offset (upper 28 bits, in bytes — multiples of 16) |
//	      reserved (3 bits) | more-segments flag (1 bit)
//
// All segments repeat the original 16-byte SOME/IP header (same request
// ID), so receivers reassemble by (message ID, request ID, interface
// version). Segments must carry offsets in multiples of 16 except for
// the final segment.

// TPHeaderSize is the size of the TP header in bytes.
const TPHeaderSize = 4

// tpMaxSegmentPayload computes the usable payload per segment for a
// given MTU (MTU covers the SOME/IP header, the TP header and payload).
func tpMaxSegmentPayload(mtu int) (int, error) {
	usable := mtu - HeaderSize - TPHeaderSize
	// Round down to the TP offset granularity of 16 bytes.
	usable -= usable % 16
	if usable <= 0 {
		return 0, fmt.Errorf("someip: MTU %d leaves no room for TP payload", mtu)
	}
	return usable, nil
}

// Segment splits a message into SOME/IP-TP segments whose wire size does
// not exceed mtu. Messages that already fit are returned unchanged (one
// element). The message's tag, if any, is carried only on the FINAL
// segment, so the reassembled message keeps its tag while partial
// deliveries never expose one.
func Segment(m *Message, mtu int) ([]*Message, error) {
	if m.Type&TPFlag != 0 {
		return nil, fmt.Errorf("someip: message already segmented")
	}
	if m.WireSize() <= mtu {
		return []*Message{m}, nil
	}
	chunk, err := tpMaxSegmentPayload(mtu)
	if err != nil {
		return nil, err
	}
	var out []*Message
	for off := 0; off < len(m.Payload); off += chunk {
		end := off + chunk
		more := true
		if end >= len(m.Payload) {
			end = len(m.Payload)
			more = false
		}
		var tp [TPHeaderSize]byte
		word := uint32(off) & 0xFFFFFFF0
		if more {
			word |= 1
		}
		binary.BigEndian.PutUint32(tp[:], word)
		seg := &Message{
			Service:          m.Service,
			Method:           m.Method,
			Client:           m.Client,
			Session:          m.Session,
			InterfaceVersion: m.InterfaceVersion,
			Type:             m.Type | TPFlag,
			Code:             m.Code,
			Payload:          append(tp[:], m.Payload[off:end]...),
		}
		if !more && m.Tag != nil {
			t := *m.Tag
			seg.Tag = &t
		}
		out = append(out, seg)
	}
	return out, nil
}

// tpKey identifies one in-flight reassembly.
type tpKey struct {
	msgID uint32
	reqID uint32
	iface uint8
}

type tpBuffer struct {
	segments map[uint32][]byte // offset -> data
	total    int
	final    bool
	finalEnd uint32
	deadline logical.Time
	tag      *logical.Tag
	template Message
}

// Reassembler collects SOME/IP-TP segments and yields complete messages.
// Incomplete reassemblies expire after the configured timeout (checked
// lazily on Feed and explicitly via Expire).
type Reassembler struct {
	timeout  logical.Duration
	buffers  map[tpKey]*tpBuffer
	complete uint64
	expired  uint64
}

// NewReassembler creates a reassembler. timeout <= 0 disables expiry.
func NewReassembler(timeout logical.Duration) *Reassembler {
	return &Reassembler{timeout: timeout, buffers: map[tpKey]*tpBuffer{}}
}

// Stats returns (messages completed, reassemblies expired).
func (r *Reassembler) Stats() (complete, expired uint64) { return r.complete, r.expired }

// Pending returns the number of in-flight reassemblies.
func (r *Reassembler) Pending() int { return len(r.buffers) }

// Feed processes one received message at the given reception time.
// Non-TP messages pass through unchanged. TP segments are buffered; when
// a reassembly completes, the full message is returned.
func (r *Reassembler) Feed(m *Message, now logical.Time) (*Message, error) {
	r.Expire(now)
	if m.Type&TPFlag == 0 {
		return m, nil
	}
	if len(m.Payload) < TPHeaderSize {
		return nil, fmt.Errorf("someip: TP segment without TP header")
	}
	word := binary.BigEndian.Uint32(m.Payload[:TPHeaderSize])
	offset := word & 0xFFFFFFF0
	more := word&1 != 0
	data := m.Payload[TPHeaderSize:]

	key := tpKey{msgID: m.MessageID(), reqID: m.RequestID(), iface: m.InterfaceVersion}
	buf, ok := r.buffers[key]
	if !ok {
		buf = &tpBuffer{segments: map[uint32][]byte{}, template: *m}
		r.buffers[key] = buf
	}
	if r.timeout > 0 {
		buf.deadline = now.Add(r.timeout)
	}
	if _, dup := buf.segments[offset]; !dup {
		d := make([]byte, len(data))
		copy(d, data)
		buf.segments[offset] = d
		buf.total += len(data)
	}
	if !more {
		buf.final = true
		buf.finalEnd = offset + uint32(len(data))
		if m.Tag != nil {
			t := *m.Tag
			buf.tag = &t
		}
	}
	if !buf.final || buf.total < int(buf.finalEnd) {
		return nil, nil // still incomplete
	}
	// Verify contiguity and assemble.
	offsets := make([]uint32, 0, len(buf.segments))
	for off := range buf.segments {
		offsets = append(offsets, off)
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	payload := make([]byte, 0, buf.finalEnd)
	next := uint32(0)
	for _, off := range offsets {
		if off != next {
			return nil, fmt.Errorf("someip: TP reassembly gap at offset %d (expected %d)", off, next)
		}
		payload = append(payload, buf.segments[off]...)
		next = off + uint32(len(buf.segments[off]))
	}
	delete(r.buffers, key)
	r.complete++
	whole := buf.template
	whole.Type &^= TPFlag
	whole.Payload = payload
	whole.Tag = buf.tag
	return &whole, nil
}

// Expire drops reassemblies whose deadline has passed.
func (r *Reassembler) Expire(now logical.Time) {
	if r.timeout <= 0 {
		return
	}
	for key, buf := range r.buffers {
		if buf.deadline > 0 && now >= buf.deadline {
			delete(r.buffers, key)
			r.expired++
		}
	}
}
