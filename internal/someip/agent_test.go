package someip

import (
	"testing"

	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/simnet"
)

type sdFixture struct {
	k      *des.Kernel
	net    *simnet.Network
	h1, h2 *simnet.Host
	a1, a2 *Agent
}

func newSDFixture(t *testing.T) *sdFixture {
	t.Helper()
	k := des.NewKernel(1)
	n := simnet.NewNetwork(k, simnet.Config{})
	h1 := n.AddHost("p1", nil)
	h2 := n.AddHost("p2", nil)
	a1, err := NewAgent(h1, AgentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewAgent(h2, AgentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return &sdFixture{k: k, net: n, h1: h1, h2: h2, a1: a1, a2: a2}
}

var testKey = ServiceKey{Service: 0x1234, Instance: 1}

func TestFindBeforeOffer(t *testing.T) {
	f := newSDFixture(t)
	appEp := f.h1.MustBind(40000)

	var found *RemoteService
	f.k.At(0, func() {
		f.a2.Find(testKey, func(svc RemoteService) { found = &svc })
	})
	f.k.At(logical.Time(10*logical.Millisecond), func() {
		f.a1.Offer(testKey, 1, 0, appEp.Addr())
	})
	f.k.Run(logical.Time(logical.Second))
	if found == nil {
		t.Fatal("service not discovered")
	}
	if found.Endpoint != appEp.Addr() {
		t.Errorf("endpoint = %v, want %v", found.Endpoint, appEp.Addr())
	}
	if found.Key != testKey {
		t.Errorf("key = %v", found.Key)
	}
}

func TestFindAfterOfferUsesUnicastReply(t *testing.T) {
	f := newSDFixture(t)
	appEp := f.h1.MustBind(40000)
	f.k.At(0, func() { f.a1.Offer(testKey, 1, 0, appEp.Addr()) })

	var found *RemoteService
	// Find starts long after the initial offer multicast; discovery must
	// still succeed via the unicast offer reply to FIND (not only via the
	// next cyclic offer).
	f.k.At(logical.Time(10*logical.Millisecond), func() {
		f.a2.Find(testKey, func(svc RemoteService) { found = &svc })
	})
	f.k.Run(logical.Time(100 * logical.Millisecond)) // < cyclic period
	if found == nil {
		t.Fatal("service not discovered via find")
	}
}

func TestFindCachedFiresImmediately(t *testing.T) {
	f := newSDFixture(t)
	appEp := f.h1.MustBind(40000)
	f.k.At(0, func() { f.a1.Offer(testKey, 1, 0, appEp.Addr()) })
	f.k.Run(logical.Time(10 * logical.Millisecond))

	calls := 0
	f.k.At(f.k.Now(), func() {
		f.a2.Find(testKey, func(RemoteService) { calls++ })
	})
	f.k.Run(logical.Time(11 * logical.Millisecond))
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (cached)", calls)
	}
}

func TestLookup(t *testing.T) {
	f := newSDFixture(t)
	appEp := f.h1.MustBind(40000)
	// Passive caching requires declared interest: without a Find, the
	// consumer must opt in to the key's offer stream explicitly.
	f.a2.Interest(testKey)
	if _, ok := f.a2.Lookup(testKey); ok {
		t.Error("lookup before offer should miss")
	}
	f.k.At(0, func() { f.a1.Offer(testKey, 1, 0, appEp.Addr()) })
	f.k.Run(logical.Time(10 * logical.Millisecond))
	svc, ok := f.a2.Lookup(testKey)
	if !ok || svc.Endpoint != appEp.Addr() {
		t.Errorf("lookup = %+v, %v", svc, ok)
	}
}

func TestStopOfferRemovesRemote(t *testing.T) {
	f := newSDFixture(t)
	appEp := f.h1.MustBind(40000)
	f.a2.Interest(testKey)
	f.k.At(0, func() { f.a1.Offer(testKey, 1, 0, appEp.Addr()) })
	f.k.Run(logical.Time(10 * logical.Millisecond))
	if _, ok := f.a2.Lookup(testKey); !ok {
		t.Fatal("not discovered")
	}
	f.k.At(f.k.Now(), func() { f.a1.StopOffer(testKey) })
	f.k.Run(logical.Time(20 * logical.Millisecond))
	if _, ok := f.a2.Lookup(testKey); ok {
		t.Error("stop-offer did not remove remote entry")
	}
}

func TestOfferExpiresWithoutRenewal(t *testing.T) {
	k := des.NewKernel(1)
	n := simnet.NewNetwork(k, simnet.Config{})
	h1 := n.AddHost("p1", nil)
	h2 := n.AddHost("p2", nil)
	// Long cyclic period so the offer is never renewed within TTL.
	a1, _ := NewAgent(h1, AgentConfig{CyclicOfferPeriod: 100 * logical.Second, TTL: logical.Second})
	a2, _ := NewAgent(h2, AgentConfig{})
	appEp := h1.MustBind(40000)
	a2.Interest(testKey)
	k.At(0, func() { a1.Offer(testKey, 1, 0, appEp.Addr()) })
	k.Run(logical.Time(10 * logical.Millisecond))
	if _, ok := a2.Lookup(testKey); !ok {
		t.Fatal("not discovered")
	}
	// Advance past the TTL; run a dummy event so daemon expiry fires.
	k.At(logical.Time(3*logical.Second), func() {})
	k.Run(logical.Time(3 * logical.Second))
	if _, ok := a2.Lookup(testKey); ok {
		t.Error("offer did not expire")
	}
}

func TestCyclicOfferKeepsAlive(t *testing.T) {
	f := newSDFixture(t)
	appEp := f.h1.MustBind(40000)
	f.a2.Interest(testKey)
	f.k.At(0, func() { f.a1.Offer(testKey, 1, 0, appEp.Addr()) })
	// Probe at 5s: default TTL 3s, cyclic 1s — must still be known.
	probed := false
	f.k.At(logical.Time(5*logical.Second), func() {
		if _, ok := f.a2.Lookup(testKey); !ok {
			t.Error("offer expired despite cyclic renewal")
		}
		probed = true
	})
	f.k.Run(logical.Time(6 * logical.Second))
	if !probed {
		t.Fatal("probe event did not run")
	}
}

func TestSubscribeAndNotifySubscribers(t *testing.T) {
	f := newSDFixture(t)
	appEp := f.h1.MustBind(40000)
	notifyEp := f.h2.MustBind(41000)
	const eg = 0x10

	var gotSub []simnet.Addr
	f.a1.OnSubscribe(func(key ServiceKey, eventgroup uint16, sub simnet.Addr) {
		if key == testKey && eventgroup == eg {
			gotSub = append(gotSub, sub)
		}
	})

	var acked *bool
	f.k.At(0, func() { f.a1.Offer(testKey, 1, 0, appEp.Addr()) })
	f.k.At(logical.Time(5*logical.Millisecond), func() {
		f.a2.Find(testKey, func(RemoteService) {
			f.a2.Subscribe(testKey, eg, notifyEp.Addr(), func(ok bool) { acked = &ok })
		})
	})
	f.k.Run(logical.Time(100 * logical.Millisecond))

	if acked == nil || !*acked {
		t.Fatal("subscription not acked")
	}
	if len(gotSub) == 0 || gotSub[0] != notifyEp.Addr() {
		t.Fatalf("server saw subscribers %v", gotSub)
	}
	subs := f.a1.Subscribers(testKey, eg)
	if len(subs) != 1 || subs[0] != notifyEp.Addr() {
		t.Errorf("Subscribers = %v", subs)
	}
}

func TestSubscribeUnknownServiceNacked(t *testing.T) {
	f := newSDFixture(t)
	notifyEp := f.h2.MustBind(41000)
	var acked *bool
	f.k.At(0, func() {
		f.a2.Subscribe(testKey, 1, notifyEp.Addr(), func(ok bool) { acked = &ok })
	})
	f.k.Run(logical.Time(100 * logical.Millisecond))
	if acked == nil {
		t.Fatal("no ack callback")
	}
	if *acked {
		t.Error("subscribe to unknown service must fail")
	}
}

func TestSubscribeNackedWhenOfferWithdrawn(t *testing.T) {
	f := newSDFixture(t)
	appEp := f.h1.MustBind(40000)
	notifyEp := f.h2.MustBind(41000)
	f.k.At(0, func() { f.a1.Offer(testKey, 1, 0, appEp.Addr()) })
	f.k.Run(logical.Time(10 * logical.Millisecond))
	// Withdraw on the server but subscribe using a2's still-fresh cache
	// before the stop-offer propagates.
	var acked *bool
	f.k.At(f.k.Now(), func() {
		f.a1.StopOffer(testKey)
		f.a2.Subscribe(testKey, 1, notifyEp.Addr(), func(ok bool) { acked = &ok })
	})
	f.k.Run(logical.Time(200 * logical.Millisecond))
	if acked == nil || *acked {
		t.Error("subscription should be nacked after stop-offer")
	}
}

func TestUnsubscribeRemovesSubscriber(t *testing.T) {
	f := newSDFixture(t)
	appEp := f.h1.MustBind(40000)
	notifyEp := f.h2.MustBind(41000)
	const eg = 0x10
	f.k.At(0, func() { f.a1.Offer(testKey, 1, 0, appEp.Addr()) })
	f.k.At(logical.Time(5*logical.Millisecond), func() {
		f.a2.Find(testKey, func(RemoteService) {
			f.a2.Subscribe(testKey, eg, notifyEp.Addr(), nil)
		})
	})
	f.k.Run(logical.Time(50 * logical.Millisecond))
	if len(f.a1.Subscribers(testKey, eg)) != 1 {
		t.Fatal("not subscribed")
	}
	f.k.At(f.k.Now(), func() { f.a2.Unsubscribe(testKey, eg, notifyEp.Addr()) })
	f.k.Run(logical.Time(100 * logical.Millisecond))
	if len(f.a1.Subscribers(testKey, eg)) != 0 {
		t.Error("unsubscribe did not remove subscriber")
	}
}

func TestSubscriptionRenewalKeepsSubscriberAlive(t *testing.T) {
	f := newSDFixture(t)
	appEp := f.h1.MustBind(40000)
	notifyEp := f.h2.MustBind(41000)
	const eg = 0x10
	f.k.At(0, func() { f.a1.Offer(testKey, 1, 0, appEp.Addr()) })
	f.k.At(logical.Time(5*logical.Millisecond), func() {
		f.a2.Find(testKey, func(RemoteService) {
			f.a2.Subscribe(testKey, eg, notifyEp.Addr(), nil)
		})
	})
	// Probe well past the 3s TTL.
	probed := false
	f.k.At(logical.Time(8*logical.Second), func() {
		if len(f.a1.Subscribers(testKey, eg)) != 1 {
			t.Error("subscription expired despite renewal")
		}
		probed = true
	})
	f.k.Run(logical.Time(9 * logical.Second))
	if !probed {
		t.Fatal("probe did not run")
	}
}

func TestTwoServicesIndependent(t *testing.T) {
	f := newSDFixture(t)
	ep1 := f.h1.MustBind(40000)
	ep2 := f.h1.MustBind(40001)
	key2 := ServiceKey{Service: 0x5678, Instance: 1}
	f.a2.Interest(testKey)
	f.a2.Interest(key2)
	f.k.At(0, func() {
		f.a1.Offer(testKey, 1, 0, ep1.Addr())
		f.a1.Offer(key2, 1, 0, ep2.Addr())
	})
	f.k.Run(logical.Time(10 * logical.Millisecond))
	s1, ok1 := f.a2.Lookup(testKey)
	s2, ok2 := f.a2.Lookup(key2)
	if !ok1 || !ok2 {
		t.Fatal("not both discovered")
	}
	if s1.Endpoint == s2.Endpoint {
		t.Error("endpoints must differ")
	}
}
