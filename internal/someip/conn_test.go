package someip

import (
	"bytes"
	"testing"

	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/simnet"
)

func connPair(t *testing.T, tagged bool, mtu int) (*des.Kernel, *Conn, *Conn) {
	t.Helper()
	k := des.NewKernel(1)
	n := simnet.NewNetwork(k, simnet.Config{})
	h1 := n.AddHost("a", nil)
	h2 := n.AddHost("b", nil)
	a := NewConnMTU(h1.MustBind(1000), tagged, mtu)
	b := NewConnMTU(h2.MustBind(2000), tagged, mtu)
	return k, a, b
}

func TestConnRoundTrip(t *testing.T) {
	k, a, b := connPair(t, false, 0)
	var got *Message
	b.OnMessage(func(src Addr, m *Message) { got = m })
	m := &Message{Service: 1, Method: 2, Type: TypeRequest, Payload: []byte("hi")}
	k.At(0, func() { a.Send(b.Addr(), m) })
	k.RunAll()
	if got == nil || !bytes.Equal(got.Payload, []byte("hi")) {
		t.Fatalf("got %v", got)
	}
	sent, _, _ := a.Stats()
	_, received, _ := b.Stats()
	if sent != 1 || received != 1 {
		t.Errorf("stats: sent=%d received=%d", sent, received)
	}
}

func TestConnTaggedCarriesTag(t *testing.T) {
	k, a, b := connPair(t, true, 0)
	var got *Message
	b.OnMessage(func(src Addr, m *Message) { got = m })
	tag := logical.Tag{Time: 7, Microstep: 1}
	k.At(0, func() {
		a.Send(b.Addr(), &Message{Service: 1, Method: 2, Type: TypeNotification, Tag: &tag})
	})
	k.RunAll()
	if got == nil || got.Tag == nil || *got.Tag != tag {
		t.Fatalf("tag = %v", got)
	}
}

func TestConnUntaggedStripsTag(t *testing.T) {
	k, a, b := connPair(t, false, 0)
	var got *Message
	b.OnMessage(func(src Addr, m *Message) { got = m })
	tag := logical.Tag{Time: 7}
	k.At(0, func() {
		a.Send(b.Addr(), &Message{Service: 1, Method: 2, Type: TypeNotification, Payload: []byte("z"), Tag: &tag})
	})
	k.RunAll()
	if got == nil {
		t.Fatal("nothing received")
	}
	if got.Tag != nil {
		t.Error("untagged binding leaked a tag")
	}
	if !bytes.Equal(got.Payload, []byte("z")) {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestConnSegmentsOverMTU(t *testing.T) {
	k, a, b := connPair(t, true, 1400)
	var got *Message
	b.OnMessage(func(src Addr, m *Message) { got = m })
	payload := make([]byte, 5000)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	tag := logical.Tag{Time: 11, Microstep: 2}
	k.At(0, func() {
		a.Send(b.Addr(), &Message{Service: 1, Method: EventID(1), Type: TypeNotification, Payload: payload, Tag: &tag})
	})
	k.RunAll()
	if got == nil {
		t.Fatal("not reassembled")
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Error("payload corrupted")
	}
	if got.Tag == nil || *got.Tag != tag {
		t.Errorf("tag = %v", got.Tag)
	}
	sent, _, _ := a.Stats()
	if sent < 4 {
		t.Errorf("sent = %d, expected multiple segments", sent)
	}
	if got.Type&TPFlag != 0 {
		t.Error("TP flag leaked to consumer")
	}
}

func TestConnSmallMessageUnsegmented(t *testing.T) {
	k, a, b := connPair(t, true, 1400)
	count := 0
	b.OnMessage(func(src Addr, m *Message) { count++ })
	k.At(0, func() {
		a.Send(b.Addr(), &Message{Service: 1, Method: 2, Type: TypeRequest, Payload: []byte("s")})
	})
	k.RunAll()
	sent, _, _ := a.Stats()
	if sent != 1 || count != 1 {
		t.Errorf("sent=%d received=%d", sent, count)
	}
}

func TestConnDecodeErrorSurfaces(t *testing.T) {
	k := des.NewKernel(1)
	n := simnet.NewNetwork(k, simnet.Config{})
	h1 := n.AddHost("a", nil)
	h2 := n.AddHost("b", nil)
	raw := h1.MustBind(1)
	conn := NewConn(h2.MustBind(2), false)
	var gotErr error
	conn.OnError(func(src Addr, err error) { gotErr = err })
	k.At(0, func() { raw.Send(conn.Addr(), []byte{1, 2, 3}) })
	k.RunAll()
	if gotErr == nil {
		t.Error("decode error not surfaced")
	}
	_, _, decodeErrs := conn.Stats()
	if decodeErrs != 1 {
		t.Errorf("decode errors = %d", decodeErrs)
	}
}
