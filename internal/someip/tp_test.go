package someip

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/logical"
)

func tpMessage(size int) *Message {
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	return &Message{
		Service: 0x1234, Method: 0x0042, Client: 7, Session: 9,
		InterfaceVersion: 1, Type: TypeNotification, Code: EOK,
		Payload: payload,
	}
}

func TestSegmentSmallMessagePassesThrough(t *testing.T) {
	m := tpMessage(100)
	segs, err := Segment(m, 1400)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != m {
		t.Errorf("small message should pass through unchanged")
	}
}

func TestSegmentAndReassemble(t *testing.T) {
	m := tpMessage(4000)
	segs, err := Segment(m, 1400)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("segments = %d, want >= 3", len(segs))
	}
	for i, s := range segs {
		if s.WireSize() > 1400 {
			t.Errorf("segment %d wire size %d > MTU", i, s.WireSize())
		}
		if s.Type&TPFlag == 0 {
			t.Errorf("segment %d missing TP flag", i)
		}
		if s.Session != m.Session || s.Service != m.Service {
			t.Errorf("segment %d header mismatch", i)
		}
	}
	r := NewReassembler(0)
	var got *Message
	for _, s := range segs {
		out, err := r.Feed(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			if got != nil {
				t.Fatal("reassembled twice")
			}
			got = out
		}
	}
	if got == nil {
		t.Fatal("never reassembled")
	}
	if !bytes.Equal(got.Payload, m.Payload) {
		t.Error("payload corrupted in reassembly")
	}
	if got.Type&TPFlag != 0 {
		t.Error("TP flag not cleared")
	}
	if c, _ := r.Stats(); c != 1 {
		t.Errorf("complete = %d", c)
	}
}

func TestSegmentPreservesTagOnFinalOnly(t *testing.T) {
	m := tpMessage(3000)
	tag := logical.Tag{Time: 42, Microstep: 3}
	m.Tag = &tag
	segs, err := Segment(m, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range segs {
		if i < len(segs)-1 && s.Tag != nil {
			t.Errorf("non-final segment %d carries tag", i)
		}
	}
	if segs[len(segs)-1].Tag == nil {
		t.Fatal("final segment lost the tag")
	}
	r := NewReassembler(0)
	var got *Message
	for _, s := range segs {
		if out, _ := r.Feed(s, 0); out != nil {
			got = out
		}
	}
	if got == nil || got.Tag == nil || *got.Tag != tag {
		t.Errorf("reassembled tag = %v", got.Tag)
	}
}

func TestReassembleOutOfOrder(t *testing.T) {
	m := tpMessage(5000)
	segs, err := Segment(m, 1400)
	if err != nil {
		t.Fatal(err)
	}
	// Feed in reverse order.
	r := NewReassembler(0)
	var got *Message
	for i := len(segs) - 1; i >= 0; i-- {
		out, err := r.Feed(segs[i], 0)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			got = out
		}
	}
	if got == nil || !bytes.Equal(got.Payload, m.Payload) {
		t.Error("out-of-order reassembly failed")
	}
}

func TestReassembleDuplicateSegments(t *testing.T) {
	m := tpMessage(3000)
	segs, _ := Segment(m, 1400)
	r := NewReassembler(0)
	var got *Message
	for _, s := range segs {
		r.Feed(s, 0) // first copy
	}
	// Feeding duplicates of a completed message starts a new buffer; feed
	// all again to get a second complete message.
	for _, s := range segs {
		if out, _ := r.Feed(s, 0); out != nil {
			got = out
		}
	}
	if got == nil || !bytes.Equal(got.Payload, m.Payload) {
		t.Error("duplicate feed failed")
	}
}

func TestReassemblerInterleavedStreams(t *testing.T) {
	a := tpMessage(3000)
	b := tpMessage(3000)
	b.Session = 10 // distinct request ID
	for i := range b.Payload {
		b.Payload[i] = byte(i * 13)
	}
	segsA, _ := Segment(a, 1400)
	segsB, _ := Segment(b, 1400)
	r := NewReassembler(0)
	var gotA, gotB *Message
	for i := 0; i < len(segsA) || i < len(segsB); i++ {
		if i < len(segsA) {
			if out, _ := r.Feed(segsA[i], 0); out != nil {
				gotA = out
			}
		}
		if i < len(segsB) {
			if out, _ := r.Feed(segsB[i], 0); out != nil {
				gotB = out
			}
		}
	}
	if gotA == nil || gotB == nil {
		t.Fatal("interleaved reassembly incomplete")
	}
	if !bytes.Equal(gotA.Payload, a.Payload) || !bytes.Equal(gotB.Payload, b.Payload) {
		t.Error("interleaved streams mixed up")
	}
}

func TestReassemblerTimeout(t *testing.T) {
	m := tpMessage(3000)
	segs, _ := Segment(m, 1400)
	r := NewReassembler(100)
	r.Feed(segs[0], 0) // partial
	if r.Pending() != 1 {
		t.Fatalf("pending = %d", r.Pending())
	}
	r.Expire(200)
	if r.Pending() != 0 {
		t.Error("expired buffer not dropped")
	}
	if _, exp := r.Stats(); exp != 1 {
		t.Errorf("expired = %d", exp)
	}
	// Remaining segments now cannot complete: the first is gone, so the
	// total never reaches finalEnd.
	var got *Message
	for _, s := range segs[1:] {
		out, err := r.Feed(s, 300)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			got = out
		}
	}
	if got != nil {
		t.Error("reassembled from incomplete segments")
	}
}

func TestSegmentRejectsTinyMTU(t *testing.T) {
	if _, err := Segment(tpMessage(5000), HeaderSize+TPHeaderSize); err == nil {
		t.Error("want error for MTU with no payload room")
	}
}

func TestSegmentRejectsDoubleSegmentation(t *testing.T) {
	m := tpMessage(5000)
	segs, _ := Segment(m, 1400)
	if _, err := Segment(segs[0], 400); err == nil {
		t.Error("want error when segmenting a segment")
	}
}

func TestFeedNonTPPassesThrough(t *testing.T) {
	m := tpMessage(50)
	r := NewReassembler(0)
	out, err := r.Feed(m, 0)
	if err != nil || out != m {
		t.Errorf("pass-through failed: %v %v", out, err)
	}
}

func TestFeedTruncatedTPSegmentErrors(t *testing.T) {
	m := &Message{Service: 1, Method: 2, Type: TypeNotification | TPFlag, Payload: []byte{1, 2}}
	r := NewReassembler(0)
	if _, err := r.Feed(m, 0); err == nil {
		t.Error("want error for truncated TP header")
	}
}

// Property: segmentation round-trips arbitrary payload sizes and MTUs.
func TestSegmentReassembleProperty(t *testing.T) {
	f := func(sizeRaw uint16, mtuRaw uint8) bool {
		size := int(sizeRaw%8000) + 1
		mtu := 200 + int(mtuRaw)*8 // 200..2240
		m := tpMessage(size)
		segs, err := Segment(m, mtu)
		if err != nil {
			return false
		}
		r := NewReassembler(0)
		var got *Message
		for _, s := range segs {
			if s.WireSize() > mtu && len(segs) > 1 {
				return false
			}
			out, err := r.Feed(s, 0)
			if err != nil {
				return false
			}
			if out != nil {
				got = out
			}
		}
		return got != nil && bytes.Equal(got.Payload, m.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
