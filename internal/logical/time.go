// Package logical implements the tagged logical-time model that underpins
// the reactor model of computation and the DEAR tagged-message protocol.
//
// A Tag is a pair (Time, Microstep). Time is a point on a logical timeline
// measured in nanoseconds; Microstep orders events that are logically
// simultaneous but causally distinct (the superdense-time model used by
// reactors and PTIDES). Tags are totally ordered lexicographically.
package logical

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in logical (or simulated physical) time, in nanoseconds
// since an arbitrary epoch. The zero value is the epoch itself.
type Time int64

// Duration is a span of logical time in nanoseconds.
type Duration int64

// Common durations, mirroring the time package so that call sites read
// naturally (e.g. 50*logical.Millisecond).
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Forever is the largest representable time point. It is used as the
// "never" sentinel by schedulers waiting for an unbounded future event.
const Forever Time = math.MaxInt64

// FromStd converts a time.Duration to a logical Duration.
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Std converts a logical Duration to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Add returns the time point d nanoseconds after t, saturating at Forever
// rather than wrapping on overflow.
func (t Time) Add(d Duration) Time {
	if d >= 0 && t > Forever-Time(d) {
		return Forever
	}
	return t + Time(d)
}

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// String renders the time as seconds with nanosecond precision, e.g.
// "1.050000000s". Forever renders as "forever".
func (t Time) String() string {
	if t == Forever {
		return "forever"
	}
	return time.Duration(t).String()
}

// String renders the duration using time.Duration notation.
func (d Duration) String() string { return time.Duration(d).String() }

// Microstep counts logically-simultaneous rounds at one time point.
type Microstep uint32

// Tag is a superdense-time tag: a logical time point plus a microstep.
// Tags order all events in a reactor program; two events with the same tag
// are logically simultaneous.
type Tag struct {
	Time      Time
	Microstep Microstep
}

// NeverTag sorts after every reachable tag.
var NeverTag = Tag{Time: Forever, Microstep: math.MaxUint32}

// Compare returns -1, 0 or +1 as t sorts before, equal to, or after u.
func (t Tag) Compare(u Tag) int {
	switch {
	case t.Time < u.Time:
		return -1
	case t.Time > u.Time:
		return 1
	case t.Microstep < u.Microstep:
		return -1
	case t.Microstep > u.Microstep:
		return 1
	default:
		return 0
	}
}

// Before reports whether t sorts strictly before u.
func (t Tag) Before(u Tag) bool { return t.Compare(u) < 0 }

// After reports whether t sorts strictly after u.
func (t Tag) After(u Tag) bool { return t.Compare(u) > 0 }

// Equal reports whether the tags are identical.
func (t Tag) Equal(u Tag) bool { return t == u }

// Delay returns the tag of an event scheduled with the given minimum delay
// relative to t. Following reactor semantics, a zero delay advances the
// microstep (strictly later in superdense time, same time point), while a
// positive delay advances the time point and resets the microstep.
func (t Tag) Delay(d Duration) Tag {
	if d == 0 {
		if t.Microstep == math.MaxUint32 {
			return Tag{Time: t.Time.Add(1), Microstep: 0}
		}
		return Tag{Time: t.Time, Microstep: t.Microstep + 1}
	}
	if d < 0 {
		d = 0
		return t.Delay(d)
	}
	return Tag{Time: t.Time.Add(d), Microstep: 0}
}

// Next returns the tag immediately following t in superdense time.
func (t Tag) Next() Tag { return t.Delay(0) }

// Max returns the later of t and u.
func (t Tag) Max(u Tag) Tag {
	if t.Before(u) {
		return u
	}
	return t
}

// Min returns the earlier of t and u.
func (t Tag) Min(u Tag) Tag {
	if u.Before(t) {
		return u
	}
	return t
}

// String renders the tag as "(time, microstep)".
func (t Tag) String() string {
	return fmt.Sprintf("(%s, %d)", t.Time, t.Microstep)
}
