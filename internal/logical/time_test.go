package logical

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeAdd(t *testing.T) {
	if got := Time(100).Add(50); got != 150 {
		t.Errorf("Add = %d, want 150", got)
	}
	if got := Time(100).Add(-50); got != 50 {
		t.Errorf("Add negative = %d, want 50", got)
	}
}

func TestTimeAddSaturates(t *testing.T) {
	if got := Forever.Add(1); got != Forever {
		t.Errorf("Forever.Add(1) = %d, want Forever", got)
	}
	if got := Time(math.MaxInt64 - 5).Add(100); got != Forever {
		t.Errorf("near-max Add = %d, want Forever", got)
	}
}

func TestTimeSub(t *testing.T) {
	if got := Time(150).Sub(100); got != 50 {
		t.Errorf("Sub = %d, want 50", got)
	}
}

func TestTimeOrdering(t *testing.T) {
	if !Time(1).Before(2) {
		t.Error("1 should be before 2")
	}
	if !Time(2).After(1) {
		t.Error("2 should be after 1")
	}
	if Time(1).After(1) || Time(1).Before(1) {
		t.Error("equal times must not be before/after each other")
	}
}

func TestDurationConversion(t *testing.T) {
	d := FromStd(3 * time.Millisecond)
	if d != 3*Millisecond {
		t.Errorf("FromStd = %d, want %d", d, 3*Millisecond)
	}
	if d.Std() != 3*time.Millisecond {
		t.Errorf("Std = %v, want 3ms", d.Std())
	}
}

func TestDurationConstants(t *testing.T) {
	if Second != 1e9 {
		t.Errorf("Second = %d", Second)
	}
	if Minute != 60*Second || Hour != 60*Minute {
		t.Error("minute/hour constants inconsistent")
	}
}

func TestTagCompare(t *testing.T) {
	cases := []struct {
		a, b Tag
		want int
	}{
		{Tag{0, 0}, Tag{0, 0}, 0},
		{Tag{0, 0}, Tag{0, 1}, -1},
		{Tag{0, 1}, Tag{0, 0}, 1},
		{Tag{0, 5}, Tag{1, 0}, -1},
		{Tag{2, 0}, Tag{1, 9}, 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestTagBeforeAfterEqual(t *testing.T) {
	a := Tag{10, 2}
	b := Tag{10, 3}
	if !a.Before(b) || b.Before(a) {
		t.Error("Before wrong")
	}
	if !b.After(a) || a.After(b) {
		t.Error("After wrong")
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Error("Equal wrong")
	}
}

func TestTagDelayZeroAdvancesMicrostep(t *testing.T) {
	a := Tag{100, 4}
	got := a.Delay(0)
	want := Tag{100, 5}
	if got != want {
		t.Errorf("Delay(0) = %v, want %v", got, want)
	}
}

func TestTagDelayPositiveResetsMicrostep(t *testing.T) {
	a := Tag{100, 4}
	got := a.Delay(50)
	want := Tag{150, 0}
	if got != want {
		t.Errorf("Delay(50) = %v, want %v", got, want)
	}
}

func TestTagDelayNegativeClampsToZero(t *testing.T) {
	a := Tag{100, 4}
	if got := a.Delay(-7); got != a.Delay(0) {
		t.Errorf("Delay(-7) = %v, want %v", got, a.Delay(0))
	}
}

func TestTagDelayMicrostepOverflow(t *testing.T) {
	a := Tag{100, math.MaxUint32}
	got := a.Delay(0)
	want := Tag{101, 0}
	if got != want {
		t.Errorf("Delay(0) at microstep max = %v, want %v", got, want)
	}
}

func TestTagNext(t *testing.T) {
	a := Tag{7, 0}
	if got := a.Next(); got != (Tag{7, 1}) {
		t.Errorf("Next = %v", got)
	}
}

func TestTagMinMax(t *testing.T) {
	a, b := Tag{1, 0}, Tag{1, 1}
	if a.Max(b) != b || b.Max(a) != b {
		t.Error("Max wrong")
	}
	if a.Min(b) != a || b.Min(a) != a {
		t.Error("Min wrong")
	}
}

func TestNeverTagSortsLast(t *testing.T) {
	if !(Tag{Forever, 0}).Before(NeverTag) {
		t.Error("NeverTag must sort after (Forever, 0)")
	}
	if NeverTag.Before(NeverTag) {
		t.Error("NeverTag must not sort before itself")
	}
}

func TestStringForms(t *testing.T) {
	if s := Forever.String(); s != "forever" {
		t.Errorf("Forever.String = %q", s)
	}
	if s := (Tag{Time(2 * Second), 3}).String(); s != "(2s, 3)" {
		t.Errorf("Tag.String = %q", s)
	}
	if s := Duration(1500 * Millisecond).String(); s != "1.5s" {
		t.Errorf("Duration.String = %q", s)
	}
}

// Property: Delay strictly increases tags for any non-negative duration.
func TestTagDelayStrictlyIncreases(t *testing.T) {
	f := func(tm int64, ms uint32, d int64) bool {
		if tm < 0 {
			tm = -tm
		}
		if d < 0 {
			d = -d
		}
		// Keep values in a range that cannot saturate, where strict
		// monotonicity is guaranteed.
		tag := Tag{Time(tm % (1 << 40)), Microstep(ms)}
		return tag.Before(tag.Delay(Duration(d % (1 << 40))))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric and consistent with Before/After.
func TestTagCompareAntisymmetric(t *testing.T) {
	f := func(a1, a2 int64, m1, m2 uint32) bool {
		a := Tag{Time(a1), Microstep(m1)}
		b := Tag{Time(a2), Microstep(m2)}
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		if a.Before(b) && !b.After(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is transitive over random triples.
func TestTagCompareTransitive(t *testing.T) {
	f := func(x, y, z int16, mx, my, mz uint8) bool {
		a := Tag{Time(x), Microstep(mx)}
		b := Tag{Time(y), Microstep(my)}
		c := Tag{Time(z), Microstep(mz)}
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 {
			return a.Compare(c) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Max/Min return one of their arguments and bracket both.
func TestTagMinMaxProperties(t *testing.T) {
	f := func(x, y int32, mx, my uint8) bool {
		a := Tag{Time(x), Microstep(mx)}
		b := Tag{Time(y), Microstep(my)}
		hi, lo := a.Max(b), a.Min(b)
		if hi != a && hi != b {
			return false
		}
		if lo != a && lo != b {
			return false
		}
		return !hi.Before(lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
