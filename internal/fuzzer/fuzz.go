package fuzzer

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/exp"
	"repro/internal/scenario"
)

// Options bounds one fuzzing campaign.
type Options struct {
	// Seed keys the campaign: spec i is Gen(Seed, i).
	Seed uint64
	// Iterations is the number of generated specs to check.
	Iterations int
	// PartitionCounts are the federated partition counts each spec is
	// checked at; nil selects {2, 3}.
	PartitionCounts []int
	// Procs are the GOMAXPROCS values each federated run is repeated
	// under; nil selects {1, 0} (serialized, then ambient) so both the
	// single-threaded and the parallel coordinator paths face every
	// spec. 0 means "leave GOMAXPROCS untouched".
	Procs []int
	// OutDir, when non-empty, receives the shrunk repro spec (JSON) and
	// its divergence report; the directory is created if missing.
	// examples/regressions/ is the ready-to-commit location.
	OutDir string
	// ShrinkBudget caps candidate evaluations during shrinking;
	// 0 selects 64.
	ShrinkBudget int
	// Log, when non-nil, receives one progress line per checked spec
	// batch and the shrink trajectory of a failure.
	Log func(format string, args ...any)
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Failure is a determinism violation found (and minimized) by Run.
type Failure struct {
	// Index is the generator index of the spec that first diverged;
	// Gen(Options.Seed, Index) regenerates it exactly.
	Index uint64
	// Spec is the originally generated diverging spec.
	Spec scenario.Spec
	// Minimal is the shrunk spec: the smallest found that still
	// reproduces the divergence. Its Partitions field holds the
	// (also minimized) failing partition count, so running it as a
	// JSON scenario re-executes the failing comparison directly.
	Minimal scenario.Spec
	// Div is the minimal spec's divergence, trace-localized when the
	// canonical traces disagree.
	Div *exp.ModeDivergence
	// Report is the rendered repro report (also written to ReportPath
	// when OutDir was set).
	Report string
	// SpecPath and ReportPath are the emitted repro files (empty when
	// OutDir was unset).
	SpecPath, ReportPath string
}

// Error renders the failure as a one-paragraph summary for test and
// CLI output.
func (f *Failure) Error() string {
	return fmt.Sprintf("fuzzer: determinism violation at index %d (spec %s): %s",
		f.Index, f.Minimal.Name, strings.Split(f.Div.String(), "\n")[1])
}

// CheckSpec runs one spec through the determinism property: byte-equal
// canonical reports and traces between the single-kernel reference and
// every federated mode. It returns the first violation (nil = the spec
// upholds the contract); the error return is reserved for specs that
// fail to compile.
func CheckSpec(spec scenario.Spec, partitionCounts, procs []int) (*exp.ModeDivergence, error) {
	return exp.CompareSpecModes(spec, partitionCounts, procs)
}

// Run executes a seeded campaign: Iterations generated specs, each
// checked single-kernel vs federated across PartitionCounts × Procs.
// The first violation is shrunk to a minimal repro, emitted under
// OutDir (when set) and returned; a clean campaign returns (nil, nil).
// The error return is reserved for infrastructure failures (a
// generated spec failing to build is a generator bug, not a finding).
func Run(o Options) (*Failure, error) {
	if len(o.PartitionCounts) == 0 {
		o.PartitionCounts = []int{2, 3}
	}
	if len(o.Procs) == 0 {
		o.Procs = []int{1, 0}
	}
	if o.ShrinkBudget <= 0 {
		o.ShrinkBudget = 64
	}
	for i := uint64(0); i < uint64(o.Iterations); i++ {
		spec := Gen(o.Seed, i)
		div, err := CheckSpec(spec, o.PartitionCounts, o.Procs)
		if err != nil {
			return nil, fmt.Errorf("fuzzer: generated spec %d failed to run: %w", i, err)
		}
		if div == nil {
			if (i+1)%10 == 0 || int(i+1) == o.Iterations {
				o.logf("fuzzer: %d/%d specs upheld the determinism contract (seed %d)",
					i+1, o.Iterations, o.Seed)
			}
			continue
		}
		o.logf("fuzzer: spec %d (%s) DIVERGED at %d partitions — shrinking", i, spec.Name, div.Partitions)
		return minimize(o, i, spec, div)
	}
	return nil, nil
}

// minimize shrinks a diverging spec against the exact mode that caught
// it, renders the repro report and emits the artifacts.
func minimize(o Options, index uint64, spec scenario.Spec, div *exp.ModeDivergence) (*Failure, error) {
	// Pin the failing mode into the spec: the shrinker halves
	// Partitions like any other field, and the emitted JSON then
	// carries the minimized failing partition count.
	spec.Partitions = div.Partitions
	procs := []int{div.Procs}
	reproduces := func(cand scenario.Spec) (bool, error) {
		d, err := CheckSpec(cand, []int{cand.Partitions}, procs)
		return d != nil, err
	}
	minimal := Shrink(spec, reproduces, o.ShrinkBudget)
	minDiv, err := CheckSpec(minimal, []int{minimal.Partitions}, procs)
	if err != nil {
		return nil, err
	}
	if minDiv == nil {
		// The bug is flaky enough that the minimal spec missed on the
		// confirmation run; the pre-shrink spec is still the finding.
		minDiv = div
		minimal = spec
	}
	o.logf("fuzzer: shrunk %d→%d platforms, %d→%d rounds", spec.Platforms, minimal.Platforms,
		spec.Rounds, minimal.Rounds)

	f := &Failure{Index: index, Spec: spec, Minimal: minimal, Div: minDiv}
	f.Report = renderReport(o.Seed, f)
	if o.OutDir != "" {
		if err := emit(o.OutDir, f); err != nil {
			return nil, err
		}
		o.logf("fuzzer: repro written: %s, %s", f.SpecPath, f.ReportPath)
	}
	return f, nil
}

// renderReport builds the human-readable half of a repro: provenance,
// the minimal spec's canonical description, and the localized
// divergence with both reports.
func renderReport(seed uint64, f *Failure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "determinism violation found by the spec fuzzer\n")
	fmt.Fprintf(&b, "campaign seed=%d index=%d (regenerate: fuzzer.Gen(%d, %d))\n\n",
		seed, f.Index, seed, f.Index)
	if desc, err := scenario.Describe(f.Minimal); err == nil {
		fmt.Fprintf(&b, "minimal spec:\n%s\n", desc)
	}
	b.WriteString(f.Div.String())
	return b.String()
}

// emit writes the minimal spec and its report under dir, named after
// the spec. The JSON is ready to commit: checking it into
// examples/regressions/ turns the repro into a permanent gate (the
// regression replay test runs every spec in that directory).
func emit(dir string, f *Failure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fuzzer: creating repro dir: %w", err)
	}
	data, err := scenario.MarshalJSONSpec(f.Minimal)
	if err != nil {
		return fmt.Errorf("fuzzer: marshaling repro spec: %w", err)
	}
	f.SpecPath = filepath.Join(dir, f.Minimal.Name+".json")
	if err := os.WriteFile(f.SpecPath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("fuzzer: writing repro spec: %w", err)
	}
	f.ReportPath = filepath.Join(dir, f.Minimal.Name+".report.txt")
	if err := os.WriteFile(f.ReportPath, []byte(f.Report), 0o644); err != nil {
		return fmt.Errorf("fuzzer: writing repro report: %w", err)
	}
	return nil
}
