package fuzzer

import "testing"

// regressionsDir is the committed home of fuzzer-found minimal repro
// specs. It starts empty; every divergence the fuzzer finds (and a
// human fixes) leaves its shrunk spec here as a permanent gate.
const regressionsDir = "../../examples/regressions"

// TestRegressionSpecs replays every committed repro spec: each one
// once exposed a determinism violation, so after the fix it must
// uphold the byte-equality contract forever. A spec that diverges
// again is a regression of the exact bug it was minimized from.
func TestRegressionSpecs(t *testing.T) {
	specs, err := LoadDir(regressionsDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Log("no committed regression specs yet — the directory fills as the fuzzer finds real divergences")
		return
	}
	for _, ns := range specs {
		parts := []int{2, 3}
		if p := ns.Spec.Partitions; p > 1 {
			// Emitted repros carry the partition count that diverged;
			// replay exactly that mode.
			parts = []int{p}
		}
		div, err := CheckSpec(ns.Spec, parts, nil)
		if err != nil {
			t.Errorf("%s: failed to run: %v", ns.Path, err)
			continue
		}
		if div != nil {
			t.Errorf("%s: determinism regression reproduced:\n%s", ns.Path, div)
		}
	}
}
