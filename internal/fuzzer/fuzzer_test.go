package fuzzer

import (
	"os"
	"strings"
	"testing"

	"repro/internal/logical"
	"repro/internal/scenario"
)

// TestFuzzDeterminism is the go-test face of the fuzzer: a bounded,
// fixed-seed campaign on every test run. Each generated spec runs
// single-kernel vs federated across partition counts and GOMAXPROCS
// values; any divergence is shrunk and reported. -short trims the
// iteration count.
func TestFuzzDeterminism(t *testing.T) {
	iters := 24
	if testing.Short() {
		iters = 8
	}
	fail, err := Run(Options{
		Seed:            1,
		Iterations:      iters,
		PartitionCounts: []int{2, 3},
		Procs:           []int{1, 0},
		OutDir:          t.TempDir(),
		Log:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatalf("determinism violation (repro at %s):\n%s", fail.SpecPath, fail.Report)
	}
}

// TestFuzzFindsInjectedNondeterminism is the fuzzer's own acceptance
// gate: plant a deliberate nondeterminism bug (a map-iteration-order
// draw mixed into every compute response — see
// scenario.EnableChaosForTesting), and require the campaign to find
// it within the CI iteration budget, shrink it to a ≤ 4-platform
// spec, localize it to a named divergent trace event, and emit a
// parseable ready-to-commit repro.
func TestFuzzFindsInjectedNondeterminism(t *testing.T) {
	restore := scenario.EnableChaosForTesting()
	defer restore()

	dir := t.TempDir()
	fail, err := Run(Options{
		Seed:            7,
		Iterations:      50, // the CI budget; chaos should fall on the first spec
		PartitionCounts: []int{2, 3},
		OutDir:          dir,
		Log:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fail == nil {
		t.Fatal("injected nondeterminism not found within the iteration budget")
	}
	if fail.Minimal.Platforms > 4 {
		t.Errorf("shrunk repro has %d platforms, want ≤ 4", fail.Minimal.Platforms)
	}
	if fail.Div == nil || fail.Div.Div == nil {
		t.Fatalf("divergence not localized to a trace event: %+v", fail.Div)
	}
	if c := fail.Div.Div.Component(); c == "" {
		t.Error("first divergent event names no component")
	} else {
		t.Logf("divergence localized to component %s kind %s", c, fail.Div.Div.Kind())
	}
	if !strings.Contains(fail.Report, "first divergent event") {
		t.Errorf("repro report does not name the divergent event:\n%s", fail.Report)
	}

	// The emitted spec must be ready to commit: parseable, valid, and
	// carrying the failing partition count.
	data, err := os.ReadFile(fail.SpecPath)
	if err != nil {
		t.Fatalf("repro spec not written: %v", err)
	}
	spec, err := scenario.ParseSpec(data)
	if err != nil {
		t.Fatalf("repro spec does not parse: %v", err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("repro spec does not validate: %v", err)
	}
	if spec.Partitions < 2 {
		t.Errorf("repro spec carries no failing partition count: %d", spec.Partitions)
	}
	if _, err := os.Stat(fail.ReportPath); err != nil {
		t.Errorf("repro report not written: %v", err)
	}
}

// TestShrinkGreedy pins the shrinker's behaviour against a synthetic
// predicate: structure the divergence "needs" survives, everything
// else is stripped, and sizes are driven to their floors.
func TestShrinkGreedy(t *testing.T) {
	spec := Gen(3, 0)
	spec.Platforms = 12
	spec.Rounds = 6
	spec.Degree = 5
	spec.Partitions = 4
	spec.NoiseEvents, spec.NoiseInterval = 100, 50*logical.Microsecond
	spec.Crash = &scenario.CrashPlan{Platform: 9, At: logical.Time(logical.Millisecond)}
	spec.CallTimeout = 5 * logical.Millisecond
	for i := uint64(0); spec.Faults == nil; i++ {
		spec.Faults = Gen(1, i).Faults // any plan; the predicate only checks presence
	}

	// "The bug" reproduces iff a fault plan is installed and at least 3
	// platforms exist.
	pred := func(s scenario.Spec) (bool, error) {
		return s.Faults != nil && s.Platforms >= 3, nil
	}
	min := Shrink(spec, pred, 128)
	if min.Faults == nil {
		t.Error("shrinker dropped the fault plan the divergence needs")
	}
	if min.Platforms != 3 {
		t.Errorf("platforms shrunk to %d, want the predicate floor 3", min.Platforms)
	}
	if min.Crash != nil {
		t.Error("crash plan survived shrinking")
	}
	if min.NoiseEvents != 0 {
		t.Error("noise survived shrinking")
	}
	if min.Rounds != 1 {
		t.Errorf("rounds shrunk to %d, want 1", min.Rounds)
	}
	if min.Degree != 1 {
		t.Errorf("degree shrunk to %d, want 1", min.Degree)
	}
	if min.Partitions != 2 {
		t.Errorf("partitions shrunk to %d, want 2", min.Partitions)
	}
	if err := min.Validate(); err != nil {
		t.Errorf("shrunk spec invalid: %v", err)
	}
}

// FuzzSpecDeterminism is the native Go fuzz target: its corpus is the
// spec JSON codec, so the mutator explores the spec space through the
// same bytes a user's scenario file speaks. Sizes are clamped so one
// execution stays small; specs the clamp cannot make valid are
// skipped. Seed corpus: the fuzzer's first generated specs, committed
// under testdata/fuzz/FuzzSpecDeterminism/ (replayed on every plain
// `go test` run).
func FuzzSpecDeterminism(f *testing.F) {
	for i := uint64(0); i < 4; i++ {
		data, err := scenario.MarshalJSONSpec(Gen(1, i))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := scenario.ParseSpec(data)
		if err != nil {
			t.Skip("not a spec")
		}
		spec = clampForFuzz(spec)
		if spec.Validate() != nil {
			t.Skip("invalid spec")
		}
		div, err := CheckSpec(spec, []int{2, 3}, nil)
		if err != nil {
			t.Skipf("spec failed to run: %v", err)
		}
		if div != nil {
			t.Fatalf("determinism violation:\n%s", div)
		}
	})
}

// clampForFuzz bounds a mutated spec so one fuzz execution stays
// millisecond-scale: small platform/round/noise counts, durations
// capped, link latency floored (a nanosecond lookahead would make the
// conservative sync grind through millions of windows). The clamp
// preserves validity where it can and leaves genuinely invalid specs
// for Validate to reject.
func clampForFuzz(s scenario.Spec) scenario.Spec {
	clampInt := func(v *int, hi int) {
		if *v > hi {
			*v = hi
		}
	}
	clampDur := func(v *logical.Duration, hi logical.Duration) {
		if *v > hi {
			*v = hi
		}
	}
	clampInt(&s.Platforms, 8)
	clampInt(&s.Rounds, 4)
	clampInt(&s.NoiseEvents, 100)
	clampDur(&s.Gap, 2*logical.Millisecond)
	clampDur(&s.WorkBase, 2*logical.Millisecond)
	clampDur(&s.WorkSpread, 2*logical.Millisecond)
	clampDur(&s.SwitchDelay, 500*logical.Microsecond)
	clampDur(&s.NoiseInterval, 200*logical.Microsecond)
	clampDur(&s.CallTimeout, 20*logical.Millisecond)
	clampDur(&s.LinkLatency, 2*logical.Millisecond)
	// The link latency is the federation lookahead: a nanosecond value
	// under a tens-of-milliseconds horizon would force the conservative
	// sync through ~10⁶ grant windows, so the floor here is what bounds
	// one exec's wall clock, together with the time caps above.
	if s.LinkLatency > 0 && s.LinkLatency < 100*logical.Microsecond {
		s.LinkLatency = 100 * logical.Microsecond
	}
	if c := s.Crash; c != nil {
		cp := *c
		if cp.Platform >= s.Platforms {
			cp.Platform = s.Platforms - 1
		}
		if cp.At > logical.Time(40*logical.Millisecond) {
			cp.At = logical.Time(40 * logical.Millisecond)
		}
		if cp.RestartAt > logical.Time(50*logical.Millisecond) {
			cp.RestartAt = logical.Time(50 * logical.Millisecond)
		}
		clampInt(&cp.RebornRounds, 2)
		s.Crash = &cp
	}
	if f := s.Faults; f != nil {
		fp := *f
		if len(fp.Loss) > 4 {
			fp.Loss = fp.Loss[:4]
		}
		if len(fp.Partitions) > 4 {
			fp.Partitions = fp.Partitions[:4]
		}
		if len(fp.Jitter) > 4 {
			fp.Jitter = fp.Jitter[:4]
		}
		for i := range fp.Jitter {
			clampDur(&fp.Jitter[i].Extra, logical.Millisecond)
		}
		s.Faults = &fp
	}
	return s
}
