package fuzzer

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
)

// seedCorpusSize is the number of generated specs committed under
// testdata/fuzz/FuzzSpecDeterminism/ in Go's native corpus format.
// They seed the mutation engine and are replayed by every plain
// `go test` run of the fuzz target.
const seedCorpusSize = 8

const seedCorpusDir = "testdata/fuzz/FuzzSpecDeterminism"

// seedCorpusEntry renders spec i of the committed corpus in Go's
// "go test fuzz v1" encoding: one []byte literal holding the spec's
// canonical JSON.
func seedCorpusEntry(i uint64) ([]byte, error) {
	data, err := scenario.MarshalJSONSpec(Gen(1, i))
	if err != nil {
		return nil, err
	}
	return []byte(fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)), nil
}

// TestSeedCorpusFresh pins the committed seed corpus to the generator:
// every committed entry must be exactly what Gen(1, i) marshals to, so
// a generator change that silently invalidates the corpus fails here
// instead of quietly fuzzing from stale seeds. Regenerate with
//
//	FUZZER_WRITE_CORPUS=1 go test -run TestSeedCorpusFresh ./internal/fuzzer/
func TestSeedCorpusFresh(t *testing.T) {
	if os.Getenv("FUZZER_WRITE_CORPUS") != "" {
		if err := os.MkdirAll(seedCorpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < seedCorpusSize; i++ {
			entry, err := seedCorpusEntry(i)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(seedCorpusDir, fmt.Sprintf("seed-%03d", i))
			if err := os.WriteFile(path, entry, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("wrote %d corpus entries under %s", seedCorpusSize, seedCorpusDir)
		return
	}
	for i := uint64(0); i < seedCorpusSize; i++ {
		want, err := seedCorpusEntry(i)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(seedCorpusDir, fmt.Sprintf("seed-%03d", i))
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("seed corpus entry missing (regenerate with FUZZER_WRITE_CORPUS=1): %v", err)
		}
		if string(got) != string(want) {
			t.Errorf("%s is stale: generator output changed (regenerate with FUZZER_WRITE_CORPUS=1)", path)
		}
	}
}
