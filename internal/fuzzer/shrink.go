package fuzzer

import "repro/internal/scenario"

// A reduction move proposes a strictly smaller candidate spec, or
// reports that it no longer applies. Moves never mutate their input:
// shared pointers (fault plan, crash plan) are copied before editing.
type reduction struct {
	name  string
	apply func(scenario.Spec) (scenario.Spec, bool)
}

// reductions is the fixed, ordered move list the greedy shrinker
// cycles through. Order encodes priority: structure-removing moves
// (drop the fault plan, drop the crash) come before size-halving ones,
// and parameter zeroing comes last — a repro without a fault plan is
// worth more than one with two fewer platforms.
var reductions = []reduction{
	{"drop-faults", func(s scenario.Spec) (scenario.Spec, bool) {
		if s.Faults == nil {
			return s, false
		}
		s.Faults = nil
		return s, true
	}},
	{"drop-crash", func(s scenario.Spec) (scenario.Spec, bool) {
		if s.Crash == nil {
			return s, false
		}
		s.Crash = nil
		return s, true
	}},
	{"drop-monitors", func(s scenario.Spec) (scenario.Spec, bool) {
		if s.Monitors == nil {
			return s, false
		}
		s.Monitors = nil
		return s, true
	}},
	{"drop-restart", func(s scenario.Spec) (scenario.Spec, bool) {
		if s.Crash == nil || s.Crash.RestartAt == 0 {
			return s, false
		}
		cp := *s.Crash
		cp.RestartAt, cp.RebornRounds = 0, 0
		s.Crash = &cp
		return s, true
	}},
	{"drop-noise", func(s scenario.Spec) (scenario.Spec, bool) {
		if s.NoiseEvents == 0 {
			return s, false
		}
		s.NoiseEvents, s.NoiseInterval = 0, 0
		return s, true
	}},
	{"halve-platforms", func(s scenario.Spec) (scenario.Spec, bool) {
		if s.Platforms <= 2 {
			return s, false
		}
		s.Platforms = maxInt(2, s.Platforms/2)
		// Keep dependent fields valid: normalization caps the degree and
		// partition count, but a crash platform outside the new range is
		// a hard validation error, not a cap.
		if s.Crash != nil && s.Crash.Platform >= s.Platforms {
			cp := *s.Crash
			cp.Platform = s.Platforms - 1
			s.Crash = &cp
		}
		return s, true
	}},
	{"halve-rounds", func(s scenario.Spec) (scenario.Spec, bool) {
		if s.Rounds <= 1 {
			return s, false
		}
		s.Rounds = maxInt(1, s.Rounds/2)
		return s, true
	}},
	{"halve-partitions", func(s scenario.Spec) (scenario.Spec, bool) {
		if s.Partitions <= 2 {
			return s, false
		}
		s.Partitions = maxInt(2, s.Partitions/2)
		return s, true
	}},
	{"shrink-degree", func(s scenario.Spec) (scenario.Spec, bool) {
		if s.Degree <= 1 {
			return s, false
		}
		s.Degree = maxInt(1, s.Degree/2)
		return s, true
	}},
	{"ring-topology", func(s scenario.Spec) (scenario.Spec, bool) {
		if s.Topology == scenario.Ring {
			return s, false
		}
		s.Topology = scenario.Ring
		return s, true
	}},
	{"zero-work-spread", func(s scenario.Spec) (scenario.Spec, bool) {
		if s.WorkSpread == 0 {
			return s, false
		}
		s.WorkSpread = 0
		return s, true
	}},
	{"zero-switch-delay", func(s scenario.Spec) (scenario.Spec, bool) {
		if s.SwitchDelay == 0 {
			return s, false
		}
		s.SwitchDelay = 0
		return s, true
	}},
	{"zero-gap", func(s scenario.Spec) (scenario.Spec, bool) {
		if s.Gap == 0 {
			return s, false
		}
		s.Gap = 0
		return s, true
	}},
}

// Shrink greedily minimizes a diverging spec: it cycles through the
// reduction moves in order, re-normalizes each candidate, and keeps a
// candidate only when reproduces still reports the divergence. It
// stops after a full pass makes no progress or after budget candidate
// evaluations, returning the smallest spec that still diverges.
// Deterministic given a deterministic reproduces predicate; with a
// flaky bug (the usual kind) a false "does not reproduce" can only
// leave the result larger than optimal, never wrong.
func Shrink(spec scenario.Spec, reproduces func(scenario.Spec) (bool, error), budget int) scenario.Spec {
	cur := spec
	for progress := true; progress && budget > 0; {
		progress = false
		for _, m := range reductions {
			if budget <= 0 {
				break
			}
			cand, ok := m.apply(cur)
			if !ok {
				continue
			}
			norm, err := cand.Normalized()
			if err != nil {
				continue
			}
			budget--
			still, err := reproduces(norm)
			if err != nil || !still {
				continue
			}
			cur = norm
			progress = true
		}
	}
	return cur
}
