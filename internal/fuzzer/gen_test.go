package fuzzer

import (
	"reflect"
	"testing"

	"repro/internal/scenario"
)

// Every generated spec must be valid: the campaign treats a build
// failure as an infrastructure error, so Gen may never hand one over.
// Swept far past any campaign length CI runs.
func TestGenAlwaysValid(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		for i := uint64(0); i < 500; i++ {
			spec := Gen(seed, i)
			if err := spec.Validate(); err != nil {
				t.Fatalf("Gen(%d, %d) invalid: %v\nspec: %+v", seed, i, err, spec)
			}
		}
	}
}

// Gen is a pure function of (seed, index): same inputs, same spec —
// the property that lets a failure report name just two integers as
// its full provenance.
func TestGenDeterministic(t *testing.T) {
	for i := uint64(0); i < 50; i++ {
		a, b := Gen(42, i), Gen(42, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Gen(42, %d) not reproducible:\n%+v\nvs\n%+v", i, a, b)
		}
	}
	if reflect.DeepEqual(Gen(1, 7), Gen(2, 7)) {
		t.Error("different campaign seeds produced identical specs")
	}
}

// The generator must actually reach the edges it claims to be biased
// toward: the 2-platform floor, degree at its cap, zero noise, zero
// gap, fault plans, crash plans, restarts, and every topology shape.
func TestGenCoversEdges(t *testing.T) {
	const iters = 400
	shapes := map[scenario.Shape]bool{}
	var minPlatforms, degreeCap, zeroNoise, zeroGap, faulted, crashed, restarted, monitored int
	for i := uint64(0); i < iters; i++ {
		s := Gen(1, i)
		shapes[s.Topology] = true
		if s.Platforms == 2 {
			minPlatforms++
		}
		if s.Degree == s.Platforms-1 {
			degreeCap++
		}
		if s.NoiseEvents == 0 {
			zeroNoise++
		}
		if s.Gap == 0 {
			zeroGap++
		}
		if s.Faults != nil {
			faulted++
		}
		if s.Crash != nil {
			crashed++
			if s.Crash.RestartAt > s.Crash.At {
				restarted++
			}
		}
		if s.Monitors != nil {
			monitored++
		}
	}
	for name, count := range map[string]int{
		"2-platform floor": minPlatforms, "degree cap": degreeCap,
		"zero noise": zeroNoise, "zero gap": zeroGap,
		"fault plan": faulted, "crash plan": crashed, "restart": restarted,
		"monitors": monitored,
	} {
		if count < iters/20 {
			t.Errorf("edge %q reached only %d/%d times", name, count, iters)
		}
	}
	for _, shape := range genShapes {
		if !shapes[shape] {
			t.Errorf("shape %s never generated", shape)
		}
	}
}
