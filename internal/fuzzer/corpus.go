package fuzzer

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/scenario"
)

// NamedSpec is a spec loaded from a directory of JSON scenario files.
type NamedSpec struct {
	// Path is the file the spec was parsed from.
	Path string
	// Spec is the parsed (unnormalized) spec.
	Spec scenario.Spec
}

// LoadDir parses every *.json file under dir as a scenario spec,
// sorted by file name. Non-JSON files (the directory README, emitted
// *.report.txt divergence reports) are ignored; a JSON file that fails
// to parse or validate is an error — a committed repro must stay
// runnable. A missing or empty directory yields an empty slice: the
// regressions directory starts empty and fills as the fuzzer finds
// (and a human commits) real divergences.
func LoadDir(dir string) ([]NamedSpec, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fuzzer: reading spec dir: %w", err)
	}
	var specs []NamedSpec
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		spec, err := scenario.ParseSpec(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		specs = append(specs, NamedSpec{Path: path, Spec: spec})
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Path < specs[j].Path })
	return specs, nil
}
