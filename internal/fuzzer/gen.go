// Package fuzzer turns the repo's determinism contract into a
// searchable property. The hand-written byte-equality gates (E4,
// E10–E14) only guard the scenarios someone thought to write down;
// this package generates valid scenario.Specs from a seeded,
// counter-based stream, runs each one single-kernel vs federated
// (sweeping partition counts and GOMAXPROCS) through
// exp.CompareSpecModes, and — on a violation — greedily shrinks the
// spec to a minimal reproducer while trace.FirstDivergence still
// names a divergent event, emitting the result as ready-to-commit
// JSON plus a divergence report.
//
// Three entry points share the engine:
//
//   - TestFuzzDeterminism (fuzzer_test.go): a bounded seeded campaign
//     on every `go test` run (-short trims it).
//   - FuzzSpecDeterminism (fuzzer_test.go): a native Go fuzz target
//     whose corpus is the spec JSON codec — mutation explores the
//     spec space structurally.
//   - cmd/experiments -fuzz <n> -seed <s>: long offline campaigns.
//
// Everything is deterministic: spec i of a campaign keyed by seed s is
// a pure function of (s, i) via des.Mix3, so a campaign replays
// exactly and a failure names the (seed, index) that found it.
package fuzzer

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/scenario"
	"repro/internal/simnet"
)

// draw is the counter-based value stream for one generated spec: the
// j-th draw of spec i under campaign seed s is des.Mix3(s, i, j). No
// sequential RNG state escapes a spec, so generation order never
// matters and any index can be regenerated in isolation.
type draw struct {
	seed, index, ctr uint64
}

func (d *draw) next() uint64 {
	v := des.Mix3(d.seed, d.index, d.ctr)
	d.ctr++
	return v
}

func (d *draw) intn(n int) int { return int(d.next() % uint64(n)) }

func (d *draw) chance(p float64) bool { return des.UnitFloat64(d.next()) < p }

// pick returns one of the listed values; repeating a value weights it.
func pick[T any](d *draw, vals ...T) T { return vals[d.intn(len(vals))] }

// genShapes is the generator's shape pool: every Spec shape plus Full,
// which the sweep order in scenario.Shapes omits but validation
// permits — exactly the kind of edge the fuzzer exists to cover.
var genShapes = append([]scenario.Shape{scenario.Full}, scenario.Shapes...)

// Gen returns the i-th generated spec of the campaign keyed by seed.
// Every returned spec is valid (Gen is pinned by test to never produce
// a Validate error) and deliberately biased toward the edges
// validation permits: the 2-platform minimum, degree at its cap,
// zero noise, zero gap and zero work-spread, link latencies small
// enough that traffic runs dense against the federation lookahead,
// fault windows aligned with the traffic horizon, and crashes at
// link-latency boundaries — where conservative-sync bookkeeping is
// most likely to betray a mode dependence.
func Gen(seed, i uint64) scenario.Spec {
	d := &draw{seed: seed, index: i}

	// Small platform counts dominate: they are cheap, they shrink fast,
	// and a mode dependence that needs many platforms to manifest is
	// rare compared to one that needs a particular interaction shape.
	n := pick(d, 2, 2, 3, 3, 4, 4, 5, 6, 8, 12)
	shape := pick(d, genShapes...)
	degree := pick(d, 1, 1+d.intn(maxInt(1, n-1)), n-1) // floor, random, cap

	spec := scenario.Spec{
		Name:        fmt.Sprintf("fuzz-s%d-i%d", seed, i),
		Platforms:   n,
		Topology:    shape,
		Degree:      degree,
		Partitions:  pick(d, 2, 2, 3, 4),
		Seed:        d.next(),
		Rounds:      pick(d, 1, 1, 2, 2, 3, 4, 6),
		Gap:         pick[logical.Duration](d, 0, 0, 200, 500, 800) * logical.Microsecond,
		WorkBase:    pick[logical.Duration](d, 0, 10, 20) * logical.Microsecond,
		WorkSpread:  pick[logical.Duration](d, 0, 0, 40, 120) * logical.Microsecond,
		LinkLatency: pick[logical.Duration](d, 50, 100, 200, 350) * logical.Microsecond,
		SwitchDelay: pick[logical.Duration](d, 0, 0, 10, 20) * logical.Microsecond,
	}
	if d.chance(0.5) {
		spec.NoiseEvents = pick(d, 10, 40, 120)
		spec.NoiseInterval = pick[logical.Duration](d, 20, 50) * logical.Microsecond
	}

	// A rough per-round traffic horizon anchors fault windows and crash
	// times where traffic actually flows: one blocking call costs two
	// link traversals plus the server's work model, a round issues up to
	// `degree` of them, and rounds are separated by the gap.
	oneWay := spec.LinkLatency + spec.SwitchDelay
	round := logical.Duration(degree)*(2*oneWay+spec.WorkBase+spec.WorkSpread) + spec.Gap
	horizon := logical.Duration(spec.Rounds) * round

	faulty := false
	if d.chance(0.45) {
		plan := &simnet.FaultPlan{Seed: d.next()}
		plan.DropRate = pick(d, 0, 0, 0.01, 0.05, 0.1)
		if d.chance(0.5) {
			from := logical.Time(d.intn(int(horizon) + 1))
			plan.Loss = []simnet.LossWindow{{
				From: from,
				To:   from + logical.Time(horizon/2+1),
				Rate: pick(d, 0.3, 0.5, 1.0),
			}}
		}
		if d.chance(0.3) {
			// Isolate a small host group for a slice of the horizon; the
			// empty GroupB means "everyone else".
			group := []uint16{uint16(scenario.HostID(d.intn(n)))}
			from := logical.Time(d.intn(int(horizon) + 1))
			plan.Partitions = []simnet.PartitionWindow{{
				From:   from,
				To:     from + logical.Time(horizon/3+1),
				GroupA: group,
			}}
		}
		if d.chance(0.4) {
			plan.Jitter = []simnet.JitterBurst{{
				From:  0,
				To:    logical.Time(horizon + 1),
				Extra: pick[logical.Duration](d, 50, 150, 300) * logical.Microsecond,
			}}
		}
		faulty = plan.DropRate > 0 || len(plan.Loss) > 0 || len(plan.Partitions) > 0
		if faulty || len(plan.Jitter) > 0 {
			spec.Faults = plan
		}
	}

	crashed := false
	if d.chance(0.35) {
		crashed = true
		cp := &scenario.CrashPlan{Platform: d.intn(n)}
		// Crash-at-boundary bias: most crash instants land on an exact
		// multiple of the one-way link latency — the federation's
		// lookahead quantum, where a window-edge bookkeeping bug would
		// show — with a plain horizon draw as the fallback.
		if d.chance(0.7) && oneWay > 0 {
			cp.At = logical.Time(oneWay) * logical.Time(1+d.intn(maxInt(1, int(horizon/oneWay))))
		} else {
			cp.At = logical.Time(1 + d.intn(int(horizon)+1))
		}
		if d.chance(0.5) {
			cp.RestartAt = cp.At + logical.Time(oneWay)*logical.Time(1+d.intn(4))
			cp.RebornRounds = pick(d, 0, 1, 2)
		}
		spec.Crash = cp
	}

	// Lost calls must fail observably: a timeout is mandatory whenever
	// packets can vanish, and worth fuzzing on its own the rest of the
	// time (expiry racing a late response is an ordering edge).
	if faulty || crashed || d.chance(0.3) {
		spec.CallTimeout = pick[logical.Duration](d, 2, 5, 20) * logical.Millisecond
	}

	// Monitor-bearing specs make CompareSpecModes compare verdict
	// streams alongside reports and traces, so online-verification
	// determinism is fuzz-checked like everything else. Deadlines are
	// drawn tight and loose on purpose: violated runs are just as valid
	// a determinism subject as clean ones — the verdict bytes must
	// agree across modes either way.
	if d.chance(0.4) {
		m := &scenario.MonitorSpec{}
		if d.chance(0.7) {
			m.NoSilentCorruption = true
		}
		if d.chance(0.7) {
			m.RespondedWithin = pick[logical.Duration](d, 1, 2, 5, 20) * logical.Millisecond
		}
		if d.chance(0.5) {
			m.ReboundWithin = pick[logical.Duration](d, 1, 2, 8) * logical.Millisecond
		}
		// An all-zero block would normalize away; keep the spec as a
		// user could have written it.
		if m.NoSilentCorruption || m.RespondedWithin > 0 || m.ReboundWithin > 0 {
			spec.Monitors = m
		}
	}
	return spec
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
