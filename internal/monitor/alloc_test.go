package monitor

import (
	"testing"

	"repro/internal/logical"
	"repro/internal/trace"
)

// hotEngine builds the standard safety library engine and primes it:
// every component seen once (seq map populated), every obligation
// queue grown to its steady-state capacity.
func hotEngine() (*Engine, *logical.Time) {
	e := NewEngine(
		NoSilentCorruption(),
		RespondedWithin(logical.Duration(time10ms)),
		ReboundWithin(logical.Duration(time10ms)),
	)
	now := new(logical.Time)
	step := func(component, kind string) {
		*now++
		e.TraceEvent(*now, component, kind, hotPayload)
	}
	// Prime: one full req/call cycle plus a serve per component.
	for _, c := range hotComponents {
		step(c, trace.KindReq)
		step(c, trace.KindCall)
		step(c, trace.KindServe)
	}
	return e, now
}

const time10ms = 10 * int64(logical.Millisecond)

var (
	hotComponents = []string{"plat00.client", "plat01.client", "plat00.server"}
	hotPayload    = []byte{1, 2, 3, 4, 5, 6, 7, 8}
)

// The engine's hot path must be allocation-free once warm: it sits on
// every kernel's trace hook, and a per-event allocation would both
// slow the simulation and (worse) make monitoring observable through
// GC-driven goroutine scheduling in live runs.
func TestMonitorZeroAllocs(t *testing.T) {
	e, now := hotEngine()
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		c := hotComponents[i%len(hotComponents)]
		i++
		*now++
		e.TraceEvent(*now, c, trace.KindReq, hotPayload)
		*now++
		e.TraceEvent(*now, c, trace.KindCall, hotPayload)
		*now++
		e.TraceEvent(*now, c, trace.KindServe, hotPayload)
	})
	if allocs != 0 {
		t.Fatalf("monitor hot path allocates %.1f allocs per 3 events, want 0", allocs)
	}
	e.Finish()
	for _, v := range e.Verdicts() {
		if !v.OK() {
			t.Fatalf("healthy hot-path stream tripped %s:\n%s", v.Monitor, Report(e.Verdicts()))
		}
	}
}

// BenchmarkMonitor measures the per-event cost of the full standard
// library on the trace hook. Run with -benchmem: the allocs/op column
// must be 0.
func BenchmarkMonitor(b *testing.B) {
	e, now := hotEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := hotComponents[i%len(hotComponents)]
		*now++
		e.TraceEvent(*now, c, trace.KindReq, hotPayload)
		*now++
		e.TraceEvent(*now, c, trace.KindCall, hotPayload)
		*now++
		e.TraceEvent(*now, c, trace.KindServe, hotPayload)
	}
}
