// Package monitor is the online runtime-verification layer: temporal
// safety monitors evaluated against the per-kernel trace stream *as it
// is recorded*, not post-hoc. It turns the repo's determinism story
// into an observability story — the same properties the offline gates
// check after a run, a monitor Engine checks while the run happens,
// against a simulated kernel or a live physical-time run over UDP.
//
// The layer has three parts:
//
//   - An Engine (engine.go) that taps the des.Tracer hook. It
//     satisfies both des.Tracer and trace.Tap structurally, so it
//     composes with the existing trace.Recorder through des.TeeTracer
//     (simulated runs) or Recorder.SetTap (live RecordingEndpoint
//     runs) — recording and monitoring observe the identical stream.
//     The hot path performs zero allocations after the first sight of
//     each component (TestMonitorZeroAllocs), matching the recorder.
//
//   - Property combinators (combinators.go): Always, Never, and
//     MatchedWithin(open, close, d) — every open-kind event must be
//     matched by a close-kind event of the same component within a
//     deadline. RespondedWithin, ReboundWithin and NoSilentCorruption
//     instantiate the ROADMAP's three standard safety properties on
//     top of them.
//
//   - Verdicts: per-monitor violation counts, a commutative violation
//     hash, and a bounded sample of canonically-smallest violations.
//
// Verdicts are mode-independent by construction, for the same reason
// canonical traces are: every monitor factors per component. A
// component lives on exactly one kernel of a federation, its record
// stream (time, seq order) is identical in every execution mode, and
// no monitor couples state across components. Merging per-engine
// verdicts (MergeVerdicts) therefore sums counts, adds hashes
// (commutative, so partition order is irrelevant) and unions violation
// samples into exactly the verdict a single-kernel run produces —
// byte-identical across partition counts and GOMAXPROCS, which the E16
// sweep gates. End-of-stream flushing flags *all* still-pending
// obligations unconditionally: "unresolved at end of run" is a pure
// function of the per-component streams, whereas an engine-local end
// time is not.
package monitor

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/logical"
	"repro/internal/trace"
)

// maxSamples bounds the violations stored per verdict. Each engine
// keeps its canonically-smallest maxSamples violations, so the union
// of per-partition samples always contains the globally smallest
// maxSamples — merged samples are mode-independent.
const maxSamples = 8

// Violation is one detected property breach, anchored at the record
// that opened (or constitutes) the breached obligation — an anchor
// every execution mode agrees on, unlike the engine-local moment of
// detection. The (Time, Component, Seq) triple identifies the
// anchoring trace record.
type Violation struct {
	// Monitor names the breached monitor.
	Monitor string `json:"monitor"`
	// Time is the logical time of the anchoring record.
	Time logical.Time `json:"atNs"`
	// Component is the anchoring record's component label.
	Component string `json:"component"`
	// Seq is the anchoring record's component-local sequence number.
	Seq uint64 `json:"seq"`
	// Kind is the anchoring record's event kind.
	Kind string `json:"kind"`
	// Detail explains the breach. It is a pure function of the record
	// stream (deadlines, kinds), never of engine-local state.
	Detail string `json:"detail"`
}

// String renders the violation canonically — also the input to the
// verdict hash, so it must stay deterministic.
func (v *Violation) String() string {
	return fmt.Sprintf("%s: t=%d %s#%d %s: %s",
		v.Monitor, int64(v.Time), v.Component, v.Seq, v.Kind, v.Detail)
}

// less orders violations canonically: (time, component, seq, monitor).
// Within one monitor each obligation anchors at most one violation, so
// the order is total over a verdict's violations.
func (v *Violation) less(o *Violation) bool {
	if v.Time != o.Time {
		return v.Time < o.Time
	}
	if v.Component != o.Component {
		return v.Component < o.Component
	}
	if v.Seq != o.Seq {
		return v.Seq < o.Seq
	}
	return v.Monitor < o.Monitor
}

// Verdict is one monitor's accumulated result: how many obligations it
// checked, how many were violated, a commutative hash over all
// violations, and the canonically-smallest sample of them. Everything
// in a Verdict is mode-independent (see the package comment).
type Verdict struct {
	// Monitor names the monitor this verdict belongs to.
	Monitor string `json:"monitor"`
	// Checked counts obligations examined (records for Always/Never,
	// opened obligations for MatchedWithin).
	Checked uint64 `json:"checked"`
	// Violations counts breaches.
	Violations uint64 `json:"violations"`
	// Hash is the mod-2^64 sum of the FNV-1a digests of every
	// violation's canonical rendering. Addition commutes, so hashes of
	// per-partition engines merge into the single-kernel hash
	// regardless of partition order.
	Hash uint64 `json:"hash"`
	// Samples holds the canonically-smallest violations, at most
	// maxSamples, in canonical order.
	Samples []Violation `json:"samples,omitempty"`
}

// OK reports whether the monitor saw no violation.
func (v *Verdict) OK() bool { return v.Violations == 0 }

// Reporter accumulates one monitor's verdict. Monitors call Check for
// every examined obligation and Violate for every breach; the engine
// owns one Reporter per monitor.
type Reporter struct {
	v Verdict
}

// Check counts one examined obligation.
func (rp *Reporter) Check() { rp.v.Checked++ }

// Violate records one breach: count, commutative hash contribution,
// and insertion into the canonically-smallest sample set. Insertion
// keeps the smallest maxSamples regardless of arrival order, so
// end-of-stream flushes may iterate Go maps freely.
func (rp *Reporter) Violate(viol Violation) {
	rp.v.Violations++
	rp.v.Hash += trace.Digest([]byte(viol.String()))
	s := rp.v.Samples
	i := sort.Search(len(s), func(i int) bool { return viol.less(&s[i]) })
	if i == len(s) {
		if len(s) < maxSamples {
			rp.v.Samples = append(s, viol)
		}
		return
	}
	if len(s) < maxSamples {
		s = append(s, Violation{})
	}
	copy(s[i+1:], s[i:])
	s[i] = viol
	rp.v.Samples = s
}

// Monitor is one temporal safety property evaluated online. A monitor
// is stateful and single-use: build fresh instances per engine (each
// partition kernel of a federation gets its own). Implementations must
// never couple state across components — per-component factoring is
// what makes verdicts mode-independent.
type Monitor interface {
	// Name identifies the monitor; verdicts merge by name.
	Name() string
	// Observe feeds one record in the component's stream order.
	Observe(r *trace.Record, rep *Reporter)
	// Flush flags every obligation still pending at end of stream
	// ("unresolved at end of run" — see the package comment for why
	// this is unconditional).
	Flush(rep *Reporter)
}

// MergeVerdicts combines per-engine verdict slices — typically one per
// partition kernel — into the verdicts a single engine observing the
// whole stream would produce: counts sum, hashes add, and sample sets
// union down to the canonically-smallest maxSamples. Verdicts merge by
// monitor name, in first-appearance order; every engine built from the
// same spec yields the same names in the same order.
func MergeVerdicts(groups ...[]Verdict) []Verdict {
	var out []Verdict
	index := make(map[string]int)
	for _, g := range groups {
		for i := range g {
			v := &g[i]
			j, ok := index[v.Monitor]
			if !ok {
				index[v.Monitor] = len(out)
				out = append(out, Verdict{Monitor: v.Monitor})
				j = len(out) - 1
			}
			m := &out[j]
			m.Checked += v.Checked
			m.Violations += v.Violations
			m.Hash += v.Hash
			m.Samples = append(m.Samples, v.Samples...)
		}
	}
	for i := range out {
		s := out[i].Samples
		sort.Slice(s, func(a, b int) bool { return s[a].less(&s[b]) })
		if len(s) > maxSamples {
			s = s[:maxSamples]
		}
		out[i].Samples = s
	}
	return out
}

// Report renders verdicts canonically — one line per monitor plus its
// sampled violations — for byte-equality comparison across execution
// modes and for human diagnostics.
func Report(verdicts []Verdict) string {
	var b strings.Builder
	for i := range verdicts {
		v := &verdicts[i]
		fmt.Fprintf(&b, "monitor %s checked=%d violations=%d hash=%016x\n",
			v.Monitor, v.Checked, v.Violations, v.Hash)
		for j := range v.Samples {
			fmt.Fprintf(&b, "  violation %s\n", v.Samples[j].String())
		}
	}
	return b.String()
}

// FirstViolation returns the canonically-smallest violation across all
// verdicts, or nil when every monitor is satisfied. Because each
// verdict's samples are the canonically-smallest of its violations,
// this is the globally first breach in canonical trace order — the
// record a trace-prefix dump cuts at.
func FirstViolation(verdicts []Verdict) *Violation {
	var first *Violation
	for i := range verdicts {
		for j := range verdicts[i].Samples {
			v := &verdicts[i].Samples[j]
			if first == nil || v.less(first) {
				first = v
			}
		}
	}
	if first == nil {
		return nil
	}
	out := *first
	return &out
}

// TotalViolations sums the violation counts across verdicts.
func TotalViolations(verdicts []Verdict) uint64 {
	var n uint64
	for i := range verdicts {
		n += verdicts[i].Violations
	}
	return n
}

// ViolationPrefix cuts a canonical trace at a violation's anchoring
// record (inclusive): every record canonically at or before (Time,
// Component, Seq) survives. The prefix is the replayable artifact a
// violated recording run dumps — Evaluate over it reproduces the
// violation (see the containment contract in DESIGN.md: truncation may
// additionally flush other components' in-flight obligations, so
// replay asserts the dumped violation is *contained* in the replayed
// verdicts, not that it is the unique first).
func ViolationPrefix(t *trace.Trace, v *Violation) *trace.Trace {
	out := &trace.Trace{Truncated: t.Truncated}
	for i := range t.Records {
		r := &t.Records[i]
		if r.Time > v.Time {
			break
		}
		if r.Time == v.Time {
			if r.Component > v.Component {
				break
			}
			if r.Component == v.Component && r.Seq > v.Seq {
				break
			}
		}
		out.Records = append(out.Records, *r)
	}
	return out
}

// Evaluate runs fresh monitors over a canonical trace post-hoc and
// returns their verdicts — the offline twin of the online Engine, used
// to replay dumped violation prefixes. Within each component the
// canonical order equals the stream order the online engine saw, and
// monitors factor per component, so Evaluate over a complete trace
// produces exactly the online verdicts.
func Evaluate(t *trace.Trace, monitors ...Monitor) []Verdict {
	e := NewEngine(monitors...)
	for i := range t.Records {
		e.Observe(&t.Records[i])
	}
	e.Finish()
	return e.Verdicts()
}
