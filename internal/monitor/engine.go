package monitor

import (
	"sync"

	"repro/internal/logical"
	"repro/internal/trace"
)

// Engine feeds a trace stream to a set of monitors online. It
// satisfies des.Tracer and trace.Tap structurally (without importing
// either consumer), so it attaches to a simulated kernel via
// des.TeeTracer alongside a trace.Recorder, or to a live
// RecordingEndpoint stream via Recorder.SetTap — the identical engine
// in both worlds, which is what makes the layer observability rather
// than a test harness.
//
// The hot path mirrors the recorder's: one mutex, a per-component
// sequence map, and a scratch record reused across events — zero
// allocations once every component has been seen
// (TestMonitorZeroAllocs). Monitors run under the engine lock and must
// not call back into the engine or the kernel.
//
// An Engine (like its monitors) is single-use: under a federation each
// partition kernel gets its own engine, and MergeVerdicts folds the
// per-engine verdicts into the mode-independent whole.
type Engine struct {
	mu       sync.Mutex
	seqs     map[string]uint64
	scratch  trace.Record
	monitors []Monitor
	reps     []*Reporter
	done     bool
}

// NewEngine returns an engine evaluating the given monitors. Monitors
// are stateful — pass freshly built instances, never ones shared with
// another engine.
func NewEngine(monitors ...Monitor) *Engine {
	e := &Engine{
		seqs:     make(map[string]uint64),
		monitors: monitors,
		reps:     make([]*Reporter, len(monitors)),
	}
	for i, m := range monitors {
		e.reps[i] = &Reporter{v: Verdict{Monitor: m.Name()}}
	}
	return e
}

// TraceEvent is the des.Tracer / trace.Tap hook: it stamps the event
// with the component's next sequence number (mirroring the recorder's
// assignment, so anchors in verdicts name the same records a recorded
// trace holds) and feeds it to every monitor. Events arriving after
// Finish are ignored.
func (e *Engine) TraceEvent(at logical.Time, component, kind string, payload []byte) {
	d := trace.Digest(payload)
	e.mu.Lock()
	if e.done {
		e.mu.Unlock()
		return
	}
	seq := e.seqs[component] + 1
	e.seqs[component] = seq
	e.scratch = trace.Record{Time: at, Seq: seq, Component: component, Kind: kind, Digest: d}
	for i, m := range e.monitors {
		m.Observe(&e.scratch, e.reps[i])
	}
	e.mu.Unlock()
}

// Observe feeds an already-sequenced record (e.g. from a decoded trace
// during replay) to every monitor, bypassing sequence assignment.
func (e *Engine) Observe(r *trace.Record) {
	e.mu.Lock()
	if e.done {
		e.mu.Unlock()
		return
	}
	for i, m := range e.monitors {
		m.Observe(r, e.reps[i])
	}
	e.mu.Unlock()
}

// Finish flushes every monitor's pending obligations (flagging them as
// unresolved — see the package comment) and freezes the engine. It is
// idempotent; events arriving afterwards are dropped.
func (e *Engine) Finish() {
	e.mu.Lock()
	if !e.done {
		e.done = true
		for i, m := range e.monitors {
			m.Flush(e.reps[i])
		}
	}
	e.mu.Unlock()
}

// Verdicts returns a copy of every monitor's verdict, in registration
// order. Call Finish first for final verdicts; mid-run the verdicts
// reflect the stream so far (pending obligations not yet flagged).
func (e *Engine) Verdicts() []Verdict {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Verdict, len(e.reps))
	for i, rp := range e.reps {
		out[i] = rp.v
		out[i].Samples = append([]Violation(nil), rp.v.Samples...)
	}
	return out
}
