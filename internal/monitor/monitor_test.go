package monitor

import (
	"strings"
	"testing"

	"repro/internal/logical"
	"repro/internal/trace"
)

// feed pushes a synthetic event stream through a fresh engine and
// returns its finished verdicts.
func feed(t *testing.T, monitors func() []Monitor, recs []trace.Record) []Verdict {
	t.Helper()
	e := NewEngine(monitors()...)
	for i := range recs {
		r := &recs[i]
		e.TraceEvent(r.Time, r.Component, r.Kind, nil)
	}
	e.Finish()
	return e.Verdicts()
}

func rec(at int64, component, kind string) trace.Record {
	return trace.Record{Time: logical.Time(at), Component: component, Kind: kind}
}

// The Never combinator must flag exactly the forbidden records, with
// the anchor naming the violating record.
func TestNeverFlagsForbiddenKind(t *testing.T) {
	vs := feed(t, func() []Monitor { return []Monitor{NoSilentCorruption()} }, []trace.Record{
		rec(10, "plat00.server", trace.KindServe),
		rec(20, "plat00.server", trace.KindCorrupt),
		rec(30, "plat01.server", trace.KindServe),
	})
	v := vs[0]
	if v.Checked != 3 || v.Violations != 1 {
		t.Fatalf("checked=%d violations=%d, want 3/1", v.Checked, v.Violations)
	}
	s := v.Samples[0]
	if s.Time != 20 || s.Component != "plat00.server" || s.Kind != trace.KindCorrupt {
		t.Fatalf("violation anchored at %+v", s)
	}
}

// Always is Never's dual: every record must satisfy the predicate.
func TestAlwaysFlagsFailures(t *testing.T) {
	mon := func() []Monitor {
		return []Monitor{Always("serves-only", KindIs(trace.KindServe))}
	}
	vs := feed(t, mon, []trace.Record{
		rec(1, "a", trace.KindServe),
		rec(2, "a", trace.KindNoise),
	})
	if vs[0].Violations != 1 || vs[0].Samples[0].Kind != trace.KindNoise {
		t.Fatalf("verdict %+v", vs[0])
	}
}

// A request answered within the deadline discharges its obligation; a
// late answer and an unanswered request are both violations anchored
// at the opening request record.
func TestRespondedWithin(t *testing.T) {
	mon := func() []Monitor {
		return []Monitor{RespondedWithin(100)}
	}

	// In time: close at exactly open+d is fine.
	vs := feed(t, mon, []trace.Record{
		rec(0, "c", trace.KindReq),
		rec(100, "c", trace.KindCall),
	})
	if !vs[0].OK() || vs[0].Checked != 1 {
		t.Fatalf("in-time call flagged: %+v", vs[0])
	}

	// Late: the call-err lands past the deadline.
	vs = feed(t, mon, []trace.Record{
		rec(0, "c", trace.KindReq),
		rec(101, "c", trace.KindCallErr),
	})
	if vs[0].Violations != 1 {
		t.Fatalf("late close not flagged: %+v", vs[0])
	}
	if s := vs[0].Samples[0]; s.Time != 0 || s.Kind != trace.KindReq {
		t.Fatalf("violation not anchored at the open record: %+v", s)
	}

	// Unresolved at end of stream: flushed unconditionally.
	vs = feed(t, mon, []trace.Record{
		rec(0, "c", trace.KindReq),
	})
	if vs[0].Violations != 1 {
		t.Fatalf("pending obligation not flushed: %+v", vs[0])
	}
	if !strings.Contains(vs[0].Samples[0].Detail, "unresolved") {
		t.Fatalf("flush detail: %q", vs[0].Samples[0].Detail)
	}
}

// Obligations are per component: component b's answer must not
// discharge component a's request.
func TestMatchedWithinIsPerComponent(t *testing.T) {
	mon := func() []Monitor { return []Monitor{RespondedWithin(100)} }
	vs := feed(t, mon, []trace.Record{
		rec(0, "a", trace.KindReq),
		rec(10, "b", trace.KindCall), // close with no open: ignored
	})
	if vs[0].Violations != 1 {
		t.Fatalf("cross-component discharge: %+v", vs[0])
	}
}

// A restart followed by a late bind trips the rebound monitor; an
// in-time bind does not. Initial binds (no preceding restart) are
// ignored.
func TestReboundWithin(t *testing.T) {
	mon := func() []Monitor { return []Monitor{ReboundWithin(50)} }
	vs := feed(t, mon, []trace.Record{
		rec(0, "p.life", trace.KindBind), // initial offer: no obligation open
		rec(100, "p.life", trace.KindCrash),
		rec(200, "p.life", trace.KindRestart),
		rec(200, "p.life", trace.KindBind),
	})
	if !vs[0].OK() || vs[0].Checked != 1 {
		t.Fatalf("healthy lifecycle flagged: %+v", vs[0])
	}

	vs = feed(t, mon, []trace.Record{
		rec(200, "p.life", trace.KindRestart),
		rec(251, "p.life", trace.KindBind),
	})
	if vs[0].Violations != 1 || vs[0].Samples[0].Kind != trace.KindRestart {
		t.Fatalf("late bind not flagged at the restart: %+v", vs[0])
	}
}

// standardLib builds the full safety library with fixed deadlines.
func standardLib() []Monitor {
	return []Monitor{
		NoSilentCorruption(),
		RespondedWithin(100),
		ReboundWithin(50),
	}
}

// syntheticStream builds a multi-component stream with violations of
// every standard monitor, in canonical order.
func syntheticStream() []trace.Record {
	recs := []trace.Record{
		rec(0, "a", trace.KindReq),
		rec(5, "b", trace.KindReq),
		rec(50, "a", trace.KindCall),     // in time
		rec(120, "b", trace.KindCallErr), // late → violation anchored at t=5
		rec(130, "s", trace.KindCorrupt), // corruption violation
		rec(140, "p.life", trace.KindRestart),
		rec(300, "p.life", trace.KindBind), // late bind → violation at t=140
		rec(310, "a", trace.KindReq),       // unresolved → flush violation
	}
	// Assign per-component seqs the way a recorder would.
	seqs := map[string]uint64{}
	for i := range recs {
		seqs[recs[i].Component]++
		recs[i].Seq = seqs[recs[i].Component]
	}
	return recs
}

// Verdicts must be independent of how components are sharded across
// engines: one engine observing the whole stream and per-component
// engines merged must produce byte-identical reports — the heart of
// the mode-independence claim.
func TestMergeVerdictsMatchesSingleEngine(t *testing.T) {
	recs := syntheticStream()

	whole := NewEngine(standardLib()...)
	for i := range recs {
		whole.Observe(&recs[i])
	}
	whole.Finish()
	ref := whole.Verdicts()

	// Shard by component across three engines (arbitrary assignment),
	// feeding each engine its records in stream order.
	engines := []*Engine{
		NewEngine(standardLib()...),
		NewEngine(standardLib()...),
		NewEngine(standardLib()...),
	}
	part := map[string]int{"a": 0, "b": 1, "s": 2, "p.life": 1}
	for i := range recs {
		engines[part[recs[i].Component]].Observe(&recs[i])
	}
	groups := make([][]Verdict, len(engines))
	for i, e := range engines {
		e.Finish()
		groups[i] = e.Verdicts()
	}
	merged := MergeVerdicts(groups...)

	if Report(merged) != Report(ref) {
		t.Fatalf("merged verdicts diverge from single engine:\n--- single ---\n%s--- merged ---\n%s",
			Report(ref), Report(merged))
	}
	if TotalViolations(ref) != 4 {
		t.Fatalf("synthetic stream should trip 4 violations, got %d:\n%s",
			TotalViolations(ref), Report(ref))
	}
}

// FirstViolation returns the canonically smallest violation; the
// verdict hash must not depend on the order violations were reported.
func TestFirstViolationAndHashOrderIndependence(t *testing.T) {
	recs := syntheticStream()
	ref := Evaluate(&trace.Trace{Records: recs}, standardLib()...)
	first := FirstViolation(ref)
	if first == nil || first.Time != 5 || first.Component != "b" {
		t.Fatalf("first violation = %+v, want the t=5 late request", first)
	}

	// Report the same violations into reporters in two different
	// orders: hash, counts and samples must agree.
	vs := []Violation{
		{Monitor: "m", Time: 3, Component: "x", Seq: 1, Kind: "k", Detail: "d1"},
		{Monitor: "m", Time: 1, Component: "y", Seq: 2, Kind: "k", Detail: "d2"},
		{Monitor: "m", Time: 2, Component: "z", Seq: 3, Kind: "k", Detail: "d3"},
	}
	a, b := &Reporter{v: Verdict{Monitor: "m"}}, &Reporter{v: Verdict{Monitor: "m"}}
	for _, v := range vs {
		a.Violate(v)
	}
	for i := len(vs) - 1; i >= 0; i-- {
		b.Violate(vs[i])
	}
	ra := Report([]Verdict{a.v})
	rb := Report([]Verdict{b.v})
	if ra != rb {
		t.Fatalf("reporter is insertion-order-dependent:\n%s\nvs\n%s", ra, rb)
	}
	if a.v.Samples[0].Time != 1 {
		t.Fatalf("samples not canonically ordered: %+v", a.v.Samples)
	}
}

// The sample set keeps the canonically smallest maxSamples violations
// regardless of insertion order.
func TestSampleCapKeepsSmallest(t *testing.T) {
	rp := &Reporter{v: Verdict{Monitor: "m"}}
	for i := 20; i >= 1; i-- {
		rp.Violate(Violation{Monitor: "m", Time: logical.Time(i), Component: "c", Seq: uint64(i)})
	}
	if len(rp.v.Samples) != maxSamples {
		t.Fatalf("sample count %d, want %d", len(rp.v.Samples), maxSamples)
	}
	for i, s := range rp.v.Samples {
		if s.Time != logical.Time(i+1) {
			t.Fatalf("sample %d anchored at t=%d, want %d", i, int64(s.Time), i+1)
		}
	}
}

// ViolationPrefix cuts the trace at the violation's anchor inclusive,
// and re-evaluating the prefix reproduces the violation (containment:
// truncation-flushed obligations of other components may rank before
// it, but the dumped violation itself must be present).
func TestViolationPrefixRoundTrip(t *testing.T) {
	recs := syntheticStream()
	tr := &trace.Trace{Records: recs}
	ref := Evaluate(tr, standardLib()...)
	first := FirstViolation(ref)

	prefix := ViolationPrefix(tr, first)
	last := prefix.Records[len(prefix.Records)-1]
	if last.Time != first.Time || last.Component != first.Component || last.Seq != first.Seq {
		t.Fatalf("prefix does not end at the violation anchor: %+v vs %+v", last, first)
	}

	replayed := Evaluate(prefix, standardLib()...)
	found := false
	for i := range replayed {
		for j := range replayed[i].Samples {
			s := &replayed[i].Samples[j]
			if s.Monitor == first.Monitor && s.Time == first.Time &&
				s.Component == first.Component && s.Seq == first.Seq {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("replayed prefix lost the dumped violation %+v:\n%s", first, Report(replayed))
	}

	// Replay determinism: evaluating the same prefix twice is
	// byte-identical.
	if Report(Evaluate(prefix, standardLib()...)) != Report(replayed) {
		t.Fatal("prefix evaluation is not deterministic")
	}
}

// Finish is idempotent and freezes the engine: later events must not
// change the verdicts.
func TestFinishIdempotentAndFreezing(t *testing.T) {
	e := NewEngine(NoSilentCorruption())
	e.TraceEvent(1, "c", trace.KindServe, nil)
	e.Finish()
	before := Report(e.Verdicts())
	e.Finish()
	e.TraceEvent(2, "c", trace.KindCorrupt, nil)
	if after := Report(e.Verdicts()); after != before {
		t.Fatalf("engine mutated after Finish:\n%s\nvs\n%s", before, after)
	}
}

// The engine assigns per-component sequence numbers exactly like the
// recorder, so violation anchors name recorded records.
func TestEngineSeqsMatchRecorder(t *testing.T) {
	e := NewEngine(NoSilentCorruption())
	r := trace.NewRecorder(16)
	events := []struct {
		at   int64
		comp string
		kind string
	}{
		{1, "a", trace.KindServe},
		{2, "b", trace.KindServe},
		{3, "a", trace.KindCorrupt},
	}
	for _, ev := range events {
		e.TraceEvent(logical.Time(ev.at), ev.comp, ev.kind, nil)
		r.TraceEvent(logical.Time(ev.at), ev.comp, ev.kind, nil)
	}
	e.Finish()
	v := e.Verdicts()[0].Samples[0]
	for _, recd := range r.Trace().Records {
		if recd.Component == v.Component && recd.Seq == v.Seq {
			if recd.Kind != trace.KindCorrupt {
				t.Fatalf("anchor (%s#%d) names a %s record", v.Component, v.Seq, recd.Kind)
			}
			return
		}
	}
	t.Fatalf("anchor (%s#%d) not found in the recorded trace", v.Component, v.Seq)
}
