package monitor

import (
	"fmt"

	"repro/internal/logical"
	"repro/internal/trace"
)

// Pred is a record predicate — the building block of Always and Never.
// Predicates must be pure functions of the record (never of shared
// state), or verdicts lose their mode-independence.
type Pred func(r *trace.Record) bool

// KindIs returns a predicate matching records of the given kind.
func KindIs(kind string) Pred {
	return func(r *trace.Record) bool { return r.Kind == kind }
}

// predMon implements Always (violate when the predicate fails) and
// Never (violate when it holds) over every observed record.
type predMon struct {
	name   string
	p      Pred
	negate bool // true for Never
	detail string
}

// Name identifies the monitor.
func (m *predMon) Name() string { return m.name }

// Observe checks the predicate against one record.
func (m *predMon) Observe(r *trace.Record, rep *Reporter) {
	rep.Check()
	if m.p(r) == m.negate {
		rep.Violate(Violation{
			Monitor: m.name, Time: r.Time, Component: r.Component,
			Seq: r.Seq, Kind: r.Kind, Detail: m.detail,
		})
	}
}

// Flush is a no-op: predicate monitors carry no pending obligations.
func (m *predMon) Flush(rep *Reporter) {}

// Always returns a monitor demanding that every record satisfies p.
func Always(name string, p Pred) Monitor {
	return &predMon{name: name, p: p, detail: "predicate violated"}
}

// Never returns a monitor demanding that no record satisfies p.
func Never(name string, p Pred) Monitor {
	return &predMon{name: name, p: p, negate: true, detail: "forbidden event observed"}
}

// obQueue is a per-component FIFO of open obligations awaiting their
// close. It mirrors the kernel free-list discipline: the backing slice
// is reused (head index instead of re-slicing, full reset when
// drained), so steady-state observation allocates nothing.
type obQueue struct {
	opens []trace.Record
	head  int
}

// matchedWithin demands that every openKind record of a component is
// followed by one of closeKinds on the same component within deadline
// d. Expiry is detected through the component's own stream: any record
// past an open's deadline flags it — a pure function of the
// per-component stream, so detection is mode-independent even though
// the engine-local detection *moment* is not. Obligations still open
// at end of stream are flushed unconditionally.
type matchedWithin struct {
	name       string
	openKind   string
	closeKinds []string
	d          logical.Duration
	pend       map[string]*obQueue
	lateDetail string
	openDetail string
}

// MatchedWithin returns a monitor demanding every openKind event be
// matched, on the same component, by one of the closeKinds within
// deadline d (close at exactly open+d is in time). RespondedWithin and
// ReboundWithin instantiate it; live endpoint streams can instantiate
// it over KindRecv/KindSend to monitor service turnaround — the same
// engine, unchanged, against a physical run.
func MatchedWithin(name, openKind string, closeKinds []string, d logical.Duration) Monitor {
	closes := ""
	for i, k := range closeKinds {
		if i > 0 {
			closes += "/"
		}
		closes += k
	}
	return &matchedWithin{
		name:       name,
		openKind:   openKind,
		closeKinds: append([]string(nil), closeKinds...),
		d:          d,
		pend:       make(map[string]*obQueue),
		lateDetail: fmt.Sprintf("no %s within %dns of %s", closes, int64(d), openKind),
		openDetail: fmt.Sprintf("%s unresolved at end of run", openKind),
	}
}

// Name identifies the monitor.
func (m *matchedWithin) Name() string { return m.name }

// isClose reports whether kind discharges an obligation. The close set
// is tiny (one or two kinds), so a linear scan beats any map.
func (m *matchedWithin) isClose(kind string) bool {
	for _, k := range m.closeKinds {
		if k == kind {
			return true
		}
	}
	return false
}

// violateAt flags the obligation anchored at open with the given
// detail.
func (m *matchedWithin) violateAt(open *trace.Record, detail string, rep *Reporter) {
	rep.Violate(Violation{
		Monitor: m.name, Time: open.Time, Component: open.Component,
		Seq: open.Seq, Kind: open.Kind, Detail: detail,
	})
}

// Observe advances the component's obligation queue: expired heads are
// flagged, an open record enqueues, a close record discharges the
// (unexpired) head.
func (m *matchedWithin) Observe(r *trace.Record, rep *Reporter) {
	q := m.pend[r.Component]
	if q != nil {
		for q.head < len(q.opens) {
			o := &q.opens[q.head]
			if r.Time <= o.Time.Add(m.d) {
				break
			}
			m.violateAt(o, m.lateDetail, rep)
			q.head++
		}
		if q.head == len(q.opens) {
			q.opens = q.opens[:0]
			q.head = 0
		}
	}
	switch {
	case r.Kind == m.openKind:
		rep.Check()
		if q == nil {
			q = &obQueue{}
			m.pend[r.Component] = q
		}
		q.opens = append(q.opens, *r)
	case m.isClose(r.Kind):
		if q != nil && q.head < len(q.opens) {
			q.head++
			if q.head == len(q.opens) {
				q.opens = q.opens[:0]
				q.head = 0
			}
		}
	}
}

// Flush flags every obligation still open, in whatever order the map
// yields — Reporter accumulation is insertion-order-independent.
func (m *matchedWithin) Flush(rep *Reporter) {
	for _, q := range m.pend {
		for i := q.head; i < len(q.opens); i++ {
			m.violateAt(&q.opens[i], m.openDetail, rep)
		}
		q.opens = q.opens[:0]
		q.head = 0
	}
}

// RespondedWithin returns the standard "answered-or-observably-timed-
// out within D" safety monitor: every issued request (KindReq) must be
// matched by a completed call (KindCall) or an observable failure
// (KindCallErr) of the same component within d. The deadline is
// embedded in the name so differently-parameterized instances merge
// separately.
func RespondedWithin(d logical.Duration) Monitor {
	return MatchedWithin(
		fmt.Sprintf("responded-within(%dns)", int64(d)),
		trace.KindReq, []string{trace.KindCall, trace.KindCallErr}, d)
}

// ReboundWithin returns the standard "re-bind within T of restart"
// safety monitor: every platform restart (KindRestart) must be
// followed by a service re-offer (KindBind) of the same lifecycle
// component within d.
func ReboundWithin(d logical.Duration) Monitor {
	return MatchedWithin(
		fmt.Sprintf("rebound-within(%dns)", int64(d)),
		trace.KindRestart, []string{trace.KindBind}, d)
}

// NoSilentCorruption returns the standard "no silent corruption ever"
// safety monitor: the KindCorrupt sentinel — an input that failed an
// integrity check without being structurally refused — must never
// appear in the stream.
func NoSilentCorruption() Monitor {
	return Never("no-silent-corruption", KindIs(trace.KindCorrupt))
}
