package des

import (
	"fmt"

	"repro/internal/logical"
)

type procState int

const (
	procNew procState = iota
	procRunnable
	procRunning
	procSleeping // blocked with a scheduled wake event
	procBlocked  // parked, waiting for an explicit Unpark
	procDone
)

// Killed is the panic value used to unwind a process goroutine during
// Kernel.Shutdown. Process bodies must let it propagate (a deferred
// recover must re-panic on it).
type Killed struct {
	// Name is the killed process's name.
	Name string
}

// Error renders the kill reason (Killed satisfies error so that test
// harnesses can match it).
func (k Killed) Error() string { return "des: process killed: " + k.Name }

// Process is a simulated thread of control. Its body runs on a dedicated
// goroutine but only while the kernel has handed it the baton, so at most
// one process (or the kernel itself) executes at any moment.
//
// All Process methods that block (Sleep, WaitUntil, Park, ...) must be
// called only from within the process's own body.
type Process struct {
	k      *Kernel
	name   string
	state  procState
	resume chan resumeSignal
	yield  chan struct{}
	wake   *Event // pending wake event while sleeping
	// wakeEv is the process's reusable wake-event storage: a process
	// sleeps at most once at a time, so its wake events (one per
	// Sleep/WaitUntil) recycle a single caller-owned Event through
	// Kernel.scheduleWake instead of allocating one per block.
	wakeEv Event
	// wakeFn is the cached dispatch closure shared by every wake event
	// (and the spawn event), allocated once per process.
	wakeFn func()
	// interruptible is set while the process blocks in an operation that
	// Interrupt may legitimately wake (WaitUntilInterruptible, Park).
	interruptible bool
	killed        bool
}

type resumeSignal struct {
	interrupted bool
	killed      bool
}

// Spawn creates a process and schedules its body to start at the current
// simulated time (after already-queued events at that time).
func (k *Kernel) Spawn(name string, body func(p *Process)) *Process {
	return k.SpawnAt(k.now, name, body)
}

// SpawnLocal creates a process like Spawn, with the additional
// declaration that the process — and everything it transitively
// schedules — never emits onto a federation channel. The declaration is
// enforced: Channel.Send panics if called while any of the process's
// events fire. In exchange, the federation coordinator excludes the
// process's events from the partition's earliest-output-time bound, so
// dense local-only activity (load generators, intra-platform traffic)
// stops throttling downstream partitions' grant windows.
//
// The mark is inherited by scheduling: the process's sleep/wake events,
// anything it schedules while holding the baton, and local datagram
// deliveries it triggers all become local automatically. A resume
// scheduled by a non-local event (a mailbox put from ordinary traffic,
// say) is not local — so only processes whose wakes all originate from
// their own timeline keep the full benefit.
func (k *Kernel) SpawnLocal(name string, body func(p *Process)) *Process {
	return k.spawnAt(k.now, name, body, true)
}

// SpawnAt creates a process whose body starts at simulated time t.
func (k *Kernel) SpawnAt(t logical.Time, name string, body func(p *Process)) *Process {
	return k.spawnAt(t, name, body, false)
}

func (k *Kernel) spawnAt(t logical.Time, name string, body func(p *Process), local bool) *Process {
	// The baton channels have capacity 1: strict alternation guarantees
	// at most one signal is ever in flight per direction, so a buffered
	// send completes without parking the sender — one goroutine handoff
	// per switch instead of two. Mutual exclusion is unchanged because
	// each side still blocks on its own receive before proceeding.
	p := &Process{
		k:      k,
		name:   name,
		state:  procNew,
		resume: make(chan resumeSignal, 1),
		yield:  make(chan struct{}, 1),
	}
	p.wakeFn = func() { p.dispatch(resumeSignal{}) }
	k.procs = append(k.procs, p)
	go func() {
		sig := <-p.resume
		if sig.killed {
			p.state = procDone
			p.yield <- struct{}{}
			return
		}
		p.state = procRunning
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(Killed); ok {
					p.state = procDone
					p.yield <- struct{}{}
					return
				}
				p.state = procDone
				// Hand the baton back before re-panicking so the kernel
				// does not deadlock; then crash loudly on this goroutine.
				p.yield <- struct{}{}
				panic(r)
			}
			p.state = procDone
			p.yield <- struct{}{}
		}()
		body(p)
	}()
	e := k.scheduleReuse(t, false, p.wakeFn, true)
	if local {
		e.local = true
	}
	return p
}

// dispatch hands the baton to the process and waits for it to block or
// finish. Called only from kernel context (inside a firing event).
func (p *Process) dispatch(sig resumeSignal) {
	if p.state == procDone {
		return
	}
	p.resume <- sig
	<-p.yield
}

// block yields the baton to the kernel and waits to be resumed. Returns
// the resume signal. Panics with Killed during kernel shutdown.
func (p *Process) block(st procState) resumeSignal {
	p.state = st
	p.yield <- struct{}{}
	sig := <-p.resume
	if sig.killed {
		panic(Killed{Name: p.name})
	}
	p.state = procRunning
	return sig
}

// kill unblocks the process goroutine with a termination signal. Called
// from kernel context during Shutdown.
func (p *Process) kill() {
	if p.state == procDone || p.killed {
		return
	}
	p.killed = true
	if p.wake != nil {
		p.wake.Cancel()
		p.wake = nil
	}
	p.resume <- resumeSignal{killed: true}
	<-p.yield
}

// Name returns the process name given at spawn time.
func (p *Process) Name() string { return p.name }

// Kernel returns the kernel this process runs on.
func (p *Process) Kernel() *Kernel { return p.k }

// Now returns the current simulated time.
func (p *Process) Now() logical.Time { return p.k.now }

// Done reports whether the process body has returned.
func (p *Process) Done() bool { return p.state == procDone }

// Sleep blocks the process for d of simulated time.
func (p *Process) Sleep(d logical.Duration) {
	p.WaitUntil(p.k.now.Add(d))
}

// WaitUntil blocks the process until simulated time t. It is immune to
// Interrupt: only its own scheduled wake event (or kernel shutdown) can
// resume a plain wait.
func (p *Process) WaitUntil(t logical.Time) {
	p.wake = p.k.scheduleWake(&p.wakeEv, t, p.wakeFn)
	p.block(procSleeping)
	p.wake = nil
}

// WaitUntilInterruptible blocks until simulated time t or until another
// process calls Interrupt, whichever comes first. It reports whether the
// wait was interrupted.
func (p *Process) WaitUntilInterruptible(t logical.Time) (interrupted bool) {
	p.wake = p.k.scheduleWake(&p.wakeEv, t, p.wakeFn)
	p.interruptible = true
	sig := p.block(procSleeping)
	p.interruptible = false
	if p.wake != nil {
		p.wake.Cancel()
		p.wake = nil
	}
	return sig.interrupted
}

// Interrupt wakes a process blocked in WaitUntilInterruptible or Park
// before its scheduled time. The wake is delivered as a kernel event at
// the current simulated time, preserving deterministic ordering. It is a
// no-op if the process is not blocked in an interruptible operation at
// delivery time.
func (p *Process) Interrupt() {
	p.k.AtTransientFn(p.k.now, interruptFn, p)
}

// interruptFn is the package-level delivery body of Interrupt: scheduled
// closure-free with the target process as the event argument.
func interruptFn(a any) {
	p := a.(*Process)
	if !p.interruptible {
		return
	}
	if p.state != procSleeping && p.state != procBlocked {
		return
	}
	if p.wake != nil {
		p.wake.Cancel()
		p.wake = nil
	}
	p.dispatch(resumeSignal{interrupted: true})
}

// Park blocks the process indefinitely until some other process or event
// calls Unpark (or Interrupt). It reports whether it was woken by
// Interrupt rather than Unpark.
func (p *Process) Park() (interrupted bool) {
	p.interruptible = true
	sig := p.block(procBlocked)
	p.interruptible = false
	return sig.interrupted
}

// Unpark wakes a parked process at the current simulated time. No-op if
// the process is not parked when the wake event fires.
func (p *Process) Unpark() {
	p.k.AtTransientFn(p.k.now, unparkFn, p)
}

// unparkFn is the package-level delivery body of Unpark: scheduled
// closure-free with the target process as the event argument (a pointer,
// so boxing it into the event's arg slot allocates nothing).
func unparkFn(a any) {
	p := a.(*Process)
	if p.state != procBlocked {
		return
	}
	p.dispatch(resumeSignal{})
}

// Yield gives other events scheduled at the current time a chance to run
// before the process continues (equivalent to WaitUntil(now)).
func (p *Process) Yield() { p.WaitUntil(p.k.now) }

// String identifies the process by name for diagnostics.
func (p *Process) String() string {
	return fmt.Sprintf("process(%s)", p.name)
}
