package des

import (
	"testing"

	"repro/internal/logical"
)

func TestProcessSleep(t *testing.T) {
	k := NewKernel(1)
	var wakeTimes []logical.Time
	k.Spawn("sleeper", func(p *Process) {
		p.Sleep(10)
		wakeTimes = append(wakeTimes, p.Now())
		p.Sleep(25)
		wakeTimes = append(wakeTimes, p.Now())
	})
	k.RunAll()
	if len(wakeTimes) != 2 || wakeTimes[0] != 10 || wakeTimes[1] != 35 {
		t.Errorf("wakeTimes = %v, want [10 35]", wakeTimes)
	}
}

func TestProcessWaitUntil(t *testing.T) {
	k := NewKernel(1)
	var woke logical.Time
	k.Spawn("w", func(p *Process) {
		p.WaitUntil(77)
		woke = p.Now()
	})
	k.RunAll()
	if woke != 77 {
		t.Errorf("woke at %v, want 77", woke)
	}
}

func TestTwoProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel(9)
		var trace []string
		k.Spawn("a", func(p *Process) {
			for i := 0; i < 3; i++ {
				p.Sleep(10)
				trace = append(trace, "a")
			}
		})
		k.Spawn("b", func(p *Process) {
			for i := 0; i < 3; i++ {
				p.Sleep(10)
				trace = append(trace, "b")
			}
		})
		k.RunAll()
		return trace
	}
	a := run()
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces differ: %v vs %v", a, b)
		}
	}
	// Process a was spawned first, so at equal times it runs first.
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("trace = %v, want %v", a, want)
		}
	}
}

func TestProcessParkUnpark(t *testing.T) {
	k := NewKernel(1)
	var got logical.Time
	p := k.Spawn("parked", func(p *Process) {
		if interrupted := p.Park(); interrupted {
			t.Error("Park reported interrupted for Unpark")
		}
		got = p.Now()
	})
	k.At(42, func() { p.Unpark() })
	k.RunAll()
	if got != 42 {
		t.Errorf("woke at %v, want 42", got)
	}
	if !p.Done() {
		t.Error("process should be done")
	}
}

func TestProcessInterruptibleWaitInterrupted(t *testing.T) {
	k := NewKernel(1)
	var interrupted bool
	var at logical.Time
	p := k.Spawn("w", func(p *Process) {
		interrupted = p.WaitUntilInterruptible(1000)
		at = p.Now()
	})
	k.At(30, func() { p.Interrupt() })
	k.RunAll()
	if !interrupted {
		t.Error("wait should have been interrupted")
	}
	if at != 30 {
		t.Errorf("woke at %v, want 30", at)
	}
}

func TestProcessInterruptibleWaitTimesOut(t *testing.T) {
	k := NewKernel(1)
	var interrupted bool
	k.Spawn("w", func(p *Process) {
		interrupted = p.WaitUntilInterruptible(50)
	})
	k.RunAll()
	if interrupted {
		t.Error("wait should have timed out, not been interrupted")
	}
	if k.Now() != 50 {
		t.Errorf("now = %v, want 50", k.Now())
	}
}

func TestProcessInterruptAfterWakeIsNoop(t *testing.T) {
	k := NewKernel(1)
	p := k.Spawn("w", func(p *Process) {
		p.WaitUntilInterruptible(10)
		p.Sleep(100) // plain sleep; late interrupt must not disturb it
	})
	k.At(10, func() { p.Interrupt() }) // delivered after the wait finished
	k.RunAll()
	if k.Now() != 110 {
		t.Errorf("now = %v, want 110", k.Now())
	}
}

func TestSpawnAtStartsLater(t *testing.T) {
	k := NewKernel(1)
	var start logical.Time
	k.SpawnAt(500, "late", func(p *Process) { start = p.Now() })
	k.RunAll()
	if start != 500 {
		t.Errorf("started at %v, want 500", start)
	}
}

func TestShutdownUnblocksProcesses(t *testing.T) {
	k := NewKernel(1)
	cleanedUp := false
	k.Spawn("stuck", func(p *Process) {
		defer func() {
			// The Killed panic must propagate, but deferred cleanup runs.
			cleanedUp = true
			if r := recover(); r != nil {
				panic(r)
			}
		}()
		p.Park() // never unparked
	})
	k.RunAll()
	k.Shutdown()
	if !cleanedUp {
		t.Error("deferred cleanup did not run on Shutdown")
	}
}

func TestShutdownUnblocksSleepers(t *testing.T) {
	k := NewKernel(1)
	done := false
	k.Spawn("sleeper", func(p *Process) {
		defer func() {
			done = true
			if r := recover(); r != nil {
				if _, ok := r.(Killed); !ok {
					t.Errorf("unexpected panic %v", r)
				}
				panic(r)
			}
		}()
		p.Sleep(logical.Duration(logical.Hour))
	})
	k.Run(10)
	k.Shutdown()
	if !done {
		t.Error("sleeper not unwound")
	}
}

func TestProcessYield(t *testing.T) {
	k := NewKernel(1)
	var trace []string
	k.Spawn("a", func(p *Process) {
		trace = append(trace, "a1")
		p.Yield()
		trace = append(trace, "a2")
	})
	k.Spawn("b", func(p *Process) {
		trace = append(trace, "b1")
	})
	k.RunAll()
	want := []string{"a1", "b1", "a2"}
	if len(trace) != 3 || trace[0] != want[0] || trace[1] != want[1] || trace[2] != want[2] {
		t.Errorf("trace = %v, want %v", trace, want)
	}
}

func TestMailboxPutRecv(t *testing.T) {
	k := NewKernel(1)
	mb := NewMailbox[int](k, "mb")
	var got []int
	k.Spawn("rx", func(p *Process) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Recv(p))
		}
	})
	k.At(5, func() { mb.Put(1) })
	k.At(10, func() { mb.Put(2); mb.Put(3) })
	k.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("got = %v", got)
	}
}

func TestMailboxRecvBeforePut(t *testing.T) {
	k := NewKernel(1)
	mb := NewMailbox[string](k, "mb")
	var at logical.Time
	k.Spawn("rx", func(p *Process) {
		mb.Recv(p)
		at = p.Now()
	})
	mb.PutAt(99, "hello")
	k.RunAll()
	if at != 99 {
		t.Errorf("received at %v, want 99", at)
	}
}

func TestMailboxTryRecv(t *testing.T) {
	k := NewKernel(1)
	mb := NewMailbox[int](k, "mb")
	if _, ok := mb.TryRecv(); ok {
		t.Error("TryRecv on empty should fail")
	}
	mb.Put(7)
	v, ok := mb.TryRecv()
	if !ok || v != 7 {
		t.Errorf("TryRecv = %v, %v", v, ok)
	}
}

func TestMailboxRecvTimeout(t *testing.T) {
	k := NewKernel(1)
	mb := NewMailbox[int](k, "mb")
	var ok1, ok2 bool
	var at logical.Time
	k.Spawn("rx", func(p *Process) {
		_, ok1 = mb.RecvTimeout(p, 20)
		at = p.Now()
		var v int
		v, ok2 = mb.RecvTimeout(p, 100)
		if v != 5 {
			t.Errorf("v = %d, want 5", v)
		}
	})
	mb.PutAt(60, 5)
	k.RunAll()
	if ok1 {
		t.Error("first RecvTimeout should time out")
	}
	if at != 20 {
		t.Errorf("timeout at %v, want 20", at)
	}
	if !ok2 {
		t.Error("second RecvTimeout should succeed")
	}
}

func TestMailboxPutAfter(t *testing.T) {
	k := NewKernel(1)
	mb := NewMailbox[int](k, "mb")
	k.At(10, func() { mb.PutAfter(15, 1) })
	var at logical.Time
	k.Spawn("rx", func(p *Process) {
		mb.Recv(p)
		at = p.Now()
	})
	k.RunAll()
	if at != 25 {
		t.Errorf("received at %v, want 25", at)
	}
}
