package des

import (
	"sync"
	"time"

	"repro/internal/logical"
)

// RealTime drives a Kernel at the pace of the physical clock: queued
// events fire when the wall clock reaches their timestamp, and external
// stimuli (socket receptions, signals) enter the event queue through
// Inject. This is the execution mode behind ara.NewUDPRuntime — the
// same processes, mailboxes, executors and futures that run
// deterministically under Kernel.Run are driven here by real time, with
// kernel time tracking elapsed wall-clock nanoseconds since Run
// started.
//
// Concurrency contract: the kernel itself remains single-threaded — all
// events, process bodies and injected closures execute on the goroutine
// that called Run. Other goroutines communicate with the kernel only
// through Inject and Stop.
type RealTime struct {
	k *Kernel

	mu      sync.Mutex
	base    logical.Time // kernel time when Run started
	start   time.Time    // wall time when Run started
	started bool
	stopped bool
	inject  []func()

	wake chan struct{}
	done chan struct{}
}

// NewRealTime creates a driver for the kernel. The kernel must not be
// advanced by Run/RunAll while the driver is running.
func NewRealTime(k *Kernel) *RealTime {
	return &RealTime{
		k:    k,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
}

// Kernel returns the driven kernel.
func (d *RealTime) Kernel() *Kernel { return d.k }

// Elapsed returns the current kernel-time position of the driver: the
// kernel time at which Run started plus the wall-clock time since then.
// Before Run it returns the kernel's current time.
func (d *RealTime) Elapsed() logical.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.started {
		return d.k.Now()
	}
	return d.base.Add(logical.Duration(time.Since(d.start)))
}

// Inject schedules fn to run on the kernel goroutine at the current
// physical time. It is the only safe way for another goroutine (a
// socket reader, a timer) to interact with the kernel while Run is
// active.
func (d *RealTime) Inject(fn func()) {
	d.mu.Lock()
	d.inject = append(d.inject, fn)
	d.mu.Unlock()
	d.signal()
}

// Stop makes Run return after the batch currently executing. Safe to
// call from any goroutine, including from an event on the kernel
// goroutine.
func (d *RealTime) Stop() {
	d.mu.Lock()
	d.stopped = true
	d.mu.Unlock()
	d.signal()
}

// Done is closed when Run returns.
func (d *RealTime) Done() <-chan struct{} { return d.done }

func (d *RealTime) signal() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// Run drives the kernel until Stop is called: it fires due events as the
// wall clock catches up with their timestamps, sleeps until the next
// event when the queue runs ahead of physical time, and wakes early for
// injected external events. Run must be called at most once.
func (d *RealTime) Run() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		panic("des: RealTime.Run called twice")
	}
	d.started = true
	d.base = d.k.Now()
	d.start = time.Now()
	d.mu.Unlock()
	defer close(d.done)

	for {
		d.mu.Lock()
		stopped := d.stopped
		batch := d.inject
		d.inject = nil
		now := d.base.Add(logical.Duration(time.Since(d.start)))
		d.mu.Unlock()
		if stopped {
			return
		}
		for _, fn := range batch {
			d.k.At(now, fn)
		}
		d.k.RunLive(now)
		if d.k.stopped {
			// An event called Kernel.Stop: honor it across driver
			// iterations (RunLive would clear the flag on re-entry).
			d.mu.Lock()
			d.stopped = true
			d.mu.Unlock()
			return
		}

		// Sleep until the next queued event is due, or until an external
		// wake (Inject/Stop). With an empty queue only a wake resumes us.
		var timer *time.Timer
		var timerC <-chan time.Time
		if next, ok := d.k.NextEventTime(); ok {
			timer = time.NewTimer(time.Duration(next.Sub(d.k.Now())))
			timerC = timer.C
		}
		select {
		case <-d.wake:
		case <-timerC:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// RunFor drives the kernel for the given wall-clock duration, then
// stops. A convenience for demos and tests.
func (d *RealTime) RunFor(dur time.Duration) {
	time.AfterFunc(dur, d.Stop)
	d.Run()
}
