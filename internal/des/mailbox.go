package des

import "repro/internal/logical"

// Mailbox is an unbounded FIFO queue connecting simulated processes.
// Deliveries and receives are ordered by the kernel's deterministic event
// order. A mailbox may have at most one process blocked in Recv at a time.
type Mailbox[T any] struct {
	k    *Kernel
	name string
	// items[head:] are the queued values. Dequeuing advances head instead
	// of reslicing so the backing array's capacity survives drain/refill
	// cycles — the steady-state put/recv loop then never reallocates.
	// When the queue empties, both reset and the array is reused.
	items  []T
	head   int
	waiter *Process
	// argFree recycles the timed-put carriers (see putArg): a PutAt's
	// (mailbox, value) pair rides the pooled kernel Event closure-free,
	// and the carrier returns here when the put fires, so the timed-put
	// hot path allocates nothing in steady state.
	argFree []*putArg[T]
	// putF is putFn[T] materialized once: inside generic code a
	// reference to a generic function builds a dictionary-bound func
	// value, which would be a fresh heap allocation on every PutAt.
	putF func(any)
}

// putArg carries one timed put: the target mailbox and the value to
// enqueue, stored in the scheduled event's arg slot instead of a capture
// closure. Carriers are pooled per mailbox (argFree).
type putArg[T any] struct {
	m *Mailbox[T]
	v T
}

// putFn is the package-level delivery body of PutAt/PutAfter. It returns
// the carrier to the pool before enqueuing so that a recursive timed put
// from a receiver callback can reuse it immediately.
func putFn[T any](a any) {
	pa := a.(*putArg[T])
	m, v := pa.m, pa.v
	var zero T
	pa.v = zero
	m.argFree = append(m.argFree, pa)
	m.Put(v)
}

// borrowPut takes a pooled carrier (or allocates the pool's next one)
// and fills it with the value.
func (m *Mailbox[T]) borrowPut(v T) *putArg[T] {
	var pa *putArg[T]
	if n := len(m.argFree); n > 0 {
		pa = m.argFree[n-1]
		m.argFree[n-1] = nil
		m.argFree = m.argFree[:n-1]
	} else {
		pa = &putArg[T]{}
	}
	pa.m = m
	pa.v = v
	return pa
}

// NewMailbox creates a mailbox on the kernel.
func NewMailbox[T any](k *Kernel, name string) *Mailbox[T] {
	return &Mailbox[T]{k: k, name: name, putF: putFn[T]}
}

// Len returns the number of queued items.
func (m *Mailbox[T]) Len() int { return len(m.items) - m.head }

// take dequeues the head item (callers check Len() > 0). The vacated
// slot is zeroed so pointer-carrying values do not outlive their
// dequeue, and an emptied queue rewinds to reuse its backing array.
func (m *Mailbox[T]) take() T {
	v := m.items[m.head]
	var zero T
	m.items[m.head] = zero
	m.head++
	if m.head == len(m.items) {
		m.items = m.items[:0]
		m.head = 0
	}
	return v
}

// Put enqueues an item immediately (at the current simulated time) and
// wakes a blocked receiver, if any. Safe to call from kernel events or
// from any process (there is never true concurrency in a DES).
func (m *Mailbox[T]) Put(v T) {
	m.items = append(m.items, v)
	if m.waiter != nil {
		w := m.waiter
		m.waiter = nil
		w.Unpark()
	}
}

// PutAt schedules the item to be enqueued at simulated time t. The
// schedule+fire round trip is allocation-free in steady state: the value
// rides a pooled carrier in a pooled kernel event (see putArg).
func (m *Mailbox[T]) PutAt(t logical.Time, v T) {
	m.k.AtTransientFn(t, m.putF, m.borrowPut(v))
}

// PutAfter schedules the item to be enqueued d from now.
func (m *Mailbox[T]) PutAfter(d logical.Duration, v T) {
	m.k.AfterTransientFn(d, m.putF, m.borrowPut(v))
}

// TryRecv dequeues an item without blocking. ok is false when empty.
func (m *Mailbox[T]) TryRecv() (v T, ok bool) {
	if m.Len() == 0 {
		return v, false
	}
	return m.take(), true
}

// Recv blocks the calling process until an item is available, then
// dequeues it. Panics if another process is already blocked in Recv.
func (m *Mailbox[T]) Recv(p *Process) T {
	for m.Len() == 0 {
		if m.waiter != nil {
			panic("des: multiple receivers blocked on mailbox " + m.name)
		}
		m.waiter = p
		p.Park()
		if m.waiter == p {
			m.waiter = nil
		}
	}
	return m.take()
}

// RecvTimeout blocks until an item is available or the deadline passes.
// ok is false on timeout.
func (m *Mailbox[T]) RecvTimeout(p *Process, d logical.Duration) (v T, ok bool) {
	deadline := m.k.now.Add(d)
	for m.Len() == 0 {
		if m.k.now >= deadline {
			return v, false
		}
		if m.waiter != nil {
			panic("des: multiple receivers blocked on mailbox " + m.name)
		}
		m.waiter = p
		// Wake at the deadline unless an item arrives first.
		ev := m.k.At(deadline, func() {
			if m.waiter == p {
				m.waiter = nil
				p.Unpark()
			}
		})
		p.Park()
		ev.Cancel()
		if m.waiter == p {
			m.waiter = nil
		}
	}
	return m.take(), true
}
