package des

import "repro/internal/logical"

// Mailbox is an unbounded FIFO queue connecting simulated processes.
// Deliveries and receives are ordered by the kernel's deterministic event
// order. A mailbox may have at most one process blocked in Recv at a time.
type Mailbox[T any] struct {
	k      *Kernel
	name   string
	items  []T
	waiter *Process
}

// NewMailbox creates a mailbox on the kernel.
func NewMailbox[T any](k *Kernel, name string) *Mailbox[T] {
	return &Mailbox[T]{k: k, name: name}
}

// Len returns the number of queued items.
func (m *Mailbox[T]) Len() int { return len(m.items) }

// Put enqueues an item immediately (at the current simulated time) and
// wakes a blocked receiver, if any. Safe to call from kernel events or
// from any process (there is never true concurrency in a DES).
func (m *Mailbox[T]) Put(v T) {
	m.items = append(m.items, v)
	if m.waiter != nil {
		w := m.waiter
		m.waiter = nil
		w.Unpark()
	}
}

// PutAt schedules the item to be enqueued at simulated time t.
func (m *Mailbox[T]) PutAt(t logical.Time, v T) {
	m.k.AtTransient(t, func() { m.Put(v) })
}

// PutAfter schedules the item to be enqueued d from now.
func (m *Mailbox[T]) PutAfter(d logical.Duration, v T) {
	m.k.AfterTransient(d, func() { m.Put(v) })
}

// TryRecv dequeues an item without blocking. ok is false when empty.
func (m *Mailbox[T]) TryRecv() (v T, ok bool) {
	if len(m.items) == 0 {
		return v, false
	}
	v = m.items[0]
	m.items = m.items[1:]
	return v, true
}

// Recv blocks the calling process until an item is available, then
// dequeues it. Panics if another process is already blocked in Recv.
func (m *Mailbox[T]) Recv(p *Process) T {
	for len(m.items) == 0 {
		if m.waiter != nil {
			panic("des: multiple receivers blocked on mailbox " + m.name)
		}
		m.waiter = p
		p.Park()
		if m.waiter == p {
			m.waiter = nil
		}
	}
	v := m.items[0]
	m.items = m.items[1:]
	return v
}

// RecvTimeout blocks until an item is available or the deadline passes.
// ok is false on timeout.
func (m *Mailbox[T]) RecvTimeout(p *Process, d logical.Duration) (v T, ok bool) {
	deadline := m.k.now.Add(d)
	for len(m.items) == 0 {
		if m.k.now >= deadline {
			return v, false
		}
		if m.waiter != nil {
			panic("des: multiple receivers blocked on mailbox " + m.name)
		}
		m.waiter = p
		// Wake at the deadline unless an item arrives first.
		ev := m.k.At(deadline, func() {
			if m.waiter == p {
				m.waiter = nil
				p.Unpark()
			}
		})
		p.Park()
		ev.Cancel()
		if m.waiter == p {
			m.waiter = nil
		}
	}
	v = m.items[0]
	m.items = m.items[1:]
	return v, true
}
