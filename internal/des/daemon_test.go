package des

import (
	"testing"

	"repro/internal/logical"
)

func TestDaemonEventsDoNotKeepRunAlive(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	var tick func()
	tick = func() {
		fired++
		k.AfterDaemon(10, tick)
	}
	k.AtDaemon(0, tick)
	// No non-daemon work: RunAll must terminate immediately.
	k.RunAll()
	if fired != 0 {
		t.Errorf("daemon fired %d times with no pending work", fired)
	}
}

func TestDaemonEventsInterleaveWithPendingWork(t *testing.T) {
	k := NewKernel(1)
	daemonFires := 0
	var tick func()
	tick = func() {
		daemonFires++
		k.AfterDaemon(10, tick)
	}
	k.AtDaemon(0, tick)
	k.At(55, func() {}) // pending work at t=55
	k.RunAll()
	// Daemons at 0,10,20,30,40,50 fire before the work at 55 drains.
	if daemonFires != 6 {
		t.Errorf("daemon fired %d times, want 6", daemonFires)
	}
}

func TestDaemonCancelation(t *testing.T) {
	k := NewKernel(1)
	fired := false
	ev := k.AtDaemon(5, func() { fired = true })
	ev.Cancel()
	k.At(10, func() {})
	k.RunAll()
	if fired {
		t.Error("canceled daemon fired")
	}
}

func TestCancelNonDaemonReleasesPending(t *testing.T) {
	k := NewKernel(1)
	ev := k.At(100, func() { t.Error("canceled event fired") })
	daemonRan := false
	k.AtDaemon(5, func() { daemonRan = true })
	ev.Cancel()
	// With the only pending event canceled, Run must terminate without
	// firing the daemon.
	k.RunAll()
	if daemonRan {
		t.Error("daemon ran after pending work was canceled")
	}
}

func TestRunHorizonWithOnlyDaemonsAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	k.AtDaemon(10, func() {})
	got := k.Run(logical.Time(500))
	if got != 500 {
		t.Errorf("Run returned %v, want horizon 500", got)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("p", func(p *Process) { p.Park() })
	k.RunAll()
	k.Shutdown()
	k.Shutdown() // second call must be harmless
}

func TestEventTimeAccessor(t *testing.T) {
	k := NewKernel(1)
	ev := k.At(42, func() {})
	if ev.Time() != 42 {
		t.Errorf("Time = %v", ev.Time())
	}
}

func TestKernelStringer(t *testing.T) {
	k := NewKernel(1)
	if k.String() == "" {
		t.Error("empty kernel string")
	}
	p := k.Spawn("named", func(p *Process) {})
	if p.String() != "process(named)" {
		t.Errorf("process string = %q", p.String())
	}
	if p.Name() != "named" || p.Kernel() != k {
		t.Error("accessors wrong")
	}
}
