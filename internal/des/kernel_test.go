package des

import (
	"testing"

	"repro/internal/logical"
)

func TestKernelFiresInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	k.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if k.Now() != 30 {
		t.Errorf("now = %v, want 30", k.Now())
	}
}

func TestKernelTieBreakBySequence(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.At(10, func() { order = append(order, 1) })
	k.At(10, func() { order = append(order, 2) })
	k.At(10, func() { order = append(order, 3) })
	k.RunAll()
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v, want [1 2 3]", order)
		}
	}
}

func TestKernelPastSchedulingClampsToNow(t *testing.T) {
	k := NewKernel(1)
	var at logical.Time
	k.At(100, func() {
		k.At(50, func() { at = k.Now() }) // in the past
	})
	k.RunAll()
	if at != 100 {
		t.Errorf("past event fired at %v, want 100", at)
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	e := k.At(10, func() { fired = true })
	e.Cancel()
	k.RunAll()
	if fired {
		t.Error("canceled event fired")
	}
	if !e.Canceled() {
		t.Error("Canceled() should be true")
	}
}

func TestKernelRunHorizon(t *testing.T) {
	k := NewKernel(1)
	fired := []logical.Time{}
	k.At(10, func() { fired = append(fired, 10) })
	k.At(20, func() { fired = append(fired, 20) })
	k.Run(15)
	if len(fired) != 1 || fired[0] != 10 {
		t.Errorf("fired = %v, want [10]", fired)
	}
	// Continue past the horizon.
	k.RunAll()
	if len(fired) != 2 {
		t.Errorf("fired = %v, want both", fired)
	}
}

func TestKernelQuiescentAdvancesToHorizon(t *testing.T) {
	k := NewKernel(1)
	k.Run(500)
	if k.Now() != 500 {
		t.Errorf("now = %v, want 500", k.Now())
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel(1)
	count := 0
	k.At(10, func() { count++; k.Stop() })
	k.At(20, func() { count++ })
	k.RunAll()
	if count != 1 {
		t.Errorf("count = %d, want 1 (stopped)", count)
	}
}

func TestKernelAfter(t *testing.T) {
	k := NewKernel(1)
	var at logical.Time
	k.At(40, func() {
		k.After(10, func() { at = k.Now() })
	})
	k.RunAll()
	if at != 50 {
		t.Errorf("After fired at %v, want 50", at)
	}
}

func TestKernelEventsFired(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 5; i++ {
		k.At(logical.Time(i), func() {})
	}
	k.RunAll()
	if k.EventsFired() != 5 {
		t.Errorf("EventsFired = %d, want 5", k.EventsFired())
	}
}

func TestKernelDeterministicReplay(t *testing.T) {
	run := func(seed uint64) []int64 {
		k := NewKernel(seed)
		rng := k.Rand("gen")
		var trace []int64
		var rec func()
		n := 0
		rec = func() {
			trace = append(trace, int64(k.Now()))
			n++
			if n < 200 {
				k.After(logical.Duration(rng.Range(1, 100)), rec)
			}
		}
		k.At(0, rec)
		k.RunAll()
		return trace
	}
	a := run(42)
	b := run(42)
	c := run(43)
	if len(a) != len(b) {
		t.Fatal("same seed traces differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed traces differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}
