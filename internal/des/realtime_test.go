package des

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/logical"
)

func TestRealTimeFiresScheduledEvents(t *testing.T) {
	k := NewKernel(1)
	d := NewRealTime(k)
	var order []int
	k.After(1*logical.Millisecond, func() { order = append(order, 1) })
	k.After(5*logical.Millisecond, func() { order = append(order, 2) })
	k.After(5*logical.Millisecond, func() {
		order = append(order, 3)
		d.Stop()
	})
	start := time.Now()
	d.Run()
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("run returned after %v, before the last event was due", elapsed)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if k.Now() < logical.Time(5*logical.Millisecond) {
		t.Errorf("kernel time = %v", k.Now())
	}
}

func TestRealTimeInjectWakesSleepingDriver(t *testing.T) {
	k := NewKernel(1)
	d := NewRealTime(k)
	var handled atomic.Bool
	go d.Run()
	defer func() {
		d.Stop()
		<-d.Done()
	}()

	// Driver is asleep on an empty queue; an injection from another
	// goroutine must wake it and run on the kernel goroutine.
	done := make(chan struct{})
	d.Inject(func() {
		handled.Store(true)
		close(done)
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("injected event did not run")
	}
	if !handled.Load() {
		t.Fatal("handler flag not set")
	}
}

func TestRealTimeDrivesProcesses(t *testing.T) {
	k := NewKernel(1)
	d := NewRealTime(k)
	var woken atomic.Bool
	k.Spawn("sleeper", func(p *Process) {
		p.Sleep(2 * logical.Millisecond)
		woken.Store(true)
		d.Stop()
	})
	d.Run()
	k.Shutdown()
	if !woken.Load() {
		t.Fatal("process did not run under the real-time driver")
	}
}

func TestRealTimeRunFor(t *testing.T) {
	k := NewKernel(1)
	d := NewRealTime(k)
	fired := 0
	k.AfterDaemon(1*logical.Millisecond, func() { fired++ })
	start := time.Now()
	d.RunFor(10 * time.Millisecond)
	if time.Since(start) < 10*time.Millisecond {
		t.Error("RunFor returned early")
	}
	if fired != 1 {
		t.Errorf("daemon event fired %d times", fired)
	}
}

func TestRealTimeHonorsKernelStop(t *testing.T) {
	k := NewKernel(1)
	d := NewRealTime(k)
	fired := 0
	k.After(1*logical.Millisecond, func() {
		fired++
		k.Stop()
	})
	// Would fire long before any plausible test timeout if Stop were
	// ignored across driver iterations.
	k.After(5*logical.Millisecond, func() { fired++ })
	done := make(chan struct{})
	go func() {
		d.Run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Kernel.Stop did not stop the real-time driver")
	}
	if fired != 1 {
		t.Errorf("fired = %d events, want 1 (events after Stop must not fire)", fired)
	}
}

func TestRealTimeElapsedTracksWallClock(t *testing.T) {
	k := NewKernel(1)
	d := NewRealTime(k)
	if d.Elapsed() != 0 {
		t.Errorf("pre-run elapsed = %v", d.Elapsed())
	}
	go d.Run()
	time.Sleep(3 * time.Millisecond)
	if e := d.Elapsed(); e < logical.Time(3*logical.Millisecond) {
		t.Errorf("elapsed = %v after sleeping 3ms", e)
	}
	d.Stop()
	<-d.Done()
}
