package des

import (
	"repro/internal/logical"
)

// LocalClock models the local oscillator of a simulated platform: it runs
// at a slightly different rate than global simulated time (drift, in parts
// per billion) and starts with an offset. An optional synchronization
// service (the AP time-sync substitute) periodically corrects the clock so
// that its error against global time stays within a configured bound —
// the "bounded clock synchronization error E" that PTIDES-style
// safe-to-process analysis relies on.
//
// All arithmetic is integral so results are bit-reproducible.
type LocalClock struct {
	k *Kernel
	// refGlobal/refLocal anchor the affine mapping; DriftPPB is the rate
	// error: local elapses (1 + DriftPPB/1e9) per unit of global time.
	refGlobal logical.Time
	refLocal  logical.Time
	driftPPB  int64

	syncBound  logical.Duration // E: |local-global| stays within this after sync
	syncPeriod logical.Duration
	rng        *Rand
	syncs      int
}

// ClockConfig configures a LocalClock.
type ClockConfig struct {
	// Offset is the initial local-minus-global offset.
	Offset logical.Duration
	// DriftPPB is the oscillator rate error in parts per billion.
	// Typical crystal oscillators are within ±50_000 ppb (50 ppm).
	DriftPPB int64
	// SyncBound, if non-zero, enables periodic resynchronization that
	// bounds the residual error to ±SyncBound (the paper's E).
	SyncBound logical.Duration
	// SyncPeriod is the resynchronization interval (default 1s when
	// SyncBound is set).
	SyncPeriod logical.Duration
}

// NewLocalClock creates a clock on the kernel. The rng (may be nil when
// SyncBound is zero) drives the residual error after each resync.
func (k *Kernel) NewLocalClock(cfg ClockConfig, rng *Rand) *LocalClock {
	c := &LocalClock{
		k:          k,
		refGlobal:  k.now,
		refLocal:   k.now.Add(cfg.Offset),
		driftPPB:   cfg.DriftPPB,
		syncBound:  cfg.SyncBound,
		syncPeriod: cfg.SyncPeriod,
		rng:        rng,
	}
	if c.syncBound > 0 {
		if c.syncPeriod <= 0 {
			c.syncPeriod = logical.Second
		}
		c.scheduleSync()
	}
	return c
}

func (c *LocalClock) scheduleSync() {
	c.k.AfterDaemon(c.syncPeriod, func() {
		// Resynchronize: jump the local clock to global time plus a
		// residual error uniform in [-E, E].
		residual := logical.Duration(0)
		if c.rng != nil {
			residual = logical.Duration(c.rng.Range(int64(-c.syncBound), int64(c.syncBound)))
		}
		c.refGlobal = c.k.now
		c.refLocal = c.k.now.Add(residual)
		c.syncs++
		c.scheduleSync()
	})
}

// Now returns the current local time.
func (c *LocalClock) Now() logical.Time {
	return c.LocalAt(c.k.now)
}

// LocalAt maps a global time to this clock's local time.
func (c *LocalClock) LocalAt(global logical.Time) logical.Time {
	elapsed := int64(global - c.refGlobal)
	skew := mulDivRound(elapsed, c.driftPPB, 1_000_000_000)
	return c.refLocal.Add(logical.Duration(elapsed + skew))
}

// GlobalAt maps a local time to global time under the current affine
// segment (valid until the next resync).
func (c *LocalClock) GlobalAt(local logical.Time) logical.Time {
	dl := int64(local - c.refLocal)
	// Invert elapsed*(1e9+ppb)/1e9 = dl.
	elapsed := mulDivRound(dl, 1_000_000_000, 1_000_000_000+c.driftPPB)
	return c.refGlobal.Add(logical.Duration(elapsed))
}

// Error returns the current local-minus-global error.
func (c *LocalClock) Error() logical.Duration {
	return logical.Duration(c.Now() - c.k.now)
}

// Syncs reports the number of resynchronizations performed so far.
func (c *LocalClock) Syncs() int { return c.syncs }

// mulDivRound computes a*b/c with int64 operands, rounding toward zero,
// using 128-bit intermediate math to avoid overflow for the magnitudes
// used here (times up to ~292 years in ns, ppb up to 1e9).
func mulDivRound(a, b, c int64) int64 {
	if c == 0 {
		panic("des: division by zero")
	}
	neg := false
	ua, ub, uc := a, b, c
	if ua < 0 {
		ua = -ua
		neg = !neg
	}
	if ub < 0 {
		ub = -ub
		neg = !neg
	}
	if uc < 0 {
		uc = -uc
		neg = !neg
	}
	hi, lo := mul64(uint64(ua), uint64(ub))
	q := div128(hi, lo, uint64(uc))
	if neg {
		return -int64(q)
	}
	return int64(q)
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	t := ah*bl + (al*bl)>>32
	w := al*bh + (t & mask)
	hi = ah*bh + (t >> 32) + (w >> 32)
	lo = a * b
	return
}

func div128(hi, lo, d uint64) uint64 {
	// Simple long division; hi < d is guaranteed for our magnitudes
	// (quotient fits in 64 bits).
	if hi == 0 {
		return lo / d
	}
	var q, r uint64
	for i := 127; i >= 0; i-- {
		r <<= 1
		var bit uint64
		if i >= 64 {
			bit = (hi >> uint(i-64)) & 1
		} else {
			bit = (lo >> uint(i)) & 1
		}
		r |= bit
		if r >= d {
			r -= d
			if i < 64 {
				q |= 1 << uint(i)
			}
		}
	}
	return q
}
