// Package des provides a deterministic discrete-event simulation kernel.
//
// The kernel owns a virtual clock and an event queue ordered by
// (time, sequence number). Simulated threads of control are Processes:
// goroutines that run strictly one at a time, handing a baton back to the
// kernel whenever they block on a simulated operation (Sleep, WaitUntil,
// mailbox receive, ...). Because exactly one entity runs at any instant and
// all ties are broken by the deterministic sequence counter, a simulation
// is a pure function of its seed and inputs — the Go runtime scheduler has
// no influence on results.
//
// This substrate stands in for the paper's physical testbed (two
// MinnowBoard platforms and an Ethernet switch): it simulates physical
// time, drifting local clocks, network latency and OS thread dispatch with
// seeded randomness, which is exactly the machinery needed to reproduce
// the nondeterministic interleavings studied in the paper — reproducibly.
package des

import (
	"fmt"

	"repro/internal/logical"
)

// Event is a scheduled unit of work. It can be canceled before it fires.
// The work is either a plain closure (fire) or a closure-free (fn, arg)
// pair — see AtTransientFn — so hot paths can schedule without allocating
// a capture closure per event.
type Event struct {
	k   *Kernel
	at  logical.Time
	seq uint64
	// fire is the scheduled closure (handle-returning API and plain
	// transients). nil when the event carries a (fn, arg) pair instead.
	fire func()
	// fn/arg are the closure-free form: fn is a long-lived (typically
	// package-level) function and arg its per-event argument, usually a
	// pooled carrier. Storing the pair in the pooled Event removes the
	// per-schedule closure allocation on hot paths.
	fn       func(arg any)
	arg      any
	daemon   bool
	canceled bool
	// transient marks events scheduled through AtTransient/AfterTransient:
	// no reference escapes to the caller, so the kernel recycles the Event
	// through its free list after firing. Cancel can never reach a
	// transient event, which is what makes recycling safe.
	transient bool
	// local marks events that are guaranteed never to emit onto a
	// federation channel, directly or transitively: while a local event
	// fires, Channel.Send panics and every event it schedules inherits
	// the mark, so the guarantee is closed under scheduling and enforced
	// at run time. The federation coordinator skips local events when
	// computing a partition's earliest-output-time bound (NextEmitTime),
	// which is what lets partitions free-run through dense local-only
	// phases. Events become local by being scheduled from a local event
	// or from a process started with SpawnLocal.
	local bool
	index int // heap index, -1 once popped
	// emitIndex is the event's position in the kernel's emit shadow heap
	// (see Kernel.emit), -1 when absent. Only maintained on federated
	// kernels; single-kernel mode never populates the shadow heap.
	emitIndex int
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() {
	if e.canceled {
		return
	}
	e.canceled = true
	if !e.daemon && e.index >= 0 {
		e.k.pending--
	}
}

// Time returns the simulated time at which the event fires.
func (e *Event) Time() logical.Time { return e.at }

// eventQueue is the kernel's priority queue: a 4-ary min-heap over
// *Event specialized to the (at, seq) key, replacing container/heap to
// eliminate the per-push/pop interface dispatch (Less/Swap/Len calls
// through an interface, plus the any-boxing of Push/Pop operands) on
// the hottest kernel path. Behaviour is provably identical to the old
// binary heap: (at, seq) is a strict total order — seq is unique per
// kernel — so every correct heap pops events in exactly the same
// sequence, which is what keeps every golden byte-identical across the
// swap. The 4-ary layout halves tree depth, trading one extra child
// comparison per level for better cache locality on sift-down.
//
// Event.index is maintained on every move so Cancel can keep telling
// queued events (index >= 0) from popped ones (index == -1).
type eventQueue []*Event

// before reports the strict (at, seq) order. Keys are never equal:
// seq is unique per kernel.
func (a *Event) before(b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts e, restoring the heap by sifting up.
func (q *eventQueue) push(e *Event) {
	h := append(*q, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		p := h[parent]
		if !e.before(p) {
			break
		}
		h[i] = p
		p.index = i
		i = parent
	}
	h[i] = e
	e.index = i
	*q = h
}

// pop removes and returns the minimum event, restoring the heap by
// sifting the displaced tail element down.
func (q *eventQueue) pop() *Event {
	h := *q
	min := h[0]
	min.index = -1
	n := len(h) - 1
	e := h[n]
	h[n] = nil
	h = h[:n]
	*q = h
	if n == 0 {
		return min
	}
	// Sift e down from the root.
	i := 0
	for {
		c := i<<2 + 1 // first child
		if c >= n {
			break
		}
		// Pick the smallest of up to four children.
		best := c
		bestEv := h[c]
		for j := c + 1; j < c+4 && j < n; j++ {
			if h[j].before(bestEv) {
				best = j
				bestEv = h[j]
			}
		}
		if !bestEv.before(e) {
			break
		}
		h[i] = bestEv
		bestEv.index = i
		i = best
	}
	h[i] = e
	e.index = i
	return min
}

// emitHeap is the kernel's shadow priority queue over emit-capable
// events: the same 4-ary (at, seq) min-heap as eventQueue, but holding
// only live non-local events and maintaining Event.emitIndex instead of
// Event.index. Federated kernels keep it in lock-step with the main
// queue so NextEmitTime — the coordinator's earliest-output-time bound,
// consulted on every park — is O(1) at the head instead of a full
// O(queued) scan. Canceled events are discarded lazily at the head.
type emitHeap []*Event

// push inserts e, restoring the heap by sifting up.
func (q *emitHeap) push(e *Event) {
	h := append(*q, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		p := h[parent]
		if !e.before(p) {
			break
		}
		h[i] = p
		p.emitIndex = i
		i = parent
	}
	h[i] = e
	e.emitIndex = i
	*q = h
}

// removeAt deletes the event at heap position i (the main queue popped
// it, or it was discarded as canceled): the tail element takes its
// place and is sifted in either direction as needed.
func (q *emitHeap) removeAt(i int) {
	h := *q
	h[i].emitIndex = -1
	n := len(h) - 1
	e := h[n]
	h[n] = nil
	h = h[:n]
	*q = h
	if i == n {
		return
	}
	// Sift e up from i, then down if it did not move.
	j := i
	for j > 0 {
		parent := (j - 1) >> 2
		p := h[parent]
		if !e.before(p) {
			break
		}
		h[j] = p
		p.emitIndex = j
		j = parent
	}
	if j == i {
		for {
			c := j<<2 + 1
			if c >= n {
				break
			}
			best := c
			bestEv := h[c]
			for m := c + 1; m < c+4 && m < n; m++ {
				if h[m].before(bestEv) {
					best = m
					bestEv = h[m]
				}
			}
			if !bestEv.before(e) {
				break
			}
			h[j] = bestEv
			bestEv.emitIndex = j
			j = best
		}
	}
	h[j] = e
	e.emitIndex = j
}

// Tracer receives logical trace events from a kernel (see
// Kernel.Trace). The canonical implementation is the trace package's
// Recorder; the indirection keeps des free of higher-layer imports.
// Implementations must not call back into the kernel.
type Tracer interface {
	// TraceEvent records one logical event: the kernel's current time,
	// the emitting component's label, the event kind and the payload
	// (which implementations digest, not retain).
	TraceEvent(at logical.Time, component, kind string, payload []byte)
}

// teeTracer fans one kernel's trace stream out to several sinks.
type teeTracer struct {
	sinks []Tracer
}

// TraceEvent forwards the event to every sink in installation order.
func (t *teeTracer) TraceEvent(at logical.Time, component, kind string, payload []byte) {
	for _, s := range t.sinks {
		s.TraceEvent(at, component, kind, payload)
	}
}

// TeeTracer composes several trace sinks into one Tracer so recording
// and online monitoring coexist on the kernel's single tracer hook: a
// trace recorder and a runtime-verification engine installed together
// observe the identical event stream. Nil entries are dropped; with no
// remaining sinks it returns nil (tracing disabled), and a single sink
// is returned unwrapped, preserving Kernel.Trace's nil-check fast path.
func TeeTracer(sinks ...Tracer) Tracer {
	kept := make([]Tracer, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &teeTracer{sinks: kept}
}

// Kernel is the simulation engine. Create one with NewKernel, spawn
// processes and schedule events, then call Run.
type Kernel struct {
	now      logical.Time
	seq      uint64
	queue    eventQueue
	pending  int // non-daemon, non-canceled events still queued
	procs    []*Process
	running  bool
	stopped  bool
	shutdown bool
	fired    uint64
	rootRand *Rand
	// free recycles transient Events: scheduling is the hot path shared by
	// every federated kernel, and pooling removes the per-event allocation.
	free []*Event
	// firingLocal is set while a local-marked event fires: newly scheduled
	// events inherit the mark and Channel.Send panics (see Event.local).
	firingLocal bool
	// emitTracked enables the emit shadow heap (set once when the kernel
	// joins a federation; see TrackEmit). Single-kernel mode leaves it
	// off, keeping enqueue/dequeue free of shadow maintenance.
	emitTracked bool
	// emit shadows the queue's live non-local events (see emitHeap).
	emit emitHeap
	// tracer, when set, receives Trace calls (nil = tracing disabled;
	// the hot-path cost is one nil check).
	tracer Tracer
}

// NewKernel returns a kernel whose clock starts at time zero and whose
// random streams all derive from seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rootRand: NewRand(seed)}
}

// Now returns the current simulated time.
func (k *Kernel) Now() logical.Time { return k.now }

// EventsFired returns the number of events executed so far (useful for
// progress accounting and benchmarks).
func (k *Kernel) EventsFired() uint64 { return k.fired }

// Rand derives a named, independent random stream from the kernel seed.
// The same (seed, label) pair always yields the same stream.
func (k *Kernel) Rand(label string) *Rand { return k.rootRand.Stream(label) }

// SetTracer installs (or, with nil, removes) the kernel's trace sink.
// Under a Federation each partition kernel gets its own tracer, and
// the per-partition traces merge into the canonical whole (see the
// trace package).
func (k *Kernel) SetTracer(t Tracer) { k.tracer = t }

// Trace emits one logical event to the kernel's tracer, stamped with
// the current simulated time. With no tracer installed it is a single
// nil check, so instrumented components may call it unconditionally.
// Component labels must be stable across execution modes (and each
// component must live on exactly one kernel of a federation) for the
// merged trace to be mode-independent.
func (k *Kernel) Trace(component, kind string, payload []byte) {
	if k.tracer != nil {
		k.tracer.TraceEvent(k.now, component, kind, payload)
	}
}

// At schedules fn to run at simulated time t. Scheduling in the past (or
// present) fires the event at the current time but never before events
// already queued for that time. The returned Event may be canceled.
func (k *Kernel) At(t logical.Time, fn func()) *Event {
	return k.schedule(t, false, fn)
}

// After schedules fn to run d from now.
func (k *Kernel) After(d logical.Duration, fn func()) *Event {
	return k.At(k.now.Add(d), fn)
}

// AtDaemon schedules a housekeeping event. Daemon events fire in normal
// time order but do not keep the simulation alive: Run stops once only
// daemon events remain. Self-rescheduling services (clock sync, periodic
// maintenance) use daemon events so that RunAll terminates.
func (k *Kernel) AtDaemon(t logical.Time, fn func()) *Event {
	return k.schedule(t, true, fn)
}

// AfterDaemon schedules a daemon event d from now.
func (k *Kernel) AfterDaemon(d logical.Duration, fn func()) *Event {
	return k.AtDaemon(k.now.Add(d), fn)
}

func (k *Kernel) schedule(t logical.Time, daemon bool, fn func()) *Event {
	e := k.scheduleReuse(t, daemon, fn, false)
	return e
}

// enqueue inserts e into the main queue and, on federated kernels, into
// the emit shadow heap when the event could emit cross-partition.
func (k *Kernel) enqueue(e *Event) {
	k.queue.push(e)
	e.emitIndex = -1
	if k.emitTracked && !e.local {
		k.emit.push(e)
	}
}

// dequeue removes the minimum event from the main queue and drops its
// emit shadow entry if it still has one.
func (k *Kernel) dequeue() *Event {
	e := k.queue.pop()
	if e.emitIndex >= 0 {
		k.emit.removeAt(e.emitIndex)
	}
	return e
}

// TrackEmit switches the kernel to federated mode: from now on the
// emit shadow heap mirrors the queue's live non-local events so that
// NextEmitTime is O(1). Events already queued are folded in, so the
// call is correct at any point; NewFederation makes it on creation.
func (k *Kernel) TrackEmit() {
	if k.emitTracked {
		return
	}
	k.emitTracked = true
	for _, e := range k.queue {
		if !e.local && !e.canceled {
			k.emit.push(e)
		}
	}
}

// AtTransient schedules fn at simulated time t without returning a handle.
// The event cannot be canceled; in exchange the kernel recycles its Event
// structure after firing, eliminating the per-event allocation on hot
// scheduling paths (network delivery, mailbox puts, future resolution).
// When fn would have to be a fresh capture closure, prefer AtTransientFn,
// which also removes the closure allocation.
func (k *Kernel) AtTransient(t logical.Time, fn func()) {
	k.scheduleReuse(t, false, fn, true)
}

// AfterTransient schedules fn to run d from now as a transient event (see
// AtTransient).
func (k *Kernel) AfterTransient(d logical.Duration, fn func()) {
	k.scheduleReuse(k.now.Add(d), false, fn, true)
}

// AtTransientFn schedules the closure-free form of a transient event: at
// time t the kernel calls fn(arg). Because fn is typically a package-level
// function and arg a pooled carrier (or an already-live pointer), the
// schedule+fire round trip allocates nothing — the (fn, arg) pair lives in
// the pooled Event itself, where AtTransient's fn closure would otherwise
// be a fresh heap allocation per event. This is the scheduling form of
// every converted hot path: datagram delivery, mailbox timed puts, future
// resolution, process wakeups and federation batch injection.
func (k *Kernel) AtTransientFn(t logical.Time, fn func(arg any), arg any) {
	k.scheduleFn(t, fn, arg)
}

// AfterTransientFn schedules fn(arg) to run d from now as a transient
// event (see AtTransientFn).
func (k *Kernel) AfterTransientFn(d logical.Duration, fn func(arg any), arg any) {
	k.scheduleFn(k.now.Add(d), fn, arg)
}

// scheduleFn is the closure-free scheduling hot path: like scheduleReuse
// with transient=true but carrying a (fn, arg) pair instead of a closure.
func (k *Kernel) scheduleFn(t logical.Time, fn func(arg any), arg any) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	var e *Event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		*e = Event{k: k, at: t, seq: k.seq, fn: fn, arg: arg, transient: true, local: k.firingLocal}
	} else {
		e = &Event{k: k, at: t, seq: k.seq, fn: fn, arg: arg, transient: true, local: k.firingLocal}
	}
	k.enqueue(e)
	k.pending++
}

// scheduleWake queues a caller-owned Event structure in place: the
// non-transient, cancelable analogue of the free-list reuse that
// AtTransient gets. The caller guarantees single ownership (at most one
// live incarnation; process wake events qualify — a process sleeps at
// most once at a time). When the previous incarnation is still queued —
// canceled but not yet popped — the structure cannot be reused and a
// fresh Event is allocated instead; either way the returned handle is
// the one to cancel.
func (k *Kernel) scheduleWake(e *Event, t logical.Time, fn func()) *Event {
	if e.k != nil && e.index >= 0 {
		return k.schedule(t, false, fn)
	}
	if t < k.now {
		t = k.now
	}
	k.seq++
	*e = Event{k: k, at: t, seq: k.seq, fire: fn, local: k.firingLocal}
	k.enqueue(e)
	k.pending++
	return e
}

func (k *Kernel) scheduleReuse(t logical.Time, daemon bool, fn func(), transient bool) *Event {
	if t < k.now {
		t = k.now
	}
	k.seq++
	var e *Event
	if n := len(k.free); transient && n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		*e = Event{k: k, at: t, seq: k.seq, fire: fn, daemon: daemon, transient: true, local: k.firingLocal}
	} else {
		e = &Event{k: k, at: t, seq: k.seq, fire: fn, daemon: daemon, transient: transient, local: k.firingLocal}
	}
	k.enqueue(e)
	if !daemon {
		k.pending++
	}
	return e
}

// ReserveEvents grows the transient-event free list so that the next n
// AtTransient calls allocate nothing. The federation coordinator uses it
// to inject drained cross-partition message batches without per-message
// allocations; it is also safe (and cheap) to call speculatively.
func (k *Kernel) ReserveEvents(n int) {
	short := n - len(k.free)
	if short <= 0 {
		return
	}
	block := make([]Event, short)
	for i := range block {
		k.free = append(k.free, &block[i])
	}
}

// recycle returns a fired transient event to the free list. Only transient
// events are pooled: handles returned by At/After may be held (and
// canceled) long after firing, and reusing them would let a stale Cancel
// hit an unrelated future event.
func (k *Kernel) recycle(e *Event) {
	e.fire = nil
	e.fn = nil
	e.arg = nil
	k.free = append(k.free, e)
}

// Stop makes Run return after the currently firing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes queued events in (time, sequence) order until only daemon
// events remain, Stop is called, or the next event lies strictly beyond
// the until horizon. It returns the simulated time at which it stopped.
// Run must not be called reentrantly and the kernel must not be shared
// across goroutines other than through Process operations.
func (k *Kernel) Run(until logical.Time) logical.Time {
	if k.running {
		panic("des: Kernel.Run called reentrantly")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()
	for len(k.queue) > 0 && k.pending > 0 && !k.stopped {
		next := k.queue[0]
		if next.at > until {
			break
		}
		k.dequeue()
		if next.canceled {
			continue
		}
		if !next.daemon {
			k.pending--
		}
		if next.at > k.now {
			k.now = next.at
		}
		k.fired++
		k.firingLocal = next.local
		if next.fn != nil {
			next.fn(next.arg)
		} else {
			next.fire()
		}
		k.firingLocal = false
		if next.transient {
			k.recycle(next)
		}
	}
	if !k.stopped && k.now < until && until < logical.Forever {
		// The simulation went quiescent before the horizon; advance the
		// clock so that successive Run calls observe monotonic time.
		k.now = until
	}
	return k.now
}

// RunAll executes events until the queue is empty or Stop is called.
func (k *Kernel) RunAll() logical.Time { return k.Run(logical.Forever) }

// NextEventTime returns the firing time of the earliest queued live
// event, discarding canceled events from the head of the queue as it
// goes (they would be skipped at firing time anyway). The federation
// coordinator uses the result as the partition's earliest-output-time
// bound, so keeping it tight — never a stale canceled timestamp —
// directly widens the windows granted to downstream partitions.
func (k *Kernel) NextEventTime() (logical.Time, bool) {
	for len(k.queue) > 0 && k.queue[0].canceled {
		k.dequeue()
	}
	if len(k.queue) == 0 {
		return 0, false
	}
	return k.queue[0].at, true
}

// NextEmitTime returns the earliest queued event that could emit onto a
// federation channel — i.e. the earliest live event without the local
// mark (see Event.local). The federation coordinator uses it as the
// partition's earliest-output-time bound: events below the result are
// provably incapable of sending cross-partition, so downstream grants
// may reach past them. On federated kernels (TrackEmit) the answer is
// the head of the emit shadow heap — O(1) after lazily discarding
// canceled heads — where it used to be a full O(queued) scan, the
// dominant cost of dense-local workloads like the city scenario. The
// scan remains as the untracked fallback.
func (k *Kernel) NextEmitTime() (logical.Time, bool) {
	if k.emitTracked {
		for len(k.emit) > 0 && k.emit[0].canceled {
			k.emit.removeAt(0)
		}
		if len(k.emit) == 0 {
			return 0, false
		}
		return k.emit[0].at, true
	}
	var best logical.Time
	found := false
	for _, e := range k.queue {
		if e.local || e.canceled {
			continue
		}
		if !found || e.at < best {
			best = e.at
			found = true
		}
	}
	return best, found
}

// LocalFiring reports whether the currently firing event carries the
// local (never-emits) mark — the flag Channel.Send enforces against.
func (k *Kernel) LocalFiring() bool { return k.firingLocal }

// RunLive executes every queued event — daemon events included — whose
// time is at or before until, then advances the clock to until. Unlike
// Run it does not stop at quiescence: it is the step function for
// real-time drivers (see RealTime), which interleave RunLive with
// waiting on the physical clock and injecting external events. Stop is
// honored.
func (k *Kernel) RunLive(until logical.Time) logical.Time {
	if k.running {
		panic("des: Kernel.RunLive called reentrantly")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()
	for len(k.queue) > 0 && !k.stopped {
		next := k.queue[0]
		if next.at > until {
			break
		}
		k.dequeue()
		if next.canceled {
			continue
		}
		if !next.daemon {
			k.pending--
		}
		if next.at > k.now {
			k.now = next.at
		}
		k.fired++
		k.firingLocal = next.local
		if next.fn != nil {
			next.fn(next.arg)
		} else {
			next.fire()
		}
		k.firingLocal = false
		if next.transient {
			k.recycle(next)
		}
	}
	if k.now < until {
		k.now = until
	}
	return k.now
}

// Shutdown unblocks every parked or sleeping process with a termination
// signal so that their goroutines unwind and exit. It must be called after
// Run returns if processes may still be blocked; otherwise their goroutines
// leak. User process code must not swallow panics of type Killed.
func (k *Kernel) Shutdown() {
	k.shutdown = true
	for _, p := range k.procs {
		if p.state == procBlocked || p.state == procSleeping {
			p.kill()
		}
	}
}

// QueueLen reports the number of pending (possibly canceled) events.
func (k *Kernel) QueueLen() int { return len(k.queue) }

// Pending reports the number of queued non-daemon, non-canceled events —
// the count that keeps Run alive. The federation coordinator uses it for
// global quiescence detection across kernels.
func (k *Kernel) Pending() int { return k.pending }

// String summarizes the kernel state for diagnostics.
func (k *Kernel) String() string {
	return fmt.Sprintf("kernel(now=%s queued=%d fired=%d)", k.now, len(k.queue), k.fired)
}
