// Package des provides a deterministic discrete-event simulation kernel.
//
// The kernel owns a virtual clock and an event queue ordered by
// (time, sequence number). Simulated threads of control are Processes:
// goroutines that run strictly one at a time, handing a baton back to the
// kernel whenever they block on a simulated operation (Sleep, WaitUntil,
// mailbox receive, ...). Because exactly one entity runs at any instant and
// all ties are broken by the deterministic sequence counter, a simulation
// is a pure function of its seed and inputs — the Go runtime scheduler has
// no influence on results.
//
// This substrate stands in for the paper's physical testbed (two
// MinnowBoard platforms and an Ethernet switch): it simulates physical
// time, drifting local clocks, network latency and OS thread dispatch with
// seeded randomness, which is exactly the machinery needed to reproduce
// the nondeterministic interleavings studied in the paper — reproducibly.
package des

import (
	"container/heap"
	"fmt"

	"repro/internal/logical"
)

// Event is a scheduled closure. It can be canceled before it fires.
type Event struct {
	k        *Kernel
	at       logical.Time
	seq      uint64
	fire     func()
	daemon   bool
	canceled bool
	// transient marks events scheduled through AtTransient/AfterTransient:
	// no reference escapes to the caller, so the kernel recycles the Event
	// through its free list after firing. Cancel can never reach a
	// transient event, which is what makes recycling safe.
	transient bool
	// local marks events that are guaranteed never to emit onto a
	// federation channel, directly or transitively: while a local event
	// fires, Channel.Send panics and every event it schedules inherits
	// the mark, so the guarantee is closed under scheduling and enforced
	// at run time. The federation coordinator skips local events when
	// computing a partition's earliest-output-time bound (NextEmitTime),
	// which is what lets partitions free-run through dense local-only
	// phases. Events become local by being scheduled from a local event
	// or from a process started with SpawnLocal.
	local bool
	index int // heap index, -1 once popped
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() {
	if e.canceled {
		return
	}
	e.canceled = true
	if !e.daemon && e.index >= 0 {
		e.k.pending--
	}
}

// Time returns the simulated time at which the event fires.
func (e *Event) Time() logical.Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Tracer receives logical trace events from a kernel (see
// Kernel.Trace). The canonical implementation is the trace package's
// Recorder; the indirection keeps des free of higher-layer imports.
// Implementations must not call back into the kernel.
type Tracer interface {
	// TraceEvent records one logical event: the kernel's current time,
	// the emitting component's label, the event kind and the payload
	// (which implementations digest, not retain).
	TraceEvent(at logical.Time, component, kind string, payload []byte)
}

// Kernel is the simulation engine. Create one with NewKernel, spawn
// processes and schedule events, then call Run.
type Kernel struct {
	now      logical.Time
	seq      uint64
	queue    eventHeap
	pending  int // non-daemon, non-canceled events still queued
	procs    []*Process
	running  bool
	stopped  bool
	shutdown bool
	fired    uint64
	rootRand *Rand
	// free recycles transient Events: scheduling is the hot path shared by
	// every federated kernel, and pooling removes the per-event allocation.
	free []*Event
	// firingLocal is set while a local-marked event fires: newly scheduled
	// events inherit the mark and Channel.Send panics (see Event.local).
	firingLocal bool
	// tracer, when set, receives Trace calls (nil = tracing disabled;
	// the hot-path cost is one nil check).
	tracer Tracer
}

// NewKernel returns a kernel whose clock starts at time zero and whose
// random streams all derive from seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rootRand: NewRand(seed)}
}

// Now returns the current simulated time.
func (k *Kernel) Now() logical.Time { return k.now }

// EventsFired returns the number of events executed so far (useful for
// progress accounting and benchmarks).
func (k *Kernel) EventsFired() uint64 { return k.fired }

// Rand derives a named, independent random stream from the kernel seed.
// The same (seed, label) pair always yields the same stream.
func (k *Kernel) Rand(label string) *Rand { return k.rootRand.Stream(label) }

// SetTracer installs (or, with nil, removes) the kernel's trace sink.
// Under a Federation each partition kernel gets its own tracer, and
// the per-partition traces merge into the canonical whole (see the
// trace package).
func (k *Kernel) SetTracer(t Tracer) { k.tracer = t }

// Trace emits one logical event to the kernel's tracer, stamped with
// the current simulated time. With no tracer installed it is a single
// nil check, so instrumented components may call it unconditionally.
// Component labels must be stable across execution modes (and each
// component must live on exactly one kernel of a federation) for the
// merged trace to be mode-independent.
func (k *Kernel) Trace(component, kind string, payload []byte) {
	if k.tracer != nil {
		k.tracer.TraceEvent(k.now, component, kind, payload)
	}
}

// At schedules fn to run at simulated time t. Scheduling in the past (or
// present) fires the event at the current time but never before events
// already queued for that time. The returned Event may be canceled.
func (k *Kernel) At(t logical.Time, fn func()) *Event {
	return k.schedule(t, false, fn)
}

// After schedules fn to run d from now.
func (k *Kernel) After(d logical.Duration, fn func()) *Event {
	return k.At(k.now.Add(d), fn)
}

// AtDaemon schedules a housekeeping event. Daemon events fire in normal
// time order but do not keep the simulation alive: Run stops once only
// daemon events remain. Self-rescheduling services (clock sync, periodic
// maintenance) use daemon events so that RunAll terminates.
func (k *Kernel) AtDaemon(t logical.Time, fn func()) *Event {
	return k.schedule(t, true, fn)
}

// AfterDaemon schedules a daemon event d from now.
func (k *Kernel) AfterDaemon(d logical.Duration, fn func()) *Event {
	return k.AtDaemon(k.now.Add(d), fn)
}

func (k *Kernel) schedule(t logical.Time, daemon bool, fn func()) *Event {
	e := k.scheduleReuse(t, daemon, fn, false)
	return e
}

// AtTransient schedules fn at simulated time t without returning a handle.
// The event cannot be canceled; in exchange the kernel recycles its Event
// structure after firing, eliminating the per-event allocation on hot
// scheduling paths (network delivery, mailbox puts, future resolution).
func (k *Kernel) AtTransient(t logical.Time, fn func()) {
	k.scheduleReuse(t, false, fn, true)
}

// AfterTransient schedules fn to run d from now as a transient event (see
// AtTransient).
func (k *Kernel) AfterTransient(d logical.Duration, fn func()) {
	k.scheduleReuse(k.now.Add(d), false, fn, true)
}

func (k *Kernel) scheduleReuse(t logical.Time, daemon bool, fn func(), transient bool) *Event {
	if t < k.now {
		t = k.now
	}
	k.seq++
	var e *Event
	if n := len(k.free); transient && n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		*e = Event{k: k, at: t, seq: k.seq, fire: fn, daemon: daemon, transient: true, local: k.firingLocal}
	} else {
		e = &Event{k: k, at: t, seq: k.seq, fire: fn, daemon: daemon, transient: transient, local: k.firingLocal}
	}
	heap.Push(&k.queue, e)
	if !daemon {
		k.pending++
	}
	return e
}

// ReserveEvents grows the transient-event free list so that the next n
// AtTransient calls allocate nothing. The federation coordinator uses it
// to inject drained cross-partition message batches without per-message
// allocations; it is also safe (and cheap) to call speculatively.
func (k *Kernel) ReserveEvents(n int) {
	short := n - len(k.free)
	if short <= 0 {
		return
	}
	block := make([]Event, short)
	for i := range block {
		k.free = append(k.free, &block[i])
	}
}

// recycle returns a fired transient event to the free list. Only transient
// events are pooled: handles returned by At/After may be held (and
// canceled) long after firing, and reusing them would let a stale Cancel
// hit an unrelated future event.
func (k *Kernel) recycle(e *Event) {
	e.fire = nil
	k.free = append(k.free, e)
}

// Stop makes Run return after the currently firing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes queued events in (time, sequence) order until only daemon
// events remain, Stop is called, or the next event lies strictly beyond
// the until horizon. It returns the simulated time at which it stopped.
// Run must not be called reentrantly and the kernel must not be shared
// across goroutines other than through Process operations.
func (k *Kernel) Run(until logical.Time) logical.Time {
	if k.running {
		panic("des: Kernel.Run called reentrantly")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()
	for len(k.queue) > 0 && k.pending > 0 && !k.stopped {
		next := k.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&k.queue)
		if next.canceled {
			continue
		}
		if !next.daemon {
			k.pending--
		}
		if next.at > k.now {
			k.now = next.at
		}
		k.fired++
		k.firingLocal = next.local
		next.fire()
		k.firingLocal = false
		if next.transient {
			k.recycle(next)
		}
	}
	if !k.stopped && k.now < until && until < logical.Forever {
		// The simulation went quiescent before the horizon; advance the
		// clock so that successive Run calls observe monotonic time.
		k.now = until
	}
	return k.now
}

// RunAll executes events until the queue is empty or Stop is called.
func (k *Kernel) RunAll() logical.Time { return k.Run(logical.Forever) }

// NextEventTime returns the firing time of the earliest queued live
// event, discarding canceled events from the head of the queue as it
// goes (they would be skipped at firing time anyway). The federation
// coordinator uses the result as the partition's earliest-output-time
// bound, so keeping it tight — never a stale canceled timestamp —
// directly widens the windows granted to downstream partitions.
func (k *Kernel) NextEventTime() (logical.Time, bool) {
	for len(k.queue) > 0 && k.queue[0].canceled {
		heap.Pop(&k.queue)
	}
	if len(k.queue) == 0 {
		return 0, false
	}
	return k.queue[0].at, true
}

// NextEmitTime returns the earliest queued event that could emit onto a
// federation channel — i.e. the earliest live event without the local
// mark (see Event.local). The federation coordinator uses it as the
// partition's earliest-output-time bound: events below the result are
// provably incapable of sending cross-partition, so downstream grants
// may reach past them. The queue is scanned unordered (O(queued)); it
// is called once per coordinator park, not per event.
func (k *Kernel) NextEmitTime() (logical.Time, bool) {
	var best logical.Time
	found := false
	for _, e := range k.queue {
		if e.local || e.canceled {
			continue
		}
		if !found || e.at < best {
			best = e.at
			found = true
		}
	}
	return best, found
}

// LocalFiring reports whether the currently firing event carries the
// local (never-emits) mark — the flag Channel.Send enforces against.
func (k *Kernel) LocalFiring() bool { return k.firingLocal }

// RunLive executes every queued event — daemon events included — whose
// time is at or before until, then advances the clock to until. Unlike
// Run it does not stop at quiescence: it is the step function for
// real-time drivers (see RealTime), which interleave RunLive with
// waiting on the physical clock and injecting external events. Stop is
// honored.
func (k *Kernel) RunLive(until logical.Time) logical.Time {
	if k.running {
		panic("des: Kernel.RunLive called reentrantly")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()
	for len(k.queue) > 0 && !k.stopped {
		next := k.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&k.queue)
		if next.canceled {
			continue
		}
		if !next.daemon {
			k.pending--
		}
		if next.at > k.now {
			k.now = next.at
		}
		k.fired++
		k.firingLocal = next.local
		next.fire()
		k.firingLocal = false
		if next.transient {
			k.recycle(next)
		}
	}
	if k.now < until {
		k.now = until
	}
	return k.now
}

// Shutdown unblocks every parked or sleeping process with a termination
// signal so that their goroutines unwind and exit. It must be called after
// Run returns if processes may still be blocked; otherwise their goroutines
// leak. User process code must not swallow panics of type Killed.
func (k *Kernel) Shutdown() {
	k.shutdown = true
	for _, p := range k.procs {
		if p.state == procBlocked || p.state == procSleeping {
			p.kill()
		}
	}
}

// QueueLen reports the number of pending (possibly canceled) events.
func (k *Kernel) QueueLen() int { return len(k.queue) }

// Pending reports the number of queued non-daemon, non-canceled events —
// the count that keeps Run alive. The federation coordinator uses it for
// global quiescence detection across kernels.
func (k *Kernel) Pending() int { return k.pending }

// String summarizes the kernel state for diagnostics.
func (k *Kernel) String() string {
	return fmt.Sprintf("kernel(now=%s queued=%d fired=%d)", k.now, len(k.queue), k.fired)
}
