package des

import (
	"math"
	"math/bits"
)

// Rand is a deterministic pseudo-random stream (xoshiro256** seeded via
// splitmix64). It is self-contained so that simulation results are stable
// across Go releases, unlike math/rand's unexported default source
// behaviors. Rand is not safe for concurrent use; in DES simulations each
// component owns its stream, which also keeps components' randomness
// independent of one another's call order.
type Rand struct {
	s [4]uint64
	// spare holds a second Gaussian variate from the last Box-Muller
	// transform round.
	spare    float64
	hasSpare bool
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRand returns a stream derived from seed. Equal seeds give equal
// streams.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start in the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Stream derives an independent child stream keyed by label. The same
// (parent state at creation, label) pair always yields the same child.
// Deriving streams does not advance the parent.
func (r *Rand) Stream(label string) *Rand {
	// FNV-1a over the label, mixed with the parent's state words.
	h := uint64(1469598103934665603)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return NewRand(h ^ bits.RotateLeft64(r.s[0], 13) ^ bits.RotateLeft64(r.s[2], 41))
}

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("des: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("des: Int63n with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int64(hi)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns an unbiased random boolean.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Range returns a uniform int64 in [lo, hi]. It panics if lo > hi.
func (r *Rand) Range(lo, hi int64) int64 {
	if lo > hi {
		panic("des: Range with lo > hi")
	}
	return lo + r.Int63n(hi-lo+1)
}

// Exp returns an exponentially distributed variate with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed variate (Box-Muller, polar form).
func (r *Rand) Norm(mean, sigma float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + sigma*r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return mean + sigma*u*f
	}
}

// mixStep is one splitmix64 finalization round: a bijective avalanche
// over 64 bits.
func mixStep(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix3 hashes three 64-bit words into one well-mixed word by chaining
// splitmix64 finalization rounds. It is the building block for
// *counter-based* randomness: deriving a variate as a pure function of
// (seed, stream key, counter) makes the draw independent of execution
// interleaving, unlike a sequential stream, which yields values in
// whatever order its consumers happen to call it. The fault-injection
// subsystem keys packet fates on (fault seed, directed link, packet
// index) this way, so the same packet meets the same fate whether the
// simulation runs on one kernel or sharded across a federation.
func Mix3(a, b, c uint64) uint64 {
	h := mixStep(a + 0x9e3779b97f4a7c15)
	h = mixStep(h ^ (b + 0x3c6ef372fe94f82a))
	h = mixStep(h ^ (c + 0xdaa66d2c7ddf743f))
	return h
}

// UnitFloat64 maps 64 random bits to a uniform float64 in [0, 1) with 53
// bits of precision, the same mapping Rand.Float64 uses. Combine with
// Mix3 for counter-based probability draws.
func UnitFloat64(bits uint64) float64 {
	return float64(bits>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
