package des

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRandSeedSensitivity(t *testing.T) {
	a, b := NewRand(123), NewRand(124)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 collisions between different seeds", same)
	}
}

func TestRandStreamIndependence(t *testing.T) {
	r := NewRand(7)
	s1 := r.Stream("alpha")
	s2 := r.Stream("beta")
	s1b := NewRand(7).Stream("alpha")
	for i := 0; i < 50; i++ {
		if s1.Uint64() != s1b.Uint64() {
			t.Fatal("same-label streams differ")
		}
	}
	same := 0
	s1 = NewRand(7).Stream("alpha")
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams alpha/beta collide %d/100", same)
	}
}

func TestRandZeroSeedWorks(t *testing.T) {
	r := NewRand(0)
	seen := map[uint64]bool{}
	for i := 0; i < 20; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 19 {
		t.Error("zero seed produces degenerate stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRangeInclusive(t *testing.T) {
	r := NewRand(6)
	sawLo, sawHi := false, false
	for i := 0; i < 20000; i++ {
		v := r.Range(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("Range = %d", v)
		}
		if v == -3 {
			sawLo = true
		}
		if v == 3 {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Error("Range endpoints never sampled")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(8)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRand(9)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(10)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		v := r.Exp(3.0)
		if v < 0 {
			t.Fatalf("Exp < 0: %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-3.0) > 0.1 {
		t.Errorf("Exp mean = %v, want ~3", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRand(11)
	n := 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Norm mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("Norm sigma = %v, want ~2", math.Sqrt(variance))
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(12)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestBoolBalance(t *testing.T) {
	r := NewRand(13)
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < 4700 || trues > 5300 {
		t.Errorf("Bool imbalance: %d/10000", trues)
	}
}

// Property: Intn is always within bounds for arbitrary positive n.
func TestIntnBoundsProperty(t *testing.T) {
	r := NewRand(14)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: Int63n within bounds.
func TestInt63nBoundsProperty(t *testing.T) {
	r := NewRand(15)
	f := func(n uint32) bool {
		m := int64(n%1_000_000) + 1
		v := r.Int63n(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewRand(16)
	const buckets = 10
	counts := make([]int, buckets)
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	expect := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-expect) > 0.05*expect {
			t.Errorf("bucket %d count %d deviates from %v", b, c, expect)
		}
	}
}

// Mix3 is the counter-based randomness primitive: a pure function of its
// arguments, sensitive to every argument, with roughly uniform output.
func TestMix3CounterHash(t *testing.T) {
	if Mix3(1, 2, 3) != Mix3(1, 2, 3) {
		t.Fatal("Mix3 must be a pure function")
	}
	seen := map[uint64]bool{Mix3(1, 2, 3): true}
	for _, v := range []uint64{Mix3(2, 2, 3), Mix3(1, 3, 3), Mix3(1, 2, 4), Mix3(0, 0, 0)} {
		if seen[v] {
			t.Fatalf("collision on trivially distinct inputs: %#x", v)
		}
		seen[v] = true
	}
	// Uniformity of UnitFloat64 over a counter sweep: mean of 100k draws
	// from one (seed, stream) pair should sit near 0.5.
	sum := 0.0
	const n = 100000
	for i := uint64(0); i < n; i++ {
		f := UnitFloat64(Mix3(42, 7, i))
		if f < 0 || f >= 1 {
			t.Fatalf("UnitFloat64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("counter-stream mean %v, want ~0.5", mean)
	}
}
