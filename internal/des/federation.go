package des

import (
	"fmt"
	"sync"

	"repro/internal/logical"
)

// Federation shards a deterministic simulation across several Kernels,
// one per partition, executed on their own goroutines under conservative
// (LBTS / null-message style) time synchronization.
//
// The model follows the PTIDES/HLA conservative regime the paper's
// federated deployment relies on: inter-partition communication flows
// exclusively through timestamped Channels, each declaring a positive
// lookahead — a lower bound on the latency of anything crossing it. The
// coordinator repeatedly grants every kernel a window bounded by the
// minimum of (earliest possible send time of each upstream partition +
// that channel's lookahead); kernels execute their windows in parallel
// and exchange messages only at the barrier between rounds. Because
// cross-partition messages always carry timestamps at or beyond the
// receiver's granted horizon, every kernel still fires its events in
// strict (time, sequence) order, and the federation as a whole remains a
// pure function of its seed: the same seed produces the same results for
// every partition count and every GOMAXPROCS value.
//
// All partition kernels are created from the same root seed, so a named
// random stream (Kernel.Rand(label)) yields the same sequence regardless
// of which partition consumes it. A simulation whose components draw
// only from component-labeled streams therefore produces byte-identical
// results whether it runs on one kernel or on a federation — the
// property the cross-mode determinism tests pin down.
type Federation struct {
	kernels []*Kernel
	chans   []*Channel
	inbound [][]*Channel // per-target-partition, in creation order
	running bool
	rounds  uint64
}

// Channel is a timestamped inter-federate link from one partition to
// another. Messages sent through it are delivered to the target kernel as
// events at their timestamps; the declared lookahead is the conservative
// contract: every Send must carry a timestamp at least lookahead beyond
// the sender's current time.
//
// Determinism preconditions: a Channel must only be used from its
// sending kernel's execution context (events or processes — the queue
// is deliberately unlocked), timestamps must be computed without
// consuming random streams shared across partitions, and all channels
// must be created before the federation runs, in an order that is
// itself deterministic — the coordinator drains channels in creation
// order, which fixes cross-partition event sequence numbers and with
// them same-instant tie-breaking.
type Channel struct {
	fed       *Federation
	from, to  int
	lookahead logical.Duration
	// queue buffers messages produced during the sender's current window;
	// it is written only by the sender kernel's goroutine and drained only
	// by the coordinator at the barrier, so no lock is needed.
	queue []fedMsg
	sent  uint64
}

type fedMsg struct {
	at      logical.Time
	deliver func()
}

// NewFederation creates a federation of the given number of partition
// kernels. Every kernel derives from the same seed so that labeled
// random streams are identical across partition assignments (and match a
// single kernel created with the same seed).
func NewFederation(seed uint64, partitions int) *Federation {
	if partitions <= 0 {
		panic("des: federation needs at least one partition")
	}
	f := &Federation{
		kernels: make([]*Kernel, partitions),
		inbound: make([][]*Channel, partitions),
	}
	for i := range f.kernels {
		f.kernels[i] = NewKernel(seed)
	}
	return f
}

// Partitions returns the number of partition kernels.
func (f *Federation) Partitions() int { return len(f.kernels) }

// Kernel returns partition i's kernel.
func (f *Federation) Kernel(i int) *Kernel { return f.kernels[i] }

// Rounds returns the number of coordination rounds executed so far (a
// cost metric: each round is one barrier).
func (f *Federation) Rounds() uint64 { return f.rounds }

// EventsFired sums the events executed across all partitions.
func (f *Federation) EventsFired() uint64 {
	var n uint64
	for _, k := range f.kernels {
		n += k.EventsFired()
	}
	return n
}

// Channel creates an inter-federate link from partition `from` to
// partition `to` with the given lookahead. Lookahead must be positive:
// conservative synchronization cannot make progress through a
// zero-latency cross-partition link.
func (f *Federation) Channel(from, to int, lookahead logical.Duration) *Channel {
	if f.running {
		panic("des: Federation.Channel called while running")
	}
	if from == to {
		panic("des: federation channel must cross partitions")
	}
	if lookahead <= 0 {
		panic("des: federation channel needs positive lookahead")
	}
	c := &Channel{fed: f, from: from, to: to, lookahead: lookahead}
	f.chans = append(f.chans, c)
	f.inbound[to] = append(f.inbound[to], c)
	return c
}

// Lookahead returns the channel's conservative latency bound.
func (c *Channel) Lookahead() logical.Duration { return c.lookahead }

// SetLookahead lowers (or raises) the channel's lookahead. It may only be
// called before the federation runs — typically when a link latency model
// with a smaller minimum is installed after topology construction.
func (c *Channel) SetLookahead(d logical.Duration) {
	if c.fed.running {
		panic("des: Channel.SetLookahead called while running")
	}
	if d <= 0 {
		panic("des: federation channel needs positive lookahead")
	}
	c.lookahead = d
}

// Sent returns the number of messages that crossed the channel.
func (c *Channel) Sent() uint64 { return c.sent }

// Send enqueues a message for delivery at time `at` on the target kernel.
// It must be called from the sending kernel's execution context (inside a
// firing event or process), and `at` must respect the lookahead contract.
// The deliver closure runs as an event on the target kernel.
func (c *Channel) Send(at logical.Time, deliver func()) {
	sender := c.fed.kernels[c.from]
	if at < sender.now.Add(c.lookahead) {
		panic(fmt.Sprintf(
			"des: federation channel %d->%d: send at %v violates lookahead %v (sender now %v)",
			c.from, c.to, at, c.lookahead, sender.now))
	}
	c.queue = append(c.queue, fedMsg{at: at, deliver: deliver})
	c.sent++
}

// drain injects every buffered cross-partition message into its target
// kernel. Called only at the barrier. Channels are visited in creation
// order and messages in FIFO order, so event sequence numbers — and with
// them tie-breaking — are deterministic.
func (f *Federation) drain() {
	for _, c := range f.chans {
		target := f.kernels[c.to]
		for _, m := range c.queue {
			target.AtTransient(m.at, m.deliver)
		}
		c.queue = c.queue[:0]
	}
}

func (f *Federation) totalPending() int {
	n := 0
	for _, k := range f.kernels {
		n += k.Pending()
	}
	return n
}

// Run executes the federation until only daemon events remain anywhere
// (the federated analogue of a single kernel going quiescent) or every
// next event lies strictly beyond the until horizon. It returns the
// latest simulated time reached by any partition.
//
// Within a coordination round, each kernel advances through every event
// — daemon events included — inside its granted window, mirroring how a
// single kernel interleaves daemon housekeeping with pending work while
// the global simulation is still live. At the end of the run a partition
// may have fired housekeeping daemons slightly past the instant at which
// a single kernel would have stopped; scenario reports must not depend
// on daemon-only tail activity (see the cross-mode determinism tests).
func (f *Federation) Run(until logical.Time) logical.Time {
	if f.running {
		panic("des: Federation.Run called reentrantly")
	}
	f.running = true
	defer func() { f.running = false }()

	n := len(f.kernels)
	eot := make([]logical.Time, n)
	lbts := make([]logical.Time, n)
	window := make([]logical.Time, n)
	for {
		f.drain()
		if f.totalPending() == 0 {
			break
		}

		// Earliest output time per partition: the time of its next queued
		// event (daemon events can send too), or Forever when idle.
		for i, k := range f.kernels {
			if t, ok := k.NextEventTime(); ok {
				eot[i] = t
			} else {
				eot[i] = logical.Forever
			}
		}

		// LBTS fixpoint: lbts[i] is a lower bound on the time of any event
		// that can still occur at partition i, accounting for transitive
		// cross-partition influence. Converges in at most n sweeps because
		// every channel has positive lookahead.
		copy(lbts, eot)
		for sweep := 0; sweep < n; sweep++ {
			changed := false
			for _, c := range f.chans {
				if b := lbts[c.from].Add(c.lookahead); b < lbts[c.to] {
					lbts[c.to] = b
					changed = true
				}
			}
			if !changed {
				break
			}
		}

		// maxFinite bounds windows that would otherwise be unbounded (no
		// inbound channels under an infinite horizon): running such a
		// partition to local quiescence in one go would either skip its
		// daemon events or chase a cyclic daemon forever. Some lbts entry is
		// finite here because totalPending > 0.
		maxFinite := logical.Time(0)
		for i := 0; i < n; i++ {
			if lbts[i] < logical.Forever && lbts[i] > maxFinite {
				maxFinite = lbts[i]
			}
		}

		for i := 0; i < n; i++ {
			grant := logical.Forever
			for _, c := range f.inbound[i] {
				if b := lbts[c.from].Add(c.lookahead); b < grant {
					grant = b
				}
			}
			w := until
			if grant < logical.Forever && grant-1 < w {
				// Strictly below the grant: an inbound message may arrive at
				// exactly grant and must still be able to win a tie there.
				w = grant - 1
			}
			if w == logical.Forever {
				w = maxFinite
			}
			window[i] = w
		}

		// Execute the granted windows in parallel: the conservative grant
		// guarantees no kernel can receive input inside its window, so the
		// only cross-goroutine state is the channel queues, which are
		// per-sender and drained after the barrier.
		var wg sync.WaitGroup
		ran := false
		for i, k := range f.kernels {
			if eot[i] > window[i] {
				continue
			}
			ran = true
			wg.Add(1)
			go func(k *Kernel, w logical.Time) {
				defer wg.Done()
				k.RunLive(w)
			}(k, window[i])
		}
		wg.Wait()
		f.rounds++
		if !ran {
			// Every next event lies beyond the horizon.
			break
		}
	}

	latest := logical.Time(0)
	for _, k := range f.kernels {
		if until < logical.Forever && k.now < until {
			k.now = until
		}
		if k.now > latest {
			latest = k.now
		}
	}
	return latest
}

// RunAll executes the federation until global quiescence.
func (f *Federation) RunAll() logical.Time { return f.Run(logical.Forever) }

// Shutdown unwinds every partition's blocked processes (see
// Kernel.Shutdown). Call it after Run returns.
func (f *Federation) Shutdown() {
	for _, k := range f.kernels {
		k.Shutdown()
	}
}

// String summarizes the federation state for diagnostics.
func (f *Federation) String() string {
	return fmt.Sprintf("federation(partitions=%d channels=%d rounds=%d)",
		len(f.kernels), len(f.chans), f.rounds)
}
