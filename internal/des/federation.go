package des

import (
	"fmt"
	"math"
	"time"

	"repro/internal/logical"
)

// Federation shards a deterministic simulation across several Kernels,
// one per partition, executed on their own goroutines under conservative
// (LBTS / null-message style) time synchronization.
//
// The model follows the PTIDES/HLA conservative regime the paper's
// federated deployment relies on: inter-partition communication flows
// exclusively through timestamped Channels, each declaring a positive
// lookahead — a lower bound on the latency of anything crossing it.
//
// Coordination is event-driven, not lock-step. At Run start the
// coordinator collapses the channel graph into a partition-pair
// min-lookahead matrix and closes it transitively (all-pairs shortest
// lookahead paths, Floyd–Warshall), so the widest provably-safe window
// for a partition is a single O(partitions) minimum:
//
//	grant(i) = min over j of bound(j) + reach(j, i)
//
// where bound(j) is a lower bound on the base time of partition j's
// future sends (its earliest queued event) and reach(j, i) is the
// cheapest lookahead walk j→i (≥ 1 channel). Each kernel executes its
// granted window on its own goroutine; when it parks, the coordinator
// updates its bound, drains its outbound channel FIFOs (a null-message
// batch: the drain carries the sender's new guarantee even when no data
// crossed), incrementally recomputes only the grants that could have
// widened, and re-dispatches just those kernels. A partition whose grant
// is unconstrained — no inbound lookahead path, or a finite horizon —
// free-runs through many old-style "rounds" in a single window without
// ever parking at a barrier, because there is no barrier.
//
// Why determinism survives free-running: every cross-partition message
// carries a timestamp at or beyond the receiver's granted horizon, so
// each kernel still fires its events in strict (time, sequence) order
// and per-component behaviour is a pure function of the seed. The
// coordinator's window boundaries depend on goroutine completion order
// and may differ between runs, which permutes kernel-global sequence
// numbers of injected messages relative to locally scheduled events.
// That permutation is observable only through same-instant ties between
// a cross-partition message and an unrelated event — the same tie class
// that already legitimately differs between a single kernel and any
// federation. Simulations that demand byte-equality across execution
// modes must (and do — see simnet.Cluster and the scenario engine's
// per-client skew) keep cross-partition timestamps tie-free; under that
// contract every conservative schedule yields identical behaviour.
//
// All partition kernels are created from the same root seed, so a named
// random stream (Kernel.Rand(label)) yields the same sequence regardless
// of which partition consumes it. A simulation whose components draw
// only from component-labeled streams therefore produces byte-identical
// results whether it runs on one kernel or on a federation — the
// property the cross-mode determinism tests pin down.
type Federation struct {
	kernels  []*Kernel
	chans    []*Channel
	inbound  [][]*Channel // per-target-partition, in creation order
	outbound [][]*Channel // per-source-partition, in creation order
	running  bool

	// Diagnostics (cumulative across Run calls; never canonical).
	rounds   uint64
	grants   uint64
	parkedNs int64
}

// noPath marks an absent lookahead walk in the reach matrix.
const noPath = logical.Duration(math.MaxInt64)

// Channel is a timestamped inter-federate link from one partition to
// another. Messages sent through it are delivered to the target kernel as
// events at their timestamps; the declared lookahead is the conservative
// contract: every Send must carry a timestamp at least lookahead beyond
// the sender's current time.
//
// Determinism preconditions: a Channel must only be used from its
// sending kernel's execution context (events or processes — the queue
// is deliberately unlocked), timestamps must be computed without
// consuming random streams shared across partitions, and all channels
// must be created before the federation runs, in an order that is
// itself deterministic — drains visit channels in creation order, which
// fixes the relative sequence numbers of messages that become visible
// at the same park.
type Channel struct {
	fed       *Federation
	from, to  int
	lookahead logical.Duration
	// queue buffers messages produced during the sender's current window;
	// it is written only by the sender kernel's goroutine and read only by
	// the coordinator after the sender parks (the park hand-off through
	// the completion channel is the synchronization), so no lock is
	// needed. Its backing array is recycled across drains.
	queue []fedMsg
	// staged is coordinator-owned: messages drained from queue while the
	// target kernel was still running, held until the target parks. Its
	// backing array is recycled across drains too.
	staged []fedMsg
	// flush is the null-message batch marker: the timestamp stamped at the
	// channel's most recent drain, below which the sender guaranteed — at
	// that drain — to send nothing further. It is a diagnostic snapshot,
	// not an input to grant computation: a message injected into the
	// sender after the drain can legitimately wake it below an old mark
	// (the transitive reach matrix is what keeps grants safe).
	flush logical.Time
	sent  uint64
}

// fedMsg is one queued cross-partition message: delivery time plus the
// closure-free (fn, arg) pair injected into the target kernel's pooled
// events (see Kernel.AtTransientFn). Closure senders (Channel.Send) ride
// the same shape through callClosure.
type fedMsg struct {
	at  logical.Time
	fn  func(arg any)
	arg any
}

// callClosure adapts a plain deliver closure to the (fn, arg) message
// shape: the closure itself is the argument (a func value is a single
// word, so storing it in the arg slot allocates nothing beyond the
// closure the caller already built).
func callClosure(a any) { a.(func())() }

// NewFederation creates a federation of the given number of partition
// kernels. Every kernel derives from the same seed so that labeled
// random streams are identical across partition assignments (and match a
// single kernel created with the same seed).
func NewFederation(seed uint64, partitions int) *Federation {
	if partitions <= 0 {
		panic("des: federation needs at least one partition")
	}
	f := &Federation{
		kernels:  make([]*Kernel, partitions),
		inbound:  make([][]*Channel, partitions),
		outbound: make([][]*Channel, partitions),
	}
	for i := range f.kernels {
		f.kernels[i] = NewKernel(seed)
		f.kernels[i].TrackEmit()
	}
	return f
}

// Partitions returns the number of partition kernels.
func (f *Federation) Partitions() int { return len(f.kernels) }

// Kernel returns partition i's kernel.
func (f *Federation) Kernel(i int) *Kernel { return f.kernels[i] }

// Rounds returns the number of global coordination rounds so far: the
// times the coordinator found every partition parked at once and had to
// perform a full dispatch sweep to restart progress — the direct
// successor of the old lock-step barrier round, which serialized the
// whole federation at every LBTS advance. Grants handed out while at
// least one other partition was still mid-window are not rounds; they
// are the asynchronous path this coordinator exists for. A cost metric,
// never part of canonical reports; like all coordination diagnostics it
// may vary between runs of the same simulation, because window
// boundaries follow goroutine completion order.
func (f *Federation) Rounds() uint64 { return f.rounds }

// Grants returns the total number of windows dispatched to partition
// kernels so far (across all partitions; the grant-count successor of
// the barrier-round metric). Diagnostic, schedule-dependent.
func (f *Federation) Grants() uint64 { return f.grants }

// ParkedNs returns cumulative wall-clock nanoseconds that partitions
// with pending work spent parked between windows, waiting for a grant —
// the federation's serialization tax. Diagnostic, machine-dependent.
func (f *Federation) ParkedNs() int64 { return f.parkedNs }

// EventsFired sums the events executed across all partitions.
func (f *Federation) EventsFired() uint64 {
	var n uint64
	for _, k := range f.kernels {
		n += k.EventsFired()
	}
	return n
}

// Channel creates an inter-federate link from partition `from` to
// partition `to` with the given lookahead. Lookahead must be positive:
// conservative synchronization cannot make progress through a
// zero-latency cross-partition link.
func (f *Federation) Channel(from, to int, lookahead logical.Duration) *Channel {
	if f.running {
		panic("des: Federation.Channel called while running")
	}
	if from == to {
		panic("des: federation channel must cross partitions")
	}
	if lookahead <= 0 {
		panic("des: federation channel needs positive lookahead")
	}
	c := &Channel{fed: f, from: from, to: to, lookahead: lookahead}
	f.chans = append(f.chans, c)
	f.inbound[to] = append(f.inbound[to], c)
	f.outbound[from] = append(f.outbound[from], c)
	return c
}

// Lookahead returns the channel's conservative latency bound.
func (c *Channel) Lookahead() logical.Duration { return c.lookahead }

// SetLookahead lowers (or raises) the channel's lookahead. It may only be
// called before the federation runs — typically when a link latency model
// with a smaller minimum is installed after topology construction.
func (c *Channel) SetLookahead(d logical.Duration) {
	if c.fed.running {
		panic("des: Channel.SetLookahead called while running")
	}
	if d <= 0 {
		panic("des: federation channel needs positive lookahead")
	}
	c.lookahead = d
}

// Sent returns the number of messages that crossed the channel.
func (c *Channel) Sent() uint64 { return c.sent }

// FlushedTo returns the channel's most recent null-message mark: the
// guarantee stamped at its last drain (see the flush field for why this
// is a diagnostic snapshot, not a live bound).
func (c *Channel) FlushedTo() logical.Time { return c.flush }

// Send enqueues a message for delivery at time `at` on the target kernel.
// It must be called from the sending kernel's execution context (inside a
// firing event or process), and `at` must respect the lookahead contract.
// The deliver closure runs as an event on the target kernel. Hot paths
// that would otherwise build a fresh capture closure per message should
// use SendFn instead.
func (c *Channel) Send(at logical.Time, deliver func()) {
	c.SendFn(at, callClosure, deliver)
}

// SendFn is the closure-free form of Send: at time `at` the target
// kernel calls fn(arg). fn is typically a package-level function and arg
// a pooled carrier, so enqueuing, draining and injecting the message
// allocates nothing beyond the queue slot. The same execution-context
// and lookahead contracts as Send apply. Carriers released by fn run on
// the target kernel's goroutine — pool them on the target side (see
// simnet's delivery carriers for the pattern).
func (c *Channel) SendFn(at logical.Time, fn func(arg any), arg any) {
	sender := c.fed.kernels[c.from]
	if sender.firingLocal {
		panic(fmt.Sprintf(
			"des: federation channel %d->%d: send from a local-marked event (SpawnLocal promises never to emit; see Event.local)",
			c.from, c.to))
	}
	if at < sender.now.Add(c.lookahead) {
		panic(fmt.Sprintf(
			"des: federation channel %d->%d: send at %v violates lookahead %v (sender now %v)",
			c.from, c.to, at, c.lookahead, sender.now))
	}
	c.queue = append(c.queue, fedMsg{at: at, fn: fn, arg: arg})
	c.sent++
}

// lookaheadMatrix builds reach: reach[j][i] is the cheapest lookahead
// walk from partition j to partition i using at least one channel
// (noPath when none exists). Because every channel's lookahead is
// positive, the shortest walk is well-defined and Floyd–Warshall over
// the per-pair minimum closes it in O(partitions³) — paid once per Run,
// after which every grant computation is a single O(partitions) sweep
// instead of an O(channels × sweeps) fixpoint per round.
func (f *Federation) lookaheadMatrix() [][]logical.Duration {
	n := len(f.kernels)
	reach := make([][]logical.Duration, n)
	backing := make([]logical.Duration, n*n)
	for i := range backing {
		backing[i] = noPath
	}
	for i := range reach {
		reach[i] = backing[i*n : (i+1)*n]
	}
	for _, c := range f.chans {
		if c.lookahead < reach[c.from][c.to] {
			reach[c.from][c.to] = c.lookahead
		}
	}
	for k := 0; k < n; k++ {
		for a := 0; a < n; a++ {
			dak := reach[a][k]
			if dak == noPath {
				continue
			}
			row := reach[a]
			via := reach[k]
			for b := 0; b < n; b++ {
				if via[b] == noPath {
					continue
				}
				if alt := dak + via[b]; alt < row[b] {
					row[b] = alt
				}
			}
		}
	}
	return reach
}

// fedWindow is one work item for a partition worker goroutine.
type fedWindow struct {
	until logical.Time
	// quiesce selects Kernel.Run (stop at local quiescence — used for
	// structurally isolated partitions, which nothing can ever wake)
	// instead of Kernel.RunLive.
	quiesce bool
}

// coordinator carries the per-Run scheduling state. It lives on the
// coordinator goroutine (the Run caller); worker goroutines only execute
// kernel windows and report completions — the channel hand-offs are the
// only cross-goroutine synchronization, which is what keeps the kernels'
// unlocked internals race-free.
type coordinator struct {
	f     *Federation
	until logical.Time
	reach [][]logical.Duration
	// isolated[i]: no other partition has a lookahead walk into i, so
	// nothing can ever be injected into it — it free-runs to the horizon
	// in a single grant.
	isolated []bool
	// bound[i] is a lower bound on the base time of partition i's future
	// sends: its earliest queued event that could emit (Kernel.
	// NextEmitTime — local-marked events are provably send-free and are
	// skipped) while parked, frozen at its dispatch value while running.
	// Freezing is safe: nothing is injected mid-window (messages staged
	// for a running partition wait for its park, and the grant that
	// opened the window guaranteed they land beyond it), and local
	// events cannot schedule emitting events (the mark is closed under
	// scheduling), so no emitting event can appear below the frozen
	// value mid-window.
	bound []logical.Time
	// next[i] is partition i's earliest queued event of any kind — the
	// dispatch criterion (a window is only granted if it contains work)
	// and the fallback horizon cap. next[i] ≤ bound[i] always.
	next []logical.Time
	// floor[i] is the earliest timestamp among messages staged for
	// partition i (Forever when none). A staged message is in flight but
	// invisible to every bound — the sender already fired its emitting
	// event (so the sender's bound has moved past it) and the receiver
	// has not been handed it yet (so the receiver's queue does not show
	// it). Without this term a round trip can land inside the
	// requester's own window: the requester emits, parks, its bound
	// jumps forward, a wide grant is computed, and the response comes
	// back below the window end. The floor re-materializes the staged
	// message as a bound: grants treat it as a non-local event the
	// receiver is about to acquire.
	floor []logical.Time
	// minSpan is the grant-hysteresis threshold: while other partitions
	// are still running, a parked partition is only redispatched if its
	// window reaches at least this far past its next event. Dribble
	// windows — redispatching the instant a single message lands, for a
	// window that ends just before the next in-flight one — cost a full
	// grant round-trip per message; deferring them lets the still-running
	// partitions park, widen the grant, and amortize one dispatch over a
	// whole batch of arrivals. Set to the federation's minimum channel
	// lookahead (the natural "one hop" of simulated time). Progress is
	// unaffected: once every partition is parked, dispatch falls back to
	// granting any window with work in it.
	minSpan logical.Duration
	// runningP/dirty/parkedAt are per-partition scheduler flags: executing
	// a window; grant may have widened since last look; wall-clock park
	// instant (zero time = parked without pending work, not counted).
	runningP []bool
	dirty    []bool
	parkedAt []time.Time
	work     []chan fedWindow
	done     chan int
	nRunning int
}

// Run executes the federation until only daemon events remain anywhere
// (the federated analogue of a single kernel going quiescent) or every
// next event lies strictly beyond the until horizon. It returns the
// latest simulated time reached by any partition.
//
// Within its granted windows each kernel advances through every event —
// daemon events included — mirroring how a single kernel interleaves
// daemon housekeeping with pending work while the global simulation is
// still live. At the end of the run a partition may have fired
// housekeeping daemons slightly past the instant at which a single
// kernel would have stopped, and a structurally isolated partition
// (no inbound lookahead path) runs with exact single-kernel semantics,
// so its daemons do not track other partitions' liveness; scenario
// reports must not depend on daemon-only tail activity (see the
// cross-mode determinism tests).
func (f *Federation) Run(until logical.Time) logical.Time {
	if f.running {
		panic("des: Federation.Run called reentrantly")
	}
	f.running = true
	defer func() { f.running = false }()

	if len(f.kernels) == 1 {
		// A federation of one partition degenerates to its kernel: no
		// channels can exist (they must cross partitions), so there is
		// nothing to coordinate — zero rounds, zero grants.
		f.kernels[0].Run(until)
		return f.finish(until)
	}

	n := len(f.kernels)
	co := &coordinator{
		f:        f,
		until:    until,
		reach:    f.lookaheadMatrix(),
		isolated: make([]bool, n),
		bound:    make([]logical.Time, n),
		next:     make([]logical.Time, n),
		floor:    make([]logical.Time, n),
		runningP: make([]bool, n),
		dirty:    make([]bool, n),
		parkedAt: make([]time.Time, n),
		work:     make([]chan fedWindow, n),
		done:     make(chan int, n),
	}
	for _, c := range f.chans {
		if co.minSpan == 0 || 2*c.lookahead < co.minSpan {
			co.minSpan = 2 * c.lookahead
		}
	}
	for i := 0; i < n; i++ {
		co.floor[i] = logical.Forever
		co.isolated[i] = true
		for j := 0; j < n && co.isolated[i]; j++ {
			if j != i && co.reach[j][i] != noPath {
				co.isolated[i] = false
			}
		}
		co.refresh(i)
		co.dirty[i] = true
		co.work[i] = make(chan fedWindow, 1)
		k := f.kernels[i]
		wch := co.work[i]
		go func() {
			for w := range wch {
				if w.quiesce {
					k.Run(w.until)
				} else {
					k.RunLive(w.until)
				}
				co.done <- i
			}
		}()
	}

	for {
		if co.nRunning > 0 {
			// Block for one completion, then absorb every other park that
			// has already piled up before recomputing any grants: each
			// extra bound folded in now widens the windows handed out next,
			// so coalescing turns k quick completions into one wide
			// re-dispatch instead of k narrow ones.
			co.park(<-co.done)
			for drained := false; !drained && co.nRunning > 0; {
				select {
				case i := <-co.done:
					co.park(i)
				default:
					drained = true
				}
			}
			if co.nRunning > 0 {
				// Something is still mid-window: hand out whatever widened.
				// Once the last partition parks we instead fall through to
				// the all-parked branch below, whose quiescence check is
				// what lets a federation with only cyclic daemons left
				// terminate instead of chasing them forever.
				co.dispatch(false, true)
			}
			continue
		}
		// All partitions parked: every channel queue has been drained and
		// injected, so global quiescence is exactly "no non-daemon events
		// anywhere". Dispatch in two phases: first only windows with real
		// runway (deferred partitions stay parked while the laggards whose
		// progress widens their grants run), then — if nothing qualifies —
		// any window with work in it, which is what guarantees progress.
		if f.totalPending() == 0 {
			break
		}
		n := co.dispatch(true, true)
		if n == 0 {
			n = co.dispatch(true, false)
		}
		if n == 0 {
			// Every next event lies beyond the horizon.
			break
		}
		f.rounds++
	}
	for _, w := range co.work {
		close(w)
	}
	return f.finish(until)
}

// refresh recomputes partition i's earliest-event and earliest-output
// bounds from its queue (Forever when empty). Must only be called while
// i is parked.
func (co *coordinator) refresh(i int) {
	k := co.f.kernels[i]
	if t, ok := k.NextEventTime(); ok {
		co.next[i] = t
	} else {
		co.next[i] = logical.Forever
	}
	if t, ok := k.NextEmitTime(); ok {
		co.bound[i] = t
	} else {
		co.bound[i] = logical.Forever
	}
}

// grant computes the widest provably-safe horizon for partition i: the
// earliest timestamp any message could still arrive with, over every
// lookahead walk from every partition (including i itself, through
// cycles). Running partitions contribute their dispatch-time bound —
// anything they send inside their current window carries at least that
// base plus the walk's lookahead. A partition's effective base is the
// minimum of its queue bound and its staged floor: a message staged
// for it is an emitting event it is about to acquire, so downstream
// walks must assume emissions from that timestamp onward. Messages
// staged for i itself cap the grant directly — they will be injected
// at i's next park and the window must not overrun them.
func (co *coordinator) grant(i int) logical.Time {
	g := co.floor[i]
	for j, b := range co.bound {
		d := co.reach[j][i]
		if f := co.floor[j]; f < b {
			b = f
		}
		if d == noPath || b == logical.Forever {
			continue
		}
		if arr := b.Add(d); arr < g {
			g = arr
		}
	}
	return g
}

// maxFiniteNext returns the largest finite next-event time — the cap
// for windows that no channel constrains under an infinite horizon
// (running such a partition unbounded would chase cyclic daemons
// forever). Some next is finite whenever totalPending > 0.
func (co *coordinator) maxFiniteNext() logical.Time {
	m := logical.Time(0)
	for _, t := range co.next {
		if t < logical.Forever && t > m {
			m = t
		}
	}
	return m
}

// dispatch scans parked partitions (all of them, or only those whose
// grant may have widened) and hands a window to every one with work
// inside it. strict applies the minSpan hysteresis filter: dribble
// windows are deferred (and left dirty) in the expectation that other
// partitions' progress widens them. Returns the number of kernels
// dispatched.
func (co *coordinator) dispatch(all, strict bool) int {
	dispatched := 0
	for i := range co.next {
		if co.runningP[i] || (!all && !co.dirty[i]) {
			continue
		}
		co.dirty[i] = false
		if co.next[i] == logical.Forever {
			continue // empty queue: nothing to run until an injection
		}
		if co.isolated[i] {
			// Nothing can ever be injected: free-run to the horizon in one
			// grant, with exact single-kernel semantics (stop at local
			// quiescence rather than chasing cyclic daemons).
			if co.f.kernels[i].Pending() == 0 {
				continue
			}
			co.launch(i, fedWindow{until: co.until, quiesce: true})
			dispatched++
			continue
		}
		w := co.until
		capped := false
		if g := co.grant(i); g < logical.Forever && g-1 < w {
			// Strictly below the grant: an inbound message may arrive at
			// exactly grant and must still be able to win a tie there.
			w = g - 1
			capped = true
		}
		if w == logical.Forever {
			w = co.maxFiniteNext()
		}
		if co.next[i] > w {
			continue
		}
		if strict && capped && w.Sub(co.next[i]) < co.minSpan {
			// Dribble window: defer, let other partitions' parks widen the
			// grant, and batch the arrivals into one dispatch (see
			// coordinator.minSpan). Stays dirty so the next sweep
			// reconsiders it.
			co.dirty[i] = true
			continue
		}
		co.launch(i, fedWindow{until: w})
		dispatched++
	}
	return dispatched
}

// launch marks partition i running and hands its worker the window.
func (co *coordinator) launch(i int, w fedWindow) {
	if !co.parkedAt[i].IsZero() {
		co.f.parkedNs += time.Since(co.parkedAt[i]).Nanoseconds()
		co.parkedAt[i] = time.Time{}
	}
	co.runningP[i] = true
	co.nRunning++
	co.f.grants++
	co.work[i] <- w
}

// park processes a completion report from partition i's worker: drain
// its outbound channels (the null-message batch), absorb any messages
// staged for it while it ran, refresh its bound, and mark every grant
// that could have widened — or shrunk, if an injection woke an idle
// partition — for recomputation.
func (co *coordinator) park(i int) {
	co.runningP[i] = false
	co.nRunning--

	// Absorb inbound messages staged while i was running, in channel
	// creation order (messages from still-running senders stay invisible
	// in their queues until those senders park). Every staged message
	// for i becomes a real queued event here, so the floor lifts and
	// refresh re-materializes the constraint through bound[i] instead.
	for _, c := range co.f.inbound[i] {
		if len(c.staged) > 0 {
			co.inject(c, &c.staged)
		}
	}
	co.floor[i] = logical.Forever
	co.refresh(i)

	// Drain outbound queues. The drain doubles as a null-message batch:
	// flush records the guarantee it carried even when no data crossed.
	for _, c := range co.f.outbound[i] {
		c.flush = co.bound[i].Add(c.lookahead)
		if len(c.queue) == 0 {
			continue
		}
		if co.runningP[c.to] {
			// Target is mid-window: stage coordinator-side, recycling both
			// backing arrays across drains. The staged batch lowers the
			// target's floor (see coordinator.floor) and re-marks every
			// grant downstream of it — while staged, these messages are
			// invisible to both endpoints' bounds.
			for _, m := range c.queue {
				if m.at < co.floor[c.to] {
					co.floor[c.to] = m.at
				}
			}
			c.staged = append(c.staged, c.queue...)
			clearMsgs(c.queue)
			c.queue = c.queue[:0]
			co.touch(c.to)
		} else {
			co.inject(c, &c.queue)
			co.wake(c.to)
		}
	}

	co.touch(i)
	if co.f.kernels[i].Pending() > 0 {
		co.parkedAt[i] = time.Now()
	} else {
		co.parkedAt[i] = time.Time{}
	}
}

// wake refreshes a parked partition's bound after an injection lowered
// (or first populated) its queue, and marks the grants it influences.
// Lowering a bound never endangers windows already in flight: the
// message that woke this partition came from some sender j, and every
// downstream grant already accounted for j through the transitive reach
// matrix.
func (co *coordinator) wake(target int) {
	co.refresh(target)
	co.touch(target)
}

// touch marks partition i and every partition reachable from it for
// grant recomputation.
func (co *coordinator) touch(i int) {
	co.dirty[i] = true
	for j := range co.dirty {
		if co.reach[i][j] != noPath {
			co.dirty[j] = true
		}
	}
}

// inject delivers a drained message batch into the (parked) target
// kernel in FIFO order, pre-reserving pooled events so the batch
// allocates nothing, then resets the batch slice in place so its
// backing array is reused by the next window.
func (co *coordinator) inject(c *Channel, msgs *[]fedMsg) {
	target := co.f.kernels[c.to]
	batch := *msgs
	target.ReserveEvents(len(batch))
	for i := range batch {
		if batch[i].at < target.now {
			// A message landing behind the target's clock means a window
			// overran the true safe grant — a coordinator soundness bug,
			// never a legitimate runtime condition. Fail loudly: the
			// alternative is a silent determinism divergence much later.
			panic(fmt.Sprintf("des: federation channel %d->%d: injecting message at %v behind target clock %v (grant soundness bug)",
				c.from, c.to, batch[i].at, target.now))
		}
		target.AtTransientFn(batch[i].at, batch[i].fn, batch[i].arg)
	}
	clearMsgs(batch)
	*msgs = batch[:0]
}

// clearMsgs zeroes a drained batch so recycled backing arrays do not
// pin delivery closures past their injection.
func clearMsgs(msgs []fedMsg) {
	for i := range msgs {
		msgs[i] = fedMsg{}
	}
}

func (f *Federation) totalPending() int {
	n := 0
	for _, k := range f.kernels {
		n += k.Pending()
	}
	return n
}

// finish clamps every kernel to the horizon and reports the latest
// simulated time reached.
func (f *Federation) finish(until logical.Time) logical.Time {
	latest := logical.Time(0)
	for _, k := range f.kernels {
		if until < logical.Forever && k.now < until {
			k.now = until
		}
		if k.now > latest {
			latest = k.now
		}
	}
	return latest
}

// RunAll executes the federation until global quiescence.
func (f *Federation) RunAll() logical.Time { return f.Run(logical.Forever) }

// Shutdown unwinds every partition's blocked processes (see
// Kernel.Shutdown). Call it after Run returns.
func (f *Federation) Shutdown() {
	for _, k := range f.kernels {
		k.Shutdown()
	}
}

// String summarizes the federation state for diagnostics.
func (f *Federation) String() string {
	return fmt.Sprintf("federation(partitions=%d channels=%d rounds=%d grants=%d)",
		len(f.kernels), len(f.chans), f.rounds, f.grants)
}
