package des

import (
	"testing"
	"testing/quick"

	"repro/internal/logical"
)

func TestLocalClockNoDriftTracksGlobal(t *testing.T) {
	k := NewKernel(1)
	c := k.NewLocalClock(ClockConfig{}, nil)
	k.At(logical.Time(5*logical.Second), func() {
		if c.Now() != k.Now() {
			t.Errorf("clock = %v, global = %v", c.Now(), k.Now())
		}
	})
	k.RunAll()
}

func TestLocalClockOffset(t *testing.T) {
	k := NewKernel(1)
	c := k.NewLocalClock(ClockConfig{Offset: 100}, nil)
	if c.Now() != 100 {
		t.Errorf("clock = %v, want 100", c.Now())
	}
	k.At(50, func() {
		if c.Now() != 150 {
			t.Errorf("clock = %v, want 150", c.Now())
		}
	})
	k.RunAll()
}

func TestLocalClockDrift(t *testing.T) {
	k := NewKernel(1)
	// +50 ppm fast clock.
	c := k.NewLocalClock(ClockConfig{DriftPPB: 50_000}, nil)
	k.At(logical.Time(logical.Second), func() {
		want := logical.Time(logical.Second + 50*logical.Microsecond)
		if c.Now() != want {
			t.Errorf("clock = %v, want %v", c.Now(), want)
		}
	})
	k.RunAll()
}

func TestLocalClockNegativeDrift(t *testing.T) {
	k := NewKernel(1)
	c := k.NewLocalClock(ClockConfig{DriftPPB: -20_000}, nil)
	k.At(logical.Time(logical.Second), func() {
		want := logical.Time(logical.Second - 20*logical.Microsecond)
		if c.Now() != want {
			t.Errorf("clock = %v, want %v", c.Now(), want)
		}
	})
	k.RunAll()
}

func TestLocalClockGlobalAtInvertsLocalAt(t *testing.T) {
	k := NewKernel(1)
	c := k.NewLocalClock(ClockConfig{Offset: 12345, DriftPPB: 30_000}, nil)
	for _, g := range []logical.Time{0, 1000, 999_999_999, 7_000_000_001} {
		l := c.LocalAt(g)
		back := c.GlobalAt(l)
		diff := int64(back - g)
		if diff < -2 || diff > 2 {
			t.Errorf("round trip %v -> %v -> %v (diff %d)", g, l, back, diff)
		}
	}
}

func TestLocalClockSyncBoundsError(t *testing.T) {
	k := NewKernel(99)
	bound := logical.Duration(100 * logical.Microsecond)
	c := k.NewLocalClock(ClockConfig{
		Offset:     logical.Duration(50 * logical.Millisecond), // large initial error
		DriftPPB:   40_000,
		SyncBound:  bound,
		SyncPeriod: logical.Duration(100 * logical.Millisecond),
	}, k.Rand("sync"))
	// After the first sync the error must stay within bound + drift accrual.
	maxAllowed := bound + logical.Duration(40_000*100_000_000/1_000_000_000) // E + drift*period
	var worst logical.Duration
	for ms := 150; ms <= 2000; ms += 50 {
		k.At(logical.Time(ms)*logical.Time(logical.Millisecond), func() {
			err := c.Error()
			if err < 0 {
				err = -err
			}
			if err > worst {
				worst = err
			}
		})
	}
	k.RunAll()
	if worst > maxAllowed {
		t.Errorf("worst clock error %v exceeds allowed %v", worst, maxAllowed)
	}
	if c.Syncs() == 0 {
		t.Error("no syncs happened")
	}
}

func TestMulDivRound(t *testing.T) {
	cases := []struct{ a, b, c, want int64 }{
		{10, 3, 2, 15},
		{1_000_000_000, 50_000, 1_000_000_000, 50_000},
		{-10, 3, 2, -15},
		{10, -3, 2, -15},
		{1 << 40, 1 << 20, 1 << 10, 1 << 50},
		{0, 999, 7, 0},
	}
	for _, c := range cases {
		if got := mulDivRound(c.a, c.b, c.c); got != c.want {
			t.Errorf("mulDivRound(%d,%d,%d) = %d, want %d", c.a, c.b, c.c, got, c.want)
		}
	}
}

// Property: mulDivRound(a, b, b) == a for nonzero b.
func TestMulDivRoundIdentity(t *testing.T) {
	f := func(a int32, b int32) bool {
		if b == 0 {
			return true
		}
		return mulDivRound(int64(a), int64(b), int64(b)) == int64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mulDivRound matches direct evaluation when no overflow occurs.
func TestMulDivRoundSmall(t *testing.T) {
	f := func(a int16, b int16, c int16) bool {
		if c == 0 {
			return true
		}
		want := int64(a) * int64(b) / int64(c)
		return mulDivRound(int64(a), int64(b), int64(c)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
