package des

import (
	"testing"

	"repro/internal/logical"
)

// Transient and handle-returning events must interleave in exactly the
// same (time, sequence) order, and canceling a handle — before or after
// it fires — must never disturb a recycled transient event.
func TestTransientEventOrderingAndCancelSafety(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.AtTransient(10, func() { order = append(order, 0) })
	e1 := k.At(10, func() { order = append(order, 1) })
	k.AtTransient(10, func() { order = append(order, 2) })
	e3 := k.At(5, func() { order = append(order, 3) })
	e3.Cancel()
	k.RunAll()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}

	// Stale cancel after firing: e1 has fired; its Event must not have
	// been recycled, so this cancel is a no-op...
	e1.Cancel()
	// ...and must not affect transient events scheduled afterwards, even
	// though the kernel is now reusing pooled Event structures.
	fired := 0
	for i := 0; i < 8; i++ {
		k.AtTransient(k.Now().Add(logical.Microsecond), func() { fired++ })
	}
	k.RunAll()
	if fired != 8 {
		t.Fatalf("stale Cancel disturbed pooled events: fired = %d", fired)
	}
}

func TestTransientEventsAreRecycled(t *testing.T) {
	k := NewKernel(1)
	// Prime the pool.
	for i := 0; i < 4; i++ {
		k.AfterTransient(1, func() {})
	}
	k.RunAll()
	if len(k.free) == 0 {
		t.Fatal("no events recycled")
	}
	before := len(k.free)
	k.AfterTransient(1, func() {})
	if len(k.free) != before-1 {
		t.Fatalf("schedule did not reuse the free list: %d -> %d", before, len(k.free))
	}
	k.RunAll()
	if len(k.free) != before {
		t.Fatalf("fired transient not returned to free list: %d != %d", len(k.free), before)
	}
}

// Self-rescheduling chain: the scheduling hot path now shared by every
// federated kernel. Transient scheduling should not allocate an Event per
// iteration once the pool is primed.
func BenchmarkKernelScheduleTransient(b *testing.B) {
	k := NewKernel(1)
	count := 0
	var next func()
	next = func() {
		count++
		if count < b.N {
			k.AfterTransient(1, next)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.AtTransient(0, next)
	k.RunAll()
}

// Baseline: the handle-returning path allocates one Event per schedule.
func BenchmarkKernelScheduleHandle(b *testing.B) {
	k := NewKernel(1)
	count := 0
	var next func()
	next = func() {
		count++
		if count < b.N {
			k.After(1, next)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.At(0, next)
	k.RunAll()
}
