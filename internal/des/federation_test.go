package des

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/logical"
)

// fedTrace is a tiny message-passing scenario used to compare federated
// execution against a single kernel: nodes pass a counter around a ring,
// each hop adding a fixed latency, every node recording (time, node,
// value). The trace is the full observable behaviour.
type fedTraceEntry struct {
	At    logical.Time
	Node  int
	Value int
}

// runRingSingle runs the ring on one kernel.
func runRingSingle(nodes, hops int, latency logical.Duration) []fedTraceEntry {
	k := NewKernel(1)
	var trace []fedTraceEntry
	var hop func(node, value int)
	hop = func(node, value int) {
		trace = append(trace, fedTraceEntry{At: k.Now(), Node: node, Value: value})
		if value >= hops {
			return
		}
		next := (node + 1) % nodes
		k.AtTransient(k.Now().Add(latency), func() { hop(next, value+1) })
	}
	k.At(0, func() { hop(0, 0) })
	k.RunAll()
	return trace
}

// runRingFederated runs the same ring with one node per partition, hops
// crossing federation channels.
func runRingFederated(nodes, hops int, latency logical.Duration) ([]fedTraceEntry, *Federation) {
	f := NewFederation(1, nodes)
	chans := make([]*Channel, nodes)
	for i := 0; i < nodes; i++ {
		chans[i] = f.Channel(i, (i+1)%nodes, latency)
	}
	var trace []fedTraceEntry
	var hop func(node, value int)
	hop = func(node, value int) {
		k := f.Kernel(node)
		trace = append(trace, fedTraceEntry{At: k.Now(), Node: node, Value: value})
		if value >= hops {
			return
		}
		next := (node + 1) % nodes
		chans[node].Send(k.Now().Add(latency), func() { hop(next, value+1) })
	}
	f.Kernel(0).At(0, func() { hop(0, 0) })
	f.RunAll()
	return trace, f
}

func TestFederationRingMatchesSingleKernel(t *testing.T) {
	for _, nodes := range []int{2, 3, 5} {
		want := runRingSingle(nodes, 40, 70*logical.Microsecond)
		got, f := runRingFederated(nodes, 40, 70*logical.Microsecond)
		if len(got) != len(want) {
			t.Fatalf("nodes=%d: trace length %d != %d", nodes, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("nodes=%d: trace[%d] = %+v, want %+v", nodes, i, got[i], want[i])
			}
		}
		if f.Rounds() == 0 {
			t.Fatalf("nodes=%d: federation reported zero coordination rounds", nodes)
		}
	}
}

// The federated trace must not depend on the Go scheduler: run the same
// federation under several GOMAXPROCS values and require identical traces.
func TestFederationDeterministicAcrossGOMAXPROCS(t *testing.T) {
	ref, _ := runRingFederated(4, 60, 30*logical.Microsecond)
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		got, _ := runRingFederated(4, 60, 30*logical.Microsecond)
		if fmt.Sprint(got) != fmt.Sprint(ref) {
			t.Fatalf("GOMAXPROCS=%d: trace diverged", procs)
		}
	}
}

// Two partitions exchanging through mailboxes and processes — the baton
// machinery must work unchanged inside federation windows.
func TestFederationProcessesAndMailboxes(t *testing.T) {
	f := NewFederation(7, 2)
	la := 50 * logical.Microsecond
	ab := f.Channel(0, 1, la)
	ba := f.Channel(1, 0, la)
	ka, kb := f.Kernel(0), f.Kernel(1)
	mbA := NewMailbox[int](ka, "a")
	mbB := NewMailbox[int](kb, "b")

	const rounds = 25
	var gotA, gotB []int
	ka.Spawn("ping", func(p *Process) {
		ab.Send(p.Now().Add(la), func() { mbB.Put(0) })
		for {
			v := mbA.Recv(p)
			gotA = append(gotA, v)
			if v >= rounds {
				return
			}
			ab.Send(p.Now().Add(la), func() { mbB.Put(v + 1) })
		}
	})
	kb.Spawn("pong", func(p *Process) {
		for {
			v := mbB.Recv(p)
			gotB = append(gotB, v)
			ba.Send(p.Now().Add(la), func() { mbA.Put(v + 1) })
			if v+1 >= rounds {
				return
			}
		}
	})
	f.RunAll()
	f.Shutdown()
	if len(gotB) == 0 || gotB[0] != 0 || len(gotA) == 0 || gotA[len(gotA)-1] != rounds {
		t.Fatalf("ping-pong incomplete: a=%v b=%v", gotA, gotB)
	}
}

func TestFederationLookaheadViolationPanics(t *testing.T) {
	f := NewFederation(1, 2)
	ch := f.Channel(0, 1, logical.Millisecond)
	f.Kernel(0).At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("send below lookahead should panic")
			}
		}()
		ch.Send(f.Kernel(0).Now().Add(logical.Microsecond), func() {})
	})
	f.RunAll()
}

func TestFederationValidation(t *testing.T) {
	f := NewFederation(1, 2)
	for _, fn := range []func(){
		func() { f.Channel(0, 0, logical.Millisecond) },
		func() { f.Channel(0, 1, 0) },
		func() { NewFederation(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		}()
	}
}

// Daemon events on an otherwise idle partition must keep firing while the
// federation is globally live (a single kernel interleaves daemon
// housekeeping with pending work the same way), and a cyclic daemon must
// not keep the federation alive once all pending work is done.
func TestFederationDaemonsFollowGlobalLiveness(t *testing.T) {
	f := NewFederation(3, 2)
	f.Channel(0, 1, logical.Millisecond)
	f.Channel(1, 0, logical.Millisecond)
	ka, kb := f.Kernel(0), f.Kernel(1)

	// Partition 0: cyclic daemon every 1ms, counts activations.
	daemonFires := 0
	var cyclic func()
	cyclic = func() {
		daemonFires++
		ka.AfterDaemon(logical.Millisecond, cyclic)
	}
	ka.AfterDaemon(logical.Millisecond, cyclic)

	// Partition 1: pending work until t = 20ms.
	appFires := 0
	var work func()
	work = func() {
		appFires++
		if kb.Now() < logical.Time(20*logical.Millisecond) {
			kb.After(logical.Millisecond, work)
		}
	}
	kb.At(0, func() { work() })

	f.RunAll()
	if appFires == 0 {
		t.Fatal("no app work executed")
	}
	// The daemon must have covered (roughly) the app's live span — a
	// stalled partition would show near-zero fires.
	if daemonFires < 15 {
		t.Fatalf("idle partition's daemons stalled: %d fires", daemonFires)
	}
	// And the federation terminated even though the cyclic daemon
	// reschedules itself forever.
}

// A federation of one partition behaves exactly like its kernel: no
// channels can exist, so the coordinator must not engage at all.
func TestFederationSinglePartition(t *testing.T) {
	f := NewFederation(9, 1)
	k := f.Kernel(0)
	fired := 0
	k.After(logical.Second, func() { fired++ })
	end := f.RunAll()
	if fired != 1 || end != logical.Time(logical.Second) {
		t.Fatalf("fired=%d end=%v", fired, end)
	}
	if f.Rounds() != 0 || f.Grants() != 0 {
		t.Fatalf("single-partition federation coordinated: rounds=%d grants=%d, want 0/0",
			f.Rounds(), f.Grants())
	}
}
