package des

import (
	"testing"

	"repro/internal/logical"
)

// The kernel hot-path microbenchmark suite. Each benchmark isolates one
// of the converted closure-free paths; cmd/experiments mirrors these
// bodies for the -bench-json kernel suite (BENCH_kernel.json), and the
// repo-root alloc gates pin the 0 allocs/op claims.

// benchChain is the carrier of the self-rescheduling closure-free chain:
// the (fn, arg) analogue of BenchmarkKernelScheduleTransient's closure.
type benchChain struct {
	k     *Kernel
	count int
	n     int
}

func benchChainFn(a any) {
	c := a.(*benchChain)
	c.count++
	if c.count < c.n {
		c.k.AfterTransientFn(1, benchChainFn, c)
	}
}

// BenchmarkKernelFire measures the closure-free schedule+fire round
// trip: one pooled event per op, carrying a package-level fn and a live
// carrier pointer — the form every converted hot path uses. 0 allocs/op.
func BenchmarkKernelFire(b *testing.B) {
	k := NewKernel(1)
	c := &benchChain{k: k, n: b.N}
	b.ReportAllocs()
	b.ResetTimer()
	k.AtTransientFn(0, benchChainFn, c)
	k.RunAll()
}

// BenchmarkProcessSwitch measures one sleep/wake cycle of a process:
// schedule the wake (reusing the process's own Event structure), hand
// the baton to the kernel, fire, hand it back.
func BenchmarkProcessSwitch(b *testing.B) {
	k := NewKernel(1)
	k.Spawn("switcher", func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Sleep(logical.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.RunAll()
}

// BenchmarkMailboxTimedPut measures a timed put delivered and drained:
// the value rides a pooled carrier in a pooled event (see putArg), and
// the mailbox ring reuses its backing array. 0 allocs/op in steady
// state.
func BenchmarkMailboxTimedPut(b *testing.B) {
	k := NewKernel(1)
	m := NewMailbox[int](k, "bench")
	m.PutAfter(logical.Microsecond, 0)
	k.RunAll()
	m.TryRecv()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PutAfter(logical.Microsecond, i)
		k.RunAll()
		m.TryRecv()
	}
}
