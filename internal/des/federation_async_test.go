package des

import (
	"sort"
	"testing"

	"repro/internal/logical"
)

// --- Coordinator edge cases (asynchronous grant path) ---

// A partition with no inbound lookahead walk can never receive a
// message, so the coordinator must hand it the whole horizon in a
// single quiesce grant instead of stepping it through lookahead-paced
// windows.
func TestFederationNoInboundFreeRuns(t *testing.T) {
	f := NewFederation(1, 2)
	ch := f.Channel(0, 1, logical.Millisecond) // 0 has no inbound
	k0 := f.Kernel(0)
	fired := 0
	for i := 1; i <= 10; i++ {
		at := logical.Time(i) * logical.Time(10*logical.Millisecond)
		k0.At(at, func() {
			fired++
			ch.Send(k0.Now().Add(logical.Millisecond), func() {})
		})
	}
	f.Run(logical.Time(200 * logical.Millisecond))
	if fired != 10 {
		t.Fatalf("partition 0 fired %d events, want 10", fired)
	}
	// Exactly one grant free-runs partition 0 across all ten events
	// (which span 9 lookahead intervals — a lookahead-paced coordinator
	// would need ~10 windows); the second grant runs partition 1's
	// injected batch.
	if got := f.Grants(); got != 2 {
		t.Fatalf("federation used %d grants, want 2 (free-run + injection batch)", got)
	}
}

// --- Random-graph equivalence property ---

// mix64 provides per-event pseudo-randomness as a pure function of
// its input (the splitmix64 finalizer), so both execution modes derive
// identical choices without sharing a sequential stream (whose
// consumption order would differ between them).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

type graphEntry struct {
	At    logical.Time
	Value uint64
}

// graphSpec is a seeded random channel topology plus a deterministic
// message workload over it. Both execution modes run the same spec.
type graphSpec struct {
	seed  uint64
	parts int
	// la[i][j] > 0 iff the directed channel i->j exists.
	la [][]logical.Duration
}

func makeGraphSpec(seed uint64) graphSpec {
	g := graphSpec{seed: seed, parts: 2 + int(mix64(seed)%4)}
	g.la = make([][]logical.Duration, g.parts)
	for i := range g.la {
		g.la[i] = make([]logical.Duration, g.parts)
		for j := range g.la[i] {
			if i == j {
				continue
			}
			h := mix64(seed ^ uint64(i*131+j))
			if h%10 < 4 { // ~40% edge density; isolated partitions happen
				g.la[i][j] = logical.Duration(1+h/16%5) * 100 * logical.Microsecond
			}
		}
	}
	return g
}

// run executes the workload: each partition seeds one start event, and
// every firing forwards to up to two outbound neighbours (choices and
// delays are pure functions of the event identity) down to a fixed
// depth. send abstracts the mode: federation Channel.Send or a plain
// same-kernel AtTransient. Traces are recorded per partition; entries
// are sorted afterwards, so only the behaviour set matters, not
// same-timestamp interleaving.
func (g graphSpec) run(now func(part int) logical.Time,
	send func(from, to int, at logical.Time, fn func()),
	start func(part int, at logical.Time, fn func())) [][]graphEntry {

	const maxDepth = 5
	traces := make([][]graphEntry, g.parts)
	var fire func(part, depth int, value uint64)
	fire = func(part, depth int, value uint64) {
		traces[part] = append(traces[part], graphEntry{At: now(part), Value: value})
		if depth >= maxDepth {
			return
		}
		var outs []int
		for j := 0; j < g.parts; j++ {
			if g.la[part][j] > 0 {
				outs = append(outs, j)
			}
		}
		if len(outs) == 0 {
			return
		}
		for branch := 0; branch < 2; branch++ {
			h := mix64(g.seed ^ value ^ uint64(depth*977+branch*131071))
			if branch == 1 && h%3 == 0 {
				continue // sometimes a single send
			}
			to := outs[int(h/8)%len(outs)]
			delay := g.la[part][to] + logical.Duration(h/64%977)*logical.Microsecond
			at := now(part).Add(delay)
			child := mix64(value ^ h)
			send(part, to, at, func() { fire(to, depth+1, child) })
		}
	}
	for i := 0; i < g.parts; i++ {
		i := i
		at := logical.Time(mix64(g.seed^uint64(i)*7919) % 300 * uint64(logical.Microsecond))
		start(i, at, func() { fire(i, 0, mix64(g.seed+uint64(i))) })
	}
	return traces
}

func sortTraces(traces [][]graphEntry) {
	for _, tr := range traces {
		sort.Slice(tr, func(a, b int) bool {
			if tr[a].At != tr[b].At {
				return tr[a].At < tr[b].At
			}
			return tr[a].Value < tr[b].Value
		})
	}
}

// The asynchronous coordinator must preserve behaviour on arbitrary
// channel graphs — including graphs with no-inbound (free-running)
// partitions, unreachable partitions and asymmetric cycles — not just
// the curated ring topologies of the other tests. For each seed the
// same workload runs on one kernel and federated; the per-partition
// behaviour sets must match exactly.
func TestFederationRandomGraphMatchesSingleKernel(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		g := makeGraphSpec(seed)

		k := NewKernel(1)
		single := g.run(
			func(int) logical.Time { return k.Now() },
			func(_, _ int, at logical.Time, fn func()) { k.AtTransient(at, fn) },
			func(_ int, at logical.Time, fn func()) { k.At(at, fn) },
		)
		k.RunAll()

		f := NewFederation(1, g.parts)
		chans := make([][]*Channel, g.parts)
		for i := range chans {
			chans[i] = make([]*Channel, g.parts)
			for j, la := range g.la[i] {
				if la > 0 {
					chans[i][j] = f.Channel(i, j, la)
				}
			}
		}
		fed := g.run(
			func(part int) logical.Time { return f.Kernel(part).Now() },
			func(from, to int, at logical.Time, fn func()) { chans[from][to].Send(at, fn) },
			func(part int, at logical.Time, fn func()) { f.Kernel(part).At(at, fn) },
		)
		f.RunAll()

		sortTraces(single)
		sortTraces(fed)
		for p := 0; p < g.parts; p++ {
			if len(single[p]) != len(fed[p]) {
				t.Fatalf("seed=%d parts=%d partition %d: %d events federated, %d single-kernel",
					seed, g.parts, p, len(fed[p]), len(single[p]))
			}
			for e := range single[p] {
				if single[p][e] != fed[p][e] {
					t.Fatalf("seed=%d partition %d entry %d: federated %+v != single %+v",
						seed, p, e, fed[p][e], single[p][e])
				}
			}
		}
	}
}

// --- Channel queue recycling (Send growth fix) ---

// Channel.Send must not grow the queue with total traffic: the drain
// recycles the backing array (and the staged array, when the target is
// mid-window), so steady-state capacity tracks the per-window burst,
// not the run's cumulative message count.
func TestFederationChannelQueueCapacityRetention(t *testing.T) {
	const cycles, burst = 60, 32
	f := NewFederation(1, 2)
	ch := f.Channel(0, 1, logical.Millisecond)
	// The back-channel paces partition 0 into lookahead-bounded windows;
	// without it the coordinator (correctly) free-runs partition 0 to the
	// horizon and the queue legitimately holds the whole run's traffic.
	f.Channel(1, 0, logical.Millisecond)
	k := f.Kernel(0)
	var cycle func(c int)
	cycle = func(c int) {
		if c == cycles {
			return
		}
		for m := 0; m < burst; m++ {
			ch.Send(k.Now().Add(logical.Millisecond+logical.Duration(m)), func() {})
		}
		k.After(2*logical.Millisecond, func() { cycle(c + 1) })
	}
	k.At(0, func() { cycle(0) })
	f.RunAll()
	if ch.Sent() != cycles*burst {
		t.Fatalf("sent %d messages, want %d", ch.Sent(), cycles*burst)
	}
	if len(ch.queue) != 0 || len(ch.staged) != 0 {
		t.Fatalf("undrained channel: queue=%d staged=%d", len(ch.queue), len(ch.staged))
	}
	// A Send that leaked the backing array would leave cap >= total
	// traffic; the recycled array stabilizes near the widest window's
	// burst (several cycles can share one lookahead window).
	if c := cap(ch.queue); c >= cycles*burst/2 {
		t.Fatalf("queue backing array grew with cumulative traffic: cap=%d for %d msgs/window bursts",
			c, burst)
	}
}

// The stage/inject path must stay amortized-alloc-free per message
// (mirroring the trace recorder's zero-alloc gate): drains reuse the
// queue and staged arrays, and inject pre-reserves pooled events.
// Doubling the traffic must therefore cost only the messages' own
// storage, not coordination allocations per window.
func TestFederationDrainInjectAllocs(t *testing.T) {
	run := func(cycles int) {
		const burst = 16
		f := NewFederation(1, 2)
		fwd := f.Channel(0, 1, logical.Millisecond)
		back := f.Channel(1, 0, logical.Millisecond)
		k0, k1 := f.Kernel(0), f.Kernel(1)
		var cycle func(c int)
		cycle = func(c int) {
			if c == cycles {
				return
			}
			for m := 0; m < burst; m++ {
				fwd.Send(k0.Now().Add(logical.Millisecond+logical.Duration(m)), func() {
					back.Send(k1.Now().Add(logical.Millisecond), func() {})
				})
			}
			k0.After(2*logical.Millisecond, func() { cycle(c + 1) })
		}
		k0.At(0, func() { cycle(0) })
		f.RunAll()
	}
	const small, large = 40, 160
	base := testing.AllocsPerRun(3, func() { run(small) })
	grown := testing.AllocsPerRun(3, func() { run(large) })
	// Fixed setup (kernels, goroutines, coordinator state) dominates
	// `base`; the delta is the marginal cost of 120 extra cycles of
	// round-trip traffic. Each message may allocate its closure, but a
	// regression that reallocates queues or events per window shows up
	// as several extra allocations per message.
	perMsg := (grown - base) / float64((large-small)*16*2)
	if perMsg > 4 {
		t.Fatalf("drain/inject path allocates %.1f objects per message, want <= 4", perMsg)
	}
}
