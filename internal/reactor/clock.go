package reactor

import (
	"sync"
	"time"

	"repro/internal/des"
	"repro/internal/logical"
)

// Clock supplies physical time to an Environment. The reactor scheduler
// uses it to align logical time with physical time (unless running in
// fast mode), to evaluate deadlines, and to tag physical actions.
//
// Two implementations are provided: RealClock (wall-clock execution) and
// SimClock (deterministic execution on a DES kernel, standing in for the
// paper's MinnowBoard platforms).
type Clock interface {
	// Now returns the current physical time.
	Now() logical.Time
	// WaitUntil blocks until physical time t or until Interrupt is
	// called, whichever comes first; it reports whether it was
	// interrupted. Called only from the scheduler.
	WaitUntil(t logical.Time) (interrupted bool)
	// Interrupt wakes a concurrent WaitUntil. Safe to call from any
	// context; a spurious interrupt (none waiting) is a no-op.
	Interrupt()
	// Sleep consumes d of physical time. Reaction bodies use this (via
	// Ctx.DoWork) to model computation time: logical time stands still
	// while physical time advances.
	Sleep(d logical.Duration)
}

// RealClock drives an environment from the wall clock.
type RealClock struct {
	epoch time.Time
	mu    sync.Mutex
	wake  chan struct{}
}

// NewRealClock returns a clock whose time zero is the moment of creation.
func NewRealClock() *RealClock {
	return &RealClock{epoch: time.Now(), wake: make(chan struct{}, 1)}
}

// Now implements Clock.
func (c *RealClock) Now() logical.Time {
	return logical.Time(time.Since(c.epoch).Nanoseconds())
}

// WaitUntil implements Clock.
func (c *RealClock) WaitUntil(t logical.Time) bool {
	d := time.Duration(t - c.Now())
	if d <= 0 {
		// Consume a stale interrupt, if any, without blocking.
		select {
		case <-c.wake:
		default:
		}
		return false
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-c.wake:
		return true
	case <-timer.C:
		return false
	}
}

// Interrupt implements Clock.
func (c *RealClock) Interrupt() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// Sleep implements Clock.
func (c *RealClock) Sleep(d logical.Duration) { time.Sleep(d.Std()) }

// SimClock drives an environment from a DES kernel, optionally through a
// platform's local (drifting, resynchronized) clock. The environment's
// scheduler must run inside the given process.
type SimClock struct {
	proc  *des.Process
	local *des.LocalClock // nil = use global kernel time
}

// NewSimClock creates a clock for a scheduler running as process p.
// local may be nil to read global simulated time.
func NewSimClock(p *des.Process, local *des.LocalClock) *SimClock {
	return &SimClock{proc: p, local: local}
}

// Now implements Clock.
func (c *SimClock) Now() logical.Time {
	if c.local != nil {
		return c.local.Now()
	}
	return c.proc.Now()
}

// WaitUntil implements Clock.
func (c *SimClock) WaitUntil(t logical.Time) bool {
	if c.Now() >= t {
		return false
	}
	g := t
	if c.local != nil {
		g = c.local.GlobalAt(t)
		// GlobalAt rounds toward zero; make sure the wake-up lands at or
		// after the local target, otherwise a scheduler could spin at the
		// same simulated instant re-requesting the same wake time.
		for c.local.LocalAt(g) < t {
			g = g.Add(1)
		}
	}
	return c.proc.WaitUntilInterruptible(g)
}

// Interrupt implements Clock.
func (c *SimClock) Interrupt() { c.proc.Interrupt() }

// Sleep implements Clock.
func (c *SimClock) Sleep(d logical.Duration) { c.proc.Sleep(d) }
