package reactor

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/logical"
)

// Options configures an Environment.
type Options struct {
	// Clock supplies physical time (default: NewRealClock()).
	Clock Clock
	// Fast skips the physical-time barrier: logical time advances as
	// fast as events allow. Deadlines still compare against the clock.
	Fast bool
	// KeepAlive keeps the scheduler waiting for physical actions when
	// the event queue runs empty instead of terminating.
	KeepAlive bool
	// Timeout stops execution at start+Timeout (0 = no timeout).
	Timeout logical.Duration
	// Workers is the number of goroutines executing same-level reactions
	// in parallel (default 1; must be 1 with a SimClock).
	Workers int
}

type envState int

const (
	stateAssembling envState = iota
	stateRunning
	stateDone
)

// Environment owns a reactor program: the reactors, their interconnect,
// the event queue and the scheduler. Create reactors and connections
// while assembling, then call Run (or Spawn, for DES-driven execution).
type Environment struct {
	opts  Options
	clock Clock
	state envState

	mu  sync.Mutex
	seq uint64

	reactors    []*Reactor
	ports       []*portBase
	actions     []*actionBase
	timers      []*Timer
	connections []connection

	queue eventHeap

	currentTag    logical.Tag
	startTime     logical.Time
	stopTag       logical.Tag
	stopRequested bool
	shutdownFired bool

	// Per-tag working state.
	buckets    [][]*Reaction
	maxLevel   int
	setPorts   []*portBase
	setActions []*actionBase

	traceHook func(TraceEvent)

	tagsProcessed     uint64
	reactionsExecuted atomic.Uint64
	eventsProcessed   uint64
}

// NewEnvironment creates an empty environment.
func NewEnvironment(opts Options) *Environment {
	if opts.Clock == nil {
		opts.Clock = NewRealClock()
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if _, sim := opts.Clock.(*SimClock); sim && opts.Workers != 1 {
		panic("reactor: SimClock requires Workers == 1 (the DES serializes execution)")
	}
	return &Environment{opts: opts, clock: opts.Clock}
}

func (e *Environment) mustBeAssembling(op string) {
	if e.state != stateAssembling {
		panic("reactor: " + op + " after the environment started running")
	}
}

// Clock returns the environment's physical clock.
func (e *Environment) Clock() Clock { return e.clock }

// CurrentTag returns the tag being processed (valid while running).
func (e *Environment) CurrentTag() logical.Tag {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.currentTag
}

// StartTime returns the logical start time (valid once running).
func (e *Environment) StartTime() logical.Time { return e.startTime }

// Stats returns (tags processed, reactions executed, events processed).
func (e *Environment) Stats() (tags, reactions, events uint64) {
	return e.tagsProcessed, e.reactionsExecuted.Load(), e.eventsProcessed
}

// SetTraceHook installs a callback receiving one TraceEvent per executed
// reaction, in deterministic order. Must be set before Run.
func (e *Environment) SetTraceHook(fn func(TraceEvent)) {
	e.mustBeAssembling("SetTraceHook")
	e.traceHook = fn
}

// RequestStop asks the scheduler to stop at the next microstep after the
// tag currently being processed. Safe to call from outside reactions.
func (e *Environment) RequestStop() {
	e.mu.Lock()
	e.requestStopLocked(e.currentTag.Next())
	e.mu.Unlock()
	e.clock.Interrupt()
}

func (e *Environment) requestStopAt(tag logical.Tag) {
	e.mu.Lock()
	e.requestStopLocked(tag)
	e.mu.Unlock()
}

func (e *Environment) requestStopLocked(tag logical.Tag) {
	if e.stopRequested && e.stopTag.Before(tag) {
		return
	}
	e.stopRequested = true
	e.stopTag = tag
}

// scheduled event: a closure fired when its tag is processed.
type schedEvent struct {
	tag  logical.Tag
	seq  uint64
	fire func(*Environment)
}

type eventHeap []*schedEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if c := h[i].tag.Compare(h[j].tag); c != 0 {
		return c < 0
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*schedEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// scheduleEvent enqueues a tagged event (thread-safe).
func (e *Environment) scheduleEvent(tag logical.Tag, fire func(*Environment)) {
	e.mu.Lock()
	e.scheduleEventLocked(tag, fire)
	e.mu.Unlock()
}

func (e *Environment) scheduleEventLocked(tag logical.Tag, fire func(*Environment)) {
	e.seq++
	heap.Push(&e.queue, &schedEvent{tag: tag, seq: e.seq, fire: fire})
}

// enqueueReaction adds a reaction to the current tag's working set
// (thread-safe; deduplicated per tag).
func (e *Environment) enqueueReaction(rx *Reaction) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if rx.enqueued && rx.enqueuedAt == e.currentTag {
		return
	}
	rx.enqueued = true
	rx.enqueuedAt = e.currentTag
	e.buckets[rx.level] = append(e.buckets[rx.level], rx)
}

func (e *Environment) markPortSet(p *portBase) {
	e.mu.Lock()
	e.setPorts = append(e.setPorts, p)
	e.mu.Unlock()
}

func (e *Environment) markActionSet(a *actionBase) {
	e.mu.Lock()
	e.setActions = append(e.setActions, a)
	e.mu.Unlock()
}

// Errors returned by Run.
var (
	ErrCausalityCycle = errors.New("reactor: causality cycle in precedence graph")
	ErrAlreadyRan     = errors.New("reactor: environment already ran")
)

// Run assembles the program and executes it to completion: until the
// event queue is exhausted (unless KeepAlive), the timeout elapses, or
// stop is requested. With a SimClock, Run must be called from within the
// clock's DES process (see Spawn in the dear package for the usual wiring).
func (e *Environment) Run() error {
	if e.state != stateAssembling {
		return ErrAlreadyRan
	}
	if err := e.assignLevels(); err != nil {
		return err
	}
	e.state = stateRunning
	e.buckets = make([][]*Reaction, e.maxLevel+1)

	e.mu.Lock()
	e.startTime = e.clock.Now()
	e.currentTag = logical.Tag{Time: e.startTime}
	if e.opts.Timeout > 0 {
		e.requestStopLocked(logical.Tag{Time: e.startTime.Add(e.opts.Timeout)})
	}
	// Startup triggers and initial timer events share the start tag.
	e.scheduleEventLocked(e.currentTag, func(env *Environment) {
		for _, r := range env.reactors {
			for _, rx := range r.startup.reactions {
				env.enqueueReaction(rx)
			}
		}
	})
	for _, t := range e.timers {
		t := t
		e.scheduleEventLocked(logical.Tag{Time: e.startTime.Add(t.offset)}, t.fire)
	}
	e.mu.Unlock()

	e.loop()

	e.state = stateDone
	return nil
}

func (e *Environment) loop() {
	for {
		e.mu.Lock()
		if len(e.queue) == 0 {
			if e.opts.KeepAlive {
				// Keep waiting for physical actions until the stop tag's
				// physical time passes (or forever without a timeout).
				horizon := logical.Forever
				if e.stopRequested {
					horizon = e.stopTag.Time
				}
				if e.clock.Now() < horizon {
					e.mu.Unlock()
					e.clock.WaitUntil(horizon)
					continue
				}
			}
			// Starvation: stop at the next microstep (or the configured
			// stop tag if that is earlier).
			e.requestStopLocked(e.currentTag.Next())
			e.mu.Unlock()
			break
		}
		next := e.queue[0]
		if e.stopRequested && e.stopTag.Before(next.tag) {
			e.mu.Unlock()
			break
		}
		if !e.opts.Fast && e.clock.Now() < next.tag.Time {
			t := next.tag.Time
			e.mu.Unlock()
			// The physical-time barrier: no event is handled before
			// physical time exceeds its tag. An interrupt means the
			// queue may have changed — re-evaluate.
			e.clock.WaitUntil(t)
			continue
		}
		// Advance to the tag and drain all events bearing it.
		tag := next.tag
		e.currentTag = tag
		var fires []func(*Environment)
		for len(e.queue) > 0 && e.queue[0].tag.Equal(tag) {
			ev := heap.Pop(&e.queue).(*schedEvent)
			fires = append(fires, ev.fire)
			e.eventsProcessed++
		}
		stopHere := e.stopRequested && e.stopTag.Equal(tag)
		e.mu.Unlock()

		for _, fire := range fires {
			fire(e)
		}
		if stopHere {
			e.fireShutdownTriggers()
		}
		e.processTag(tag)
		if stopHere {
			return
		}
	}

	// Natural or requested termination without having fired shutdown at
	// an event tag: run the shutdown phase at the stop tag.
	e.mu.Lock()
	e.currentTag = e.stopTag
	e.mu.Unlock()
	e.fireShutdownTriggers()
	e.processTag(e.stopTag)
}

func (e *Environment) fireShutdownTriggers() {
	if e.shutdownFired {
		return
	}
	e.shutdownFired = true
	for _, r := range e.reactors {
		for _, rx := range r.shutdown.reactions {
			e.enqueueReaction(rx)
		}
	}
}

// processTag executes the triggered reactions level by level, then cleans
// up presence flags.
func (e *Environment) processTag(tag logical.Tag) {
	e.tagsProcessed++
	for level := 0; level <= e.maxLevel; level++ {
		e.mu.Lock()
		bucket := e.buckets[level]
		e.buckets[level] = nil
		e.mu.Unlock()
		if len(bucket) == 0 {
			continue
		}
		// Deterministic order within the level.
		sort.Slice(bucket, func(i, j int) bool {
			a, b := bucket[i], bucket[j]
			if a.reactor.index != b.reactor.index {
				return a.reactor.index < b.reactor.index
			}
			return a.index < b.index
		})
		if e.opts.Workers == 1 || len(bucket) == 1 {
			for _, rx := range bucket {
				e.invoke(rx, tag)
			}
		} else {
			var wg sync.WaitGroup
			sem := make(chan struct{}, e.opts.Workers)
			for _, rx := range bucket {
				rx := rx
				wg.Add(1)
				sem <- struct{}{}
				go func() {
					defer wg.Done()
					e.invoke(rx, tag)
					<-sem
				}()
			}
			wg.Wait()
		}
		if e.traceHook != nil {
			for _, rx := range bucket {
				e.traceHook(TraceEvent{Tag: tag, Reaction: rx.Name(), Level: level})
			}
		}
	}
	// Cleanup: clear presence so the next tag starts clean.
	e.mu.Lock()
	for _, p := range e.setPorts {
		p.present = false
	}
	e.setPorts = e.setPorts[:0]
	for _, a := range e.setActions {
		a.present = false
	}
	e.setActions = e.setActions[:0]
	e.mu.Unlock()
}

func (e *Environment) invoke(rx *Reaction, tag logical.Tag) {
	ctx := &Ctx{env: e, reaction: rx, tag: tag}
	rx.invocations++
	e.reactionsExecuted.Add(1)
	if rx.deadline > 0 && e.clock.Now() > tag.Time.Add(rx.deadline) {
		rx.deadlineViolations++
		if rx.deadlineHandler != nil {
			rx.deadlineHandler(ctx)
		}
		return
	}
	if rx.body != nil {
		rx.body(ctx)
	}
}

// assignLevels builds the acyclic precedence graph and computes reaction
// levels by longest path; it reports causality cycles.
func (e *Environment) assignLevels() error {
	// Collect all reactions in deterministic order.
	var all []*Reaction
	for _, r := range e.reactors {
		all = append(all, r.reactions...)
	}
	idx := map[*Reaction]int{}
	for i, rx := range all {
		idx[rx] = i
	}

	// Zero-delay port reachability.
	zeroAdj := map[*portBase][]*portBase{}
	for _, c := range e.connections {
		if c.delay() == 0 {
			up := c.(interface{ upstreamBase() *portBase }).upstreamBase()
			zeroAdj[up] = append(zeroAdj[up], c.downstreamBase())
		}
	}
	reach := map[*portBase][]*portBase{}
	var dfs func(p *portBase, seen map[*portBase]bool, out *[]*portBase)
	dfs = func(p *portBase, seen map[*portBase]bool, out *[]*portBase) {
		if seen[p] {
			return
		}
		seen[p] = true
		*out = append(*out, p)
		for _, q := range zeroAdj[p] {
			dfs(q, seen, out)
		}
	}
	reachable := func(p *portBase) []*portBase {
		if r, ok := reach[p]; ok {
			return r
		}
		var out []*portBase
		dfs(p, map[*portBase]bool{}, &out)
		reach[p] = out
		return out
	}

	// Build edges.
	adj := make([][]int, len(all))
	indeg := make([]int, len(all))
	addEdge := func(a, b *Reaction) {
		adj[idx[a]] = append(adj[idx[a]], idx[b])
		indeg[idx[b]]++
	}
	// 1. Priority edges within a reactor.
	for _, r := range e.reactors {
		for i := 0; i+1 < len(r.reactions); i++ {
			addEdge(r.reactions[i], r.reactions[i+1])
		}
	}
	// 2. Dataflow edges: writer of port → consumers of every port
	// reachable over zero-delay connections.
	for _, p := range e.ports {
		if len(p.writers) == 0 {
			continue
		}
		for _, q := range reachable(p) {
			for _, consumer := range consumersOf(q) {
				for _, w := range p.writers {
					if w != consumer {
						addEdge(w, consumer)
					}
				}
			}
		}
	}

	// Longest-path levels via Kahn's algorithm.
	level := make([]int, len(all))
	queue := []int{}
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	visited := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		visited++
		for _, m := range adj[n] {
			if level[n]+1 > level[m] {
				level[m] = level[n] + 1
			}
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if visited != len(all) {
		var stuck []string
		for i, d := range indeg {
			if d > 0 {
				stuck = append(stuck, all[i].Name())
			}
		}
		return fmt.Errorf("%w involving %v", ErrCausalityCycle, stuck)
	}
	e.maxLevel = 0
	for i, rx := range all {
		rx.level = level[i]
		if level[i] > e.maxLevel {
			e.maxLevel = level[i]
		}
	}
	return nil
}

// consumersOf returns reactions triggered by or reading the port.
func consumersOf(p *portBase) []*Reaction {
	out := make([]*Reaction, 0, len(p.reactions)+len(p.readers))
	out = append(out, p.reactions...)
	out = append(out, p.readers...)
	return out
}

// TraceEvent describes one reaction execution for trace hooks.
type TraceEvent struct {
	Tag      logical.Tag
	Reaction string
	Level    int
}

func (t TraceEvent) String() string {
	return fmt.Sprintf("%s %s@L%d", t.Tag, t.Reaction, t.Level)
}
