package reactor

import (
	"fmt"

	"repro/internal/logical"
)

// PortKind distinguishes input from output ports.
type PortKind int

// Port kinds.
const (
	Input PortKind = iota
	Output
)

// portBase carries the untyped bookkeeping shared by all Port[T].
type portBase struct {
	owner *Reactor
	name  string
	kind  PortKind

	// reactions triggered when the port becomes present.
	reactions []*Reaction
	// readers are reactions that declared this port as a source (reads).
	readers []*Reaction
	// writers are reactions that declared this port as an effect.
	writers []*Reaction
	// upstream reports whether an inbound connection exists (at most one).
	upstream bool

	present   bool
	presentAt logical.Tag
}

func (p *portBase) triggerName() string     { return p.owner.name + "." + p.name }
func (p *portBase) effectName() string      { return p.triggerName() }
func (p *portBase) sourceName() string      { return p.triggerName() }
func (p *portBase) owningReactor() *Reactor { return p.owner }

// connection is a typed edge between two ports (possibly delayed).
type connection interface {
	// propagate transfers the upstream value downstream at the current
	// tag (zero delay) or schedules it (positive delay).
	propagate(e *Environment)
	downstreamBase() *portBase
	delay() logical.Duration
}

// Port is a typed reactor port. Values set on an output port propagate
// instantaneously (same tag) along zero-delay connections, or with a tag
// offset along delayed connections.
type Port[T any] struct {
	portBase
	value T
	conns []*typedConnection[T]
}

// NewPort creates a port on reactor r.
func NewPort[T any](r *Reactor, name string, kind PortKind) *Port[T] {
	r.env.mustBeAssembling("NewPort")
	p := &Port[T]{portBase: portBase{owner: r, name: name, kind: kind}}
	r.env.ports = append(r.env.ports, &p.portBase)
	return p
}

// NewInputPort creates an input port.
func NewInputPort[T any](r *Reactor, name string) *Port[T] {
	return NewPort[T](r, name, Input)
}

// NewOutputPort creates an output port.
func NewOutputPort[T any](r *Reactor, name string) *Port[T] {
	return NewPort[T](r, name, Output)
}

// attach implements Trigger.
func (p *Port[T]) attach(rx *Reaction) { p.reactions = append(p.reactions, rx) }

// declareWriter implements Effect.
func (p *Port[T]) declareWriter(rx *Reaction) { p.writers = append(p.writers, rx) }

// declareReader implements Source.
func (p *Port[T]) declareReader(rx *Reaction) { p.readers = append(p.readers, rx) }

// Kind returns the port kind.
func (p *Port[T]) Kind() PortKind { return p.kind }

// Name returns "reactor.port".
func (p *Port[T]) Name() string { return p.triggerName() }

// Get returns the port's value and presence at the current tag. The
// calling reaction must have declared the port as a trigger or source.
func (p *Port[T]) Get(c *Ctx) (T, bool) {
	if !c.reaction.declaredReads[Source(p)] && !c.reaction.declaredReads[Trigger(p)] {
		panic(fmt.Sprintf("reactor: %s reads undeclared port %s", c.reaction, p.Name()))
	}
	var zero T
	if !p.present || p.presentAt != c.tag {
		return zero, false
	}
	return p.value, true
}

// IsPresent reports presence at the current tag.
func (p *Port[T]) IsPresent(c *Ctx) bool {
	_, ok := p.Get(c)
	return ok
}

// Set writes the port at the current tag and triggers downstream
// reactions (same tag for zero-delay connections). The calling reaction
// must have declared the port as an effect.
func (p *Port[T]) Set(c *Ctx, v T) {
	if !c.reaction.declaredEffects[Effect(p)] {
		panic(fmt.Sprintf("reactor: %s sets undeclared port %s", c.reaction, p.Name()))
	}
	p.setNow(c.env, v)
}

// setNow performs the actual write at the environment's current tag.
func (p *Port[T]) setNow(e *Environment, v T) {
	p.value = v
	p.present = true
	p.presentAt = e.currentTag
	e.markPortSet(&p.portBase)
	for _, rx := range p.reactions {
		e.enqueueReaction(rx)
	}
	for _, conn := range p.conns {
		conn.propagate(e)
	}
}

// typedConnection links an upstream port to a downstream port.
type typedConnection[T any] struct {
	up, down *Port[T]
	d        logical.Duration
}

func (c *typedConnection[T]) downstreamBase() *portBase { return &c.down.portBase }
func (c *typedConnection[T]) upstreamBase() *portBase   { return &c.up.portBase }
func (c *typedConnection[T]) delay() logical.Duration   { return c.d }

func (c *typedConnection[T]) propagate(e *Environment) {
	if c.d == 0 {
		c.down.setNow(e, c.up.value)
		return
	}
	v := c.up.value
	e.scheduleEvent(e.currentTag.Delay(c.d), func(env *Environment) {
		c.down.setNow(env, v)
	})
}

// Connect wires an upstream port to a downstream port with zero logical
// delay: values appear downstream at the same tag.
func Connect[T any](up, down *Port[T]) {
	ConnectDelayed(up, down, 0)
}

// ConnectDelayed wires ports with a logical delay: a value set at tag g
// appears downstream at g + delay (after semantics). Delayed connections
// break precedence cycles.
func ConnectDelayed[T any](up, down *Port[T], delay logical.Duration) {
	env := up.owner.env
	env.mustBeAssembling("Connect")
	if down.owner.env != env {
		panic("reactor: cannot connect ports of different environments")
	}
	if delay < 0 {
		panic("reactor: negative connection delay")
	}
	if down.upstream {
		panic(fmt.Sprintf("reactor: port %s already has an upstream connection", down.Name()))
	}
	down.upstream = true
	conn := &typedConnection[T]{up: up, down: down, d: delay}
	up.conns = append(up.conns, conn)
	env.connections = append(env.connections, conn)
}
