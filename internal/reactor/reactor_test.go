package reactor

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/simnet"
)

const ms = logical.Millisecond

// fastEnv returns an environment that runs in fast mode on a real clock.
func fastEnv(opts ...func(*Options)) *Environment {
	o := Options{Fast: true}
	for _, f := range opts {
		f(&o)
	}
	return NewEnvironment(o)
}

func TestStartupShutdownOrder(t *testing.T) {
	env := fastEnv()
	r := env.NewReactor("r")
	var trace []string
	r.AddReaction("start").Triggers(r.Startup()).Do(func(c *Ctx) {
		trace = append(trace, "startup")
	})
	r.AddReaction("stop").Triggers(r.Shutdown()).Do(func(c *Ctx) {
		trace = append(trace, "shutdown")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 || trace[0] != "startup" || trace[1] != "shutdown" {
		t.Errorf("trace = %v", trace)
	}
}

func TestTimerFiresPeriodically(t *testing.T) {
	env := fastEnv(func(o *Options) { o.Timeout = logical.Duration(100 * ms) })
	r := env.NewReactor("r")
	timer := NewTimer(r, "t", 0, logical.Duration(20*ms))
	var times []logical.Duration
	r.AddReaction("tick").Triggers(timer).Do(func(c *Ctx) {
		times = append(times, c.Elapsed())
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Ticks at 0, 20, 40, 60, 80, 100 (timeout tag inclusive).
	if len(times) != 6 {
		t.Fatalf("ticks = %d (%v)", len(times), times)
	}
	for i, want := range []int64{0, 20, 40, 60, 80, 100} {
		if times[i] != logical.Duration(want)*ms {
			t.Errorf("tick %d at %v, want %dms", i, times[i], want)
		}
	}
}

func TestTimerOffset(t *testing.T) {
	env := fastEnv(func(o *Options) { o.Timeout = logical.Duration(50 * ms) })
	r := env.NewReactor("r")
	timer := NewTimer(r, "t", logical.Duration(15*ms), logical.Duration(20*ms))
	var times []logical.Duration
	r.AddReaction("tick").Triggers(timer).Do(func(c *Ctx) {
		times = append(times, c.Elapsed())
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != logical.Duration(15*ms) || times[1] != logical.Duration(35*ms) {
		t.Errorf("ticks = %v", times)
	}
}

func TestOneShotTimer(t *testing.T) {
	env := fastEnv()
	r := env.NewReactor("r")
	timer := NewTimer(r, "t", logical.Duration(5*ms), 0)
	count := 0
	r.AddReaction("tick").Triggers(timer).Do(func(c *Ctx) { count++ })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("count = %d, want 1", count)
	}
}

func TestPortConnectionSameTag(t *testing.T) {
	env := fastEnv()
	src := env.NewReactor("src")
	dst := env.NewReactor("dst")
	out := NewOutputPort[int](src, "out")
	in := NewInputPort[int](dst, "in")
	Connect(out, in)
	var got []int
	var tags []logical.Tag
	var srcTag logical.Tag
	src.AddReaction("emit").Triggers(src.Startup()).Effects(out).Do(func(c *Ctx) {
		srcTag = c.Tag()
		out.Set(c, 42)
	})
	dst.AddReaction("recv").Triggers(in).Do(func(c *Ctx) {
		v, ok := in.Get(c)
		if !ok {
			t.Error("port not present")
		}
		got = append(got, v)
		tags = append(tags, c.Tag())
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got = %v", got)
	}
	if tags[0] != srcTag {
		t.Errorf("downstream tag %v != upstream tag %v (must be logically instantaneous)", tags[0], srcTag)
	}
}

func TestPortFanOut(t *testing.T) {
	env := fastEnv()
	src := env.NewReactor("src")
	out := NewOutputPort[string](src, "out")
	src.AddReaction("emit").Triggers(src.Startup()).Effects(out).Do(func(c *Ctx) {
		out.Set(c, "x")
	})
	received := 0
	for i := 0; i < 3; i++ {
		d := env.NewReactor(fmt.Sprintf("dst%d", i))
		in := NewInputPort[string](d, "in")
		Connect(out, in)
		d.AddReaction("recv").Triggers(in).Do(func(c *Ctx) {
			if v, ok := in.Get(c); ok && v == "x" {
				received++
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if received != 3 {
		t.Errorf("received = %d, want 3", received)
	}
}

func TestDelayedConnection(t *testing.T) {
	env := fastEnv()
	src := env.NewReactor("src")
	dst := env.NewReactor("dst")
	out := NewOutputPort[int](src, "out")
	in := NewInputPort[int](dst, "in")
	ConnectDelayed(out, in, logical.Duration(10*ms))
	var sentTag, gotTag logical.Tag
	src.AddReaction("emit").Triggers(src.Startup()).Effects(out).Do(func(c *Ctx) {
		sentTag = c.Tag()
		out.Set(c, 1)
	})
	dst.AddReaction("recv").Triggers(in).Do(func(c *Ctx) {
		gotTag = c.Tag()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := sentTag.Delay(logical.Duration(10 * ms))
	if gotTag != want {
		t.Errorf("got tag %v, want %v", gotTag, want)
	}
}

func TestPortAbsentAtLaterTag(t *testing.T) {
	env := fastEnv(func(o *Options) { o.Timeout = logical.Duration(25 * ms) })
	r := env.NewReactor("r")
	out := NewOutputPort[int](r, "out")
	in := NewInputPort[int](r, "in")
	Connect(out, in)
	timer := NewTimer(r, "t", 0, logical.Duration(10*ms))
	presences := []bool{}
	n := 0
	r.AddReaction("emit").Triggers(timer).Effects(out).Do(func(c *Ctx) {
		n++
		if n == 1 {
			out.Set(c, 7) // only on the first tick
		}
	})
	r.AddReaction("check").Triggers(timer).Reads(in).Do(func(c *Ctx) {
		presences = append(presences, in.IsPresent(c))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(presences) != 3 {
		t.Fatalf("checks = %v", presences)
	}
	if !presences[0] || presences[1] || presences[2] {
		t.Errorf("presences = %v, want [true false false]", presences)
	}
}

func TestLogicalActionDelay(t *testing.T) {
	env := fastEnv()
	r := env.NewReactor("r")
	act := NewLogicalAction[int](r, "a", logical.Duration(5*ms))
	var startTag, firedTag logical.Tag
	var got int
	rx := r.AddReaction("fire").Triggers(act).Do(func(c *Ctx) {
		firedTag = c.Tag()
		got, _ = act.Get(c)
	})
	_ = rx
	r.AddReaction("kick").Triggers(r.Startup()).Effects(act).Do(func(c *Ctx) {
		startTag = c.Tag()
		act.Schedule(c, 9, logical.Duration(2*ms))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := startTag.Delay(logical.Duration(7 * ms))
	if firedTag != want {
		t.Errorf("fired at %v, want %v", firedTag, want)
	}
	if got != 9 {
		t.Errorf("value = %d", got)
	}
}

func TestZeroDelayActionAdvancesMicrostep(t *testing.T) {
	env := fastEnv()
	r := env.NewReactor("r")
	act := NewLogicalAction[int](r, "a", 0)
	var tags []logical.Tag
	r.AddReaction("kick").Triggers(r.Startup()).Effects(act).Do(func(c *Ctx) {
		tags = append(tags, c.Tag())
		act.Schedule(c, 1, 0)
	})
	r.AddReaction("fire").Triggers(act).Do(func(c *Ctx) {
		tags = append(tags, c.Tag())
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tags) != 2 {
		t.Fatalf("tags = %v", tags)
	}
	if tags[1].Time != tags[0].Time || tags[1].Microstep != tags[0].Microstep+1 {
		t.Errorf("microstep semantics violated: %v then %v", tags[0], tags[1])
	}
}

func TestActionChainCounts(t *testing.T) {
	env := fastEnv()
	r := env.NewReactor("r")
	act := NewLogicalAction[int](r, "a", logical.Duration(ms))
	count := 0
	r.AddReaction("kick").Triggers(r.Startup()).Effects(act).Do(func(c *Ctx) {
		act.Schedule(c, 0, 0)
	})
	r.AddReaction("fire").Triggers(act).Effects(act).Do(func(c *Ctx) {
		v, _ := act.Get(c)
		count++
		if v < 9 {
			act.Schedule(c, v+1, 0)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
}

func TestReactionPriorityOrderWithinReactor(t *testing.T) {
	env := fastEnv()
	r := env.NewReactor("r")
	var order []int
	for i := 1; i <= 3; i++ {
		i := i
		r.AddReaction(fmt.Sprintf("r%d", i)).Triggers(r.Startup()).Do(func(c *Ctx) {
			order = append(order, i)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestLevelsRespectDataflow(t *testing.T) {
	env := fastEnv()
	a := env.NewReactor("a")
	b := env.NewReactor("b")
	c := env.NewReactor("c")
	ab := NewOutputPort[int](a, "out")
	bIn := NewInputPort[int](b, "in")
	bOut := NewOutputPort[int](b, "out")
	cIn := NewInputPort[int](c, "in")
	Connect(ab, bIn)
	Connect(bOut, cIn)
	ra := a.AddReaction("emit").Triggers(a.Startup()).Effects(ab).Do(func(ctx *Ctx) { ab.Set(ctx, 1) })
	rb := b.AddReaction("fwd").Triggers(bIn).Effects(bOut).Do(func(ctx *Ctx) {
		v, _ := bIn.Get(ctx)
		bOut.Set(ctx, v+1)
	})
	rc := c.AddReaction("sink").Triggers(cIn).Do(func(ctx *Ctx) {})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !(ra.Level() < rb.Level() && rb.Level() < rc.Level()) {
		t.Errorf("levels: a=%d b=%d c=%d", ra.Level(), rb.Level(), rc.Level())
	}
}

func TestCausalityCycleDetected(t *testing.T) {
	env := fastEnv()
	a := env.NewReactor("a")
	b := env.NewReactor("b")
	aOut := NewOutputPort[int](a, "out")
	aIn := NewInputPort[int](a, "in")
	bOut := NewOutputPort[int](b, "out")
	bIn := NewInputPort[int](b, "in")
	Connect(aOut, bIn)
	Connect(bOut, aIn)
	a.AddReaction("fwd").Triggers(aIn).Effects(aOut).Do(func(c *Ctx) {})
	b.AddReaction("fwd").Triggers(bIn).Effects(bOut).Do(func(c *Ctx) {})
	err := env.Run()
	if err == nil {
		t.Fatal("want causality cycle error")
	}
	if !strings.Contains(err.Error(), "causality cycle") {
		t.Errorf("err = %v", err)
	}
}

func TestDelayedConnectionBreaksCycle(t *testing.T) {
	env := fastEnv(func(o *Options) { o.Timeout = logical.Duration(10 * ms) })
	a := env.NewReactor("a")
	b := env.NewReactor("b")
	aOut := NewOutputPort[int](a, "out")
	aIn := NewInputPort[int](a, "in")
	bOut := NewOutputPort[int](b, "out")
	bIn := NewInputPort[int](b, "in")
	Connect(aOut, bIn)
	ConnectDelayed(bOut, aIn, logical.Duration(ms))
	hops := 0
	a.AddReaction("start").Triggers(a.Startup()).Effects(aOut).Do(func(c *Ctx) {
		aOut.Set(c, 0)
	})
	a.AddReaction("fwd").Triggers(aIn).Effects(aOut).Do(func(c *Ctx) {
		v, _ := aIn.Get(c)
		aOut.Set(c, v)
	})
	b.AddReaction("fwd").Triggers(bIn).Effects(bOut).Do(func(c *Ctx) {
		v, _ := bIn.Get(c)
		hops++
		bOut.Set(c, v+1)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if hops < 5 {
		t.Errorf("hops = %d, want several (feedback loop alive)", hops)
	}
}

func TestUndeclaredEffectPanics(t *testing.T) {
	env := fastEnv()
	r := env.NewReactor("r")
	out := NewOutputPort[int](r, "out")
	r.AddReaction("bad").Triggers(r.Startup()).Do(func(c *Ctx) {
		out.Set(c, 1) // not declared
	})
	defer func() {
		if recover() == nil {
			t.Error("want panic for undeclared effect")
		}
	}()
	_ = env.Run()
}

func TestUndeclaredReadPanics(t *testing.T) {
	env := fastEnv()
	r := env.NewReactor("r")
	in := NewInputPort[int](r, "in")
	r.AddReaction("bad").Triggers(r.Startup()).Do(func(c *Ctx) {
		in.Get(c) // not declared
	})
	defer func() {
		if recover() == nil {
			t.Error("want panic for undeclared read")
		}
	}()
	_ = env.Run()
}

func TestMultipleUpstreamConnectionsRejected(t *testing.T) {
	env := fastEnv()
	a := env.NewReactor("a")
	b := env.NewReactor("b")
	o1 := NewOutputPort[int](a, "o1")
	o2 := NewOutputPort[int](a, "o2")
	in := NewInputPort[int](b, "in")
	Connect(o1, in)
	defer func() {
		if recover() == nil {
			t.Error("want panic for double connection")
		}
	}()
	Connect(o2, in)
}

func TestRequestStopFromReaction(t *testing.T) {
	env := fastEnv()
	r := env.NewReactor("r")
	timer := NewTimer(r, "t", 0, logical.Duration(ms))
	ticks := 0
	shut := false
	r.AddReaction("tick").Triggers(timer).Do(func(c *Ctx) {
		ticks++
		if ticks == 5 {
			c.RequestStop()
		}
	})
	r.AddReaction("stop").Triggers(r.Shutdown()).Do(func(c *Ctx) { shut = true })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5", ticks)
	}
	if !shut {
		t.Error("shutdown reaction did not run")
	}
}

func TestStatsCounting(t *testing.T) {
	env := fastEnv(func(o *Options) { o.Timeout = logical.Duration(10 * ms) })
	r := env.NewReactor("r")
	timer := NewTimer(r, "t", 0, logical.Duration(5*ms))
	rx := r.AddReaction("tick").Triggers(timer).Do(func(c *Ctx) {})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if rx.Invocations() != 3 { // 0, 5, 10
		t.Errorf("invocations = %d, want 3", rx.Invocations())
	}
	tags, reactions, events := env.Stats()
	if tags == 0 || reactions != 3 || events == 0 {
		t.Errorf("stats = %d %d %d", tags, reactions, events)
	}
}

// --- DES-driven execution ---

// simEnvHarness runs a reactor program as a DES process and reports the
// collected trace.
func runOnKernel(t *testing.T, seed uint64, build func(env *Environment), horizon logical.Duration) []string {
	t.Helper()
	k := des.NewKernel(seed)
	var trace []string
	done := false
	k.Spawn("env", func(p *des.Process) {
		env := NewEnvironment(Options{
			Clock:   NewSimClock(p, nil),
			Timeout: horizon,
		})
		env.SetTraceHook(func(ev TraceEvent) {
			trace = append(trace, ev.String())
		})
		build(env)
		if err := env.Run(); err != nil {
			t.Error(err)
		}
		done = true
	})
	k.RunAll()
	if !done {
		t.Fatal("environment did not finish")
	}
	return trace
}

func buildPipeline(env *Environment) {
	src := env.NewReactor("src")
	mid := env.NewReactor("mid")
	sink := env.NewReactor("sink")
	srcOut := NewOutputPort[int](src, "out")
	midIn := NewInputPort[int](mid, "in")
	midOut := NewOutputPort[int](mid, "out")
	sinkIn := NewInputPort[int](sink, "in")
	Connect(srcOut, midIn)
	Connect(midOut, sinkIn)
	timer := NewTimer(src, "t", 0, logical.Duration(10*ms))
	n := 0
	src.AddReaction("emit").Triggers(timer).Effects(srcOut).Do(func(c *Ctx) {
		n++
		srcOut.Set(c, n)
	})
	mid.AddReaction("fwd").Triggers(midIn).Effects(midOut).Do(func(c *Ctx) {
		v, _ := midIn.Get(c)
		c.DoWork(logical.Duration(2 * ms)) // physical compute time
		midOut.Set(c, v*2)
	})
	sink.AddReaction("recv").Triggers(sinkIn).Do(func(c *Ctx) {})
}

func TestSimClockExecutionAdvancesKernelTime(t *testing.T) {
	k := des.NewKernel(1)
	var endPhysical logical.Time
	k.Spawn("env", func(p *des.Process) {
		env := NewEnvironment(Options{Clock: NewSimClock(p, nil), Timeout: logical.Duration(100 * ms)})
		buildPipeline(env)
		if err := env.Run(); err != nil {
			t.Error(err)
		}
		endPhysical = p.Now()
	})
	k.RunAll()
	// 11 timer ticks (0..100ms) each with 2ms of work: physical end must
	// be past 100ms but not wildly so.
	if endPhysical < logical.Time(100*ms) {
		t.Errorf("physical end = %v, want >= 100ms", endPhysical)
	}
}

func TestDeterministicTraceAcrossSeeds(t *testing.T) {
	// Physical jitter (different seeds) must not alter the logical trace
	// of a program without physical actions.
	a := runOnKernel(t, 1, buildPipeline, logical.Duration(100*ms))
	b := runOnKernel(t, 999, buildPipeline, logical.Duration(100*ms))
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	// Same program, real clock in fast mode, 1 vs 4 workers: identical
	// trace (the scheduler exploits parallelism without losing
	// determinism).
	run := func(workers int) []string {
		env := NewEnvironment(Options{Fast: true, Workers: workers, Timeout: logical.Duration(100 * ms)})
		var trace []string
		// Normalize to elapsed logical time: the wall-clock start tag
		// differs between runs by construction.
		env.SetTraceHook(func(ev TraceEvent) {
			rel := logical.Tag{Time: ev.Tag.Time - env.StartTime(), Microstep: ev.Tag.Microstep}
			trace = append(trace, fmt.Sprintf("%s %s@L%d", rel, ev.Reaction, ev.Level))
		})
		// A diamond: src feeds two parallel workers that feed a join.
		src := env.NewReactor("src")
		w1 := env.NewReactor("w1")
		w2 := env.NewReactor("w2")
		join := env.NewReactor("join")
		srcOut := NewOutputPort[int](src, "out")
		w1In := NewInputPort[int](w1, "in")
		w2In := NewInputPort[int](w2, "in")
		w1Out := NewOutputPort[int](w1, "out")
		w2Out := NewOutputPort[int](w2, "out")
		j1 := NewInputPort[int](join, "in1")
		j2 := NewInputPort[int](join, "in2")
		Connect(srcOut, w1In)
		// Fan-out needs two connections from srcOut; w2In is separate.
		Connect(srcOut, w2In)
		Connect(w1Out, j1)
		Connect(w2Out, j2)
		timer := NewTimer(src, "t", 0, logical.Duration(10*ms))
		n := 0
		src.AddReaction("emit").Triggers(timer).Effects(srcOut).Do(func(c *Ctx) {
			n++
			srcOut.Set(c, n)
		})
		w1.AddReaction("f").Triggers(w1In).Effects(w1Out).Do(func(c *Ctx) {
			v, _ := w1In.Get(c)
			w1Out.Set(c, v+1)
		})
		w2.AddReaction("g").Triggers(w2In).Effects(w2Out).Do(func(c *Ctx) {
			v, _ := w2In.Get(c)
			w2Out.Set(c, v*2)
		})
		sum := 0
		join.AddReaction("join").Triggers(j1, j2).Do(func(c *Ctx) {
			a, _ := j1.Get(c)
			b, _ := j2.Get(c)
			sum += a + b
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		trace = append(trace, fmt.Sprintf("sum=%d", sum))
		return trace
	}
	t1 := run(1)
	t4 := run(4)
	if len(t1) != len(t4) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t4))
	}
	for i := range t1 {
		if t1[i] != t4[i] {
			t.Fatalf("worker counts diverge at %d: %q vs %q", i, t1[i], t4[i])
		}
	}
}

func TestPhysicalActionFromAnotherProcess(t *testing.T) {
	k := des.NewKernel(1)
	var received []int
	var tags []logical.Tag
	envCh := make(chan *Environment, 1)
	var act *Action[int]
	k.Spawn("env", func(p *des.Process) {
		env := NewEnvironment(Options{Clock: NewSimClock(p, nil), KeepAlive: true})
		r := env.NewReactor("sensor")
		act = NewPhysicalAction[int](r, "sample", 0)
		r.AddReaction("recv").Triggers(act).Do(func(c *Ctx) {
			v, _ := act.Get(c)
			received = append(received, v)
			tags = append(tags, c.Tag())
			if len(received) == 3 {
				c.RequestStop()
			}
		})
		envCh <- env
		if err := env.Run(); err != nil {
			t.Error(err)
		}
	})
	k.Spawn("sensor", func(p *des.Process) {
		<-envCh // env assembled (same kernel step; channel is buffered)
		for i := 1; i <= 3; i++ {
			p.Sleep(logical.Duration(10 * ms))
			act.ScheduleAsync(i, 0)
		}
	})
	k.RunAll()
	if len(received) != 3 {
		t.Fatalf("received = %v", received)
	}
	for i, tag := range tags {
		want := logical.Time(10*(i+1)) * logical.Time(ms)
		if tag.Time != want {
			t.Errorf("sample %d tagged %v, want %v", i, tag.Time, want)
		}
	}
}

func TestScheduleAtSafeToProcess(t *testing.T) {
	k := des.NewKernel(1)
	var tags []logical.Tag
	var act *Action[int]
	ready := make(chan struct{}, 1)
	k.Spawn("env", func(p *des.Process) {
		env := NewEnvironment(Options{Clock: NewSimClock(p, nil), KeepAlive: true})
		r := env.NewReactor("rx")
		act = NewPhysicalAction[int](r, "msg", 0)
		r.AddReaction("recv").Triggers(act).Do(func(c *Ctx) {
			tags = append(tags, c.Tag())
			if len(tags) == 2 {
				c.RequestStop()
			}
		})
		ready <- struct{}{}
		if err := env.Run(); err != nil {
			t.Error(err)
		}
	})
	k.Spawn("net", func(p *des.Process) {
		<-ready
		p.Sleep(logical.Duration(5 * ms))
		// Message tagged 20ms: in the future, accepted as-is.
		_, ok := act.ScheduleAt(1, logical.Tag{Time: logical.Time(20 * ms)})
		if !ok {
			t.Error("future tag should be accepted")
		}
		p.Sleep(logical.Duration(30 * ms))
		// Message tagged 10ms: already in the past — bumped, flagged.
		_, ok = act.ScheduleAt(2, logical.Tag{Time: logical.Time(10 * ms)})
		if ok {
			t.Error("past tag must be reported as violated")
		}
	})
	k.RunAll()
	if len(tags) != 2 {
		t.Fatalf("tags = %v", tags)
	}
	if tags[0].Time != logical.Time(20*ms) {
		t.Errorf("first tag %v, want 20ms", tags[0])
	}
	if !tags[0].Before(tags[1]) {
		t.Errorf("tag order violated: %v then %v", tags[0], tags[1])
	}
}

func TestDeadlineViolationHandler(t *testing.T) {
	k := des.NewKernel(1)
	var violated, normal int
	k.Spawn("env", func(p *des.Process) {
		env := NewEnvironment(Options{Clock: NewSimClock(p, nil), Timeout: logical.Duration(100 * ms)})
		r := env.NewReactor("r")
		timer := NewTimer(r, "t", 0, logical.Duration(20*ms))
		slow := NewLogicalAction[int](r, "slow", 0)
		// First reaction consumes physical time, making the second miss
		// its deadline on some activations.
		n := 0
		r.AddReaction("work").Triggers(timer).Effects(slow).Do(func(c *Ctx) {
			n++
			if n%2 == 0 {
				c.DoWork(logical.Duration(10 * ms)) // physical delay
			}
			slow.Schedule(c, n, 0)
		})
		r.AddReaction("check").Triggers(slow).
			WithDeadline(logical.Duration(5*ms), func(c *Ctx) { violated++ }).
			Do(func(c *Ctx) { normal++ })
		if err := env.Run(); err != nil {
			t.Error(err)
		}
	})
	k.RunAll()
	if violated == 0 {
		t.Error("expected deadline violations")
	}
	if normal == 0 {
		t.Error("expected some on-time activations")
	}
}

func TestFastModeIgnoresPhysicalTime(t *testing.T) {
	// A long logical horizon completes immediately in fast mode.
	env := fastEnv(func(o *Options) { o.Timeout = logical.Duration(logical.Hour) })
	r := env.NewReactor("r")
	timer := NewTimer(r, "t", 0, logical.Duration(logical.Minute))
	count := 0
	r.AddReaction("tick").Triggers(timer).Do(func(c *Ctx) { count++ })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 61 {
		t.Errorf("count = %d, want 61", count)
	}
}

func TestRunTwiceFails(t *testing.T) {
	env := fastEnv()
	env.NewReactor("r")
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != ErrAlreadyRan {
		t.Errorf("err = %v, want ErrAlreadyRan", err)
	}
}

func TestRealClockSmoke(t *testing.T) {
	// Run a tiny program against the wall clock to exercise RealClock.
	env := NewEnvironment(Options{Timeout: logical.Duration(5 * ms)})
	r := env.NewReactor("r")
	timer := NewTimer(r, "t", 0, logical.Duration(ms))
	count := 0
	r.AddReaction("tick").Triggers(timer).Do(func(c *Ctx) { count++ })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 6 {
		t.Errorf("count = %d, want 6", count)
	}
}

func TestSimClockWithLocalClock(t *testing.T) {
	k := des.NewKernel(3)
	n := simnet.NewNetwork(k, simnet.Config{})
	_ = n
	local := k.NewLocalClock(des.ClockConfig{Offset: logical.Duration(7 * ms)}, nil)
	var startTag logical.Time
	k.Spawn("env", func(p *des.Process) {
		env := NewEnvironment(Options{Clock: NewSimClock(p, local), Timeout: logical.Duration(10 * ms)})
		r := env.NewReactor("r")
		r.AddReaction("s").Triggers(r.Startup()).Do(func(c *Ctx) {
			startTag = c.LogicalTime()
		})
		if err := env.Run(); err != nil {
			t.Error(err)
		}
	})
	k.RunAll()
	if startTag != logical.Time(7*ms) {
		t.Errorf("start tag %v, want local 7ms", startTag)
	}
}
