// Package reactor implements the reactor model of computation introduced
// by Lohstroh et al. and used by the paper as the foundation for
// deterministic software components: reactors communicate through ports
// connected by channels, computation happens in reactions triggered by
// tagged events, and a runtime scheduler processes events in tag order,
// exploiting parallelism permitted by the acyclic precedence graph while
// preserving determinism.
//
// Logical actions schedule future events within a reactor; physical
// actions inject events from asynchronous contexts (sensors, network
// interrupts) and are the model's only sanctioned source of
// nondeterminism. Reactions may carry deadlines that bind logical to
// physical time and turn timing violations into observable errors.
package reactor

import (
	"fmt"

	"repro/internal/logical"
)

// Reactor is a named collection of reactions, ports, actions and timers.
// Reactors are created on an Environment before it runs.
type Reactor struct {
	env   *Environment
	name  string
	index int // creation order, used for deterministic tie-breaking

	reactions []*Reaction
	startup   *startupTrigger
	shutdown  *shutdownTrigger
}

// NewReactor creates a top-level reactor.
func (e *Environment) NewReactor(name string) *Reactor {
	e.mustBeAssembling("NewReactor")
	r := &Reactor{env: e, name: name, index: len(e.reactors)}
	r.startup = &startupTrigger{owner: r}
	r.shutdown = &shutdownTrigger{owner: r}
	e.reactors = append(e.reactors, r)
	return r
}

// Name returns the reactor's name.
func (r *Reactor) Name() string { return r.name }

// Env returns the owning environment.
func (r *Reactor) Env() *Environment { return r.env }

// Startup returns the trigger that fires once at the start tag.
func (r *Reactor) Startup() Trigger { return r.startup }

// Shutdown returns the trigger that fires once at the stop tag.
func (r *Reactor) Shutdown() Trigger { return r.shutdown }

func (r *Reactor) String() string { return fmt.Sprintf("reactor(%s)", r.name) }

// Trigger is anything that can trigger a reaction: ports, actions,
// timers, startup and shutdown.
type Trigger interface {
	attach(rx *Reaction)
	triggerName() string
	owningReactor() *Reactor
}

// Effect is anything a reaction may affect: output ports it writes and
// actions it schedules.
type Effect interface {
	declareWriter(rx *Reaction)
	effectName() string
}

// Source is anything a reaction may read without being triggered by it
// (a "use" dependency).
type Source interface {
	declareReader(rx *Reaction)
	sourceName() string
}

type startupTrigger struct {
	owner     *Reactor
	reactions []*Reaction
}

func (s *startupTrigger) attach(rx *Reaction)     { s.reactions = append(s.reactions, rx) }
func (s *startupTrigger) triggerName() string     { return s.owner.name + ".startup" }
func (s *startupTrigger) owningReactor() *Reactor { return s.owner }

type shutdownTrigger struct {
	owner     *Reactor
	reactions []*Reaction
}

func (s *shutdownTrigger) attach(rx *Reaction)     { s.reactions = append(s.reactions, rx) }
func (s *shutdownTrigger) triggerName() string     { return s.owner.name + ".shutdown" }
func (s *shutdownTrigger) owningReactor() *Reactor { return s.owner }

// Reaction is a unit of computation triggered by events. Reactions of the
// same reactor are mutually exclusive and execute in declaration order
// when triggered at the same tag.
type Reaction struct {
	reactor *Reactor
	index   int // priority within the reactor
	name    string
	body    func(*Ctx)

	triggers []Trigger
	sources  []Source
	effects  []Effect

	deadline        logical.Duration
	deadlineHandler func(*Ctx)

	// level in the acyclic precedence graph (set during assembly).
	level int
	// enqueuedAt dedupes triggering within one tag.
	enqueuedAt logical.Tag
	enqueued   bool

	declaredEffects map[Effect]bool
	declaredReads   map[any]bool

	invocations        uint64
	deadlineViolations uint64
}

// AddReaction declares a new reaction. Triggers, sources, effects, an
// optional deadline and the body are attached with the builder methods;
// the reaction is finalized by Do.
func (r *Reactor) AddReaction(name string) *Reaction {
	r.env.mustBeAssembling("AddReaction")
	rx := &Reaction{
		reactor:         r,
		index:           len(r.reactions),
		name:            name,
		declaredEffects: map[Effect]bool{},
		declaredReads:   map[any]bool{},
	}
	r.reactions = append(r.reactions, rx)
	return rx
}

// Triggers declares the reaction's triggers.
func (rx *Reaction) Triggers(ts ...Trigger) *Reaction {
	rx.reactor.env.mustBeAssembling("Triggers")
	for _, t := range ts {
		rx.triggers = append(rx.triggers, t)
		rx.declaredReads[t] = true
		t.attach(rx)
	}
	return rx
}

// Reads declares sources the reaction reads without being triggered.
func (rx *Reaction) Reads(ss ...Source) *Reaction {
	rx.reactor.env.mustBeAssembling("Reads")
	for _, s := range ss {
		rx.sources = append(rx.sources, s)
		rx.declaredReads[s] = true
		s.declareReader(rx)
	}
	return rx
}

// Effects declares ports the reaction may set and actions it may
// schedule. Setting an undeclared effect panics at run time, because the
// precedence graph would be unsound.
func (rx *Reaction) Effects(es ...Effect) *Reaction {
	rx.reactor.env.mustBeAssembling("Effects")
	for _, e := range es {
		rx.effects = append(rx.effects, e)
		rx.declaredEffects[e] = true
		e.declareWriter(rx)
	}
	return rx
}

// WithDeadline attaches a deadline: if the reaction is invoked at tag t
// but physical time already exceeds t+d, handler runs instead of the
// body. This is the mechanism that makes timing violations observable
// rather than silent.
func (rx *Reaction) WithDeadline(d logical.Duration, handler func(*Ctx)) *Reaction {
	rx.reactor.env.mustBeAssembling("WithDeadline")
	if d <= 0 {
		panic("reactor: deadline must be positive")
	}
	rx.deadline = d
	rx.deadlineHandler = handler
	return rx
}

// Do sets the reaction body and completes the declaration.
func (rx *Reaction) Do(body func(*Ctx)) *Reaction {
	rx.reactor.env.mustBeAssembling("Do")
	rx.body = body
	return rx
}

// Name returns "reactor.reaction".
func (rx *Reaction) Name() string { return rx.reactor.name + "." + rx.name }

// Level returns the reaction's level in the acyclic precedence graph
// (valid after the environment started running).
func (rx *Reaction) Level() int { return rx.level }

// Invocations returns how many times the body (or deadline handler) ran.
func (rx *Reaction) Invocations() uint64 { return rx.invocations }

// DeadlineViolations returns how many invocations missed their deadline.
func (rx *Reaction) DeadlineViolations() uint64 { return rx.deadlineViolations }

func (rx *Reaction) String() string { return rx.Name() }

// Ctx is passed to reaction bodies and deadline handlers.
type Ctx struct {
	env      *Environment
	reaction *Reaction
	tag      logical.Tag
}

// Tag returns the current logical tag.
func (c *Ctx) Tag() logical.Tag { return c.tag }

// LogicalTime returns the current logical time point.
func (c *Ctx) LogicalTime() logical.Time { return c.tag.Time }

// PhysicalTime returns the current physical time from the environment's
// clock.
func (c *Ctx) PhysicalTime() logical.Time { return c.env.clock.Now() }

// Lag returns physical minus logical time.
func (c *Ctx) Lag() logical.Duration {
	return logical.Duration(c.PhysicalTime() - c.tag.Time)
}

// Elapsed returns logical time since the start tag.
func (c *Ctx) Elapsed() logical.Duration {
	return logical.Duration(c.tag.Time - c.env.startTime)
}

// DoWork consumes d of physical time (the reaction's computation),
// leaving logical time untouched.
func (c *Ctx) DoWork(d logical.Duration) { c.env.clock.Sleep(d) }

// RequestStop asks the runtime to shut down at the next microstep. All
// shutdown reactions will execute at that stop tag.
func (c *Ctx) RequestStop() { c.env.requestStopAt(c.tag.Next()) }

// Env returns the environment.
func (c *Ctx) Env() *Environment { return c.env }

// Reaction returns the currently executing reaction.
func (c *Ctx) Reaction() *Reaction { return c.reaction }
