package reactor

import (
	"fmt"

	"repro/internal/logical"
)

// actionBase carries untyped action bookkeeping.
type actionBase struct {
	owner    *Reactor
	name     string
	minDelay logical.Duration
	physical bool

	reactions []*Reaction
	writers   []*Reaction

	present   bool
	presentAt logical.Tag
}

func (a *actionBase) triggerName() string     { return a.owner.name + "." + a.name }
func (a *actionBase) effectName() string      { return a.triggerName() }
func (a *actionBase) sourceName() string      { return a.triggerName() }
func (a *actionBase) owningReactor() *Reactor { return a.owner }

// Action is a typed schedulable event source. Logical actions are
// scheduled from reactions and produce events with a tag relative to the
// current tag; physical actions are scheduled from asynchronous contexts
// and are tagged with physical time.
type Action[T any] struct {
	actionBase
	value T
}

// NewLogicalAction creates a logical action with the given minimum delay.
// Scheduling with total delay zero produces an event one microstep later.
func NewLogicalAction[T any](r *Reactor, name string, minDelay logical.Duration) *Action[T] {
	r.env.mustBeAssembling("NewLogicalAction")
	if minDelay < 0 {
		panic("reactor: negative action delay")
	}
	a := &Action[T]{actionBase: actionBase{owner: r, name: name, minDelay: minDelay}}
	r.env.actions = append(r.env.actions, &a.actionBase)
	return a
}

// NewPhysicalAction creates a physical action. Its events are tagged
// with the physical time of scheduling (plus the minimum delay); it is
// the sanctioned interface for sporadic sensors, interrupts and network
// receptions.
func NewPhysicalAction[T any](r *Reactor, name string, minDelay logical.Duration) *Action[T] {
	r.env.mustBeAssembling("NewPhysicalAction")
	if minDelay < 0 {
		panic("reactor: negative action delay")
	}
	a := &Action[T]{actionBase: actionBase{owner: r, name: name, minDelay: minDelay, physical: true}}
	r.env.actions = append(r.env.actions, &a.actionBase)
	return a
}

// attach implements Trigger.
func (a *Action[T]) attach(rx *Reaction) { a.reactions = append(a.reactions, rx) }

// declareWriter implements Effect.
func (a *Action[T]) declareWriter(rx *Reaction) { a.writers = append(a.writers, rx) }

// declareReader implements Source.
func (a *Action[T]) declareReader(rx *Reaction) {}

// Name returns "reactor.action".
func (a *Action[T]) Name() string { return a.triggerName() }

// IsPhysical reports whether this is a physical action.
func (a *Action[T]) IsPhysical() bool { return a.physical }

// Get returns the action's value and presence at the current tag.
func (a *Action[T]) Get(c *Ctx) (T, bool) {
	if !c.reaction.declaredReads[Source(a)] && !c.reaction.declaredReads[Trigger(a)] {
		panic(fmt.Sprintf("reactor: %s reads undeclared action %s", c.reaction, a.Name()))
	}
	var zero T
	if !a.present || a.presentAt != c.tag {
		return zero, false
	}
	return a.value, true
}

// Schedule schedules the (logical) action from within a reaction with an
// extra delay on top of the minimum delay. The resulting event's tag is
// current.Delay(minDelay+extra). The calling reaction must have declared
// the action as an effect.
func (a *Action[T]) Schedule(c *Ctx, v T, extra logical.Duration) {
	if a.physical {
		panic(fmt.Sprintf("reactor: physical action %s must be scheduled with ScheduleAsync", a.Name()))
	}
	if !c.reaction.declaredEffects[Effect(a)] {
		panic(fmt.Sprintf("reactor: %s schedules undeclared action %s", c.reaction, a.Name()))
	}
	if extra < 0 {
		panic("reactor: negative schedule delay")
	}
	tag := c.tag.Delay(a.minDelay + extra)
	c.env.scheduleEvent(tag, func(e *Environment) { a.fire(e, v) })
}

// ScheduleAsync schedules the (physical) action from any goroutine or
// external context. The event is tagged max(physicalNow+minDelay+extra,
// currentTag.Next()); the scheduler is woken if it is waiting.
func (a *Action[T]) ScheduleAsync(v T, extra logical.Duration) logical.Tag {
	if !a.physical {
		panic(fmt.Sprintf("reactor: logical action %s must be scheduled from a reaction", a.Name()))
	}
	if extra < 0 {
		panic("reactor: negative schedule delay")
	}
	e := a.owner.env
	e.mu.Lock()
	base := logical.Tag{Time: e.clock.Now().Add(a.minDelay + extra)}
	floor := e.currentTag.Next()
	if base.Before(floor) {
		base = floor
	}
	e.scheduleEventLocked(base, func(env *Environment) { a.fire(env, v) })
	e.mu.Unlock()
	e.clock.Interrupt()
	return base
}

// ScheduleAt schedules a physical action at an explicit tag. This is the
// safe-to-process primitive used by the DEAR transactors: the tag has
// already been advanced by D+L+E, and the runtime's physical-time barrier
// does the rest. ok reports whether the tag was safe: a tag whose time
// point lies in the physical past means a latency or clock-error bound
// was violated; a tag at or before the current logical tag is bumped to
// the next microstep so tag order is never violated. In both cases the
// event is still delivered — the violated assumption becomes an
// observable error, never silent corruption.
func (a *Action[T]) ScheduleAt(v T, tag logical.Tag) (logical.Tag, bool) {
	if !a.physical {
		panic(fmt.Sprintf("reactor: ScheduleAt requires a physical action (%s)", a.Name()))
	}
	e := a.owner.env
	e.mu.Lock()
	ok := true
	if tag.Time < e.clock.Now() {
		// The physical-time barrier can no longer guarantee that no
		// earlier-tagged message is in flight: the L+E bound was broken.
		ok = false
	}
	floor := e.currentTag.Next()
	if tag.Before(floor) {
		tag = floor
		ok = false
	}
	e.scheduleEventLocked(tag, func(env *Environment) { a.fire(env, v) })
	e.mu.Unlock()
	e.clock.Interrupt()
	return tag, ok
}

// fire makes the action present and triggers its reactions. Runs inside
// the scheduler at the event's tag.
func (a *Action[T]) fire(e *Environment, v T) {
	a.value = v
	a.present = true
	a.presentAt = e.currentTag
	e.markActionSet(&a.actionBase)
	for _, rx := range a.reactions {
		e.enqueueReaction(rx)
	}
}

// Timer triggers reactions periodically: first at start+offset, then
// every period. A period of zero makes it a one-shot.
type Timer struct {
	owner  *Reactor
	name   string
	offset logical.Duration
	period logical.Duration

	reactions []*Reaction
}

// NewTimer creates a timer on reactor r.
func NewTimer(r *Reactor, name string, offset, period logical.Duration) *Timer {
	r.env.mustBeAssembling("NewTimer")
	if offset < 0 || period < 0 {
		panic("reactor: negative timer offset/period")
	}
	t := &Timer{owner: r, name: name, offset: offset, period: period}
	r.env.timers = append(r.env.timers, t)
	return t
}

// attach implements Trigger.
func (t *Timer) attach(rx *Reaction) { t.reactions = append(t.reactions, rx) }

func (t *Timer) triggerName() string     { return t.owner.name + "." + t.name }
func (t *Timer) owningReactor() *Reactor { return t.owner }

// Name returns "reactor.timer".
func (t *Timer) Name() string { return t.triggerName() }

// Offset returns the timer's start offset.
func (t *Timer) Offset() logical.Duration { return t.offset }

// Period returns the timer's period (0 = one-shot).
func (t *Timer) Period() logical.Duration { return t.period }

// fire triggers the timer's reactions and schedules the next occurrence.
func (t *Timer) fire(e *Environment) {
	for _, rx := range t.reactions {
		e.enqueueReaction(rx)
	}
	if t.period > 0 {
		e.scheduleEvent(logical.Tag{Time: e.currentTag.Time.Add(t.period)}, t.fire)
	}
}
