package reactor

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/logical"
)

// randomProgram assembles a pseudo-random reactor pipeline from a spec:
// a chain of nStages reactors connected by ports (some delayed), each
// stage with a per-stage work duration, driven by a timer. It returns
// the collected trace.
type programSpec struct {
	Stages   uint8
	Delays   [6]uint16 // connection delays in µs (0 = zero-delay)
	Period   uint16    // timer period in ms
	WorkUS   [6]uint16 // per-stage DoWork in µs
	Horizon  uint8     // timeout in timer periods
	KernSeed uint64
}

func runRandomProgram(spec programSpec) ([]string, error) {
	stages := int(spec.Stages%5) + 2 // 2..6
	period := logical.Duration(int(spec.Period%40)+10) * logical.Millisecond
	horizon := logical.Duration(int(spec.Horizon%6)+3) * period

	k := des.NewKernel(spec.KernSeed)
	var trace []string
	var runErr error
	k.Spawn("env", func(p *des.Process) {
		env := NewEnvironment(Options{Clock: NewSimClock(p, nil), Timeout: horizon})
		env.SetTraceHook(func(ev TraceEvent) { trace = append(trace, ev.String()) })

		reactors := make([]*Reactor, stages)
		inPorts := make([]*Port[int], stages)
		outPorts := make([]*Port[int], stages)
		for i := 0; i < stages; i++ {
			reactors[i] = env.NewReactor(fmt.Sprintf("s%d", i))
			inPorts[i] = NewInputPort[int](reactors[i], "in")
			outPorts[i] = NewOutputPort[int](reactors[i], "out")
		}
		for i := 0; i+1 < stages; i++ {
			d := logical.Duration(spec.Delays[i%len(spec.Delays)]%500) * logical.Microsecond
			ConnectDelayed(outPorts[i], inPorts[i+1], d)
		}
		timer := NewTimer(reactors[0], "t", 0, period)
		n := 0
		reactors[0].AddReaction("emit").Triggers(timer).Effects(outPorts[0]).Do(func(c *Ctx) {
			n++
			outPorts[0].Set(c, n)
		})
		for i := 1; i < stages; i++ {
			i := i
			work := logical.Duration(spec.WorkUS[i%len(spec.WorkUS)]%800) * logical.Microsecond
			rx := reactors[i].AddReaction("fwd").Triggers(inPorts[i])
			if i+1 < stages {
				rx.Effects(outPorts[i])
			}
			rx.Do(func(c *Ctx) {
				v, _ := inPorts[i].Get(c)
				if work > 0 {
					c.DoWork(work)
				}
				if i+1 < stages {
					outPorts[i].Set(c, v+1)
				}
			})
		}
		runErr = env.Run()
	})
	k.RunAll()
	return trace, runErr
}

// Property: arbitrary pipeline programs run without error and produce
// identical traces when re-run with the same spec.
func TestRandomProgramsDeterministic(t *testing.T) {
	f := func(spec programSpec) bool {
		a, err := runRandomProgram(spec)
		if err != nil {
			t.Logf("spec %+v: %v", spec, err)
			return false
		}
		b, err := runRandomProgram(spec)
		if err != nil {
			return false
		}
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return len(a) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: trace tags never regress — the scheduler processes events in
// tag order regardless of program shape.
func TestRandomProgramsTagsMonotone(t *testing.T) {
	f := func(spec programSpec) bool {
		k := des.NewKernel(spec.KernSeed)
		_ = k
		trace := []logical.Tag{}
		stages := int(spec.Stages%5) + 2
		period := logical.Duration(int(spec.Period%40)+10) * logical.Millisecond
		horizon := logical.Duration(int(spec.Horizon%6)+3) * period

		kk := des.NewKernel(spec.KernSeed)
		var runErr error
		kk.Spawn("env", func(p *des.Process) {
			env := NewEnvironment(Options{Clock: NewSimClock(p, nil), Timeout: horizon})
			env.SetTraceHook(func(ev TraceEvent) { trace = append(trace, ev.Tag) })
			rs := make([]*Reactor, stages)
			ins := make([]*Port[int], stages)
			outs := make([]*Port[int], stages)
			for i := range rs {
				rs[i] = env.NewReactor(fmt.Sprintf("s%d", i))
				ins[i] = NewInputPort[int](rs[i], "in")
				outs[i] = NewOutputPort[int](rs[i], "out")
			}
			for i := 0; i+1 < stages; i++ {
				d := logical.Duration(spec.Delays[i%len(spec.Delays)]%300) * logical.Microsecond
				ConnectDelayed(outs[i], ins[i+1], d)
			}
			timer := NewTimer(rs[0], "t", 0, period)
			rs[0].AddReaction("emit").Triggers(timer).Effects(outs[0]).Do(func(c *Ctx) {
				outs[0].Set(c, 1)
			})
			for i := 1; i < stages; i++ {
				i := i
				rx := rs[i].AddReaction("fwd").Triggers(ins[i])
				if i+1 < stages {
					rx.Effects(outs[i])
				}
				rx.Do(func(c *Ctx) {
					if i+1 < stages {
						v, _ := ins[i].Get(c)
						outs[i].Set(c, v)
					}
				})
			}
			runErr = env.Run()
		})
		kk.RunAll()
		if runErr != nil {
			return false
		}
		for i := 1; i < len(trace); i++ {
			if trace[i].Before(trace[i-1]) {
				t.Logf("tag regression at %d: %v after %v", i, trace[i], trace[i-1])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: physical action tags from an external process are strictly
// increasing when scheduled at increasing physical times.
func TestPhysicalActionTagsMonotoneProperty(t *testing.T) {
	f := func(gaps [8]uint16, seed uint64) bool {
		k := des.NewKernel(seed)
		var tags []logical.Tag
		var act *Action[int]
		ready := make(chan struct{}, 1)
		k.Spawn("env", func(p *des.Process) {
			env := NewEnvironment(Options{Clock: NewSimClock(p, nil), KeepAlive: true, Timeout: logical.Second})
			r := env.NewReactor("rx")
			act = NewPhysicalAction[int](r, "a", 0)
			r.AddReaction("recv").Triggers(act).Do(func(c *Ctx) {
				tags = append(tags, c.Tag())
			})
			ready <- struct{}{}
			_ = env.Run()
		})
		k.Spawn("driver", func(p *des.Process) {
			<-ready
			for i, g := range gaps {
				p.Sleep(logical.Duration(int(g%2000)) * logical.Microsecond)
				act.ScheduleAsync(i, 0)
			}
		})
		k.RunAll()
		if len(tags) != len(gaps) {
			return false
		}
		for i := 1; i < len(tags); i++ {
			if !tags[i-1].Before(tags[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
