package exp

import (
	"runtime"
	"strings"
	"testing"
)

func quickMeshConfig(n int) MeshConfig {
	cfg := DefaultMeshConfig(n)
	cfg.Rounds = 5
	cfg.NoiseEvents = 60
	return cfg
}

// The E10 determinism gate: federated runs must be byte-identical to the
// single-kernel run for every seed and partition count.
func TestMeshFederatedMatchesSingleKernel(t *testing.T) {
	reports, err := RunMeshDeterminismCheck(1, 2, quickMeshConfig(6), []int{2, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports", len(reports))
	}
	if !strings.Contains(reports[0], "total calls=90 served=90") {
		t.Fatalf("unexpected workload shape:\n%s", reports[0])
	}
}

// Cross-mode determinism property test (the satellite tied to E4): the
// methodology of E4's determinism check — same behaviour for every
// execution of the same seed — applied across execution modes. For ≥3
// seeds and ≥3 partition counts, federated and single-kernel runs must
// produce byte-identical reports; and E4's own determinism check must
// still hold for the same seeds, pinning the two gates together.
func TestMeshCrossModeDeterminismProperty(t *testing.T) {
	cfg := quickMeshConfig(8)
	if _, err := RunMeshDeterminismCheck(11, 3, cfg, []int{2, 3, 4, 8}); err != nil {
		t.Fatal(err)
	}
	// E4's determinism check, same seed base: the deterministic brake
	// assistant still behaves identically across physical seeds.
	if _, err := RunDeterminismCheck(11, 3, 150); err != nil {
		t.Fatal(err)
	}
}

// A federated run must not depend on the Go scheduler: identical reports
// under different GOMAXPROCS values.
func TestMeshDeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := quickMeshConfig(6)
	ref, err := RunMesh(5, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		got, err := RunMesh(5, cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got.Report() != ref.Report() {
			t.Fatalf("GOMAXPROCS=%d: federated report diverged", procs)
		}
	}
}

func TestMeshScenarioGenerator(t *testing.T) {
	cfg := DefaultMeshConfig(2)
	if cfg.Degree != 1 {
		t.Fatalf("degree = %d for n=2", cfg.Degree)
	}
	cfg = DefaultMeshConfig(32)
	if cfg.Degree != 3 {
		t.Fatalf("degree = %d for n=32", cfg.Degree)
	}
	// Partition counts beyond the platform count are capped, not an error.
	small := quickMeshConfig(3)
	small.NoiseEvents = 10
	res, err := RunMesh(1, small, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 3 {
		t.Fatalf("partitions = %d", res.Partitions)
	}
	if res.CoordRounds == 0 {
		t.Fatal("federated run reported zero coordination rounds")
	}
}

func TestMeshValidation(t *testing.T) {
	if _, err := RunMesh(1, MeshConfig{Platforms: 1, LinkLatency: 1}, 1); err == nil {
		t.Error("1-platform mesh must be rejected")
	}
	if _, err := RunMesh(1, MeshConfig{Platforms: 4}, 2); err == nil {
		t.Error("zero link latency must be rejected (no lookahead)")
	}
}

func TestMeshReportShape(t *testing.T) {
	cfg := quickMeshConfig(4)
	res, err := RunMesh(9, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	for _, want := range []string{"E10 mesh seed=9", "plat00", "plat03", "total calls="} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	if got := len(res.Rows); got != 4 {
		t.Fatalf("rows = %d", got)
	}
	for i, row := range res.Rows {
		if row.Calls == 0 || row.Served == 0 {
			t.Fatalf("platform %d idle: %+v", i, row)
		}
		if row.LatMaxNs < row.LatMeanNs() {
			t.Fatalf("platform %d: max < mean", i)
		}
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}
