package exp

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/trace"
)

// quickTraceConfig shrinks the mesh for trace tests while keeping a
// multi-platform workload with cross-platform calls.
func quickTraceConfig() MeshConfig {
	cfg := DefaultMeshConfig(6)
	cfg.Rounds = 4
	cfg.NoiseEvents = 40
	return cfg
}

// The tentpole property the recorder is built around: the merged
// federated trace is byte-identical (in the deterministic binary
// encoding) to the single-kernel trace, across ≥3 seeds × partition
// counts {1,2,4} × GOMAXPROCS values. The check rides the shared
// determinismSweep engine by folding the encoded trace into the
// compared report string.
func TestTraceModeIndependenceProperty(t *testing.T) {
	cfg := quickTraceConfig()
	run := func(seed uint64, partitions int) (*MeshResult, string, error) {
		res, err := RunMesh(seed, cfg, partitions)
		if err != nil {
			return nil, "", err
		}
		if res.Trace == nil || res.Trace.Len() == 0 {
			t.Fatalf("seed %d × %d partitions: empty trace", seed, partitions)
		}
		if res.Trace.Truncated != 0 {
			t.Fatalf("seed %d × %d partitions: trace truncated (%d dropped) — capacity estimate too small",
				seed, partitions, res.Trace.Truncated)
		}
		return res, res.Report() + "\n" + string(res.Trace.Encode()), nil
	}

	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	sweep := []int{1, 2, 8}
	var ref []string
	for _, procs := range sweep {
		runtime.GOMAXPROCS(procs)
		_, reports, err := determinismSweep(7, 3, []int{1, 2, 4}, run)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		if ref == nil {
			ref = reports
			continue
		}
		for i := range reports {
			if reports[i] != ref[i] {
				t.Fatalf("GOMAXPROCS=%d: trace+report diverged from GOMAXPROCS=%d reference at seed index %d", procs, sweep[0], i)
			}
		}
	}
}

// The E13 divergence-diagnosis gate: two same-seed runs never
// diverge, while a perturbed-seed pair yields a concrete (time,
// component, kind) triple. The perturbed pair runs the random-regular
// topology, where the seed shapes the call graph (the ring preset's
// behaviour is deliberately seed-invariant: fixed latency, zero
// dispatch jitter).
func TestTraceFirstDivergenceOnMeshRuns(t *testing.T) {
	cfg := quickTraceConfig()
	a, err := RunMesh(11, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMesh(11, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := trace.FirstDivergence(a.Trace, b.Trace); d != nil {
		t.Fatalf("same-seed runs diverged: %s", d)
	}

	rr := cfg
	rr.Topology = scenario.RandomRegular
	x, err := RunMesh(11, rr, 1)
	if err != nil {
		t.Fatal(err)
	}
	y, err := RunMesh(12, rr, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := trace.FirstDivergence(x.Trace, y.Trace)
	if d == nil {
		t.Fatal("perturbed-seed runs produced identical traces — the trace carries no behaviour")
	}
	if d.Component() == "" || d.Kind() == "" {
		t.Fatalf("divergence lacks a concrete (time, component, kind) triple: %s", d)
	}
	t.Logf("perturbed-seed divergence: t=%v component=%s kind=%s", d.Time(), d.Component(), d.Kind())
}

// A failing gate must localize the divergence instead of dumping two
// reports: divergenceError consults the traces.
func TestGateDivergenceErrorNamesFirstEvent(t *testing.T) {
	cfg := quickTraceConfig()
	cfg.Topology = scenario.RandomRegular
	a, err := RunMesh(21, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMesh(22, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	gateErr := divergenceError(21, 2, a, a.Report(), b, b.Report())
	msg := gateErr.Error()
	if d := trace.FirstDivergence(a.Trace, b.Trace); d != nil {
		for _, want := range []string{"first divergent event", d.Component(), d.Kind()} {
			if !strings.Contains(msg, want) {
				t.Fatalf("gate error %q does not name %q", msg, want)
			}
		}
	} else {
		t.Fatal("different seeds produced identical traces")
	}
}
