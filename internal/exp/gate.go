package exp

import (
	"fmt"

	"repro/internal/trace"
)

// determinismSweep is the generic engine behind the E10, E11 and E12
// byte-equality gates: the seed × partition-count sweep every gate
// shares. For each of `seeds` consecutive seeds it obtains the
// single-kernel reference report, re-runs at every requested partition
// count and requires byte-identical reports; across seeds it requires
// the reports to *differ* (a gate whose reports never change with the
// seed is vacuous). run returns the structured result alongside its
// canonical report; the per-seed single-kernel references are returned
// for structured assertions.
//
// On a report mismatch the gate consults the runs' logical event
// traces and names the first divergent event — (time, component,
// kind) — instead of dumping two unequal reports; the full dump
// remains the fallback when traces are unavailable or agree (a report
// divergence outside the traced event set).
func determinismSweep(seedBase uint64, seeds int, partitionCounts []int,
	run func(seed uint64, partitions int) (*MeshResult, string, error)) ([]*MeshResult, []string, error) {
	var refs []*MeshResult
	var reports []string
	for s := 0; s < seeds; s++ {
		seed := seedBase + uint64(s)
		ref, refReport, err := run(seed, 1)
		if err != nil {
			return nil, nil, err
		}
		for _, p := range partitionCounts {
			if p <= 1 {
				// The single-kernel run already is the reference;
				// re-running it would compare a deterministic run to
				// itself (vacuous) at full simulation cost.
				continue
			}
			res, r, err := run(seed, p)
			if err != nil {
				return nil, nil, err
			}
			if r != refReport {
				return nil, nil, divergenceError(seed, p, ref, refReport, res, r)
			}
		}
		refs = append(refs, ref)
		reports = append(reports, refReport)
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] == reports[0] {
			return refs, reports, fmt.Errorf("exp: reports identical across different seeds — gate is vacuous")
		}
	}
	return refs, reports, nil
}

// divergenceError builds the gate-failure error: trace-localized when
// the traces disagree, the full report dump otherwise.
func divergenceError(seed uint64, partitions int, ref *MeshResult, refReport string, res *MeshResult, report string) error {
	if ref != nil && res != nil && ref.Trace != nil && res.Trace != nil {
		if d := trace.FirstDivergence(ref.Trace, res.Trace); d != nil {
			return fmt.Errorf(
				"exp: diverged at seed %d, %d partitions: first divergent event at t=%v component=%s kind=%s (%s)",
				seed, partitions, d.Time(), d.Component(), d.Kind(), d)
		}
	}
	return fmt.Errorf(
		"exp: diverged at seed %d, %d partitions (traces agree — divergence is outside the traced event set):\n--- single kernel ---\n%s--- federated ---\n%s",
		seed, partitions, refReport, report)
}
