package exp

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/scenario"
	"repro/internal/trace"
)

// determinismSweep is the generic engine behind the E10, E11 and E12
// byte-equality gates: the seed × partition-count sweep every gate
// shares. For each of `seeds` consecutive seeds it obtains the
// single-kernel reference report, re-runs at every requested partition
// count and requires byte-identical reports; across seeds it requires
// the reports to *differ* (a gate whose reports never change with the
// seed is vacuous). run returns the structured result alongside its
// canonical report; the per-seed single-kernel references are returned
// for structured assertions.
//
// On a report mismatch the gate consults the runs' logical event
// traces and names the first divergent event — (time, component,
// kind) — instead of dumping two unequal reports; the full dump
// remains the fallback when traces are unavailable or agree (a report
// divergence outside the traced event set).
func determinismSweep(seedBase uint64, seeds int, partitionCounts []int,
	run func(seed uint64, partitions int) (*MeshResult, string, error)) ([]*MeshResult, []string, error) {
	var refs []*MeshResult
	var reports []string
	for s := 0; s < seeds; s++ {
		seed := seedBase + uint64(s)
		ref, refReport, err := run(seed, 1)
		if err != nil {
			return nil, nil, err
		}
		for _, p := range partitionCounts {
			if p <= 1 {
				// The single-kernel run already is the reference;
				// re-running it would compare a deterministic run to
				// itself (vacuous) at full simulation cost.
				continue
			}
			res, r, err := run(seed, p)
			if err != nil {
				return nil, nil, err
			}
			if r != refReport {
				return nil, nil, divergenceError(seed, p, ref, refReport, res, r)
			}
		}
		refs = append(refs, ref)
		reports = append(reports, refReport)
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] == reports[0] {
			return refs, reports, fmt.Errorf("exp: reports identical across different seeds — gate is vacuous")
		}
	}
	return refs, reports, nil
}

// divergenceError builds the gate-failure error: trace-localized when
// the traces disagree, the full report dump otherwise.
func divergenceError(seed uint64, partitions int, ref *MeshResult, refReport string, res *MeshResult, report string) error {
	if ref != nil && res != nil && ref.Trace != nil && res.Trace != nil {
		if d := trace.FirstDivergence(ref.Trace, res.Trace); d != nil {
			return fmt.Errorf(
				"exp: diverged at seed %d, %d partitions: first divergent event at t=%v component=%s kind=%s (%s)",
				seed, partitions, d.Time(), d.Component(), d.Kind(), d)
		}
	}
	return fmt.Errorf(
		"exp: diverged at seed %d, %d partitions (traces agree — divergence is outside the traced event set):\n--- single kernel ---\n%s--- federated ---\n%s",
		seed, partitions, refReport, report)
}

// ModeDivergence describes one determinism-contract violation found by
// CompareSpecModes: which execution mode disagreed with the
// single-kernel reference, both canonical reports, and — when the
// logical event traces disagree too — the first divergent event.
type ModeDivergence struct {
	// Partitions is the federated partition count that diverged.
	Partitions int
	// Procs is the GOMAXPROCS value the diverging run executed under
	// (0 = the ambient setting was left untouched).
	Procs int
	// RefReport is the single-kernel reference report.
	RefReport string
	// Report is the diverging run's report. Equal to RefReport when the
	// divergence is trace-only.
	Report string
	// Div localizes the divergence to the first disagreeing trace event;
	// nil when the traces agree (the divergence then lies outside the
	// traced event set).
	Div *trace.Divergence
}

// String renders the violation for gate failures and repro reports:
// the mode, the first divergent event when localized, and both reports
// when they differ.
func (m *ModeDivergence) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "federated run (%d partitions, GOMAXPROCS=%d) diverged from single-kernel reference\n",
		m.Partitions, m.Procs)
	if m.Div != nil {
		fmt.Fprintf(&b, "first divergent event: t=%v component=%s kind=%s (%s)\n",
			m.Div.Time(), m.Div.Component(), m.Div.Kind(), m.Div)
	} else {
		b.WriteString("traces agree — divergence is outside the traced event set\n")
	}
	if m.Report != m.RefReport {
		fmt.Fprintf(&b, "--- single kernel ---\n%s--- federated ---\n%s", m.RefReport, m.Report)
	} else {
		b.WriteString("canonical reports agree — divergence is trace-only\n")
	}
	return b.String()
}

// CompareSpecModes is the reusable run-one-spec-both-modes primitive
// behind the determinism fuzzer, the regression-spec replay test and
// the -scenario CLI gate: it runs the spec once on a single kernel
// (the reference) and then federated at every requested partition
// count × GOMAXPROCS value, requiring byte-identical canonical reports
// AND byte-identical canonical traces — and, for specs with a monitors
// block, byte-identical monitor verdict reports (the merged verdicts
// must match the single-kernel engine's exactly, which is how fuzzed
// monitor-bearing specs keep monitor determinism fuzz-checked). It
// returns the first violation (nil when every mode agrees); the error
// return is reserved for specs that fail to compile or run.
//
// partitionCounts defaults to {2, 4}; entries ≤ 1 and counts that
// collapse to an already-run effective partition count (the compiler
// caps partitions at the platform count) are skipped. procs defaults
// to {0}, meaning GOMAXPROCS is left untouched; positive entries pin
// it for the federated run and restore the previous value afterwards.
func CompareSpecModes(spec scenario.Spec, partitionCounts, procs []int) (*ModeDivergence, error) {
	if len(partitionCounts) == 0 {
		partitionCounts = []int{2, 4}
	}
	if len(procs) == 0 {
		procs = []int{0}
	}
	norm, err := spec.Normalized()
	if err != nil {
		return nil, err
	}
	norm.Partitions = 1
	ref, err := RunScenario(norm)
	if err != nil {
		return nil, fmt.Errorf("exp: single-kernel reference: %w", err)
	}
	// The compared string is the canonical report plus the verdict
	// report (empty for monitor-free specs) — one byte-equality check
	// covers both contracts without perturbing monitor-free bytes.
	refReport := ref.Report() + ref.VerdictReport()
	seen := map[int]bool{1: true}
	for _, p := range partitionCounts {
		eff := p
		if eff > norm.Platforms {
			eff = norm.Platforms
		}
		if eff <= 1 || seen[eff] {
			continue
		}
		seen[eff] = true
		fed := norm
		fed.Partitions = eff
		for _, gp := range procs {
			restore := pinProcs(gp)
			res, err := RunScenario(fed)
			restore()
			if err != nil {
				return nil, fmt.Errorf("exp: federated run (%d partitions): %w", eff, err)
			}
			md := &ModeDivergence{
				Partitions: res.Partitions,
				Procs:      gp,
				RefReport:  refReport,
				Report:     res.Report() + res.VerdictReport(),
			}
			if ref.Trace != nil && res.Trace != nil {
				md.Div = trace.FirstDivergence(ref.Trace, res.Trace)
			}
			if md.Report != md.RefReport || md.Div != nil {
				return md, nil
			}
		}
	}
	return nil, nil
}

// pinProcs sets GOMAXPROCS for one run and returns the restore func;
// n ≤ 0 is a no-op (ambient setting kept).
func pinProcs(n int) (restore func()) {
	if n <= 0 {
		return func() {}
	}
	old := runtime.GOMAXPROCS(n)
	return func() { runtime.GOMAXPROCS(old) }
}
