package exp

import (
	"testing"
	"time"
)

func TestLoopbackRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets skipped with -short")
	}
	const n = 16
	res, err := RunLoopback(n, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != n {
		t.Errorf("completed %d/%d round trips", res.Completed, n)
	}
	if res.TagsEchoed != n {
		t.Errorf("tagged responses %d/%d — tag trailer lost on the real substrate", res.TagsEchoed, n)
	}
	if res.RTTMin <= 0 || res.RTTMax < res.RTTMin || res.RTTMean < res.RTTMin {
		t.Errorf("implausible RTT stats: min=%v mean=%v max=%v", res.RTTMin, res.RTTMean, res.RTTMax)
	}
}

func TestLoopbackValidatesInput(t *testing.T) {
	if _, err := RunLoopback(0, time.Second); err == nil {
		t.Error("n=0 should be rejected")
	}
}
