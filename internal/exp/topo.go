package exp

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/scenario"
)

// --- Experiment E12: topology sweep over the scenario engine ---
//
// E10 and E11 exercise one deployment shape (the ring mesh). The
// scenario engine makes deployment shape a declarative input, so E12
// sweeps the same client/server workload across every topology
// generator (star, ring, tree, random-regular) × partition count and
// extends the federated-vs-single byte-equality gate to each: the
// determinism claim is checked per *shape*, not just per scale.

// TopologySweepConfig parameterizes E12.
type TopologySweepConfig struct {
	// Platforms is N, the platform count each shape is generated for.
	Platforms int
	// Rounds is the per-client call-round count.
	Rounds int
	// NoiseEvents drives each platform's local load generator.
	NoiseEvents int
	// PartitionCounts are the execution modes swept per shape; 1 is the
	// single-kernel reference.
	PartitionCounts []int
}

// DefaultTopologySweepConfig returns the E12 scale: 12 platforms per
// shape, the E10 workload mix, partition counts {1, 2, 4}.
func DefaultTopologySweepConfig() TopologySweepConfig {
	return TopologySweepConfig{
		Platforms:       12,
		Rounds:          12,
		NoiseEvents:     400,
		PartitionCounts: []int{1, 2, 4},
	}
}

// topoSpec builds the E12 spec for one shape.
func (c TopologySweepConfig) topoSpec(shape scenario.Shape) scenario.Spec {
	spec := scenario.TopologyPreset(shape, c.Platforms)
	spec.Rounds = c.Rounds
	spec.NoiseEvents = c.NoiseEvents
	return spec
}

// TopologySweepEntry is one (shape, partition count) cell of E12.
type TopologySweepEntry struct {
	// Shape is the topology generator the cell ran.
	Shape scenario.Shape
	// Partitions is the executed partition count.
	Partitions int
	// Calls/Served/Errors aggregate the canonical per-platform rows.
	Calls int
	// Served counts compute invocations across all platforms.
	Served int
	// Errors counts observable call failures across all platforms.
	Errors int
	// CoordRounds is the federation's coordination-round count
	// (mode-dependent diagnostic; zero on a single kernel).
	CoordRounds uint64
	// EventsFired counts kernel events (mode-dependent diagnostic).
	EventsFired uint64
}

// TopologySweepResult is the full E12 sweep.
type TopologySweepResult struct {
	// Config is the sweep configuration.
	Config TopologySweepConfig
	// Seed is the world seed every cell used.
	Seed uint64
	// Entries holds one cell per shape × partition count, in sweep
	// order.
	Entries []TopologySweepEntry
	// Reports maps each shape to its canonical report (identical for
	// every partition count — enforced during the sweep).
	Reports map[scenario.Shape]string
}

// Table renders the sweep.
func (r *TopologySweepResult) Table() *metrics.Table {
	t := metrics.NewTable("topology", "partitions", "calls", "served", "errors", "events", "sync rounds")
	for _, e := range r.Entries {
		t.Row(string(e.Shape), e.Partitions, e.Calls, e.Served, e.Errors, e.EventsFired, e.CoordRounds)
	}
	return t
}

// RunTopologySweep executes E12 once: for every topology shape it runs
// the workload at each partition count and requires the canonical
// report to be byte-identical to the shape's single-kernel reference —
// the E10 gate extended to every deployment shape the generator can
// produce. It errors on the first divergence or idle workload.
func RunTopologySweep(seed uint64, cfg TopologySweepConfig) (*TopologySweepResult, error) {
	if len(cfg.PartitionCounts) == 0 {
		cfg.PartitionCounts = []int{1, 2, 4}
	}
	res := &TopologySweepResult{Config: cfg, Seed: seed, Reports: map[scenario.Shape]string{}}
	for _, shape := range scenario.Shapes {
		spec := cfg.topoSpec(shape)
		// The single-kernel run is the reference every federated cell
		// must match byte-for-byte.
		ref, err := RunMesh(seed, spec, 1)
		if err != nil {
			return nil, fmt.Errorf("exp: topo %s reference: %w", shape, err)
		}
		refReport := ref.Report()
		for _, parts := range cfg.PartitionCounts {
			run := ref // the reference already is the parts<=1 run
			if parts > 1 {
				run, err = RunMesh(seed, spec, parts)
				if err != nil {
					return nil, fmt.Errorf("exp: topo %s × %d partitions: %w", shape, parts, err)
				}
			}
			if r := run.Report(); r != refReport {
				return nil, fmt.Errorf("exp: E12 determinism gate failed for shape %s at %d partitions:\n--- reference ---\n%s--- got ---\n%s",
					shape, parts, refReport, r)
			}
			e := TopologySweepEntry{
				Shape:       shape,
				Partitions:  run.Partitions,
				CoordRounds: run.CoordRounds,
				EventsFired: run.EventsFired,
			}
			for _, row := range run.Rows {
				e.Calls += row.Calls
				e.Served += row.Served
				e.Errors += row.Errors
			}
			if e.Calls == 0 || e.Served == 0 {
				return nil, fmt.Errorf("exp: topo %s × %d partitions: idle workload (calls=%d served=%d)",
					shape, parts, e.Calls, e.Served)
			}
			res.Entries = append(res.Entries, e)
		}
		res.Reports[shape] = refReport
	}
	return res, nil
}

// RunTopologyDeterminismCheck is the E12 acceptance gate: for every
// topology shape, the generic seed × partition-count sweep (byte-
// identical federated vs single-kernel reports per seed, differing
// reports across seeds). It returns the per-shape per-seed reference
// reports keyed by shape.
func RunTopologyDeterminismCheck(seedBase uint64, seeds int, cfg TopologySweepConfig) (map[scenario.Shape][]string, error) {
	if len(cfg.PartitionCounts) == 0 {
		cfg.PartitionCounts = []int{1, 2, 4}
	}
	out := map[scenario.Shape][]string{}
	for _, shape := range scenario.Shapes {
		spec := cfg.topoSpec(shape)
		_, reports, err := determinismSweep(seedBase, seeds, cfg.PartitionCounts,
			func(seed uint64, partitions int) (*MeshResult, string, error) {
				res, err := RunMesh(seed, spec, partitions)
				if err != nil {
					return nil, "", err
				}
				return res, res.Report(), nil
			})
		if err != nil {
			return nil, fmt.Errorf("exp: E12 gate, shape %s: %w", shape, err)
		}
		out[shape] = reports
	}
	return out, nil
}
