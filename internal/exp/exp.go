// Package exp contains one entry point per experiment in the paper's
// evaluation, plus the extension studies listed in DESIGN.md. The cmd/
// tools and the benchmark harness are thin wrappers around this package.
package exp

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/apd"
	"repro/internal/ara"
	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/someip"
)

// --- Experiment E1: Figure 1 — nondeterministic client/server ---

// counterIface is the Figure 1 service: a state variable manipulated by
// set_value/add/get_value.
var counterIface = &ara.ServiceInterface{
	Name:  "Counter",
	ID:    0x1100,
	Major: 1,
	Methods: []ara.MethodSpec{
		{ID: 1, Name: "set_value"},
		{ID: 2, Name: "add"},
		{ID: 3, Name: "get_value"},
	},
}

// Figure1Config tunes the Figure 1 reproduction.
type Figure1Config struct {
	// Trials of the three-call sequence.
	Trials int
	// Workers in the server's thread pool.
	Workers int
	// DispatchMean is the mean exponential thread-dispatch latency.
	DispatchMean logical.Duration
	// IssueGap is the client-side delay between consecutive non-blocking
	// calls (instruction/marshalling cost).
	IssueGap logical.Duration
	// Blocking serializes the calls by waiting on each future (the fix
	// discussed in the paper) — the distribution collapses to P(3)=1.
	Blocking bool
}

// DefaultFigure1Config mirrors the paper's setup.
func DefaultFigure1Config(trials int) Figure1Config {
	return Figure1Config{
		Trials:       trials,
		Workers:      4,
		DispatchMean: 50 * logical.Microsecond,
		IssueGap:     20 * logical.Microsecond,
	}
}

// Figure1Result is the outcome distribution over printed values 0..3.
type Figure1Result struct {
	Trials int
	// Counts[v] = number of trials that printed v.
	Counts [4]int
}

// Probability returns P(printed value = v).
func (r *Figure1Result) Probability(v int) float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Counts[v]) / float64(r.Trials)
}

// DistinctOutcomes counts how many different values were observed.
func (r *Figure1Result) DistinctOutcomes() int {
	n := 0
	for _, c := range r.Counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// Table renders the distribution like the bar chart in Figure 1.
func (r *Figure1Result) Table() *metrics.Table {
	t := metrics.NewTable("printed value", "count", "probability")
	for v := 0; v <= 3; v++ {
		t.Row(v, r.Counts[v], r.Probability(v))
	}
	return t
}

func u32be(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}

// RunFigure1 reproduces the client/server experiment of Figure 1: the
// client issues set_value(1), add(2), get_value() without waiting for
// futures; the server maps each invocation to a worker thread with
// mutual exclusion but scheduler-determined order.
func RunFigure1(seed uint64, cfg Figure1Config) (*Figure1Result, error) {
	k := des.NewKernel(seed)
	n := simnet.NewNetwork(k, simnet.Config{})
	h1 := n.AddHost("server", k.NewLocalClock(des.ClockConfig{}, nil))
	h2 := n.AddHost("client", k.NewLocalClock(des.ClockConfig{}, nil))

	dispatch := cfg.DispatchMean
	server, err := ara.NewRuntime(h1, ara.Config{Name: "server", Exec: ara.ExecConfig{
		Workers:    cfg.Workers,
		Serialized: true,
		DispatchJitter: func(r *des.Rand) logical.Duration {
			return logical.Duration(r.Exp(float64(dispatch)))
		},
	}})
	if err != nil {
		return nil, err
	}
	client, err := ara.NewRuntime(h2, ara.Config{Name: "client"})
	if err != nil {
		return nil, err
	}

	var value uint32
	sk, err := server.NewSkeleton(counterIface, 1)
	if err != nil {
		return nil, err
	}
	must := func(e error) {
		if e != nil {
			panic(e)
		}
	}
	must(sk.Handle("set_value", func(c *ara.Ctx, args []byte) ([]byte, error) {
		value = binary.BigEndian.Uint32(args)
		return nil, nil
	}))
	must(sk.Handle("add", func(c *ara.Ctx, args []byte) ([]byte, error) {
		value += binary.BigEndian.Uint32(args)
		return nil, nil
	}))
	must(sk.Handle("get_value", func(c *ara.Ctx, args []byte) ([]byte, error) {
		return u32be(value), nil
	}))
	k.At(0, func() { sk.Offer() })

	result := &Figure1Result{Trials: cfg.Trials}
	var runErr error
	client.Spawn("main", func(c *ara.Ctx) {
		px, err := client.FindServiceSync(c.Process(), counterIface, 1, logical.Second)
		if err != nil {
			runErr = err
			return
		}
		for trial := 0; trial < cfg.Trials; trial++ {
			// Reset the server state between trials (blocking).
			if _, err := px.Call("set_value", u32be(0)).Get(c.Process()); err != nil {
				runErr = err
				return
			}
			c.Exec(logical.Millisecond) // drain the pool between trials
			var got []byte
			if cfg.Blocking {
				if _, err := px.Call("set_value", u32be(1)).Get(c.Process()); err != nil {
					runErr = err
					return
				}
				if _, err := px.Call("add", u32be(2)).Get(c.Process()); err != nil {
					runErr = err
					return
				}
				got, err = px.Call("get_value", nil).Get(c.Process())
			} else {
				// The Figure 1 client: non-blocking calls in sequence.
				px.Call("set_value", u32be(1))
				c.Exec(cfg.IssueGap)
				px.Call("add", u32be(2))
				c.Exec(cfg.IssueGap)
				got, err = px.Call("get_value", nil).Get(c.Process())
			}
			if err != nil {
				runErr = err
				return
			}
			v := binary.BigEndian.Uint32(got)
			if v > 3 {
				runErr = fmt.Errorf("exp: impossible printed value %d", v)
				return
			}
			result.Counts[v]++
			c.Exec(logical.Millisecond)
		}
	})
	k.RunAll()
	k.Shutdown()
	if runErr != nil {
		return nil, runErr
	}
	return result, nil
}

// --- Experiment E3: Figure 5 — baseline error prevalence ---

// InstanceResult is one bar of Figure 5.
type InstanceResult struct {
	Instance int
	Seed     uint64
	Counters apd.ErrorCounters
}

// Figure5Result aggregates the experiment instances, sorted by error
// rate as in the paper's plot.
type Figure5Result struct {
	Frames    int
	Instances []InstanceResult
}

// Prevalences returns the sorted error rates.
func (r *Figure5Result) Prevalences() []float64 {
	out := make([]float64, len(r.Instances))
	for i, inst := range r.Instances {
		out[i] = inst.Counters.Prevalence()
	}
	return out
}

// Stats returns (min, mean, max) prevalence.
func (r *Figure5Result) Stats() (min, mean, max float64) {
	s := metrics.NewMomentsOnly()
	for _, inst := range r.Instances {
		s.Add(inst.Counters.Prevalence())
	}
	return s.Min(), s.Mean(), s.Max()
}

// Table renders the per-instance breakdown like Figure 5.
func (r *Figure5Result) Table() *metrics.Table {
	t := metrics.NewTable("instance", "seed", "prevalence %",
		"dropped(Pre)", "dropped(CV)", "mismatch(CV)", "dropped(EBA)")
	for i, inst := range r.Instances {
		c := inst.Counters
		t.Row(i+1, inst.Seed, c.Prevalence(), c.DroppedPre, c.DroppedCV, c.MismatchCV, c.DroppedEBA)
	}
	return t
}

// RunFigure5 executes the baseline brake assistant for the given number
// of experiment instances, each with a fresh seed (phases, drift,
// jitter), and sorts the results by error rate.
func RunFigure5(seedBase uint64, instances, frames int) (*Figure5Result, error) {
	res := &Figure5Result{Frames: frames}
	for i := 0; i < instances; i++ {
		seed := seedBase + uint64(i)
		b, err := apd.NewBaseline(seed, apd.DefaultBaselineConfig(frames))
		if err != nil {
			return nil, err
		}
		c := b.Run()
		res.Instances = append(res.Instances, InstanceResult{Instance: i, Seed: seed, Counters: *c})
	}
	sort.Slice(res.Instances, func(a, b int) bool {
		return res.Instances[a].Counters.Prevalence() < res.Instances[b].Counters.Prevalence()
	})
	return res, nil
}

// --- Experiment E4: deterministic brake assistant (Section IV-B) ---

// DeterministicResult summarizes a DEAR pipeline run.
type DeterministicResult struct {
	Frames       int
	Counters     apd.ErrorCounters
	LatencyMean  logical.Duration
	LatencyMax   logical.Duration
	BrakeOns     int
	BehaviorHash uint64
	TagTraceHash uint64
}

// RunDeterministic executes the DEAR brake assistant once.
func RunDeterministic(seed uint64, frames int) (*DeterministicResult, error) {
	d, err := apd.NewDeterministic(seed, apd.DefaultDeterministicConfig(frames))
	if err != nil {
		return nil, err
	}
	c := d.Run()
	res := &DeterministicResult{Frames: frames, Counters: *c}
	lat := metrics.NewMomentsOnly()
	for _, l := range d.Latencies {
		lat.Add(float64(l))
	}
	if lat.N() > 0 {
		res.LatencyMean = logical.Duration(lat.Mean())
		res.LatencyMax = logical.Duration(lat.Max())
	}
	res.BehaviorHash = hashBrakes(d.BrakeSeq)
	var th uint64 = fnvOffset
	for _, tag := range d.TagTrace {
		th = fnvMix(th, uint64(tag.Time))
		th = fnvMix(th, uint64(tag.Microstep))
	}
	res.TagTraceHash = th
	for _, cmd := range d.BrakeSeq {
		if cmd.Brake {
			res.BrakeOns++
		}
	}
	return res, nil
}

const fnvOffset uint64 = 14695981039346656037

func fnvMix(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	return h
}

func hashBrakes(seq []apd.BrakeCmd) uint64 {
	h := fnvOffset
	for _, cmd := range seq {
		h = fnvMix(h, uint64(cmd.Seq))
		if cmd.Brake {
			h = fnvMix(h, 1)
		} else {
			h = fnvMix(h, 0)
		}
	}
	return h
}

// RunDeterminismCheck runs the DEAR pipeline under several physical
// seeds and verifies that the behaviour (brake decision sequence) is
// identical and error-free in every run. It returns the per-seed results.
func RunDeterminismCheck(seedBase uint64, seeds, frames int) ([]*DeterministicResult, error) {
	var out []*DeterministicResult
	for i := 0; i < seeds; i++ {
		r, err := RunDeterministic(seedBase+uint64(i), frames)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	for _, r := range out[1:] {
		if r.BehaviorHash != out[0].BehaviorHash {
			return out, fmt.Errorf("exp: behaviour diverged across physical seeds")
		}
	}
	return out, nil
}

// --- Experiment E5: deadline scale / latency trade-off ---

// TradeoffPoint is one sweep point of the latency/error trade-off.
type TradeoffPoint struct {
	Scale          float64
	Violations     uint64
	ViolationRate  float64 // per frame sent
	FramesDropped  uint64
	LatencyMean    logical.Duration
	LatencyMax     logical.Duration
	FramesComplete uint64
}

// TradeoffResult is the full sweep.
type TradeoffResult struct {
	Frames int
	Points []TradeoffPoint
}

// Table renders the sweep.
func (r *TradeoffResult) Table() *metrics.Table {
	t := metrics.NewTable("deadline scale", "violations", "rate %", "mean latency", "max latency", "completed")
	for _, p := range r.Points {
		t.Row(fmt.Sprintf("%.2f", p.Scale), p.Violations,
			100*p.ViolationRate, p.LatencyMean.String(), p.LatencyMax.String(), p.FramesComplete)
	}
	return t
}

// RunTradeoff sweeps the deadline scale factor: smaller deadlines lower
// end-to-end latency but make sporadic (observable!) errors acceptable —
// the trade-off the paper describes at the end of Section IV-B.
func RunTradeoff(seed uint64, frames int, scales []float64) (*TradeoffResult, error) {
	res := &TradeoffResult{Frames: frames}
	for _, s := range scales {
		cfg := apd.DefaultDeterministicConfig(frames)
		cfg.DeadlineScale = s
		d, err := apd.NewDeterministic(seed, cfg)
		if err != nil {
			return nil, err
		}
		c := d.Run()
		p := TradeoffPoint{
			Scale:          s,
			Violations:     c.DeadlineViolations,
			FramesComplete: c.FramesProcessed,
			FramesDropped:  uint64(frames) - c.FramesProcessed,
		}
		if c.FramesSent > 0 {
			p.ViolationRate = float64(c.DeadlineViolations) / float64(c.FramesSent)
		}
		lat := metrics.NewMomentsOnly()
		for _, l := range d.Latencies {
			lat.Add(float64(l))
		}
		if lat.N() > 0 {
			p.LatencyMean = logical.Duration(lat.Mean())
			p.LatencyMax = logical.Duration(lat.Max())
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// --- Experiment E6: tag trailer overhead (ablation) ---

// TagOverheadResult compares wire sizes and codec cost with and without
// the DEAR tag trailer.
type TagOverheadResult struct {
	PlainBytes  int
	TaggedBytes int
	// OverheadFraction = extra bytes / plain bytes for a typical frame
	// notification.
	OverheadFraction float64
}

// MeasureTagOverhead computes the wire-size overhead of the tag trailer
// for a typical brake-assistant frame message.
func MeasureTagOverhead() *TagOverheadResult {
	frame := (&apd.Scene{}).Generate(0)
	payload := apd.MarshalFrame(frame)
	plain := &someip.Message{Service: 1, Method: someip.EventID(1), Type: someip.TypeNotification, Payload: payload}
	tag := logical.Tag{Time: 123, Microstep: 1}
	tagged := &someip.Message{Service: 1, Method: someip.EventID(1), Type: someip.TypeNotification, Payload: payload, Tag: &tag}
	r := &TagOverheadResult{
		PlainBytes:  plain.WireSize(),
		TaggedBytes: tagged.WireSize(),
	}
	r.OverheadFraction = float64(r.TaggedBytes-r.PlainBytes) / float64(r.PlainBytes)
	return r
}
