package exp

import (
	"fmt"
	"time"

	"repro/internal/ara"
	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/metrics"
	"repro/internal/someip"
)

// --- Experiment E9: tagged round trips over real loopback UDP ---
//
// E9 is the substrate-independence check: the same ara::com runtime,
// executor, futures and tagged binding that every other experiment
// drives deterministically over the simulated network here run over
// real loopback UDP sockets, with each runtime's kernel advanced by a
// physical-clock driver. Latencies are wall-clock measurements, so —
// unlike E1–E8 — the numbers are machine-dependent and not reproducible
// bit-for-bit; what the experiment demonstrates is that the tag trailer
// survives a real network stack in both directions.

// LoopbackResult summarizes a loopback round-trip run.
type LoopbackResult struct {
	// Requested and completed round trips.
	Requested, Completed int
	// TagsEchoed counts responses whose trailer carried the expected
	// delayed request tag.
	TagsEchoed int
	// RTTMin/RTTMean/RTTMax are wall-clock round-trip times.
	RTTMin, RTTMean, RTTMax time.Duration
}

// Table renders the result for the experiment drivers.
func (r *LoopbackResult) Table() *metrics.Table {
	t := metrics.NewTable("metric", "value")
	t.Row("round trips", fmt.Sprintf("%d/%d", r.Completed, r.Requested))
	t.Row("tagged responses", r.TagsEchoed)
	t.Row("rtt min", r.RTTMin.String())
	t.Row("rtt mean", r.RTTMean.String())
	t.Row("rtt max", r.RTTMax.String())
	return t
}

// loopbackIface is the echo service used by E9 and E13.
var loopbackIface = &ara.ServiceInterface{
	Name:  "LoopbackEcho",
	ID:    0x2102,
	Major: 1,
	Methods: []ara.MethodSpec{
		{ID: 1, Name: "echo"},
	},
}

// loopbackDeadline is the echo service's response-tag delay (the
// server transactor deadline Ds in paper terms).
const loopbackDeadline = 500 * logical.Microsecond

// registerLoopbackEcho installs the echo service on a runtime: the
// response mirrors the request payload and delays the request tag by
// the service deadline — a pure function of the tagged input, which
// is what makes a recorded run replayable (E13).
func registerLoopbackEcho(rt *ara.Runtime) (*ara.Skeleton, error) {
	sk, err := rt.NewSkeleton(loopbackIface, 1)
	if err != nil {
		return nil, err
	}
	err = sk.HandleAsync("echo", func(c *ara.Ctx, args []byte) *ara.Future {
		r := ara.Result{Payload: args}
		if tag := c.Message().Tag; tag != nil {
			delayed := tag.Delay(loopbackDeadline)
			r.Tag = &delayed
		}
		return ara.ResolvedFuture(c.Runtime().Kernel(), r)
	})
	if err != nil {
		return nil, err
	}
	return sk, nil
}

// loopbackHook stamps each outgoing request with the tag staged by the
// client loop (a miniature timestamp bypass).
type loopbackHook struct {
	next *logical.Tag
}

func (h *loopbackHook) Outgoing(m *someip.Message) {
	if m.Type == someip.TypeRequest && m.Tag == nil && h.next != nil {
		t := *h.next
		m.Tag = &t
	}
}

func (h *loopbackHook) Incoming(src someip.Addr, m *someip.Message) {}

// RunLoopback performs n sequential tagged method round trips between
// two ara runtimes bound to real loopback UDP sockets and reports
// wall-clock latency statistics. timeout bounds each individual call.
func RunLoopback(n int, timeout time.Duration) (*LoopbackResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("exp: loopback needs n > 0")
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	drvS := des.NewRealTime(des.NewKernel(1))
	drvC := des.NewRealTime(des.NewKernel(2))

	server, err := ara.NewUDPRuntime(drvS, "127.0.0.1:0", ara.Config{Name: "server", Tagged: true})
	if err != nil {
		return nil, err
	}
	defer server.Close()
	client, err := ara.NewUDPRuntime(drvC, "127.0.0.1:0", ara.Config{Name: "client", Tagged: true})
	if err != nil {
		return nil, err
	}
	defer client.Close()

	sk, err := registerLoopbackEcho(server)
	if err != nil {
		return nil, err
	}
	sk.Offer()

	hook := &loopbackHook{}
	client.SetBindingHook(hook)

	res := &LoopbackResult{Requested: n}
	done := make(chan error, 1)
	client.Spawn("driver", func(c *ara.Ctx) {
		px := client.StaticProxy(loopbackIface, 1, server.Addr())
		var total time.Duration
		for i := 0; i < n; i++ {
			tag := logical.Tag{Time: logical.Time(i+1) * logical.Time(logical.Millisecond)}
			hook.next = &tag
			begin := time.Now()
			fut := px.Call("echo", []byte{byte(i)})
			if _, err := fut.GetTimeout(c.Process(), logical.Duration(timeout)); err != nil {
				done <- fmt.Errorf("exp: loopback call %d: %w", i, err)
				return
			}
			rtt := time.Since(begin)
			res.Completed++
			total += rtt
			if res.RTTMin == 0 || rtt < res.RTTMin {
				res.RTTMin = rtt
			}
			if rtt > res.RTTMax {
				res.RTTMax = rtt
			}
			if r, ok := fut.Result(); ok && r.Tag != nil && *r.Tag == tag.Delay(loopbackDeadline) {
				res.TagsEchoed++
			}
		}
		res.RTTMean = total / time.Duration(n)
		done <- nil
	})

	go drvS.Run()
	go drvC.Run()
	defer func() {
		drvS.Stop()
		drvC.Stop()
		<-drvS.Done()
		<-drvC.Done()
		server.Kernel().Shutdown()
		client.Kernel().Shutdown()
	}()

	select {
	case err := <-done:
		if err != nil {
			return nil, err
		}
	case <-time.After(time.Duration(n)*timeout + 5*time.Second):
		return nil, fmt.Errorf("exp: loopback run stalled")
	}
	return res, nil
}
