package exp

import (
	"fmt"
	"time"

	"repro/internal/ara"
	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/someip"
	"repro/internal/trace"
)

// --- Experiment E13: record/replay across substrates ---
//
// The paper's central claim is that a DEAR application is a pure
// function of its tagged inputs. E13 checks the strongest consequence
// of that claim the repo can exercise: a *physical* run — the E9
// loopback workload over real UDP sockets, wall-clock scheduled — is
// recorded at the someip.Endpoint seam (tagged inputs in full,
// outputs as digests), and the recorded inputs are then re-injected
// into a *fresh simulated kernel* via a trace.Replayer endpoint. If
// the claim holds, the replayed run reproduces the recorded outputs
// record-for-record: same order, same bytes, same tags — only the
// timestamps shift from wall-derived to simulated, so the comparison
// strips times (trace.Trace.WithoutTimes).

// zeroDispatch eliminates executor dispatch jitter: the recorded
// run's strict input/output alternation must be reproduced by the
// replay kernel regardless of what the jitter stream would draw.
func zeroDispatch(*des.Rand) logical.Duration { return 0 }

// replayExec is the executor configuration shared by the recorded and
// the replayed server — jitter-free and serialized, so handler
// dispatch order equals arrival order in both runs.
var replayExec = ara.ExecConfig{Workers: 1, Serialized: true, DispatchJitter: zeroDispatch}

// ReplayResult is the outcome of one E13 record/replay round trip.
type ReplayResult struct {
	// Live carries the wall-clock stats of the recorded (physical)
	// run.
	Live *LoopbackResult
	// Recorded is the live run's trace: inputs stored in full,
	// outputs as digests.
	Recorded *trace.Trace
	// Replayed is the simulated re-execution's trace.
	Replayed *trace.Trace
	// Divergence is the first recorded/replayed disagreement after
	// stripping times, or nil when the replay reproduced the run.
	Divergence *trace.Divergence
}

// Match reports whether the replayed run reproduced the recorded one.
func (r *ReplayResult) Match() bool { return r.Divergence == nil }

// Table renders the result for the experiment drivers.
func (r *ReplayResult) Table() *metrics.Table {
	t := metrics.NewTable("metric", "value")
	t.Row("round trips", fmt.Sprintf("%d/%d", r.Live.Completed, r.Live.Requested))
	t.Row("recorded events", r.Recorded.Len())
	t.Row("recorded inputs", r.Recorded.Filter(trace.KindRecv).Len())
	t.Row("recorded outputs", r.Recorded.Filter(trace.KindSend).Len())
	t.Row("replayed events", r.Replayed.Len())
	t.Row("replay matches", r.Match())
	return t
}

// RecordLoopback performs n tagged round trips between two UDP-bound
// ara runtimes (the E9 workload) with the server's endpoint wrapped
// in a trace recorder, and returns the server-side trace alongside
// the wall-clock stats. The trace holds every inbound request in full
// (marshaled bytes, tag trailer included) and every outbound response
// as a digest — exactly what ReplaySimulated needs.
func RecordLoopback(n int, timeout time.Duration) (*trace.Trace, *LoopbackResult, error) {
	return recordLoopback(n, timeout, nil)
}

// MonitorLoopback is RecordLoopback with an online monitor engine
// tapped onto the live record stream (Recorder.SetTap): the engine
// observes every endpoint event of the physical UDP run as it is
// appended — the same engine, unchanged, that watches simulated
// kernels — and its finished verdicts ride back with the trace. The
// service-turnaround monitor is the live-mode twin of
// responded-within: every captured request (KindRecv) must be answered
// by a response (KindSend) within the deadline, with deadlines in
// wall-derived logical time.
func MonitorLoopback(n int, timeout time.Duration, turnaround logical.Duration) ([]monitor.Verdict, *trace.Trace, *LoopbackResult, error) {
	eng := monitor.NewEngine(
		monitor.NoSilentCorruption(),
		monitor.MatchedWithin(
			fmt.Sprintf("served-within(%dns)", int64(turnaround)),
			trace.KindRecv, []string{trace.KindSend}, turnaround),
	)
	rec, live, err := recordLoopback(n, timeout, eng)
	if err != nil {
		return nil, nil, nil, err
	}
	eng.Finish()
	return eng.Verdicts(), rec, live, nil
}

// recordLoopback is the shared body of RecordLoopback and
// MonitorLoopback: tap, when non-nil, observes every appended record
// of the live run in append order.
func recordLoopback(n int, timeout time.Duration, tap trace.Tap) (*trace.Trace, *LoopbackResult, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("exp: replay recording needs n > 0")
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	drvS := des.NewRealTime(des.NewKernel(1))
	drvC := des.NewRealTime(des.NewKernel(2))

	rec := trace.NewRecorder(4*n + 64)
	rec.SetTap(tap)
	server, err := ara.NewUDPRuntime(drvS, "127.0.0.1:0", ara.Config{
		Name:   "server",
		Tagged: true,
		Exec:   replayExec,
		WrapEndpoint: func(ep someip.Endpoint) someip.Endpoint {
			return trace.NewRecordingEndpoint(ep, rec, "server", drvS.Elapsed)
		},
	})
	if err != nil {
		return nil, nil, err
	}
	defer server.Close()
	client, err := ara.NewUDPRuntime(drvC, "127.0.0.1:0", ara.Config{Name: "client", Tagged: true})
	if err != nil {
		return nil, nil, err
	}
	defer client.Close()

	sk, err := registerLoopbackEcho(server)
	if err != nil {
		return nil, nil, err
	}
	sk.Offer()

	hook := &loopbackHook{}
	client.SetBindingHook(hook)

	res := &LoopbackResult{Requested: n}
	done := make(chan error, 1)
	client.Spawn("driver", func(c *ara.Ctx) {
		px := client.StaticProxy(loopbackIface, 1, server.Addr())
		var total time.Duration
		for i := 0; i < n; i++ {
			tag := logical.Tag{Time: logical.Time(i+1) * logical.Time(logical.Millisecond)}
			hook.next = &tag
			begin := time.Now()
			fut := px.Call("echo", []byte{byte(i)})
			if _, err := fut.GetTimeout(c.Process(), logical.Duration(timeout)); err != nil {
				done <- fmt.Errorf("exp: replay recording call %d: %w", i, err)
				return
			}
			rtt := time.Since(begin)
			res.Completed++
			total += rtt
			if res.RTTMin == 0 || rtt < res.RTTMin {
				res.RTTMin = rtt
			}
			if rtt > res.RTTMax {
				res.RTTMax = rtt
			}
			if r, ok := fut.Result(); ok && r.Tag != nil && *r.Tag == tag.Delay(loopbackDeadline) {
				res.TagsEchoed++
			}
		}
		res.RTTMean = total / time.Duration(n)
		done <- nil
	})

	go drvS.Run()
	go drvC.Run()
	teardown := func() {
		drvS.Stop()
		drvC.Stop()
		<-drvS.Done()
		<-drvC.Done()
		server.Kernel().Shutdown()
		client.Kernel().Shutdown()
	}

	select {
	case err := <-done:
		if err != nil {
			teardown()
			return nil, nil, err
		}
	case <-time.After(time.Duration(n)*timeout + 5*time.Second):
		teardown()
		return nil, nil, fmt.Errorf("exp: replay recording stalled")
	}
	// Snapshot after the drivers have stopped: every response send is
	// recorded before the client's future resolves, so the trace is
	// complete here.
	teardown()
	return rec.Trace(), res, nil
}

// ReplaySimulated re-executes a recorded loopback run inside a fresh
// deterministic kernel: a trace.Replayer injects the stored tagged
// inputs at their recorded times, the same echo service processes
// them, and every output lands in the returned trace.
func ReplaySimulated(recorded *trace.Trace) (*trace.Trace, error) {
	k := des.NewKernel(1)
	out := trace.NewRecorder(2*recorded.Len() + 64)
	rp := trace.NewReplayer(k, recorded, out)
	if rp.Inputs() == 0 {
		return nil, fmt.Errorf("exp: trace holds no stored inputs to replay")
	}
	rt, err := ara.NewEndpointRuntime(k, rp, ara.Config{Name: "server", Tagged: true, Exec: replayExec})
	if err != nil {
		return nil, err
	}
	sk, err := registerLoopbackEcho(rt)
	if err != nil {
		return nil, err
	}
	sk.Offer()
	if err := rp.Start(); err != nil {
		return nil, err
	}
	k.RunAll()
	k.Shutdown()
	return out.Trace(), nil
}

// RunReplay executes E13 once: record a live n-round-trip loopback
// run over real UDP, replay it in the simulator, and diff the two
// traces (times stripped — wall-derived timestamps become simulated
// ones; everything else must match record-for-record).
func RunReplay(n int, timeout time.Duration) (*ReplayResult, error) {
	recorded, live, err := RecordLoopback(n, timeout)
	if err != nil {
		return nil, err
	}
	replayed, err := ReplaySimulated(recorded)
	if err != nil {
		return nil, err
	}
	return &ReplayResult{
		Live:       live,
		Recorded:   recorded,
		Replayed:   replayed,
		Divergence: trace.FirstDivergence(recorded.WithoutTimes(), replayed.WithoutTimes()),
	}, nil
}
