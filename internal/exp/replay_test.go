package exp

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/trace"
)

// The E13 acceptance gate: a recorded loopback (real UDP) run replays
// in the simulator with matching outputs — the application is a pure
// function of its tagged inputs.
func TestReplayReproducesRecordedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("uses real UDP sockets")
	}
	res, err := RunReplay(25, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Live.Completed != 25 {
		t.Fatalf("live run completed %d/25 round trips", res.Live.Completed)
	}
	if got := res.Recorded.Filter(trace.KindRecv).Len(); got != 25 {
		t.Fatalf("recorded %d inputs, want 25", got)
	}
	if got := res.Recorded.Filter(trace.KindSend).Len(); got != 25 {
		t.Fatalf("recorded %d outputs, want 25", got)
	}
	if !res.Match() {
		t.Fatalf("replay diverged: %s", res.Divergence)
	}
	if res.Replayed.Len() != res.Recorded.Len() {
		t.Fatalf("replayed %d events, recorded %d", res.Replayed.Len(), res.Recorded.Len())
	}
}

// A trace must survive the file round trip and still replay: the
// -trace / -replay CLI path in miniature.
func TestReplayFromTraceFile(t *testing.T) {
	if testing.Short() {
		t.Skip("uses real UDP sockets")
	}
	rec, live, err := RecordLoopback(10, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if live.Completed != 10 {
		t.Fatalf("live run completed %d/10", live.Completed)
	}
	path := filepath.Join(t.TempDir(), "run.trace")
	if err := trace.WriteFile(path, rec); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := trace.FirstDivergence(rec, loaded); d != nil {
		t.Fatalf("trace changed across the file round trip: %s", d)
	}
	replayed, err := ReplaySimulated(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if d := trace.FirstDivergence(rec.WithoutTimes(), replayed.WithoutTimes()); d != nil {
		t.Fatalf("replay of the loaded trace diverged: %s", d)
	}
}

// A corrupted input must change the replayed outputs — the gate is
// not vacuous: the replay actually recomputes from the inputs.
func TestReplayDetectsPerturbedInputs(t *testing.T) {
	if testing.Short() {
		t.Skip("uses real UDP sockets")
	}
	rec, _, err := RecordLoopback(5, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the first stored input (the last byte
	// of a tagged request's payload region sits before the trailer).
	perturbed := &trace.Trace{Records: append([]trace.Record(nil), rec.Records...)}
	found := false
	for i := range perturbed.Records {
		if perturbed.Records[i].Data != nil {
			data := append([]byte(nil), perturbed.Records[i].Data...)
			data[16] ^= 0xff // first payload byte, after the 16-byte header
			perturbed.Records[i].Data = data
			perturbed.Records[i].Digest = trace.Digest(data)
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no stored input to perturb")
	}
	replayed, err := ReplaySimulated(perturbed)
	if err != nil {
		t.Fatal(err)
	}
	if d := trace.FirstDivergence(rec.WithoutTimes(), replayed.WithoutTimes()); d == nil {
		t.Fatal("perturbed inputs replayed to identical outputs — the replay is not recomputing")
	}
}

// BenchmarkReplay measures the full E13 round trip (live UDP record +
// simulated replay); CI runs one iteration as a smoke test.
func BenchmarkReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunReplay(10, 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Match() {
			b.Fatalf("replay diverged: %s", res.Divergence)
		}
	}
}
