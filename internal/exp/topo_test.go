package exp

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// quickTopoConfig shrinks E12 for test time while keeping every shape
// and the federated partition counts of the acceptance gate.
func quickTopoConfig() TopologySweepConfig {
	return TopologySweepConfig{
		Platforms:       6,
		Rounds:          4,
		NoiseEvents:     40,
		PartitionCounts: []int{1, 2, 4},
	}
}

// The E12 acceptance gate, part 1: for every topology shape in
// {star, ring, tree, random-regular} × partition counts {1, 2, 4},
// federated and single-kernel runs produce byte-identical canonical
// reports across ≥3 seeds (and the reports differ across seeds, so
// the gate is not vacuous).
func TestTopologySweepCrossModeDeterminism(t *testing.T) {
	reports, err := RunTopologyDeterminismCheck(31, 3, quickTopoConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(scenario.Shapes) {
		t.Fatalf("got reports for %d shapes, want %d", len(reports), len(scenario.Shapes))
	}
	for shape, rs := range reports {
		if len(rs) != 3 {
			t.Fatalf("%s: %d per-seed reports", shape, len(rs))
		}
	}
	// Different shapes must compile to behaviourally different worlds —
	// otherwise the sweep collapses to E10.
	seen := map[string]scenario.Shape{}
	for shape, rs := range reports {
		if prev, dup := seen[rs[0]]; dup {
			t.Fatalf("shapes %s and %s produced identical reports", prev, shape)
		}
		seen[rs[0]] = shape
	}
}

// The E12 acceptance gate, part 2: the sweep must not depend on the Go
// scheduler — identical reports under different GOMAXPROCS values.
func TestTopologySweepDeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := quickTopoConfig()
	cfg.PartitionCounts = []int{4}
	ref, err := RunTopologySweep(5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 8} {
		runtime.GOMAXPROCS(procs)
		got, err := RunTopologySweep(5, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, shape := range scenario.Shapes {
			if got.Reports[shape] != ref.Reports[shape] {
				t.Fatalf("GOMAXPROCS=%d: %s report diverged", procs, shape)
			}
		}
	}
}

// The sweep's own in-run gate and workload sanity: every cell carries
// traffic, reports identify their shapes, and the table renders.
func TestTopologySweepShape(t *testing.T) {
	res, err := RunTopologySweep(1, quickTopoConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(scenario.Shapes) * 3; len(res.Entries) != want {
		t.Fatalf("entries = %d, want %d", len(res.Entries), want)
	}
	for _, e := range res.Entries {
		if e.Calls == 0 || e.Served == 0 {
			t.Fatalf("idle cell: %+v", e)
		}
		if e.Errors != 0 {
			t.Fatalf("fault-free sweep recorded errors: %+v", e)
		}
		if e.Partitions > 1 && e.CoordRounds == 0 {
			t.Fatalf("federated cell reported zero coordination rounds: %+v", e)
		}
	}
	for _, shape := range scenario.Shapes {
		rep := res.Reports[shape]
		if !strings.Contains(rep, "topology="+string(shape)) {
			t.Fatalf("%s report does not name its shape:\n%s", shape, rep)
		}
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}

// A JSON-shaped spec run through the generic scenario runner must hit
// the same byte-equality property as the presets (this is the path
// cmd/experiments -scenario exercises).
func TestRunScenarioFederatedMatchesSingle(t *testing.T) {
	spec := scenario.TopologyPreset(scenario.Tree, 7)
	spec.Seed = 13
	spec.Rounds = 4
	spec.NoiseEvents = 30
	spec.Partitions = 1
	single, err := RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Partitions = 3
	fed, err := RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if single.Report() != fed.Report() {
		t.Fatalf("reports diverged:\n%s\nvs\n%s", single.Report(), fed.Report())
	}
	if fed.Partitions != 3 {
		t.Fatalf("partitions = %d", fed.Partitions)
	}
}
