package exp

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/ara"
	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/someip"
)

// --- Experiment E10: federated N-platform client/server mesh ---
//
// The paper federates DEAR runtimes across two physical ECUs; industry
// deployments of the Adaptive Platform run far larger topologies. E10
// scales the simulated substrate to N platforms and executes the same
// scenario in two modes: on one sequential kernel (the classic
// substrate) and sharded across a des.Federation with one kernel per
// partition under conservative time synchronization. The determinism
// gate requires the two modes to produce byte-identical reports for
// every seed and partition count — the defining property of the repo
// ("same seed, same bytes") survives sharding.

// MeshConfig parameterizes the E10 scenario. The generator derives a
// full N-platform topology from it: every platform runs one ara runtime
// offering a "compute" service and one client that round-robins blocking
// calls over its K ring neighbors, plus a local background load
// generator (dense intra-platform traffic that gives each partition
// real work between cross-partition barriers).
type MeshConfig struct {
	// Platforms is N, the number of simulated ECUs.
	Platforms int
	// Neighbors is K, the number of ring neighbors each client calls
	// (capped at N-1).
	Neighbors int
	// Rounds is the number of call rounds per client; each round issues
	// one blocking call per neighbor.
	Rounds int
	// Gap is the base think time between rounds (each client adds a
	// deterministic per-client skew so request arrivals never collide).
	Gap logical.Duration
	// WorkBase/WorkSpread model the server's execution time: base plus a
	// payload-hash-dependent spread, so timing is data-dependent but
	// identical in both execution modes.
	WorkBase   logical.Duration
	WorkSpread logical.Duration
	// NoiseEvents/NoiseInterval drive the per-platform local load
	// generator (loopback datagrams on the platform's own host).
	NoiseEvents   int
	NoiseInterval logical.Duration
	// LinkLatency is the fixed platform-to-platform latency. It must be
	// RNG-free (fixed): its minimum is the federation lookahead.
	LinkLatency logical.Duration
	// SwitchDelay is the store-and-forward delay added to inter-platform
	// packets.
	SwitchDelay logical.Duration

	// Faults (optional, E11) installs a deterministic fault schedule:
	// counter-based per-link loss, partitions and jitter bursts. Because
	// fault-plan jitter only adds delay, the federation lookahead remains
	// LinkLatency. Leave nil for the fault-free E10 scenario.
	Faults *simnet.FaultPlan
	// CallTimeout (optional) bounds every client call; expiry is counted
	// as an observable error in the report. Required when Faults can drop
	// request or response packets — without it a lost call would park its
	// client forever. Each client adds a small deterministic skew so that
	// timeout events never tie across platforms.
	CallTimeout logical.Duration
	// Crash (optional, E11) schedules a platform crash and restart.
	Crash *CrashPlan
}

// CrashPlan schedules a host failure inside a mesh run: the platform
// crashes at At (endpoints close, in-flight packets to it drop, its
// client exits when it observes the outage), and — if RestartAt > At —
// comes back with a rebuilt runtime whose skeleton re-offers, after
// which a reborn client issues RebornRounds more call rounds. All times
// are simulated, so the schedule is identical in every execution mode.
type CrashPlan struct {
	// Platform indexes the platform to crash.
	Platform int
	// At is the crash instant.
	At logical.Time
	// RestartAt is the restart instant; zero (or ≤ At) means the
	// platform stays down.
	RestartAt logical.Time
	// RebornRounds is the number of call rounds the restarted platform's
	// client runs.
	RebornRounds int
}

// DefaultMeshConfig returns the E10 scenario for n platforms.
func DefaultMeshConfig(n int) MeshConfig {
	k := 3
	if k > n-1 {
		k = n - 1
	}
	return MeshConfig{
		Platforms:     n,
		Neighbors:     k,
		Rounds:        20,
		Gap:           800 * logical.Microsecond,
		WorkBase:      20 * logical.Microsecond,
		WorkSpread:    120 * logical.Microsecond,
		NoiseEvents:   400,
		NoiseInterval: 50 * logical.Microsecond,
		LinkLatency:   350 * logical.Microsecond,
		SwitchDelay:   20 * logical.Microsecond,
	}
}

func (c *MeshConfig) normalize() error {
	if c.Platforms < 2 {
		return fmt.Errorf("exp: mesh needs at least 2 platforms")
	}
	if c.Neighbors < 1 {
		c.Neighbors = 1
	}
	if c.Neighbors > c.Platforms-1 {
		c.Neighbors = c.Platforms - 1
	}
	if c.LinkLatency <= 0 {
		return fmt.Errorf("exp: mesh needs positive link latency (it is the federation lookahead)")
	}
	if c.CallTimeout <= 0 {
		// Without a timeout a lost request or response would park its
		// client process forever and the run would end with silently
		// missing calls — enforce the documented precondition.
		if c.Crash != nil {
			return fmt.Errorf("exp: a crash plan requires CallTimeout > 0 (calls into the outage must fail observably)")
		}
		if f := c.Faults; f != nil && (f.DropRate > 0 || len(f.Loss) > 0 || len(f.Partitions) > 0) {
			return fmt.Errorf("exp: a fault plan that can drop packets requires CallTimeout > 0")
		}
	}
	return nil
}

// MeshPlatformRow is the per-platform slice of the E10/E11 report.
type MeshPlatformRow struct {
	Calls  int
	Served int
	// Errors counts observable call failures (timeouts, send errors);
	// zero in the fault-free E10 scenario. Every error is also folded
	// into RespHash, so two runs agree on *which* calls failed, not just
	// how many.
	Errors    int
	RespHash  uint64
	LatSumNs  int64
	LatMaxNs  int64
	NoiseHash uint64
}

// LatMeanNs returns the integer mean round-trip latency (exact — no
// floating point, so reports are byte-stable).
func (r *MeshPlatformRow) LatMeanNs() int64 {
	if r.Calls == 0 {
		return 0
	}
	return r.LatSumNs / int64(r.Calls)
}

// MeshResult is the outcome of one E10 run.
type MeshResult struct {
	Seed       uint64
	Config     MeshConfig
	Partitions int
	Rows       []MeshPlatformRow

	// Mode-dependent diagnostics (NOT part of the canonical report):
	// coordination rounds are zero on a single kernel, and delivered
	// counts include SD multicast whose fan-out is per-partition.
	CoordRounds uint64
	EventsFired uint64
	Delivered   uint64
	Dropped     uint64
}

// Report renders the canonical, mode-independent report: two runs are
// behaviourally identical iff their Reports are byte-identical. It
// deliberately excludes partition count and transport-internal counters.
func (r *MeshResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E10 mesh seed=%d platforms=%d neighbors=%d rounds=%d\n",
		r.Seed, r.Config.Platforms, r.Config.Neighbors, r.Config.Rounds)
	totalCalls, totalServed, totalErrors := 0, 0, 0
	for i, row := range r.Rows {
		fmt.Fprintf(&b, "plat%02d calls=%d served=%d errs=%d resp=%016x latMeanNs=%d latMaxNs=%d noise=%016x\n",
			i, row.Calls, row.Served, row.Errors, row.RespHash, row.LatMeanNs(), row.LatMaxNs, row.NoiseHash)
		totalCalls += row.Calls
		totalServed += row.Served
		totalErrors += row.Errors
	}
	fmt.Fprintf(&b, "total calls=%d served=%d errs=%d\n", totalCalls, totalServed, totalErrors)
	return b.String()
}

// Table renders the per-platform breakdown for the experiment report.
func (r *MeshResult) Table() *metrics.Table {
	t := metrics.NewTable("platform", "calls", "served", "lat mean", "lat max", "resp hash")
	for i, row := range r.Rows {
		t.Row(i, row.Calls, row.Served,
			logical.Duration(row.LatMeanNs()).String(),
			logical.Duration(row.LatMaxNs).String(),
			fmt.Sprintf("%016x", row.RespHash))
	}
	return t
}

// meshSubstrate abstracts over the two execution modes: one kernel with
// one Network, or a Federation with a partitioned Cluster.
type meshSubstrate struct {
	fed     *des.Federation
	cluster *simnet.Cluster
	single  *des.Kernel
	net     *simnet.Network
	hosts   []*simnet.Host
}

func newMeshSubstrate(seed uint64, cfg MeshConfig, partitions int) (*meshSubstrate, error) {
	netCfg := simnet.Config{
		DefaultLatency: simnet.FixedLatency(cfg.LinkLatency),
		SwitchDelay:    cfg.SwitchDelay,
		Faults:         cfg.Faults,
	}
	s := &meshSubstrate{}
	if partitions <= 1 {
		s.single = des.NewKernel(seed)
		s.net = simnet.NewNetwork(s.single, netCfg)
		for i := 0; i < cfg.Platforms; i++ {
			s.hosts = append(s.hosts, s.net.AddHost(meshHostName(i), nil))
		}
		return s, nil
	}
	if partitions > cfg.Platforms {
		partitions = cfg.Platforms
	}
	s.fed = des.NewFederation(seed, partitions)
	cluster, err := simnet.NewCluster(s.fed, netCfg)
	if err != nil {
		return nil, err
	}
	s.cluster = cluster
	for i := 0; i < cfg.Platforms; i++ {
		s.hosts = append(s.hosts, cluster.AddHost(i%partitions, meshHostName(i), nil))
	}
	return s, nil
}

func meshHostName(i int) string { return fmt.Sprintf("plat%02d", i) }

// MeshHostID returns the simnet host ID platform i receives during mesh
// construction, in every execution mode: hosts are added in platform
// order and both Network and Cluster allocate IDs sequentially from 1.
// Fault plans that target specific mesh links are built from it.
func MeshHostID(i int) uint16 { return uint16(i) + 1 }

func (s *meshSubstrate) run() {
	if s.fed != nil {
		s.fed.RunAll()
		s.fed.Shutdown()
		return
	}
	s.single.RunAll()
	s.single.Shutdown()
}

func (s *meshSubstrate) stats(r *MeshResult) {
	if s.fed != nil {
		r.Partitions = s.fed.Partitions()
		r.CoordRounds = s.fed.Rounds()
		r.EventsFired = s.fed.EventsFired()
		r.Delivered = s.cluster.Delivered()
		r.Dropped = s.cluster.Dropped()
		return
	}
	r.Partitions = 1
	r.EventsFired = s.single.EventsFired()
	r.Delivered = s.net.Delivered()
	r.Dropped = s.net.Dropped()
}

const (
	meshServiceBase = someip.ServiceID(0x2100)
	meshPort        = 40000
	meshNoisePort   = 41000
)

func meshIface(i int) *ara.ServiceInterface {
	return &ara.ServiceInterface{
		Name:  fmt.Sprintf("Mesh%02d", i),
		ID:    meshServiceBase + someip.ServiceID(i),
		Major: 1,
		Methods: []ara.MethodSpec{
			{ID: 1, Name: "compute"},
		},
	}
}

// buildMeshServer creates the platform's runtime, compute skeleton and
// local-noise sink. It is used for initial construction and again by the
// crash plan's restart path (with a distinct runtime name, so RNG stream
// labels never collide between the two incarnations). Served counts and
// the noise hash continue across a restart: the rows carry the
// platform's whole history.
func buildMeshServer(cfg MeshConfig, host *simnet.Host, rows []MeshPlatformRow, i int, name string) (*ara.Runtime, error) {
	zeroJitter := func(*des.Rand) logical.Duration { return 0 }
	rt, err := ara.NewRuntime(host, ara.Config{
		Name: name,
		Port: meshPort,
		Exec: ara.ExecConfig{Workers: 2, Serialized: true, DispatchJitter: zeroJitter},
	})
	if err != nil {
		return nil, err
	}
	sk, err := rt.NewSkeleton(meshIface(i), 1)
	if err != nil {
		return nil, err
	}
	if err := sk.Handle("compute", func(c *ara.Ctx, args []byte) ([]byte, error) {
		rows[i].Served++
		h := fnvOffset
		for _, by := range args {
			h = fnvMix(h, uint64(by))
		}
		h = fnvMix(h, uint64(i))
		h = fnvMix(h, uint64(rows[i].Served))
		if cfg.WorkSpread > 0 {
			c.Exec(cfg.WorkBase + logical.Duration(h%uint64(cfg.WorkSpread)))
		} else if cfg.WorkBase > 0 {
			c.Exec(cfg.WorkBase)
		}
		var out [8]byte
		binary.BigEndian.PutUint64(out[:], h)
		return out[:], nil
	}); err != nil {
		return nil, err
	}
	k := rt.Kernel()
	if k.Now() == 0 {
		k.At(0, func() { sk.Offer() })
	} else {
		sk.Offer()
	}

	// Local noise sink: dense intra-platform load, hashed into the
	// report so both modes must schedule it identically.
	sink := host.MustBind(meshNoisePort)
	if rows[i].NoiseHash == 0 {
		rows[i].NoiseHash = fnvOffset
	}
	sink.OnReceive(func(dg simnet.Datagram) {
		h := rows[i].NoiseHash
		h = fnvMix(h, uint64(dg.SentAt))
		h = fnvMix(h, uint64(k.Now()))
		h = fnvMix(h, uint64(binary.BigEndian.Uint32(dg.Payload)))
		rows[i].NoiseHash = h
	})
	return rt, nil
}

// spawnMeshClient starts platform i's client process: rounds call rounds
// over its ring neighbors, folding every response — and every observable
// failure — into the platform's row. If the platform crashes, the client
// exits at the first call it observes the outage on (a dead process
// issues nothing); the crash plan's reborn client picks up after the
// restart. marker distinguishes incarnations in the hash.
func spawnMeshClient(cfg MeshConfig, sub *meshSubstrate, rt *ara.Runtime, rows []MeshPlatformRow, i, rounds int, marker uint64) {
	n := cfg.Platforms
	host := sub.hosts[i]

	// Static peer configuration (the federation has no cross-partition
	// service discovery, mirroring the UDP deployment path).
	proxies := make([]*ara.Proxy, 0, cfg.Neighbors)
	targets := make([]int, 0, cfg.Neighbors)
	for d := 1; d <= cfg.Neighbors; d++ {
		j := (i + d) % n
		proxies = append(proxies, rt.StaticProxy(meshIface(j), 1,
			simnet.Addr{Host: sub.hosts[j].ID(), Port: meshPort}))
		targets = append(targets, j)
	}

	// Deterministic per-client skew keeps request arrivals at any
	// server from colliding at identical timestamps, where single- and
	// multi-kernel tie-breaking could legitimately differ. The timeout
	// gets the same treatment so expiry events never tie across
	// platforms either.
	phase := logical.Duration(i)*977*logical.Microsecond + logical.Duration(i)*13
	gap := cfg.Gap + logical.Duration(i)*1013
	timeout := cfg.CallTimeout
	if timeout > 0 {
		timeout += logical.Duration(i) * 131
	}

	if rows[i].RespHash == 0 {
		rows[i].RespHash = fnvOffset
	}
	rt.Spawn("client", func(c *ara.Ctx) {
		c.Exec(phase)
		var req [12]byte
		for round := 0; round < rounds; round++ {
			if host.Down() {
				// The platform died under us: record the exit and stop —
				// a crashed process issues no further calls.
				rows[i].RespHash = fnvMix(rows[i].RespHash, 0xc0a5)
				return
			}
			for t, px := range proxies {
				binary.BigEndian.PutUint16(req[0:], uint16(i))
				binary.BigEndian.PutUint16(req[2:], uint16(targets[t]))
				binary.BigEndian.PutUint32(req[4:], uint32(round))
				binary.BigEndian.PutUint32(req[8:], uint32(t))
				t0 := c.Now()
				fut := px.Call("compute", req[:])
				var resp []byte
				var err error
				if timeout > 0 {
					resp, err = fut.GetTimeout(c.Process(), timeout)
				} else {
					resp, err = fut.Get(c.Process())
				}
				if err != nil {
					// Observable, never silent: fold the failure — and
					// which call it was — into the report.
					rows[i].Errors++
					h := rows[i].RespHash
					h = fnvMix(h, 0xdead)
					h = fnvMix(h, marker)
					h = fnvMix(h, uint64(targets[t]))
					h = fnvMix(h, uint64(round))
					rows[i].RespHash = h
					continue
				}
				rtt := int64(c.Now() - t0)
				rows[i].Calls++
				h := rows[i].RespHash
				h = fnvMix(h, marker)
				h = fnvMix(h, uint64(targets[t]))
				h = fnvMix(h, binary.BigEndian.Uint64(resp))
				h = fnvMix(h, uint64(rtt))
				rows[i].RespHash = h
				rows[i].LatSumNs += rtt
				if rtt > rows[i].LatMaxNs {
					rows[i].LatMaxNs = rtt
				}
			}
			c.Exec(gap)
		}
	})
}

// RunMesh executes E10 (and, with MeshConfig.Faults/Crash set, the E11
// fault scenario) once. partitions <= 1 selects the classic
// single-kernel substrate; larger values shard the platforms round-robin
// over that many federated kernels. For a fixed (seed, cfg) the Report
// is identical for every partition count.
func RunMesh(seed uint64, cfg MeshConfig, partitions int) (*MeshResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Crash != nil && (cfg.Crash.Platform < 0 || cfg.Crash.Platform >= cfg.Platforms) {
		return nil, fmt.Errorf("exp: crash platform %d out of range", cfg.Crash.Platform)
	}
	sub, err := newMeshSubstrate(seed, cfg, partitions)
	if err != nil {
		return nil, err
	}
	n := cfg.Platforms
	res := &MeshResult{Seed: seed, Config: cfg, Rows: make([]MeshPlatformRow, n)}
	rows := res.Rows

	runtimes := make([]*ara.Runtime, n)

	// Pass 1: servers. Every platform offers its compute service and
	// binds the local-noise sink. Scheduling order within each kernel is
	// part of the determinism contract, so construction order is fixed:
	// all servers before all clients.
	for i := 0; i < n; i++ {
		rt, err := buildMeshServer(cfg, sub.hosts[i], rows, i, fmt.Sprintf("mesh%02d", i))
		if err != nil {
			return nil, err
		}
		runtimes[i] = rt
	}

	// Pass 2: clients and noise generators.
	for i := 0; i < n; i++ {
		i := i
		host := sub.hosts[i]
		spawnMeshClient(cfg, sub, runtimes[i], rows, i, cfg.Rounds, 0)

		// Local load generator: loopback datagrams on this platform only,
		// so its cost parallelizes across partitions without changing any
		// cross-platform interaction. If the platform crashes, its source
		// endpoint closes and the remaining sends are suppressed.
		if cfg.NoiseEvents > 0 {
			src := host.MustBind(meshNoisePort + 1)
			sinkAddr := simnet.Addr{Host: host.ID(), Port: meshNoisePort}
			k := runtimes[i].Kernel()
			k.Spawn(fmt.Sprintf("noise%02d", i), func(p *des.Process) {
				var buf [4]byte
				for m := 0; m < cfg.NoiseEvents; m++ {
					binary.BigEndian.PutUint32(buf[:], uint32(m))
					src.Send(sinkAddr, buf[:])
					p.Sleep(cfg.NoiseInterval)
				}
			})
		}
	}

	// Pass 3: the crash plan. The schedule is installed up front as
	// ordinary kernel events, so it is ordered deterministically against
	// all traffic in every execution mode.
	if cp := cfg.Crash; cp != nil {
		host := sub.hosts[cp.Platform]
		host.Crash(cp.At)
		if cp.RestartAt > cp.At {
			host.Restart(cp.RestartAt, func() {
				// Rebuild the platform's stack from scratch, as a rebooted
				// AP node would: fresh runtime (distinct name — stream
				// labels must not collide with the dead incarnation),
				// skeleton re-offered, reborn client.
				rt, err := buildMeshServer(cfg, host, rows, cp.Platform,
					fmt.Sprintf("mesh%02dr", cp.Platform))
				if err != nil {
					panic(err)
				}
				spawnMeshClient(cfg, sub, rt, rows, cp.Platform, cp.RebornRounds, 0x7eb0)
			})
		}
	}

	sub.run()
	sub.stats(res)
	return res, nil
}

// RunMeshDeterminismCheck applies E4's determinism-check methodology to
// the sharded substrate: for each of `seeds` seeds it runs the scenario
// on a single kernel and federated at every requested partition count,
// and verifies that all reports are byte-identical per seed (and that
// different seeds do produce different reports — the gate is not
// vacuous). It returns the per-seed reference reports.
func RunMeshDeterminismCheck(seedBase uint64, seeds int, cfg MeshConfig, partitionCounts []int) ([]string, error) {
	_, reports, err := runMeshDeterminism(seedBase, seeds, cfg, partitionCounts)
	return reports, err
}

// runMeshDeterminism is the shared engine behind the E10 and E11
// gates: it returns the per-seed single-kernel reference results (for
// structured assertions) alongside their canonical reports.
func runMeshDeterminism(seedBase uint64, seeds int, cfg MeshConfig, partitionCounts []int) ([]*MeshResult, []string, error) {
	var refs []*MeshResult
	var reports []string
	for s := 0; s < seeds; s++ {
		seed := seedBase + uint64(s)
		ref, err := RunMesh(seed, cfg, 1)
		if err != nil {
			return nil, nil, err
		}
		refReport := ref.Report()
		for _, p := range partitionCounts {
			got, err := RunMesh(seed, cfg, p)
			if err != nil {
				return nil, nil, err
			}
			if r := got.Report(); r != refReport {
				return nil, nil, fmt.Errorf(
					"exp: mesh diverged at seed %d, %d partitions:\n--- single kernel ---\n%s--- federated ---\n%s",
					seed, p, refReport, r)
			}
		}
		refs = append(refs, ref)
		reports = append(reports, refReport)
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] == reports[0] {
			return refs, reports, fmt.Errorf("exp: mesh reports identical across different seeds — gate is vacuous")
		}
	}
	return refs, reports, nil
}
