package exp

import (
	"fmt"
	"strings"

	"repro/internal/logical"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// --- Experiment E10: federated N-platform client/server mesh ---
//
// The paper federates DEAR runtimes across two physical ECUs; industry
// deployments of the Adaptive Platform run far larger topologies. E10
// scales the simulated substrate to N platforms and executes the same
// scenario in two modes: on one sequential kernel (the classic
// substrate) and sharded across a des.Federation with one kernel per
// partition under conservative time synchronization. The determinism
// gate requires the two modes to produce byte-identical reports for
// every seed and partition count — the defining property of the repo
// ("same seed, same bytes") survives sharding.
//
// Since the scenario-engine refactor the world-building lives in
// internal/scenario: E10 is the Ring preset of the declarative Spec,
// and this file is measurement code plus the byte-equality gates.

// MeshConfig parameterizes the E10 scenario — it *is* the declarative
// scenario spec (E10 is the scenario engine's Ring preset). Degree
// plays the old Neighbors role: the number of ring successors each
// client calls.
type MeshConfig = scenario.Spec

// CrashPlan schedules a platform crash and restart inside a mesh run;
// see scenario.CrashPlan.
type CrashPlan = scenario.CrashPlan

// DefaultMeshConfig returns the E10 scenario for n platforms.
func DefaultMeshConfig(n int) MeshConfig { return scenario.MeshPreset(n) }

// MeshHostID returns the simnet host ID platform i receives during
// world construction, in every execution mode. Fault plans that target
// specific mesh links are built from it.
func MeshHostID(i int) uint16 { return scenario.HostID(i) }

// MeshPlatformRow is the per-platform slice of the E10/E11/E12 report.
type MeshPlatformRow = scenario.PlatformStats

// MeshResult is the outcome of one scenario run (E10, E11 mesh, E12,
// or a JSON spec run).
type MeshResult struct {
	// Seed is the world seed the run used.
	Seed uint64
	// Config is the normalized spec the world was compiled from.
	Config MeshConfig
	// Partitions is the executed partition count (mode, not behaviour).
	Partitions int
	// Rows are the canonical per-platform stats.
	Rows []MeshPlatformRow
	// Trace is the canonical logical event trace of the run —
	// mode-independent like the report, and the substrate the
	// determinism gates use to name the first divergent event when
	// reports disagree.
	Trace *trace.Trace

	// Mode-dependent diagnostics (NOT part of the canonical report):
	// coordination rounds are zero on a single kernel, and delivered
	// counts include SD multicast whose fan-out is per-partition.
	CoordRounds uint64
	// CoordGrants counts execution windows the federation coordinator
	// dispatched across all partitions (zero on a single kernel).
	// Schedule-dependent, like CoordRounds.
	CoordGrants uint64
	// CoordParkedNs is cumulative wall-clock nanoseconds partitions
	// spent parked while the federation still had pending work —
	// the coordination-stall budget. Wall-clock, so never canonical.
	CoordParkedNs int64
	// EventsFired counts kernel events across all partitions.
	EventsFired uint64
	// Delivered counts delivered datagrams (mode-dependent).
	Delivered uint64
	// Dropped counts dropped datagrams (mode-dependent).
	Dropped uint64
	// CtrlSends counts multicast/topic send operations on the substrate
	// (mode-dependent).
	CtrlSends uint64
	// CtrlFanout counts datagrams fanned out through multicast/topic
	// membership lists (mode-dependent); the E14 city gate tracks its
	// growth against the platform count.
	CtrlFanout uint64

	// Verdicts are the merged monitor verdicts of a monitored run (nil
	// without a monitors block). Verdicts are mode-independent — the
	// E16 gate compares VerdictReport alongside Report — but live
	// outside the canonical Report so monitor-free gates keep their
	// historical bytes.
	Verdicts []monitor.Verdict
	// MonitorChecks totals the obligations the monitors examined —
	// the checks/op diagnostic benchmarks report.
	MonitorChecks uint64
	// MonitorViolations totals detected property breaches. A
	// violation-free monitored run has MonitorChecks > 0 and
	// MonitorViolations == 0.
	MonitorViolations uint64
}

// Report renders the canonical, mode-independent report: two runs are
// behaviourally identical iff their Reports are byte-identical. It
// deliberately excludes partition count and transport-internal
// counters. Unnamed specs (the E10/E11 presets) keep the historical
// "E10 mesh" header; named specs — E12 presets and JSON scenarios —
// identify themselves and their topology shape.
func (r *MeshResult) Report() string {
	var b strings.Builder
	if r.Config.Name == "" {
		fmt.Fprintf(&b, "E10 mesh seed=%d platforms=%d neighbors=%d rounds=%d\n",
			r.Seed, r.Config.Platforms, r.Config.Degree, r.Config.Rounds)
	} else {
		fmt.Fprintf(&b, "scenario %s topology=%s seed=%d platforms=%d degree=%d rounds=%d\n",
			r.Config.Name, r.Config.Topology, r.Seed, r.Config.Platforms, r.Config.Degree, r.Config.Rounds)
	}
	b.WriteString(scenario.StatsReport(r.Rows))
	return b.String()
}

// VerdictReport renders the merged monitor verdicts canonically (empty
// without a monitors block). Mode-independent like Report — the E16
// sweep and CompareSpecModes compare both — but kept separate so
// monitor-free gates' golden report bytes never change.
func (r *MeshResult) VerdictReport() string {
	return monitor.Report(r.Verdicts)
}

// Table renders the per-platform breakdown for the experiment report.
func (r *MeshResult) Table() *metrics.Table {
	t := metrics.NewTable("platform", "calls", "served", "lat mean", "lat max", "resp hash")
	for i, row := range r.Rows {
		t.Row(i, row.Calls, row.Served,
			logical.Duration(row.LatMeanNs()).String(),
			logical.Duration(row.LatMaxNs).String(),
			fmt.Sprintf("%016x", row.RespHash))
	}
	return t
}

// RunScenario compiles and executes one declarative scenario spec
// (using the spec's own Seed and Partitions) and collects the
// canonical result. Every scenario-family experiment — E10, E11's
// mesh, E12 and JSON spec runs — funnels through it.
func RunScenario(spec scenario.Spec) (*MeshResult, error) {
	w, err := scenario.Build(spec)
	if err != nil {
		return nil, err
	}
	w.Run()
	ctrlSends, ctrlFanout := w.ControlPlane()
	verdicts := w.Verdicts()
	var checks, violations uint64
	for i := range verdicts {
		checks += verdicts[i].Checked
		violations += verdicts[i].Violations
	}
	return &MeshResult{
		Seed:          w.Spec.Seed,
		Config:        w.Spec,
		Partitions:    w.Partitions(),
		Rows:          w.Stats,
		Trace:         w.Trace(),
		CoordRounds:   w.CoordRounds(),
		CoordGrants:   w.CoordGrants(),
		CoordParkedNs: w.CoordParkedNs(),
		EventsFired:   w.EventsFired(),
		Delivered:     w.Delivered(),
		Dropped:       w.Dropped(),
		CtrlSends:     ctrlSends,
		CtrlFanout:    ctrlFanout,

		Verdicts:          verdicts,
		MonitorChecks:     checks,
		MonitorViolations: violations,
	}, nil
}

// RunMesh executes E10 (and, with MeshConfig.Faults/Crash set, the E11
// fault scenario) once. partitions <= 1 selects the classic
// single-kernel substrate; larger values shard the platforms
// round-robin over that many federated kernels. For a fixed (seed,
// cfg) the Report is identical for every partition count.
func RunMesh(seed uint64, cfg MeshConfig, partitions int) (*MeshResult, error) {
	cfg.Seed = seed
	cfg.Partitions = partitions
	return RunScenario(cfg)
}

// RunMeshDeterminismCheck applies E4's determinism-check methodology to
// the sharded substrate: for each of `seeds` seeds it runs the scenario
// on a single kernel and federated at every requested partition count,
// and verifies that all reports are byte-identical per seed (and that
// different seeds do produce different reports — the gate is not
// vacuous). It returns the per-seed reference reports.
func RunMeshDeterminismCheck(seedBase uint64, seeds int, cfg MeshConfig, partitionCounts []int) ([]string, error) {
	_, reports, err := runMeshDeterminism(seedBase, seeds, cfg, partitionCounts)
	return reports, err
}

// runMeshDeterminism is the E10/E11 instantiation of the generic
// determinism sweep, returning the per-seed single-kernel reference
// results (for structured assertions) alongside their canonical
// reports.
func runMeshDeterminism(seedBase uint64, seeds int, cfg MeshConfig, partitionCounts []int) ([]*MeshResult, []string, error) {
	return determinismSweep(seedBase, seeds, partitionCounts,
		func(seed uint64, partitions int) (*MeshResult, string, error) {
			res, err := RunMesh(seed, cfg, partitions)
			if err != nil {
				return nil, "", err
			}
			return res, res.Report(), nil
		})
}
