package exp

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/ara"
	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/someip"
)

// --- Experiment E10: federated N-platform client/server mesh ---
//
// The paper federates DEAR runtimes across two physical ECUs; industry
// deployments of the Adaptive Platform run far larger topologies. E10
// scales the simulated substrate to N platforms and executes the same
// scenario in two modes: on one sequential kernel (the classic
// substrate) and sharded across a des.Federation with one kernel per
// partition under conservative time synchronization. The determinism
// gate requires the two modes to produce byte-identical reports for
// every seed and partition count — the defining property of the repo
// ("same seed, same bytes") survives sharding.

// MeshConfig parameterizes the E10 scenario. The generator derives a
// full N-platform topology from it: every platform runs one ara runtime
// offering a "compute" service and one client that round-robins blocking
// calls over its K ring neighbors, plus a local background load
// generator (dense intra-platform traffic that gives each partition
// real work between cross-partition barriers).
type MeshConfig struct {
	// Platforms is N, the number of simulated ECUs.
	Platforms int
	// Neighbors is K, the number of ring neighbors each client calls
	// (capped at N-1).
	Neighbors int
	// Rounds is the number of call rounds per client; each round issues
	// one blocking call per neighbor.
	Rounds int
	// Gap is the base think time between rounds (each client adds a
	// deterministic per-client skew so request arrivals never collide).
	Gap logical.Duration
	// WorkBase/WorkSpread model the server's execution time: base plus a
	// payload-hash-dependent spread, so timing is data-dependent but
	// identical in both execution modes.
	WorkBase   logical.Duration
	WorkSpread logical.Duration
	// NoiseEvents/NoiseInterval drive the per-platform local load
	// generator (loopback datagrams on the platform's own host).
	NoiseEvents   int
	NoiseInterval logical.Duration
	// LinkLatency is the fixed platform-to-platform latency. It must be
	// RNG-free (fixed): its minimum is the federation lookahead.
	LinkLatency logical.Duration
	// SwitchDelay is the store-and-forward delay added to inter-platform
	// packets.
	SwitchDelay logical.Duration
}

// DefaultMeshConfig returns the E10 scenario for n platforms.
func DefaultMeshConfig(n int) MeshConfig {
	k := 3
	if k > n-1 {
		k = n - 1
	}
	return MeshConfig{
		Platforms:     n,
		Neighbors:     k,
		Rounds:        20,
		Gap:           800 * logical.Microsecond,
		WorkBase:      20 * logical.Microsecond,
		WorkSpread:    120 * logical.Microsecond,
		NoiseEvents:   400,
		NoiseInterval: 50 * logical.Microsecond,
		LinkLatency:   350 * logical.Microsecond,
		SwitchDelay:   20 * logical.Microsecond,
	}
}

func (c *MeshConfig) normalize() error {
	if c.Platforms < 2 {
		return fmt.Errorf("exp: mesh needs at least 2 platforms")
	}
	if c.Neighbors < 1 {
		c.Neighbors = 1
	}
	if c.Neighbors > c.Platforms-1 {
		c.Neighbors = c.Platforms - 1
	}
	if c.LinkLatency <= 0 {
		return fmt.Errorf("exp: mesh needs positive link latency (it is the federation lookahead)")
	}
	return nil
}

// MeshPlatformRow is the per-platform slice of the E10 report.
type MeshPlatformRow struct {
	Calls     int
	Served    int
	RespHash  uint64
	LatSumNs  int64
	LatMaxNs  int64
	NoiseHash uint64
}

// LatMeanNs returns the integer mean round-trip latency (exact — no
// floating point, so reports are byte-stable).
func (r *MeshPlatformRow) LatMeanNs() int64 {
	if r.Calls == 0 {
		return 0
	}
	return r.LatSumNs / int64(r.Calls)
}

// MeshResult is the outcome of one E10 run.
type MeshResult struct {
	Seed       uint64
	Config     MeshConfig
	Partitions int
	Rows       []MeshPlatformRow

	// Mode-dependent diagnostics (NOT part of the canonical report):
	// coordination rounds are zero on a single kernel, and delivered
	// counts include SD multicast whose fan-out is per-partition.
	CoordRounds uint64
	EventsFired uint64
	Delivered   uint64
	Dropped     uint64
}

// Report renders the canonical, mode-independent report: two runs are
// behaviourally identical iff their Reports are byte-identical. It
// deliberately excludes partition count and transport-internal counters.
func (r *MeshResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E10 mesh seed=%d platforms=%d neighbors=%d rounds=%d\n",
		r.Seed, r.Config.Platforms, r.Config.Neighbors, r.Config.Rounds)
	totalCalls, totalServed := 0, 0
	for i, row := range r.Rows {
		fmt.Fprintf(&b, "plat%02d calls=%d served=%d resp=%016x latMeanNs=%d latMaxNs=%d noise=%016x\n",
			i, row.Calls, row.Served, row.RespHash, row.LatMeanNs(), row.LatMaxNs, row.NoiseHash)
		totalCalls += row.Calls
		totalServed += row.Served
	}
	fmt.Fprintf(&b, "total calls=%d served=%d\n", totalCalls, totalServed)
	return b.String()
}

// Table renders the per-platform breakdown for the experiment report.
func (r *MeshResult) Table() *metrics.Table {
	t := metrics.NewTable("platform", "calls", "served", "lat mean", "lat max", "resp hash")
	for i, row := range r.Rows {
		t.Row(i, row.Calls, row.Served,
			logical.Duration(row.LatMeanNs()).String(),
			logical.Duration(row.LatMaxNs).String(),
			fmt.Sprintf("%016x", row.RespHash))
	}
	return t
}

// meshSubstrate abstracts over the two execution modes: one kernel with
// one Network, or a Federation with a partitioned Cluster.
type meshSubstrate struct {
	fed     *des.Federation
	cluster *simnet.Cluster
	single  *des.Kernel
	net     *simnet.Network
	hosts   []*simnet.Host
}

func newMeshSubstrate(seed uint64, cfg MeshConfig, partitions int) (*meshSubstrate, error) {
	netCfg := simnet.Config{
		DefaultLatency: simnet.FixedLatency(cfg.LinkLatency),
		SwitchDelay:    cfg.SwitchDelay,
	}
	s := &meshSubstrate{}
	if partitions <= 1 {
		s.single = des.NewKernel(seed)
		s.net = simnet.NewNetwork(s.single, netCfg)
		for i := 0; i < cfg.Platforms; i++ {
			s.hosts = append(s.hosts, s.net.AddHost(meshHostName(i), nil))
		}
		return s, nil
	}
	if partitions > cfg.Platforms {
		partitions = cfg.Platforms
	}
	s.fed = des.NewFederation(seed, partitions)
	cluster, err := simnet.NewCluster(s.fed, netCfg)
	if err != nil {
		return nil, err
	}
	s.cluster = cluster
	for i := 0; i < cfg.Platforms; i++ {
		s.hosts = append(s.hosts, cluster.AddHost(i%partitions, meshHostName(i), nil))
	}
	return s, nil
}

func meshHostName(i int) string { return fmt.Sprintf("plat%02d", i) }

func (s *meshSubstrate) run() {
	if s.fed != nil {
		s.fed.RunAll()
		s.fed.Shutdown()
		return
	}
	s.single.RunAll()
	s.single.Shutdown()
}

func (s *meshSubstrate) stats(r *MeshResult) {
	if s.fed != nil {
		r.Partitions = s.fed.Partitions()
		r.CoordRounds = s.fed.Rounds()
		r.EventsFired = s.fed.EventsFired()
		r.Delivered = s.cluster.Delivered()
		r.Dropped = s.cluster.Dropped()
		return
	}
	r.Partitions = 1
	r.EventsFired = s.single.EventsFired()
	r.Delivered = s.net.Delivered()
	r.Dropped = s.net.Dropped()
}

const (
	meshServiceBase = someip.ServiceID(0x2100)
	meshPort        = 40000
	meshNoisePort   = 41000
)

func meshIface(i int) *ara.ServiceInterface {
	return &ara.ServiceInterface{
		Name:  fmt.Sprintf("Mesh%02d", i),
		ID:    meshServiceBase + someip.ServiceID(i),
		Major: 1,
		Methods: []ara.MethodSpec{
			{ID: 1, Name: "compute"},
		},
	}
}

// RunMesh executes E10 once. partitions <= 1 selects the classic
// single-kernel substrate; larger values shard the platforms round-robin
// over that many federated kernels. For a fixed (seed, cfg) the Report
// is identical for every partition count.
func RunMesh(seed uint64, cfg MeshConfig, partitions int) (*MeshResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	sub, err := newMeshSubstrate(seed, cfg, partitions)
	if err != nil {
		return nil, err
	}
	n := cfg.Platforms
	res := &MeshResult{Seed: seed, Config: cfg, Rows: make([]MeshPlatformRow, n)}
	rows := res.Rows

	zeroJitter := func(*des.Rand) logical.Duration { return 0 }
	runtimes := make([]*ara.Runtime, n)

	// Pass 1: servers. Every platform offers its compute service and
	// binds the local-noise sink. Scheduling order within each kernel is
	// part of the determinism contract, so construction order is fixed:
	// all servers before all clients.
	for i := 0; i < n; i++ {
		i := i
		host := sub.hosts[i]
		rt, err := ara.NewRuntime(host, ara.Config{
			Name: fmt.Sprintf("mesh%02d", i),
			Port: meshPort,
			Exec: ara.ExecConfig{Workers: 2, Serialized: true, DispatchJitter: zeroJitter},
		})
		if err != nil {
			return nil, err
		}
		runtimes[i] = rt
		sk, err := rt.NewSkeleton(meshIface(i), 1)
		if err != nil {
			return nil, err
		}
		if err := sk.Handle("compute", func(c *ara.Ctx, args []byte) ([]byte, error) {
			rows[i].Served++
			h := fnvOffset
			for _, by := range args {
				h = fnvMix(h, uint64(by))
			}
			h = fnvMix(h, uint64(i))
			h = fnvMix(h, uint64(rows[i].Served))
			if cfg.WorkSpread > 0 {
				c.Exec(cfg.WorkBase + logical.Duration(h%uint64(cfg.WorkSpread)))
			} else if cfg.WorkBase > 0 {
				c.Exec(cfg.WorkBase)
			}
			var out [8]byte
			binary.BigEndian.PutUint64(out[:], h)
			return out[:], nil
		}); err != nil {
			return nil, err
		}
		k := rt.Kernel()
		k.At(0, func() { sk.Offer() })

		// Local noise sink: dense intra-platform load, hashed into the
		// report so both modes must schedule it identically.
		sink := host.MustBind(meshNoisePort)
		rows[i].NoiseHash = fnvOffset
		sink.OnReceive(func(dg simnet.Datagram) {
			h := rows[i].NoiseHash
			h = fnvMix(h, uint64(dg.SentAt))
			h = fnvMix(h, uint64(k.Now()))
			h = fnvMix(h, uint64(binary.BigEndian.Uint32(dg.Payload)))
			rows[i].NoiseHash = h
		})
	}

	// Pass 2: clients and noise generators.
	for i := 0; i < n; i++ {
		i := i
		rt := runtimes[i]
		host := sub.hosts[i]

		// Static peer configuration (the federation has no cross-partition
		// service discovery, mirroring the UDP deployment path).
		proxies := make([]*ara.Proxy, 0, cfg.Neighbors)
		targets := make([]int, 0, cfg.Neighbors)
		for d := 1; d <= cfg.Neighbors; d++ {
			j := (i + d) % n
			proxies = append(proxies, rt.StaticProxy(meshIface(j), 1,
				simnet.Addr{Host: sub.hosts[j].ID(), Port: meshPort}))
			targets = append(targets, j)
		}

		// Deterministic per-client skew keeps request arrivals at any
		// server from colliding at identical timestamps, where single- and
		// multi-kernel tie-breaking could legitimately differ.
		phase := logical.Duration(i)*977*logical.Microsecond + logical.Duration(i)*13
		gap := cfg.Gap + logical.Duration(i)*1013

		rows[i].RespHash = fnvOffset
		rt.Spawn("client", func(c *ara.Ctx) {
			c.Exec(phase)
			var req [12]byte
			for round := 0; round < cfg.Rounds; round++ {
				for t, px := range proxies {
					binary.BigEndian.PutUint16(req[0:], uint16(i))
					binary.BigEndian.PutUint16(req[2:], uint16(targets[t]))
					binary.BigEndian.PutUint32(req[4:], uint32(round))
					binary.BigEndian.PutUint32(req[8:], uint32(t))
					t0 := c.Now()
					resp, err := px.Call("compute", req[:]).Get(c.Process())
					if err != nil {
						// Observable, never silent: fold the failure into
						// the report.
						rows[i].RespHash = fnvMix(rows[i].RespHash, 0xdead)
						continue
					}
					rtt := int64(c.Now() - t0)
					rows[i].Calls++
					h := rows[i].RespHash
					h = fnvMix(h, uint64(targets[t]))
					h = fnvMix(h, binary.BigEndian.Uint64(resp))
					h = fnvMix(h, uint64(rtt))
					rows[i].RespHash = h
					rows[i].LatSumNs += rtt
					if rtt > rows[i].LatMaxNs {
						rows[i].LatMaxNs = rtt
					}
				}
				c.Exec(gap)
			}
		})

		// Local load generator: loopback datagrams on this platform only,
		// so its cost parallelizes across partitions without changing any
		// cross-platform interaction.
		if cfg.NoiseEvents > 0 {
			src := host.MustBind(meshNoisePort + 1)
			sinkAddr := simnet.Addr{Host: host.ID(), Port: meshNoisePort}
			k := rt.Kernel()
			k.Spawn(fmt.Sprintf("noise%02d", i), func(p *des.Process) {
				var buf [4]byte
				for m := 0; m < cfg.NoiseEvents; m++ {
					binary.BigEndian.PutUint32(buf[:], uint32(m))
					src.Send(sinkAddr, buf[:])
					p.Sleep(cfg.NoiseInterval)
				}
			})
		}
	}

	sub.run()
	sub.stats(res)
	return res, nil
}

// RunMeshDeterminismCheck applies E4's determinism-check methodology to
// the sharded substrate: for each of `seeds` seeds it runs the scenario
// on a single kernel and federated at every requested partition count,
// and verifies that all reports are byte-identical per seed (and that
// different seeds do produce different reports — the gate is not
// vacuous). It returns the per-seed reference reports.
func RunMeshDeterminismCheck(seedBase uint64, seeds int, cfg MeshConfig, partitionCounts []int) ([]string, error) {
	var reports []string
	for s := 0; s < seeds; s++ {
		seed := seedBase + uint64(s)
		ref, err := RunMesh(seed, cfg, 1)
		if err != nil {
			return nil, err
		}
		refReport := ref.Report()
		for _, p := range partitionCounts {
			got, err := RunMesh(seed, cfg, p)
			if err != nil {
				return nil, err
			}
			if r := got.Report(); r != refReport {
				return nil, fmt.Errorf(
					"exp: mesh diverged at seed %d, %d partitions:\n--- single kernel ---\n%s--- federated ---\n%s",
					seed, p, refReport, r)
			}
		}
		reports = append(reports, refReport)
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] == reports[0] {
			return reports, fmt.Errorf("exp: mesh reports identical across different seeds — gate is vacuous")
		}
	}
	return reports, nil
}
