package exp

import (
	"fmt"

	"repro/internal/logical"
	"repro/internal/monitor"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// --- Experiment E16: online runtime verification ---
//
// The paper's pure-function determinism claim becomes an observability
// story only if a run can be judged safe *while it happens*. E16
// attaches the standard safety library (internal/monitor) to the E10
// mesh — every kernel's trace stream feeds an online monitor engine
// teed onto the same des.Tracer hook as the trace recorder — and gates
// two properties:
//
//   - verdict determinism: the merged monitor verdicts (violation
//     counts, commutative violation hash, canonically-first violation)
//     are byte-identical across single-kernel and federated execution
//     at every partition count and GOMAXPROCS setting, riding the
//     shared determinismSweep;
//   - violation reproducibility: a run that trips a monitor dumps the
//     canonical trace prefix up to the violation's anchoring record,
//     and re-evaluating the dumped prefix offline (monitor.Evaluate)
//     reproduces that violation — the E13 record/replay contract
//     extended to verdicts. Replay asserts *containment* (the dumped
//     violation appears in the replayed verdicts, and replay is
//     deterministic), not first-violation equality: cutting the trace
//     may flush other components' in-flight obligations as unresolved,
//     which can anchor earlier (see DESIGN.md).

// MonitorConfig parameterizes the E16 run.
type MonitorConfig struct {
	// Platforms is the mesh size; DefaultMonitorPlatforms when 0.
	Platforms int
	// Rounds overrides the preset call-round count when > 0.
	Rounds int
	// Partitions selects the execution mode (≤ 1 = single kernel).
	Partitions int
	// Seed drives every random stream of the world.
	Seed uint64
}

// DefaultMonitorPlatforms is the E16 mesh size — the E10 scale, small
// enough for the partitions × GOMAXPROCS × seeds sweep to stay cheap.
const DefaultMonitorPlatforms = 8

// MonitoredSpec compiles the config into the E16 scenario: the mesh
// preset with a crash-and-restart plan (so the rebound-within monitor
// has a real obligation to discharge), a call timeout (so calls into
// the outage fail observably) and the standard safety library with
// spec-derived deadlines. A healthy run checks every property and
// violates none.
func MonitoredSpec(cfg MonitorConfig) scenario.Spec {
	n := cfg.Platforms
	if n <= 0 {
		n = DefaultMonitorPlatforms
	}
	spec := scenario.MeshPreset(n)
	spec.Name = "monitored"
	if cfg.Rounds > 0 {
		spec.Rounds = cfg.Rounds
	}
	spec.Seed = cfg.Seed
	spec.Partitions = cfg.Partitions
	spec.CallTimeout = 6 * logical.Millisecond
	spec.Crash = &scenario.CrashPlan{
		Platform:     1,
		At:           4 * logical.Time(logical.Millisecond),
		RestartAt:    9 * logical.Time(logical.Millisecond),
		RebornRounds: 2,
	}
	spec.Monitors = scenario.DefaultMonitors(spec)
	return spec
}

// BrokenMonitoredSpec returns a deliberately violating variant of the
// E16 scenario: the responded-within deadline is tightened below the
// call timeout, so every call that expires into the platform-1 outage
// resolves observably but *late* — tripping the monitor without
// touching any test-only hook. The violation-repro round trip (dump
// the trace prefix, replay it offline, find the same violation) runs
// on it.
func BrokenMonitoredSpec(seed uint64) scenario.Spec {
	spec := MonitoredSpec(MonitorConfig{Seed: seed})
	spec.Name = "monitored-broken"
	spec.Monitors = &scenario.MonitorSpec{
		NoSilentCorruption: true,
		RespondedWithin:    2 * logical.Millisecond,
		ReboundWithin:      spec.Monitors.ReboundWithin,
	}
	return spec
}

// RunMonitorDeterminismCheck applies the generic byte-equality sweep
// to the monitored scenario, with the compared string extended to the
// verdict report: for each seed the merged monitor verdicts — counts,
// hashes, sampled violations — must be byte-identical between the
// single-kernel reference and every federated partition count, and the
// combined reports must differ across seeds. Non-vacuity is enforced
// inside the runner: every run must have checked at least one
// obligation per standard monitor. It returns the per-seed reference
// reports (canonical report + verdict report).
func RunMonitorDeterminismCheck(seedBase uint64, seeds int, cfg MonitorConfig, partitionCounts []int) ([]string, error) {
	_, reports, err := determinismSweep(seedBase, seeds, partitionCounts,
		func(seed uint64, partitions int) (*MeshResult, string, error) {
			c := cfg
			c.Seed = seed
			c.Partitions = partitions
			res, err := RunScenario(MonitoredSpec(c))
			if err != nil {
				return nil, "", err
			}
			if res.MonitorChecks == 0 {
				return nil, "", fmt.Errorf("exp: E16 run checked no obligations — the gate is vacuous")
			}
			for i := range res.Verdicts {
				if res.Verdicts[i].Checked == 0 {
					return nil, "", fmt.Errorf("exp: E16 monitor %s checked nothing — the gate is vacuous", res.Verdicts[i].Monitor)
				}
			}
			return res, res.Report() + res.VerdictReport(), nil
		})
	return reports, err
}

// DumpViolationPrefix writes the canonical trace prefix of a violated
// run — every record up to and including the first violation's
// anchoring record — to path, and returns that first violation. This
// is the artifact a monitored run leaves behind for offline diagnosis:
// ReplayViolationDump re-evaluates it to the same verdict. It fails if
// the run has no violation or no trace.
func DumpViolationPrefix(res *MeshResult, path string) (*monitor.Violation, error) {
	first := monitor.FirstViolation(res.Verdicts)
	if first == nil {
		return nil, fmt.Errorf("exp: run has no violation to dump")
	}
	if res.Trace == nil {
		return nil, fmt.Errorf("exp: run has no trace to dump")
	}
	prefix := monitor.ViolationPrefix(res.Trace, first)
	if err := trace.WriteFile(path, prefix); err != nil {
		return nil, err
	}
	return first, nil
}

// ReplayViolationDump reads a dumped violation prefix and re-evaluates
// the spec's monitors over it offline. The returned verdicts must
// contain the dumped violation (the containment contract: truncation
// may additionally flush other components' obligations cut mid-flight,
// so the dumped violation need not be the canonically first on
// replay), and repeated calls are deterministic — both asserted by the
// E16 round-trip test and the CI monitor job.
func ReplayViolationDump(path string, spec scenario.Spec) ([]monitor.Verdict, error) {
	norm, err := spec.Normalized()
	if err != nil {
		return nil, err
	}
	if norm.Monitors == nil {
		return nil, fmt.Errorf("exp: spec has no monitors block to replay against")
	}
	t, err := trace.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return monitor.Evaluate(t, norm.Monitors.Build()...), nil
}

// ContainsViolation reports whether the verdicts include the given
// violation — the containment check of the dump/replay round trip.
// Matching is by identity of the anchor (monitor, time, component,
// seq); the detail may differ when replay truncation converts a
// deadline-exceeded violation into an unresolved-at-end one.
func ContainsViolation(verdicts []monitor.Verdict, v *monitor.Violation) bool {
	for i := range verdicts {
		for j := range verdicts[i].Samples {
			s := &verdicts[i].Samples[j]
			if s.Monitor == v.Monitor && s.Time == v.Time &&
				s.Component == v.Component && s.Seq == v.Seq {
				return true
			}
		}
	}
	return false
}
