package exp

import (
	"runtime"
	"strings"
	"testing"
)

// cityGateConfig sizes the E14 gates: trace capacity (and thus
// per-partition recorder memory) is linear in rounds × platforms, so
// the 5000-platform sweep trims the round count — in short mode (the
// CI cityscale job) further than in a full run. Under the race
// detector the platform count drops instead: the race job exists to
// find data races across the same partition/goroutine boundaries, not
// to re-run the full-scale gate (the cityscale CI job owns that), and
// race instrumentation is ~10× slower.
func cityGateConfig() CityConfig {
	cfg := CityConfig{Platforms: DefaultCityPlatforms, Rounds: 3}
	if testing.Short() {
		cfg.Rounds = 2
	}
	if raceDetectorEnabled {
		cfg.Platforms, cfg.Rounds = 500, 2
	}
	return cfg
}

// The E14 flagship gate: the 5000-platform city scenario produces
// byte-identical canonical reports on a single kernel and federated at
// 4 and 16 partitions, for two different seeds (whose reports must
// differ — the anti-vacuity check inside the sweep).
func TestCityScaleDeterminism(t *testing.T) {
	cfg := cityGateConfig()
	reports, err := RunCityDeterminismCheck(0xC17, 2, cfg, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reports {
		if !strings.HasPrefix(r, "scenario city topology=ring") {
			t.Errorf("seed %d report header = %q", i, r[:min(len(r), 60)])
		}
	}
}

// The canonical report must not depend on how many OS threads the
// federation may use: re-run the 16-partition city world under varied
// GOMAXPROCS values and require byte-equality with the single-kernel
// reference.
func TestCityScaleGOMAXPROCSIndependence(t *testing.T) {
	cfg := cityGateConfig()
	cfg.Rounds = 2
	cfg.Seed = 0xC17
	ref, err := RunScenario(CitySpec(cfg))
	if err != nil {
		t.Fatal(err)
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	procs := []int{1, 4}
	if testing.Short() {
		procs = []int{4}
	}
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		c := cfg
		c.Partitions = 16
		res, err := RunScenario(CitySpec(c))
		if err != nil {
			t.Fatal(err)
		}
		if res.Report() != ref.Report() {
			runtime.GOMAXPROCS(old)
			t.Fatal(divergenceError(cfg.Seed, 16, ref, ref.Report(), res, res.Report()))
		}
	}
}

// The city control plane must stay free of all-pairs fan-out: scenario
// worlds wire clients through static proxies (no SD interest is ever
// declared), so every SD offer fans out to exactly zero subscribers —
// the counters pin that the interest-based routing path is in effect
// and that discovery cost cannot scale with platforms².
func TestCityControlPlaneInterestRouted(t *testing.T) {
	res, err := RunCityScale(CityConfig{Platforms: 600, Rounds: 2, Partitions: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.CtrlSends == 0 {
		t.Fatal("no SD control-plane sends recorded")
	}
	if res.Result.CtrlFanout != 0 {
		t.Errorf("ctrlFanout = %d, want 0 (no platform declares SD interest in scenario worlds)",
			res.Result.CtrlFanout)
	}
	if res.Messages == 0 || res.MsgPerSecPerCore <= 0 {
		t.Errorf("throughput not measured: messages=%d rate=%f", res.Messages, res.MsgPerSecPerCore)
	}
}

// The canonical report is O(platforms): exactly one fixed-width line
// per platform plus a header and a totals line, regardless of how many
// messages flowed.
func TestCityReportIsPerPlatform(t *testing.T) {
	res, err := RunScenario(CitySpec(CityConfig{Platforms: 300, Rounds: 2, Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(res.Report(), "\n")
	if want := 300 + 2; lines != want {
		t.Errorf("report has %d lines, want %d (header + one per platform + totals)", lines, want)
	}
}
