package exp

import (
	"strings"
	"testing"

	"repro/internal/logical"
)

func TestLatencyComparison(t *testing.T) {
	res, err := RunLatencyComparison(3, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.DearErrors != 0 {
		t.Errorf("DEAR errors = %d, want 0", res.DearErrors)
	}
	if res.DearMax <= 0 || res.BaselineMax <= 0 {
		t.Fatal("latencies not recorded")
	}
	// DEAR pays the deliberate safe-to-process delay: its mean latency
	// exceeds its own spread by a wide margin and is pinned to a narrow
	// band, whereas the baseline's band is wide.
	if res.DearSpread >= logical.Duration(5*logical.Millisecond) {
		t.Errorf("DEAR spread = %v, want tightly pinned", res.DearSpread)
	}
	if res.BaselineSpread <= res.DearSpread {
		t.Errorf("baseline spread %v should exceed DEAR spread %v",
			res.BaselineSpread, res.DearSpread)
	}
	// The deterministic latency equals the analytical bound ~70ms.
	if res.DearMean < logical.Duration(65*logical.Millisecond) ||
		res.DearMean > logical.Duration(75*logical.Millisecond) {
		t.Errorf("DEAR mean latency = %v, want ~70ms", res.DearMean)
	}
	out := res.Table().String()
	if !strings.Contains(out, "DEAR") || !strings.Contains(out, "baseline") {
		t.Errorf("table:\n%s", out)
	}
}

func TestLatencyComparisonReproducible(t *testing.T) {
	a, err := RunLatencyComparison(9, 200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLatencyComparison(9, 200)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("same seed differs:\n%+v\n%+v", a, b)
	}
}
