package exp

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/logical"
)

// quickFaultMeshConfig shrinks the E11 mesh for test time while keeping
// every fault class active: drops, loss window, jitter, partition
// window, crash and restart.
func quickFaultMeshConfig(n int) MeshConfig {
	cfg := DefaultFaultMeshConfig(n)
	cfg.Rounds = 12
	cfg.NoiseEvents = 60
	// The quick run spans ~45ms of simulated time; compress the default
	// schedule so the outage, the restart and the partition window all
	// overlap live traffic.
	ms := func(v int64) logical.Time { return logical.Time(v) * logical.Time(logical.Millisecond) }
	cfg.Crash = &CrashPlan{Platform: 1, At: ms(12), RestartAt: ms(22), RebornRounds: 4}
	cfg.Faults.Partitions[0].From = ms(30)
	cfg.Faults.Partitions[0].To = ms(38)
	return cfg
}

// The E11 acceptance gate, part 1: byte-identical canonical reports
// across ≥3 seeds × ≥3 partition counts with a nonzero-drop fault plan,
// a partition window and a crash/restart on a federated Cluster; and
// the plan must be demonstrably active (observable errors in every
// report).
func TestFaultMeshCrossModeDeterminismProperty(t *testing.T) {
	reports, err := RunFaultsDeterminismCheck(21, 3, quickFaultMeshConfig(8), []int{2, 3, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
}

// The E11 acceptance gate, part 2: the faulted federated run must not
// depend on the Go scheduler — identical reports under different
// GOMAXPROCS values.
func TestFaultMeshDeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := quickFaultMeshConfig(6)
	ref, err := RunFaultMesh(9, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 8} {
		runtime.GOMAXPROCS(procs)
		got, err := RunFaultMesh(9, cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got.Report() != ref.Report() {
			t.Fatalf("GOMAXPROCS=%d: faulted federated report diverged", procs)
		}
	}
}

// Recovery must be visible in the report: peers observe failures during
// the outage (never silently), and the restarted platform serves and
// calls again — strictly more than it would without the restart.
func TestFaultMeshCrashRecovery(t *testing.T) {
	cfg := quickFaultMeshConfig(6)
	// Isolate the crash: no drops or windows, so every error in the
	// report is attributable to the outage.
	cfg.Faults = nil
	res, err := RunFaultMesh(3, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	crashed := cfg.Crash.Platform
	row := res.Rows[crashed]
	if row.Served == 0 {
		t.Fatal("crashed platform never served")
	}
	// Peers calling into the outage must see observable failures.
	peerErrs := 0
	for i, r := range res.Rows {
		if i != crashed {
			peerErrs += r.Errors
		}
	}
	if peerErrs == 0 {
		t.Fatal("outage invisible to peers: no observable call failures")
	}

	// Against a permanent outage, the restart must add served calls on
	// the crashed platform and successful calls by its reborn client.
	noRestart := cfg
	crash := *cfg.Crash
	crash.RestartAt = 0
	noRestart.Crash = &crash
	down, err := RunFaultMesh(3, noRestart, 2)
	if err != nil {
		t.Fatal(err)
	}
	if row.Served <= down.Rows[crashed].Served {
		t.Fatalf("restart added no served calls: %d with restart, %d without",
			row.Served, down.Rows[crashed].Served)
	}
	if row.Calls <= down.Rows[crashed].Calls {
		t.Fatalf("reborn client completed no calls: %d with restart, %d without",
			row.Calls, down.Rows[crashed].Calls)
	}
}

// The pipeline contrast: the stock pipeline computes on corrupt input
// pairs under the fault schedule (silent corruption), the DEAR pipeline
// never does — its failures are all counted, observable errors — and it
// still makes progress.
func TestFaultPipelineBaselineSilentDearObservable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulated pipeline runs")
	}
	for _, seed := range []uint64{1, 2} {
		res, err := RunFaultPipeline(seed, 400)
		if err != nil {
			t.Fatal(err)
		}
		if res.Baseline.CorruptProcessed == 0 {
			t.Fatalf("seed %d: baseline processed no corrupt activations — fault plan too benign", seed)
		}
		if res.Dear.CorruptProcessed != 0 {
			t.Fatalf("seed %d: DEAR processed %d corrupt activations", seed, res.Dear.CorruptProcessed)
		}
		if res.Dear.TotalErrors() == 0 {
			t.Fatalf("seed %d: DEAR observed no errors under faults", seed)
		}
		if res.Dear.FramesProcessed == 0 {
			t.Fatalf("seed %d: DEAR made no progress under faults", seed)
		}
	}
}

// RunFaults is the E11 entry point used by cmd/experiments: its
// self-checks must pass and the mesh report must be non-trivial.
func TestRunFaultsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulated pipeline runs")
	}
	res, err := RunFaults(1, 400, quickFaultMeshConfig(6), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Mesh.Report(), "E10 mesh") {
		t.Fatalf("unexpected mesh report:\n%s", res.Mesh.Report())
	}
}

// The fault-free path must be untouched: a mesh config without faults
// still produces a report with zero errors (E10 semantics preserved).
func TestMeshWithoutFaultsHasNoErrors(t *testing.T) {
	res, err := RunMesh(1, quickMeshConfig(6), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res.Rows {
		if row.Errors != 0 {
			t.Fatalf("platform %d: %d errors in fault-free run", i, row.Errors)
		}
	}
}
