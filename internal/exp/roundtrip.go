package exp

import (
	"fmt"

	"repro/internal/ara"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/reactor"
	"repro/internal/simnet"
)

// echoIface is the service used by the round-trip driver (Figure 3 / E2).
var echoIface = &ara.ServiceInterface{
	Name:  "Echo",
	ID:    0x2101,
	Major: 1,
	Methods: []ara.MethodSpec{
		{ID: 1, Name: "echo"},
	},
}

// RunMethodRoundTrips drives n sequential tagged method calls through the
// complete Figure 3 chain — client reactor → client method transactor →
// proxy → tagged binding → network → skeleton → server method transactor
// → server reactor and back — and returns how many completed.
func RunMethodRoundTrips(seed uint64, n int) (int, error) {
	k := des.NewKernel(seed)
	net := simnet.NewNetwork(k, simnet.Config{})
	h1 := net.AddHost("p1", k.NewLocalClock(des.ClockConfig{}, nil))
	h2 := net.AddHost("p2", k.NewLocalClock(des.ClockConfig{}, nil))

	server, err := core.NewSWC(h1, ara.Config{Name: "server"})
	if err != nil {
		return 0, err
	}
	client, err := core.NewSWC(h2, ara.Config{Name: "client"})
	if err != nil {
		return 0, err
	}
	cfg := core.TransactorConfig{
		Deadline: 10 * logical.Millisecond,
		Link:     core.LinkConfig{Latency: 5 * logical.Millisecond},
	}
	// Each round trip spans ~30ms of logical time (2×(D+L)).
	horizon := logical.Duration(n+20)*40*logical.Millisecond + logical.Second

	server.Start(core.StartOptions{KeepAlive: true, Timeout: horizon}, func(env *reactor.Environment) error {
		sk, err := server.Runtime().NewSkeleton(echoIface, 1)
		if err != nil {
			return err
		}
		smt, err := core.NewServerMethodTransactor(env, server, sk, "echo", cfg)
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		in := reactor.NewInputPort[[]byte](logic, "in")
		out := reactor.NewOutputPort[[]byte](logic, "out")
		reactor.Connect(smt.Request, in)
		reactor.Connect(out, smt.Response)
		logic.AddReaction("serve").Triggers(in).Effects(out).Do(func(c *reactor.Ctx) {
			v, _ := in.Get(c)
			out.Set(c, v)
		})
		sk.Offer()
		return nil
	})

	completed := 0
	client.Start(core.StartOptions{KeepAlive: true, Timeout: horizon}, func(env *reactor.Environment) error {
		cmt, err := core.NewClientMethodTransactor(env, client, echoIface, 1, "echo", cfg)
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		req := reactor.NewOutputPort[[]byte](logic, "req")
		resp := reactor.NewInputPort[[]byte](logic, "resp")
		reactor.Connect(req, cmt.Request)
		reactor.Connect(cmt.Response, resp)
		kick := reactor.NewTimer(logic, "kick", 200*logical.Millisecond, 0)
		logic.AddReaction("first").Triggers(kick).Effects(req).Do(func(c *reactor.Ctx) {
			req.Set(c, []byte{0})
		})
		logic.AddReaction("next").Triggers(resp).Effects(req).Do(func(c *reactor.Ctx) {
			completed++
			if completed >= n {
				c.RequestStop()
				return
			}
			req.Set(c, []byte{byte(completed)})
		})
		return nil
	})

	k.RunAll()
	k.Shutdown()
	if server.Err() != nil {
		return completed, fmt.Errorf("exp: server: %w", server.Err())
	}
	if client.Err() != nil {
		return completed, fmt.Errorf("exp: client: %w", client.Err())
	}
	return completed, nil
}
