package exp

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/scenario"
)

// --- Experiment E14: city-scale scenario ---
//
// The paper's evaluation federates two physical ECUs; a city-scale
// vehicle-to-infrastructure deployment runs thousands. E14 pushes the
// simulated substrate to that scale and checks that the repo's defining
// property — same seed, same bytes, in every execution mode — survives
// it. Three properties are gated:
//
//   - byte-equality: the 5000-platform scenario produces byte-identical
//     canonical reports on a single kernel and federated at every
//     partition count (and under varying GOMAXPROCS);
//   - sub-quadratic control plane: interest-based SD routing keeps the
//     discovery fan-out growing with declared interest, not platforms²
//     (someip's control-plane test pins the ratio; the city run reports
//     the absolute counters);
//   - O(platforms) reporting: the canonical report is a fixed-size
//     per-platform fold (scenario.PlatformStats), and latency summaries
//     elsewhere use the O(bins) streaming sketch — no per-sample state.
//
// Throughput is reported as messages/sec/core: delivered datagrams per
// wall-clock second, normalized by the cores the run could actually
// use. Wall-clock figures are mode- and machine-dependent diagnostics,
// never part of the canonical report.

// CityConfig parameterizes the E14 city-scale run.
type CityConfig struct {
	// Platforms is the city size N; DefaultCityPlatforms when 0.
	Platforms int
	// Rounds overrides the preset call-round count when > 0 (the CI
	// short-mode sweep trims it to bound trace memory and runtime).
	Rounds int
	// Partitions selects the execution mode (≤ 1 = single kernel).
	Partitions int
	// Seed drives every random stream of the world.
	Seed uint64
}

// DefaultCityPlatforms is the E14 headline scale.
const DefaultCityPlatforms = 5000

// CitySpec compiles the config into the declarative city scenario.
func CitySpec(cfg CityConfig) scenario.Spec {
	n := cfg.Platforms
	if n <= 0 {
		n = DefaultCityPlatforms
	}
	spec := scenario.CityPreset(n)
	if cfg.Rounds > 0 {
		spec.Rounds = cfg.Rounds
	}
	spec.Seed = cfg.Seed
	spec.Partitions = cfg.Partitions
	return spec
}

// CityScaleResult is the outcome of one E14 run: the canonical scenario
// result plus the wall-clock throughput diagnostics.
type CityScaleResult struct {
	// Result is the canonical scenario outcome (report, trace, rows).
	Result *MeshResult
	// Elapsed is the wall-clock duration of the run (machine-dependent).
	Elapsed time.Duration
	// Cores is the number of cores the run could use: GOMAXPROCS capped
	// at the partition count (a federation runs one goroutine per
	// partition; a single kernel is sequential).
	Cores int
	// Messages is the delivered datagram count.
	Messages uint64
	// MsgPerSecPerCore is Messages / Elapsed seconds / Cores.
	MsgPerSecPerCore float64
}

// PerfReport renders the human-readable throughput summary. It is
// mode- and machine-dependent — never part of the canonical report.
func (r *CityScaleResult) PerfReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E14 city seed=%d platforms=%d rounds=%d partitions=%d\n",
		r.Result.Seed, r.Result.Config.Platforms, r.Result.Config.Rounds, r.Result.Partitions)
	fmt.Fprintf(&b, "wall=%v cores=%d messages=%d msg/sec/core=%.0f\n",
		r.Elapsed.Round(time.Millisecond), r.Cores, r.Messages, r.MsgPerSecPerCore)
	fmt.Fprintf(&b, "events=%d coordRounds=%d ctrlSends=%d ctrlFanout=%d\n",
		r.Result.EventsFired, r.Result.CoordRounds, r.Result.CtrlSends, r.Result.CtrlFanout)
	return b.String()
}

// RunCityScale executes one E14 run and measures its wall-clock
// throughput. The canonical report in Result is unaffected by the
// measurement — it stays a pure function of (seed, spec).
func RunCityScale(cfg CityConfig) (*CityScaleResult, error) {
	spec := CitySpec(cfg)
	start := time.Now()
	res, err := RunScenario(spec)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	cores := runtime.GOMAXPROCS(0)
	if res.Partitions < cores {
		cores = res.Partitions
	}
	if cores < 1 {
		cores = 1
	}
	secs := elapsed.Seconds()
	var rate float64
	if secs > 0 {
		rate = float64(res.Delivered) / secs / float64(cores)
	}
	return &CityScaleResult{
		Result:           res,
		Elapsed:          elapsed,
		Cores:            cores,
		Messages:         res.Delivered,
		MsgPerSecPerCore: rate,
	}, nil
}

// RunCityDeterminismCheck applies the generic byte-equality sweep to
// the city scenario: for each seed it runs the city world on a single
// kernel and federated at every requested partition count, requiring
// byte-identical canonical reports per seed and differing reports
// across seeds. It returns the per-seed reference reports.
func RunCityDeterminismCheck(seedBase uint64, seeds int, cfg CityConfig, partitionCounts []int) ([]string, error) {
	_, reports, err := determinismSweep(seedBase, seeds, partitionCounts,
		func(seed uint64, partitions int) (*MeshResult, string, error) {
			c := cfg
			c.Seed = seed
			c.Partitions = partitions
			res, err := RunScenario(CitySpec(c))
			if err != nil {
				return nil, "", err
			}
			return res, res.Report(), nil
		})
	return reports, err
}
