package exp

import (
	"fmt"

	"repro/internal/apd"
	"repro/internal/logical"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

// --- Experiment E11: deterministic fault injection & recovery ---
//
// The paper's core claim is that DEAR turns nondeterministic failures
// into *observable, never silent* errors. E1–E10 only exercise benign
// networks; E11 puts both pipeline variants and the federated mesh
// under a seeded, deterministic fault schedule (simnet.FaultPlan):
// background loss, loss windows, a network partition, jitter bursts,
// and a platform crash with restart and SD-style re-offer.
//
// Two sub-experiments:
//
//  1. Pipeline contrast (RunFaultPipeline): the stock brake assistant
//     detects input mismatches and *keeps computing on the corrupt
//     pair* (CorruptProcessed > 0) — silent corruption reaching the
//     actuator. The DEAR assistant refuses every such activation
//     (CorruptProcessed == 0); all of its failures surface as counted,
//     observable errors (missing inputs, deadline and safe-to-process
//     violations).
//
//  2. Faulted federated mesh (RunFaultMesh / FaultMeshConfig): the E10
//     scenario under nonzero drop rates, a partition window and a
//     crash/restart, with per-call timeouts making every loss
//     observable. The determinism gate is unchanged: byte-identical
//     canonical reports for every seed, partition count and GOMAXPROCS
//     value — faults do not cost the "same seed, same bytes" property,
//     because every packet fate is a counter-based pure function.

// FaultPipelineResult contrasts the two pipeline variants under the
// same fault schedule.
type FaultPipelineResult struct {
	Frames   int
	Plan     *simnet.FaultPlan
	Baseline apd.ErrorCounters
	Dear     apd.ErrorCounters
	// BaselineDecisions / DearDecisions count brake decisions actually
	// taken under faults.
	BaselineDecisions int
	DearDecisions     int
}

// Table renders the contrast.
func (r *FaultPipelineResult) Table() *metrics.Table {
	t := metrics.NewTable("pipeline", "decisions", "corrupt processed (silent)",
		"mismatches", "dropped", "deadline", "safe-to-process")
	b, d := r.Baseline, r.Dear
	t.Row("baseline (stock APD)", r.BaselineDecisions, b.CorruptProcessed,
		b.MismatchCV, b.DroppedPre+b.DroppedCV+b.DroppedEBA, b.DeadlineViolations, b.SafeToProcessViolations)
	t.Row("DEAR (deterministic)", r.DearDecisions, d.CorruptProcessed,
		d.MismatchCV, d.DroppedPre+d.DroppedCV+d.DroppedEBA, d.DeadlineViolations, d.SafeToProcessViolations)
	return t
}

// DefaultPipelineFaultPlan builds the E11 fault schedule for a
// frames-long brake-assistant run: a jitter burst early on (reordering
// — the silent-corruption trigger for one-slot buffers), a lossy window
// mid-run, a one-second full network partition at ~70% of the run, and
// light background loss throughout. Host selectors are wildcards, so
// the identical plan applies to both deployments (camera link in the
// baseline; camera plus inter-SWC links in the split DEAR deployment).
func DefaultPipelineFaultPlan(frames int) *simnet.FaultPlan {
	period := 50 * logical.Millisecond
	start := logical.Time(300 * logical.Millisecond) // settle time
	span := logical.Duration(frames) * period
	at := func(frac float64) logical.Time {
		return start + logical.Time(float64(span)*frac)
	}
	return &simnet.FaultPlan{
		Seed:     0xE11,
		DropRate: 0.01,
		Jitter: []simnet.JitterBurst{{
			From: at(0.05), To: at(0.35), Extra: 30 * logical.Millisecond,
		}},
		Loss: []simnet.LossWindow{{
			From: at(0.45), To: at(0.60), Rate: 0.25,
		}},
		Partitions: []simnet.PartitionWindow{{
			From: at(0.70), To: at(0.70) + logical.Time(logical.Second),
		}},
	}
}

// RunFaultPipeline executes the brake assistant in both variants under
// the same fault schedule. The DEAR variant runs split across platforms
// (CV and EBA on platform 3) so the fault plan exercises the inter-SWC
// path, with the timing bounds of the split deployment.
func RunFaultPipeline(seed uint64, frames int) (*FaultPipelineResult, error) {
	plan := DefaultPipelineFaultPlan(frames)
	res := &FaultPipelineResult{Frames: frames, Plan: plan}

	bcfg := apd.DefaultBaselineConfig(frames)
	bcfg.Faults = plan
	bcfg.SplitPlatforms = true
	b, err := apd.NewBaseline(seed, bcfg)
	if err != nil {
		return nil, err
	}
	res.Baseline = *b.Run()
	res.BaselineDecisions = len(b.BrakeSeq)

	dcfg := apd.DefaultDeterministicConfig(frames)
	dcfg.Faults = plan
	dcfg.SplitPlatforms = true
	dcfg.DriftPPB = 30_000
	dcfg.SyncBound = logical.Millisecond
	dcfg.ClockError = 2500 * logical.Microsecond
	dcfg.VADeadline += 3 * logical.Millisecond
	dcfg.PreDeadline += 3 * logical.Millisecond
	dcfg.CVDeadline += 3 * logical.Millisecond
	dcfg.EBADeadline += 3 * logical.Millisecond
	d, err := apd.NewDeterministic(seed, dcfg)
	if err != nil {
		return nil, err
	}
	res.Dear = *d.Run()
	res.DearDecisions = len(d.BrakeSeq)
	return res, nil
}

// DefaultFaultMeshConfig builds the E11 mesh scenario for n platforms:
// the E10 topology under background loss, a lossy window, a jitter
// burst, a mid-run partition separating the first half of the platforms
// from the second, and a crash of platform 1 followed by a restart with
// re-offer and a reborn client. Calls carry timeouts so every loss is
// observable in the canonical report.
func DefaultFaultMeshConfig(n int) MeshConfig {
	cfg := DefaultMeshConfig(n)
	cfg.Rounds = 30
	cfg.CallTimeout = 5 * logical.Millisecond
	half := make([]uint16, 0, n/2)
	for i := 0; i < n/2; i++ {
		half = append(half, MeshHostID(i))
	}
	ms := func(v int64) logical.Time { return logical.Time(v) * logical.Time(logical.Millisecond) }
	cfg.Faults = &simnet.FaultPlan{
		Seed:     0xE11,
		DropRate: 0.02,
		Loss: []simnet.LossWindow{{
			From: ms(20), To: ms(40), Rate: 0.3,
		}},
		Jitter: []simnet.JitterBurst{{
			From: 0, To: ms(50), Extra: 300 * logical.Microsecond,
		}},
		Partitions: []simnet.PartitionWindow{{
			From: ms(70), To: ms(80), GroupA: half,
		}},
	}
	cfg.Crash = &CrashPlan{
		Platform:     1,
		At:           ms(30),
		RestartAt:    ms(60),
		RebornRounds: 10,
	}
	return cfg
}

// RunFaultMesh executes the E11 mesh scenario once; it is RunMesh under
// DefaultFaultMeshConfig-style configuration and shares its determinism
// contract.
func RunFaultMesh(seed uint64, cfg MeshConfig, partitions int) (*MeshResult, error) {
	return RunMesh(seed, cfg, partitions)
}

// FaultsResult bundles the two E11 sub-experiments.
type FaultsResult struct {
	Pipeline *FaultPipelineResult
	Mesh     *MeshResult
}

// RunFaults executes E11: the pipeline contrast and one federated
// faulted mesh run. It errors when the experiment's headline claims do
// not hold: the baseline must exhibit silent corruption, the DEAR
// pipeline must exhibit none while still reporting observable errors
// and making progress through the fault schedule.
func RunFaults(seed uint64, frames int, meshCfg MeshConfig, partitions int) (*FaultsResult, error) {
	pipe, err := RunFaultPipeline(seed, frames)
	if err != nil {
		return nil, err
	}
	if pipe.Baseline.CorruptProcessed == 0 {
		return nil, fmt.Errorf("exp: baseline processed no corrupt activations under faults — scenario too benign")
	}
	if pipe.Dear.CorruptProcessed != 0 {
		return nil, fmt.Errorf("exp: DEAR pipeline processed %d corrupt activations — silent corruption must be structurally impossible", pipe.Dear.CorruptProcessed)
	}
	if pipe.Dear.TotalErrors() == 0 {
		return nil, fmt.Errorf("exp: DEAR pipeline observed no errors under faults — fault plan not effective")
	}
	if pipe.Dear.FramesProcessed == 0 {
		return nil, fmt.Errorf("exp: DEAR pipeline made no progress under faults")
	}
	mesh, err := RunFaultMesh(seed, meshCfg, partitions)
	if err != nil {
		return nil, err
	}
	return &FaultsResult{Pipeline: pipe, Mesh: mesh}, nil
}

// RunFaultsDeterminismCheck is the E11 determinism gate: the E10 gate's
// methodology (byte-identical canonical reports for every seed across
// single-kernel and all federated partition counts) applied to the
// faulted scenario — nonzero drop rate, partition window, crash and
// restart included. It also asserts the fault plan has teeth: every
// per-seed report must record observable errors.
func RunFaultsDeterminismCheck(seedBase uint64, seeds int, cfg MeshConfig, partitionCounts []int) ([]string, error) {
	if cfg.Faults == nil || cfg.Faults.DropRate == 0 {
		return nil, fmt.Errorf("exp: E11 gate requires a fault plan with nonzero drop rate")
	}
	refs, reports, err := runMeshDeterminism(seedBase, seeds, cfg, partitionCounts)
	if err != nil {
		return reports, err
	}
	for s, ref := range refs {
		calls, errs := 0, 0
		for _, row := range ref.Rows {
			calls += row.Calls
			errs += row.Errors
		}
		if errs == 0 {
			return reports, fmt.Errorf("exp: seed %d recorded no observable errors — E11 gate is vacuous:\n%s",
				seedBase+uint64(s), reports[s])
		}
		if calls == 0 {
			return reports, fmt.Errorf("exp: seed %d made no successful calls under faults:\n%s",
				seedBase+uint64(s), reports[s])
		}
	}
	return reports, nil
}
