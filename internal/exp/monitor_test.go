package exp

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/logical"
	"repro/internal/monitor"
	"repro/internal/scenario"
)

// A healthy E16 run must be clean AND non-vacuous: zero violations,
// but every standard monitor checked at least one real obligation —
// a monitor that never checks anything would pass every gate.
func TestMonitoredSpecHealthyAndNonVacuous(t *testing.T) {
	res, err := RunScenario(MonitoredSpec(MonitorConfig{Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if res.MonitorViolations != 0 {
		t.Fatalf("healthy monitored run tripped %d violations:\n%s",
			res.MonitorViolations, res.VerdictReport())
	}
	if res.MonitorChecks == 0 {
		t.Fatal("monitored run checked no obligations")
	}
	if len(res.Verdicts) != 3 {
		t.Fatalf("expected the 3 standard monitors, got %d:\n%s", len(res.Verdicts), res.VerdictReport())
	}
	for _, v := range res.Verdicts {
		if v.Checked == 0 {
			t.Errorf("monitor %s checked nothing — its gate is vacuous", v.Monitor)
		}
	}
}

// E16's headline gate: merged monitor verdicts are byte-identical
// across single-kernel and federated execution at every partition
// count × GOMAXPROCS setting, for several seeds — and differ across
// seeds (enforced inside determinismSweep).
func TestMonitorVerdictDeterminism(t *testing.T) {
	seeds, parts := 3, []int{1, 2, 4}
	if testing.Short() {
		seeds, parts = 2, []int{1, 2}
	}
	cfg := MonitorConfig{}
	if testing.Short() {
		cfg.Rounds = 6
	}
	reports, err := RunMonitorDeterminismCheck(1, seeds, cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != seeds {
		t.Fatalf("got %d reports for %d seeds", len(reports), seeds)
	}
	for i, rep := range reports {
		if !strings.Contains(rep, "monitor no-silent-corruption") {
			t.Fatalf("seed %d report carries no verdicts:\n%s", i, rep)
		}
	}
}

// The sweep above leaves GOMAXPROCS to the ambient test setting; this
// test pins it explicitly across {1, 2, 8} and re-checks the verdict
// bytes through CompareSpecModes, which also diffs the canonical
// traces.
func TestMonitorVerdictsAcrossProcs(t *testing.T) {
	procs := []int{1, 2, 8}
	if testing.Short() {
		procs = []int{1, 8}
	}
	spec := MonitoredSpec(MonitorConfig{Seed: 3, Rounds: 6})
	div, err := CompareSpecModes(spec, []int{2, 4}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatalf("verdicts diverge at partitions=%d procs=%d:\n%s", div.Partitions, div.Procs, div.String())
	}
}

// Violated runs must be deterministic too: a broken spec's verdicts —
// violation counts, hash, samples — are as mode-independent as a
// clean run's.
func TestBrokenSpecVerdictsDeterministic(t *testing.T) {
	div, err := CompareSpecModes(BrokenMonitoredSpec(2), []int{2, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatalf("broken-spec verdicts diverge at partitions=%d:\n%s", div.Partitions, div.String())
	}
}

// The broken spec must actually trip responded-within: calls expiring
// into the platform-1 outage resolve observably but later than the
// tightened deadline. This is the non-vacuity proof for the E16
// violation machinery — no test hook involved.
func TestBrokenSpecTripsRespondedWithin(t *testing.T) {
	res, err := RunScenario(BrokenMonitoredSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	tripped := false
	for _, v := range res.Verdicts {
		switch {
		case strings.HasPrefix(v.Monitor, "responded-within"):
			if v.Violations == 0 {
				t.Fatalf("broken spec did not trip responded-within:\n%s", res.VerdictReport())
			}
			if len(v.Samples) == 0 || v.Samples[0].Seq == 0 {
				t.Fatalf("violation carries no anchoring record: %+v", v.Samples)
			}
			tripped = true
		default:
			if v.Violations != 0 {
				t.Errorf("broken spec tripped unrelated monitor %s:\n%s", v.Monitor, res.VerdictReport())
			}
		}
	}
	if !tripped {
		t.Fatalf("no responded-within verdict in:\n%s", res.VerdictReport())
	}
}

// no-silent-corruption must trip the moment a server computes a wrong
// answer. Real runs cannot corrupt (the handler is pure), so the trip
// path is exercised through the test-only corruption hook — the
// monitor itself is production code observing a production trace
// point.
func TestCorruptionMonitorTrips(t *testing.T) {
	restore := scenario.EnableCorruptionForTesting()
	defer restore()
	res, err := RunScenario(MonitoredSpec(MonitorConfig{Seed: 1, Rounds: 2}))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Verdicts {
		if v.Monitor == "no-silent-corruption" {
			if v.Violations == 0 {
				t.Fatalf("corrupted run not flagged:\n%s", res.VerdictReport())
			}
			return
		}
	}
	t.Fatalf("no no-silent-corruption verdict in:\n%s", res.VerdictReport())
}

// The violation-repro round trip: a violated run dumps the canonical
// trace prefix up to its first violation's anchor; replaying the dump
// offline must (a) contain that violation and (b) be deterministic
// across evaluations. This is what makes a monitor verdict a *repro*,
// not just an alarm.
func TestViolationDumpReplayRoundTrip(t *testing.T) {
	spec := BrokenMonitoredSpec(1)
	res, err := RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.MonitorViolations == 0 {
		t.Fatalf("broken spec tripped nothing:\n%s", res.VerdictReport())
	}

	path := filepath.Join(t.TempDir(), "violation.trace")
	first, err := DumpViolationPrefix(res, path)
	if err != nil {
		t.Fatal(err)
	}

	replayed, err := ReplayViolationDump(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ContainsViolation(replayed, first) {
		t.Fatalf("replayed prefix lost the dumped violation %s:\n%s",
			first.String(), monitor.Report(replayed))
	}
	again, err := ReplayViolationDump(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if monitor.Report(again) != monitor.Report(replayed) {
		t.Fatal("violation replay is not deterministic")
	}
}

// Dumping a clean run must refuse loudly rather than write an empty
// artifact.
func TestDumpViolationPrefixRefusesCleanRun(t *testing.T) {
	res, err := RunScenario(MonitoredSpec(MonitorConfig{Seed: 1, Rounds: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DumpViolationPrefix(res, filepath.Join(t.TempDir(), "none.trace")); err == nil {
		t.Fatal("dumping a violation-free run did not fail")
	}
}

// The same engine watches live runs: MonitorLoopback taps a monitor
// onto the recorder of a real-UDP E9/E13 loopback and its verdicts
// must come back clean with every round trip checked. Wall-clock
// dependent, so skipped in -short.
func TestMonitorLoopbackLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live UDP run in -short mode")
	}
	const n = 8
	verdicts, rec, live, err := MonitorLoopback(n, 0, 10*logical.Second)
	if err != nil {
		t.Fatal(err)
	}
	if live.Completed != n {
		t.Fatalf("completed %d/%d round trips", live.Completed, n)
	}
	if rec.Len() == 0 {
		t.Fatal("live run recorded no trace")
	}
	served := false
	for _, v := range verdicts {
		if !v.OK() {
			t.Errorf("live monitor %s tripped:\n%s", v.Monitor, monitor.Report(verdicts))
		}
		if strings.HasPrefix(v.Monitor, "served-within") {
			served = true
			if v.Checked != n {
				t.Errorf("served-within checked %d obligations, want %d", v.Checked, n)
			}
		}
	}
	if !served {
		t.Fatalf("no served-within verdict in:\n%s", monitor.Report(verdicts))
	}
}
