//go:build race

package exp

// raceDetectorEnabled reports whether the binary was built with the
// race detector; tests use it to trim workload scale (never logic)
// under the ~10× race-instrumentation slowdown.
const raceDetectorEnabled = true
