package exp

import (
	"strings"
	"testing"

	"repro/internal/logical"
)

func TestFigure1DistributionShape(t *testing.T) {
	res, err := RunFigure1(1, DefaultFigure1Config(2000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 2000 {
		t.Errorf("trials = %d", res.Trials)
	}
	total := 0
	for _, c := range res.Counts {
		total += c
	}
	if total != 2000 {
		t.Errorf("counts sum to %d", total)
	}
	// The paper's qualitative shape: all four outcomes occur; the
	// odd values (1 and 3, where set_value is processed before add in
	// issue order or get overtakes) dominate; 0 (get processed first) is
	// the rarest.
	if res.DistinctOutcomes() != 4 {
		t.Errorf("only %d distinct outcomes: %v", res.DistinctOutcomes(), res.Counts)
	}
	p := [4]float64{}
	for v := 0; v <= 3; v++ {
		p[v] = res.Probability(v)
	}
	if p[1]+p[3] <= p[0]+p[2] {
		t.Errorf("issue-order-favoured outcomes should dominate: %v", p)
	}
	if !(p[0] < p[1] && p[0] < p[3]) {
		t.Errorf("P(0) should be the rarest: %v", p)
	}
}

func TestFigure1Deterministic(t *testing.T) {
	a, err := RunFigure1(7, DefaultFigure1Config(300))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFigure1(7, DefaultFigure1Config(300))
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts != b.Counts {
		t.Errorf("same seed differs: %v vs %v", a.Counts, b.Counts)
	}
}

func TestFigure1BlockingCollapsesDistribution(t *testing.T) {
	cfg := DefaultFigure1Config(300)
	cfg.Blocking = true
	res, err := RunFigure1(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[3] != 300 {
		t.Errorf("blocking client must always print 3: %v", res.Counts)
	}
}

func TestFigure1Table(t *testing.T) {
	res, err := RunFigure1(1, DefaultFigure1Config(100))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Table().String()
	if !strings.Contains(out, "printed value") || !strings.Contains(out, "probability") {
		t.Errorf("table:\n%s", out)
	}
}

func TestFigure5SmallRun(t *testing.T) {
	res, err := RunFigure5(100, 5, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 5 {
		t.Fatalf("instances = %d", len(res.Instances))
	}
	// Sorted ascending by prevalence.
	prev := res.Prevalences()
	for i := 1; i < len(prev); i++ {
		if prev[i] < prev[i-1] {
			t.Errorf("not sorted: %v", prev)
		}
	}
	min, mean, max := res.Stats()
	if min > mean || mean > max {
		t.Errorf("stats inconsistent: %v %v %v", min, mean, max)
	}
	out := res.Table().String()
	if !strings.Contains(out, "mismatch(CV)") {
		t.Errorf("table:\n%s", out)
	}
}

func TestFigure5CompositionVaries(t *testing.T) {
	// The paper: "the composition of error types varies significantly" —
	// across enough instances, the dominant error class must not always
	// be the same.
	res, err := RunFigure5(2024, 12, 2000)
	if err != nil {
		t.Fatal(err)
	}
	dominants := map[string]bool{}
	for _, inst := range res.Instances {
		c := inst.Counters
		if c.TotalErrors() == 0 {
			dominants["none"] = true
			continue
		}
		max, name := c.DroppedPre, "pre"
		if c.DroppedCV > max {
			max, name = c.DroppedCV, "cv"
		}
		if c.MismatchCV > max {
			max, name = c.MismatchCV, "mismatch"
		}
		if c.DroppedEBA > max {
			name = "eba"
		}
		dominants[name] = true
	}
	if len(dominants) < 2 {
		t.Errorf("dominant error class identical across all instances: %v", dominants)
	}
}

func TestDeterministicRun(t *testing.T) {
	res, err := RunDeterministic(1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.TotalErrors() != 0 {
		t.Errorf("errors: %v", &res.Counters)
	}
	if res.Counters.FramesProcessed != 300 {
		t.Errorf("processed = %d", res.Counters.FramesProcessed)
	}
	if res.LatencyMax <= 0 || res.LatencyMax > logical.Duration(80*logical.Millisecond) {
		t.Errorf("latency max = %v", res.LatencyMax)
	}
	if res.BrakeOns == 0 {
		t.Error("the scripted scenario should trigger braking")
	}
}

func TestDeterminismCheckAcrossSeeds(t *testing.T) {
	results, err := RunDeterminismCheck(10, 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Counters.TotalErrors() != 0 {
			t.Errorf("seed %d: errors %v", i, &r.Counters)
		}
		if r.BehaviorHash != results[0].BehaviorHash {
			t.Errorf("behaviour hash differs at seed %d", i)
		}
	}
	// Tag traces (physical arrival times) legitimately differ across
	// seeds — but the behaviour must not.
}

func TestTradeoffMonotonicity(t *testing.T) {
	res, err := RunTradeoff(1, 200, []float64{0.85, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	tight, full := res.Points[0], res.Points[1]
	if tight.Violations == 0 {
		t.Error("deadlines below WCET should violate sporadically")
	}
	if full.Violations != 0 {
		t.Errorf("full deadlines should not violate: %d", full.Violations)
	}
	// Sporadic, not total: some frames still complete at 0.85.
	if tight.FramesComplete == 0 {
		t.Error("tight deadlines should drop only part of the frames")
	}
	if tight.LatencyMax >= full.LatencyMax {
		t.Errorf("tight deadlines should lower worst-case latency: %v vs %v",
			tight.LatencyMax, full.LatencyMax)
	}
	out := res.Table().String()
	if !strings.Contains(out, "deadline scale") {
		t.Errorf("table:\n%s", out)
	}
}

func TestTagOverhead(t *testing.T) {
	r := MeasureTagOverhead()
	if r.TaggedBytes-r.PlainBytes != 20 {
		t.Errorf("trailer adds %d bytes, want 20", r.TaggedBytes-r.PlainBytes)
	}
	if r.OverheadFraction <= 0 || r.OverheadFraction > 0.05 {
		t.Errorf("overhead fraction = %v (frame payloads should dwarf the trailer)", r.OverheadFraction)
	}
}
