package exp

import (
	"repro/internal/apd"
	"repro/internal/logical"
	"repro/internal/metrics"
)

// LatencyComparison contrasts the end-to-end latency profiles of the two
// brake-assistant implementations (extension study E8): DEAR pays a
// fixed, *bounded* logical delay (the sum of deadlines and latency
// allowances), whereas the baseline's latency is lower on average but
// unbounded in variability — "the trade-off between end-to-end latency
// and error rate becomes apparent" (Section IV-B).
type LatencyComparison struct {
	Frames int

	BaselineMean, BaselineP99, BaselineMax logical.Duration
	BaselineSpread                         logical.Duration // max - min
	BaselineErrors                         uint64

	DearMean, DearP99, DearMax logical.Duration
	DearSpread                 logical.Duration
	DearErrors                 uint64
}

// Table renders the comparison.
func (r *LatencyComparison) Table() *metrics.Table {
	t := metrics.NewTable("implementation", "mean", "p99", "max", "spread", "errors")
	t.Row("baseline (stock APD)", r.BaselineMean.String(), r.BaselineP99.String(),
		r.BaselineMax.String(), r.BaselineSpread.String(), r.BaselineErrors)
	t.Row("DEAR (deterministic)", r.DearMean.String(), r.DearP99.String(),
		r.DearMax.String(), r.DearSpread.String(), r.DearErrors)
	return t
}

// RunLatencyComparison runs both implementations on the same workload
// and summarizes their capture-to-decision latency distributions.
func RunLatencyComparison(seed uint64, frames int) (*LatencyComparison, error) {
	b, err := apd.NewBaseline(seed, apd.DefaultBaselineConfig(frames))
	if err != nil {
		return nil, err
	}
	bc := b.Run()

	d, err := apd.NewDeterministic(seed, apd.DefaultDeterministicConfig(frames))
	if err != nil {
		return nil, err
	}
	dc := d.Run()

	res := &LatencyComparison{Frames: frames}
	res.BaselineErrors = bc.TotalErrors()
	res.DearErrors = dc.TotalErrors()

	fill := func(lats []logical.Duration, mean, p99, max, spread *logical.Duration) {
		s := metrics.NewStream()
		for _, l := range lats {
			s.Add(float64(l))
		}
		if s.N() == 0 {
			return
		}
		*mean = logical.Duration(s.Mean())
		*p99 = logical.Duration(s.Quantile(0.99))
		*max = logical.Duration(s.Max())
		*spread = logical.Duration(s.Max() - s.Min())
	}
	fill(b.Latencies, &res.BaselineMean, &res.BaselineP99, &res.BaselineMax, &res.BaselineSpread)
	fill(d.Latencies, &res.DearMean, &res.DearP99, &res.DearMax, &res.DearSpread)
	return res, nil
}
