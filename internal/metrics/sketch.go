package metrics

import (
	"math"
)

// Sketch is a deterministic streaming quantile sketch with a fixed,
// data-independent bin layout: log-bucketed base-2 bins (HDR-histogram
// style) with sketchSubBuckets linear sub-buckets per octave, mirrored
// for negative values, plus a dedicated zero bin. Counts are integers,
// so a Sketch is a pure, order-insensitive fold: any permutation of
// Add calls — and any grouping of Merge calls — yields the identical
// state, and therefore byte-identical rendered quantiles. That is the
// property the city-scale determinism gate relies on when statistics
// are aggregated across partitions.
//
// Memory is O(bins): the positive-side array is allocated on first use
// and the negative side only if a negative sample ever arrives
// (latencies never go negative), roughly 16 KiB per populated side.
//
// Quantile answers are bin-snapped: the midpoint of the bin containing
// the requested order statistic. Because counts are exact, the answer
// is always within one bin-width of the exact sorted quantile — a
// relative error of at most 1/sketchSubBuckets (~3%) for values inside
// the clamped exponent range [2^sketchMinExp, 2^sketchMaxExp).
type Sketch struct {
	n    int
	min  float64
	max  float64
	zero int
	pos  []int
	neg  []int
}

// Sketch bin-layout constants. The layout is fixed at compile time so
// every Sketch in every process bins identically.
const (
	// sketchSubBuckets is the number of linear sub-buckets per binary
	// octave; relative bin width (and thus worst-case relative
	// quantile error) is 1/sketchSubBuckets.
	sketchSubBuckets = 32
	// sketchMinExp and sketchMaxExp clamp the Frexp exponent range.
	// Magnitudes outside [2^(sketchMinExp-1), 2^sketchMaxExp) collapse
	// into the extreme bins (min/max remain exact). The range covers
	// every quantity the harness measures — nanosecond latencies up to
	// ~2^63 fit with room to spare.
	sketchMinExp = -64
	sketchMaxExp = 64
	sketchBins   = (sketchMaxExp - sketchMinExp) * sketchSubBuckets
)

// NewSketch returns an empty sketch. The zero value is also ready to use.
func NewSketch() *Sketch { return &Sketch{} }

// sketchBin maps a positive magnitude to its bin index in [0, sketchBins).
func sketchBin(x float64) int {
	frac, exp := math.Frexp(x) // x = frac * 2^exp, frac in [0.5, 1)
	if exp < sketchMinExp {
		return 0
	}
	if exp >= sketchMaxExp {
		return sketchBins - 1
	}
	sub := int((frac - 0.5) * 2 * sketchSubBuckets)
	if sub >= sketchSubBuckets {
		sub = sketchSubBuckets - 1
	}
	return (exp-sketchMinExp)*sketchSubBuckets + sub
}

// sketchMid returns the representative (midpoint) value of a bin.
func sketchMid(bin int) float64 {
	exp := bin/sketchSubBuckets + sketchMinExp
	sub := bin % sketchSubBuckets
	// Bin covers [2^(exp-1)·(1+sub/S), 2^(exp-1)·(1+(sub+1)/S)).
	return math.Ldexp(1+(float64(sub)+0.5)/sketchSubBuckets, exp-1)
}

// sketchWidth returns the width of a bin in value space.
func sketchWidth(bin int) float64 {
	exp := bin/sketchSubBuckets + sketchMinExp
	return math.Ldexp(1.0/sketchSubBuckets, exp-1)
}

// Add records a sample. NaN samples are ignored; negative zero is
// normalized to zero so min/max render identically under any Add order.
func (s *Sketch) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if x == 0 {
		x = 0
	}
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	switch {
	case x == 0:
		s.zero++
	case x > 0:
		if s.pos == nil {
			s.pos = make([]int, sketchBins)
		}
		s.pos[sketchBin(x)]++
	default:
		if s.neg == nil {
			s.neg = make([]int, sketchBins)
		}
		s.neg[sketchBin(-x)]++
	}
}

// N returns the number of recorded samples.
func (s *Sketch) N() int { return s.n }

// Min returns the exact smallest sample (NaN when empty).
func (s *Sketch) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the exact largest sample (NaN when empty).
func (s *Sketch) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// Merge folds other into s. Merging is associative and commutative up
// to exact equality of the resulting counts, so partition-local
// sketches can be combined in any order with byte-identical results.
func (s *Sketch) Merge(other *Sketch) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		s.min, s.max = other.min, other.max
	} else {
		if other.min < s.min {
			s.min = other.min
		}
		if other.max > s.max {
			s.max = other.max
		}
	}
	s.n += other.n
	s.zero += other.zero
	if other.pos != nil {
		if s.pos == nil {
			s.pos = make([]int, sketchBins)
		}
		for i, c := range other.pos {
			s.pos[i] += c
		}
	}
	if other.neg != nil {
		if s.neg == nil {
			s.neg = make([]int, sketchBins)
		}
		for i, c := range other.neg {
			s.neg[i] += c
		}
	}
}

// Quantile returns the bin-snapped q-quantile (0 ≤ q ≤ 1): the midpoint
// of the bin containing the order statistic of rank ⌊q·(n−1)⌋. q ≤ 0
// returns the exact minimum and q ≥ 1 the exact maximum. Empty sketches
// return NaN.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	rank := int(q * float64(s.n-1)) // 0-indexed order statistic
	// Walk bins in ascending value order: negatives from largest
	// magnitude down, then zero, then positives from smallest up.
	seen := 0
	if s.neg != nil {
		for bin := sketchBins - 1; bin >= 0; bin-- {
			c := s.neg[bin]
			if c == 0 {
				continue
			}
			seen += c
			if rank < seen {
				return -sketchMid(bin)
			}
		}
	}
	seen += s.zero
	if rank < seen {
		return 0
	}
	if s.pos != nil {
		for bin := 0; bin < sketchBins; bin++ {
			c := s.pos[bin]
			if c == 0 {
				continue
			}
			seen += c
			if rank < seen {
				return sketchMid(bin)
			}
		}
	}
	return s.max
}

// BinWidth returns the width of the bin that the value x falls into —
// the accuracy bound of Quantile around x. Zero (which has a dedicated
// exact bin) reports width 0.
func (s *Sketch) BinWidth(x float64) float64 {
	if x == 0 {
		return 0
	}
	return sketchWidth(sketchBin(math.Abs(x)))
}
