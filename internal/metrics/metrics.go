// Package metrics provides the small statistics and table-rendering
// toolkit used by the experiment harness: streaming moments, quantiles,
// histograms and fixed-width text tables matching the paper's figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stream accumulates streaming statistics: moments via Welford's
// algorithm plus (optionally) a deterministic quantile Sketch. Memory
// is O(bins) regardless of how many samples are added — no sample is
// ever retained — which is what lets city-scale runs (millions of
// messages) keep bounded memory.
type Stream struct {
	n      int
	mean   float64
	m2     float64
	min    float64
	max    float64
	sketch *Sketch
}

// NewStream returns a stream with quantile support backed by a
// deterministic log-bucketed Sketch. Quantiles are bin-snapped (within
// one bin-width of the exact sorted quantile, ~3% relative); memory is
// O(bins), not O(samples).
func NewStream() *Stream { return &Stream{sketch: NewSketch()} }

// NewMomentsOnly returns a stream without quantile support (moments,
// min and max only; Quantile reports NaN).
func NewMomentsOnly() *Stream { return &Stream{} }

// Add records a sample. Negative zero is normalized to zero so that
// min/max render identically under any Add order.
func (s *Stream) Add(x float64) {
	if x == 0 {
		x = 0
	}
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if s.sketch != nil {
		s.sketch.Add(x)
	}
}

// N returns the sample count.
func (s *Stream) N() int { return s.n }

// Mean returns the sample mean (0 for empty streams).
func (s *Stream) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Stream) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Stream) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest sample.
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest sample.
func (s *Stream) Max() float64 { return s.max }

// Quantile returns the bin-snapped q-quantile (0 <= q <= 1) from the
// stream's Sketch: the midpoint of the sketch bin containing the
// requested order statistic, within one bin-width of the exact sorted
// quantile. q <= 0 and q >= 1 return the exact min and max. Streams
// built with NewMomentsOnly (and empty streams) report NaN.
func (s *Stream) Quantile(q float64) float64 {
	if s.sketch == nil || s.n == 0 {
		return math.NaN()
	}
	return s.sketch.Quantile(q)
}

// Sketch returns the stream's quantile sketch (nil for NewMomentsOnly
// streams), e.g. for merging partition-local streams into a global one.
func (s *Stream) Sketch() *Sketch { return s.sketch }

// Merge folds other into s. Moments are combined with the pairwise
// (Chan et al.) update; sketches merge bin-wise. Note the moment fold
// is associative only up to floating-point rounding — byte-stable
// aggregation across partitions must rely on the sketch (integer
// counts) and on min/max/n, which merge exactly.
func (s *Stream) Merge(other *Stream) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		s.min, s.max = other.min, other.max
	} else {
		if other.min < s.min {
			s.min = other.min
		}
		if other.max > s.max {
			s.max = other.max
		}
	}
	d := other.mean - s.mean
	tot := s.n + other.n
	s.m2 += other.m2 + d*d*float64(s.n)*float64(other.n)/float64(tot)
	s.mean += d * float64(other.n) / float64(tot)
	s.n = tot
	if s.sketch != nil && other.sketch != nil {
		s.sketch.Merge(other.sketch)
	}
}

// Histogram is a fixed-bucket histogram over [Lo, Hi).
type Histogram struct {
	// Lo and Hi bound the bucketed range; samples below Lo or at/above
	// Hi are counted out-of-range.
	Lo, Hi float64
	// Buckets holds the per-bucket counts.
	Buckets []int
	under   int
	over    int
	n       int
	// edges[i] is the left boundary of bucket i (edges[len(Buckets)] ==
	// Hi). Precomputed so Add can bucket by binary search over the exact
	// boundary values instead of a float multiply that can mis-bucket
	// samples landing exactly on an edge.
	edges []float64
}

// NewHistogram creates a histogram with the given bucket count.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if hi <= lo || buckets <= 0 {
		panic("metrics: invalid histogram bounds")
	}
	h := &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, buckets)}
	h.initEdges()
	return h
}

// initEdges precomputes bucket boundaries from Lo/Hi/len(Buckets).
func (h *Histogram) initEdges() {
	n := len(h.Buckets)
	h.edges = make([]float64, n+1)
	h.edges[0] = h.Lo
	for i := 1; i < n; i++ {
		h.edges[i] = h.Lo + (h.Hi-h.Lo)*float64(i)/float64(n)
	}
	h.edges[n] = h.Hi
}

// Add records a sample. A sample exactly on a bucket boundary lands in
// the bucket whose range starts there (buckets are half-open
// [edge[i], edge[i+1])), determined by comparison against the
// precomputed edge values — never by a rounded float multiply.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		if h.edges == nil {
			// Histogram built as a literal rather than via NewHistogram.
			h.initEdges()
		}
		// Smallest i with edges[i] > x; x then lies in bucket i-1.
		idx := sort.SearchFloat64s(h.edges, x)
		if idx < len(h.edges) && h.edges[idx] == x {
			idx++
		}
		idx--
		if idx >= len(h.Buckets) {
			idx = len(h.Buckets) - 1
		}
		h.Buckets[idx]++
	}
}

// N returns the total number of samples.
func (h *Histogram) N() int { return h.n }

// OutOfRange returns samples below Lo and at/above Hi.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// Fraction returns the share of samples in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(h.n)
}

// Render draws a horizontal ASCII bar chart of the histogram.
func (h *Histogram) Render(width int, label func(i int) string) string {
	var b strings.Builder
	maxCount := 1
	for _, c := range h.Buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.Buckets {
		bar := strings.Repeat("#", c*width/maxCount)
		fmt.Fprintf(&b, "%12s |%-*s| %6.3f\n", label(i), width, bar, h.Fraction(i))
	}
	return b.String()
}

// Table renders fixed-width text tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.header))
	for i, h := range t.header {
		cells[i] = esc(h)
	}
	b.WriteString(strings.Join(cells, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
