// Package metrics provides the small statistics and table-rendering
// toolkit used by the experiment harness: streaming moments, quantiles,
// histograms and fixed-width text tables matching the paper's figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stream accumulates streaming statistics (Welford's algorithm) plus the
// raw samples for exact quantiles.
type Stream struct {
	n       int
	mean    float64
	m2      float64
	min     float64
	max     float64
	samples []float64
	keep    bool
	// sorted caches the sorted samples for Quantile; it is invalidated by
	// Add. Experiment reports query several quantiles per stream, and
	// re-sorting the full sample slice per call dominated report time.
	sorted []float64
	dirty  bool
}

// NewStream returns a stream that keeps raw samples (exact quantiles).
func NewStream() *Stream { return &Stream{keep: true} }

// NewMomentsOnly returns a stream without sample retention.
func NewMomentsOnly() *Stream { return &Stream{} }

// Add records a sample.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if s.keep {
		s.samples = append(s.samples, x)
		s.dirty = true
	}
}

// N returns the sample count.
func (s *Stream) N() int { return s.n }

// Mean returns the sample mean (0 for empty streams).
func (s *Stream) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Stream) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Stream) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest sample.
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest sample.
func (s *Stream) Max() float64 { return s.max }

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation.
// Requires sample retention. The sorted order is computed once and cached
// until the next Add, so querying several quantiles costs one sort.
func (s *Stream) Quantile(q float64) float64 {
	if !s.keep || s.n == 0 {
		return math.NaN()
	}
	if s.dirty || s.sorted == nil {
		s.sorted = append(s.sorted[:0], s.samples...)
		sort.Float64s(s.sorted)
		s.dirty = false
	}
	sorted := s.sorted
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram is a fixed-bucket histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	under   int
	over    int
	n       int
}

// NewHistogram creates a histogram with the given bucket count.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if hi <= lo || buckets <= 0 {
		panic("metrics: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, buckets)}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if idx >= len(h.Buckets) {
			idx = len(h.Buckets) - 1
		}
		h.Buckets[idx]++
	}
}

// N returns the total number of samples.
func (h *Histogram) N() int { return h.n }

// OutOfRange returns samples below Lo and at/above Hi.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// Fraction returns the share of samples in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(h.n)
}

// Render draws a horizontal ASCII bar chart of the histogram.
func (h *Histogram) Render(width int, label func(i int) string) string {
	var b strings.Builder
	maxCount := 1
	for _, c := range h.Buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.Buckets {
		bar := strings.Repeat("#", c*width/maxCount)
		fmt.Fprintf(&b, "%12s |%-*s| %6.3f\n", label(i), width, bar, h.Fraction(i))
	}
	return b.String()
}

// Table renders fixed-width text tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.header))
	for i, h := range t.header {
		cells[i] = esc(h)
	}
	b.WriteString(strings.Join(cells, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
