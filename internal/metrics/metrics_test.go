package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestStreamMoments(t *testing.T) {
	s := NewStream()
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("n = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %v", s.Mean())
	}
	// Known dataset: population stddev 2, sample variance 32/7.
	if math.Abs(s.Var()-32.0/7.0) > 1e-12 {
		t.Errorf("var = %v", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestStreamQuantiles(t *testing.T) {
	s := NewStream()
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	// Extremes are exact; interior quantiles are bin-snapped to within
	// one bin-width of the order statistic.
	if q := s.Quantile(0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Errorf("q1 = %v", q)
	}
	if q := s.Quantile(0.5); math.Abs(q-50) > s.Sketch().BinWidth(50) {
		t.Errorf("median = %v", q)
	}
	if q := s.Quantile(0.99); math.Abs(q-99) > s.Sketch().BinWidth(99) {
		t.Errorf("p99 = %v", q)
	}
}

func TestMomentsOnlyQuantileNaN(t *testing.T) {
	s := NewMomentsOnly()
	s.Add(1)
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("quantile without retention should be NaN")
	}
}

func TestEmptyStream(t *testing.T) {
	s := NewStream()
	if s.Mean() != 0 || s.Var() != 0 || s.N() != 0 {
		t.Error("empty stream should be all zero")
	}
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

// Property: mean stays within [min, max] and matches direct computation.
func TestStreamMeanProperty(t *testing.T) {
	f := func(xs []float64) bool {
		s := NewStream()
		var sum float64
		var clean []float64
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			clean = append(clean, x)
			s.Add(x)
			sum += x
		}
		if len(clean) == 0 {
			return true
		}
		want := sum / float64(len(clean))
		if math.Abs(s.Mean()-want) > 1e-6*(1+math.Abs(want)) {
			return false
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, a, b uint8) bool {
		s := NewStream()
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		qa := float64(a%101) / 100
		qb := float64(b%101) / 100
		if qa > qb {
			qa, qb = qb, qa
		}
		return s.Quantile(qa) <= s.Quantile(qb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuantileMatchesSorted(t *testing.T) {
	s := NewStream()
	data := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	for _, x := range data {
		s.Add(x)
	}
	sort.Float64s(data)
	want := data[len(data)/2]
	if got := s.Quantile(0.5); math.Abs(got-want) > s.Sketch().BinWidth(want) {
		t.Errorf("median = %v, exact = %v", got, want)
	}
}

// renderStats renders the permutation-invariant statistics of a stream
// exactly as a canonical report would: integer count, exact min/max, and
// bin-snapped quantiles. Mean/Var are deliberately excluded — Welford
// moments are order-sensitive in their last bits.
func renderStats(s *Stream) string {
	return fmt.Sprintf("n=%d min=%v max=%v q25=%v q50=%v q90=%v q99=%v",
		s.N(), s.Min(), s.Max(),
		s.Quantile(0.25), s.Quantile(0.5), s.Quantile(0.9), s.Quantile(0.99))
}

// Property (the one the city-scale gate relies on): any permutation of
// Adds yields byte-identical rendered stats, because the sketch state is
// integer bin counts and min/max are exact folds.
func TestSketchPermutationInvariance(t *testing.T) {
	f := func(xs []float64, seed uint16) bool {
		var clean []float64
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			clean = append(clean, x)
		}
		if len(clean) == 0 {
			return true
		}
		fwd := NewStream()
		for _, x := range clean {
			fwd.Add(x)
		}
		// A deterministic permutation derived from seed, plus reversal.
		perm := append([]float64(nil), clean...)
		r := uint64(seed) + 1
		for i := len(perm) - 1; i > 0; i-- {
			r = r*6364136223846793005 + 1442695040888963407
			j := int(r % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		shuf := NewStream()
		for _, x := range perm {
			shuf.Add(x)
		}
		rev := NewStream()
		for i := len(clean) - 1; i >= 0; i-- {
			rev.Add(clean[i])
		}
		a, b, c := renderStats(fwd), renderStats(shuf), renderStats(rev)
		return a == b && a == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every sketch quantile is within one bin-width of the exact
// sorted quantile (the order statistic of rank ⌊q·(n−1)⌋), for values
// inside the sketch's representable magnitude range.
func TestSketchQuantileAccuracy(t *testing.T) {
	f := func(raw []uint32, qi uint8) bool {
		if len(raw) == 0 {
			return true
		}
		// Map to a latency-like positive range spanning several octaves.
		var xs []float64
		s := NewStream()
		for _, u := range raw {
			x := float64(u)/16 + 0.25
			xs = append(xs, x)
			s.Add(x)
		}
		sort.Float64s(xs)
		q := float64(qi%101) / 100
		exact := xs[int(q*float64(len(xs)-1))]
		got := s.Quantile(q)
		return math.Abs(got-exact) <= s.Sketch().BinWidth(exact)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Incremental consistency: a stream built by interleaved Adds must agree
// exactly with a fresh stream over the same samples at every step (the
// sketch has no caches to invalidate — state is purely the counts).
func TestSketchIncrementalConsistency(t *testing.T) {
	s := NewStream()
	var data []float64
	for i := 0; i < 200; i++ {
		x := float64((i*7919)%457) - 100
		s.Add(x)
		data = append(data, x)
		if i%13 != 0 {
			continue
		}
		fresh := NewStream()
		for _, v := range data {
			fresh.Add(v)
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			if got, want := s.Quantile(q), fresh.Quantile(q); got != want {
				t.Fatalf("after %d adds: Quantile(%v) = %v, fresh = %v", i+1, q, got, want)
			}
		}
	}
}

// Merging partition-local streams must agree exactly with a single
// global stream over the concatenated samples (integer-count fold).
func TestStreamMergeMatchesGlobal(t *testing.T) {
	global := NewStream()
	var parts []*Stream
	for p := 0; p < 4; p++ {
		parts = append(parts, NewStream())
	}
	for i := 0; i < 1000; i++ {
		x := float64((i*2654435761)%100003) / 7
		global.Add(x)
		parts[i%4].Add(x)
	}
	merged := NewStream()
	for _, p := range parts {
		merged.Merge(p)
	}
	if renderStats(merged) != renderStats(global) {
		t.Errorf("merged:\n%s\nglobal:\n%s", renderStats(merged), renderStats(global))
	}
	if merged.N() != global.N() {
		t.Errorf("n = %d, want %d", merged.N(), global.N())
	}
	if math.Abs(merged.Mean()-global.Mean()) > 1e-9*(1+math.Abs(global.Mean())) {
		t.Errorf("mean = %v, want %v", merged.Mean(), global.Mean())
	}
	if math.Abs(merged.Var()-global.Var()) > 1e-6*(1+global.Var()) {
		t.Errorf("var = %v, want %v", merged.Var(), global.Var())
	}
}

// BenchmarkStreamQuantile measures the per-quantile cost on a sketch-
// backed stream — the report-generation pattern (E8/E10 query several
// quantiles per stream, per report). The sketch walk is O(bins), with
// zero allocation and no dependence on the sample count.
func BenchmarkStreamQuantile(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(benchSize(n), func(b *testing.B) {
			s := NewStream()
			for i := 0; i < n; i++ {
				s.Add(float64((i * 2654435761) % 1000003))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Quantile(float64(i%100) / 100)
			}
		})
	}
}

// BenchmarkStreamAdd measures the streaming-ingest hot path (Welford
// update + sketch bin increment); city-scale runs push millions of
// samples through it.
func BenchmarkStreamAdd(b *testing.B) {
	s := NewStream()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(float64(i % 997))
	}
}

func benchSize(n int) string {
	if n >= 1000 {
		return fmt.Sprintf("n%dk", n/1000)
	}
	return fmt.Sprintf("n%d", n)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for i := 0; i < 10; i++ {
		h.Add(float64(i))
	}
	h.Add(-1)
	h.Add(10)
	h.Add(99)
	for i, want := range []int{2, 2, 2, 2, 2} {
		if h.Buckets[i] != want {
			t.Errorf("bucket %d = %d", i, h.Buckets[i])
		}
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("under/over = %d/%d", under, over)
	}
	if h.N() != 13 {
		t.Errorf("n = %d", h.N())
	}
	if f := h.Fraction(0); math.Abs(f-2.0/13) > 1e-12 {
		t.Errorf("fraction = %v", f)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	h.Add(0)
	h.Add(1)
	h.Add(1)
	out := h.Render(20, func(i int) string { return string(rune('a' + i)) })
	if !strings.Contains(out, "a") || !strings.Contains(out, "#") {
		t.Errorf("render output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("lines = %d", len(lines))
	}
}

// Boundary samples must land in the bucket whose half-open range starts
// at the edge. The old float-multiply index ((x-Lo)/(Hi-Lo)*n) rounds:
// e.g. with [0,3) and 3 buckets, x=1.0 gave 1/3*3 = 0.999... → bucket 0.
// The edge-comparison index must place every exact edge value correctly.
func TestHistogramBoundaryBuckets(t *testing.T) {
	cases := []struct {
		lo, hi  float64
		buckets int
		x       float64
		want    int // bucket index; -1 under, -2 over
	}{
		{0, 3, 3, 0, 0},
		{0, 3, 3, 1, 1}, // the float-multiply mis-bucket case
		{0, 3, 3, 2, 2},
		{0, 3, 3, 2.999, 2},
		{0, 3, 3, 3, -2},
		{0, 3, 3, -0.001, -1},
		{0, 7, 7, 5, 5},
		{0, 7, 7, 6, 6},
		{0.5, 2, 3, 1.0, 1},
		{0.5, 2, 3, 1.5, 2},
		{-3, 3, 6, -1, 2},
		{-3, 3, 6, 0, 3},
		{-3, 3, 6, 1, 4},
		{1e9, 4e9, 3, 2e9, 1},
		{1e9, 4e9, 3, 3e9, 2},
	}
	for _, c := range cases {
		h := NewHistogram(c.lo, c.hi, c.buckets)
		h.Add(c.x)
		under, over := h.OutOfRange()
		switch c.want {
		case -1:
			if under != 1 {
				t.Errorf("[%v,%v)/%d Add(%v): want under", c.lo, c.hi, c.buckets, c.x)
			}
		case -2:
			if over != 1 {
				t.Errorf("[%v,%v)/%d Add(%v): want over", c.lo, c.hi, c.buckets, c.x)
			}
		default:
			if h.Buckets[c.want] != 1 {
				got := -1
				for i, n := range h.Buckets {
					if n == 1 {
						got = i
					}
				}
				t.Errorf("[%v,%v)/%d Add(%v): bucket %d, want %d", c.lo, c.hi, c.buckets, c.x, got, c.want)
			}
		}
	}
}

// Every sample inside [Lo, Hi) must land in exactly one bucket whose
// edge range contains it, for arbitrary bounds.
func TestHistogramBucketContainsProperty(t *testing.T) {
	f := func(rawLo, span float64, nb uint8, raw []float64) bool {
		if math.IsNaN(rawLo) || math.IsInf(rawLo, 0) || math.Abs(rawLo) > 1e12 {
			return true
		}
		if math.IsNaN(span) || math.IsInf(span, 0) {
			return true
		}
		span = math.Abs(span)
		if span < 1e-9 || span > 1e12 {
			return true
		}
		n := int(nb%32) + 1
		h := NewHistogram(rawLo, rawLo+span, n)
		for _, f := range raw {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				continue
			}
			// Fold the sample into [Lo, Hi).
			x := rawLo + math.Mod(math.Abs(f), span)
			if x < rawLo || x >= rawLo+span {
				continue
			}
			before := append([]int(nil), h.Buckets...)
			h.Add(x)
			hit := -1
			for i := range h.Buckets {
				if h.Buckets[i] != before[i] {
					if hit != -1 {
						return false // two buckets changed
					}
					hit = i
				}
			}
			if hit == -1 {
				return false // fell out of range despite x in [Lo,Hi)
			}
			lo := h.edges[hit]
			hi := h.edges[hit+1]
			if x < lo || x >= hi {
				return false // landed in a bucket not containing it
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("alpha", 1.5)
	tb.Row("b", 22)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") || !strings.Contains(out, "22") {
		t.Errorf("table:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Errorf("lines = %d", len(lines))
	}
	// Columns aligned: header and rows share prefix width.
	if len(lines[0]) == 0 || lines[1][0] != '-' {
		t.Errorf("separator missing:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.Row("x,y", `q"u`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"q""u"`) {
		t.Errorf("csv = %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("csv header = %q", csv)
	}
}
