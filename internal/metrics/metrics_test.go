package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestStreamMoments(t *testing.T) {
	s := NewStream()
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("n = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %v", s.Mean())
	}
	// Known dataset: population stddev 2, sample variance 32/7.
	if math.Abs(s.Var()-32.0/7.0) > 1e-12 {
		t.Errorf("var = %v", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestStreamQuantiles(t *testing.T) {
	s := NewStream()
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if q := s.Quantile(0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Errorf("q1 = %v", q)
	}
	if q := s.Quantile(0.5); math.Abs(q-50.5) > 1e-9 {
		t.Errorf("median = %v", q)
	}
	if q := s.Quantile(0.99); q > 100 || q < 99 {
		t.Errorf("p99 = %v", q)
	}
}

func TestMomentsOnlyQuantileNaN(t *testing.T) {
	s := NewMomentsOnly()
	s.Add(1)
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("quantile without retention should be NaN")
	}
}

func TestEmptyStream(t *testing.T) {
	s := NewStream()
	if s.Mean() != 0 || s.Var() != 0 || s.N() != 0 {
		t.Error("empty stream should be all zero")
	}
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

// Property: mean stays within [min, max] and matches direct computation.
func TestStreamMeanProperty(t *testing.T) {
	f := func(xs []float64) bool {
		s := NewStream()
		var sum float64
		var clean []float64
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			clean = append(clean, x)
			s.Add(x)
			sum += x
		}
		if len(clean) == 0 {
			return true
		}
		want := sum / float64(len(clean))
		if math.Abs(s.Mean()-want) > 1e-6*(1+math.Abs(want)) {
			return false
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, a, b uint8) bool {
		s := NewStream()
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		qa := float64(a%101) / 100
		qb := float64(b%101) / 100
		if qa > qb {
			qa, qb = qb, qa
		}
		return s.Quantile(qa) <= s.Quantile(qb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuantileMatchesSorted(t *testing.T) {
	s := NewStream()
	data := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	for _, x := range data {
		s.Add(x)
	}
	sort.Float64s(data)
	if s.Quantile(0.5) != data[len(data)/2] {
		t.Errorf("median = %v", s.Quantile(0.5))
	}
}

// The sorted cache must be invalidated by Add: interleaving Add and
// Quantile has to give the same answers as a fresh stream at every step.
func TestQuantileCacheInvalidation(t *testing.T) {
	s := NewStream()
	var data []float64
	for i := 0; i < 200; i++ {
		// Deterministic, unordered inputs.
		x := float64((i*7919)%457) - 100
		s.Add(x)
		data = append(data, x)
		if i%3 != 0 {
			continue
		}
		fresh := NewStream()
		for _, v := range data {
			fresh.Add(v)
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			if got, want := s.Quantile(q), fresh.Quantile(q); got != want {
				t.Fatalf("after %d adds: Quantile(%v) = %v, fresh = %v", i+1, q, got, want)
			}
		}
		// Querying again without Add must hit the cache and agree.
		if s.Quantile(0.5) != fresh.Quantile(0.5) {
			t.Fatalf("cached re-query diverged after %d adds", i+1)
		}
	}
}

// BenchmarkStreamQuantile measures the per-quantile cost on a stream that
// is no longer growing — the report-generation pattern (E8/E10 query
// several quantiles per stream, per report). With the sorted cache this
// is O(1) amortized instead of a full copy+sort per call.
func BenchmarkStreamQuantile(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(benchSize(n), func(b *testing.B) {
			s := NewStream()
			for i := 0; i < n; i++ {
				s.Add(float64((i * 2654435761) % 1000003))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Quantile(float64(i%100) / 100)
			}
		})
	}
}

// BenchmarkStreamQuantileResort is the worst case: every query follows an
// Add, so the cache never helps and each call pays the sort.
func BenchmarkStreamQuantileResort(b *testing.B) {
	s := NewStream()
	for i := 0; i < 1000; i++ {
		s.Add(float64((i * 2654435761) % 1000003))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(float64(i % 997))
		s.Quantile(0.99)
	}
}

func benchSize(n int) string {
	if n >= 1000 {
		return fmt.Sprintf("n%dk", n/1000)
	}
	return fmt.Sprintf("n%d", n)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for i := 0; i < 10; i++ {
		h.Add(float64(i))
	}
	h.Add(-1)
	h.Add(10)
	h.Add(99)
	for i, want := range []int{2, 2, 2, 2, 2} {
		if h.Buckets[i] != want {
			t.Errorf("bucket %d = %d", i, h.Buckets[i])
		}
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("under/over = %d/%d", under, over)
	}
	if h.N() != 13 {
		t.Errorf("n = %d", h.N())
	}
	if f := h.Fraction(0); math.Abs(f-2.0/13) > 1e-12 {
		t.Errorf("fraction = %v", f)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	h.Add(0)
	h.Add(1)
	h.Add(1)
	out := h.Render(20, func(i int) string { return string(rune('a' + i)) })
	if !strings.Contains(out, "a") || !strings.Contains(out, "#") {
		t.Errorf("render output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("lines = %d", len(lines))
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("alpha", 1.5)
	tb.Row("b", 22)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") || !strings.Contains(out, "22") {
		t.Errorf("table:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Errorf("lines = %d", len(lines))
	}
	// Columns aligned: header and rows share prefix width.
	if len(lines[0]) == 0 || lines[1][0] != '-' {
		t.Errorf("separator missing:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.Row("x,y", `q"u`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"q""u"`) {
		t.Errorf("csv = %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("csv header = %q", csv)
	}
}
