package scenario

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ara"
	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/monitor"
	"repro/internal/simnet"
	"repro/internal/someip"
	"repro/internal/trace"
)

// Wire constants of the compiled client/server world. They are part of
// the canonical world description: every platform offers its compute
// service on Port and runs its local-noise sink on NoisePort.
const (
	// ServiceBase is the SOME/IP service ID of platform 0's compute
	// service; platform i offers ServiceBase+i.
	ServiceBase = someip.ServiceID(0x2100)
	// Port is the compute service's endpoint port on every platform.
	Port = 40000
	// NoisePort is the local load generator's sink port.
	NoisePort = 41000
)

// HostID returns the simnet host ID platform i receives during world
// construction, in every execution mode: hosts are added in platform
// order and both Network and Cluster allocate IDs sequentially from 1.
// Fault plans that target specific platform links are built from it.
func HostID(i int) uint16 { return uint16(i) + 1 }

// HostName returns platform i's canonical host name.
func HostName(i int) string { return fmt.Sprintf("plat%02d", i) }

const fnvOffset uint64 = 14695981039346656037

func fnvMix(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	return h
}

// World is a compiled scenario: the execution substrate (one kernel or
// a federation), the network (or cluster), the platform hosts and
// runtimes, the topology edges the clients follow, and the per-platform
// stats the workload folds its observable behaviour into. Run executes
// it to completion.
type World struct {
	// Spec is the normalized spec the world was compiled from.
	Spec Spec
	// Edges is the generated call graph: Edges[i] lists the platforms
	// client i calls each round.
	Edges [][]int
	// Hosts are the platform hosts in platform order.
	Hosts []*simnet.Host
	// Runtimes are the platforms' ara runtimes in platform order (the
	// original incarnations; a crash-plan restart builds a successor
	// that is not recorded here).
	Runtimes []*ara.Runtime
	// Stats accumulates the canonical per-platform report rows.
	Stats []PlatformStats

	fed     *des.Federation
	cluster *simnet.Cluster
	single  *des.Kernel
	net     *simnet.Network
	// recorders hold one trace recorder per kernel (a single entry on
	// the classic substrate, one per partition under a federation).
	recorders []*trace.Recorder
	// engines hold one monitor engine per kernel when the spec's
	// monitors block is set, teed onto the same tracer hook as the
	// recorder (see buildSubstrate).
	engines []*monitor.Engine
	// monitorsDone marks that the engines have been finished (flushed);
	// Verdicts sets it so repeated calls stay idempotent.
	monitorsDone bool
}

// Build compiles the spec into a runnable world. Partitions ≤ 1
// selects the classic single-kernel substrate; larger values shard the
// platforms round-robin over that many federated kernels. For a fixed
// (Spec minus Partitions) the world's behaviour — and with it
// StatsReport(Stats) after Run — is identical for every partition
// count; only wall-clock time and mode-internal diagnostics differ.
//
// Construction order is part of the determinism contract and is fixed:
// substrate, hosts in platform order, then all servers, then all
// clients and noise generators, then the crash plan.
func Build(spec Spec) (*World, error) {
	norm, err := spec.normalized()
	if err != nil {
		return nil, err
	}
	edges, err := Topology(norm.Topology, norm.Platforms, norm.Degree, norm.Seed)
	if err != nil {
		return nil, err
	}
	w := &World{Spec: norm, Edges: edges}
	if err := w.buildSubstrate(); err != nil {
		return nil, err
	}

	n := norm.Platforms
	w.Stats = make([]PlatformStats, n)
	w.Runtimes = make([]*ara.Runtime, n)

	// Pass 1: servers. Every platform offers its compute service and
	// binds the local-noise sink. Scheduling order within each kernel is
	// part of the determinism contract, so construction order is fixed:
	// all servers before all clients.
	for i := 0; i < n; i++ {
		rt, err := w.buildServer(i, fmt.Sprintf("mesh%02d", i))
		if err != nil {
			return nil, err
		}
		w.Runtimes[i] = rt
	}

	// Pass 2: clients and noise generators.
	for i := 0; i < n; i++ {
		i := i
		host := w.Hosts[i]
		w.spawnClient(w.Runtimes[i], i, norm.Rounds, 0)

		// Local load generator: loopback datagrams on this platform only,
		// so its cost parallelizes across partitions without changing any
		// cross-platform interaction. If the platform crashes, its source
		// endpoint closes and the remaining sends are suppressed.
		if norm.NoiseEvents > 0 {
			src := host.MustBind(NoisePort + 1)
			sinkAddr := simnet.Addr{Host: host.ID(), Port: NoisePort}
			k := w.Runtimes[i].Kernel()
			// SpawnLocal declares (and the kernel enforces) that the noise
			// chain never emits cross-partition, so the federation excludes
			// its dense event timeline from earliest-output-time bounds —
			// without it, 20µs noise ticks pin every partition's bound to
			// its window end and force lookahead-cadence grants.
			k.SpawnLocal(fmt.Sprintf("noise%02d", i), func(p *des.Process) {
				var buf [4]byte
				for m := 0; m < norm.NoiseEvents; m++ {
					binary.BigEndian.PutUint32(buf[:], uint32(m))
					src.Send(sinkAddr, buf[:])
					p.Sleep(norm.NoiseInterval)
				}
			})
		}
	}

	// Pass 3: the crash plan. The schedule is installed up front as
	// ordinary kernel events, so it is ordered deterministically against
	// all traffic in every execution mode.
	if cp := norm.Crash; cp != nil {
		host := w.Hosts[cp.Platform]
		host.Crash(cp.At)
		// Lifecycle trace points ride the platform's own kernel so the
		// crash/restart/bind records form one component stream — the
		// rebound-within monitor pairs restart with the re-offer's bind.
		lk := w.Runtimes[cp.Platform].Kernel()
		lifeLabel := HostName(cp.Platform) + ".life"
		lk.At(cp.At, func() { lk.Trace(lifeLabel, trace.KindCrash, nil) })
		if cp.RestartAt > cp.At {
			host.Restart(cp.RestartAt, func() {
				lk.Trace(lifeLabel, trace.KindRestart, nil)
				// Rebuild the platform's stack from scratch, as a rebooted
				// AP node would: fresh runtime (distinct name — stream
				// labels must not collide with the dead incarnation),
				// skeleton re-offered, reborn client.
				rt, err := w.buildServer(cp.Platform, fmt.Sprintf("mesh%02dr", cp.Platform))
				if err != nil {
					panic(err)
				}
				w.spawnClient(rt, cp.Platform, cp.RebornRounds, 0x7eb0)
			})
		}
	}
	return w, nil
}

// traceCapacity bounds the trace ring for one run: every client call
// yields exactly one req record and one call (or call-err) record plus
// at most one serve record, every noise delivery one record, every
// platform one lifecycle bind, plus slack for reborn clients and the
// crash plan. Complete traces are a determinism requirement (eviction
// is mode-dependent), so the estimate is computed from the actual
// generated edges — Degree alone undercounts the Full shape, whose
// clients call all n-1 peers — and errs high (2× over the exact
// three-records-per-call count).
func (w *World) traceCapacity() int {
	spec := w.Spec
	rounds := spec.Rounds
	if spec.Crash != nil && spec.Crash.RebornRounds > rounds {
		rounds = spec.Crash.RebornRounds
	}
	targets := 0
	for _, edges := range w.Edges {
		targets += len(edges)
	}
	return 6*rounds*targets + spec.Platforms*(spec.NoiseEvents+1) + 256
}

// traceCapacityPartition bounds the trace ring for the platforms pinned
// to one partition (platform i lives on partition i % partitions): the
// partition records its own clients' req and call/call-err records
// (outbound edges, two records per call), its own servers' serve
// records (inbound edges), its own lifecycle binds and its own noise
// deliveries. Sized per partition instead of handing every recorder
// the full global capacity, the federation's total ring memory matches
// the single-kernel ring instead of multiplying it by the partition
// count — with the same 2× slack over the exact record count, because
// eviction anywhere is a mode-dependence bug.
func (w *World) traceCapacityPartition(part, partitions int) int {
	spec := w.Spec
	rounds := spec.Rounds
	if spec.Crash != nil && spec.Crash.RebornRounds > rounds {
		rounds = spec.Crash.RebornRounds
	}
	out, in, noisy := 0, 0, 0
	for i, edges := range w.Edges {
		if i%partitions == part {
			out += len(edges)
			noisy++
		}
		for _, j := range edges {
			if j%partitions == part {
				in++
			}
		}
	}
	return 2*rounds*(2*out+in) + noisy*(spec.NoiseEvents+1) + 256
}

// buildSubstrate creates the kernel(s), the network (or cluster), the
// per-kernel trace recorders and the platform hosts.
func (w *World) buildSubstrate() error {
	spec := w.Spec
	netCfg := simnet.Config{
		DefaultLatency: simnet.FixedLatency(spec.LinkLatency),
		SwitchDelay:    spec.SwitchDelay,
		Faults:         spec.Faults,
	}
	// newEngine builds one monitor engine per kernel when the spec has
	// a monitors block; the engine tees onto the recorder's tracer hook
	// so recording and online verification observe the identical
	// stream. Each engine gets freshly built (stateful) monitors. The
	// return type is the interface so "no monitors" is an untyped nil
	// that TeeTracer drops.
	newEngine := func() des.Tracer {
		if spec.Monitors == nil {
			return nil
		}
		eng := monitor.NewEngine(spec.Monitors.Build()...)
		w.engines = append(w.engines, eng)
		return eng
	}
	if spec.Partitions <= 1 {
		w.single = des.NewKernel(spec.Seed)
		rec := trace.NewRecorder(w.traceCapacity())
		w.single.SetTracer(des.TeeTracer(rec, newEngine()))
		w.recorders = []*trace.Recorder{rec}
		w.net = simnet.NewNetwork(w.single, netCfg)
		for i := 0; i < spec.Platforms; i++ {
			w.Hosts = append(w.Hosts, w.net.AddHost(HostName(i), nil))
		}
		return nil
	}
	w.fed = des.NewFederation(spec.Seed, spec.Partitions)
	for i := 0; i < w.fed.Partitions(); i++ {
		rec := trace.NewRecorder(w.traceCapacityPartition(i, spec.Partitions))
		w.fed.Kernel(i).SetTracer(des.TeeTracer(rec, newEngine()))
		w.recorders = append(w.recorders, rec)
	}
	// Cross-partition traffic in a compiled world flows only along call
	// edges (requests out, responses back): noise is loopback-local and
	// SD multicast is per-partition by the Cluster contract. Declaring
	// exactly those partition routes gives the federation a sparse
	// lookahead matrix, so partitions whose platforms never talk stop
	// constraining each other's grants.
	allowed := make([][]bool, spec.Partitions)
	for i := range allowed {
		allowed[i] = make([]bool, spec.Partitions)
	}
	for i, edges := range w.Edges {
		pi := i % spec.Partitions
		for _, j := range edges {
			pj := j % spec.Partitions
			if pi != pj {
				allowed[pi][pj] = true
				allowed[pj][pi] = true
			}
		}
	}
	cluster, err := simnet.NewClusterRoutes(w.fed, netCfg, func(from, to int) bool {
		return allowed[from][to]
	})
	if err != nil {
		return err
	}
	w.cluster = cluster
	for i := 0; i < spec.Platforms; i++ {
		w.Hosts = append(w.Hosts, cluster.AddHost(i%spec.Partitions, HostName(i), nil))
	}
	return nil
}

// Iface returns platform i's compute service interface.
func Iface(i int) *ara.ServiceInterface {
	return &ara.ServiceInterface{
		Name:  fmt.Sprintf("Mesh%02d", i),
		ID:    ServiceBase + someip.ServiceID(i),
		Major: 1,
		Methods: []ara.MethodSpec{
			{ID: 1, Name: "compute"},
		},
	}
}

// buildServer creates platform i's runtime, compute skeleton and
// local-noise sink. It is used for initial construction and again by
// the crash plan's restart path (with a distinct runtime name, so RNG
// stream labels never collide between the two incarnations). Served
// counts and the noise hash continue across a restart: the stats carry
// the platform's whole history.
func (w *World) buildServer(i int, name string) (*ara.Runtime, error) {
	host := w.Hosts[i]
	rows := w.Stats
	spec := w.Spec
	zeroJitter := func(*des.Rand) logical.Duration { return 0 }
	rt, err := ara.NewRuntime(host, ara.Config{
		Name: name,
		Port: Port,
		Exec: ara.ExecConfig{Workers: 2, Serialized: true, DispatchJitter: zeroJitter},
	})
	if err != nil {
		return nil, err
	}
	sk, err := rt.NewSkeleton(Iface(i), 1)
	if err != nil {
		return nil, err
	}
	k := rt.Kernel()
	serveLabel := HostName(i) + ".server"
	lifeLabel := HostName(i) + ".life"
	if err := sk.Handle("compute", func(c *ara.Ctx, args []byte) ([]byte, error) {
		if corruptCheck != nil && corruptCheck(args) {
			// The integrity check failed without a structural refusal:
			// emit the corruption sentinel the no-silent-corruption
			// monitor watches for. Only the test hook ever sets the
			// check — the DEAR model refuses corrupt inputs structurally,
			// so production handlers never reach this line.
			k.Trace(serveLabel, trace.KindCorrupt, args)
		}
		rows[i].Served++
		h := fnvOffset
		for _, by := range args {
			h = fnvMix(h, uint64(by))
		}
		h = fnvMix(h, uint64(i))
		h = fnvMix(h, uint64(rows[i].Served))
		if chaosServeDraw != nil {
			h = fnvMix(h, chaosServeDraw())
		}
		if spec.WorkSpread > 0 {
			c.Exec(spec.WorkBase + logical.Duration(h%uint64(spec.WorkSpread)))
		} else if spec.WorkBase > 0 {
			c.Exec(spec.WorkBase)
		}
		var out [8]byte
		binary.BigEndian.PutUint64(out[:], h)
		// The trace point sits at computation completion: time and
		// result are mode-independent, and the per-component sequence
		// follows the platform's deterministic serve order.
		k.Trace(serveLabel, trace.KindServe, out[:])
		return out[:], nil
	}); err != nil {
		return nil, err
	}
	if k.Now() == 0 {
		k.At(0, func() {
			sk.Offer()
			// The bind record closes a rebound-within obligation on the
			// lifecycle component. The initial bind has no preceding
			// restart, so the monitor ignores it; the restart path's bind
			// (below, k.Now() > 0) is the one that discharges.
			k.Trace(lifeLabel, trace.KindBind, nil)
		})
	} else {
		sk.Offer()
		k.Trace(lifeLabel, trace.KindBind, nil)
	}

	// Local noise sink: dense intra-platform load, hashed into the
	// report so all modes must schedule it identically.
	sink := host.MustBind(NoisePort)
	noiseLabel := HostName(i) + ".noise"
	if rows[i].NoiseHash == 0 {
		rows[i].NoiseHash = fnvOffset
	}
	sink.OnReceive(func(dg simnet.Datagram) {
		h := rows[i].NoiseHash
		h = fnvMix(h, uint64(dg.SentAt))
		h = fnvMix(h, uint64(k.Now()))
		h = fnvMix(h, uint64(binary.BigEndian.Uint32(dg.Payload)))
		rows[i].NoiseHash = h
		// Noise deliveries carry the seeded local-load timing; tracing
		// them makes the trace as seed-sensitive as the report.
		k.Trace(noiseLabel, trace.KindNoise, dg.Payload)
	})
	return rt, nil
}

// spawnClient starts platform i's client process: `rounds` call rounds
// over its topology targets, folding every response — and every
// observable failure — into the platform's stats. If the platform
// crashes, the client exits at the first call it observes the outage
// on (a dead process issues nothing); the crash plan's reborn client
// picks up after the restart. marker distinguishes incarnations in the
// hash.
func (w *World) spawnClient(rt *ara.Runtime, i, rounds int, marker uint64) {
	spec := w.Spec
	rows := w.Stats
	host := w.Hosts[i]

	// Static peer configuration (the federation has no cross-partition
	// service discovery, mirroring the UDP deployment path).
	targets := w.Edges[i]
	proxies := make([]*ara.Proxy, 0, len(targets))
	for _, j := range targets {
		proxies = append(proxies, rt.StaticProxy(Iface(j), 1,
			simnet.Addr{Host: w.Hosts[j].ID(), Port: Port}))
	}

	// Deterministic per-client skew keeps request arrivals at any
	// server from colliding at identical timestamps, where single- and
	// multi-kernel tie-breaking could legitimately differ. The timeout
	// gets the same treatment so expiry events never tie across
	// platforms either.
	phase := logical.Duration(i)*977*logical.Microsecond + logical.Duration(i)*13
	gap := spec.Gap + logical.Duration(i)*1013
	timeout := spec.CallTimeout
	if timeout > 0 {
		timeout += logical.Duration(i) * 131
	}

	if rows[i].RespHash == 0 {
		rows[i].RespHash = fnvOffset
	}
	k := rt.Kernel()
	callLabel := HostName(i) + ".client"
	rt.Spawn("client", func(c *ara.Ctx) {
		c.Exec(phase)
		var req [12]byte
		for round := 0; round < rounds; round++ {
			if host.Down() {
				// The platform died under us: record the exit and stop —
				// a crashed process issues no further calls.
				rows[i].RespHash = fnvMix(rows[i].RespHash, 0xc0a5)
				return
			}
			for t, px := range proxies {
				binary.BigEndian.PutUint16(req[0:], uint16(i))
				binary.BigEndian.PutUint16(req[2:], uint16(targets[t]))
				binary.BigEndian.PutUint32(req[4:], uint32(round))
				binary.BigEndian.PutUint32(req[8:], uint32(t))
				// The request-issue record opens the responded-within
				// obligation its later call/call-err record discharges —
				// same component, so the pairing is mode-independent.
				k.Trace(callLabel, trace.KindReq, req[:])
				t0 := c.Now()
				fut := px.Call("compute", req[:])
				var resp []byte
				var err error
				if timeout > 0 {
					resp, err = fut.GetTimeout(c.Process(), timeout)
				} else {
					resp, err = fut.Get(c.Process())
				}
				if err != nil {
					// Observable, never silent: fold the failure — and
					// which call it was — into the report.
					rows[i].Errors++
					h := rows[i].RespHash
					h = fnvMix(h, 0xdead)
					h = fnvMix(h, marker)
					h = fnvMix(h, uint64(targets[t]))
					h = fnvMix(h, uint64(round))
					rows[i].RespHash = h
					k.Trace(callLabel, trace.KindCallErr, req[:])
					continue
				}
				rtt := int64(c.Now() - t0)
				k.Trace(callLabel, trace.KindCall, resp)
				rows[i].Calls++
				h := rows[i].RespHash
				h = fnvMix(h, marker)
				h = fnvMix(h, uint64(targets[t]))
				h = fnvMix(h, binary.BigEndian.Uint64(resp))
				h = fnvMix(h, uint64(rtt))
				rows[i].RespHash = h
				rows[i].LatSumNs += rtt
				if rtt > rows[i].LatMaxNs {
					rows[i].LatMaxNs = rtt
				}
			}
			c.Exec(gap)
		}
	})
}

// Run executes the world to completion and shuts the substrate down.
func (w *World) Run() {
	if w.fed != nil {
		w.fed.RunAll()
		w.fed.Shutdown()
		return
	}
	w.single.RunAll()
	w.single.Shutdown()
}

// Describe renders the world's canonical, mode-independent description
// (see the package-level Describe).
func (w *World) Describe() string {
	d, err := Describe(w.Spec)
	if err != nil {
		// The spec was normalized at Build time; it cannot fail here.
		panic(err)
	}
	return d
}

// Verdicts finishes the per-kernel monitor engines (flushing pending
// obligations — idempotent, so repeated calls return the same result)
// and merges their verdicts into the mode-independent whole. It
// returns nil when the spec has no monitors block. Call it after Run.
func (w *World) Verdicts() []monitor.Verdict {
	if len(w.engines) == 0 {
		return nil
	}
	if !w.monitorsDone {
		w.monitorsDone = true
		for _, e := range w.engines {
			e.Finish()
		}
	}
	groups := make([][]monitor.Verdict, len(w.engines))
	for i, e := range w.engines {
		groups[i] = e.Verdicts()
	}
	return monitor.MergeVerdicts(groups...)
}

// Trace merges the per-kernel recorders into the canonical logical
// event trace of the run. The trace is mode-independent: byte-
// identical (after encoding) for every partition count and GOMAXPROCS
// value, like the canonical report — the trace property tests pin
// this. Call it after Run.
func (w *World) Trace() *trace.Trace {
	return trace.Merge(w.recorders...)
}

// Partitions returns the number of partition kernels executing the
// world (1 on the single-kernel substrate).
func (w *World) Partitions() int {
	if w.fed != nil {
		return w.fed.Partitions()
	}
	return 1
}

// CoordRounds returns the federation's coordination-round count (zero
// on a single kernel). Mode-dependent — never part of canonical
// reports.
func (w *World) CoordRounds() uint64 {
	if w.fed != nil {
		return w.fed.Rounds()
	}
	return 0
}

// CoordGrants returns the federation's total dispatched-window count
// (zero on a single kernel). Mode- and schedule-dependent — never part
// of canonical reports.
func (w *World) CoordGrants() uint64 {
	if w.fed != nil {
		return w.fed.Grants()
	}
	return 0
}

// CoordParkedNs returns cumulative wall-clock nanoseconds partitions
// with pending work spent parked between windows (zero on a single
// kernel) — the observable sync tax. Machine-dependent.
func (w *World) CoordParkedNs() int64 {
	if w.fed != nil {
		return w.fed.ParkedNs()
	}
	return 0
}

// EventsFired returns the total kernel events executed. Mode-dependent.
func (w *World) EventsFired() uint64 {
	if w.fed != nil {
		return w.fed.EventsFired()
	}
	return w.single.EventsFired()
}

// Delivered returns the substrate's delivered-datagram count.
// Mode-dependent (SD multicast fan-out is per-partition).
func (w *World) Delivered() uint64 {
	if w.cluster != nil {
		return w.cluster.Delivered()
	}
	return w.net.Delivered()
}

// Dropped returns the substrate's dropped-datagram count.
// Mode-dependent.
func (w *World) Dropped() uint64 {
	if w.cluster != nil {
		return w.cluster.Dropped()
	}
	return w.net.Dropped()
}

// ControlPlane returns the substrate's control-plane counters (see
// simnet.Network.ControlPlane): multicast/topic send calls and their
// total fan-out. With interest-based SD routing the fan-out grows with
// declared interest rather than platforms², which is what the
// city-scale acceptance gate measures. Mode-dependent (fan-out is
// per-partition).
func (w *World) ControlPlane() (sends, fanout uint64) {
	if w.cluster != nil {
		return w.cluster.ControlPlane()
	}
	return w.net.ControlPlane()
}
