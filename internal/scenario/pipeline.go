package scenario

import (
	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/simnet"
)

// This file is the second compiler entry point: the brake-assistant
// substrate family (experiments E3–E5 and the E11 pipeline contrast).
// The stock and DEAR variants in internal/apd used to duplicate this
// wiring — kernel, jitter-latency network, platform hosts with drawn
// or fixed drifting clocks, and the camera frame source — and now both
// declare it as a PipelineSpec.
//
// Determinism note: the builder preserves the historical random-draw
// order exactly. Platform drifts draw from the instance stream in
// declaration order before anything else consumes it; AddPlatform
// draws at call time, so a caller can interleave its own instance-
// stream draws (the Figure 5 activation phases) between the initial
// platforms and a later one — the order the pre-scenario harnesses
// used, which the golden tests pin byte-for-byte.

// ClockSpec declares a platform's local clock.
type ClockSpec struct {
	// DrawDrift draws DriftPPB from the world's instance stream as
	// N(0, DriftSigmaPPB) at build time (the Figure 5 policy: each
	// experiment instance gets fresh oscillator errors).
	DrawDrift bool
	// DriftSigmaPPB is the drawn drift's standard deviation.
	DriftSigmaPPB float64
	// DriftPPB is the fixed oscillator error when DrawDrift is false.
	DriftPPB int64
	// SyncBound enables periodic clock synchronization with the given
	// bound (zero = free-running).
	SyncBound logical.Duration
	// SyncPeriod is the resynchronization period.
	SyncPeriod logical.Duration
	// SyncStream labels the kernel RNG stream driving sync jitter;
	// empty passes a nil stream.
	SyncStream string
}

// PlatformSpec declares one pipeline platform.
type PlatformSpec struct {
	// Name is the simnet host name (also used in log/trace output).
	Name string
	// Clock declares the platform's local clock.
	Clock ClockSpec
}

// JitterLink declares the network's default latency model: base
// propagation delay plus per-byte serialization cost plus truncated
// Gaussian jitter drawn from a kernel-owned stream.
type JitterLink struct {
	// Base is the fixed propagation delay.
	Base logical.Duration
	// PerByte is the serialization cost per payload byte.
	PerByte logical.Duration
	// Sigma is the jitter's standard deviation.
	Sigma logical.Duration
	// Stream labels the kernel RNG stream the jitter draws from.
	Stream string
}

// PipelineSpec declares the brake-assistant substrate: platforms with
// drifting clocks behind a jitter-latency switch, plus the label of
// the instance stream per-instance randomness (drifts, activation
// phases) draws from.
type PipelineSpec struct {
	// InstanceStream labels the kernel stream for per-instance draws;
	// empty means the world has no instance stream (the DEAR variant).
	InstanceStream string
	// Link is the network's default latency model.
	Link JitterLink
	// SwitchDelay is the store-and-forward switch delay.
	SwitchDelay logical.Duration
	// Faults installs a deterministic fault schedule (nil = benign).
	Faults *simnet.FaultPlan
	// Platforms are the initial platforms, built in order.
	Platforms []PlatformSpec
}

// PipelineWorld is a compiled pipeline substrate. The application
// stack (SWCs, reactors, transactors) is installed by the caller —
// that is measurement code, not deployment.
type PipelineWorld struct {
	// Kernel is the simulation kernel.
	Kernel *des.Kernel
	// Net is the simulated network.
	Net *simnet.Network
	// Hosts are the platform hosts in declaration order (AddPlatform
	// appends).
	Hosts []*simnet.Host
	// InstanceRand is the per-instance stream (nil when the spec names
	// none). Drift draws consumed it in platform order; callers
	// continue drawing from the same object.
	InstanceRand *des.Rand
}

// BuildPipeline compiles the pipeline substrate for the seed: kernel,
// network with the jitter link model, and the declared platforms in
// order (drawing any DrawDrift clocks from the instance stream).
func BuildPipeline(seed uint64, spec PipelineSpec) *PipelineWorld {
	k := des.NewKernel(seed)
	w := &PipelineWorld{Kernel: k}
	if spec.InstanceStream != "" {
		w.InstanceRand = k.Rand(spec.InstanceStream)
	}
	// Drift draws precede network construction — the historical order;
	// label-derived streams are independent, but within the instance
	// stream the draw sequence is part of the golden contract.
	drifts := make([]int64, len(spec.Platforms))
	for i, p := range spec.Platforms {
		drifts[i] = w.drift(p.Clock)
	}
	w.Net = simnet.NewNetwork(k, simnet.Config{
		DefaultLatency: &simnet.JitterLatency{
			Base:    spec.Link.Base,
			PerByte: spec.Link.PerByte,
			Sigma:   spec.Link.Sigma,
			Rng:     k.Rand(spec.Link.Stream),
		},
		SwitchDelay: spec.SwitchDelay,
		Faults:      spec.Faults,
	})
	for i, p := range spec.Platforms {
		w.addHost(p, drifts[i])
	}
	return w
}

// AddPlatform appends one more platform, drawing its clock drift from
// the instance stream *now* — after any draws the caller has made in
// the meantime. The Figure 5 split deployment depends on this order:
// the third platform's drift draws after the activation phases.
func (w *PipelineWorld) AddPlatform(p PlatformSpec) *simnet.Host {
	return w.addHost(p, w.drift(p.Clock))
}

func (w *PipelineWorld) drift(c ClockSpec) int64 {
	if !c.DrawDrift {
		return c.DriftPPB
	}
	return int64(w.InstanceRand.Norm(0, c.DriftSigmaPPB))
}

func (w *PipelineWorld) addHost(p PlatformSpec, drift int64) *simnet.Host {
	var sync *des.Rand
	if p.Clock.SyncStream != "" {
		sync = w.Kernel.Rand(p.Clock.SyncStream)
	}
	h := w.Net.AddHost(p.Name, w.Kernel.NewLocalClock(des.ClockConfig{
		DriftPPB:   drift,
		SyncBound:  p.Clock.SyncBound,
		SyncPeriod: p.Clock.SyncPeriod,
	}, sync))
	w.Hosts = append(w.Hosts, h)
	return h
}

// FrameSource declares the camera: a sporadic sensor on one platform
// sending frames over a proprietary (raw datagram) protocol, paced by
// the platform's local clock with Gaussian capture jitter.
type FrameSource struct {
	// Platform indexes the source platform in Hosts.
	Platform int
	// Dst is the sink endpoint the frames are sent to.
	Dst simnet.Addr
	// Count is the number of frames to send.
	Count int
	// Period is the nominal capture period.
	Period logical.Duration
	// JitterSigma is the capture jitter's standard deviation.
	JitterSigma logical.Duration
	// Settle delays the first frame (service-discovery warm-up).
	Settle logical.Duration
	// Stream labels the kernel RNG stream for capture jitter.
	Stream string
	// Name is the source's process name.
	Name string
}

// SpawnFrameSource installs the camera process: payload is invoked at
// each capture instant with the current global time and returns the
// frame bytes to send (the callback is where the caller generates
// content and counts sends, preserving its historical draw order).
func (w *PipelineWorld) SpawnFrameSource(fs FrameSource, payload func(now logical.Time) []byte) {
	out := w.Hosts[fs.Platform].MustBind(0)
	rng := w.Kernel.Rand(fs.Stream)
	clock := w.Hosts[fs.Platform].Clock()
	w.Kernel.SpawnAt(logical.Time(fs.Settle), fs.Name, func(p *des.Process) {
		start := clock.Now()
		for i := 0; i < fs.Count; i++ {
			next := start.Add(logical.Duration(i)*fs.Period +
				logical.Duration(rng.Norm(0, float64(fs.JitterSigma))))
			if g := clock.GlobalAt(next); g > p.Now() {
				p.WaitUntil(g)
			}
			out.Send(fs.Dst, payload(p.Now()))
		}
	})
}
