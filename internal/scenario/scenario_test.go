package scenario

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/logical"
	"repro/internal/simnet"
)

// The spec→world compiler's golden contract: Describe is pinned
// byte-for-byte per topology shape. A diff here means existing worlds
// changed shape — bump deliberately, never accidentally.
func TestDescribeGoldenPerShape(t *testing.T) {
	common := "link latencyNs=350000 switchDelayNs=20000 callTimeoutNs=0\n" +
		"workload rounds=20 gapNs=800000 workBaseNs=20000 workSpreadNs=120000 noise=400@50000ns\n" +
		"faults none\ncrash none\n"
	golden := map[Shape]string{
		Star: "scenario topo-star topology=star platforms=6 degree=3 seed=0\n" + common +
			"plat00 compute@40000 -> 01 02 03 04 05\n" +
			"plat01 compute@40000 -> 00\n" +
			"plat02 compute@40000 -> 00\n" +
			"plat03 compute@40000 -> 00\n" +
			"plat04 compute@40000 -> 00\n" +
			"plat05 compute@40000 -> 00\n",
		Ring: "scenario topo-ring topology=ring platforms=6 degree=3 seed=0\n" + common +
			"plat00 compute@40000 -> 01 02 03\n" +
			"plat01 compute@40000 -> 02 03 04\n" +
			"plat02 compute@40000 -> 03 04 05\n" +
			"plat03 compute@40000 -> 04 05 00\n" +
			"plat04 compute@40000 -> 05 00 01\n" +
			"plat05 compute@40000 -> 00 01 02\n",
		Tree: "scenario topo-tree topology=tree platforms=6 degree=3 seed=0\n" + common +
			"plat00 compute@40000 -> 01 02 03\n" +
			"plat01 compute@40000 -> 00 04 05\n" +
			"plat02 compute@40000 -> 00\n" +
			"plat03 compute@40000 -> 00\n" +
			"plat04 compute@40000 -> 01\n" +
			"plat05 compute@40000 -> 01\n",
		RandomRegular: "scenario topo-random-regular topology=random-regular platforms=6 degree=3 seed=0\n" + common +
			"plat00 compute@40000 -> 05 04 02\n" +
			"plat01 compute@40000 -> 05 02 03\n" +
			"plat02 compute@40000 -> 00 04 01\n" +
			"plat03 compute@40000 -> 02 05 01\n" +
			"plat04 compute@40000 -> 02 03 00\n" +
			"plat05 compute@40000 -> 00 04 01\n",
	}
	for _, shape := range Shapes {
		got, err := Describe(TopologyPreset(shape, 6))
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if got != golden[shape] {
			t.Errorf("%s description drifted:\n--- got ---\n%s--- want ---\n%s", shape, got, golden[shape])
		}
	}
}

// A compiled world must describe exactly as its spec does (Describe is
// a pure function of the normalized spec — building cannot change it).
func TestWorldDescribeMatchesSpecDescribe(t *testing.T) {
	spec := MeshPreset(4)
	spec.Seed = 9
	want, err := Describe(spec)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Describe(); got != want {
		t.Errorf("world describe diverged from spec describe:\n%s\nvs\n%s", got, want)
	}
}

// Topology invariants for every shape across sizes, degrees and seeds:
// at least one target per client, no self-calls, no duplicate targets.
func TestTopologyInvariants(t *testing.T) {
	for _, shape := range append([]Shape{Full}, Shapes...) {
		for n := 2; n <= 17; n += 3 {
			for degree := 1; degree <= 4; degree++ {
				if degree > n-1 {
					continue
				}
				for seed := uint64(0); seed < 3; seed++ {
					edges, err := Topology(shape, n, degree, seed)
					if err != nil {
						t.Fatalf("%s n=%d k=%d: %v", shape, n, degree, err)
					}
					if len(edges) != n {
						t.Fatalf("%s n=%d: %d clients", shape, n, len(edges))
					}
					for i, targets := range edges {
						if len(targets) == 0 {
							t.Fatalf("%s n=%d k=%d: client %d has no targets", shape, n, degree, i)
						}
						seen := map[int]bool{}
						for _, j := range targets {
							if j == i {
								t.Fatalf("%s n=%d: client %d targets itself", shape, n, i)
							}
							if j < 0 || j >= n {
								t.Fatalf("%s n=%d: client %d target %d out of range", shape, n, i, j)
							}
							if seen[j] {
								t.Fatalf("%s n=%d: client %d duplicate target %d", shape, n, i, j)
							}
							seen[j] = true
						}
					}
				}
			}
		}
	}
}

// The random-regular generator must be a pure function of the seed —
// and different seeds must yield different graphs for non-trivial
// sizes.
func TestRandomRegularSeeded(t *testing.T) {
	a, err := Topology(RandomRegular, 12, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Topology(RandomRegular, 12, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Topology(RandomRegular, 12, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := func(x, y [][]int) bool {
		for i := range x {
			if len(x[i]) != len(y[i]) {
				return false
			}
			for t := range x[i] {
				if x[i][t] != y[i][t] {
					return false
				}
			}
		}
		return true
	}
	if !same(a, b) {
		t.Error("same seed produced different random-regular graphs")
	}
	if same(a, c) {
		t.Error("different seeds produced identical random-regular graphs")
	}
}

// JSON round-trip property: Spec → JSON → Spec compiles to an
// identical world description, for arbitrary valid specs including
// fault plans and crash schedules.
func TestSpecJSONRoundTripProperty(t *testing.T) {
	shapes := append([]Shape{Full}, Shapes...)
	f := func(nRaw, degRaw, shapeRaw uint8, seed uint64, rounds uint8, withFaults, withCrash bool) bool {
		spec := MeshPreset(2 + int(nRaw%10))
		spec.Name = "prop"
		spec.Topology = shapes[int(shapeRaw)%len(shapes)]
		spec.Degree = 1 + int(degRaw%5)
		spec.Seed = seed
		spec.Rounds = 1 + int(rounds%30)
		if withFaults || withCrash {
			spec.CallTimeout = 5 * logical.Millisecond
		}
		if withFaults {
			spec.Faults = &simnet.FaultPlan{
				Seed:     seed ^ 0xfa,
				DropRate: 0.02,
				Loss:     []simnet.LossWindow{{From: 1000, To: 2000, Rate: 0.5}},
				Partitions: []simnet.PartitionWindow{{
					From: 3000, To: 4000, GroupA: []uint16{1, 2},
				}},
				Jitter: []simnet.JitterBurst{{From: 0, To: 500, Extra: 300}},
			}
		}
		if withCrash {
			spec.Crash = &CrashPlan{Platform: 1, At: 1000, RestartAt: 2000, RebornRounds: 2}
		}
		want, err := Describe(spec)
		if err != nil {
			t.Logf("describe: %v", err)
			return false
		}
		data, err := MarshalJSONSpec(spec)
		if err != nil {
			t.Logf("marshal: %v", err)
			return false
		}
		back, err := ParseSpec(data)
		if err != nil {
			t.Logf("parse: %v", err)
			return false
		}
		got, err := Describe(back)
		if err != nil {
			t.Logf("describe round-tripped: %v", err)
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// ParseSpec must reject unknown fields: a typo in a spec file fails
// loudly instead of silently running defaults.
func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"platforms": 4, "linkLatencyNs": 1000, "neighbours": 2}`)); err == nil {
		t.Error("unknown field accepted")
	}
	spec, err := ParseSpec([]byte(`{"platforms": 4, "linkLatencyNs": 350000}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Spec validation errors must be loud and specific.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"one platform", func(s *Spec) { s.Platforms = 1 }, "at least 2 platforms"},
		{"zero link latency", func(s *Spec) { s.LinkLatency = 0 }, "positive link latency"},
		{"unknown shape", func(s *Spec) { s.Topology = "moebius" }, "unknown topology"},
		{"crash out of range", func(s *Spec) {
			s.CallTimeout = logical.Millisecond
			s.Crash = &CrashPlan{Platform: 99, At: 1}
		}, "out of range"},
		{"crash without timeout", func(s *Spec) { s.Crash = &CrashPlan{Platform: 1, At: 1} }, "CallTimeout"},
		{"drops without timeout", func(s *Spec) { s.Faults = &simnet.FaultPlan{DropRate: 0.1} }, "CallTimeout"},
		// An ill-formed fault plan must fail validation here — the
		// single-kernel build path would otherwise panic inside
		// simnet.NewNetwork.
		{"invalid fault plan", func(s *Spec) {
			s.CallTimeout = logical.Millisecond
			s.Faults = &simnet.FaultPlan{DropRate: 1.5}
		}, "outside [0,1]"},
	}
	for _, tc := range cases {
		spec := MeshPreset(6)
		tc.mut(&spec)
		err := spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

// Compiling and running the same spec twice must be bit-reproducible,
// and normalization must cap the shape parameters.
func TestBuildReproducible(t *testing.T) {
	spec := MeshPreset(4)
	spec.Seed = 3
	spec.Rounds = 4
	spec.NoiseEvents = 40
	run := func() string {
		w, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		w.Run()
		return StatsReport(w.Stats)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same spec, different bytes:\n%s\nvs\n%s", a, b)
	}
	norm, err := Spec{Platforms: 3, LinkLatency: 1000, Degree: 9, Partitions: 8}.normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Degree != 2 || norm.Partitions != 3 || norm.Topology != Ring {
		t.Errorf("normalization: %+v", norm)
	}
}
