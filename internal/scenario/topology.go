package scenario

import (
	"fmt"

	"repro/internal/des"
)

// Topology generates the client call graph for a shape: edges[i] is
// the ordered list of platforms client i calls each round. Every
// generator is a pure function of (shape, n, degree, seed) — the
// random-regular shape derives its draws from the seed via des.Mix3
// counter-based hashing, never from a sequential stream — so the same
// spec always yields the same graph, in any execution mode.
//
// Invariants (checked by the generator tests): every client has at
// least one target, no client targets itself, and targets are unique
// per client.
func Topology(shape Shape, n, degree int, seed uint64) ([][]int, error) {
	if n < 2 {
		return nil, fmt.Errorf("scenario: topology needs at least 2 platforms")
	}
	if degree < 1 || degree > n-1 {
		return nil, fmt.Errorf("scenario: degree %d outside [1, %d]", degree, n-1)
	}
	edges := make([][]int, n)
	switch shape {
	case Full:
		for i := 0; i < n; i++ {
			for d := 1; d <= n-1; d++ {
				edges[i] = append(edges[i], (i+d)%n)
			}
		}
	case Ring:
		for i := 0; i < n; i++ {
			for d := 1; d <= degree; d++ {
				edges[i] = append(edges[i], (i+d)%n)
			}
		}
	case Star:
		for leaf := 1; leaf < n; leaf++ {
			edges[0] = append(edges[0], leaf)
			edges[leaf] = []int{0}
		}
	case Tree:
		// A degree-ary heap layout: node i's parent is (i-1)/degree.
		// Clients call their parent first, then their children in
		// ascending order; the root calls only its children.
		for i := 0; i < n; i++ {
			if i > 0 {
				edges[i] = append(edges[i], (i-1)/degree)
			}
			for c := degree*i + 1; c <= degree*i+degree && c < n; c++ {
				edges[i] = append(edges[i], c)
			}
		}
		// Leaves whose parent is themselves impossible; every node but
		// the root has a parent, the root has children because n ≥ 2.
	case RandomRegular:
		// A seeded k-out regular digraph: every client draws `degree`
		// distinct targets by rejection sampling over counter-based
		// hashes. Each draw is Mix3(seed, client salt, counter) — a
		// pure function, so the graph is identical everywhere.
		for i := 0; i < n; i++ {
			seen := make(map[int]bool, degree+1)
			seen[i] = true
			var ctr uint64
			for len(edges[i]) < degree {
				v := des.Mix3(seed, 0x70700000+uint64(i), ctr)
				ctr++
				j := int(v % uint64(n))
				if seen[j] {
					continue
				}
				seen[j] = true
				edges[i] = append(edges[i], j)
			}
		}
	default:
		return nil, fmt.Errorf("scenario: unknown topology shape %q", shape)
	}
	return edges, nil
}
