package scenario

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/logical"
	"repro/internal/simnet"
)

// validSpec returns a spec that exercises every optional feature —
// faults, crash+restart, noise, timeout — and validates. The rejection
// and mutation tables below each break exactly one thing.
func validSpec() Spec {
	s := MeshPreset(6)
	s.Name = "surface"
	s.Seed = 5
	s.CallTimeout = 5 * logical.Millisecond
	s.Faults = &simnet.FaultPlan{
		Seed:     9,
		DropRate: 0.01,
		Loss:     []simnet.LossWindow{{From: 1000, To: 2000, Rate: 0.5}},
		Partitions: []simnet.PartitionWindow{{
			From: 3000, To: 4000, GroupA: []uint16{1, 2},
		}},
		Jitter: []simnet.JitterBurst{{From: 0, To: 500, Extra: 300}},
	}
	s.Crash = &CrashPlan{Platform: 1, At: logical.Time(logical.Millisecond),
		RestartAt: logical.Time(2 * logical.Millisecond), RebornRounds: 2}
	s.Monitors = &MonitorSpec{
		NoSilentCorruption: true,
		RespondedWithin:    20 * logical.Millisecond,
		ReboundWithin:      4 * logical.Millisecond,
	}
	return s
}

// TestSpecRejectionMatrix walks every rejection path of normalized():
// each case mutates one field of a fully valid spec and must fail with
// the documented message. Together with TestSpecValidation this pins
// the full refusal surface — a generated spec and a hand-written one
// fail identically.
func TestSpecRejectionMatrix(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"zero platforms", func(s *Spec) { s.Platforms = 0 }, "at least 2 platforms"},
		{"negative platforms", func(s *Spec) { s.Platforms = -4 }, "at least 2 platforms"},
		{"negative link latency", func(s *Spec) { s.LinkLatency = -1 }, "positive link latency"},
		{"negative rounds", func(s *Spec) { s.Rounds = -1 }, "negative rounds"},
		{"negative noise events", func(s *Spec) { s.NoiseEvents = -1 }, "negative noise events"},
		{"negative gap", func(s *Spec) { s.Gap = -1 }, "negative gapNs"},
		{"negative work base", func(s *Spec) { s.WorkBase = -1 }, "negative workBaseNs"},
		{"negative work spread", func(s *Spec) { s.WorkSpread = -1 }, "negative workSpreadNs"},
		{"negative noise interval", func(s *Spec) { s.NoiseInterval = -1 }, "negative noiseIntervalNs"},
		{"negative switch delay", func(s *Spec) { s.SwitchDelay = -1 }, "negative switchDelayNs"},
		{"negative call timeout", func(s *Spec) { s.CallTimeout = -1 }, "negative callTimeoutNs"},
		{"negative crash platform", func(s *Spec) { s.Crash.Platform = -1 }, "out of range"},
		{"crash platform past last", func(s *Spec) { s.Crash.Platform = s.Platforms }, "out of range"},
		{"negative crash time", func(s *Spec) { s.Crash.At = -1 }, "negative crash time"},
		{"negative reborn rounds", func(s *Spec) { s.Crash.RebornRounds = -1 }, "negative reborn rounds"},
		{"crash without timeout", func(s *Spec) { s.CallTimeout = 0; s.Faults = nil }, "CallTimeout"},
		{"loss window without timeout", func(s *Spec) {
			s.CallTimeout, s.Crash = 0, nil
			s.Faults = &simnet.FaultPlan{Loss: []simnet.LossWindow{{From: 0, To: 1, Rate: 1}}}
		}, "CallTimeout"},
		{"partition window without timeout", func(s *Spec) {
			s.CallTimeout, s.Crash = 0, nil
			s.Faults = &simnet.FaultPlan{Partitions: []simnet.PartitionWindow{{From: 0, To: 1, GroupA: []uint16{1}}}}
		}, "CallTimeout"},
		{"fault drop rate above one", func(s *Spec) { s.Faults.DropRate = 1.5 }, "outside [0,1]"},
		{"negative responded-within", func(s *Spec) { s.Monitors.RespondedWithin = -1 }, "negative respondedWithinNs"},
		{"negative rebound-within", func(s *Spec) { s.Monitors.ReboundWithin = -1 }, "negative reboundWithinNs"},
	}
	for _, tc := range cases {
		spec := validSpec()
		// Crash mutations edit through the pointer; give each case its own.
		cp := *spec.Crash
		spec.Crash = &cp
		fp := *spec.Faults
		spec.Faults = &fp
		mp := *spec.Monitors
		spec.Monitors = &mp
		tc.mut(&spec)
		err := spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestNormalizedCanonicalizesResidue pins the behaviour-free-residue
// rules: fields that cannot affect the compiled world are zeroed by
// normalization, so Describe equality and behavioural equality
// coincide in both directions. The caller's nested plans must survive
// untouched — normalized() copies before editing.
func TestNormalizedCanonicalizesResidue(t *testing.T) {
	s := validSpec()
	s.NoiseEvents, s.NoiseInterval = 0, 50*logical.Microsecond
	s.Crash = &CrashPlan{Platform: 1, At: logical.Time(2 * logical.Millisecond),
		RestartAt: logical.Time(logical.Millisecond), RebornRounds: 3} // restart before crash = never restarts
	crashBefore := *s.Crash

	n, err := s.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.NoiseInterval != 0 {
		t.Errorf("disabled noise kept interval %d", int64(n.NoiseInterval))
	}
	if n.Crash.RestartAt != 0 || n.Crash.RebornRounds != 0 {
		t.Errorf("no-restart crash kept restart residue: %+v", n.Crash)
	}
	if *s.Crash != crashBefore {
		t.Errorf("normalization mutated the caller's crash plan: %+v", *s.Crash)
	}

	// An all-zero monitors block enables nothing; it must normalize away
	// so a spelled-out "no monitors" and an absent block describe — and
	// behave — identically.
	empty := validSpec()
	empty.Monitors = &MonitorSpec{}
	ne, err := empty.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if ne.Monitors != nil {
		t.Errorf("all-zero monitors block survived normalization: %+v", ne.Monitors)
	}

	// The residue rule is exactly what makes these pairs describe
	// identically — they compile to the same world.
	zeroed := s
	zeroed.NoiseInterval = 0
	zeroed.Crash = &CrashPlan{Platform: 1, At: logical.Time(2 * logical.Millisecond)}
	da, err := Describe(s)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Describe(zeroed)
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Errorf("behaviour-free residue changed Describe:\n%s\nvs\n%s", da, db)
	}
}

// TestNormalizedFillsDefaults pins the default-fill rules the Spec doc
// comment promises for zero values.
func TestNormalizedFillsDefaults(t *testing.T) {
	n, err := Spec{Platforms: 5, LinkLatency: 1000}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.Topology != Ring {
		t.Errorf("empty topology normalized to %q, want ring", n.Topology)
	}
	if n.Degree != 3 {
		t.Errorf("zero degree normalized to %d, want 3", n.Degree)
	}
	if n.Partitions != 1 {
		t.Errorf("zero partitions normalized to %d, want 1", n.Partitions)
	}
}

// Every preset must round-trip through the JSON codec field-for-field
// unchanged — not just to an equal Describe, but to the identical Spec
// value. This is what lets the fuzzer's emitted repros and the files
// under examples/scenarios/ be exact spellings of in-code presets.
func TestPresetJSONRoundTripExact(t *testing.T) {
	presets := map[string]Spec{
		"mesh-8":  MeshPreset(8),
		"mesh-2":  MeshPreset(2),
		"city":    CityPreset(100),
		"surface": validSpec(),
	}
	for _, shape := range append([]Shape{Full}, Shapes...) {
		presets["topo-"+string(shape)] = TopologyPreset(shape, 6)
	}
	for name, spec := range presets {
		data, err := MarshalJSONSpec(spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		back, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Errorf("%s: spec changed across the JSON codec:\n%+v\nvs\n%+v", name, spec, back)
		}
	}
}

// TestDescribeCoversEveryBehaviourField is the Describe⇔behaviour
// completeness gate: mutating any Spec field other than Partitions in
// a behaviour-changing way must change the canonical description
// (otherwise two behaviourally different worlds would pass the
// E10-style gates as "identical"). Partitions — execution mode, not
// behaviour — must NOT change it. The reflection walk at the end
// forces this table to grow with the struct: adding a Spec field
// without deciding its Describe story fails here.
func TestDescribeCoversEveryBehaviourField(t *testing.T) {
	mutations := map[string]func(*Spec){
		"Name":          func(s *Spec) { s.Name = "renamed" },
		"Platforms":     func(s *Spec) { s.Platforms++ },
		"Topology":      func(s *Spec) { s.Topology = Star },
		"Degree":        func(s *Spec) { s.Degree-- },
		"Seed":          func(s *Spec) { s.Seed++ },
		"Rounds":        func(s *Spec) { s.Rounds++ },
		"Gap":           func(s *Spec) { s.Gap += logical.Microsecond },
		"WorkBase":      func(s *Spec) { s.WorkBase += logical.Microsecond },
		"WorkSpread":    func(s *Spec) { s.WorkSpread += logical.Microsecond },
		"NoiseEvents":   func(s *Spec) { s.NoiseEvents++ },
		"NoiseInterval": func(s *Spec) { s.NoiseInterval += logical.Microsecond },
		"LinkLatency":   func(s *Spec) { s.LinkLatency += logical.Microsecond },
		"SwitchDelay":   func(s *Spec) { s.SwitchDelay += logical.Microsecond },
		"CallTimeout":   func(s *Spec) { s.CallTimeout += logical.Millisecond },
		"Faults":        func(s *Spec) { s.Faults = nil },
		"Crash":         func(s *Spec) { s.Crash = nil },
		"Monitors":      func(s *Spec) { s.Monitors = nil },
	}
	// Nested plans are behaviour too: every fault window parameter and
	// crash field must surface in Describe.
	subMutations := map[string]func(*Spec){
		"Faults.Seed":       func(s *Spec) { s.Faults.Seed++ },
		"Faults.DropRate":   func(s *Spec) { s.Faults.DropRate += 0.1 },
		"Faults.Loss":       func(s *Spec) { s.Faults.Loss[0].Rate = 0.9 },
		"Faults.Partitions": func(s *Spec) { s.Faults.Partitions[0].GroupA = []uint16{3} },
		"Faults.Jitter":     func(s *Spec) { s.Faults.Jitter[0].Extra += 100 },
		"Crash.Platform":    func(s *Spec) { s.Crash.Platform = 2 },
		"Crash.At":          func(s *Spec) { s.Crash.At += logical.Time(logical.Microsecond) },
		"Crash.RestartAt":   func(s *Spec) { s.Crash.RestartAt += logical.Time(logical.Microsecond) },
		"Crash.RebornRounds": func(s *Spec) {
			s.Crash.RebornRounds++
		},
		"Monitors.NoSilentCorruption": func(s *Spec) { s.Monitors.NoSilentCorruption = false },
		"Monitors.RespondedWithin":    func(s *Spec) { s.Monitors.RespondedWithin += logical.Millisecond },
		"Monitors.ReboundWithin":      func(s *Spec) { s.Monitors.ReboundWithin += logical.Millisecond },
	}

	base, err := Describe(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	check := func(field string, mut func(*Spec)) {
		spec := validSpec()
		// Deep-copy the nested plans so a sub-mutation edits this copy only.
		cp := *spec.Crash
		spec.Crash = &cp
		fp := *spec.Faults
		fp.Loss = append([]simnet.LossWindow(nil), fp.Loss...)
		fp.Partitions = append([]simnet.PartitionWindow(nil), fp.Partitions...)
		fp.Jitter = append([]simnet.JitterBurst(nil), fp.Jitter...)
		spec.Faults = &fp
		mp := *spec.Monitors
		spec.Monitors = &mp
		mut(&spec)
		got, err := Describe(spec)
		if err != nil {
			t.Errorf("%s: mutated spec does not describe: %v", field, err)
			return
		}
		if got == base {
			t.Errorf("%s: behaviour-changing mutation left Describe unchanged — the determinism gates would miss it", field)
		}
	}
	for field, mut := range mutations {
		check(field, mut)
	}
	for field, mut := range subMutations {
		check(field, mut)
	}

	// Partitions selects an execution mode; Describe must ignore it.
	modeSpec := validSpec()
	modeSpec.Partitions = 5
	got, err := Describe(modeSpec)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Errorf("Partitions leaked into Describe — execution mode must not look like behaviour")
	}

	// Completeness: every Spec field is either in the mutation table or
	// is Partitions. A new field lands here until its Describe story —
	// behaviour or mode — is written down.
	typ := reflect.TypeOf(Spec{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if name == "Partitions" {
			continue
		}
		if _, ok := mutations[name]; !ok {
			t.Errorf("Spec field %s has no Describe mutation case — add one (or, if it is mode-only, exempt it here deliberately)", name)
		}
	}
}
