package scenario

// Deliberate nondeterminism injection, for testing the determinism
// fuzzer itself. The fuzzer (internal/fuzzer) hunts for divergence
// between single-kernel and federated executions of the same spec; its
// own acceptance test must prove it *finds* a real nondeterminism bug
// and shrinks it to a minimal spec. EnableChaosForTesting plants that
// bug: a draw whose value depends on Go map iteration order — the
// canonical accidental-nondeterminism source — mixed into every compute
// response. Because the response hash also feeds the server's
// data-dependent execution-time model, the perturbation skews event
// timing too, so the injected fault is visible in reports, latencies
// and the logical event trace alike.
//
// The hook is nil in production: no draw happens, no branch beyond one
// pointer test is paid, and nothing outside a test can install it.

// chaosServeDraw, when non-nil, returns a value mixed into every
// compute handler's response hash. Installed only by
// EnableChaosForTesting.
var chaosServeDraw func() uint64

// EnableChaosForTesting installs the deliberate nondeterminism fault
// and returns a restore func that removes it. Not safe for concurrent
// worlds: it is process-global, exactly like the accidental bugs it
// imitates.
func EnableChaosForTesting() (restore func()) {
	// Several distinct keys, so two independent draws disagree with
	// probability 7/8 — one draw per served call makes a whole run's
	// agreement astronomically unlikely for any non-trivial workload.
	m := make(map[uint64]uint64, 8)
	for i := uint64(1); i <= 8; i++ {
		m[i*0x9e3779b97f4a7c15] = i
	}
	chaosServeDraw = func() uint64 {
		for k := range m {
			return k // first key of a randomized iteration order
		}
		return 0
	}
	return func() { chaosServeDraw = nil }
}
