package scenario

// Deliberate corruption injection, for testing the no-silent-
// corruption monitor's non-vacuity. The DEAR model refuses corrupt
// inputs structurally, so a correct world never emits the KindCorrupt
// sentinel — which means the monitor that watches for it would pass
// vacuously forever unless a test can force the sentinel out. The hook
// mirrors chaos.go: nil in production (one pointer test on the serve
// path), installable only from a test.

// corruptCheck, when non-nil, is the integrity predicate every compute
// handler applies to its request bytes; a true return emits the
// corruption sentinel record. Installed only by
// EnableCorruptionForTesting.
var corruptCheck func(args []byte) bool

// EnableCorruptionForTesting installs an integrity check that flags
// every compute request as corrupt — tripping the no-silent-corruption
// monitor on any workload with at least one call — and returns a
// restore func that removes it. Process-global, like the chaos hook;
// not safe for concurrent worlds with different expectations.
func EnableCorruptionForTesting() (restore func()) {
	corruptCheck = func([]byte) bool { return true }
	return func() { corruptCheck = nil }
}
