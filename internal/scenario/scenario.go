// Package scenario is the declarative layer under every simulated
// experiment: a Spec describes a deployment — platform count, topology
// shape, partition assignment, link model, fault plan, workload mix,
// seed policy — and Build compiles it into a runnable world (kernel or
// federation, network or cluster, hosts, ara runtimes, client/server
// processes). Experiments become thin Spec constructors plus
// measurement code, and a deployment that was never compiled into the
// binary can run from a JSON file (cmd/experiments -scenario).
//
// Two compiler entry points exist:
//
//   - Build compiles the client/server compute-mesh family (E10, E11,
//     E12, JSON scenarios): every platform offers a "compute" service
//     and runs one client whose call targets come from the topology
//     generator.
//   - BuildPipeline (pipeline.go) compiles the brake-assistant
//     substrate family (E3–E5, E11 pipeline): kernel, jitter-latency
//     network, drifting platform clocks and the camera frame source
//     shared by the stock and DEAR variants in internal/apd.
//
// Determinism contract: for a fixed Spec, the world's behaviour is a
// pure function of Spec.Seed, identical for every Partitions value and
// GOMAXPROCS setting (the E10/E11/E12 gates pin this byte-for-byte).
// Describe renders a canonical, mode-independent description of the
// compiled world — it deliberately excludes the partition count and
// anything else that only selects an execution mode.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/logical"
	"repro/internal/monitor"
	"repro/internal/simnet"
)

// Shape names a topology generator. All generators are pure functions
// of (shape, platform count, degree, seed); see Topology.
type Shape string

// The supported topology shapes.
const (
	// Full connects every client to every other platform (a ring of
	// degree n-1).
	Full Shape = "full"
	// Ring connects client i to its Degree successors (i+1 .. i+Degree,
	// modulo n) — the classic E10 mesh shape.
	Ring Shape = "ring"
	// Star routes all leaf clients to platform 0; platform 0's client
	// calls every leaf.
	Star Shape = "star"
	// Tree arranges platforms as a Degree-ary heap: each client calls
	// its parent and its children.
	Tree Shape = "tree"
	// RandomRegular gives every client Degree distinct targets drawn as
	// a pure function of the spec seed via des.Mix3 (a seeded k-out
	// regular digraph).
	RandomRegular Shape = "random-regular"
)

// Shapes lists every supported topology shape in canonical sweep order.
var Shapes = []Shape{Star, Ring, Tree, RandomRegular}

// CrashPlan schedules a platform crash (and optional restart) inside a
// compiled world: the platform's host fails at At (endpoints close,
// in-flight packets drop, its client exits when it observes the
// outage) and — if RestartAt > At — comes back with a rebuilt runtime
// whose skeleton re-offers, after which a reborn client issues
// RebornRounds more call rounds. All times are simulated, so the
// schedule is identical in every execution mode.
type CrashPlan struct {
	// Platform indexes the platform to crash.
	Platform int `json:"platform"`
	// At is the crash instant.
	At logical.Time `json:"atNs"`
	// RestartAt is the restart instant; zero (or ≤ At) means the
	// platform stays down.
	RestartAt logical.Time `json:"restartAtNs,omitempty"`
	// RebornRounds is the number of call rounds the restarted
	// platform's client runs.
	RebornRounds int `json:"rebornRounds,omitempty"`
}

// Spec is the declarative description of a client/server scenario. It
// serializes to/from JSON (durations are nanosecond integers), so a
// deployment can be described in a file and run without recompiling.
// The zero values of Topology, Degree, Partitions and Gap-class fields
// are normalized to the E10 mesh defaults; Platforms and LinkLatency
// must be set explicitly.
type Spec struct {
	// Name labels the scenario; it prefixes the canonical report header
	// of generic scenario runs. Empty selects the legacy E10 header.
	Name string `json:"name,omitempty"`
	// Platforms is N, the number of simulated ECUs. Must be ≥ 2.
	Platforms int `json:"platforms"`
	// Topology selects the call-graph generator; empty means Ring.
	Topology Shape `json:"topology,omitempty"`
	// Degree parameterizes the shape: ring neighbor count, tree fan-out,
	// random-regular out-degree (capped at Platforms-1; 0 means
	// min(3, Platforms-1), the E10 default).
	Degree int `json:"degree,omitempty"`
	// Partitions is the execution-mode default: ≤ 1 runs on a single
	// kernel, larger values shard the platforms round-robin over that
	// many federated kernels (capped at Platforms). Excluded from
	// Describe — it must not change behaviour.
	Partitions int `json:"partitions,omitempty"`
	// Seed drives every random stream of the world.
	Seed uint64 `json:"seed,omitempty"`
	// Rounds is the number of call rounds per client; each round issues
	// one blocking call per topology target.
	Rounds int `json:"rounds,omitempty"`
	// Gap is the base think time between rounds (each client adds a
	// deterministic per-client skew so request arrivals never collide).
	Gap logical.Duration `json:"gapNs,omitempty"`
	// WorkBase/WorkSpread model the server's execution time: base plus
	// a payload-hash-dependent spread, so timing is data-dependent but
	// identical in both execution modes.
	WorkBase logical.Duration `json:"workBaseNs,omitempty"`
	// WorkSpread is the data-dependent part of the server time model.
	WorkSpread logical.Duration `json:"workSpreadNs,omitempty"`
	// NoiseEvents drives the per-platform local load generator
	// (loopback datagrams on the platform's own host); 0 disables it.
	NoiseEvents int `json:"noiseEvents,omitempty"`
	// NoiseInterval is the local load generator's send period.
	NoiseInterval logical.Duration `json:"noiseIntervalNs,omitempty"`
	// LinkLatency is the fixed platform-to-platform latency. It must be
	// positive and RNG-free: its minimum is the federation lookahead.
	LinkLatency logical.Duration `json:"linkLatencyNs"`
	// SwitchDelay is the store-and-forward delay added to
	// inter-platform packets.
	SwitchDelay logical.Duration `json:"switchDelayNs,omitempty"`
	// CallTimeout (optional) bounds every client call; expiry is
	// counted as an observable error in the report. Required when
	// Faults can drop packets or Crash is set — without it a lost call
	// would park its client forever.
	CallTimeout logical.Duration `json:"callTimeoutNs,omitempty"`
	// Faults (optional) installs a deterministic fault schedule:
	// counter-based per-link loss, partitions and jitter bursts.
	Faults *simnet.FaultPlan `json:"faults,omitempty"`
	// Crash (optional) schedules a platform crash and restart.
	Crash *CrashPlan `json:"crash,omitempty"`
	// Monitors (optional) attaches online runtime-verification
	// monitors from the standard safety library to every kernel of the
	// compiled world (see internal/monitor). Verdicts are
	// mode-independent and surface through World.Verdicts.
	Monitors *MonitorSpec `json:"monitors,omitempty"`
}

// MonitorSpec is the declarative monitors block of a Spec: which of
// the standard safety properties to evaluate online, and with what
// deadlines. A zero deadline disables that monitor; an all-zero block
// normalizes to nil (no monitoring). DefaultMonitors derives deadlines
// from the spec's own timing parameters.
type MonitorSpec struct {
	// NoSilentCorruption enables the "no silent corruption ever"
	// monitor: the corrupt-input sentinel must never appear.
	NoSilentCorruption bool `json:"noSilentCorruption,omitempty"`
	// RespondedWithin is the "answered-or-observably-timed-out" bound:
	// every issued request must complete (or fail observably) within
	// this deadline. Zero disables the monitor.
	RespondedWithin logical.Duration `json:"respondedWithinNs,omitempty"`
	// ReboundWithin is the "re-bind within T of restart" bound: a
	// restarted platform must re-offer its service within this
	// deadline. Zero disables the monitor.
	ReboundWithin logical.Duration `json:"reboundWithinNs,omitempty"`
}

// enabled reports whether any monitor is switched on.
func (m *MonitorSpec) enabled() bool {
	return m.NoSilentCorruption || m.RespondedWithin > 0 || m.ReboundWithin > 0
}

// Build instantiates fresh monitor instances for one engine. Monitors
// are stateful, so every kernel's engine needs its own Build call.
func (m *MonitorSpec) Build() []monitor.Monitor {
	var out []monitor.Monitor
	if m.NoSilentCorruption {
		out = append(out, monitor.NoSilentCorruption())
	}
	if m.RespondedWithin > 0 {
		out = append(out, monitor.RespondedWithin(m.RespondedWithin))
	}
	if m.ReboundWithin > 0 {
		out = append(out, monitor.ReboundWithin(m.ReboundWithin))
	}
	return out
}

// DefaultMonitors returns the standard safety library with deadlines
// derived from the spec's own timing model — the block the
// cmd/experiments -monitors flag attaches to any scenario. The
// responded-within bound allows the full timeout (when one is set)
// plus one round trip of slack; without a timeout every call resolves
// by completion, so the bound is a generous multiple of the worst-case
// serialized round trip. The rebound bound covers a restart's re-offer
// latency (immediate in compiled worlds, so one round trip of slack).
func DefaultMonitors(s Spec) *MonitorSpec {
	n, err := s.normalized()
	if err != nil {
		n = s
	}
	perCall := 2*(n.LinkLatency+n.SwitchDelay) + n.WorkBase + n.WorkSpread
	respond := 8 * logical.Duration(n.Platforms) * perCall
	if n.CallTimeout > 0 {
		respond = 2*n.CallTimeout + perCall
	}
	return &MonitorSpec{
		NoSilentCorruption: true,
		RespondedWithin:    respond,
		ReboundWithin:      2 * (n.LinkLatency + n.SwitchDelay),
	}
}

// MeshPreset returns the E10 mesh scenario for n platforms: a ring of
// degree min(3, n-1) with the workload mix of DefaultMeshConfig.
func MeshPreset(n int) Spec {
	k := 3
	if k > n-1 {
		k = n - 1
	}
	return Spec{
		Platforms:     n,
		Topology:      Ring,
		Degree:        k,
		Rounds:        20,
		Gap:           800 * logical.Microsecond,
		WorkBase:      20 * logical.Microsecond,
		WorkSpread:    120 * logical.Microsecond,
		NoiseEvents:   400,
		NoiseInterval: 50 * logical.Microsecond,
		LinkLatency:   350 * logical.Microsecond,
		SwitchDelay:   20 * logical.Microsecond,
	}
}

// CityPreset returns the E14 city-scale scenario for n platforms: a
// ring of degree min(3, n-1) with a lean workload mix sized so that
// thousands of platforms stay tractable under the byte-equality gate.
// Against MeshPreset it drops the local-noise generator (its event
// count is what dominates at scale, without adding cross-platform
// interaction) and trims the round count; every remaining statistic in
// the canonical report is a fixed-size per-platform fold, so report
// memory is O(platforms) no matter how many messages flow.
func CityPreset(n int) Spec {
	k := 3
	if k > n-1 {
		k = n - 1
	}
	return Spec{
		Name:        "city",
		Platforms:   n,
		Topology:    Ring,
		Degree:      k,
		Rounds:      4,
		Gap:         500 * logical.Microsecond,
		WorkBase:    10 * logical.Microsecond,
		WorkSpread:  40 * logical.Microsecond,
		LinkLatency: 200 * logical.Microsecond,
		SwitchDelay: 10 * logical.Microsecond,
	}
}

// TopologyPreset returns the E12 sweep scenario: the E10 workload mix
// on the given topology shape.
func TopologyPreset(shape Shape, n int) Spec {
	s := MeshPreset(n)
	s.Name = "topo-" + string(shape)
	s.Topology = shape
	return s
}

// ParseSpec decodes a JSON scenario description. Unknown fields are
// rejected so that a typo in a spec file fails loudly instead of
// silently running the default value.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	return s, nil
}

// MarshalJSONSpec encodes the spec as indented JSON, the format of the
// files under examples/scenarios/.
func MarshalJSONSpec(s Spec) ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// normalized returns a copy with defaults filled, the shape parameters
// capped and behaviour-free residue canonicalized, or an error when the
// spec is invalid. Every compiler entry point and Describe go through
// it, so a spec and its JSON round trip always compile to the same
// world.
func (s Spec) normalized() (Spec, error) {
	if s.Platforms < 2 {
		return s, fmt.Errorf("scenario: needs at least 2 platforms")
	}
	if s.Topology == "" {
		s.Topology = Ring
	}
	switch s.Topology {
	case Full, Ring, Star, Tree, RandomRegular:
	default:
		return s, fmt.Errorf("scenario: unknown topology shape %q", s.Topology)
	}
	if s.Degree <= 0 {
		s.Degree = 3
	}
	if s.Degree > s.Platforms-1 {
		s.Degree = s.Platforms - 1
	}
	if s.Partitions < 1 {
		s.Partitions = 1
	}
	if s.Partitions > s.Platforms {
		s.Partitions = s.Platforms
	}
	if s.LinkLatency <= 0 {
		return s, fmt.Errorf("scenario: needs positive link latency (it is the federation lookahead)")
	}
	// Negative scalars have no meaning anywhere in the compiled world (a
	// negative duration would run the kernel backwards); reject them all
	// so generated and hand-written specs fail identically and loudly.
	if s.Rounds < 0 {
		return s, fmt.Errorf("scenario: negative rounds %d", s.Rounds)
	}
	if s.NoiseEvents < 0 {
		return s, fmt.Errorf("scenario: negative noise events %d", s.NoiseEvents)
	}
	for _, d := range []struct {
		name string
		v    logical.Duration
	}{
		{"gapNs", s.Gap}, {"workBaseNs", s.WorkBase}, {"workSpreadNs", s.WorkSpread},
		{"noiseIntervalNs", s.NoiseInterval}, {"switchDelayNs", s.SwitchDelay},
		{"callTimeoutNs", s.CallTimeout},
	} {
		if d.v < 0 {
			return s, fmt.Errorf("scenario: negative %s (%d)", d.name, int64(d.v))
		}
	}
	// Canonicalize behaviour-free residue so that Describe equality and
	// behavioural equality coincide in both directions: a disabled noise
	// generator has no interval, and a crash that never restarts has no
	// restart time or reborn rounds.
	if s.NoiseEvents == 0 {
		s.NoiseInterval = 0
	}
	if s.Faults != nil {
		// Surface fault-plan mistakes here: the single-kernel build path
		// would otherwise only discover them as a panic inside
		// simnet.NewNetwork, and a JSON spec must fail loudly instead.
		if err := s.Faults.Validate(); err != nil {
			return s, err
		}
	}
	if c := s.Crash; c != nil {
		if c.Platform < 0 || c.Platform >= s.Platforms {
			return s, fmt.Errorf("scenario: crash platform %d out of range", c.Platform)
		}
		if c.At < 0 {
			return s, fmt.Errorf("scenario: negative crash time %d", int64(c.At))
		}
		if c.RebornRounds < 0 {
			return s, fmt.Errorf("scenario: negative reborn rounds %d", c.RebornRounds)
		}
		if c.RestartAt <= c.At && (c.RestartAt != 0 || c.RebornRounds != 0) {
			// "Never restarts" has one canonical spelling. Copy before
			// editing: the caller's plan is shared, not owned.
			cp := *c
			cp.RestartAt, cp.RebornRounds = 0, 0
			s.Crash = &cp
		}
	}
	if m := s.Monitors; m != nil {
		if m.RespondedWithin < 0 {
			return s, fmt.Errorf("scenario: negative respondedWithinNs (%d)", int64(m.RespondedWithin))
		}
		if m.ReboundWithin < 0 {
			return s, fmt.Errorf("scenario: negative reboundWithinNs (%d)", int64(m.ReboundWithin))
		}
		if !m.enabled() {
			// An all-zero monitors block enables nothing: canonicalize the
			// residue away so Describe equality and behavioural equality
			// keep coinciding.
			s.Monitors = nil
		}
	}
	if s.CallTimeout <= 0 {
		// Without a timeout a lost request or response would park its
		// client process forever and the run would end with silently
		// missing calls — enforce the documented precondition.
		if s.Crash != nil {
			return s, fmt.Errorf("scenario: a crash plan requires CallTimeout > 0 (calls into the outage must fail observably)")
		}
		if f := s.Faults; f != nil && (f.DropRate > 0 || len(f.Loss) > 0 || len(f.Partitions) > 0) {
			return s, fmt.Errorf("scenario: a fault plan that can drop packets requires CallTimeout > 0")
		}
	}
	return s, nil
}

// Validate reports whether the spec compiles, without building a world.
func (s Spec) Validate() error {
	_, err := s.normalized()
	return err
}

// Normalized returns the canonical form of the spec — defaults filled,
// shape parameters capped, behaviour-free residue zeroed — or an error
// when the spec is invalid. It is the exact form Build compiles and
// Describe renders; tools that edit specs programmatically (the
// determinism fuzzer's reduction moves) re-normalize after every edit
// so a candidate is always a spec a user could have written.
func (s Spec) Normalized() (Spec, error) {
	return s.normalized()
}

// Describe renders the canonical, mode-independent description of the
// world the spec compiles to: name, shape, link and workload
// parameters, fault schedule summary and the full client→server call
// graph. Two specs that describe identically compile to behaviourally
// identical worlds; the golden tests pin the string per topology
// shape. Partition count is deliberately excluded — it selects an
// execution mode and must not change behaviour.
func Describe(s Spec) (string, error) {
	n, err := s.normalized()
	if err != nil {
		return "", err
	}
	edges, err := Topology(n.Topology, n.Platforms, n.Degree, n.Seed)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	name := n.Name
	if name == "" {
		name = "mesh"
	}
	fmt.Fprintf(&b, "scenario %s topology=%s platforms=%d degree=%d seed=%d\n",
		name, n.Topology, n.Platforms, n.Degree, n.Seed)
	fmt.Fprintf(&b, "link latencyNs=%d switchDelayNs=%d callTimeoutNs=%d\n",
		int64(n.LinkLatency), int64(n.SwitchDelay), int64(n.CallTimeout))
	fmt.Fprintf(&b, "workload rounds=%d gapNs=%d workBaseNs=%d workSpreadNs=%d noise=%d@%dns\n",
		n.Rounds, int64(n.Gap), int64(n.WorkBase), int64(n.WorkSpread),
		n.NoiseEvents, int64(n.NoiseInterval))
	if f := n.Faults; f != nil {
		// The full schedule, not a summary: Describe equality must imply
		// behavioural equality, and every window parameter is behaviour.
		fmt.Fprintf(&b, "faults seed=%d drop=%.6f\n", f.Seed, f.DropRate)
		for _, w := range f.Loss {
			fmt.Fprintf(&b, "  loss fromNs=%d toNs=%d a=%d b=%d rate=%.6f\n",
				int64(w.From), int64(w.To), w.A, w.B, w.Rate)
		}
		for _, w := range f.Partitions {
			fmt.Fprintf(&b, "  partition fromNs=%d toNs=%d groupA=%v groupB=%v\n",
				int64(w.From), int64(w.To), w.GroupA, w.GroupB)
		}
		for _, w := range f.Jitter {
			fmt.Fprintf(&b, "  jitter fromNs=%d toNs=%d a=%d b=%d extraNs=%d\n",
				int64(w.From), int64(w.To), w.A, w.B, int64(w.Extra))
		}
	} else {
		b.WriteString("faults none\n")
	}
	if c := n.Crash; c != nil {
		fmt.Fprintf(&b, "crash platform=%d atNs=%d restartAtNs=%d rebornRounds=%d\n",
			c.Platform, int64(c.At), int64(c.RestartAt), c.RebornRounds)
	} else {
		b.WriteString("crash none\n")
	}
	if m := n.Monitors; m != nil {
		// Rendered only when a block is present: monitors observe the run
		// (their verdicts are diagnostics, not behaviour), but which
		// properties a spec *demands* is part of its meaning — and
		// monitor-free specs keep their golden Describe strings.
		fmt.Fprintf(&b, "monitors corruption=%v respondedWithinNs=%d reboundWithinNs=%d\n",
			m.NoSilentCorruption, int64(m.RespondedWithin), int64(m.ReboundWithin))
	}
	for i, targets := range edges {
		fmt.Fprintf(&b, "plat%02d compute@%d ->", i, Port)
		for _, j := range targets {
			fmt.Fprintf(&b, " %02d", j)
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// PlatformStats is the per-platform slice of a scenario run's canonical
// report: every observable outcome of the platform's client and server,
// folded into order-sensitive hashes so two runs agree on *which* calls
// happened (and failed), not just how many.
type PlatformStats struct {
	// Calls counts completed client calls.
	Calls int
	// Served counts compute invocations handled by this platform.
	Served int
	// Errors counts observable call failures (timeouts, send errors);
	// zero in fault-free scenarios. Every error is also folded into
	// RespHash, so two runs agree on which calls failed.
	Errors int
	// RespHash folds every response (and failure) into an FNV chain.
	RespHash uint64
	// LatSumNs accumulates round-trip latency.
	LatSumNs int64
	// LatMaxNs tracks the worst round trip.
	LatMaxNs int64
	// NoiseHash folds the local load generator's deliveries.
	NoiseHash uint64
}

// LatMeanNs returns the integer mean round-trip latency (exact — no
// floating point, so reports are byte-stable).
func (r *PlatformStats) LatMeanNs() int64 {
	if r.Calls == 0 {
		return 0
	}
	return r.LatSumNs / int64(r.Calls)
}

// StatsReport renders the canonical per-platform report body: one line
// per platform plus a totals line. Experiments prepend their header;
// two runs are behaviourally identical iff their full reports are
// byte-identical.
func StatsReport(rows []PlatformStats) string {
	var b strings.Builder
	totalCalls, totalServed, totalErrors := 0, 0, 0
	for i, row := range rows {
		fmt.Fprintf(&b, "plat%02d calls=%d served=%d errs=%d resp=%016x latMeanNs=%d latMaxNs=%d noise=%016x\n",
			i, row.Calls, row.Served, row.Errors, row.RespHash, row.LatMeanNs(), row.LatMaxNs, row.NoiseHash)
		totalCalls += row.Calls
		totalServed += row.Served
		totalErrors += row.Errors
	}
	fmt.Fprintf(&b, "total calls=%d served=%d errs=%d\n", totalCalls, totalServed, totalErrors)
	return b.String()
}
