package apd

import (
	"math"

	"repro/internal/logical"
)

// The computational logic shared by both implementations, mirroring the
// paper's observation that "the original implementation separates
// computational logic from the communication mechanism".

// Road synthesis parameters.
const (
	roadGray    = 200 // background
	laneGray    = 40  // lane marking
	vehicleGray = 90  // vehicle body
	// vehicleScale maps apparent width (px) to distance (m):
	// distance = vehicleScale / width.
	vehicleScale = 240.0
	// BrakeDistance is the EBA emergency threshold in meters.
	BrakeDistance = 18.0
)

// Scene drives the synthetic road: lane curvature and vehicle positions
// evolve deterministically with the frame sequence number, so every stage
// can be validated against ground truth.
type Scene struct {
	seq uint32
}

// laneCenterAt returns the lane center column for a given row (rows near
// the bottom are near the car). The lane sways slowly with seq.
func (s *Scene) laneCenterAt(seq uint32, row int) int {
	sway := 6 * math.Sin(float64(seq)/180)
	curve := 4 * math.Sin(float64(seq)/540+float64(row)/24)
	return FrameW/2 + int(sway+curve*float64(FrameH-row)/float64(FrameH))
}

// laneHalfWidthAt returns the lane half width for a row (perspective:
// wider near the bottom).
func laneHalfWidthAt(row int) int {
	return 4 + (row*10)/FrameH
}

// groundTruth describes the vehicle ahead for a frame.
type groundTruth struct {
	present  bool
	distance float64
	col      int
	row      int
	width    int
}

// vehicleAt computes the scripted vehicle state: a lead vehicle
// oscillates between far (60 m) and near (12 m), periodically crossing
// the braking threshold.
func (s *Scene) vehicleAt(seq uint32) groundTruth {
	phase := float64(seq%900) / 900
	distance := 36 - 24*math.Cos(2*math.Pi*phase) // 12..60 m
	width := int(math.Round(vehicleScale / distance))
	if width >= FrameW/2 {
		width = FrameW/2 - 1
	}
	row := FrameH - 6 - int(18*(distance-12)/48) // nearer = lower in frame
	return groundTruth{
		present:  true,
		distance: distance,
		col:      s.laneCenterAt(seq, row),
		row:      row,
		width:    width,
	}
}

// Generate produces the next synthetic frame.
func (s *Scene) Generate(capture logical.Time) *Frame {
	seq := s.seq
	s.seq++
	f := &Frame{Seq: seq, Capture: capture, Pix: make([]byte, FrameW*FrameH)}
	for row := 0; row < FrameH; row++ {
		center := s.laneCenterAt(seq, row)
		half := laneHalfWidthAt(row)
		for col := 0; col < FrameW; col++ {
			g := byte(roadGray)
			if col == center-half || col == center+half {
				g = laneGray
			}
			f.Pix[row*FrameW+col] = g
		}
	}
	gt := s.vehicleAt(seq)
	if gt.present {
		h := gt.width / 2
		if h < 1 {
			h = 1
		}
		for r := gt.row - h; r <= gt.row; r++ {
			if r < 0 || r >= FrameH {
				continue
			}
			for c := gt.col - gt.width/2; c <= gt.col+gt.width/2; c++ {
				if c < 0 || c >= FrameW {
					continue
				}
				f.Pix[r*FrameW+c] = vehicleGray
			}
		}
	}
	return f
}

// Truth exposes the scripted vehicle distance for a sequence number
// (used by tests to validate the vision stage).
func (s *Scene) Truth(seq uint32) (distance float64, present bool) {
	gt := s.vehicleAt(seq)
	return gt.distance, gt.present
}

// Preprocess computes the travel-lane bounding box from the frame by
// locating the lane markings in the lower image half.
func Preprocess(f *Frame) *LaneInfo {
	left, right := FrameW, 0
	top := FrameH / 2
	for row := top; row < FrameH; row++ {
		for col := 0; col < FrameW; col++ {
			if f.Pix[row*FrameW+col] <= laneGray {
				if col < left {
					left = col
				}
				if col > right {
					right = col
				}
			}
		}
	}
	if left > right { // no markings found
		left, right = 0, FrameW-1
	}
	return &LaneInfo{Seq: f.Seq, Left: left, Right: right, Top: top, Bottom: FrameH - 1}
}

// DetectVehicles finds vehicle blobs inside the lane bounding box and
// estimates their distances from apparent width.
func DetectVehicles(f *Frame, lane *LaneInfo) *VehicleList {
	out := &VehicleList{Seq: f.Seq, Capture: f.Capture}
	// Scan rows bottom-up; the first row containing a vehicle run gives
	// the nearest vehicle.
	for row := lane.Bottom; row >= 0; row-- {
		runStart, runLen, bestLen, bestCol := -1, 0, 0, 0
		for col := lane.Left; col <= lane.Right; col++ {
			g := f.Pix[row*FrameW+col]
			isVehicle := g > laneGray && g <= vehicleGray+20
			if isVehicle {
				if runStart < 0 {
					runStart = col
				}
				runLen++
				if runLen > bestLen {
					bestLen = runLen
					bestCol = runStart + runLen/2
				}
			} else {
				runStart, runLen = -1, 0
			}
		}
		if bestLen >= 3 {
			out.Vehicles = append(out.Vehicles, Vehicle{
				Distance: vehicleScale / float64(bestLen),
				Col:      bestCol,
			})
			break
		}
	}
	return out
}

// EBAState carries the emergency-brake assistant's state between frames
// (previous distance for closing-speed estimation).
type EBAState struct {
	havePrev     bool
	prevDistance float64
	prevSeq      uint32
}

// Decide evaluates the braking decision for a vehicle list.
func (s *EBAState) Decide(v *VehicleList) *BrakeCmd {
	cmd := &BrakeCmd{Seq: v.Seq}
	if len(v.Vehicles) == 0 {
		s.havePrev = false
		return cmd
	}
	nearest := v.Vehicles[0].Distance
	for _, veh := range v.Vehicles[1:] {
		if veh.Distance < nearest {
			nearest = veh.Distance
		}
	}
	closing := 0.0
	if s.havePrev && v.Seq > s.prevSeq {
		closing = (s.prevDistance - nearest) / float64(v.Seq-s.prevSeq)
	}
	s.havePrev = true
	s.prevDistance = nearest
	s.prevSeq = v.Seq
	if nearest < BrakeDistance {
		cmd.Brake = true
		cmd.Force = math.Min(1, (BrakeDistance-nearest)/BrakeDistance+math.Max(0, closing)*2)
	}
	return cmd
}
