// Package apd reproduces the brake assistant application of the AUTOSAR
// Adaptive Platform Demonstrator (APD), the case study of the paper: a
// five-stage pipeline (Video Provider → Video Adapter → Preprocessing →
// Computer Vision → EBA) distributed over two platforms.
//
// Two implementations are provided over identical computational logic:
//
//   - Baseline — the stock APD design: one-slot input buffers fed by AP
//     event handlers, periodic 50 ms callbacks per component. This design
//     drops and misaligns data depending on callback phases, execution
//     jitter and clock drift (Figure 5 of the paper).
//   - Deterministic — the DEAR design: each component is a reactor bound
//     to its service interfaces through transactors; tagged messages and
//     safe-to-process scheduling make the pipeline deterministic
//     (Section IV-B).
//
// Video frames are synthetic but structurally real: pixels encode a
// drifting travel lane and vehicles whose sizes encode distance, so the
// preprocessing and vision stages perform genuine image analysis whose
// results can be checked downstream.
package apd

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/logical"
)

// Frame dimensions (kept modest so 100 000-frame experiments stay cheap).
const (
	FrameW = 48
	FrameH = 32
)

// Frame is one synthetic camera frame.
type Frame struct {
	Seq     uint32
	Capture logical.Time // physical capture time at the camera
	Pix     []byte       // FrameW*FrameH grayscale, row-major
}

// LaneInfo is the preprocessing result: the bounding box demarcating the
// current travel lane.
type LaneInfo struct {
	Seq                      uint32
	Left, Right, Top, Bottom int
}

// Vehicle is one detected vehicle ahead.
type Vehicle struct {
	// Distance is the estimated distance in meters.
	Distance float64
	// Col is the horizontal center position in pixels.
	Col int
}

// VehicleList is the computer-vision result.
type VehicleList struct {
	Seq      uint32
	Capture  logical.Time
	Vehicles []Vehicle
}

// BrakeCmd is the EBA output.
type BrakeCmd struct {
	Seq   uint32
	Brake bool
	// Force in [0,1]; 1 = full emergency braking.
	Force float64
}

// --- wire encoding (big endian, explicit layouts) ---

// MarshalFrame encodes a frame for transmission.
func MarshalFrame(f *Frame) []byte {
	buf := make([]byte, 4+8+len(f.Pix))
	binary.BigEndian.PutUint32(buf[0:4], f.Seq)
	binary.BigEndian.PutUint64(buf[4:12], uint64(f.Capture))
	copy(buf[12:], f.Pix)
	return buf
}

// UnmarshalFrame decodes a frame.
func UnmarshalFrame(buf []byte) (*Frame, error) {
	if len(buf) != 4+8+FrameW*FrameH {
		return nil, fmt.Errorf("apd: frame payload %d bytes, want %d", len(buf), 12+FrameW*FrameH)
	}
	f := &Frame{
		Seq:     binary.BigEndian.Uint32(buf[0:4]),
		Capture: logical.Time(binary.BigEndian.Uint64(buf[4:12])),
		Pix:     make([]byte, FrameW*FrameH),
	}
	copy(f.Pix, buf[12:])
	return f, nil
}

// MarshalLane encodes lane info.
func MarshalLane(l *LaneInfo) []byte {
	buf := make([]byte, 4+4*4)
	binary.BigEndian.PutUint32(buf[0:4], l.Seq)
	binary.BigEndian.PutUint32(buf[4:8], uint32(l.Left))
	binary.BigEndian.PutUint32(buf[8:12], uint32(l.Right))
	binary.BigEndian.PutUint32(buf[12:16], uint32(l.Top))
	binary.BigEndian.PutUint32(buf[16:20], uint32(l.Bottom))
	return buf
}

// UnmarshalLane decodes lane info.
func UnmarshalLane(buf []byte) (*LaneInfo, error) {
	if len(buf) != 20 {
		return nil, fmt.Errorf("apd: lane payload %d bytes, want 20", len(buf))
	}
	return &LaneInfo{
		Seq:    binary.BigEndian.Uint32(buf[0:4]),
		Left:   int(binary.BigEndian.Uint32(buf[4:8])),
		Right:  int(binary.BigEndian.Uint32(buf[8:12])),
		Top:    int(binary.BigEndian.Uint32(buf[12:16])),
		Bottom: int(binary.BigEndian.Uint32(buf[16:20])),
	}, nil
}

// MarshalVehicles encodes a vehicle list.
func MarshalVehicles(v *VehicleList) []byte {
	buf := make([]byte, 4+8+2+len(v.Vehicles)*12)
	binary.BigEndian.PutUint32(buf[0:4], v.Seq)
	binary.BigEndian.PutUint64(buf[4:12], uint64(v.Capture))
	binary.BigEndian.PutUint16(buf[12:14], uint16(len(v.Vehicles)))
	off := 14
	for _, veh := range v.Vehicles {
		binary.BigEndian.PutUint64(buf[off:off+8], math.Float64bits(veh.Distance))
		binary.BigEndian.PutUint32(buf[off+8:off+12], uint32(veh.Col))
		off += 12
	}
	return buf
}

// UnmarshalVehicles decodes a vehicle list.
func UnmarshalVehicles(buf []byte) (*VehicleList, error) {
	if len(buf) < 14 {
		return nil, fmt.Errorf("apd: vehicles payload %d bytes, want >= 14", len(buf))
	}
	n := int(binary.BigEndian.Uint16(buf[12:14]))
	if len(buf) != 14+12*n {
		return nil, fmt.Errorf("apd: vehicles payload %d bytes for %d vehicles", len(buf), n)
	}
	v := &VehicleList{
		Seq:     binary.BigEndian.Uint32(buf[0:4]),
		Capture: logical.Time(binary.BigEndian.Uint64(buf[4:12])),
	}
	off := 14
	for i := 0; i < n; i++ {
		v.Vehicles = append(v.Vehicles, Vehicle{
			Distance: math.Float64frombits(binary.BigEndian.Uint64(buf[off : off+8])),
			Col:      int(binary.BigEndian.Uint32(buf[off+8 : off+12])),
		})
		off += 12
	}
	return v, nil
}

// MarshalBrake encodes a brake command.
func MarshalBrake(b *BrakeCmd) []byte {
	buf := make([]byte, 4+1+8)
	binary.BigEndian.PutUint32(buf[0:4], b.Seq)
	if b.Brake {
		buf[4] = 1
	}
	binary.BigEndian.PutUint64(buf[5:13], math.Float64bits(b.Force))
	return buf
}

// UnmarshalBrake decodes a brake command.
func UnmarshalBrake(buf []byte) (*BrakeCmd, error) {
	if len(buf) != 13 {
		return nil, fmt.Errorf("apd: brake payload %d bytes, want 13", len(buf))
	}
	return &BrakeCmd{
		Seq:   binary.BigEndian.Uint32(buf[0:4]),
		Brake: buf[4] == 1,
		Force: math.Float64frombits(binary.BigEndian.Uint64(buf[5:13])),
	}, nil
}
