package apd

import (
	"testing"

	"repro/internal/logical"
)

// splitConfig deploys CV and EBA on a third platform whose clock drifts
// and is only periodically synchronized — full PTIDES coordination with
// E > 0.
func splitConfig(frames int) DeterministicConfig {
	cfg := DefaultDeterministicConfig(frames)
	cfg.SplitPlatforms = true
	cfg.DriftPPB = 30_000                       // ±30 ppm oscillators
	cfg.SyncBound = logical.Millisecond         // per-platform sync error
	cfg.ClockError = 2500 * logical.Microsecond // E ≥ 2×(bound + drift accrual)
	// Per the paper, deadlines must account for WCET *and* the
	// synchronization error: clock resyncs can jump a local clock by up
	// to 2×SyncBound mid-computation, so each deadline gets that margin.
	cfg.VADeadline += 3 * logical.Millisecond
	cfg.PreDeadline += 3 * logical.Millisecond
	cfg.CVDeadline += 3 * logical.Millisecond
	cfg.EBADeadline += 3 * logical.Millisecond
	return cfg
}

func TestSplitPlatformsZeroErrors(t *testing.T) {
	d, err := NewDeterministic(1, splitConfig(testFrames))
	if err != nil {
		t.Fatal(err)
	}
	c := d.Run()
	if c.TotalErrors() != 0 {
		t.Errorf("errors across platforms: %v", c)
	}
	if c.FramesProcessed != uint64(testFrames) {
		t.Errorf("processed %d/%d", c.FramesProcessed, testFrames)
	}
}

func TestSplitPlatformsBehaviourMatchesSinglePlatform(t *testing.T) {
	// The deployment (one platform vs two, skewed clocks) must not change
	// WHAT is computed — only timing metadata.
	single, err := NewDeterministic(3, DefaultDeterministicConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	single.Run()
	split, err := NewDeterministic(3, splitConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	split.Run()
	if len(single.BrakeSeq) != len(split.BrakeSeq) {
		t.Fatalf("decision counts differ: %d vs %d", len(single.BrakeSeq), len(split.BrakeSeq))
	}
	for i := range single.BrakeSeq {
		if single.BrakeSeq[i] != split.BrakeSeq[i] {
			t.Fatalf("decision %d differs between deployments: %+v vs %+v",
				i, single.BrakeSeq[i], split.BrakeSeq[i])
		}
	}
}

func TestSplitPlatformsBehaviourIdenticalAcrossSeeds(t *testing.T) {
	run := func(seed uint64) []BrakeCmd {
		d, err := NewDeterministic(seed, splitConfig(200))
		if err != nil {
			t.Fatal(err)
		}
		d.Run()
		return d.BrakeSeq
	}
	a, b := run(1), run(42)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSplitPlatformsLatencyIncludesClockError(t *testing.T) {
	d, err := NewDeterministic(1, splitConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	d.Run()
	if len(d.Latencies) == 0 {
		t.Fatal("no latencies")
	}
	var worst logical.Duration
	for _, l := range d.Latencies {
		if l > worst {
			worst = l
		}
	}
	// Bound: sum of deadlines and allowances ≈ 90.5ms (see splitConfig).
	if worst > 95*logical.Millisecond {
		t.Errorf("worst latency %v exceeds bound", worst)
	}
	if worst <= 70*logical.Millisecond {
		t.Errorf("worst latency %v should exceed the E=0 bound (clock error delay added)", worst)
	}
}

func TestSplitPlatformsHonestBoundsAbsorbSkew(t *testing.T) {
	// With honest D/L/E bounds, the deadline slack (D - WCET ≈ 5ms)
	// pads the safe-to-process condition: even a mildly underestimated E
	// cannot make a tag arrive in the receiver's physical past. No
	// violations — the conservative design tolerates bounded lies as
	// long as total slack covers them.
	cfg := splitConfig(200)
	cfg.ClockError = 10 * logical.Microsecond // lie about E, slack absorbs it
	d, err := NewDeterministic(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := d.Run()
	if c.SafeToProcessViolations != 0 {
		t.Errorf("violations despite sufficient slack: %d", c.SafeToProcessViolations)
	}
	if c.TotalErrors() != 0 {
		t.Errorf("errors: %v", c)
	}
}

func TestSplitPlatformsExhaustedSlackDetected(t *testing.T) {
	// When the total slack (deadline margin + L + E) no longer covers the
	// real skew and latency, the violated assumption becomes visible as
	// counted safe-to-process violations — never silent reordering.
	cfg := splitConfig(400)
	cfg.DeadlineScale = 0.78                  // deadline ≈ execution time
	cfg.Latency = 200 * logical.Microsecond   // tight L
	cfg.ClockError = 10 * logical.Microsecond // tight E, real skew ~2ms
	violations := uint64(0)
	for seed := uint64(1); seed <= 4; seed++ {
		d, err := NewDeterministic(seed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c := d.Run()
		violations += c.SafeToProcessViolations
	}
	if violations == 0 {
		t.Error("expected safe-to-process violations once slack is exhausted")
	}
}
