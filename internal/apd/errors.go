package apd

import "fmt"

// ErrorCounters instruments the pipeline with the four error classes of
// Figure 5 in the paper.
type ErrorCounters struct {
	// FramesSent counts frames the video provider emitted.
	FramesSent uint64
	// FramesProcessed counts frames whose pipeline output reached EBA.
	FramesProcessed uint64

	// DroppedPre counts frames lost before Preprocessing read them
	// ("Dropped frames (Preprocessing)").
	DroppedPre uint64
	// DroppedCV counts frames lost before Computer Vision read them
	// ("Dropped frames (Computer Vision)").
	DroppedCV uint64
	// MismatchCV counts activations where Computer Vision's two inputs
	// carried different sequence numbers ("Input mismatches (CV)").
	MismatchCV uint64
	// DroppedEBA counts vehicle lists lost before EBA read them
	// ("Dropped vehicles (EBA)").
	DroppedEBA uint64

	// DeadlineViolations counts reactor deadline misses (deterministic
	// implementation only; zero in the baseline, which has no deadlines).
	DeadlineViolations uint64
	// SafeToProcessViolations counts violated latency/clock bounds
	// (deterministic implementation only).
	SafeToProcessViolations uint64

	// CorruptProcessed counts activations that computed on known-corrupt
	// inputs anyway — the stock pipeline's CV detects a sequence mismatch,
	// counts it, and still runs vehicle detection on the mismatched pair.
	// The DEAR pipeline refuses such activations, so this counter is
	// structurally zero there: every DEAR error is observable, never a
	// silently corrupted output (the contrast experiment E11 pins down).
	// It is a view on MismatchCV (same activations, different handling),
	// not an additional error class, so TotalErrors excludes it.
	CorruptProcessed uint64
}

// TotalErrors sums all error classes.
func (e *ErrorCounters) TotalErrors() uint64 {
	return e.DroppedPre + e.DroppedCV + e.MismatchCV + e.DroppedEBA +
		e.DeadlineViolations + e.SafeToProcessViolations
}

// Prevalence returns the total error count as a percentage of frames
// sent, the metric plotted in Figure 5.
func (e *ErrorCounters) Prevalence() float64 {
	if e.FramesSent == 0 {
		return 0
	}
	return 100 * float64(e.TotalErrors()) / float64(e.FramesSent)
}

func (e *ErrorCounters) String() string {
	return fmt.Sprintf("sent=%d processed=%d droppedPre=%d droppedCV=%d mismatchCV=%d droppedEBA=%d deadline=%d stp=%d (%.3f%%)",
		e.FramesSent, e.FramesProcessed, e.DroppedPre, e.DroppedCV, e.MismatchCV, e.DroppedEBA,
		e.DeadlineViolations, e.SafeToProcessViolations, e.Prevalence())
}

// seqTracker detects gaps in a sequence stream (the paper's
// instrumentation for dropped inputs).
type seqTracker struct {
	have bool
	last uint32
}

// observe records a sequence number and returns how many numbers were
// skipped since the previous observation.
func (t *seqTracker) observe(seq uint32) uint64 {
	if !t.have {
		t.have = true
		t.last = seq
		return 0
	}
	var dropped uint64
	if seq > t.last+1 {
		dropped = uint64(seq - t.last - 1)
	}
	t.last = seq
	return dropped
}
