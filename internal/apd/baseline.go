package apd

import (
	"fmt"

	"repro/internal/ara"
	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/scenario"
	"repro/internal/simnet"
)

// BaselineConfig parameterizes the stock APD brake assistant.
type BaselineConfig struct {
	// Frames to capture (the paper uses 100 000 per experiment instance).
	Frames int
	// Period of the camera and of every periodic callback (50ms in APD).
	Period logical.Duration
	// PreExecMean/CVExecMean are the mean execution times of the two
	// compute stages; ExecSigma is their Gaussian jitter.
	PreExecMean logical.Duration
	CVExecMean  logical.Duration
	ExecSigma   logical.Duration
	// TimerJitterSigma models OS timer activation jitter.
	TimerJitterSigma logical.Duration
	// CameraJitterSigma models capture-period jitter at the provider.
	CameraJitterSigma logical.Duration
	// DriftSigmaPPB is the per-platform oscillator drift distribution;
	// each platform draws its drift from N(0, DriftSigmaPPB).
	DriftSigmaPPB float64
	// SettleTime before the camera starts (service discovery warm-up).
	SettleTime logical.Duration
	// Faults installs a deterministic fault schedule on the network
	// (experiment E11); nil leaves the network fault-free, preserving the
	// Figure 5 goldens byte-for-byte.
	Faults *simnet.FaultPlan
	// SplitPlatforms deploys Computer Vision and EBA on a third platform
	// (mirroring DeterministicConfig.SplitPlatforms), so the Pre→CV event
	// notifications cross the switched network — and any installed fault
	// plan. This is the deployment under which the stock design's silent
	// corruption becomes network-induced: independently dropped or
	// reordered frame/lane notifications desynchronize CV's one-slot
	// input buffers, and CV computes on the mismatched pair anyway.
	SplitPlatforms bool
}

// DefaultBaselineConfig mirrors the APD deployment: 50ms period and
// compute stages that fit within the period.
func DefaultBaselineConfig(frames int) BaselineConfig {
	return BaselineConfig{
		Frames:            frames,
		Period:            50 * logical.Millisecond,
		PreExecMean:       18 * logical.Millisecond,
		CVExecMean:        20 * logical.Millisecond,
		ExecSigma:         1200 * logical.Microsecond,
		TimerJitterSigma:  300 * logical.Microsecond,
		CameraJitterSigma: 500 * logical.Microsecond,
		DriftSigmaPPB:     25_000, // ±25 ppm crystals
		SettleTime:        300 * logical.Millisecond,
	}
}

// oneSlot is the single-slot input buffer of the stock APD components:
// the event handler stores the most recent datum, a periodic callback
// consumes it. Data is silently overwritten when the reader is too slow
// or the writer too fast — the root cause analyzed in the paper.
type oneSlot[T any] struct {
	v    T
	full bool
}

func (s *oneSlot[T]) put(v T) {
	s.v = v
	s.full = true
}

func (s *oneSlot[T]) take() (T, bool) {
	var zero T
	if !s.full {
		return zero, false
	}
	v := s.v
	s.v = zero
	s.full = false
	return v, true
}

// Baseline is the assembled nondeterministic brake assistant.
type Baseline struct {
	Kernel   *des.Kernel
	Net      *simnet.Network
	Counters ErrorCounters
	// BrakeSeq records the EBA decisions (seq, brake) in processing
	// order, used to compare behaviour across runs.
	BrakeSeq []BrakeCmd
	// Latencies are the end-to-end physical delays from frame capture to
	// brake decision for the frames that made it through.
	Latencies []logical.Duration

	cfg     BaselineConfig
	horizon logical.Time
}

// NewBaseline builds the two-platform deployment: Video Provider on
// platform 1, the remaining four SWCs on platform 2, connected through a
// switch (Figure 4).
func NewBaseline(seed uint64, cfg BaselineConfig) (*Baseline, error) {
	// The substrate — kernel, jitter-latency switch, platforms with
	// drawn oscillator drifts — is declared, not hand-assembled; the
	// scenario compiler preserves the historical instance-stream draw
	// order (drift1, drift2, [phases], drift3) byte-for-byte.
	drawnClock := scenario.ClockSpec{DrawDrift: true, DriftSigmaPPB: cfg.DriftSigmaPPB}
	w := scenario.BuildPipeline(seed, scenario.PipelineSpec{
		InstanceStream: "apd.instance",
		Link:           pipelineLink(),
		SwitchDelay:    20 * logical.Microsecond,
		Faults:         cfg.Faults,
		Platforms: []scenario.PlatformSpec{
			{Name: "platform1", Clock: drawnClock},
			{Name: "platform2", Clock: drawnClock},
		},
	})
	k, n := w.Kernel, w.Net
	instRand := w.InstanceRand
	p2 := w.Hosts[1]

	b := &Baseline{Kernel: k, Net: n, cfg: cfg}
	b.horizon = logical.Time(cfg.SettleTime) +
		logical.Time(int64(cfg.Frames+20)*int64(cfg.Period)*1001/1000)

	// Random activation phases per component — the quantity the paper
	// identifies as dominating the error rate ("the error rate is
	// strongly influenced by the offset between the individual periodic
	// callbacks of the SWCs, which depends on when SWCs are started").
	phase := func() logical.Duration {
		return logical.Duration(instRand.Range(0, int64(cfg.Period)-1))
	}
	phasePre, phaseCV, phaseEBA := phase(), phase(), phase()

	// The optional third platform hosts CV and EBA. Its drift is drawn
	// only when splitting, after the phase draws, so the stock two-
	// platform instances — and with them the Figure 5 goldens — consume
	// exactly the same random stream as before this option existed
	// (AddPlatform draws from the instance stream at call time).
	p3 := p2
	if cfg.SplitPlatforms {
		p3 = w.AddPlatform(scenario.PlatformSpec{Name: "platform3", Clock: drawnClock})
	}

	// --- Video Adapter (platform 2): receives raw camera frames and
	// publishes them as AP events. Sporadic, no periodic callback.
	vaRT, err := ara.NewRuntime(p2, ara.Config{Name: "video-adapter"})
	if err != nil {
		return nil, err
	}
	vaSk, err := vaRT.NewSkeleton(VideoFeedIface, PipelineInstance)
	if err != nil {
		return nil, err
	}
	vaIn := p2.MustBind(VideoPort)
	vaIn.OnReceive(func(dg simnet.Datagram) {
		if err := vaSk.Notify("frame", dg.Payload); err != nil {
			panic(err)
		}
	})
	k.At(0, func() { vaSk.Offer() })

	// --- Preprocessing (platform 2).
	preRT, err := ara.NewRuntime(p2, ara.Config{Name: "preprocessing"})
	if err != nil {
		return nil, err
	}
	preSk, err := preRT.NewSkeleton(PreOutIface, PipelineInstance)
	if err != nil {
		return nil, err
	}
	k.At(0, func() { preSk.Offer() })
	var preBuf oneSlot[[]byte]
	preRT.FindService(VideoFeedIface, PipelineInstance, func(px *ara.Proxy) {
		err := px.Subscribe("frame", func(c *ara.Ctx, payload []byte) {
			preBuf.put(payload)
		}, nil)
		if err != nil {
			panic(err)
		}
	})
	preRand := k.Rand("apd.pre")
	var preTracker seqTracker
	preRT.Every(cfg.SettleTime+phasePre, cfg.Period, func(c *ara.Ctx) {
		c.Exec(absJitter(preRand, cfg.TimerJitterSigma))
		payload, ok := preBuf.take()
		if !ok {
			return // silently wait for the next trigger (stock behaviour)
		}
		frame, err := UnmarshalFrame(payload)
		if err != nil {
			panic(err)
		}
		b.Counters.DroppedPre += preTracker.observe(frame.Seq)
		c.Exec(gaussExec(preRand, cfg.PreExecMean, cfg.ExecSigma))
		lane := Preprocess(frame)
		if err := preSk.Notify("lane", MarshalLane(lane)); err != nil {
			panic(err)
		}
		if err := preSk.Notify("frame", payload); err != nil {
			panic(err)
		}
	})

	// --- Computer Vision (platform 2): two one-slot inputs.
	cvRT, err := ara.NewRuntime(p3, ara.Config{Name: "computer-vision"})
	if err != nil {
		return nil, err
	}
	cvSk, err := cvRT.NewSkeleton(CVOutIface, PipelineInstance)
	if err != nil {
		return nil, err
	}
	k.At(0, func() { cvSk.Offer() })
	var cvFrameBuf, cvLaneBuf oneSlot[[]byte]
	cvRT.FindService(PreOutIface, PipelineInstance, func(px *ara.Proxy) {
		if err := px.Subscribe("frame", func(c *ara.Ctx, payload []byte) {
			cvFrameBuf.put(payload)
		}, nil); err != nil {
			panic(err)
		}
		if err := px.Subscribe("lane", func(c *ara.Ctx, payload []byte) {
			cvLaneBuf.put(payload)
		}, nil); err != nil {
			panic(err)
		}
	})
	cvRand := k.Rand("apd.cv")
	var cvTracker seqTracker
	cvRT.Every(cfg.SettleTime+phaseCV, cfg.Period, func(c *ara.Ctx) {
		c.Exec(absJitter(cvRand, cfg.TimerJitterSigma))
		fp, okF := cvFrameBuf.take()
		lp, okL := cvLaneBuf.take()
		if !okF || !okL {
			return
		}
		frame, err := UnmarshalFrame(fp)
		if err != nil {
			panic(err)
		}
		lane, err := UnmarshalLane(lp)
		if err != nil {
			panic(err)
		}
		b.Counters.DroppedCV += cvTracker.observe(frame.Seq)
		if frame.Seq != lane.Seq {
			b.Counters.MismatchCV++
			// Stock behaviour: nothing stops the pipeline — vehicle
			// detection runs on the mismatched pair and EBA later decides
			// on the corrupt result. This is the silent-corruption path
			// the DEAR variant structurally refuses.
			b.Counters.CorruptProcessed++
		}
		c.Exec(gaussExec(cvRand, cfg.CVExecMean, cfg.ExecSigma))
		vehicles := DetectVehicles(frame, lane)
		if err := cvSk.Notify("vehicles", MarshalVehicles(vehicles)); err != nil {
			panic(err)
		}
	})

	// --- EBA (platform 2).
	ebaRT, err := ara.NewRuntime(p3, ara.Config{Name: "eba"})
	if err != nil {
		return nil, err
	}
	var ebaBuf oneSlot[[]byte]
	ebaRT.FindService(CVOutIface, PipelineInstance, func(px *ara.Proxy) {
		if err := px.Subscribe("vehicles", func(c *ara.Ctx, payload []byte) {
			ebaBuf.put(payload)
		}, nil); err != nil {
			panic(err)
		}
	})
	ebaRand := k.Rand("apd.eba")
	var ebaTracker seqTracker
	var ebaState EBAState
	ebaRT.Every(cfg.SettleTime+phaseEBA, cfg.Period, func(c *ara.Ctx) {
		c.Exec(absJitter(ebaRand, cfg.TimerJitterSigma))
		payload, ok := ebaBuf.take()
		if !ok {
			return
		}
		vehicles, err := UnmarshalVehicles(payload)
		if err != nil {
			panic(err)
		}
		b.Counters.DroppedEBA += ebaTracker.observe(vehicles.Seq)
		cmd := ebaState.Decide(vehicles)
		b.Counters.FramesProcessed++
		b.BrakeSeq = append(b.BrakeSeq, *cmd)
		b.Latencies = append(b.Latencies, logical.Duration(c.Now()-vehicles.Capture))
	})

	// --- Video Provider (platform 1): the camera, sending one frame
	// roughly every 50ms over a proprietary (raw datagram) protocol.
	scene := &Scene{}
	w.SpawnFrameSource(cameraSource(p2, cfg.Frames, cfg.Period, cfg.CameraJitterSigma, cfg.SettleTime),
		func(now logical.Time) []byte {
			frame := scene.Generate(now)
			b.Counters.FramesSent++
			return MarshalFrame(frame)
		})

	return b, nil
}

// pipelineLink is the shared network model of both brake-assistant
// variants: Ethernet-scale base latency, ~1 Gbit/s serialization,
// submillisecond jitter.
func pipelineLink() scenario.JitterLink {
	return scenario.JitterLink{
		Base:    100 * logical.Microsecond,
		PerByte: 8,
		Sigma:   60 * logical.Microsecond,
		Stream:  "apd.net",
	}
}

// cameraSource is the shared camera declaration of both variants: the
// Video Provider on platform 1 feeding the Video Adapter on platform 2.
func cameraSource(p2 *simnet.Host, frames int, period, jitterSigma, settle logical.Duration) scenario.FrameSource {
	return scenario.FrameSource{
		Platform:    0,
		Dst:         simnet.Addr{Host: p2.ID(), Port: VideoPort},
		Count:       frames,
		Period:      period,
		JitterSigma: jitterSigma,
		Settle:      settle,
		Stream:      "apd.camera",
		Name:        "video-provider",
	}
}

func gaussExec(r *des.Rand, mean, sigma logical.Duration) logical.Duration {
	d := logical.Duration(r.Norm(float64(mean), float64(sigma)))
	if d < mean/2 {
		d = mean / 2
	}
	return d
}

func absJitter(r *des.Rand, sigma logical.Duration) logical.Duration {
	if sigma <= 0 {
		return 0
	}
	d := logical.Duration(r.Norm(0, float64(sigma)))
	if d < 0 {
		d = -d
	}
	return d
}

// Run executes the experiment to completion and returns the counters.
// The kernel is shut down afterwards, unwinding all simulated processes;
// the Baseline's recorded results remain readable.
func (b *Baseline) Run() *ErrorCounters {
	b.Kernel.Run(b.horizon)
	b.Kernel.Shutdown()
	return &b.Counters
}

// Describe summarizes the configuration.
func (b *Baseline) Describe() string {
	return fmt.Sprintf("baseline APD brake assistant: %d frames @ %s", b.cfg.Frames, b.cfg.Period)
}
