package apd

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/logical"
)

func TestSceneGeneratesSequentialFrames(t *testing.T) {
	s := &Scene{}
	f0 := s.Generate(100)
	f1 := s.Generate(200)
	if f0.Seq != 0 || f1.Seq != 1 {
		t.Errorf("seqs = %d, %d", f0.Seq, f1.Seq)
	}
	if f0.Capture != 100 || f1.Capture != 200 {
		t.Errorf("captures = %v, %v", f0.Capture, f1.Capture)
	}
	if len(f0.Pix) != FrameW*FrameH {
		t.Errorf("pix len = %d", len(f0.Pix))
	}
}

func TestPreprocessFindsLane(t *testing.T) {
	s := &Scene{}
	for i := 0; i < 50; i++ {
		f := s.Generate(0)
		lane := Preprocess(f)
		if lane.Seq != f.Seq {
			t.Fatalf("lane seq %d != frame seq %d", lane.Seq, f.Seq)
		}
		if lane.Left >= lane.Right {
			t.Fatalf("frame %d: degenerate lane [%d, %d]", f.Seq, lane.Left, lane.Right)
		}
		// The lane must bracket the lane center at the bottom row.
		center := s.laneCenterAt(f.Seq, FrameH-1)
		if center < lane.Left || center > lane.Right {
			t.Errorf("frame %d: center %d outside [%d, %d]", f.Seq, center, lane.Left, lane.Right)
		}
	}
}

func TestDetectVehiclesApproximatesTruth(t *testing.T) {
	s := &Scene{}
	checked := 0
	for i := 0; i < 400; i++ {
		f := s.Generate(0)
		truth, present := s.Truth(f.Seq)
		lane := Preprocess(f)
		got := DetectVehicles(f, lane)
		if !present {
			continue
		}
		if len(got.Vehicles) == 0 {
			// Very distant vehicles (tiny blobs) may be missed; only
			// demand detection within EBA-relevant range.
			if truth < 40 {
				t.Errorf("frame %d: vehicle at %.1fm not detected", f.Seq, truth)
			}
			continue
		}
		est := got.Vehicles[0].Distance
		if truth < 40 && math.Abs(est-truth)/truth > 0.35 {
			t.Errorf("frame %d: distance %.1f vs truth %.1f", f.Seq, est, truth)
		}
		checked++
	}
	if checked < 100 {
		t.Errorf("only %d frames checked against truth", checked)
	}
}

func TestEBADecidesToBrakeWhenClose(t *testing.T) {
	var s EBAState
	far := &VehicleList{Seq: 1, Vehicles: []Vehicle{{Distance: 50}}}
	if cmd := s.Decide(far); cmd.Brake {
		t.Error("braking at 50m")
	}
	near := &VehicleList{Seq: 2, Vehicles: []Vehicle{{Distance: 10}}}
	cmd := s.Decide(near)
	if !cmd.Brake {
		t.Error("not braking at 10m")
	}
	if cmd.Force <= 0 || cmd.Force > 1 {
		t.Errorf("force = %v", cmd.Force)
	}
}

func TestEBAEmptyListClearsState(t *testing.T) {
	var s EBAState
	s.Decide(&VehicleList{Seq: 1, Vehicles: []Vehicle{{Distance: 20}}})
	cmd := s.Decide(&VehicleList{Seq: 2})
	if cmd.Brake {
		t.Error("braking with no vehicles")
	}
	if s.havePrev {
		t.Error("state not cleared")
	}
}

func TestEBAPipelineTriggersBrakesOverScript(t *testing.T) {
	// Over one full vehicle cycle (900 frames) the scripted vehicle
	// approaches below the brake threshold: the full pipeline must brake
	// at least once and release afterwards.
	s := &Scene{}
	var eba EBAState
	brakes, releases := 0, 0
	braking := false
	for i := 0; i < 900; i++ {
		f := s.Generate(0)
		lane := Preprocess(f)
		v := DetectVehicles(f, lane)
		cmd := eba.Decide(v)
		if cmd.Brake && !braking {
			brakes++
		}
		if !cmd.Brake && braking {
			releases++
		}
		braking = cmd.Brake
	}
	if brakes == 0 {
		t.Error("pipeline never braked over a full approach cycle")
	}
	if releases == 0 {
		t.Error("pipeline never released the brake")
	}
}

func TestFrameMarshalRoundTrip(t *testing.T) {
	s := &Scene{}
	f := s.Generate(12345)
	got, err := UnmarshalFrame(MarshalFrame(f))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != f.Seq || got.Capture != f.Capture {
		t.Errorf("header mismatch: %+v", got)
	}
	for i := range f.Pix {
		if got.Pix[i] != f.Pix[i] {
			t.Fatalf("pixel %d differs", i)
		}
	}
}

func TestFrameUnmarshalRejectsBadSize(t *testing.T) {
	if _, err := UnmarshalFrame(make([]byte, 10)); err == nil {
		t.Error("want error")
	}
}

func TestLaneMarshalRoundTrip(t *testing.T) {
	l := &LaneInfo{Seq: 7, Left: 3, Right: 40, Top: 16, Bottom: 31}
	got, err := UnmarshalLane(MarshalLane(l))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *l {
		t.Errorf("got %+v, want %+v", got, l)
	}
}

func TestVehiclesMarshalRoundTrip(t *testing.T) {
	v := &VehicleList{Seq: 9, Capture: 555, Vehicles: []Vehicle{
		{Distance: 13.5, Col: 20},
		{Distance: 47.25, Col: 31},
	}}
	got, err := UnmarshalVehicles(MarshalVehicles(v))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != v.Seq || got.Capture != v.Capture || len(got.Vehicles) != 2 {
		t.Fatalf("got %+v", got)
	}
	for i := range v.Vehicles {
		if got.Vehicles[i] != v.Vehicles[i] {
			t.Errorf("vehicle %d: %+v vs %+v", i, got.Vehicles[i], v.Vehicles[i])
		}
	}
}

func TestVehiclesEmptyRoundTrip(t *testing.T) {
	v := &VehicleList{Seq: 1, Capture: 2}
	got, err := UnmarshalVehicles(MarshalVehicles(v))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vehicles) != 0 {
		t.Errorf("got %+v", got)
	}
}

func TestBrakeMarshalRoundTrip(t *testing.T) {
	b := &BrakeCmd{Seq: 3, Brake: true, Force: 0.75}
	got, err := UnmarshalBrake(MarshalBrake(b))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *b {
		t.Errorf("got %+v, want %+v", got, b)
	}
}

// Property: lane marshal round-trips arbitrary boxes.
func TestLaneMarshalProperty(t *testing.T) {
	f := func(seq uint32, l, r, top, bot uint16) bool {
		in := &LaneInfo{Seq: seq, Left: int(l), Right: int(r), Top: int(top), Bottom: int(bot)}
		out, err := UnmarshalLane(MarshalLane(in))
		return err == nil && *out == *in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: vehicle list marshal round-trips arbitrary contents.
func TestVehiclesMarshalProperty(t *testing.T) {
	f := func(seq uint32, cap int64, dists []float64) bool {
		if len(dists) > 100 {
			dists = dists[:100]
		}
		in := &VehicleList{Seq: seq, Capture: logical.Time(cap)}
		for i, d := range dists {
			if math.IsNaN(d) {
				d = 0
			}
			in.Vehicles = append(in.Vehicles, Vehicle{Distance: d, Col: i})
		}
		out, err := UnmarshalVehicles(MarshalVehicles(in))
		if err != nil || out.Seq != in.Seq || len(out.Vehicles) != len(in.Vehicles) {
			return false
		}
		for i := range in.Vehicles {
			if out.Vehicles[i] != in.Vehicles[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSeqTracker(t *testing.T) {
	var tr seqTracker
	if d := tr.observe(5); d != 0 {
		t.Errorf("first observe = %d", d)
	}
	if d := tr.observe(6); d != 0 {
		t.Errorf("consecutive = %d", d)
	}
	if d := tr.observe(9); d != 2 {
		t.Errorf("gap = %d, want 2", d)
	}
	if d := tr.observe(9); d != 0 {
		t.Errorf("repeat = %d", d)
	}
}

func TestErrorCountersPrevalence(t *testing.T) {
	e := ErrorCounters{FramesSent: 1000, DroppedCV: 10, MismatchCV: 5, DroppedEBA: 5}
	if e.TotalErrors() != 20 {
		t.Errorf("total = %d", e.TotalErrors())
	}
	if e.Prevalence() != 2.0 {
		t.Errorf("prevalence = %v", e.Prevalence())
	}
	var zero ErrorCounters
	if zero.Prevalence() != 0 {
		t.Error("zero counters should have zero prevalence")
	}
}
