package apd

import (
	"repro/internal/ara"
	"repro/internal/someip"
)

// Service interfaces of the brake-assistant pipeline (Figure 4). Event
// notifications carry the data from one SWC to the next.

// VideoFeedIface is offered by the Video Adapter: the camera frames.
var VideoFeedIface = &ara.ServiceInterface{
	Name:  "VideoFeed",
	ID:    0x3001,
	Major: 1,
	Events: []ara.EventSpec{
		{ID: someip.EventID(1), Name: "frame", Eventgroup: 1},
	},
}

// PreOutIface is offered by Preprocessing: the lane information plus the
// forwarded original frame (Computer Vision needs both).
var PreOutIface = &ara.ServiceInterface{
	Name:  "PreOut",
	ID:    0x3002,
	Major: 1,
	Events: []ara.EventSpec{
		{ID: someip.EventID(1), Name: "frame", Eventgroup: 1},
		{ID: someip.EventID(2), Name: "lane", Eventgroup: 1},
	},
}

// CVOutIface is offered by Computer Vision: the detected vehicles.
var CVOutIface = &ara.ServiceInterface{
	Name:  "CVOut",
	ID:    0x3003,
	Major: 1,
	Events: []ara.EventSpec{
		{ID: someip.EventID(1), Name: "vehicles", Eventgroup: 1},
	},
}

// Instance used by all pipeline services.
const PipelineInstance someip.InstanceID = 1

// VideoPort is the raw UDP port of the Video Adapter's proprietary
// camera protocol.
const VideoPort uint16 = 5004
