package apd

import (
	"repro/internal/ara"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/reactor"
	"repro/internal/scenario"
	"repro/internal/simnet"
)

// DeterministicConfig parameterizes the DEAR brake assistant of
// Section IV-B.
type DeterministicConfig struct {
	Frames int
	Period logical.Duration
	// Execution-time model (identical to the baseline's, so that the two
	// implementations are compared under the same physical conditions).
	PreExecMean       logical.Duration
	CVExecMean        logical.Duration
	ExecSigma         logical.Duration
	CameraJitterSigma logical.Duration
	SettleTime        logical.Duration

	// Deadlines per the paper: "we set the deadlines to 5ms for Video
	// Adapter, 25ms for Preprocessing, 25ms for Computer Vision and 5ms
	// for EBA. We further assume a maximum communication latency of 5ms."
	VADeadline  logical.Duration
	PreDeadline logical.Duration
	CVDeadline  logical.Duration
	EBADeadline logical.Duration
	Latency     logical.Duration
	// ClockError is zero: "all SWCs of this application are deployed to
	// the same platform".
	ClockError logical.Duration

	// DeadlineScale scales every deadline (and the latency bound stays
	// fixed); values below 1 deliberately trade sporadic observable
	// errors for lower end-to-end latency, the trade-off discussed at the
	// end of Section IV-B.
	DeadlineScale float64

	// SplitPlatforms deploys Computer Vision and EBA on a third platform
	// with drifting, periodically synchronized clocks — an extension
	// beyond the paper's single-platform deterministic deployment that
	// exercises the full PTIDES coordination (E > 0). ClockError must
	// then bound the relative clock error: 2×(SyncBound + drift accrual).
	SplitPlatforms bool
	// DriftPPB is the oscillator error magnitude per platform when
	// splitting (each platform gets ±DriftPPB).
	DriftPPB int64
	// SyncBound is the per-platform synchronization bound when splitting.
	SyncBound logical.Duration

	// Faults installs a deterministic fault schedule on the network
	// (experiment E11); nil leaves the network fault-free, preserving the
	// E4 goldens byte-for-byte. Combine with SplitPlatforms to put faults
	// on the inter-SWC path (platform 2 ↔ platform 3).
	Faults *simnet.FaultPlan
}

// DefaultDeterministicConfig mirrors the paper's deployment numbers.
func DefaultDeterministicConfig(frames int) DeterministicConfig {
	return DeterministicConfig{
		Frames:            frames,
		Period:            50 * logical.Millisecond,
		PreExecMean:       18 * logical.Millisecond,
		CVExecMean:        20 * logical.Millisecond,
		ExecSigma:         1200 * logical.Microsecond,
		CameraJitterSigma: 500 * logical.Microsecond,
		SettleTime:        300 * logical.Millisecond,
		VADeadline:        5 * logical.Millisecond,
		PreDeadline:       25 * logical.Millisecond,
		CVDeadline:        25 * logical.Millisecond,
		EBADeadline:       5 * logical.Millisecond,
		Latency:           5 * logical.Millisecond,
		DeadlineScale:     1.0,
	}
}

func (c *DeterministicConfig) scaled(d logical.Duration) logical.Duration {
	if c.DeadlineScale <= 0 {
		return d
	}
	s := logical.Duration(float64(d) * c.DeadlineScale)
	if s < logical.Microsecond {
		s = logical.Microsecond
	}
	return s
}

// Deterministic is the assembled DEAR brake assistant.
type Deterministic struct {
	Kernel   *des.Kernel
	Net      *simnet.Network
	Counters ErrorCounters
	// BrakeSeq records EBA decisions in tag order.
	BrakeSeq []BrakeCmd
	// Latencies are the end-to-end physical delays from frame capture to
	// brake decision, one entry per processed frame.
	Latencies []logical.Duration
	// TagTrace records the logical tags at which EBA processed frames,
	// relative to each frame's arrival tag (for replay comparison).
	TagTrace []logical.Tag

	cfg      DeterministicConfig
	horizon  logical.Time
	swcs     []*core.SWC
	watchers []setStats
}

// NewDeterministic builds the DEAR deployment: the camera remains on
// platform 1; Video Adapter, Preprocessing, Computer Vision and EBA are
// reactor-based SWCs on platform 2 communicating via tagged messages.
func NewDeterministic(seed uint64, cfg DeterministicConfig) (*Deterministic, error) {
	// Same declarative substrate as the baseline (identical link model
	// and switch delay, so the two variants are compared under the same
	// physical conditions); the DEAR deployment draws no per-instance
	// randomness — drifts are fixed, clocks resynchronize periodically.
	platforms := []scenario.PlatformSpec{{Name: "platform1"}}
	if cfg.SplitPlatforms {
		platforms = append(platforms,
			scenario.PlatformSpec{Name: "platform2", Clock: scenario.ClockSpec{
				DriftPPB: cfg.DriftPPB, SyncBound: cfg.SyncBound,
				SyncPeriod: 500 * logical.Millisecond, SyncStream: "sync.p2",
			}},
			scenario.PlatformSpec{Name: "platform3", Clock: scenario.ClockSpec{
				DriftPPB: -cfg.DriftPPB, SyncBound: cfg.SyncBound,
				SyncPeriod: 500 * logical.Millisecond, SyncStream: "sync.p3",
			}})
	} else {
		platforms = append(platforms, scenario.PlatformSpec{Name: "platform2"})
	}
	w := scenario.BuildPipeline(seed, scenario.PipelineSpec{
		Link:        pipelineLink(),
		SwitchDelay: 20 * logical.Microsecond,
		Faults:      cfg.Faults,
		Platforms:   platforms,
	})
	k, n := w.Kernel, w.Net
	p2 := w.Hosts[1]
	p3 := p2
	if cfg.SplitPlatforms {
		p3 = w.Hosts[2]
	}

	d := &Deterministic{Kernel: k, Net: n, cfg: cfg}
	d.horizon = logical.Time(cfg.SettleTime) +
		logical.Time(int64(cfg.Frames+20)*int64(cfg.Period))
	envTimeout := logical.Duration(d.horizon) + logical.Duration(logical.Second)

	link := core.LinkConfig{Latency: cfg.Latency, ClockError: cfg.ClockError}
	tc := func(deadline logical.Duration) core.TransactorConfig {
		return core.TransactorConfig{Deadline: cfg.scaled(deadline), Link: link}
	}

	// --- Video Adapter: a sensor reactor. Frames arrive over the
	// proprietary protocol and are inserted into the reactor network with
	// a tag equal to the physical time of message reception.
	va, err := core.NewSWC(p2, ara.Config{Name: "video-adapter"})
	if err != nil {
		return nil, err
	}
	d.swcs = append(d.swcs, va)
	va.Start(core.StartOptions{KeepAlive: true, Timeout: envTimeout}, func(env *reactor.Environment) error {
		sk, err := va.Runtime().NewSkeleton(VideoFeedIface, PipelineInstance)
		if err != nil {
			return err
		}
		set, err := core.NewServerEventTransactor(env, va, sk, "frame", tc(cfg.VADeadline))
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		frames := reactor.NewPhysicalAction[[]byte](logic, "frames", 0)
		out := reactor.NewOutputPort[[]byte](logic, "out")
		reactor.Connect(out, set.In)
		logic.AddReaction("forward").Triggers(frames).Effects(out).Do(func(c *reactor.Ctx) {
			payload, _ := frames.Get(c)
			out.Set(c, payload)
		})
		// The raw camera endpoint feeds the physical action.
		ep := p2.MustBind(VideoPort)
		ep.OnReceive(func(dg simnet.Datagram) {
			frames.ScheduleAsync(dg.Payload, 0)
		})
		sk.Offer()
		// Track deadline violations of the sensor's forwarding chain.
		d.watch(setStats{set: set})
		return nil
	})

	// --- Preprocessing.
	pre, err := core.NewSWC(p2, ara.Config{Name: "preprocessing"})
	if err != nil {
		return nil, err
	}
	d.swcs = append(d.swcs, pre)
	preRand := k.Rand("apd.pre")
	pre.Start(core.StartOptions{KeepAlive: true, Timeout: envTimeout}, func(env *reactor.Environment) error {
		cet, err := core.NewClientEventTransactor(env, pre, VideoFeedIface, PipelineInstance, "frame", tc(cfg.PreDeadline))
		if err != nil {
			return err
		}
		sk, err := pre.Runtime().NewSkeleton(PreOutIface, PipelineInstance)
		if err != nil {
			return err
		}
		setLane, err := core.NewServerEventTransactor(env, pre, sk, "lane", tc(cfg.PreDeadline))
		if err != nil {
			return err
		}
		setFrame, err := core.NewServerEventTransactor(env, pre, sk, "frame", tc(cfg.PreDeadline))
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		in := reactor.NewInputPort[[]byte](logic, "in")
		laneOut := reactor.NewOutputPort[[]byte](logic, "laneOut")
		frameOut := reactor.NewOutputPort[[]byte](logic, "frameOut")
		reactor.Connect(cet.Out, in)
		reactor.Connect(laneOut, setLane.In)
		reactor.Connect(frameOut, setFrame.In)
		var tracker seqTracker
		logic.AddReaction("process").Triggers(in).Effects(laneOut, frameOut).Do(func(c *reactor.Ctx) {
			payload, _ := in.Get(c)
			frame, err := UnmarshalFrame(payload)
			if err != nil {
				panic(err)
			}
			d.Counters.DroppedPre += tracker.observe(frame.Seq)
			c.DoWork(gaussExec(preRand, cfg.PreExecMean, cfg.ExecSigma))
			lane := Preprocess(frame)
			laneOut.Set(c, MarshalLane(lane))
			frameOut.Set(c, payload)
		})
		sk.Offer()
		d.watch(setStats{set: setLane}, setStats{set: setFrame}, setStats{cet: cet})
		return nil
	})

	// --- Computer Vision: two inputs that must carry the same tag.
	cv, err := core.NewSWC(p3, ara.Config{Name: "computer-vision"})
	if err != nil {
		return nil, err
	}
	d.swcs = append(d.swcs, cv)
	cvRand := k.Rand("apd.cv")
	cv.Start(core.StartOptions{KeepAlive: true, Timeout: envTimeout}, func(env *reactor.Environment) error {
		cetFrame, err := core.NewClientEventTransactor(env, cv, PreOutIface, PipelineInstance, "frame", tc(cfg.CVDeadline))
		if err != nil {
			return err
		}
		cetLane, err := core.NewClientEventTransactor(env, cv, PreOutIface, PipelineInstance, "lane", tc(cfg.CVDeadline))
		if err != nil {
			return err
		}
		sk, err := cv.Runtime().NewSkeleton(CVOutIface, PipelineInstance)
		if err != nil {
			return err
		}
		set, err := core.NewServerEventTransactor(env, cv, sk, "vehicles", tc(cfg.CVDeadline))
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		frameIn := reactor.NewInputPort[[]byte](logic, "frame")
		laneIn := reactor.NewInputPort[[]byte](logic, "lane")
		out := reactor.NewOutputPort[[]byte](logic, "out")
		reactor.Connect(cetFrame.Out, frameIn)
		reactor.Connect(cetLane.Out, laneIn)
		reactor.Connect(out, set.In)
		var tracker seqTracker
		logic.AddReaction("process").Triggers(frameIn, laneIn).Effects(out).Do(func(c *reactor.Ctx) {
			fp, okF := frameIn.Get(c)
			lp, okL := laneIn.Get(c)
			if !okF || !okL {
				// "If only one input is received, this is considered an
				// error." — observable, counted, never silent.
				d.Counters.MismatchCV++
				return
			}
			frame, err := UnmarshalFrame(fp)
			if err != nil {
				panic(err)
			}
			lane, err := UnmarshalLane(lp)
			if err != nil {
				panic(err)
			}
			d.Counters.DroppedCV += tracker.observe(frame.Seq)
			if frame.Seq != lane.Seq {
				d.Counters.MismatchCV++
				return
			}
			c.DoWork(gaussExec(cvRand, cfg.CVExecMean, cfg.ExecSigma))
			out.Set(c, MarshalVehicles(DetectVehicles(frame, lane)))
		})
		sk.Offer()
		d.watch(setStats{set: set}, setStats{cet: cetFrame}, setStats{cet: cetLane})
		return nil
	})

	// --- EBA.
	eba, err := core.NewSWC(p3, ara.Config{Name: "eba"})
	if err != nil {
		return nil, err
	}
	d.swcs = append(d.swcs, eba)
	eba.Start(core.StartOptions{KeepAlive: true, Timeout: envTimeout}, func(env *reactor.Environment) error {
		cet, err := core.NewClientEventTransactor(env, eba, CVOutIface, PipelineInstance, "vehicles", tc(cfg.EBADeadline))
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		in := reactor.NewInputPort[[]byte](logic, "in")
		reactor.Connect(cet.Out, in)
		var tracker seqTracker
		var state EBAState
		decide := logic.AddReaction("decide").Triggers(in)
		decide.WithDeadline(cfg.scaled(cfg.EBADeadline), func(c *reactor.Ctx) {
			d.Counters.DeadlineViolations++
		})
		decide.Do(func(c *reactor.Ctx) {
			payload, _ := in.Get(c)
			vehicles, err := UnmarshalVehicles(payload)
			if err != nil {
				panic(err)
			}
			d.Counters.DroppedEBA += tracker.observe(vehicles.Seq)
			cmd := state.Decide(vehicles)
			d.Counters.FramesProcessed++
			d.BrakeSeq = append(d.BrakeSeq, *cmd)
			d.Latencies = append(d.Latencies, logical.Duration(c.PhysicalTime()-vehicles.Capture))
			d.TagTrace = append(d.TagTrace, c.Tag())
		})
		d.watch(setStats{cet: cet})
		return nil
	})

	// --- Video Provider (platform 1), identical camera model to the
	// baseline.
	scene := &Scene{}
	w.SpawnFrameSource(cameraSource(p2, cfg.Frames, cfg.Period, cfg.CameraJitterSigma, cfg.SettleTime),
		func(now logical.Time) []byte {
			frame := scene.Generate(now)
			d.Counters.FramesSent++
			return MarshalFrame(frame)
		})

	return d, nil
}

// setStats lets the harness collect transactor statistics at the end of
// a run without holding references in experiment code.
type setStats struct {
	set *core.ServerEventTransactor
	cet *core.ClientEventTransactor
}

func (d *Deterministic) watch(ss ...setStats) {
	d.watchers = append(d.watchers, ss...)
}

// Run executes the experiment and folds transactor statistics into the
// counters.
func (d *Deterministic) Run() *ErrorCounters {
	d.Kernel.Run(d.horizon)
	defer d.Kernel.Shutdown()
	for _, w := range d.watchers {
		var s core.TransactorStats
		switch {
		case w.set != nil:
			s = w.set.Stats()
		case w.cet != nil:
			s = w.cet.Stats()
		}
		d.Counters.DeadlineViolations += s.DeadlineViolations
		d.Counters.SafeToProcessViolations += s.SafeToProcessViolations
	}
	return &d.Counters
}
