package apd

import (
	"testing"

	"repro/internal/logical"
)

// testFrames keeps unit-test runtimes small; the full 100 000-frame
// experiments run from cmd/ and the benchmarks.
const testFrames = 400

func TestBaselineRunsToCompletion(t *testing.T) {
	cfg := DefaultBaselineConfig(testFrames)
	b, err := NewBaseline(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := b.Run()
	if c.FramesSent != testFrames {
		t.Errorf("sent = %d, want %d", c.FramesSent, testFrames)
	}
	if c.FramesProcessed == 0 {
		t.Error("nothing processed")
	}
	// The pipeline may drop, but the bulk must get through.
	if c.FramesProcessed < uint64(testFrames)/2 {
		t.Errorf("processed only %d of %d", c.FramesProcessed, testFrames)
	}
}

func TestBaselineReproducibleWithSameSeed(t *testing.T) {
	run := func() ErrorCounters {
		b, err := NewBaseline(33, DefaultBaselineConfig(testFrames))
		if err != nil {
			t.Fatal(err)
		}
		return *b.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed differs:\n%v\n%v", &a, &b)
	}
}

func TestBaselineErrorRateVariesAcrossSeeds(t *testing.T) {
	// The hallmark of Figure 5: error prevalence varies strongly between
	// experiment instances.
	var rates []float64
	distinct := map[uint64]bool{}
	for seed := uint64(0); seed < 8; seed++ {
		b, err := NewBaseline(seed, DefaultBaselineConfig(testFrames))
		if err != nil {
			t.Fatal(err)
		}
		c := b.Run()
		rates = append(rates, c.Prevalence())
		distinct[c.TotalErrors()] = true
	}
	if len(distinct) < 3 {
		t.Errorf("error counts suspiciously uniform across seeds: %v", rates)
	}
}

func TestBaselineBrakeSequenceDiffersAcrossSeeds(t *testing.T) {
	// Nondeterminism is visible in behaviour, not only in counters: the
	// EBA decision sequence depends on which frames were dropped.
	sig := func(seed uint64) (uint64, int) {
		b, err := NewBaseline(seed, DefaultBaselineConfig(testFrames))
		if err != nil {
			t.Fatal(err)
		}
		b.Run()
		var h uint64 = 14695981039346656037
		for _, cmd := range b.BrakeSeq {
			h ^= uint64(cmd.Seq)
			if cmd.Brake {
				h ^= 0xff
			}
			h *= 1099511628211
		}
		return h, len(b.BrakeSeq)
	}
	h1, n1 := sig(1)
	h2, n2 := sig(2)
	h3, n3 := sig(3)
	if h1 == h2 && h2 == h3 && n1 == n2 && n2 == n3 {
		t.Error("baseline produced identical behaviour across seeds; expected divergence")
	}
}

func TestDeterministicZeroErrors(t *testing.T) {
	d, err := NewDeterministic(1, DefaultDeterministicConfig(testFrames))
	if err != nil {
		t.Fatal(err)
	}
	c := d.Run()
	if c.FramesSent != testFrames {
		t.Errorf("sent = %d", c.FramesSent)
	}
	if c.FramesProcessed != uint64(testFrames) {
		t.Errorf("processed = %d, want every frame (%d)", c.FramesProcessed, testFrames)
	}
	if c.TotalErrors() != 0 {
		t.Errorf("errors = %d (%v), want 0", c.TotalErrors(), c)
	}
}

func TestDeterministicBrakeSequenceIdenticalAcrossSeeds(t *testing.T) {
	// The decisive property: physical jitter (different seeds) must not
	// change the processing outcome — every frame processed exactly once
	// in order, so the brake sequence is a pure function of the frames.
	run := func(seed uint64) []BrakeCmd {
		d, err := NewDeterministic(seed, DefaultDeterministicConfig(testFrames))
		if err != nil {
			t.Fatal(err)
		}
		d.Run()
		return d.BrakeSeq
	}
	a := run(1)
	b := run(99)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("no decisions recorded")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across physical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDeterministicLatencyBounded(t *testing.T) {
	cfg := DefaultDeterministicConfig(testFrames)
	d, err := NewDeterministic(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Run()
	if len(d.Latencies) == 0 {
		t.Fatal("no latencies recorded")
	}
	// End-to-end bound: VA(5) + L(5) + Pre(25) + L(5) + CV(25) + L(5) =
	// 70ms of logical offset, plus the EBA deadline of physical slack.
	bound := logical.Duration(80 * logical.Millisecond)
	var worst logical.Duration
	for _, l := range d.Latencies {
		if l > worst {
			worst = l
		}
	}
	if worst > bound {
		t.Errorf("worst latency %v exceeds bound %v", worst, bound)
	}
	// And it cannot be faster than the pipeline's logical depth.
	if worst < logical.Duration(50*logical.Millisecond) {
		t.Errorf("worst latency %v implausibly low", worst)
	}
}

func TestDeterministicReproducibleWithSameSeed(t *testing.T) {
	run := func() ([]logical.Tag, ErrorCounters) {
		d, err := NewDeterministic(77, DefaultDeterministicConfig(testFrames))
		if err != nil {
			t.Fatal(err)
		}
		c := d.Run()
		return d.TagTrace, *c
	}
	tagsA, cA := run()
	tagsB, cB := run()
	if cA != cB {
		t.Errorf("counters differ: %v vs %v", &cA, &cB)
	}
	if len(tagsA) != len(tagsB) {
		t.Fatalf("tag trace lengths differ")
	}
	for i := range tagsA {
		if tagsA[i] != tagsB[i] {
			t.Fatalf("tag %d differs: %v vs %v", i, tagsA[i], tagsB[i])
		}
	}
}

func TestDeterministicTightDeadlinesViolateObservably(t *testing.T) {
	cfg := DefaultDeterministicConfig(testFrames)
	cfg.DeadlineScale = 0.3 // Pre/CV deadlines ~7.5ms << ~20ms of work
	d, err := NewDeterministic(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := d.Run()
	if c.DeadlineViolations == 0 {
		t.Error("expected deadline violations at scale 0.3")
	}
	// Errors must be observable, never silent: processed + violations
	// accounts for the frames.
	if c.FramesProcessed == uint64(testFrames) {
		t.Error("all frames processed despite violations — violations had no effect?")
	}
}

func TestDeterministicScaleOneMatchesDefault(t *testing.T) {
	cfg := DefaultDeterministicConfig(100)
	cfg.DeadlineScale = 1.0
	d, err := NewDeterministic(5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := d.Run()
	if c.TotalErrors() != 0 {
		t.Errorf("errors at scale 1.0: %v", c)
	}
}
