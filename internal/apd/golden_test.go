package apd

import (
	"testing"
)

// TestDeterministicMatchesPureFunctionPipeline is the strongest
// correctness check for the DEAR implementation: with zero drops and
// in-order processing, the distributed pipeline must compute exactly
// what the plain sequential composition of the stage functions computes
// on the same frame sequence. Communication, tagging, transactors and
// scheduling must be semantically invisible.
func TestDeterministicMatchesPureFunctionPipeline(t *testing.T) {
	const frames = 300

	// Reference: the pure function pipeline.
	scene := &Scene{}
	var ebaRef EBAState
	var want []BrakeCmd
	for i := 0; i < frames; i++ {
		f := scene.Generate(0)
		lane := Preprocess(f)
		v := DetectVehicles(f, lane)
		want = append(want, *ebaRef.Decide(v))
	}

	// The distributed DEAR pipeline on the same frame content.
	d, err := NewDeterministic(11, DefaultDeterministicConfig(frames))
	if err != nil {
		t.Fatal(err)
	}
	c := d.Run()
	if c.TotalErrors() != 0 {
		t.Fatalf("errors: %v", c)
	}
	if len(d.BrakeSeq) != frames {
		t.Fatalf("decisions = %d, want %d", len(d.BrakeSeq), frames)
	}
	for i := range want {
		got := d.BrakeSeq[i]
		if got.Seq != want[i].Seq || got.Brake != want[i].Brake {
			t.Fatalf("decision %d: got {seq %d brake %v}, want {seq %d brake %v}",
				i, got.Seq, got.Brake, want[i].Seq, want[i].Brake)
		}
		// Force is a float computed from identical inputs — must be
		// bit-identical, not merely close.
		if got.Force != want[i].Force {
			t.Fatalf("decision %d force: %v vs %v", i, got.Force, want[i].Force)
		}
	}
}

// TestBaselineDivergesFromPureFunctionPipeline confirms the contrast:
// under the stock design, drops and misalignment make the distributed
// result differ from the pure composition for at least some seeds.
func TestBaselineDivergesFromPureFunctionPipeline(t *testing.T) {
	const frames = 400
	scene := &Scene{}
	var ebaRef EBAState
	var want []BrakeCmd
	for i := 0; i < frames; i++ {
		f := scene.Generate(0)
		lane := Preprocess(f)
		v := DetectVehicles(f, lane)
		want = append(want, *ebaRef.Decide(v))
	}

	diverged := false
	for seed := uint64(0); seed < 6 && !diverged; seed++ {
		b, err := NewBaseline(seed, DefaultBaselineConfig(frames))
		if err != nil {
			t.Fatal(err)
		}
		b.Run()
		if len(b.BrakeSeq) != frames {
			diverged = true
			break
		}
		for i := range b.BrakeSeq {
			if b.BrakeSeq[i].Seq != want[i].Seq || b.BrakeSeq[i].Brake != want[i].Brake {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Error("baseline matched the pure pipeline for all seeds; expected divergence from drops")
	}
}
