package core

import (
	"testing"

	"repro/internal/ara"
	"repro/internal/logical"
	"repro/internal/reactor"
)

// ffIface adds a fire-and-forget method for transactor tests.
var ffIface = &ara.ServiceInterface{
	Name:  "Logger",
	ID:    0x2202,
	Major: 1,
	Methods: []ara.MethodSpec{
		{ID: 0x0001, Name: "log", FireAndForget: true},
		{ID: 0x0002, Name: "slow"},
	},
}

func TestClientMethodTransactorDeadlineViolation(t *testing.T) {
	// The client logic lags behind its tag beyond Dc: the send reaction's
	// deadline handler replaces the call — the request is never sent.
	f := newDearFixture(t, 1, nil)
	cfg := TransactorConfig{
		Deadline: logical.Millisecond, // very tight
		Link:     LinkConfig{Latency: 5 * ms},
	}
	served := 0
	f.server.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
		sk, err := f.server.Runtime().NewSkeleton(echoIface, 1)
		if err != nil {
			return err
		}
		smt, err := NewServerMethodTransactor(env, f.server, sk, "echo", tcfg())
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		in := reactor.NewInputPort[[]byte](logic, "in")
		out := reactor.NewOutputPort[[]byte](logic, "out")
		reactor.Connect(smt.Request, in)
		reactor.Connect(out, smt.Response)
		logic.AddReaction("serve").Triggers(in).Effects(out).Do(func(c *reactor.Ctx) {
			served++
			v, _ := in.Get(c)
			out.Set(c, v)
		})
		sk.Offer()
		return nil
	})

	var cmt *ClientMethodTransactor
	responses := 0
	f.client.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
		var err error
		cmt, err = NewClientMethodTransactor(env, f.client, echoIface, 1, "echo", cfg)
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		req := reactor.NewOutputPort[[]byte](logic, "req")
		resp := reactor.NewInputPort[[]byte](logic, "resp")
		reactor.Connect(req, cmt.Request)
		reactor.Connect(cmt.Response, resp)
		timer := reactor.NewTimer(logic, "kick", 300*ms, 0)
		logic.AddReaction("send").Triggers(timer).Effects(req).Do(func(c *reactor.Ctx) {
			// Burn physical time past the 1ms deadline before the
			// request event reaches the transactor (same tag).
			c.DoWork(5 * ms)
			req.Set(c, []byte("late"))
		})
		logic.AddReaction("recv").Triggers(resp).Do(func(c *reactor.Ctx) { responses++ })
		return nil
	})

	f.k.Run(logical.Time(2 * logical.Second))
	if cmt.Stats().DeadlineViolations != 1 {
		t.Errorf("client deadline violations = %d, want 1", cmt.Stats().DeadlineViolations)
	}
	if served != 0 {
		t.Errorf("server served %d calls; violated request must not be sent", served)
	}
	if responses != 0 {
		t.Errorf("responses = %d, want 0", responses)
	}
}

func TestServerMethodTransactorDeadlineReturnsTimeout(t *testing.T) {
	// The server logic misses the response deadline Ds: the pending
	// invocation resolves with E_TIMEOUT instead of hanging the client.
	f := newDearFixture(t, 1, nil)
	serverCfg := TransactorConfig{
		Deadline: logical.Millisecond, // response must be ready ~instantly
		Link:     LinkConfig{Latency: 5 * ms},
	}
	f.server.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
		sk, err := f.server.Runtime().NewSkeleton(ffIface, 1)
		if err != nil {
			return err
		}
		smt, err := NewServerMethodTransactor(env, f.server, sk, "slow", serverCfg)
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		in := reactor.NewInputPort[[]byte](logic, "in")
		out := reactor.NewOutputPort[[]byte](logic, "out")
		reactor.Connect(smt.Request, in)
		reactor.Connect(out, smt.Response)
		logic.AddReaction("serve").Triggers(in).Effects(out).Do(func(c *reactor.Ctx) {
			c.DoWork(8 * ms) // exceeds the 1ms response deadline
			v, _ := in.Get(c)
			out.Set(c, v)
		})
		sk.Offer()
		return nil
	})

	// Plain DEAR client through a method transactor.
	done := false
	f.client.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
		cmt, err := NewClientMethodTransactor(env, f.client, ffIface, 1, "slow", tcfg())
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		req := reactor.NewOutputPort[[]byte](logic, "req")
		resp := reactor.NewInputPort[[]byte](logic, "resp")
		reactor.Connect(req, cmt.Request)
		reactor.Connect(cmt.Response, resp)
		timer := reactor.NewTimer(logic, "kick", 300*ms, 0)
		logic.AddReaction("send").Triggers(timer).Effects(req).Do(func(c *reactor.Ctx) {
			req.Set(c, []byte("x"))
		})
		logic.AddReaction("recv").Triggers(resp).Do(func(c *reactor.Ctx) { done = true })
		return nil
	})

	f.k.Run(logical.Time(2 * logical.Second))
	// The response was an E_TIMEOUT error: the client transactor counts a
	// remote error and forwards nothing.
	if done {
		t.Error("client received a payload despite server deadline violation")
	}
}

func TestFireAndForgetThroughClientMethodTransactor(t *testing.T) {
	f := newDearFixture(t, 1, nil)
	received := 0
	f.server.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
		sk, err := f.server.Runtime().NewSkeleton(ffIface, 1)
		if err != nil {
			return err
		}
		// Fire-and-forget handled directly at the skeleton (no response
		// port needed).
		sk.HandleIDAsync(0x0001, func(c *ara.Ctx, args []byte) *ara.Future {
			received++
			return ara.ResolvedFuture(f.k, ara.Result{})
		})
		sk.Offer()
		return nil
	})

	var cmt *ClientMethodTransactor
	f.client.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
		var err error
		cmt, err = NewClientMethodTransactor(env, f.client, ffIface, 1, "log", tcfg())
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		req := reactor.NewOutputPort[[]byte](logic, "req")
		reactor.Connect(req, cmt.Request)
		timer := reactor.NewTimer(logic, "kick", 300*ms, 50*ms)
		n := 0
		logic.AddReaction("send").Triggers(timer).Effects(req).Do(func(c *reactor.Ctx) {
			n++
			if n <= 3 {
				req.Set(c, []byte{byte(n)})
			}
		})
		return nil
	})

	f.k.Run(logical.Time(2 * logical.Second))
	if received != 3 {
		t.Errorf("server received %d fire-and-forget calls, want 3", received)
	}
	if cmt.Stats().Forwarded != 3 {
		t.Errorf("forwarded = %d", cmt.Stats().Forwarded)
	}
	if cmt.Stats().Errors() != 0 {
		t.Errorf("errors: %+v", cmt.Stats())
	}
}

func TestRequestBeforeDiscoveryCountsRemoteError(t *testing.T) {
	// A request event before SD has bound the proxy is a counted error.
	f := newDearFixture(t, 1, nil)
	var cmt *ClientMethodTransactor
	f.client.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(500 * ms)}, func(env *reactor.Environment) error {
		var err error
		cmt, err = NewClientMethodTransactor(env, f.client, echoIface, 1, "echo", tcfg())
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		req := reactor.NewOutputPort[[]byte](logic, "req")
		reactor.Connect(req, cmt.Request)
		// Nobody offers the service: fire immediately.
		timer := reactor.NewTimer(logic, "kick", logical.Millisecond, 0)
		logic.AddReaction("send").Triggers(timer).Effects(req).Do(func(c *reactor.Ctx) {
			req.Set(c, []byte("x"))
		})
		return nil
	})
	f.k.Run(logical.Time(logical.Second))
	if cmt.Stats().RemoteErrors != 1 {
		t.Errorf("remote errors = %d, want 1 (unbound proxy)", cmt.Stats().RemoteErrors)
	}
	if cmt.Ready() {
		t.Error("proxy should never have bound")
	}
}

func TestTransactorStatsErrorsSum(t *testing.T) {
	s := TransactorStats{
		DeadlineViolations:      1,
		SafeToProcessViolations: 2,
		UntaggedDropped:         3,
		RemoteErrors:            4,
		UntaggedAccepted:        99, // not an error
		Forwarded:               99, // not an error
	}
	if s.Errors() != 10 {
		t.Errorf("Errors() = %d, want 10", s.Errors())
	}
}

func TestUnmatchedResponseCountsRemoteError(t *testing.T) {
	// A Response event with no pending invocation (server logic invents
	// one) is counted, not silently dropped.
	f := newDearFixture(t, 1, nil)
	var smt *ServerMethodTransactor
	f.server.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(1 * logical.Second)}, func(env *reactor.Environment) error {
		sk, err := f.server.Runtime().NewSkeleton(echoIface, 1)
		if err != nil {
			return err
		}
		smt, err = NewServerMethodTransactor(env, f.server, sk, "echo", tcfg())
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		out := reactor.NewOutputPort[[]byte](logic, "out")
		reactor.Connect(out, smt.Response)
		timer := reactor.NewTimer(logic, "spurious", 100*ms, 0)
		logic.AddReaction("respond").Triggers(timer).Effects(out).Do(func(c *reactor.Ctx) {
			out.Set(c, []byte("nobody asked"))
		})
		sk.Offer()
		return nil
	})
	f.k.Run(logical.Time(logical.Second))
	if smt.Stats().RemoteErrors != 1 {
		t.Errorf("remote errors = %d, want 1 (unmatched response)", smt.Stats().RemoteErrors)
	}
	if smt.Outstanding() != 0 {
		t.Errorf("outstanding = %d", smt.Outstanding())
	}
}
