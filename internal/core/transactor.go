package core

import (
	"fmt"

	"repro/internal/ara"
	"repro/internal/logical"
	"repro/internal/reactor"
	"repro/internal/someip"
)

// TransactorConfig carries the per-transactor timing parameters.
type TransactorConfig struct {
	// Deadline is D: the bound on how far physical time may lag behind
	// the tag when the sending reaction executes. The tag transmitted on
	// the wire is advanced by D.
	Deadline logical.Duration
	// Link carries L and E for the receive direction.
	Link LinkConfig
	// Untagged selects the policy for messages without tags.
	Untagged UntaggedPolicy
}

// TransactorStats counts observable conditions at one transactor. In the
// reactor semantics every violated assumption becomes a counted,
// observable error rather than silent corruption.
type TransactorStats struct {
	// Forwarded counts payloads successfully moved between the reactor
	// network and the service interface.
	Forwarded uint64
	// DeadlineViolations counts sending reactions that missed D.
	DeadlineViolations uint64
	// SafeToProcessViolations counts received messages whose tag + L + E
	// was already in the logical past (a violated latency/clock bound).
	SafeToProcessViolations uint64
	// UntaggedDropped counts untagged messages rejected under
	// UntaggedFail.
	UntaggedDropped uint64
	// UntaggedAccepted counts untagged messages stamped with physical
	// time under UntaggedPhysicalTime.
	UntaggedAccepted uint64
	// RemoteErrors counts failed method invocations (error responses).
	RemoteErrors uint64
}

// Errors returns the total number of error conditions observed.
func (s TransactorStats) Errors() uint64 {
	return s.DeadlineViolations + s.SafeToProcessViolations + s.UntaggedDropped + s.RemoteErrors
}

// resolveTag applies the untagged policy to an incoming message tag.
// physical is the local physical reception time used as fallback.
func resolveTag(cfg *TransactorConfig, stats *TransactorStats, tag *logical.Tag, physical logical.Time) (logical.Tag, bool) {
	if tag != nil {
		return *tag, true
	}
	if cfg.Untagged == UntaggedPhysicalTime {
		stats.UntaggedAccepted++
		return logical.Tag{Time: physical}, true
	}
	stats.UntaggedDropped++
	return logical.Tag{}, false
}

// ClientMethodTransactor interacts with a method of a service interface
// in the client role. An event on Request invokes the remote method with
// the event's payload as arguments; the response arrives as an event on
// Response once it is safe to process.
type ClientMethodTransactor struct {
	// Request is the transactor's input: payload to send as arguments.
	Request *reactor.Port[[]byte]
	// Response is the transactor's output: the method result.
	Response *reactor.Port[[]byte]

	swc    *SWC
	iface  *ara.ServiceInterface
	method ara.MethodSpec
	cfg    TransactorConfig
	stats  TransactorStats

	proxy *ara.Proxy
	resp  *reactor.Action[[]byte]
}

// NewClientMethodTransactor creates the transactor as a reactor inside
// the SWC's environment. Service discovery starts immediately; requests
// arriving before the service is bound count as remote errors.
func NewClientMethodTransactor(env *reactor.Environment, swc *SWC, iface *ara.ServiceInterface, instance someip.InstanceID, method string, cfg TransactorConfig) (*ClientMethodTransactor, error) {
	spec, ok := iface.Method(method)
	if !ok {
		return nil, fmt.Errorf("core: %s has no method %q", iface.Name, method)
	}
	return newClientMethodTransactor(env, swc, iface, instance, spec, cfg), nil
}

func newClientMethodTransactor(env *reactor.Environment, swc *SWC, iface *ara.ServiceInterface, instance someip.InstanceID, spec ara.MethodSpec, cfg TransactorConfig) *ClientMethodTransactor {
	t := &ClientMethodTransactor{swc: swc, iface: iface, method: spec, cfg: cfg}
	// The up (request) and down (response) paths live in separate
	// reactors: they share no state, and a single reactor would order
	// them by priority, falsely closing a causality cycle for
	// response-driven request loops.
	r := env.NewReactor(fmt.Sprintf("cmt.%s.%s.up", iface.Name, spec.Name))
	rDown := env.NewReactor(fmt.Sprintf("cmt.%s.%s.down", iface.Name, spec.Name))
	t.Request = reactor.NewInputPort[[]byte](r, "request")
	t.Response = reactor.NewOutputPort[[]byte](rDown, "response")
	t.resp = reactor.NewPhysicalAction[[]byte](rDown, "resp", 0)

	swc.runtime.FindService(iface, instance, func(px *ara.Proxy) { t.proxy = px })

	send := r.AddReaction("send").Triggers(t.Request)
	if cfg.Deadline > 0 {
		send.WithDeadline(cfg.Deadline, func(c *reactor.Ctx) {
			t.stats.DeadlineViolations++
		})
	}
	send.Do(func(c *reactor.Ctx) {
		payload, _ := t.Request.Get(c)
		if t.proxy == nil {
			t.stats.RemoteErrors++
			return
		}
		// (2) stage tc+Dc in the timestamp bypass, (3) invoke the call on
		// the proxy; the modified binding (4,5) attaches the tag.
		wireTag := c.Tag().Delay(cfg.Deadline)
		bp := t.swc.binding.Bypass()
		bp.Stage(iface.ID, spec.ID, wireTag)
		fut := t.proxy.CallID(spec.ID, payload, spec.FireAndForget)
		bp.Clear(iface.ID, spec.ID)
		if spec.FireAndForget {
			t.stats.Forwarded++
			return
		}
		// (19,20) the response interrupt: retrieve ts+Ds and schedule an
		// action at ts+Ds+L+E.
		fut.Then(func(res ara.Result) {
			if res.Err != nil {
				t.stats.RemoteErrors++
				return
			}
			tag, ok := resolveTag(&t.cfg, &t.stats, res.Tag, t.swc.runtime.Clock().Now())
			if !ok {
				return
			}
			safe := tag.Delay(cfg.Link.SafeToProcessOffset())
			if _, accepted := t.resp.ScheduleAt(res.Payload, safe); !accepted {
				t.stats.SafeToProcessViolations++
			}
		})
	})

	rDown.AddReaction("deliver").Triggers(t.resp).Effects(t.Response).Do(func(c *reactor.Ctx) {
		payload, _ := t.resp.Get(c)
		t.stats.Forwarded++
		t.Response.Set(c, payload)
	})
	return t
}

// Ready reports whether service discovery has bound the proxy.
func (t *ClientMethodTransactor) Ready() bool { return t.proxy != nil }

// Stats returns the transactor's error counters.
func (t *ClientMethodTransactor) Stats() TransactorStats { return t.stats }

// serverPending tracks one outstanding invocation at the server side.
type serverPending struct {
	future *ara.Future
	// tagged records whether the request carried a wire tag; responses to
	// untagged (legacy) callers are sent untagged so that standard
	// bindings are not confronted with trailer bytes.
	tagged bool
}

// ServerMethodTransactor interacts with a method of a service interface
// in the server role: incoming invocations appear as events on Request
// (tagged t+D+L+E per safe-to-process); the server logic answers by
// producing an event on Response, which resolves the invocation's future
// and sends the response with tag ts+Ds.
//
// Correlation is FIFO: the n-th Response event answers the n-th Request
// event, matching a server logic that responds to every request in order
// (logically instantaneous pipelines preserve this by construction).
type ServerMethodTransactor struct {
	// Request is the transactor's output into the server logic.
	Request *reactor.Port[[]byte]
	// Response is the transactor's input from the server logic.
	Response *reactor.Port[[]byte]

	swc    *SWC
	iface  *ara.ServiceInterface
	method ara.MethodSpec
	cfg    TransactorConfig
	stats  TransactorStats

	req     *reactor.Action[[]byte]
	pending []serverPending
}

// NewServerMethodTransactor creates the transactor and installs the
// asynchronous method handler on the skeleton.
func NewServerMethodTransactor(env *reactor.Environment, swc *SWC, sk *ara.Skeleton, method string, cfg TransactorConfig) (*ServerMethodTransactor, error) {
	iface := sk.Interface()
	spec, ok := iface.Method(method)
	if !ok {
		return nil, fmt.Errorf("core: %s has no method %q", iface.Name, method)
	}
	return newServerMethodTransactor(env, swc, sk, spec, cfg), nil
}

func newServerMethodTransactor(env *reactor.Environment, swc *SWC, sk *ara.Skeleton, spec ara.MethodSpec, cfg TransactorConfig) *ServerMethodTransactor {
	iface := sk.Interface()
	t := &ServerMethodTransactor{swc: swc, iface: iface, method: spec, cfg: cfg}
	// Up (invocation in) and down (response out) paths in separate
	// reactors — see newClientMethodTransactor.
	r := env.NewReactor(fmt.Sprintf("smt.%s.%s.up", iface.Name, spec.Name))
	rDown := env.NewReactor(fmt.Sprintf("smt.%s.%s.down", iface.Name, spec.Name))
	t.Request = reactor.NewOutputPort[[]byte](r, "request")
	t.Response = reactor.NewInputPort[[]byte](rDown, "response")
	t.req = reactor.NewPhysicalAction[[]byte](r, "req", 0)

	k := swc.runtime.Kernel()
	// (8,9) the skeleton invocation is the transactor's interrupt; (10)
	// the tag comes from the modified binding; the action is scheduled at
	// tc+Dc+L+E.
	sk.HandleIDAsync(spec.ID, func(c *ara.Ctx, args []byte) *ara.Future {
		wireTag := c.Message().Tag
		tag, ok := resolveTag(&t.cfg, &t.stats, wireTag, t.swc.runtime.Clock().Now())
		if !ok {
			return ara.ResolvedFuture(k, ara.Result{Err: &ara.RemoteError{Code: someip.EMissingTag}})
		}
		fut := ara.NewFuture(k)
		t.pending = append(t.pending, serverPending{future: fut, tagged: wireTag != nil})
		safe := tag.Delay(cfg.Link.SafeToProcessOffset())
		if _, accepted := t.req.ScheduleAt(args, safe); !accepted {
			t.stats.SafeToProcessViolations++
		}
		return fut
	})

	// (11) forward the invocation into the server logic.
	r.AddReaction("deliver").Triggers(t.req).Effects(t.Request).Do(func(c *reactor.Ctx) {
		args, _ := t.req.Get(c)
		t.stats.Forwarded++
		t.Request.Set(c, args)
	})

	// (12..14) the response from the server logic resolves the future
	// with tag ts+Ds; the binding (15,16) attaches it to the wire message.
	respond := rDown.AddReaction("respond").Triggers(t.Response)
	if cfg.Deadline > 0 {
		respond.WithDeadline(cfg.Deadline, func(c *reactor.Ctx) {
			t.stats.DeadlineViolations++
			t.resolveNext(ara.Result{Err: &ara.RemoteError{Code: someip.ETimeout}})
		})
	}
	respond.Do(func(c *reactor.Ctx) {
		payload, _ := t.Response.Get(c)
		wireTag := c.Tag().Delay(cfg.Deadline)
		t.resolveNext(ara.Result{Payload: payload, Tag: &wireTag})
	})
	return t
}

func (t *ServerMethodTransactor) resolveNext(r ara.Result) {
	if len(t.pending) == 0 {
		t.stats.RemoteErrors++
		return
	}
	p := t.pending[0]
	t.pending = t.pending[1:]
	if !p.tagged {
		r.Tag = nil
	}
	p.future.Resolve(r)
}

// Stats returns the transactor's error counters.
func (t *ServerMethodTransactor) Stats() TransactorStats { return t.stats }

// Outstanding returns the number of unanswered invocations.
func (t *ServerMethodTransactor) Outstanding() int { return len(t.pending) }

// ClientEventTransactor interacts with an AP event in the client role:
// each received notification becomes an event on Out once safe to
// process.
type ClientEventTransactor struct {
	// Out is the transactor's output port carrying notification payloads.
	Out *reactor.Port[[]byte]

	swc   *SWC
	iface *ara.ServiceInterface
	event ara.EventSpec
	cfg   TransactorConfig
	stats TransactorStats

	act        *reactor.Action[[]byte]
	subscribed bool
}

// NewClientEventTransactor creates the transactor and starts discovery +
// subscription for the event.
func NewClientEventTransactor(env *reactor.Environment, swc *SWC, iface *ara.ServiceInterface, instance someip.InstanceID, event string, cfg TransactorConfig) (*ClientEventTransactor, error) {
	spec, ok := iface.Event(event)
	if !ok {
		return nil, fmt.Errorf("core: %s has no event %q", iface.Name, event)
	}
	return newClientEventTransactor(env, swc, iface, instance, spec, cfg), nil
}

func newClientEventTransactor(env *reactor.Environment, swc *SWC, iface *ara.ServiceInterface, instance someip.InstanceID, spec ara.EventSpec, cfg TransactorConfig) *ClientEventTransactor {
	t := &ClientEventTransactor{swc: swc, iface: iface, event: spec, cfg: cfg}
	r := env.NewReactor(fmt.Sprintf("cet.%s.%s", iface.Name, spec.Name))
	t.Out = reactor.NewOutputPort[[]byte](r, "out")
	t.act = reactor.NewPhysicalAction[[]byte](r, "notif", 0)

	swc.runtime.FindService(iface, instance, func(px *ara.Proxy) {
		err := px.SubscribeID(spec.ID, spec.Eventgroup, func(c *ara.Ctx, payload []byte) {
			tag, ok := resolveTag(&t.cfg, &t.stats, c.Message().Tag, t.swc.runtime.Clock().Now())
			if !ok {
				return
			}
			safe := tag.Delay(cfg.Link.SafeToProcessOffset())
			if _, accepted := t.act.ScheduleAt(payload, safe); !accepted {
				t.stats.SafeToProcessViolations++
			}
		}, func(ok bool) {
			if ok {
				t.subscribed = true
			}
		})
		if err != nil {
			t.stats.RemoteErrors++
		}
	})

	r.AddReaction("deliver").Triggers(t.act).Effects(t.Out).Do(func(c *reactor.Ctx) {
		payload, _ := t.act.Get(c)
		t.stats.Forwarded++
		t.Out.Set(c, payload)
	})
	return t
}

// Ready reports whether the subscription is acknowledged.
func (t *ClientEventTransactor) Ready() bool { return t.subscribed }

// Stats returns the transactor's error counters.
func (t *ClientEventTransactor) Stats() TransactorStats { return t.stats }

// ServerEventTransactor interacts with an AP event in the server role:
// events on In are published as notifications tagged t+D.
type ServerEventTransactor struct {
	// In is the transactor's input port carrying payloads to publish.
	In *reactor.Port[[]byte]

	swc   *SWC
	sk    *ara.Skeleton
	event ara.EventSpec
	cfg   TransactorConfig
	stats TransactorStats
}

// NewServerEventTransactor creates the transactor on the skeleton's
// event.
func NewServerEventTransactor(env *reactor.Environment, swc *SWC, sk *ara.Skeleton, event string, cfg TransactorConfig) (*ServerEventTransactor, error) {
	iface := sk.Interface()
	spec, ok := iface.Event(event)
	if !ok {
		return nil, fmt.Errorf("core: %s has no event %q", iface.Name, event)
	}
	return newServerEventTransactor(env, swc, sk, spec, cfg), nil
}

func newServerEventTransactor(env *reactor.Environment, swc *SWC, sk *ara.Skeleton, spec ara.EventSpec, cfg TransactorConfig) *ServerEventTransactor {
	iface := sk.Interface()
	t := &ServerEventTransactor{swc: swc, sk: sk, event: spec, cfg: cfg}
	r := env.NewReactor(fmt.Sprintf("set.%s.%s", iface.Name, spec.Name))
	t.In = reactor.NewInputPort[[]byte](r, "in")

	send := r.AddReaction("send").Triggers(t.In)
	if cfg.Deadline > 0 {
		send.WithDeadline(cfg.Deadline, func(c *reactor.Ctx) {
			t.stats.DeadlineViolations++
		})
	}
	send.Do(func(c *reactor.Ctx) {
		payload, _ := t.In.Get(c)
		wireTag := c.Tag().Delay(cfg.Deadline)
		bp := t.swc.binding.Bypass()
		bp.Stage(iface.ID, spec.ID, wireTag)
		sk.NotifyID(spec.ID, spec.Eventgroup, payload)
		bp.Clear(iface.ID, spec.ID)
		t.stats.Forwarded++
	})
	return t
}

// Stats returns the transactor's error counters.
func (t *ServerEventTransactor) Stats() TransactorStats { return t.stats }
