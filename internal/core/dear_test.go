package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ara"
	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/reactor"
	"repro/internal/simnet"
	"repro/internal/someip"
)

const ms = logical.Millisecond

// echoIface is a simple service for transactor tests.
var echoIface = &ara.ServiceInterface{
	Name:  "Echo",
	ID:    0x2001,
	Major: 1,
	Methods: []ara.MethodSpec{
		{ID: 0x0001, Name: "echo"},
	},
	Events: []ara.EventSpec{
		{ID: someip.EventID(1), Name: "beat", Eventgroup: 1},
	},
	Fields: []ara.FieldSpec{
		{Name: "gain", Get: 0x0010, Set: 0x0011, Notifier: someip.EventID(2), Eventgroup: 2},
	},
}

// dearFixture wires two platforms with a DEAR client and server SWC.
type dearFixture struct {
	k              *des.Kernel
	net            *simnet.Network
	h1, h2         *simnet.Host
	client, server *SWC
}

func newDearFixture(t *testing.T, seed uint64, latency simnet.LatencyModel) *dearFixture {
	t.Helper()
	k := des.NewKernel(seed)
	cfg := simnet.Config{}
	if latency != nil {
		cfg.DefaultLatency = latency
	}
	n := simnet.NewNetwork(k, cfg)
	h1 := n.AddHost("p1", k.NewLocalClock(des.ClockConfig{}, nil))
	h2 := n.AddHost("p2", k.NewLocalClock(des.ClockConfig{}, nil))
	server, err := NewSWC(h1, ara.Config{Name: "server"})
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewSWC(h2, ara.Config{Name: "client"})
	if err != nil {
		t.Fatal(err)
	}
	return &dearFixture{k: k, net: n, h1: h1, h2: h2, client: client, server: server}
}

// tcfg is a standard transactor configuration: D=10ms, L=5ms, E=0.
func tcfg() TransactorConfig {
	return TransactorConfig{
		Deadline: logical.Duration(10 * ms),
		Link:     LinkConfig{Latency: logical.Duration(5 * ms)},
	}
}

func TestMethodRoundTripThroughTransactors(t *testing.T) {
	f := newDearFixture(t, 1, nil)
	var smt *ServerMethodTransactor
	var cmt *ClientMethodTransactor
	var reqTagAtServer, respTagAtClient, sendTag logical.Tag
	var response []byte

	f.server.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
		sk, err := f.server.Runtime().NewSkeleton(echoIface, 1)
		if err != nil {
			return err
		}
		smt, err = NewServerMethodTransactor(env, f.server, sk, "echo", tcfg())
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		in := reactor.NewInputPort[[]byte](logic, "in")
		out := reactor.NewOutputPort[[]byte](logic, "out")
		reactor.Connect(smt.Request, in)
		reactor.Connect(out, smt.Response)
		logic.AddReaction("serve").Triggers(in).Effects(out).Do(func(c *reactor.Ctx) {
			args, _ := in.Get(c)
			reqTagAtServer = c.Tag()
			out.Set(c, append([]byte("re:"), args...))
		})
		sk.Offer()
		return nil
	})

	f.client.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
		var err error
		cmt, err = NewClientMethodTransactor(env, f.client, echoIface, 1, "echo", tcfg())
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		req := reactor.NewOutputPort[[]byte](logic, "req")
		resp := reactor.NewInputPort[[]byte](logic, "resp")
		reactor.Connect(req, cmt.Request)
		reactor.Connect(cmt.Response, resp)
		// Fire the request well after discovery settles.
		timer := reactor.NewTimer(logic, "kick", logical.Duration(200*ms), 0)
		logic.AddReaction("send").Triggers(timer).Effects(req).Do(func(c *reactor.Ctx) {
			sendTag = c.Tag()
			req.Set(c, []byte("ping"))
		})
		logic.AddReaction("recv").Triggers(resp).Do(func(c *reactor.Ctx) {
			response, _ = resp.Get(c)
			respTagAtClient = c.Tag()
			c.RequestStop()
		})
		return nil
	})

	f.k.RunAll()
	if string(response) != "re:ping" {
		t.Fatalf("response = %q", response)
	}
	// Tag algebra of Figure 3: the server processes the request at
	// tc + Dc + L + E.
	wantServer := sendTag.Delay(logical.Duration(10 * ms)).Delay(logical.Duration(5 * ms))
	if reqTagAtServer != wantServer {
		t.Errorf("server tag %v, want %v (tc+Dc+L+E)", reqTagAtServer, wantServer)
	}
	// The client sees the response at ts + Ds + L + E, with ts >= server
	// request tag.
	wantClientMin := reqTagAtServer.Delay(logical.Duration(10 * ms)).Delay(logical.Duration(5 * ms))
	if respTagAtClient.Before(wantClientMin) {
		t.Errorf("client resp tag %v earlier than %v", respTagAtClient, wantClientMin)
	}
	if smt.Stats().Forwarded != 1 || cmt.Stats().Forwarded == 0 {
		t.Errorf("forward counters: smt=%d cmt=%d", smt.Stats().Forwarded, cmt.Stats().Forwarded)
	}
	if smt.Stats().Errors() != 0 || cmt.Stats().Errors() != 0 {
		t.Errorf("unexpected errors: smt=%+v cmt=%+v", smt.Stats(), cmt.Stats())
	}
	if f.client.Err() != nil || f.server.Err() != nil {
		t.Errorf("run errors: %v %v", f.client.Err(), f.server.Err())
	}
}

// TestFigure3Sequence instruments the full 22-step message sequence of
// Figure 3 and asserts the causal order of the observable steps.
func TestFigure3Sequence(t *testing.T) {
	f := newDearFixture(t, 1, nil)
	var seq []string
	log := func(step string) { seq = append(seq, step) }

	f.server.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
		sk, err := f.server.Runtime().NewSkeleton(echoIface, 1)
		if err != nil {
			return err
		}
		smt, err := NewServerMethodTransactor(env, f.server, sk, "echo", tcfg())
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		in := reactor.NewInputPort[[]byte](logic, "in")
		out := reactor.NewOutputPort[[]byte](logic, "out")
		reactor.Connect(smt.Request, in)
		reactor.Connect(out, smt.Response)
		logic.AddReaction("serve").Triggers(in).Effects(out).Do(func(c *reactor.Ctx) {
			log("11-server-logic-receives")
			args, _ := in.Get(c)
			log("12-server-logic-responds")
			out.Set(c, args)
		})
		sk.Offer()
		return nil
	})

	f.client.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
		cmt, err := NewClientMethodTransactor(env, f.client, echoIface, 1, "echo", tcfg())
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		req := reactor.NewOutputPort[[]byte](logic, "req")
		resp := reactor.NewInputPort[[]byte](logic, "resp")
		reactor.Connect(req, cmt.Request)
		reactor.Connect(cmt.Response, resp)
		timer := reactor.NewTimer(logic, "kick", logical.Duration(200*ms), 0)
		logic.AddReaction("send").Triggers(timer).Effects(req).Do(func(c *reactor.Ctx) {
			log("01-client-invokes")
			req.Set(c, []byte("x"))
		})
		logic.AddReaction("recv").Triggers(resp).Do(func(c *reactor.Ctx) {
			log("22-client-receives")
			c.RequestStop()
		})
		return nil
	})

	// Steps 6/17 are the wire transmissions: observe them at the binding.
	f.k.RunAll()

	want := []string{"01-client-invokes", "11-server-logic-receives", "12-server-logic-responds", "22-client-receives"}
	if strings.Join(seq, ",") != strings.Join(want, ",") {
		t.Errorf("sequence = %v, want %v", seq, want)
	}
	// The bindings must have carried tags on both wire crossings.
	cTagged, cUntagged, _, cRecvTags := f.client.Binding().Stats()
	sTagged, _, _, sRecvTags := f.server.Binding().Stats()
	if cTagged == 0 || sTagged == 0 {
		t.Errorf("tagged sends: client=%d server=%d", cTagged, sTagged)
	}
	if cRecvTags == 0 || sRecvTags == 0 {
		t.Errorf("tagged receptions: client=%d server=%d", cRecvTags, sRecvTags)
	}
	_ = cUntagged
}

func TestEventPathThroughTransactors(t *testing.T) {
	f := newDearFixture(t, 1, nil)
	var got [][]byte
	var tags []logical.Tag
	var sendTags []logical.Tag

	f.server.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
		sk, err := f.server.Runtime().NewSkeleton(echoIface, 1)
		if err != nil {
			return err
		}
		set, err := NewServerEventTransactor(env, f.server, sk, "beat", tcfg())
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		out := reactor.NewOutputPort[[]byte](logic, "out")
		reactor.Connect(out, set.In)
		timer := reactor.NewTimer(logic, "t", logical.Duration(300*ms), logical.Duration(50*ms))
		n := 0
		logic.AddReaction("emit").Triggers(timer).Effects(out).Do(func(c *reactor.Ctx) {
			n++
			if n > 3 {
				return
			}
			sendTags = append(sendTags, c.Tag())
			out.Set(c, []byte{byte(n)})
		})
		sk.Offer()
		return nil
	})

	f.client.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
		cet, err := NewClientEventTransactor(env, f.client, echoIface, 1, "beat", tcfg())
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		in := reactor.NewInputPort[[]byte](logic, "in")
		reactor.Connect(cet.Out, in)
		logic.AddReaction("recv").Triggers(in).Do(func(c *reactor.Ctx) {
			v, _ := in.Get(c)
			got = append(got, v)
			tags = append(tags, c.Tag())
		})
		return nil
	})

	f.k.Run(logical.Time(2 * logical.Second))
	if len(got) != 3 {
		t.Fatalf("received %d events (%v)", len(got), got)
	}
	for i := range got {
		if got[i][0] != byte(i+1) {
			t.Errorf("event %d payload %v", i, got[i])
		}
		// Tag algebra: t_recv = t_send + D + L + E.
		want := sendTags[i].Delay(logical.Duration(10 * ms)).Delay(logical.Duration(5 * ms))
		if tags[i] != want {
			t.Errorf("event %d tag %v, want %v", i, tags[i], want)
		}
	}
}

func TestEventOrderPreservedDespiteJitter(t *testing.T) {
	// Network jitter below the assumed bound L must not affect the order
	// or tags of delivered events (source #3 of nondeterminism removed).
	run := func(seed uint64) []logical.Tag {
		f := newDearFixture(t, seed, &simnet.JitterLatency{
			Base:  logical.Duration(500 * logical.Microsecond),
			Sigma: logical.Duration(800 * logical.Microsecond),
			Max:   logical.Duration(4 * ms), // stays below L=5ms
			Rng:   nil,                      // set below, needs kernel rand
		})
		// Rebuild with a seeded rng for the jitter model.
		f.net.SetLink(f.h1.ID(), f.h2.ID(), &simnet.JitterLatency{
			Base:  logical.Duration(500 * logical.Microsecond),
			Sigma: logical.Duration(800 * logical.Microsecond),
			Max:   logical.Duration(4 * ms),
			Rng:   f.k.Rand("jitter"),
		})
		var tags []logical.Tag
		f.server.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
			sk, err := f.server.Runtime().NewSkeleton(echoIface, 1)
			if err != nil {
				return err
			}
			set, err := NewServerEventTransactor(env, f.server, sk, "beat", tcfg())
			if err != nil {
				return err
			}
			logic := env.NewReactor("logic")
			out := reactor.NewOutputPort[[]byte](logic, "out")
			reactor.Connect(out, set.In)
			timer := reactor.NewTimer(logic, "t", logical.Duration(300*ms), logical.Duration(10*ms))
			n := 0
			logic.AddReaction("emit").Triggers(timer).Effects(out).Do(func(c *reactor.Ctx) {
				n++
				if n > 20 {
					return
				}
				out.Set(c, []byte{byte(n)})
			})
			sk.Offer()
			return nil
		})
		f.client.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
			cet, err := NewClientEventTransactor(env, f.client, echoIface, 1, "beat", tcfg())
			if err != nil {
				return err
			}
			logic := env.NewReactor("logic")
			in := reactor.NewInputPort[[]byte](logic, "in")
			reactor.Connect(cet.Out, in)
			last := -1
			logic.AddReaction("recv").Triggers(in).Do(func(c *reactor.Ctx) {
				v, _ := in.Get(c)
				if int(v[0]) <= last {
					t.Errorf("out-of-order delivery: %d after %d", v[0], last)
				}
				last = int(v[0])
				tags = append(tags, c.Tag())
			})
			return nil
		})
		f.k.Run(logical.Time(2 * logical.Second))
		return tags
	}
	a := run(1)
	b := run(42)
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("lengths: %d, %d (want 20)", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tags diverge at %d under different physical seeds: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestUntaggedFailPolicy(t *testing.T) {
	// A plain (non-DEAR) ara client calls a DEAR server: the server
	// method transactor must reject the untagged request.
	f := newDearFixture(t, 1, nil)
	var smt *ServerMethodTransactor
	f.server.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
		sk, err := f.server.Runtime().NewSkeleton(echoIface, 1)
		if err != nil {
			return err
		}
		smt, err = NewServerMethodTransactor(env, f.server, sk, "echo", tcfg())
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		in := reactor.NewInputPort[[]byte](logic, "in")
		out := reactor.NewOutputPort[[]byte](logic, "out")
		reactor.Connect(smt.Request, in)
		reactor.Connect(out, smt.Response)
		logic.AddReaction("serve").Triggers(in).Effects(out).Do(func(c *reactor.Ctx) {
			v, _ := in.Get(c)
			out.Set(c, v)
		})
		sk.Offer()
		return nil
	})

	// Plain ara client on another host (untagged binding).
	plain, err := ara.NewRuntime(f.h2, ara.Config{Name: "legacy"})
	if err != nil {
		t.Fatal(err)
	}
	var callErr error
	plain.Spawn("main", func(c *ara.Ctx) {
		px, ferr := plain.FindServiceSync(c.Process(), echoIface, 1, logical.Duration(logical.Second))
		if ferr != nil {
			callErr = ferr
			return
		}
		_, callErr = px.Call("echo", []byte("x")).Get(c.Process())
	})
	f.k.Run(logical.Time(2 * logical.Second))
	re, ok := callErr.(*ara.RemoteError)
	if !ok {
		t.Fatalf("err = %v, want RemoteError", callErr)
	}
	if re.Code != someip.EMissingTag {
		t.Errorf("code = %v, want E_MISSING_TAG", re.Code)
	}
	if smt.Stats().UntaggedDropped != 1 {
		t.Errorf("UntaggedDropped = %d", smt.Stats().UntaggedDropped)
	}
}

func TestUntaggedPhysicalTimePolicy(t *testing.T) {
	// With the compatibility policy, the untagged call is stamped with
	// physical reception time and served normally.
	f := newDearFixture(t, 1, nil)
	cfg := tcfg()
	cfg.Untagged = UntaggedPhysicalTime
	var smt *ServerMethodTransactor
	f.server.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
		sk, err := f.server.Runtime().NewSkeleton(echoIface, 1)
		if err != nil {
			return err
		}
		smt, err = NewServerMethodTransactor(env, f.server, sk, "echo", cfg)
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		in := reactor.NewInputPort[[]byte](logic, "in")
		out := reactor.NewOutputPort[[]byte](logic, "out")
		reactor.Connect(smt.Request, in)
		reactor.Connect(out, smt.Response)
		logic.AddReaction("serve").Triggers(in).Effects(out).Do(func(c *reactor.Ctx) {
			v, _ := in.Get(c)
			out.Set(c, append([]byte("ok:"), v...))
		})
		sk.Offer()
		return nil
	})

	plain, err := ara.NewRuntime(f.h2, ara.Config{Name: "legacy"})
	if err != nil {
		t.Fatal(err)
	}
	var payload []byte
	var callErr error
	plain.Spawn("main", func(c *ara.Ctx) {
		px, ferr := plain.FindServiceSync(c.Process(), echoIface, 1, logical.Duration(logical.Second))
		if ferr != nil {
			callErr = ferr
			return
		}
		payload, callErr = px.Call("echo", []byte("x")).Get(c.Process())
	})
	f.k.Run(logical.Time(2 * logical.Second))
	if callErr != nil {
		t.Fatal(callErr)
	}
	if string(payload) != "ok:x" {
		t.Errorf("payload = %q", payload)
	}
	if smt.Stats().UntaggedAccepted != 1 {
		t.Errorf("UntaggedAccepted = %d", smt.Stats().UntaggedAccepted)
	}
}

func TestSafeToProcessViolationDetected(t *testing.T) {
	// The actual network latency exceeds the assumed bound L: the
	// receiver must detect and count the violated assumption.
	f := newDearFixture(t, 1, nil)
	// Assumed L = 1ms, actual latency 20ms.
	cfg := TransactorConfig{
		Deadline: logical.Duration(2 * ms),
		Link:     LinkConfig{Latency: logical.Duration(1 * ms)},
	}
	f.net.SetLink(f.h1.ID(), f.h2.ID(), simnet.FixedLatency(logical.Duration(20*ms)))

	var cet *ClientEventTransactor
	received := 0
	f.server.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
		sk, err := f.server.Runtime().NewSkeleton(echoIface, 1)
		if err != nil {
			return err
		}
		set, err := NewServerEventTransactor(env, f.server, sk, "beat", cfg)
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		out := reactor.NewOutputPort[[]byte](logic, "out")
		reactor.Connect(out, set.In)
		timer := reactor.NewTimer(logic, "t", logical.Duration(500*ms), logical.Duration(50*ms))
		n := 0
		logic.AddReaction("emit").Triggers(timer).Effects(out).Do(func(c *reactor.Ctx) {
			n++
			if n <= 5 {
				out.Set(c, []byte{byte(n)})
			}
		})
		sk.Offer()
		return nil
	})
	f.client.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
		var err error
		cet, err = NewClientEventTransactor(env, f.client, echoIface, 1, "beat", cfg)
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		in := reactor.NewInputPort[[]byte](logic, "in")
		reactor.Connect(cet.Out, in)
		logic.AddReaction("recv").Triggers(in).Do(func(c *reactor.Ctx) { received++ })
		return nil
	})
	f.k.Run(logical.Time(2 * logical.Second))
	if cet.Stats().SafeToProcessViolations == 0 {
		t.Error("expected safe-to-process violations with L underestimated")
	}
	if received == 0 {
		t.Error("events must still be delivered (at bumped tags), not lost")
	}
}

func TestDeadlineViolationAtSendingTransactor(t *testing.T) {
	// The server logic consumes more physical time than the event
	// transactor's deadline allows: violations are observable.
	f := newDearFixture(t, 1, nil)
	cfg := TransactorConfig{
		Deadline: logical.Duration(1 * ms), // tight
		Link:     LinkConfig{Latency: logical.Duration(5 * ms)},
	}
	var set *ServerEventTransactor
	f.server.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
		sk, err := f.server.Runtime().NewSkeleton(echoIface, 1)
		if err != nil {
			return err
		}
		set, err = NewServerEventTransactor(env, f.server, sk, "beat", cfg)
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		out := reactor.NewOutputPort[[]byte](logic, "out")
		reactor.Connect(out, set.In)
		timer := reactor.NewTimer(logic, "t", logical.Duration(300*ms), logical.Duration(50*ms))
		n := 0
		logic.AddReaction("emit").Triggers(timer).Effects(out).Do(func(c *reactor.Ctx) {
			n++
			if n > 4 {
				return
			}
			c.DoWork(logical.Duration(3 * ms)) // exceeds the 1ms deadline
			out.Set(c, []byte{byte(n)})
		})
		sk.Offer()
		return nil
	})
	f.k.Run(logical.Time(2 * logical.Second))
	if set.Stats().DeadlineViolations != 4 {
		t.Errorf("DeadlineViolations = %d, want 4", set.Stats().DeadlineViolations)
	}
	if set.Stats().Forwarded != 0 {
		t.Errorf("Forwarded = %d, want 0 (deadline handler replaces send)", set.Stats().Forwarded)
	}
}

func TestFieldTransactorRoundTrip(t *testing.T) {
	f := newDearFixture(t, 1, nil)
	var sft *ServerFieldTransactor
	var cft *ClientFieldTransactor
	var gotValue, gotChange []byte

	f.server.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(3 * logical.Second)}, func(env *reactor.Environment) error {
		sk, err := f.server.Runtime().NewSkeleton(echoIface, 1)
		if err != nil {
			return err
		}
		sft, err = NewServerFieldTransactor(env, f.server, sk, "gain", tcfg())
		if err != nil {
			return err
		}
		// Server logic: field state in the reactor; answers gets and
		// accepts sets, publishing updates.
		logic := env.NewReactor("logic")
		state := []byte{7}
		getIn := reactor.NewInputPort[[]byte](logic, "get")
		setIn := reactor.NewInputPort[[]byte](logic, "set")
		getOut := reactor.NewOutputPort[[]byte](logic, "getOut")
		setOut := reactor.NewOutputPort[[]byte](logic, "setOut")
		upd := reactor.NewOutputPort[[]byte](logic, "upd")
		reactor.Connect(sft.GetRequest, getIn)
		reactor.Connect(sft.SetRequest, setIn)
		reactor.Connect(getOut, sft.GetResponse)
		reactor.Connect(setOut, sft.SetResponse)
		reactor.Connect(upd, sft.UpdateIn)
		logic.AddReaction("get").Triggers(getIn).Effects(getOut).Do(func(c *reactor.Ctx) {
			getOut.Set(c, state)
		})
		logic.AddReaction("set").Triggers(setIn).Effects(setOut, upd).Do(func(c *reactor.Ctx) {
			v, _ := setIn.Get(c)
			state = v
			setOut.Set(c, state)
			upd.Set(c, state)
		})
		sk.Offer()
		return nil
	})

	f.client.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(3 * logical.Second)}, func(env *reactor.Environment) error {
		var err error
		cft, err = NewClientFieldTransactor(env, f.client, echoIface, 1, "gain", tcfg())
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		getReq := reactor.NewOutputPort[[]byte](logic, "getReq")
		setReq := reactor.NewOutputPort[[]byte](logic, "setReq")
		val := reactor.NewInputPort[[]byte](logic, "val")
		chg := reactor.NewInputPort[[]byte](logic, "chg")
		reactor.Connect(getReq, cft.GetRequest)
		reactor.Connect(setReq, cft.SetRequest)
		reactor.Connect(cft.Value, val)
		reactor.Connect(cft.Changed, chg)
		kick := reactor.NewTimer(logic, "kick", logical.Duration(400*ms), 0)
		logic.AddReaction("start").Triggers(kick).Effects(setReq).Do(func(c *reactor.Ctx) {
			setReq.Set(c, []byte{42})
		})
		logic.AddReaction("changed").Triggers(chg).Effects(getReq).Do(func(c *reactor.Ctx) {
			gotChange, _ = chg.Get(c)
			getReq.Set(c, nil)
		})
		logic.AddReaction("value").Triggers(val).Do(func(c *reactor.Ctx) {
			gotValue, _ = val.Get(c)
		})
		return nil
	})

	f.k.Run(logical.Time(3 * logical.Second))
	if len(gotChange) != 1 || gotChange[0] != 42 {
		t.Errorf("change notification = %v, want [42]", gotChange)
	}
	if len(gotValue) != 1 || gotValue[0] != 42 {
		t.Errorf("get value = %v, want [42]", gotValue)
	}
	if sft.Stats().Errors() != 0 || cft.Stats().Errors() != 0 {
		t.Errorf("errors: server %+v client %+v", sft.Stats(), cft.Stats())
	}
}

func TestBypassStageClearPeek(t *testing.T) {
	b := NewTimestampBypass()
	tag := logical.Tag{Time: 5, Microstep: 1}
	b.Stage(1, 2, tag)
	got, ok := b.Peek(1, 2)
	if !ok || got != tag {
		t.Errorf("Peek = %v, %v", got, ok)
	}
	if _, ok := b.Peek(1, 3); ok {
		t.Error("Peek of unstaged key should miss")
	}
	b.Clear(1, 2)
	if _, ok := b.Peek(1, 2); ok {
		t.Error("Clear did not remove")
	}
}

func TestBindingStatsCountTagged(t *testing.T) {
	b := NewBinding(nil)
	m := &someip.Message{Service: 1, Method: 2, Type: someip.TypeRequest}
	b.Outgoing(m) // nothing staged
	if m.Tag != nil {
		t.Error("tag attached without staging")
	}
	b.Bypass().Stage(1, 2, logical.Tag{Time: 9})
	m2 := &someip.Message{Service: 1, Method: 2, Type: someip.TypeRequest}
	b.Outgoing(m2)
	if m2.Tag == nil || m2.Tag.Time != 9 {
		t.Errorf("tag = %v", m2.Tag)
	}
	tagged, untagged, _, _ := b.Stats()
	if tagged != 1 || untagged != 1 {
		t.Errorf("stats = %d tagged, %d untagged", tagged, untagged)
	}
}

func TestLinkConfigOffset(t *testing.T) {
	lc := LinkConfig{Latency: 5, ClockError: 3}
	if lc.SafeToProcessOffset() != 8 {
		t.Errorf("offset = %d", lc.SafeToProcessOffset())
	}
}

func TestSWCDoubleStartPanics(t *testing.T) {
	f := newDearFixture(t, 1, nil)
	f.client.Start(StartOptions{Timeout: logical.Duration(ms)}, func(env *reactor.Environment) error {
		env.NewReactor("r")
		return nil
	})
	defer func() {
		if recover() == nil {
			t.Error("want panic on double start")
		}
	}()
	f.client.Start(StartOptions{}, func(env *reactor.Environment) error { return nil })
}

func TestSWCBuildErrorSurfaces(t *testing.T) {
	f := newDearFixture(t, 1, nil)
	f.client.Start(StartOptions{}, func(env *reactor.Environment) error {
		return fmt.Errorf("boom")
	})
	f.k.RunAll()
	if f.client.Err() == nil || !strings.Contains(f.client.Err().Error(), "boom") {
		t.Errorf("err = %v", f.client.Err())
	}
}
