package core

import (
	"bytes"
	"testing"

	"repro/internal/ara"
	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/reactor"
	"repro/internal/simnet"
)

// TestTaggedPipelineOverMTULimitedLink runs the event transactor path
// with payloads larger than the link MTU: SOME/IP-TP segments the tagged
// messages, the receiver reassembles them, and the DEAR semantics
// (tag algebra, ordering, zero loss) are unaffected.
func TestTaggedPipelineOverMTULimitedLink(t *testing.T) {
	k := des.NewKernel(1)
	n := simnet.NewNetwork(k, simnet.Config{})
	h1 := n.AddHost("p1", k.NewLocalClock(des.ClockConfig{}, nil))
	h2 := n.AddHost("p2", k.NewLocalClock(des.ClockConfig{}, nil))

	const mtu = 1200
	server, err := NewSWC(h1, ara.Config{Name: "server", MTU: mtu})
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewSWC(h2, ara.Config{Name: "client", MTU: mtu})
	if err != nil {
		t.Fatal(err)
	}
	cfg := TransactorConfig{
		Deadline: 10 * ms,
		Link:     LinkConfig{Latency: 5 * ms},
	}

	payload := make([]byte, 4000) // ~4 segments at MTU 1200
	for i := range payload {
		payload[i] = byte(i * 11)
	}

	var sendTags, recvTags []logical.Tag
	var received [][]byte
	server.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
		sk, err := server.Runtime().NewSkeleton(echoIface, 1)
		if err != nil {
			return err
		}
		set, err := NewServerEventTransactor(env, server, sk, "beat", cfg)
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		out := reactor.NewOutputPort[[]byte](logic, "out")
		reactor.Connect(out, set.In)
		timer := reactor.NewTimer(logic, "t", 300*ms, 50*ms)
		count := 0
		logic.AddReaction("emit").Triggers(timer).Effects(out).Do(func(c *reactor.Ctx) {
			count++
			if count > 3 {
				return
			}
			p := append([]byte{byte(count)}, payload...)
			sendTags = append(sendTags, c.Tag())
			out.Set(c, p)
		})
		sk.Offer()
		return nil
	})
	client.Start(StartOptions{KeepAlive: true, Timeout: logical.Duration(2 * logical.Second)}, func(env *reactor.Environment) error {
		cet, err := NewClientEventTransactor(env, client, echoIface, 1, "beat", cfg)
		if err != nil {
			return err
		}
		logic := env.NewReactor("logic")
		in := reactor.NewInputPort[[]byte](logic, "in")
		reactor.Connect(cet.Out, in)
		logic.AddReaction("recv").Triggers(in).Do(func(c *reactor.Ctx) {
			v, _ := in.Get(c)
			received = append(received, v)
			recvTags = append(recvTags, c.Tag())
		})
		return nil
	})

	k.Run(logical.Time(2 * logical.Second))
	if len(received) != 3 {
		t.Fatalf("received %d events", len(received))
	}
	for i, p := range received {
		if p[0] != byte(i+1) || !bytes.Equal(p[1:], payload) {
			t.Errorf("event %d payload corrupted", i)
		}
		want := sendTags[i].Delay(10 * ms).Delay(5 * ms)
		if recvTags[i] != want {
			t.Errorf("event %d tag %v, want %v", i, recvTags[i], want)
		}
	}
	// Verify segmentation actually happened.
	sent, _, _ := server.Runtime().ConnStats()
	if sent < 12 { // 3 events × ≥4 segments each
		t.Errorf("server sent %d datagrams; segmentation inactive?", sent)
	}
}
