package core

import (
	"fmt"

	"repro/internal/ara"
	"repro/internal/reactor"
	"repro/internal/someip"
)

// fieldSpecs derives pseudo method/event specs for a field's accessors,
// since fields are composed of a get method, a set method and a notifier
// event ("interaction with fields requires the use of one event and two
// method transactors" — Section III-B).
func fieldSpecs(iface *ara.ServiceInterface, field string) (get, set ara.MethodSpec, notify ara.EventSpec, err error) {
	spec, ok := iface.Field(field)
	if !ok {
		err = fmt.Errorf("core: %s has no field %q", iface.Name, field)
		return
	}
	if spec.Get == 0 || spec.Set == 0 || spec.Notifier == 0 {
		err = fmt.Errorf("core: field %s needs get, set and notifier for a field transactor", field)
		return
	}
	get = ara.MethodSpec{ID: spec.Get, Name: field + ".get"}
	set = ara.MethodSpec{ID: spec.Set, Name: field + ".set"}
	notify = ara.EventSpec{ID: spec.Notifier, Name: field + ".changed", Eventgroup: spec.Eventgroup}
	return
}

// ClientFieldTransactor composes the transactors needed to interact with
// an AP field from the client role: two method transactors (get, set)
// and one event transactor (the change notifier).
type ClientFieldTransactor struct {
	// GetRequest triggers a get; the value arrives on Value.
	GetRequest *reactor.Port[[]byte]
	// SetRequest carries a new value to write; the accepted value arrives
	// on SetResult.
	SetRequest *reactor.Port[[]byte]
	// Value is the get result output.
	Value *reactor.Port[[]byte]
	// SetResult is the set acknowledgment output.
	SetResult *reactor.Port[[]byte]
	// Changed emits change notifications.
	Changed *reactor.Port[[]byte]

	get    *ClientMethodTransactor
	set    *ClientMethodTransactor
	notify *ClientEventTransactor
}

// NewClientFieldTransactor builds the composite transactor for a field.
// The field must provide a getter, a setter and a notifier.
func NewClientFieldTransactor(env *reactor.Environment, swc *SWC, iface *ara.ServiceInterface, instance someip.InstanceID, field string, cfg TransactorConfig) (*ClientFieldTransactor, error) {
	get, set, notify, err := fieldSpecs(iface, field)
	if err != nil {
		return nil, err
	}
	t := &ClientFieldTransactor{
		get:    newClientMethodTransactor(env, swc, iface, instance, get, cfg),
		set:    newClientMethodTransactor(env, swc, iface, instance, set, cfg),
		notify: newClientEventTransactor(env, swc, iface, instance, notify, cfg),
	}
	t.GetRequest = t.get.Request
	t.Value = t.get.Response
	t.SetRequest = t.set.Request
	t.SetResult = t.set.Response
	t.Changed = t.notify.Out
	return t, nil
}

// Ready reports whether all three underlying transactors are bound.
func (t *ClientFieldTransactor) Ready() bool {
	return t.get.Ready() && t.set.Ready() && t.notify.Ready()
}

// Stats aggregates the error counters of the three transactors.
func (t *ClientFieldTransactor) Stats() TransactorStats {
	return sumStats(t.get.Stats(), t.set.Stats(), t.notify.Stats())
}

// ServerFieldTransactor exposes a field whose state lives in the server
// reactor: get and set invocations arrive as events; values written to
// UpdateIn are published through the change notifier.
type ServerFieldTransactor struct {
	// GetRequest emits an (empty) payload per get invocation.
	GetRequest *reactor.Port[[]byte]
	// GetResponse accepts the value to return for the oldest get.
	GetResponse *reactor.Port[[]byte]
	// SetRequest emits the proposed value per set invocation.
	SetRequest *reactor.Port[[]byte]
	// SetResponse accepts the accepted value for the oldest set.
	SetResponse *reactor.Port[[]byte]
	// UpdateIn publishes a new value through the change notifier.
	UpdateIn *reactor.Port[[]byte]

	get    *ServerMethodTransactor
	set    *ServerMethodTransactor
	notify *ServerEventTransactor
}

// NewServerFieldTransactor builds the composite server-side transactor.
// It replaces the skeleton's default field handlers, moving the field's
// state into the server reactor.
func NewServerFieldTransactor(env *reactor.Environment, swc *SWC, sk *ara.Skeleton, field string, cfg TransactorConfig) (*ServerFieldTransactor, error) {
	get, set, notify, err := fieldSpecs(sk.Interface(), field)
	if err != nil {
		return nil, err
	}
	t := &ServerFieldTransactor{
		get:    newServerMethodTransactor(env, swc, sk, get, cfg),
		set:    newServerMethodTransactor(env, swc, sk, set, cfg),
		notify: newServerEventTransactor(env, swc, sk, notify, cfg),
	}
	t.GetRequest = t.get.Request
	t.GetResponse = t.get.Response
	t.SetRequest = t.set.Request
	t.SetResponse = t.set.Response
	t.UpdateIn = t.notify.In
	return t, nil
}

// Stats aggregates the error counters of the three transactors.
func (t *ServerFieldTransactor) Stats() TransactorStats {
	return sumStats(t.get.Stats(), t.set.Stats(), t.notify.Stats())
}

func sumStats(all ...TransactorStats) TransactorStats {
	var out TransactorStats
	for _, s := range all {
		out.Forwarded += s.Forwarded
		out.DeadlineViolations += s.DeadlineViolations
		out.SafeToProcessViolations += s.SafeToProcessViolations
		out.UntaggedDropped += s.UntaggedDropped
		out.UntaggedAccepted += s.UntaggedAccepted
		out.RemoteErrors += s.RemoteErrors
	}
	return out
}
