package core

import (
	"fmt"

	"repro/internal/ara"
	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/reactor"
	"repro/internal/simnet"
)

// SWC is a DEAR-enabled software component: an ara::com runtime with the
// modified (tagged) binding plus a reactor environment that executes the
// component's logic as a process on the simulated platform. Each SWC is
// its own program, mirroring the AP deployment model where every software
// component maps to an OS process.
type SWC struct {
	runtime *ara.Runtime
	binding *Binding
	env     *reactor.Environment
	proc    *des.Process

	name    string
	started bool
	done    bool
	runErr  error
}

// NewSWC creates a DEAR software component on the host. The ara config's
// Tagged flag is forced on (DEAR requires the modified binding).
func NewSWC(host *simnet.Host, cfg ara.Config) (*SWC, error) {
	cfg.Tagged = true
	rt, err := ara.NewRuntime(host, cfg)
	if err != nil {
		return nil, err
	}
	s := &SWC{runtime: rt, name: cfg.Name}
	s.binding = AttachBinding(rt)
	return s, nil
}

// Runtime returns the component's ara::com runtime.
func (s *SWC) Runtime() *ara.Runtime { return s.runtime }

// Binding returns the component's DEAR binding.
func (s *SWC) Binding() *Binding { return s.binding }

// Env returns the reactor environment (valid after Start's build phase;
// the build callback receives it too).
func (s *SWC) Env() *reactor.Environment { return s.env }

// Done reports whether the reactor program has terminated.
func (s *SWC) Done() bool { return s.done }

// Err returns the error from the reactor run, if any (valid once Done).
func (s *SWC) Err() error { return s.runErr }

// StartOptions tune the reactor environment of an SWC.
type StartOptions struct {
	// Timeout stops the reactor program after this much logical time.
	Timeout logical.Duration
	// KeepAlive keeps the scheduler alive while the event queue is empty
	// (required for components driven purely by physical actions).
	KeepAlive bool
	// Fast skips the physical-time barrier. Almost always false for DEAR
	// components: safe-to-process relies on the barrier.
	Fast bool
}

// Start spawns the component's reactor program as a platform process.
// build assembles the program (creating reactors, transactors and
// connections); it runs inside the process at current simulated time.
// Returns immediately; the program runs as the kernel advances.
func (s *SWC) Start(opts StartOptions, build func(env *reactor.Environment) error) {
	if s.started {
		panic("core: SWC " + s.name + " already started")
	}
	s.started = true
	k := s.runtime.Kernel()
	s.proc = k.Spawn(s.name+".reactor", func(p *des.Process) {
		env := reactor.NewEnvironment(reactor.Options{
			Clock:     reactor.NewSimClock(p, s.runtime.Host().Clock()),
			Timeout:   opts.Timeout,
			KeepAlive: opts.KeepAlive,
			Fast:      opts.Fast,
			Workers:   1,
		})
		s.env = env
		if err := build(env); err != nil {
			s.runErr = fmt.Errorf("core: building %s: %w", s.name, err)
			s.done = true
			return
		}
		s.runErr = env.Run()
		s.done = true
	})
}

// Stop requests the reactor program to shut down.
func (s *SWC) Stop() {
	if s.env != nil {
		s.env.RequestStop()
	}
}
