package core
