// Package core implements DEAR (Discrete Events for AUTOSAR), the paper's
// primary contribution: a framework that couples the deterministic
// reactor model with the service-oriented communication stack of the
// AUTOSAR Adaptive Platform.
//
// Four transactors bridge between reactor ports and AP service
// interfaces, exactly as in Figure 3 of the paper:
//
//   - ClientMethodTransactor — invokes a remote method when its request
//     port receives an event; emits the response on its response port.
//   - ServerMethodTransactor — turns incoming method invocations into
//     tagged port events for the server-logic reactor and sends the
//     response the logic produces.
//   - ClientEventTransactor — subscribes to an AP event and emits each
//     notification on a reactor port.
//   - ServerEventTransactor — publishes events from a reactor port as AP
//     notifications.
//
// Tags travel across the network in the modified SOME/IP binding's tag
// trailer. On the sending side each transactor adds its configured
// deadline D to the current tag; on the receiving side a physical action
// is scheduled at t + L + E (worst-case network latency plus clock
// synchronization bound), the PTIDES-style safe-to-process offset that
// guarantees in-order event handling across software components.
package core

import (
	"repro/internal/ara"
	"repro/internal/logical"
	"repro/internal/someip"
)

// LinkConfig carries the timing assumptions of a DEAR deployment.
type LinkConfig struct {
	// Latency is the assumed worst-case one-way communication latency L.
	Latency logical.Duration
	// ClockError is the assumed worst-case clock synchronization error E
	// between the communicating platforms (zero when both components run
	// on the same platform).
	ClockError logical.Duration
}

// SafeToProcessOffset returns L+E, the offset added to a received tag
// before it may be inserted into the receiving reactor network.
func (lc LinkConfig) SafeToProcessOffset() logical.Duration {
	return lc.Latency + lc.ClockError
}

// UntaggedPolicy selects how transactors treat messages that arrive
// without a tag (from unmodified, non-DEAR peers).
type UntaggedPolicy int

const (
	// UntaggedFail rejects untagged messages and counts an error — the
	// default, because composing untagged components silently would
	// reintroduce nondeterminism.
	UntaggedFail UntaggedPolicy = iota
	// UntaggedPhysicalTime stamps untagged messages with the physical
	// time of reception, treating them like sporadic sensor inputs. This
	// provides backward compatibility with standard AP components.
	UntaggedPhysicalTime
)

// TimestampBypass pairs outgoing tags with the next message(s) that the
// standard ara::com API sends for a given (service, method): the service
// proxy and skeleton interfaces have no parameter for tags, so the
// transactor stages the tag here and the modified binding picks it up
// just before transmission (steps 2/5 and 13/16 in Figure 3).
type TimestampBypass struct {
	staged map[bypassKey]logical.Tag
}

type bypassKey struct {
	service someip.ServiceID
	method  someip.MethodID
}

// NewTimestampBypass creates an empty bypass.
func NewTimestampBypass() *TimestampBypass {
	return &TimestampBypass{staged: map[bypassKey]logical.Tag{}}
}

// Stage associates a tag with the next send(s) of (service, method).
func (b *TimestampBypass) Stage(service someip.ServiceID, method someip.MethodID, tag logical.Tag) {
	b.staged[bypassKey{service, method}] = tag
}

// Clear removes a staged tag after the send burst completes.
func (b *TimestampBypass) Clear(service someip.ServiceID, method someip.MethodID) {
	delete(b.staged, bypassKey{service, method})
}

// Peek returns the staged tag, if any.
func (b *TimestampBypass) Peek(service someip.ServiceID, method someip.MethodID) (logical.Tag, bool) {
	t, ok := b.staged[bypassKey{service, method}]
	return t, ok
}

// Binding is the paper's "modified SOME/IP binding": an ara.BindingHook
// that attaches staged tags to outgoing messages. Incoming tags are
// already decoded by the tagged Conn; the hook records per-connection
// statistics and leaves the tag on the message for the transactors.
type Binding struct {
	bypass *TimestampBypass

	tagged   uint64
	untagged uint64
	received uint64
	recvTags uint64
}

// NewBinding creates a binding hook around the bypass.
func NewBinding(bypass *TimestampBypass) *Binding {
	if bypass == nil {
		bypass = NewTimestampBypass()
	}
	return &Binding{bypass: bypass}
}

// Bypass returns the timestamp bypass used by this binding.
func (b *Binding) Bypass() *TimestampBypass { return b.bypass }

// Outgoing implements ara.BindingHook: it retrieves the staged tag for
// the message's (service, method) and attaches it.
func (b *Binding) Outgoing(m *someip.Message) {
	if m.Tag != nil {
		b.tagged++
		return
	}
	if tag, ok := b.bypass.Peek(m.Service, m.Method); ok {
		t := tag
		m.Tag = &t
		b.tagged++
		return
	}
	b.untagged++
}

// Incoming implements ara.BindingHook.
func (b *Binding) Incoming(src someip.Addr, m *someip.Message) {
	b.received++
	if m.Tag != nil {
		b.recvTags++
	}
}

// Stats returns (messages tagged on send, sent untagged, received,
// received with tags).
func (b *Binding) Stats() (tagged, untagged, received, recvTags uint64) {
	return b.tagged, b.untagged, b.received, b.recvTags
}

// AttachBinding installs a DEAR binding on an ara runtime created with
// Config.Tagged == true, and returns it. This is the entry point for
// turning a standard SWC runtime into a DEAR-enabled one.
func AttachBinding(rt *ara.Runtime) *Binding {
	b := NewBinding(nil)
	rt.SetBindingHook(b)
	return b
}
