package ara

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/someip"
)

// Ctx is handed to method/event handlers. It exposes simulated time and
// lets handlers consume execution time, which is how worst-case execution
// times are modelled.
type Ctx struct {
	p   *des.Process
	rt  *Runtime
	msg *someip.Message
}

// Message returns the SOME/IP message that triggered this handler, or nil
// for tasks not associated with a message. The DEAR transactors use it to
// retrieve the tag that the modified binding extracted from the wire.
func (c *Ctx) Message() *someip.Message { return c.msg }

// Now returns the current simulated (global) time.
func (c *Ctx) Now() logical.Time { return c.p.Now() }

// LocalNow returns the current local platform time.
func (c *Ctx) LocalNow() logical.Time { return c.rt.Clock().Now() }

// Exec consumes d of simulated execution time (the handler's computation).
func (c *Ctx) Exec(d logical.Duration) { c.p.Sleep(d) }

// Runtime returns the owning runtime.
func (c *Ctx) Runtime() *Runtime { return c.rt }

// Process returns the simulated worker thread running the handler.
func (c *Ctx) Process() *des.Process { return c.p }

// task is one unit of work for the executor.
type task struct {
	fn func(*Ctx)
}

// ExecConfig configures the executor of a runtime.
type ExecConfig struct {
	// Workers is the number of simulated worker threads (default 4).
	Workers int
	// DispatchJitter draws the latency between a task becoming runnable
	// and a worker thread actually starting it — the OS scheduling delay.
	// Default: exponential with mean 50µs. This is nondeterminism
	// source #1/#2 of the paper: processing order follows dispatch order,
	// not arrival order.
	DispatchJitter func(*des.Rand) logical.Duration
	// Serialized enforces mutual exclusion between handler executions
	// (the paper's server "enforces mutual exclusion between the
	// execution of method invocations" while leaving their order free).
	Serialized bool
}

func defaultJitter(r *des.Rand) logical.Duration {
	return logical.Duration(r.Exp(float64(50 * logical.Microsecond)))
}

// Executor dispatches tasks onto a pool of simulated worker threads.
type Executor struct {
	k        *des.Kernel
	rng      *des.Rand
	cfg      ExecConfig
	queue    *des.Mailbox[task]
	mutex    *Mutex
	started  bool
	inFlight int
	executed uint64
}

// NewExecutor creates an executor. Workers spawn on first Submit.
func NewExecutor(k *des.Kernel, rng *des.Rand, cfg ExecConfig) *Executor {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.DispatchJitter == nil {
		cfg.DispatchJitter = defaultJitter
	}
	return &Executor{
		k:     k,
		rng:   rng,
		cfg:   cfg,
		queue: des.NewMailbox[task](k, "executor"),
		mutex: NewMutex(),
	}
}

// Executed reports the number of completed tasks.
func (e *Executor) Executed() uint64 { return e.executed }

// InFlight reports tasks submitted but not yet completed.
func (e *Executor) InFlight() int { return e.inFlight }

func (e *Executor) start() {
	if e.started {
		return
	}
	e.started = true
	// A dispatcher hands each queued task to a fresh logical thread
	// context: per the AP communication-management default, "the runtime
	// maps each invocation to a different thread". Concurrency is capped
	// by Workers via a counting semaphore.
	sem := NewSemaphore(e.cfg.Workers)
	e.k.Spawn("executor.dispatch", func(p *des.Process) {
		seq := 0
		for {
			t := e.queue.Recv(p)
			sem.Acquire(p)
			seq++
			jitter := e.cfg.DispatchJitter(e.rng)
			e.k.SpawnAt(p.Now().Add(jitter), fmt.Sprintf("worker.%d", seq), func(wp *des.Process) {
				defer sem.Release()
				if e.cfg.Serialized {
					e.mutex.Lock(wp)
					defer e.mutex.Unlock()
				}
				t.fn(&Ctx{p: wp})
				e.executed++
				e.inFlight--
			})
		}
	})
}

// Submit schedules fn to run on a worker thread after the dispatch jitter.
// The ctx passed to fn carries a nil runtime unless SubmitRT is used.
func (e *Executor) Submit(fn func(*Ctx)) {
	e.submit(nil, fn)
}

func (e *Executor) submit(rt *Runtime, fn func(*Ctx)) {
	e.start()
	e.inFlight++
	e.queue.Put(task{fn: func(c *Ctx) {
		c.rt = rt
		fn(c)
	}})
}

// Mutex is a mutual-exclusion lock for simulated processes with FIFO
// hand-off.
type Mutex struct {
	locked  bool
	waiters []*des.Process
}

// NewMutex returns an unlocked mutex.
func NewMutex() *Mutex { return &Mutex{} }

// Lock blocks the process until the mutex is acquired.
func (m *Mutex) Lock(p *des.Process) {
	for m.locked {
		m.waiters = append(m.waiters, p)
		p.Park()
	}
	m.locked = true
}

// Unlock releases the mutex and wakes the first waiter.
func (m *Mutex) Unlock() {
	if !m.locked {
		panic("ara: Unlock of unlocked Mutex")
	}
	m.locked = false
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		w.Unpark()
	}
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.locked }

// Semaphore is a counting semaphore for simulated processes.
type Semaphore struct {
	avail   int
	waiters []*des.Process
}

// NewSemaphore returns a semaphore with n permits.
func NewSemaphore(n int) *Semaphore { return &Semaphore{avail: n} }

// Acquire takes a permit, blocking while none is available.
func (s *Semaphore) Acquire(p *des.Process) {
	for s.avail == 0 {
		s.waiters = append(s.waiters, p)
		p.Park()
	}
	s.avail--
}

// Release returns a permit and wakes the first waiter.
func (s *Semaphore) Release() {
	s.avail++
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		w.Unpark()
	}
}

// Available reports the number of free permits.
func (s *Semaphore) Available() int { return s.avail }
