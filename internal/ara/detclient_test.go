package ara

import (
	"testing"

	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/simnet"
	"repro/internal/someip"
)

func detClientFixture(t *testing.T, seed uint64) (*des.Kernel, *Runtime) {
	t.Helper()
	k := des.NewKernel(seed)
	n := simnet.NewNetwork(k, simnet.Config{})
	h := n.AddHost("p", k.NewLocalClock(des.ClockConfig{}, nil))
	rt, err := NewRuntime(h, Config{Name: "swc"})
	if err != nil {
		t.Fatal(err)
	}
	return k, rt
}

func TestDeterministicClientCycles(t *testing.T) {
	k, rt := detClientFixture(t, 1)
	dc := rt.NewDeterministicClient("dc", 42, logical.Duration(10*logical.Millisecond))
	var cycles []uint64
	var times []logical.Time
	dc.OnActivate(func(c *DetCtx) {
		cycles = append(cycles, c.Cycle)
		times = append(times, c.ActivationTime)
	})
	dc.Start(0)
	k.Run(logical.Time(45 * logical.Millisecond))
	if len(cycles) != 5 {
		t.Fatalf("cycles = %v", cycles)
	}
	for i, c := range cycles {
		if c != uint64(i) {
			t.Errorf("cycle %d = %d", i, c)
		}
	}
	for i, ts := range times {
		want := logical.Time(i) * logical.Time(10*logical.Millisecond)
		if ts != want {
			t.Errorf("activation %d at %v, want %v", i, ts, want)
		}
	}
}

func TestDeterministicClientRandomPerCycle(t *testing.T) {
	// Same seed: identical random draws per cycle, across separate runs.
	draw := func(kernelSeed uint64) [][3]uint64 {
		k, rt := detClientFixture(t, kernelSeed)
		dc := rt.NewDeterministicClient("dc", 99, logical.Duration(10*logical.Millisecond))
		var out [][3]uint64
		dc.OnActivate(func(c *DetCtx) {
			r := c.Random()
			out = append(out, [3]uint64{r.Uint64(), r.Uint64(), r.Uint64()})
		})
		dc.Start(0)
		k.Run(logical.Time(35 * logical.Millisecond))
		return out
	}
	a := draw(1)
	b := draw(777) // different kernel seed — same client seed
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("cycle %d draws differ: %v vs %v", i, a[i], b[i])
		}
	}
	// Different cycles draw different numbers.
	if a[0] == a[1] {
		t.Error("cycles share random state")
	}
}

func TestWorkerPoolDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []uint64 {
		k, rt := detClientFixture(t, 5)
		dc := rt.NewDeterministicClient("dc", 7, logical.Duration(50*logical.Millisecond))
		var results []uint64
		dc.OnActivate(func(c *DetCtx) {
			if c.Cycle > 0 {
				return
			}
			out := RunWorkerPool(c, 20, workers, logical.Duration(logical.Millisecond),
				func(i int, r *des.Rand) uint64 {
					return uint64(i)*1000 + r.Uint64()%1000
				})
			results = out
		})
		dc.Start(0)
		k.Run(logical.Time(200 * logical.Millisecond))
		return results
	}
	r1 := run(1)
	r4 := run(4)
	r16 := run(16)
	if len(r1) != 20 || len(r4) != 20 || len(r16) != 20 {
		t.Fatalf("lengths: %d %d %d", len(r1), len(r4), len(r16))
	}
	for i := range r1 {
		if r1[i] != r4[i] || r4[i] != r16[i] {
			t.Errorf("item %d differs across worker counts: %d %d %d", i, r1[i], r4[i], r16[i])
		}
		if r1[i]/1000 != uint64(i) {
			t.Errorf("item %d landed in wrong slot: %d", i, r1[i])
		}
	}
}

func TestWorkerPoolParallelismShortensTime(t *testing.T) {
	elapsed := func(workers int) logical.Duration {
		k, rt := detClientFixture(t, 5)
		dc := rt.NewDeterministicClient("dc", 7, logical.Duration(logical.Second))
		var took logical.Duration
		dc.OnActivate(func(c *DetCtx) {
			if c.Cycle > 0 {
				return
			}
			start := c.Now()
			RunWorkerPool(c, 16, workers, logical.Duration(logical.Millisecond),
				func(i int, r *des.Rand) int { return i })
			took = logical.Duration(c.Now() - start)
		})
		dc.Start(0)
		k.Run(logical.Time(5 * logical.Second))
		return took
	}
	seq := elapsed(1)
	par := elapsed(8)
	if seq != logical.Duration(16*logical.Millisecond) {
		t.Errorf("sequential = %v, want 16ms", seq)
	}
	if par != logical.Duration(2*logical.Millisecond) {
		t.Errorf("8 workers = %v, want 2ms", par)
	}
}

func TestRedundantClientsProduceIdenticalResults(t *testing.T) {
	// Two deterministic clients with the same seed on different
	// platforms: per-cycle outputs must be bit-identical (the redundancy
	// use case of the AP spec).
	k := des.NewKernel(3)
	n := simnet.NewNetwork(k, simnet.Config{})
	mk := func(host string, phase logical.Duration) *[]uint64 {
		h := n.AddHost(host, k.NewLocalClock(des.ClockConfig{}, nil))
		rt, err := NewRuntime(h, Config{Name: host})
		if err != nil {
			t.Fatal(err)
		}
		dc := rt.NewDeterministicClient("dc", 1234, logical.Duration(10*logical.Millisecond))
		out := &[]uint64{}
		dc.OnActivate(func(c *DetCtx) {
			sum := uint64(0)
			for _, v := range RunWorkerPool(c, 8, 4, 0, func(i int, r *des.Rand) uint64 { return r.Uint64() }) {
				sum += v
			}
			*out = append(*out, sum)
		})
		dc.Start(phase)
		return out
	}
	// Different activation phases — per-cycle results must not depend on
	// them (the shadow's last cycle may not fit the horizon).
	a := mk("primary", 0)
	b := mk("shadow", logical.Duration(3*logical.Millisecond))
	k.Run(logical.Time(100 * logical.Millisecond))
	common := len(*a)
	if len(*b) < common {
		common = len(*b)
	}
	if common == 0 {
		t.Fatalf("no common cycles: %d vs %d", len(*a), len(*b))
	}
	for i := 0; i < common; i++ {
		if (*a)[i] != (*b)[i] {
			t.Errorf("cycle %d: %d vs %d", i, (*a)[i], (*b)[i])
		}
	}
}

// TestCommunicatingDeterministicClientsStillNondeterministic demonstrates
// the paper's Section II-B claim: the deterministic client fixes source
// #1 only. Two deterministic clients exchanging AP events still produce
// scheduler-dependent outcomes, because the processing ORDER of messages
// between SWCs is undefined (source #2/#3).
func TestCommunicatingDeterministicClientsStillNondeterministic(t *testing.T) {
	iface := &ServiceInterface{
		Name:  "Feed",
		ID:    0x7001,
		Major: 1,
		Events: []EventSpec{
			{ID: someip.EventID(1), Name: "data", Eventgroup: 1},
		},
	}
	run := func(seed uint64) []uint32 {
		k := des.NewKernel(seed)
		n := simnet.NewNetwork(k, simnet.Config{
			DefaultLatency: &simnet.JitterLatency{
				Base:  100 * logical.Microsecond,
				Sigma: 1500 * logical.Microsecond,
				Max:   4 * logical.Millisecond,
				Rng:   k.Rand("lat"),
			},
		})
		h1 := n.AddHost("p1", k.NewLocalClock(des.ClockConfig{}, nil))
		h2 := n.AddHost("p2", k.NewLocalClock(des.ClockConfig{DriftPPB: 40_000}, nil))
		producer, err := NewRuntime(h1, Config{Name: "producer"})
		if err != nil {
			t.Fatal(err)
		}
		consumer, err := NewRuntime(h2, Config{Name: "consumer"})
		if err != nil {
			t.Fatal(err)
		}
		sk, err := producer.NewSkeleton(iface, 1)
		if err != nil {
			t.Fatal(err)
		}
		k.At(0, func() { sk.Offer() })

		// Random start phases per run — the paper: the outcome "depends
		// on when SWCs are started and is difficult to control". Also a
		// small clock drift between the platforms.
		phases := k.Rand("phases")
		pPhase := logical.Duration(phases.Range(0, int64(5*logical.Millisecond)))
		cPhase := logical.Duration(phases.Range(0, int64(5*logical.Millisecond)))

		// Producer: a deterministic client emitting its cycle number.
		pdc := producer.NewDeterministicClient("pdc", 1, logical.Duration(5*logical.Millisecond))
		pdc.OnActivate(func(c *DetCtx) {
			var b [4]byte
			b[3] = byte(c.Cycle)
			if err := sk.Notify("data", b[:]); err != nil {
				t.Error(err)
			}
		})
		pdc.Start(logical.Duration(100*logical.Millisecond) + pPhase)

		// Consumer: a deterministic client reading a one-slot buffer fed
		// by the event handler — deterministic inside, nondeterministic
		// in what it observes.
		var slot []byte
		consumer.FindService(iface, 1, func(px *Proxy) {
			if err := px.Subscribe("data", func(c *Ctx, payload []byte) {
				slot = payload
			}, nil); err != nil {
				t.Error(err)
			}
		})
		var seen []uint32
		cdc := consumer.NewDeterministicClient("cdc", 2, logical.Duration(5*logical.Millisecond))
		cdc.OnActivate(func(c *DetCtx) {
			if slot != nil {
				seen = append(seen, uint32(slot[3]))
				slot = nil
			}
		})
		cdc.Start(logical.Duration(100*logical.Millisecond) + cPhase)
		k.Run(logical.Time(400 * logical.Millisecond))
		return seen
	}
	same := func(x, y []uint32) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	first := run(1)
	if len(first) == 0 {
		t.Fatal("no data observed")
	}
	anyDiff := false
	for seed := uint64(2); seed <= 8; seed++ {
		if !same(first, run(seed)) {
			anyDiff = true
			break
		}
	}
	if !anyDiff {
		t.Error("communicating deterministic clients were identical across 8 seeds; expected cross-SWC nondeterminism (sources #2/#3)")
	}
}
