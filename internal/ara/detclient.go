package ara

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/logical"
)

// DeterministicClient implements the AUTOSAR AP "deterministic client"
// of the Execution Management specification, the standard's own
// provision for deterministic execution that the paper analyzes in
// Section II-B: a task-based, cyclic programming model in which
//
//   - activation happens in cycles with a defined activation time,
//   - random numbers are drawn from a per-cycle deterministic source,
//   - data-parallel work runs through a worker pool whose RESULTS are
//     independent of worker count and scheduling,
//
// so that redundantly executed clients produce identical outputs.
//
// Crucially — and this is the paper's point — its scope is a single
// software component: "applications that consist of multiple
// communicating deterministic clients can still exhibit nondeterminism"
// through undefined processing order and message transport (sources #2
// and #3). The test suite demonstrates exactly that.
type DeterministicClient struct {
	rt     *Runtime
	name   string
	seed   uint64
	cycle  uint64
	period logical.Duration

	activation func(*DetCtx)
	stopped    bool
}

// DetCtx is the per-cycle context handed to the activation function.
type DetCtx struct {
	*Ctx
	client *DeterministicClient
	// Cycle is the activation counter, starting at 0.
	Cycle uint64
	// ActivationTime is the local time of this activation.
	ActivationTime logical.Time
	rand           *des.Rand
}

// Random returns the cycle's deterministic random source: the same
// (seed, cycle) pair always yields the same stream, so redundant clients
// draw identical numbers.
func (c *DetCtx) Random() *des.Rand { return c.rand }

// NewDeterministicClient creates a deterministic client on the runtime.
// The activation function runs every period (on the platform's local
// clock) once Start is called.
func (rt *Runtime) NewDeterministicClient(name string, seed uint64, period logical.Duration) *DeterministicClient {
	return &DeterministicClient{rt: rt, name: name, seed: seed, period: period}
}

// OnActivate installs the cyclic activation function.
func (dc *DeterministicClient) OnActivate(fn func(*DetCtx)) { dc.activation = fn }

// Cycle returns the number of completed activations.
func (dc *DeterministicClient) Cycle() uint64 { return dc.cycle }

// Stop ceases activations after the current cycle.
func (dc *DeterministicClient) Stop() { dc.stopped = true }

// Start begins cyclic activation with the given phase offset.
func (dc *DeterministicClient) Start(offset logical.Duration) {
	if dc.activation == nil {
		panic("ara: deterministic client without activation function")
	}
	dc.rt.Every(offset, dc.period, func(c *Ctx) {
		if dc.stopped {
			return
		}
		ctx := &DetCtx{
			Ctx:            c,
			client:         dc,
			Cycle:          dc.cycle,
			ActivationTime: dc.rt.Clock().Now(),
			rand:           des.NewRand(dc.seed ^ (dc.cycle * 0x9E3779B97F4A7C15)),
		}
		dc.activation(ctx)
		dc.cycle++
	})
}

// RunWorkerPool executes fn over n items on a pool of simulated worker
// threads and guarantees deterministic results: item i's output lands in
// slot i regardless of which worker processed it or in which order the
// workers finished. Execution time still depends on the pool, but data
// does not — the deterministic worker pool API of the AP specification.
//
// fn receives (item index, per-item deterministic random stream); exec
// models the computation time per item.
func RunWorkerPool[T any](c *DetCtx, n, workers int, exec logical.Duration, fn func(i int, r *des.Rand) T) []T {
	if workers <= 0 {
		workers = 1
	}
	results := make([]T, n)
	if n == 0 {
		return results
	}
	k := c.client.rt.k
	remaining := n
	done := make(chan struct{}, 1)
	nextItem := 0
	parent := c.Process()
	for w := 0; w < workers; w++ {
		k.Spawn(fmt.Sprintf("%s.pool.%d", c.client.name, w), func(p *des.Process) {
			for {
				if nextItem >= n {
					return
				}
				i := nextItem
				nextItem++
				if exec > 0 {
					p.Sleep(exec)
				}
				// Per-item stream derived from (cycle seed, item): the
				// result is a pure function of (seed, cycle, i).
				r := des.NewRand(c.client.seed ^ (c.Cycle * 0x9E3779B97F4A7C15) ^ (uint64(i)+1)*0xBF58476D1CE4E5B9)
				results[i] = fn(i, r)
				remaining--
				if remaining == 0 {
					select {
					case done <- struct{}{}:
					default:
					}
					parent.Unpark()
				}
			}
		})
	}
	for remaining > 0 {
		c.Process().Park()
	}
	select {
	case <-done:
	default:
	}
	return results
}
