package ara

import (
	"fmt"

	"repro/internal/des"
)

// FieldServer is the server side of a field: a state variable exposed via
// an optional get method, an optional set method, and an optional
// change-notifier event (the AP field triple).
type FieldServer struct {
	sk    *Skeleton
	spec  FieldSpec
	value []byte
	// validator, when set, screens incoming Set requests.
	validator func(proposed []byte) error
}

func newFieldServer(sk *Skeleton, spec FieldSpec) *FieldServer {
	f := &FieldServer{sk: sk, spec: spec}
	if spec.Get != 0 {
		sk.HandleID(spec.Get, func(c *Ctx, _ []byte) ([]byte, error) {
			return f.value, nil
		})
	}
	if spec.Set != 0 {
		sk.HandleID(spec.Set, func(c *Ctx, args []byte) ([]byte, error) {
			if f.validator != nil {
				if err := f.validator(args); err != nil {
					return nil, err
				}
			}
			f.set(args)
			return f.value, nil
		})
	}
	return f
}

// Spec returns the field description.
func (f *FieldServer) Spec() FieldSpec { return f.spec }

// Value returns the current value.
func (f *FieldServer) Value() []byte { return f.value }

// SetValidator installs a screening function for remote Set requests.
func (f *FieldServer) SetValidator(fn func(proposed []byte) error) { f.validator = fn }

// Update sets the value locally and notifies subscribers.
func (f *FieldServer) Update(value []byte) { f.set(value) }

func (f *FieldServer) set(value []byte) {
	buf := make([]byte, len(value))
	copy(buf, value)
	f.value = buf
	if f.spec.Notifier != 0 {
		f.sk.NotifyID(f.spec.Notifier, f.spec.Eventgroup, f.value)
	}
}

// FieldClient is the client side of a field.
type FieldClient struct {
	px   *Proxy
	spec FieldSpec
}

// Spec returns the field description.
func (f *FieldClient) Spec() FieldSpec { return f.spec }

// Get fetches the field value (non-blocking, future result).
func (f *FieldClient) Get() *Future {
	if f.spec.Get == 0 {
		return ResolvedFuture(f.px.rt.k, Result{Err: fmt.Errorf("ara: field %s has no getter", f.spec.Name)})
	}
	return f.px.CallID(f.spec.Get, nil, false)
}

// Set writes the field value (non-blocking, future resolves with the
// value accepted by the server).
func (f *FieldClient) Set(value []byte) *Future {
	if f.spec.Set == 0 {
		return ResolvedFuture(f.px.rt.k, Result{Err: fmt.Errorf("ara: field %s has no setter", f.spec.Name)})
	}
	return f.px.CallID(f.spec.Set, value, false)
}

// OnChange subscribes to the field's change notifier.
func (f *FieldClient) OnChange(handler func(*Ctx, []byte), ack func(ok bool)) error {
	if f.spec.Notifier == 0 {
		return fmt.Errorf("ara: field %s has no notifier", f.spec.Name)
	}
	return f.px.SubscribeID(f.spec.Notifier, f.spec.Eventgroup, handler, ack)
}

// GetSync is a convenience blocking Get for process contexts.
func (f *FieldClient) GetSync(p *des.Process) ([]byte, error) {
	return f.Get().Get(p)
}

// SetSync is a convenience blocking Set for process contexts.
func (f *FieldClient) SetSync(p *des.Process, value []byte) ([]byte, error) {
	return f.Set(value).Get(p)
}
