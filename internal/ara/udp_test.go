package ara

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/someip"
)

// These tests exercise the full ara::com runtime — proxy, skeleton,
// executor, futures, binding hook — over real loopback UDP sockets, with
// each runtime's kernel driven by its own physical-clock driver. This is
// the integration proof of the transport seam: the code above the
// binding is byte-for-byte the same code the deterministic experiments
// run over simnet.

var udpEchoIface = &ServiceInterface{
	Name:  "Echo",
	ID:    0x2101,
	Major: 1,
	Methods: []MethodSpec{
		{ID: 1, Name: "echo"},
		{ID: 2, Name: "fire", FireAndForget: true},
	},
}

// stampHook is a minimal DEAR-style binding hook: it stamps outgoing
// requests with a fixed tag (standing in for the timestamp bypass).
type stampHook struct {
	tag logical.Tag
}

func (h *stampHook) Outgoing(m *someip.Message) {
	if m.Type == someip.TypeRequest && m.Tag == nil {
		t := h.tag
		m.Tag = &t
	}
}

func (h *stampHook) Incoming(src someip.Addr, m *someip.Message) {}

// udpPair builds a tagged server/client runtime pair on loopback, each
// on its own kernel and driver (one OS process boundary per runtime, as
// in a real deployment). Kernel-touching setup (skeletons, spawns) must
// happen before calling start, which launches both drivers.
func udpPair(t *testing.T) (server, client *Runtime, start func()) {
	t.Helper()
	if testing.Short() {
		t.Skip("real sockets skipped with -short")
	}
	drvS := des.NewRealTime(des.NewKernel(1))
	drvC := des.NewRealTime(des.NewKernel(2))
	server, err := NewUDPRuntime(drvS, "127.0.0.1:0", Config{Name: "server", Tagged: true})
	if err != nil {
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	client, err = NewUDPRuntime(drvC, "127.0.0.1:0", Config{Name: "client", Tagged: true})
	if err != nil {
		server.Close()
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	var once sync.Once
	start = func() {
		once.Do(func() {
			go drvS.Run()
			go drvC.Run()
		})
	}
	t.Cleanup(func() {
		start() // ensure Run began so Done() can close
		drvS.Stop()
		drvC.Stop()
		<-drvS.Done()
		<-drvC.Done()
		server.Close()
		client.Close()
		server.Kernel().Shutdown()
		client.Kernel().Shutdown()
	})
	return server, client, start
}

func TestUDPRuntimeTaggedMethodRoundTrip(t *testing.T) {
	server, client, start := udpPair(t)

	// Server: echo back the payload; delay the request tag by the
	// handler's deadline, as the DEAR server method transactor does.
	const deadline = 250 * logical.Microsecond
	serverTags := make(chan logical.Tag, 1)
	sk, err := server.NewSkeleton(udpEchoIface, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.HandleAsync("echo", func(c *Ctx, args []byte) *Future {
		var respTag *logical.Tag
		if tag := c.Message().Tag; tag != nil {
			select {
			case serverTags <- *tag:
			default:
			}
			delayed := tag.Delay(deadline)
			respTag = &delayed
		}
		return ResolvedFuture(c.Runtime().Kernel(), Result{
			Payload: append([]byte("re:"), args...),
			Tag:     respTag,
		})
	}); err != nil {
		t.Fatal(err)
	}
	sk.Offer()

	// Client: stamp requests with a tag (the modified binding's job) and
	// drive one call from an application process.
	reqTag := logical.Tag{Time: 123456, Microstep: 1}
	client.SetBindingHook(&stampHook{tag: reqTag})

	type outcome struct {
		payload []byte
		tag     *logical.Tag
		err     error
	}
	done := make(chan outcome, 1)
	client.Spawn("main", func(c *Ctx) {
		px := client.StaticProxy(udpEchoIface, 1, server.Addr())
		fut := px.Call("echo", []byte("ping"))
		payload, err := fut.GetTimeout(c.Process(), 5*logical.Second)
		var tag *logical.Tag
		if r, ok := fut.Result(); ok {
			tag = r.Tag
		}
		done <- outcome{payload: payload, tag: tag, err: err}
	})

	start()

	var out outcome
	select {
	case out = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("round trip did not complete")
	}
	if out.err != nil {
		t.Fatalf("call failed: %v", out.err)
	}
	if !bytes.Equal(out.payload, []byte("re:ping")) {
		t.Errorf("payload = %q", out.payload)
	}

	// The request tag crossed the wire into the server handler...
	gotServer := <-serverTags
	if gotServer != reqTag {
		t.Errorf("server saw tag %v, want %v", gotServer, reqTag)
	}
	// ...and the delayed tag rode the response trailer back.
	want := reqTag.Delay(deadline)
	if out.tag == nil || *out.tag != want {
		t.Errorf("response tag = %v, want %v", out.tag, want)
	}

	sentC, recvC, _ := client.ConnStats()
	if sentC < 1 || recvC < 1 {
		t.Errorf("client stats sent=%d recv=%d", sentC, recvC)
	}
}

func TestUDPRuntimeUnknownServiceError(t *testing.T) {
	server, client, start := udpPair(t)
	_ = server // no skeleton offered: server answers E_UNKNOWN_SERVICE

	done := make(chan error, 1)
	client.Spawn("main", func(c *Ctx) {
		px := client.StaticProxy(udpEchoIface, 1, server.Addr())
		_, err := px.Call("echo", []byte("x")).GetTimeout(c.Process(), 5*logical.Second)
		done <- err
	})
	start()

	select {
	case err := <-done:
		re, ok := err.(*RemoteError)
		if !ok || re.Code != someip.EUnknownService {
			t.Errorf("err = %v, want E_UNKNOWN_SERVICE", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no response")
	}
}

func TestUDPRuntimeHasNoSD(t *testing.T) {
	_, client, _ := udpPair(t)
	if client.SD() != nil {
		t.Fatal("UDP runtime should have no SD agent")
	}
	px := client.StaticProxy(udpEchoIface, 1, client.Addr())
	if err := px.SubscribeID(someip.EventID(1), 1, func(*Ctx, []byte) {}, nil); err == nil {
		t.Error("SubscribeID should fail without an SD substrate")
	}
	defer func() {
		if recover() == nil {
			t.Error("FindService should panic without an SD substrate")
		}
	}()
	client.FindService(udpEchoIface, 1, func(*Proxy) {})
}
