package ara

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/someip"
)

// Proxy is the client-side access object for a remote service instance,
// generated in real ara::com from the service description. Method calls
// are non-blocking and return futures; events are consumed through
// subscriptions.
type Proxy struct {
	rt     *Runtime
	iface  *ServiceInterface
	key    someip.ServiceKey
	remote someip.RemoteService
}

// FindService starts service discovery and invokes cb (as a kernel event)
// with a ready proxy once the instance is found. It panics on runtimes
// without an SD agent (UDP runtimes); configure those statically with
// StaticProxy.
func (rt *Runtime) FindService(si *ServiceInterface, instance someip.InstanceID, cb func(*Proxy)) {
	if rt.sd == nil {
		panic("ara: runtime " + rt.name + " has no service discovery; use StaticProxy")
	}
	key := someip.ServiceKey{Service: si.ID, Instance: instance}
	rt.sd.Find(key, func(svc someip.RemoteService) {
		cb(&Proxy{rt: rt, iface: si, key: key, remote: svc})
	})
}

// WatchService maintains availability callbacks for a service instance
// across loss and re-discovery: up runs (as a kernel event) with a
// freshly bound proxy on every offer that establishes or changes the
// remote endpoint — including after the provider crashes, restarts and
// re-offers — and down (may be nil) runs when the cached offer expires
// (TTL) or is withdrawn. This is the fault-tolerant counterpart of
// FindService: callers replace their proxy in up instead of holding one
// forever. Panics on runtimes without an SD agent (UDP runtimes).
func (rt *Runtime) WatchService(si *ServiceInterface, instance someip.InstanceID, up func(*Proxy), down func()) {
	if rt.sd == nil {
		panic("ara: runtime " + rt.name + " has no service discovery; use StaticProxy")
	}
	key := someip.ServiceKey{Service: si.ID, Instance: instance}
	rt.sd.Monitor(key, func(svc someip.RemoteService) {
		up(&Proxy{rt: rt, iface: si, key: key, remote: svc})
	}, down)
}

// StaticProxy returns a proxy bound to a statically configured remote
// endpoint, bypassing service discovery — the deployment-time static
// configuration path of real AP stacks, and the only discovery mode on
// substrates without an SD agent (UDP runtimes). The endpoint must be an
// address of the runtime's own substrate.
func (rt *Runtime) StaticProxy(si *ServiceInterface, instance someip.InstanceID, endpoint someip.Addr) *Proxy {
	key := someip.ServiceKey{Service: si.ID, Instance: instance}
	return &Proxy{rt: rt, iface: si, key: key, remote: someip.RemoteService{
		Key: key, Major: si.Major, Minor: si.Minor, Endpoint: endpoint,
	}}
}

// FindServiceSync blocks the calling process until the service is found
// or the timeout expires.
func (rt *Runtime) FindServiceSync(p *des.Process, si *ServiceInterface, instance someip.InstanceID, timeout logical.Duration) (*Proxy, error) {
	var proxy *Proxy
	rt.FindService(si, instance, func(px *Proxy) {
		proxy = px
		p.Unpark()
	})
	deadline := p.Now().Add(timeout)
	for proxy == nil {
		if p.Now() >= deadline {
			return nil, fmt.Errorf("%w: %s instance %d", ErrServiceNotAvailable, si.Name, instance)
		}
		ev := rt.k.At(deadline, func() { p.Unpark() })
		p.Park()
		ev.Cancel()
	}
	return proxy, nil
}

// Interface returns the service interface description.
func (px *Proxy) Interface() *ServiceInterface { return px.iface }

// Remote returns the discovered remote service.
func (px *Proxy) Remote() someip.RemoteService { return px.remote }

// Runtime returns the owning runtime.
func (px *Proxy) Runtime() *Runtime { return px.rt }

// Call invokes a method by name, non-blocking, returning a future.
func (px *Proxy) Call(method string, args []byte) *Future {
	spec, ok := px.iface.Method(method)
	if !ok {
		return ResolvedFuture(px.rt.k, Result{Err: fmt.Errorf("ara: %s has no method %q", px.iface.Name, method)})
	}
	return px.CallID(spec.ID, args, spec.FireAndForget)
}

// CallID invokes a method by wire ID. When fireAndForget is true the
// returned future resolves immediately with an empty result.
func (px *Proxy) CallID(method someip.MethodID, args []byte, fireAndForget bool) *Future {
	typ := someip.TypeRequest
	if fireAndForget {
		typ = someip.TypeRequestNoReturn
	}
	session := px.rt.nextSession()
	m := &someip.Message{
		Service:          px.key.Service,
		Method:           method,
		Client:           px.rt.clientID,
		Session:          session,
		InterfaceVersion: px.iface.Major,
		Type:             typ,
		Code:             someip.EOK,
		Payload:          args,
	}
	if fireAndForget {
		if err := px.rt.send(px.remote.Endpoint, m); err != nil {
			return ResolvedFuture(px.rt.k, Result{Err: fmt.Errorf("%w: %v", ErrServiceNotAvailable, err)})
		}
		return ResolvedFuture(px.rt.k, Result{})
	}
	fut := NewFuture(px.rt.k)
	px.rt.pending[session] = fut
	if err := px.rt.send(px.remote.Endpoint, m); err != nil {
		// Fail fast on local send errors (wrong-substrate address, closed
		// endpoint) instead of leaving the caller to its timeout.
		delete(px.rt.pending, session)
		fut.Resolve(Result{Err: fmt.Errorf("%w: %v", ErrServiceNotAvailable, err)})
	}
	return fut
}

// Subscribe registers a handler for an event by name. The handler runs on
// the runtime's worker pool for every received notification. ack, if not
// nil, reports the SD subscription outcome.
func (px *Proxy) Subscribe(event string, handler func(*Ctx, []byte), ack func(ok bool)) error {
	spec, ok := px.iface.Event(event)
	if !ok {
		return fmt.Errorf("ara: %s has no event %q", px.iface.Name, event)
	}
	return px.SubscribeID(spec.ID, spec.Eventgroup, handler, ack)
}

// SubscribeID registers a handler for an event by wire ID and eventgroup.
func (px *Proxy) SubscribeID(id someip.MethodID, eventgroup uint16, handler func(*Ctx, []byte), ack func(ok bool)) error {
	if !id.IsEvent() {
		return fmt.Errorf("ara: id %#x is not an event", uint16(id))
	}
	if px.rt.sd == nil {
		return fmt.Errorf("ara: runtime %s has no service discovery; eventgroup subscriptions need an SD substrate", px.rt.name)
	}
	k := eventKey{px.key.Service, id}
	px.rt.eventSubs[k] = append(px.rt.eventSubs[k], handler)
	px.rt.sd.Subscribe(px.key, eventgroup, px.rt.simAddr(), ack)
	return nil
}

// Unsubscribe removes all handlers for the event and withdraws the SD
// subscription.
func (px *Proxy) Unsubscribe(event string) error {
	spec, ok := px.iface.Event(event)
	if !ok {
		return fmt.Errorf("ara: %s has no event %q", px.iface.Name, event)
	}
	delete(px.rt.eventSubs, eventKey{px.key.Service, spec.ID})
	if px.rt.sd != nil {
		px.rt.sd.Unsubscribe(px.key, spec.Eventgroup, px.rt.simAddr())
	}
	return nil
}

// Field returns client-side access to a field.
func (px *Proxy) Field(name string) (*FieldClient, error) {
	spec, ok := px.iface.Field(name)
	if !ok {
		return nil, fmt.Errorf("ara: %s has no field %q", px.iface.Name, name)
	}
	return &FieldClient{px: px, spec: spec}, nil
}
