package ara

import (
	"errors"
	"fmt"

	"repro/internal/des"
	"repro/internal/logical"
	"repro/internal/someip"
)

// Errors surfaced by futures.
var (
	// ErrServiceNotAvailable reports a failed discovery or send.
	ErrServiceNotAvailable = errors.New("ara: service not available")
	// ErrTimeout reports that a future was abandoned by its timeout.
	ErrTimeout = errors.New("ara: request timed out")
)

// RemoteError is an application-level error returned by a server.
type RemoteError struct {
	Code someip.ReturnCode
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("ara: remote error %s", e.Code)
}

// Result is the outcome of a method call.
type Result struct {
	Payload []byte
	Err     error
	// Tag carries the DEAR tag of the response message, when the runtime
	// uses the modified (tagged) SOME/IP binding. Nil otherwise.
	Tag *logical.Tag
}

// Future is the asynchronous result of a method call, mirroring
// ara::core::Future. It resolves at most once.
type Future struct {
	k       *des.Kernel
	done    bool
	result  Result
	cbs     []func(Result)
	waiters []*des.Process
}

// NewFuture creates an unresolved future (exported for transactor use).
func NewFuture(k *des.Kernel) *Future { return &Future{k: k} }

// Done reports whether the future has resolved.
func (f *Future) Done() bool { return f.done }

// Result returns the resolved result (including the response tag, which
// Get drops). ok is false while the future is unresolved.
func (f *Future) Result() (r Result, ok bool) { return f.result, f.done }

// Resolve completes the future. Second and later calls are ignored
// (e.g. a late response after a timeout).
//
// Registered callbacks are delivered by a single closure-free kernel
// event carrying the future itself as its argument — the schedule+fire
// round trip allocates nothing. Running all callbacks inside one event
// preserves the historical per-callback-event order exactly: the old
// events held consecutive sequence numbers at the same instant, so no
// other event could interleave between them, and anything a callback
// schedules still lands after the whole batch either way.
func (f *Future) Resolve(r Result) {
	if f.done {
		return
	}
	f.done = true
	f.result = r
	if len(f.cbs) > 0 {
		f.k.AfterTransientFn(0, fireCallbacks, f)
	}
	for _, w := range f.waiters {
		w.Unpark()
	}
	f.waiters = nil
}

// fireCallbacks is the package-level delivery body of the resolution
// event: it drains the callbacks registered before resolution and runs
// them with the (immutable, already-resolved) result.
func fireCallbacks(a any) {
	f := a.(*Future)
	cbs := f.cbs
	f.cbs = nil
	for _, cb := range cbs {
		cb(f.result)
	}
}

// Then registers a callback to run (as a kernel event) when the future
// resolves; immediately if already resolved.
func (f *Future) Then(cb func(Result)) {
	if f.done {
		r := f.result
		f.k.AfterTransient(0, func() { cb(r) })
		return
	}
	f.cbs = append(f.cbs, cb)
}

// Get blocks the calling process until resolution, mirroring
// ara::core::Future::get(). This is what a client uses to serialize its
// calls — the "wait for the future to resolve" fix discussed under
// Figure 1 of the paper.
func (f *Future) Get(p *des.Process) ([]byte, error) {
	for !f.done {
		f.waiters = append(f.waiters, p)
		p.Park()
	}
	return f.result.Payload, f.result.Err
}

// GetTimeout is Get with a deadline.
func (f *Future) GetTimeout(p *des.Process, d logical.Duration) ([]byte, error) {
	deadline := p.Now().Add(d)
	for !f.done {
		if p.Now() >= deadline {
			return nil, ErrTimeout
		}
		f.waiters = append(f.waiters, p)
		ev := f.k.At(deadline, func() { p.Unpark() })
		p.Park()
		ev.Cancel()
		// Drop ourselves from waiters if still present (timeout path).
		for i, w := range f.waiters {
			if w == p {
				f.waiters = append(f.waiters[:i:i], f.waiters[i+1:]...)
				break
			}
		}
	}
	return f.result.Payload, f.result.Err
}

// ResolvedFuture returns an already-resolved future.
func ResolvedFuture(k *des.Kernel, r Result) *Future {
	f := NewFuture(k)
	f.Resolve(r)
	return f
}
